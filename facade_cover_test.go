package taccc_test

import (
	"bytes"
	"testing"

	taccc "taccc"
)

// TestFacadeWrappers exercises the thin facade functions not covered by
// the flow tests, so regressions in wiring (wrong delegate, swapped args)
// are caught.
func TestFacadeWrappers(t *testing.T) {
	// Serialization round trips through the facade.
	in, err := taccc.SyntheticInstance(taccc.SyntheticUniform, 6, 2, 0.6, 3)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := in.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	in2, err := taccc.ReadInstance(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if in2.N() != 6 || in2.M() != 2 {
		t.Fatalf("round trip dims %dx%d", in2.N(), in2.M())
	}
	a, err := taccc.NewAssignment(in, []int{0, 1, 0, 1, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := a.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	a2, err := taccc.ReadAssignment(&buf, in)
	if err != nil {
		t.Fatal(err)
	}
	if len(a2.Of) != 6 {
		t.Fatalf("assignment round trip length %d", len(a2.Of))
	}

	// Topology construction + serialization.
	g := taccc.NewGraph()
	na, err := g.AddNode(taccc.KindIoT, "a", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	nb, err := g.AddNode(taccc.KindEdge, "b", 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.AddLink(na, nb, 1, 10); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := g.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := taccc.ReadTopology(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumNodes() != 2 {
		t.Fatalf("topology round trip nodes %d", g2.NumNodes())
	}

	if len(taccc.Families()) != 8 {
		t.Fatalf("Families() = %d entries", len(taccc.Families()))
	}
	if taccc.SplitSeed(1, "x") == taccc.SplitSeed(1, "y") {
		t.Fatal("SplitSeed does not separate labels")
	}

	// Mobility + infra wrappers.
	w, err := taccc.NewRandomWaypoint(100, 1, 2, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	p := w.Advance(1000)
	if p.X < 0 || p.X > 100 {
		t.Fatalf("walker out of area: %+v", p)
	}
	infra, err := taccc.HierarchicalInfra(taccc.TopologyConfig{
		NumIoT: 1, NumEdge: 2, NumGateways: 3, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := taccc.AttachIoTAt(infra, []float64{10}, []float64{20}, taccc.LinkParams{}, 1); err != nil {
		t.Fatal(err)
	}
	if err := infra.Validate(); err != nil {
		t.Fatal(err)
	}

	// Solver wrappers.
	built, err := taccc.Scenario{NumIoT: 15, NumEdge: 3, Seed: 4}.Build()
	if err != nil {
		t.Fatal(err)
	}
	lag, err := taccc.NewLagrangian(4).Assign(built.Instance)
	if err != nil {
		t.Fatal(err)
	}
	mm, err := taccc.NewMinMax(4).Assign(built.Instance)
	if err != nil {
		t.Fatal(err)
	}
	if built.Instance.MaxCost(mm) > built.Instance.MaxCost(lag)+1e-9 {
		t.Logf("minmax max (%v) above lagrangian max (%v) — allowed but unusual",
			built.Instance.MaxCost(mm), built.Instance.MaxCost(lag))
	}
	moves, err := taccc.DiffAssignments(built.Instance, lag, mm)
	if err != nil {
		t.Fatal(err)
	}
	_ = taccc.MigrationGain(moves)

	// Replay arrivals.
	rep, err := taccc.NewReplayArrivals([]float64{7, 11})
	if err != nil {
		t.Fatal(err)
	}
	if rep.NextGapMs() != 7 || rep.NextGapMs() != 11 || rep.NextGapMs() != 7 {
		t.Fatal("replay sequence wrong")
	}
}
