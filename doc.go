// Package taccc (Topology-Aware Cluster Configuration) assigns IoT devices
// to edge servers so that communication delay is minimized while no edge
// device is overloaded — the problem studied in "Topology Aware Cluster
// Configuration for Minimizing Communication Delay in Edge Computing"
// (Rajashekar, Paul, Karmakar, Sidhanta; ICDCS 2022).
//
// The assignment problem is an instance of the NP-hard Generalized
// Assignment Problem; this library ships the paper's reinforcement-learning
// heuristic (tabular Q-learning over an episodic placement MDP) along with
// eleven baselines, the network-topology substrate that derives delay
// matrices, a workload generator, an edge-cluster discrete-event simulator
// and a full evaluation harness.
//
// # Quick start
//
//	built, err := taccc.Scenario{NumIoT: 100, NumEdge: 10, Seed: 1}.Build()
//	if err != nil { ... }
//	a, err := taccc.NewQLearning(1).Assign(built.Instance)
//	if err != nil { ... }
//	fmt.Printf("mean delay %.2f ms\n", built.Instance.MeanCost(a))
//
// See examples/ for runnable programs and DESIGN.md for the architecture.
package taccc
