// Command taclint runs the repository's custom static-analysis suite: a
// multichecker of nine analyzers that machine-enforce the determinism,
// zero-overhead-observability, hot-path-performance and parallel-safety
// invariants (see internal/lint).
//
//	detrand     no time.Now / math/rand in the deterministic packages
//	maporder    no map iteration feeding ordered output unsorted
//	nilrecv     nil-receiver guards on the obs sink/metric types
//	sinkerr     no dropped event-sink Flush/Close errors in cmd/
//	hotloop     no gap TotalCost calls inside loops in internal/assign
//	resmon      no runtime memory/scheduler stats reads outside obs/sysmon
//	taintclock  no laundered time.Now / math/rand reached through helpers
//	parshare    par closures write only per-index slots or mutex sinks
//	fpfold      no FP accumulation in map-range or channel-range order
//
// Usage:
//
//	taclint ./...                 # the whole module (the CI gate)
//	taclint ./internal/assign     # one package
//	taclint -only detrand ./...   # a subset of analyzers
//	taclint -format sarif ./...   # SARIF 2.1.0 for CI code annotations
//
// taclint exits 0 when the tree is clean, 1 when it has findings, and 2
// on usage or load errors. Intentional violations are annotated in place
// with "//lint:allow <analyzer> <reason>".
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"taccc/internal/cliutil"
	"taccc/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("taclint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		dir    = fs.String("C", "", "change to this directory (the module root to lint) before doing anything")
		only   = fs.String("only", "", "comma-separated analyzer subset to run (default: all)")
		list   = fs.Bool("list", false, "list the analyzers and exit")
		format = fs.String("format", "text", "output format: text (go-vet style) or sarif (SARIF 2.1.0)")
	)
	version := cliutil.VersionFlag(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *version {
		cliutil.FprintVersion(stdout, "taclint")
		return 0
	}
	if *format != "text" && *format != "sarif" {
		fmt.Fprintf(stderr, "taclint: unknown format %q (known: sarif, text)\n", *format)
		return 2
	}
	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(stdout, "%-10s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	root := *dir
	if root == "" {
		root = "."
	}
	root, err := moduleRoot(root)
	if err != nil {
		fmt.Fprintf(stderr, "taclint: %v\n", err)
		return 2
	}

	rules := lint.DefaultRules()
	if *only != "" {
		keep := make(map[string]bool)
		for _, name := range strings.Split(*only, ",") {
			if name = strings.TrimSpace(name); name != "" {
				keep[name] = true
			}
		}
		var kept []lint.Rule
		for _, r := range rules {
			if keep[r.Analyzer.Name] {
				kept = append(kept, r)
				delete(keep, r.Analyzer.Name)
			}
		}
		unknown := make([]string, 0, len(keep))
		for name := range keep {
			unknown = append(unknown, name)
		}
		sort.Strings(unknown)
		if len(unknown) > 0 {
			known := make([]string, 0, len(rules))
			for _, r := range rules {
				known = append(known, r.Analyzer.Name)
			}
			sort.Strings(known)
			fmt.Fprintf(stderr, "taclint: unknown analyzer(s): %s (known: %s)\n",
				strings.Join(unknown, ", "), strings.Join(known, ", "))
			return 2
		}
		rules = kept
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	loader, modPath, err := lint.NewModuleLoader(root)
	if err != nil {
		fmt.Fprintf(stderr, "taclint: %v\n", err)
		return 2
	}
	paths, err := lint.ExpandPatterns(root, modPath, patterns)
	if err != nil {
		fmt.Fprintf(stderr, "taclint: %v\n", err)
		return 2
	}
	findings, err := lint.Run(loader, paths, rules)
	if err != nil {
		fmt.Fprintf(stderr, "taclint: %v\n", err)
		return 2
	}
	if *format == "sarif" {
		// SARIF is always a complete document — a clean tree emits an
		// empty results array, which CI still uploads — and the exit code
		// keeps carrying the verdict.
		if err := lint.WriteSARIF(stdout, findings, root); err != nil {
			fmt.Fprintf(stderr, "taclint: %v\n", err)
			return 2
		}
		if len(findings) > 0 {
			return 1
		}
		return 0
	}
	if len(findings) > 0 {
		lint.Print(stdout, findings, root)
		return 1
	}
	return 0
}

// moduleRoot resolves dir (possibly a package subdirectory) to the
// nearest enclosing directory holding a go.mod.
func moduleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for d := abs; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("no go.mod found at or above %s", abs)
		}
		d = parent
	}
}
