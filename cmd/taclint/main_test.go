package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunRepoClean is the CLI-level acceptance check: taclint over the
// repository's own tree exits 0.
func TestRunRepoClean(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-C", root, "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("taclint ./... = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, &stdout, &stderr)
	}
}

func TestRunList(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("taclint -list = %d, want 0\nstderr:\n%s", code, &stderr)
	}
	for _, name := range []string{"detrand", "maporder", "nilrecv", "sinkerr"} {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-list output missing analyzer %s:\n%s", name, &stdout)
		}
	}
}

func TestRunUnknownAnalyzer(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-only", "detrand,nope"}, &stdout, &stderr); code != 2 {
		t.Fatalf("taclint -only nope = %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "nope") {
		t.Errorf("stderr should name the unknown analyzer:\n%s", &stderr)
	}
}

// TestRunSeededViolation builds a throwaway module named taccc with a
// wall-clock read in internal/assign and asserts the CLI exits 1 and
// prints the finding with its analyzer tag.
func TestRunSeededViolation(t *testing.T) {
	dir := t.TempDir()
	files := map[string]string{
		"go.mod": "module taccc\n\ngo 1.22\n",
		"internal/assign/assign.go": `package assign

import "time"

func Stamp() int64 { return time.Now().UnixNano() }
`,
	}
	for name, src := range files {
		path := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-C", dir, "./..."}, &stdout, &stderr); code != 1 {
		t.Fatalf("taclint on seeded module = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, &stdout, &stderr)
	}
	if !strings.Contains(stdout.String(), "[detrand]") {
		t.Errorf("finding should carry its analyzer tag:\n%s", &stdout)
	}
}
