package main

import (
	"bytes"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"taccc/internal/lint"
)

// TestRunRepoClean is the CLI-level acceptance check: taclint over the
// repository's own tree exits 0.
func TestRunRepoClean(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-C", root, "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("taclint ./... = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, &stdout, &stderr)
	}
}

func TestRunList(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("taclint -list = %d, want 0\nstderr:\n%s", code, &stderr)
	}
	for _, name := range []string{"detrand", "maporder", "nilrecv", "sinkerr"} {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-list output missing analyzer %s:\n%s", name, &stdout)
		}
	}
}

func TestRunUnknownAnalyzer(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-only", "detrand,nope"}, &stdout, &stderr); code != 2 {
		t.Fatalf("taclint -only nope = %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "nope") {
		t.Errorf("stderr should name the unknown analyzer:\n%s", &stderr)
	}
	// The error lists the known analyzers, sorted, so the fix is one
	// copy-paste away.
	known := make([]string, 0, len(lint.Analyzers()))
	for _, a := range lint.Analyzers() {
		known = append(known, a.Name)
	}
	sort.Strings(known)
	if want := "known: " + strings.Join(known, ", "); !strings.Contains(stderr.String(), want) {
		t.Errorf("stderr should list the known analyzers as %q:\n%s", want, &stderr)
	}
}

// TestRunOnlyToleratesEmptySegments pins the flag parsing: stray commas
// ("-only detrand,") must not read as an unknown empty-named analyzer.
func TestRunOnlyToleratesEmptySegments(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-C", root, "-only", "detrand, ,", "./internal/lint"}, &stdout, &stderr); code != 0 {
		t.Fatalf("taclint -only \"detrand, ,\" = %d, want 0\nstderr:\n%s", code, &stderr)
	}
}

func TestRunUnknownFormat(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-format", "xml"}, &stdout, &stderr); code != 2 {
		t.Fatalf("taclint -format xml = %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "sarif, text") {
		t.Errorf("stderr should list the known formats:\n%s", &stderr)
	}
}

// TestRunSeededViolation builds a throwaway module named taccc with a
// wall-clock read in internal/assign and asserts the CLI exits 1 and
// prints the finding with its analyzer tag.
func TestRunSeededViolation(t *testing.T) {
	dir := t.TempDir()
	files := map[string]string{
		"go.mod": "module taccc\n\ngo 1.22\n",
		"internal/assign/assign.go": `package assign

import "time"

func Stamp() int64 { return time.Now().UnixNano() }
`,
	}
	for name, src := range files {
		path := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-C", dir, "./..."}, &stdout, &stderr); code != 1 {
		t.Fatalf("taclint on seeded module = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, &stdout, &stderr)
	}
	if !strings.Contains(stdout.String(), "[detrand]") {
		t.Errorf("finding should carry its analyzer tag:\n%s", &stdout)
	}

	// The same tree in SARIF: still exit 1, and the output is a document
	// the strict reader accepts, carrying the finding at a relative URI.
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-C", dir, "-format", "sarif", "./..."}, &stdout, &stderr); code != 1 {
		t.Fatalf("taclint -format sarif on seeded module = %d, want 1\nstderr:\n%s", code, &stderr)
	}
	findings, err := lint.ReadSARIF(bytes.NewReader(stdout.Bytes()))
	if err != nil {
		t.Fatalf("ReadSARIF on taclint output: %v", err)
	}
	if len(findings) != 1 || findings[0].Analyzer != "detrand" {
		t.Fatalf("sarif findings = %v, want one detrand finding", findings)
	}
	if findings[0].Pos.Filename != "internal/assign/assign.go" {
		t.Errorf("sarif uri = %q, want repo-relative internal/assign/assign.go", findings[0].Pos.Filename)
	}
}

// TestRunSARIFCleanTree checks the clean-tree SARIF path end to end: the
// repository's own lint package emits a complete, valid document with an
// empty results array and exits 0.
func TestRunSARIFCleanTree(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-C", root, "-format", "sarif", "./internal/xrand"}, &stdout, &stderr); code != 0 {
		t.Fatalf("taclint -format sarif ./internal/xrand = %d, want 0\nstderr:\n%s", code, &stderr)
	}
	findings, err := lint.ReadSARIF(bytes.NewReader(stdout.Bytes()))
	if err != nil {
		t.Fatalf("ReadSARIF on clean output: %v", err)
	}
	if len(findings) != 0 {
		t.Errorf("clean tree produced findings in SARIF: %v", findings)
	}
}
