// Command tacbench regenerates the evaluation tables and figures
// (T1..T4, F1..F17; see DESIGN.md and EXPERIMENTS.md).
//
// Usage:
//
//	tacbench -list
//	tacbench -exp T1
//	tacbench -exp all -quick
//	tacbench -exp F3 -reps 10 -csv
//	tacbench -exp all -workers 1   # sequential; same tables, slower
//	tacbench -json BENCH_results.json -quick -reps 5   # perf-gate bench
//
// Experiments and their replication cells run concurrently (bounded by
// -workers, default all cores). Every cell is independently seeded from
// -seed, so output is identical at any worker count.
//
// With -json, tacbench runs the fixed perf-tracking bench suite instead
// of the report experiments and writes machine-readable per-algorithm
// statistics (feasible-runtime and objective, with 95% CIs) to the named
// file; `tacreport old.json new.json -fail-on-regression <pct>` diffs two
// such files, which is how CI gates on BENCH_baseline.json.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	taccc "taccc"
	"taccc/internal/cliutil"
	"taccc/internal/obs"
	"taccc/internal/obs/runlog"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tacbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		exp     = fs.String("exp", "all", "experiment ID (T1..T4, F1..F17) or 'all'")
		reps    = fs.Int("reps", 0, "replications per data point (0 = default)")
		quick   = fs.Bool("quick", false, "smaller instances and horizons")
		csv     = fs.Bool("csv", false, "emit CSV instead of aligned tables")
		outdir  = fs.String("outdir", "", "also write each table as CSV into this directory")
		seed    = fs.Int64("seed", 1, "root seed")
		list    = fs.Bool("list", false, "list experiments and exit")
		workers = fs.Int("workers", runtime.GOMAXPROCS(0), "parallelism across experiments and replication cells (1 = sequential); results are identical at any setting")
		md      = fs.Bool("md", false, "emit Markdown tables")
		prog    = fs.Bool("progress", false, "report per-experiment and per-algorithm progress on stderr")
		metrics = fs.String("metrics-out", "", "write event-count metrics JSON here on exit")
		jsonOut = fs.String("json", "", "run the perf-tracking bench suite instead of -exp and write per-algorithm runtime/objective statistics to this JSON file (see tacreport)")
	)
	version := cliutil.VersionFlag(fs)
	var profiles cliutil.Profiles
	profiles.Flags(fs)
	var telemetry cliutil.Telemetry
	telemetry.Flags(fs)
	var eventsFlag cliutil.EventsFlag
	eventsFlag.Flags(fs, "structured run events (spec/algo/cell)")
	var archive cliutil.Archive
	archive.Flags(fs)
	var trace cliutil.Trace
	trace.Flags(fs)
	var sysmonFlag cliutil.Sysmon
	sysmonFlag.Flags(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *version {
		cliutil.FprintVersion(stdout, "tacbench")
		return 0
	}
	if *list {
		for _, s := range taccc.Experiments() {
			fmt.Fprintf(stdout, "%-4s %s\n", s.ID, s.Title)
		}
		return 0
	}
	var specs []taccc.ExperimentSpec
	if *jsonOut == "" {
		if *exp == "all" {
			specs = taccc.Experiments()
		} else {
			s, err := taccc.ExperimentByID(*exp)
			if err != nil {
				fmt.Fprintf(stderr, "tacbench: %v\n", err)
				return 2
			}
			specs = []taccc.ExperimentSpec{s}
		}
	}
	if *outdir != "" {
		if err := os.MkdirAll(*outdir, 0o755); err != nil {
			fmt.Fprintf(stderr, "tacbench: %v\n", err)
			return 1
		}
	}
	if err := archive.Start("tacbench", fs, *seed); err != nil {
		fmt.Fprintf(stderr, "tacbench: %v\n", err)
		return 1
	}
	// The resource sampler starts before tracing so the root phase (and
	// everything under it) carries begin/end resource attributes.
	if err := sysmonFlag.Start(&archive, trace.Enabled()); err != nil {
		fmt.Fprintf(stderr, "tacbench: %v\n", err)
		return 1
	}
	defer sysmonFlag.Stop()
	traceRoot, err := trace.Start("tacbench", &archive, sysmonFlag.Source())
	if err != nil {
		fmt.Fprintf(stderr, "tacbench: %v\n", err)
		return 1
	}
	stopProfiles, err := profiles.Start(stderr)
	if err != nil {
		fmt.Fprintf(stderr, "tacbench: %v\n", err)
		return 1
	}
	defer stopProfiles()

	// Observability: sinks are strictly observational, so tables are
	// identical whether or not any is attached.
	var sinks []obs.Sink
	if *prog {
		sinks = append(sinks, &progressPrinter{w: stderr})
	}
	eventStream, err := eventsFlag.Open()
	if err != nil {
		fmt.Fprintf(stderr, "tacbench: %v\n", err)
		return 1
	}
	defer eventStream.Close() //lint:allow sinkerr backstop for early returns; the success path checks Close in finishObs
	if eventStream != nil {
		sinks = append(sinks, eventStream.Sink())
	}
	if archive.Enabled() {
		sinks = append(sinks, archive.Sink())
	}
	var metricsReg *obs.Registry
	progressSink := obs.MultiSink(sinks...)
	if *metrics != "" || telemetry.Enabled() || archive.Enabled() {
		metricsReg = obs.NewRegistry()
		progressSink = obs.CountEvents(metricsReg, progressSink)
	}
	stopTelemetry, err := telemetry.Start(stderr, metricsReg, sysmonFlag.Registry())
	if err != nil {
		fmt.Fprintf(stderr, "tacbench: %v\n", err)
		return 1
	}
	defer stopTelemetry()

	finish := func(summary runlog.Summary) int {
		// Detach the sampler from the archive/trace sinks, then finish
		// tracing first so the final spans reach the archive's trace
		// stream before Finish seals it.
		sysmonFlag.CloseStreams()
		if err := trace.Finish(stdout, sysmonFlag.Counters()); err != nil {
			fmt.Fprintf(stderr, "tacbench: %v\n", err)
			return 1
		}
		if err := eventStream.Close(); err != nil {
			fmt.Fprintf(stderr, "tacbench: events: %v\n", err)
			return 1
		}
		if err := archive.Finish(metricsReg, summary, stdout); err != nil {
			fmt.Fprintf(stderr, "tacbench: %v\n", err)
			return 1
		}
		if *metrics != "" {
			f, err := os.Create(*metrics)
			if err != nil {
				fmt.Fprintf(stderr, "tacbench: %v\n", err)
				return 1
			}
			defer f.Close()
			if err := metricsReg.WriteJSON(f); err != nil {
				fmt.Fprintf(stderr, "tacbench: metrics: %v\n", err)
				return 1
			}
		}
		return 0
	}

	opts := taccc.ExperimentOptions{Reps: *reps, Quick: *quick, Seed: *seed, Workers: *workers, Progress: progressSink, Trace: traceRoot}
	if *jsonOut != "" {
		return runBenchJSON(opts, *jsonOut, finish, stdout, stderr)
	}
	// The suite runner executes independent experiments concurrently;
	// results come back in spec order, so the report reads the same at any
	// worker count.
	tables := 0
	for _, res := range taccc.RunExperiments(specs, opts) {
		if res.Err != nil {
			fmt.Fprintf(stderr, "tacbench: %s: %v\n", res.Spec.ID, res.Err)
			return 1
		}
		for _, t := range res.Tables {
			switch {
			case *csv:
				fmt.Fprintf(stdout, "# %s: %s\n%s\n", t.ID, t.Title, t.CSV())
			case *md:
				fmt.Fprintln(stdout, t.Markdown())
			default:
				fmt.Fprintln(stdout, t.Render())
			}
			if *outdir != "" {
				path := filepath.Join(*outdir, t.ID+".csv")
				if err := os.WriteFile(path, []byte(t.CSV()), 0o644); err != nil {
					fmt.Fprintf(stderr, "tacbench: %v\n", err)
					return 1
				}
			}
			tables++
		}
		fmt.Fprintf(stdout, "(%s completed in %s)\n\n", res.Spec.ID, res.Elapsed.Round(time.Millisecond))
	}
	return finish(runlog.Summary{
		"bench.specs_ok": float64(len(specs)),
		"bench.tables":   float64(tables),
	})
}

// runBenchJSON executes the fixed perf-tracking bench suite and writes
// BENCH_results-shaped JSON to path. The archive summary carries the
// deterministic objective side of every (scenario, algorithm) pair.
func runBenchJSON(opts taccc.ExperimentOptions, path string, finish func(runlog.Summary) int, stdout, stderr io.Writer) int {
	res, err := taccc.RunBenchSuite(opts)
	if err != nil {
		fmt.Fprintf(stderr, "tacbench: %v\n", err)
		return 1
	}
	res.Tool, res.Version = "tacbench", cliutil.Version()
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(stderr, "tacbench: %v\n", err)
		return 1
	}
	err = res.WriteJSON(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fmt.Fprintf(stderr, "tacbench: %v\n", err)
		return 1
	}
	summary := runlog.Summary{"bench.scenarios": float64(len(res.Scenarios))}
	algos := 0
	for _, sc := range res.Scenarios {
		algos = len(sc.Algos)
		for _, a := range sc.Algos {
			summary["bench."+sc.ID+"."+a.Name+".mean_cost_ms"] = a.MeanCostMs
			summary["bench."+sc.ID+"."+a.Name+".feasible_rate"] = a.FeasibleRate
			summary["bench."+sc.ID+"."+a.Name+".allocs_per_op"] = float64(a.AllocsPerOp)
		}
	}
	fmt.Fprintf(stdout, "bench:      %d scenarios x %d algorithms -> %s\n", len(res.Scenarios), algos, path)
	return finish(summary)
}

// progressPrinter renders the coarse-grained run events (spec and
// algorithm boundaries) as human-readable stderr lines; per-cell events
// are too chatty for a terminal and are left to -events.
type progressPrinter struct {
	mu sync.Mutex
	w  io.Writer
}

func (p *progressPrinter) Emit(ev taccc.ObsEvent) {
	p.mu.Lock()
	defer p.mu.Unlock()
	switch ev.Kind {
	case "spec-start":
		fmt.Fprintf(p.w, "%v: running (%v)\n", ev.Fields["id"], ev.Fields["title"])
	case "spec-done":
		if ok, _ := ev.Fields["ok"].(bool); !ok {
			fmt.Fprintf(p.w, "%v: FAILED: %v\n", ev.Fields["id"], ev.Fields["error"])
			return
		}
		if ms, isF := ev.Fields["elapsed_ms"].(float64); isF {
			fmt.Fprintf(p.w, "%v: done in %.0f ms\n", ev.Fields["id"], ms)
		}
	case "algo-done":
		if cost, isF := ev.Fields["mean_cost_ms"].(float64); isF {
			fmt.Fprintf(p.w, "  %v: mean %.3f ms\n", ev.Fields["algo"], cost)
		} else {
			fmt.Fprintf(p.w, "  %v: no feasible replication\n", ev.Fields["algo"])
		}
	}
}
