// Command tacbench regenerates the evaluation tables and figures
// (T1..T4, F1..F16; see DESIGN.md and EXPERIMENTS.md).
//
// Usage:
//
//	tacbench -list
//	tacbench -exp T1
//	tacbench -exp all -quick
//	tacbench -exp F3 -reps 10 -csv
//	tacbench -exp all -workers 1   # sequential; same tables, slower
//
// Experiments and their replication cells run concurrently (bounded by
// -workers, default all cores). Every cell is independently seeded from
// -seed, so output is identical at any worker count.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"time"

	taccc "taccc"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tacbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		exp     = fs.String("exp", "all", "experiment ID (T1..T4, F1..F16) or 'all'")
		reps    = fs.Int("reps", 0, "replications per data point (0 = default)")
		quick   = fs.Bool("quick", false, "smaller instances and horizons")
		csv     = fs.Bool("csv", false, "emit CSV instead of aligned tables")
		outdir  = fs.String("outdir", "", "also write each table as CSV into this directory")
		seed    = fs.Int64("seed", 1, "root seed")
		list    = fs.Bool("list", false, "list experiments and exit")
		workers = fs.Int("workers", runtime.GOMAXPROCS(0), "parallelism across experiments and replication cells (1 = sequential); results are identical at any setting")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, s := range taccc.Experiments() {
			fmt.Fprintf(stdout, "%-4s %s\n", s.ID, s.Title)
		}
		return 0
	}
	var specs []taccc.ExperimentSpec
	if *exp == "all" {
		specs = taccc.Experiments()
	} else {
		s, err := taccc.ExperimentByID(*exp)
		if err != nil {
			fmt.Fprintf(stderr, "tacbench: %v\n", err)
			return 2
		}
		specs = []taccc.ExperimentSpec{s}
	}
	if *outdir != "" {
		if err := os.MkdirAll(*outdir, 0o755); err != nil {
			fmt.Fprintf(stderr, "tacbench: %v\n", err)
			return 1
		}
	}
	opts := taccc.ExperimentOptions{Reps: *reps, Quick: *quick, Seed: *seed, Workers: *workers}
	// The suite runner executes independent experiments concurrently;
	// results come back in spec order, so the report reads the same at any
	// worker count.
	for _, res := range taccc.RunExperiments(specs, opts) {
		if res.Err != nil {
			fmt.Fprintf(stderr, "tacbench: %s: %v\n", res.Spec.ID, res.Err)
			return 1
		}
		for _, t := range res.Tables {
			if *csv {
				fmt.Fprintf(stdout, "# %s: %s\n%s\n", t.ID, t.Title, t.CSV())
			} else {
				fmt.Fprintln(stdout, t.Render())
			}
			if *outdir != "" {
				path := filepath.Join(*outdir, t.ID+".csv")
				if err := os.WriteFile(path, []byte(t.CSV()), 0o644); err != nil {
					fmt.Fprintf(stderr, "tacbench: %v\n", err)
					return 1
				}
			}
		}
		fmt.Fprintf(stdout, "(%s completed in %s)\n\n", res.Spec.ID, res.Elapsed.Round(time.Millisecond))
	}
	return 0
}
