package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"taccc/internal/obs"
)

func TestVersionFlag(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-version"}, &out, &errBuf); code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	if !strings.HasPrefix(out.String(), "tacbench ") {
		t.Fatalf("version banner %q", out.String())
	}
}

func TestProgressAndEvents(t *testing.T) {
	eventsPath := filepath.Join(t.TempDir(), "bench.jsonl")
	var out, errBuf bytes.Buffer
	code := run([]string{"-exp", "F1", "-quick", "-reps", "1", "-progress", "-events", eventsPath}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	prog := errBuf.String()
	if !strings.Contains(prog, "F1: running") || !strings.Contains(prog, "F1: done") {
		t.Fatalf("-progress missing spec lines:\n%s", prog)
	}
	if !strings.Contains(prog, "qlearning: mean") {
		t.Fatalf("-progress missing algo lines:\n%s", prog)
	}
	f, err := os.Open(eventsPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	events, err := obs.ReadEventStream(f)
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[string]int{}
	for _, e := range events {
		kinds[e.Kind]++
	}
	if kinds["spec-start"] != 1 || kinds["spec-done"] != 1 {
		t.Fatalf("spec events missing: %v", kinds)
	}
	if kinds["cell"] == 0 || kinds["algo-done"] == 0 {
		t.Fatalf("comparison events missing: %v", kinds)
	}
}

func TestMetricsOutCountsEvents(t *testing.T) {
	metricsPath := filepath.Join(t.TempDir(), "bench-metrics.json")
	var out, errBuf bytes.Buffer
	code := run([]string{"-exp", "F1", "-quick", "-reps", "1", "-metrics-out", metricsPath}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	data, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("metrics not JSON: %v", err)
	}
	if snap.Counters["events.cell"] == 0 || snap.Counters["events.spec-done"] != 1 {
		t.Fatalf("event counters missing: %s", data)
	}
}

func TestMarkdownOutput(t *testing.T) {
	var out, errBuf bytes.Buffer
	code := run([]string{"-exp", "F1", "-quick", "-reps", "1", "-md"}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	s := out.String()
	if !strings.Contains(s, "### F1:") || !strings.Contains(s, "| --- |") {
		t.Fatalf("-md did not render a Markdown table:\n%s", s)
	}
}
