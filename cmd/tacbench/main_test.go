package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestList(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-list"}, &out, &errBuf); code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, id := range []string{"T1", "T3", "F1", "F8"} {
		if !strings.Contains(out.String(), id) {
			t.Errorf("list missing %s", id)
		}
	}
}

func TestRunOneQuick(t *testing.T) {
	var out, errBuf bytes.Buffer
	code := run([]string{"-exp", "F5", "-quick", "-reps", "1", "-seed", "3"}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	if !strings.Contains(out.String(), "F5") || !strings.Contains(out.String(), "completed in") {
		t.Fatalf("unexpected output:\n%s", out.String())
	}
}

func TestRunCSV(t *testing.T) {
	var out, errBuf bytes.Buffer
	code := run([]string{"-exp", "F6", "-quick", "-reps", "1", "-csv"}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	if !strings.Contains(out.String(), "family,") {
		t.Fatalf("CSV header missing:\n%s", out.String())
	}
}

func TestUnknownExperiment(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-exp", "Z9"}, &out, &errBuf); code == 0 {
		t.Fatal("unknown experiment accepted")
	}
}

func TestBadFlag(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-definitely-not-a-flag"}, &out, &errBuf); code == 0 {
		t.Fatal("bad flag accepted")
	}
}

func TestOutdirWritesCSVs(t *testing.T) {
	dir := t.TempDir()
	var out, errBuf bytes.Buffer
	code := run([]string{"-exp", "F5", "-quick", "-reps", "1", "-outdir", dir}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	data, err := os.ReadFile(filepath.Join(dir, "F5.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "n,") {
		t.Fatalf("CSV content unexpected: %q", string(data[:30]))
	}
}
