package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"taccc/internal/experiment"
	"taccc/internal/obs/runlog"
)

// TestBenchJSONWritesResults covers the perf-gate producer: -json runs
// the fixed bench suite and writes a BENCH_results.json that the reader
// round-trips.
func TestBenchJSONWritesResults(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_results.json")
	var out, errBuf bytes.Buffer
	code := run([]string{"-json", path, "-quick", "-reps", "2", "-seed", "3"}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	if !strings.Contains(out.String(), "scenarios") {
		t.Fatalf("no bench summary line on stdout:\n%s", out.String())
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	res, err := experiment.ReadBenchResults(f)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tool != "tacbench" || res.Seed != 3 || res.Reps != 2 || !res.Quick {
		t.Fatalf("results header: %+v", res)
	}
	if len(res.Scenarios) != 3 {
		t.Fatalf("%d scenarios, want 3 (small, tight, meta)", len(res.Scenarios))
	}
	for _, sc := range res.Scenarios {
		if len(sc.Algos) == 0 {
			t.Fatalf("scenario %s has no algorithms", sc.ID)
		}
		for _, a := range sc.Algos {
			if a.Reps != 2 {
				t.Fatalf("%s/%s ran %d reps, want 2", sc.ID, a.Name, a.Reps)
			}
			if a.FeasibleRate > 0 && a.FeasibleRuntimeMs <= 0 {
				t.Fatalf("%s/%s feasible but no runtime recorded: %+v", sc.ID, a.Name, a)
			}
		}
	}
}

// TestBenchJSONWithArchive checks the suite also archives cleanly: the
// run directory carries per-cell events and the bench summary.
func TestBenchJSONWithArchive(t *testing.T) {
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "bench.json")
	arDir := filepath.Join(dir, "run")
	var out, errBuf bytes.Buffer
	code := run([]string{"-json", jsonPath, "-quick", "-reps", "1", "-archive", arDir}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	ar, err := runlog.Load(arDir)
	if err != nil {
		t.Fatal(err)
	}
	if ar.Manifest.Tool != "tacbench" {
		t.Fatalf("manifest tool %q", ar.Manifest.Tool)
	}
	cells := 0
	for _, e := range ar.Events {
		if e.Kind == "cell" {
			cells++
		}
	}
	if cells == 0 {
		t.Fatal("no cell events in bench archive")
	}
	if _, ok := ar.Summary["bench.scenarios"]; !ok {
		t.Fatalf("summary missing bench.scenarios: %v", ar.Summary)
	}
}
