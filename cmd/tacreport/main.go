// Command tacreport analyzes and diffs run archives (written by
// tacsolve/tacsim/tacbench -archive) and bench results files (written by
// tacbench -json).
//
// Usage:
//
//	tacreport runs/a                     # one source -> summary report
//	tacreport runs/a runs/b              # two sources -> diff report
//	tacreport BENCH_baseline.json BENCH_results.json -fail-on-regression 20
//	tacreport runs/a runs/b -json report.json -o report.md
//
// A source is a run archive directory (detected by its manifest.json) or
// a bench results JSON file; both sides of a diff must be the same kind.
// Diff verdicts use 95% confidence intervals where the sources carry
// them: a metric is a REGRESSION only when its delta stays beyond the
// threshold after subtracting the propagated CI half-width, so noisy
// runtime wobble does not fail the perf gate. With -fail-on-regression,
// any REGRESSION makes tacreport exit 3 — the CI perf-gate contract.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"taccc/internal/cliutil"
	"taccc/internal/report"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tacreport", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		threshold = fs.Float64("threshold", 5, "significance threshold in percent for diff verdicts")
		failOn    = fs.Float64("fail-on-regression", -1, "exit with code 3 when any metric regresses confidently by more than this percent (overrides -threshold; < 0 disables)")
		outMD     = fs.String("o", "", "write the Markdown report to this file instead of stdout")
		outJSON   = fs.String("json", "", "also write the report as JSON to this file ('-' = stdout)")
	)
	version := cliutil.VersionFlag(fs)
	// Collect positionals while letting flags appear before, between or
	// after them (stdlib flag parsing stops at the first non-flag).
	var paths []string
	for rest := args; ; {
		if err := fs.Parse(rest); err != nil {
			return 2
		}
		if fs.NArg() == 0 {
			break
		}
		paths = append(paths, fs.Arg(0))
		rest = fs.Args()[1:]
	}
	if *version {
		cliutil.FprintVersion(stdout, "tacreport")
		return 0
	}
	if len(paths) < 1 || len(paths) > 2 {
		fmt.Fprintln(stderr, "tacreport: expected one source (summary) or two sources (diff); a source is a run-archive directory or a bench results JSON file")
		return 2
	}
	if *failOn >= 0 {
		*threshold = *failOn
	}

	sources := make([]*report.Source, len(paths))
	for i, p := range paths {
		s, err := report.LoadSource(p)
		if err != nil {
			fmt.Fprintf(stderr, "tacreport: %v\n", err)
			return 1
		}
		sources[i] = s
	}

	var markdown string
	var writeJSON func(io.Writer) error
	exit := 0
	if len(sources) == 1 {
		rep := report.Summarize(sources[0])
		markdown = rep.Markdown()
		writeJSON = rep.WriteJSON
	} else {
		diff, err := report.DiffSources(sources[0], sources[1], *threshold)
		if err != nil {
			fmt.Fprintf(stderr, "tacreport: %v\n", err)
			return 1
		}
		markdown = diff.Markdown()
		writeJSON = diff.WriteJSON
		for _, m := range diff.Metrics {
			if m.Verdict != report.VerdictOK {
				fmt.Fprintln(stderr, m.VerdictLine())
			}
		}
		if *failOn >= 0 && diff.Regressions > 0 {
			fmt.Fprintf(stderr, "tacreport: %d metric(s) regressed confidently by more than %.1f%%\n", diff.Regressions, *threshold)
			exit = 3
		}
	}

	if *outMD != "" {
		if err := os.WriteFile(*outMD, []byte(markdown), 0o644); err != nil {
			fmt.Fprintf(stderr, "tacreport: %v\n", err)
			return 1
		}
	} else {
		fmt.Fprint(stdout, markdown)
	}
	if *outJSON != "" {
		w := stdout
		if *outJSON != "-" {
			f, err := os.Create(*outJSON)
			if err != nil {
				fmt.Fprintf(stderr, "tacreport: %v\n", err)
				return 1
			}
			defer f.Close()
			w = f
		}
		if err := writeJSON(w); err != nil {
			fmt.Fprintf(stderr, "tacreport: %v\n", err)
			return 1
		}
	}
	return exit
}
