package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"taccc/internal/experiment"
	"taccc/internal/obs"
	"taccc/internal/obs/runlog"
)

// writeArchive fabricates a small run archive with a convergence curve,
// latency histogram and scalar summary, scaled by latencyScale.
func writeArchive(t *testing.T, dir string, latencyScale float64) {
	t.Helper()
	w, err := runlog.Create(dir, runlog.Manifest{Tool: "tacsim", Version: "test", Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	prog := obs.EventProgress(w.Sink())
	for i, c := range []float64{90, 80, 70} {
		obs.EmitIter(prog, "qlearning", i, c*latencyScale, true)
	}
	reg := obs.NewRegistry()
	for _, v := range []float64{5, 10, 20} {
		reg.Histogram("cluster.latency_ms", obs.DefaultLatencyBucketsMs()).Observe(v * latencyScale)
		reg.Histogram("cluster.delay.queue_ms", obs.DefaultLatencyBucketsMs()).Observe(v * latencyScale)
	}
	reg.Counter("cluster.requests_sent").Add(10)
	reg.Counter("cluster.requests_missed").Add(1)
	if err := w.Close(reg.Snapshot(), runlog.Summary{"sim.latency_p95_ms": 20 * latencyScale}); err != nil {
		t.Fatal(err)
	}
}

// writeBench writes a bench results file whose greedy runtime on the
// "tight" scenario is scaled by slowdown — the injected-regression knob.
func writeBench(t *testing.T, path string, slowdown float64) {
	t.Helper()
	res := &experiment.BenchResults{
		Tool: "tacbench", Version: "test", Seed: 1, Reps: 5,
		Scenarios: []experiment.BenchScenario{
			{ID: "small", NumIoT: 30, NumEdge: 4, Rho: 0.7, Algos: []experiment.BenchAlgo{
				{Name: "greedy", MeanCostMs: 20, CostCI95Ms: 0.2, FeasibleRuntimeMs: 0.5, RuntimeCI95Ms: 0.02, FeasibleRate: 1, Reps: 5},
			}},
			{ID: "tight", NumIoT: 40, NumEdge: 5, Rho: 0.9, Algos: []experiment.BenchAlgo{
				{Name: "greedy", MeanCostMs: 30, CostCI95Ms: 0.3, FeasibleRuntimeMs: 1 * slowdown, RuntimeCI95Ms: 0.05, FeasibleRate: 1, Reps: 5},
			}},
		},
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := res.WriteJSON(f); err != nil {
		t.Fatal(err)
	}
}

func TestVersionFlag(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-version"}, &out, &errBuf); code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	if !strings.HasPrefix(out.String(), "tacreport ") {
		t.Fatalf("version banner %q", out.String())
	}
}

func TestUsageErrors(t *testing.T) {
	for _, args := range [][]string{
		{},
		{"a", "b", "c"},
		{"-no-such-flag"},
	} {
		var out, errBuf bytes.Buffer
		if code := run(args, &out, &errBuf); code != 2 {
			t.Errorf("args %v: exit %d, want 2 (stderr: %s)", args, code, errBuf.String())
		}
	}
}

func TestSummaryReport(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "run")
	writeArchive(t, dir, 1)
	var out, errBuf bytes.Buffer
	if code := run([]string{dir}, &out, &errBuf); code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	md := out.String()
	for _, want := range []string{"## Convergence", "qlearning", "## Delay attribution", "miss rate"} {
		if !strings.Contains(md, want) {
			t.Fatalf("summary missing %q:\n%s", want, md)
		}
	}
}

// TestDiffSameSeedArchivesIsClean is the acceptance criterion: diffing
// two archives from identical runs reports zero regressions and exits 0
// even under -fail-on-regression.
func TestDiffSameSeedArchivesIsClean(t *testing.T) {
	dir := t.TempDir()
	a, b := filepath.Join(dir, "a"), filepath.Join(dir, "b")
	writeArchive(t, a, 1)
	writeArchive(t, b, 1)
	var out, errBuf bytes.Buffer
	if code := run([]string{a, b, "-fail-on-regression", "5"}, &out, &errBuf); code != 0 {
		t.Fatalf("exit %d diffing identical archives: %s", code, errBuf.String())
	}
	if !strings.Contains(out.String(), "0 regression(s)") {
		t.Fatalf("diff report does not state 0 regressions:\n%s", out.String())
	}
	if strings.Contains(errBuf.String(), "REGRESSION") {
		t.Fatalf("verdicts on identical archives:\n%s", errBuf.String())
	}
}

func TestDiffArchivesFlagsSlowdown(t *testing.T) {
	dir := t.TempDir()
	a, b := filepath.Join(dir, "a"), filepath.Join(dir, "b")
	writeArchive(t, a, 1)
	writeArchive(t, b, 3)
	var out, errBuf bytes.Buffer
	if code := run([]string{a, b, "-fail-on-regression", "20"}, &out, &errBuf); code != 3 {
		t.Fatalf("exit %d on 3x latency, want 3: %s", code, errBuf.String())
	}
	if !strings.Contains(errBuf.String(), "REGRESSION sim.latency_p95_ms") {
		t.Fatalf("stderr missing verdict line:\n%s", errBuf.String())
	}
}

// TestPerfGateFailsOnInjectedSlowdown is the acceptance criterion for
// the perf gate: a doctored BENCH_results.json with a 2x runtime
// slowdown must fail the gate with exit code 3.
func TestPerfGateFailsOnInjectedSlowdown(t *testing.T) {
	dir := t.TempDir()
	baseline := filepath.Join(dir, "BENCH_baseline.json")
	doctored := filepath.Join(dir, "BENCH_results.json")
	writeBench(t, baseline, 1)
	writeBench(t, doctored, 2)

	var out, errBuf bytes.Buffer
	if code := run([]string{baseline, doctored, "-fail-on-regression", "20"}, &out, &errBuf); code != 3 {
		t.Fatalf("gate did not fail on injected slowdown: exit %d\n%s", code, errBuf.String())
	}
	if !strings.Contains(errBuf.String(), "REGRESSION tight/greedy feasible_runtime_ms") {
		t.Fatalf("stderr missing the doctored metric's verdict:\n%s", errBuf.String())
	}
	// Cost metrics were untouched: they must not appear as regressions.
	if strings.Contains(errBuf.String(), "mean_cost_ms") {
		t.Fatalf("untouched cost metric flagged:\n%s", errBuf.String())
	}

	// The same pair passes when results match the baseline.
	writeBench(t, doctored, 1)
	out.Reset()
	errBuf.Reset()
	if code := run([]string{baseline, doctored, "-fail-on-regression", "20"}, &out, &errBuf); code != 0 {
		t.Fatalf("gate failed on identical bench results: exit %d\n%s", code, errBuf.String())
	}
}

func TestOutputFiles(t *testing.T) {
	dir := t.TempDir()
	a, b := filepath.Join(dir, "a"), filepath.Join(dir, "b")
	writeArchive(t, a, 1)
	writeArchive(t, b, 1)
	mdPath := filepath.Join(dir, "report.md")
	jsonPath := filepath.Join(dir, "report.json")
	var out, errBuf bytes.Buffer
	if code := run([]string{a, b, "-o", mdPath, "-json", jsonPath}, &out, &errBuf); code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	if out.Len() != 0 {
		t.Fatalf("-o should silence stdout, got:\n%s", out.String())
	}
	md, err := os.ReadFile(mdPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(md), "# tacreport diff") {
		t.Fatalf("markdown file content:\n%s", md)
	}
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var diff struct {
		Metrics []struct {
			Name    string `json:"name"`
			Verdict string `json:"verdict"`
		} `json:"metrics"`
	}
	if err := json.Unmarshal(data, &diff); err != nil {
		t.Fatalf("JSON report does not parse: %v", err)
	}
	if len(diff.Metrics) == 0 {
		t.Fatal("JSON report has no metrics")
	}
}

func TestMixedSourceKindsRejected(t *testing.T) {
	dir := t.TempDir()
	ar := filepath.Join(dir, "run")
	writeArchive(t, ar, 1)
	bench := filepath.Join(dir, "bench.json")
	writeBench(t, bench, 1)
	var out, errBuf bytes.Buffer
	if code := run([]string{ar, bench}, &out, &errBuf); code != 1 {
		t.Fatalf("archive-vs-bench diff: exit %d, want 1 (stderr: %s)", code, errBuf.String())
	}
}
