package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	taccc "taccc"
	"taccc/internal/obs"
	"taccc/internal/obs/runlog"
)

// writeTrace produces a real trace via a tiny simulation.
func writeTrace(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "trace.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	w, err := taccc.NewTraceWriter(f)
	if err != nil {
		t.Fatal(err)
	}
	built, err := taccc.Scenario{NumIoT: 10, NumEdge: 2, Seed: 4}.Build()
	if err != nil {
		t.Fatal(err)
	}
	a, err := taccc.NewGreedy().Assign(built.Instance)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := taccc.NewSimulator(taccc.SimConfig{
		UplinkMs:    built.Delay.DelayMs,
		Devices:     built.Devices,
		ServiceRate: taccc.ServiceRates(built.Capacity, 0.7),
		Assignment:  a.Of,
		Recorder:    w,
		Seed:        4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(5_000); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestAnalyzeTrace(t *testing.T) {
	path := writeTrace(t)
	var out, errBuf bytes.Buffer
	code := run([]string{"-in", path, "-window", "1000"}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	for _, want := range []string{"records:", "latency:", "per-edge completions:", "time series"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestAnalyzeErrors(t *testing.T) {
	cases := [][]string{
		{},
		{"-in", "/nonexistent.csv"},
		{"-bad-flag"},
	}
	for _, args := range cases {
		var out, errBuf bytes.Buffer
		if code := run(args, &out, &errBuf); code == 0 {
			t.Errorf("args %v: expected nonzero exit", args)
		}
	}
	// Garbage file.
	bad := filepath.Join(t.TempDir(), "bad.csv")
	if err := os.WriteFile(bad, []byte("not,a,trace\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errBuf bytes.Buffer
	if code := run([]string{"-in", bad}, &out, &errBuf); code == 0 {
		t.Error("garbage trace accepted")
	}
	// Bad window on a good file.
	good := writeTrace(t)
	if code := run([]string{"-in", good, "-window", "0"}, &out, &errBuf); code == 0 {
		t.Error("zero window accepted")
	}
}

// TestWindowUsageErrors: a non-positive -window is a usage error (exit
// 2), caught before any input is read.
func TestWindowUsageErrors(t *testing.T) {
	for _, w := range []string{"0", "-5", "-0.5"} {
		var out, errBuf bytes.Buffer
		code := run([]string{"-in", "/nonexistent.csv", "-window", w}, &out, &errBuf)
		if code != 2 {
			t.Errorf("-window %s: exit %d, want 2 (stderr: %s)", w, code, errBuf.String())
		}
		if !strings.Contains(errBuf.String(), "-window") {
			t.Errorf("-window %s: error does not name the flag: %s", w, errBuf.String())
		}
	}
}

// simulateBoth replays one small simulation into both a CSV trace and a
// run archive whose event stream carries the request spans — the same
// run seen through tactrace's two input paths.
func simulateBoth(t *testing.T, csvPath, arDir string) {
	t.Helper()
	cf, err := os.Create(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	defer cf.Close()
	w, err := taccc.NewTraceWriter(cf)
	if err != nil {
		t.Fatal(err)
	}
	aw, err := runlog.Create(arDir, runlog.Manifest{Tool: "tacsim", Version: "devel", Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	built, err := taccc.Scenario{NumIoT: 10, NumEdge: 2, Seed: 4}.Build()
	if err != nil {
		t.Fatal(err)
	}
	a, err := taccc.NewGreedy().Assign(built.Instance)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := taccc.NewSimulator(taccc.SimConfig{
		UplinkMs:    built.Delay.DelayMs,
		Devices:     built.Devices,
		ServiceRate: taccc.ServiceRates(built.Capacity, 0.7),
		Assignment:  a.Of,
		Recorder:    w,
		Spans:       aw.Sink(),
		Seed:        4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(5_000); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := aw.Close(obs.Snapshot{}, nil); err != nil {
		t.Fatal(err)
	}
}

// TestAnalyzeArchive: -in accepts a run-archive directory, recovering
// the request records from the archived span events. The numbers must
// match a CSV trace of the same run.
func TestAnalyzeArchive(t *testing.T) {
	dir := t.TempDir()
	csvPath := filepath.Join(dir, "trace.csv")
	arDir := filepath.Join(dir, "run")
	simulateBoth(t, csvPath, arDir)

	var fromCSV, fromArchive, errBuf bytes.Buffer
	if code := run([]string{"-in", csvPath, "-window", "1000"}, &fromCSV, &errBuf); code != 0 {
		t.Fatalf("csv exit %d: %s", code, errBuf.String())
	}
	if code := run([]string{"-in", arDir, "-window", "1000"}, &fromArchive, &errBuf); code != 0 {
		t.Fatalf("archive exit %d: %s", code, errBuf.String())
	}
	if fromCSV.String() != fromArchive.String() {
		t.Errorf("archive analysis differs from CSV analysis:\ncsv:\n%s\narchive:\n%s",
			fromCSV.String(), fromArchive.String())
	}

	// A directory that is not an archive is a load error, not a panic.
	var o, e bytes.Buffer
	if code := run([]string{"-in", t.TempDir()}, &o, &e); code != 1 {
		t.Errorf("non-archive dir: exit %d, want 1 (stderr: %s)", code, e.String())
	}
}

// TestChromeValidation: -chrome strictly validates trace-event exports.
func TestChromeValidation(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "trace.json")
	var col obs.SpanCollector
	clock := obs.NewManualClock(0)
	tr := obs.NewTracer(&col, clock)
	root := tr.Root("pipeline")
	clock.Advance(3)
	ph := root.Child("solve")
	clock.Advance(4)
	ph.End()
	root.End()
	gf, err := os.Create(good)
	if err != nil {
		t.Fatal(err)
	}
	err = obs.WriteChromeTrace(gf, col.Spans())
	if cerr := gf.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		t.Fatal(err)
	}
	var out, errBuf bytes.Buffer
	if code := run([]string{"-chrome", good}, &out, &errBuf); code != 0 {
		t.Fatalf("-chrome on a real export: exit %d: %s", code, errBuf.String())
	}
	if !strings.Contains(out.String(), "valid") {
		t.Errorf("validation output: %s", out.String())
	}
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"traceEvents": [{"ph": "X"}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := run([]string{"-chrome", bad}, &out, &errBuf); code != 1 {
		t.Errorf("-chrome on malformed export: exit %d, want 1", code)
	}
	if code := run([]string{"-chrome", filepath.Join(dir, "missing.json")}, &out, &errBuf); code != 1 {
		t.Errorf("-chrome on missing file: exit %d, want 1", code)
	}
}

func TestVersionFlag(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-version"}, &out, &errBuf); code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	if !strings.HasPrefix(out.String(), "tactrace ") {
		t.Fatalf("version banner %q", out.String())
	}
}
