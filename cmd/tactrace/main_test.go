package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	taccc "taccc"
)

// writeTrace produces a real trace via a tiny simulation.
func writeTrace(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "trace.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	w, err := taccc.NewTraceWriter(f)
	if err != nil {
		t.Fatal(err)
	}
	built, err := taccc.Scenario{NumIoT: 10, NumEdge: 2, Seed: 4}.Build()
	if err != nil {
		t.Fatal(err)
	}
	a, err := taccc.NewGreedy().Assign(built.Instance)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := taccc.NewSimulator(taccc.SimConfig{
		UplinkMs:    built.Delay.DelayMs,
		Devices:     built.Devices,
		ServiceRate: taccc.ServiceRates(built.Capacity, 0.7),
		Assignment:  a.Of,
		Recorder:    w,
		Seed:        4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(5_000); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestAnalyzeTrace(t *testing.T) {
	path := writeTrace(t)
	var out, errBuf bytes.Buffer
	code := run([]string{"-in", path, "-window", "1000"}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	for _, want := range []string{"records:", "latency:", "per-edge completions:", "time series"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestAnalyzeErrors(t *testing.T) {
	cases := [][]string{
		{},
		{"-in", "/nonexistent.csv"},
		{"-bad-flag"},
	}
	for _, args := range cases {
		var out, errBuf bytes.Buffer
		if code := run(args, &out, &errBuf); code == 0 {
			t.Errorf("args %v: expected nonzero exit", args)
		}
	}
	// Garbage file.
	bad := filepath.Join(t.TempDir(), "bad.csv")
	if err := os.WriteFile(bad, []byte("not,a,trace\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errBuf bytes.Buffer
	if code := run([]string{"-in", bad}, &out, &errBuf); code == 0 {
		t.Error("garbage trace accepted")
	}
	// Bad window on a good file.
	good := writeTrace(t)
	if code := run([]string{"-in", good, "-window", "0"}, &out, &errBuf); code == 0 {
		t.Error("zero window accepted")
	}
}

func TestVersionFlag(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-version"}, &out, &errBuf); code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	if !strings.HasPrefix(out.String(), "tactrace ") {
		t.Fatalf("version banner %q", out.String())
	}
}
