// Command tactrace analyzes a per-request CSV trace produced by
// tacsim -trace (or any cluster.Recorder feeding taccc.TraceWriter):
// aggregate summary, per-edge breakdown, and a latency-over-time series.
//
// Usage:
//
//	tacsim -iot 100 -edge 10 -duration 60 -trace run.csv
//	tactrace -in run.csv
//	tactrace -in run.csv -window 5000
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	taccc "taccc"
	"taccc/internal/cliutil"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tactrace", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		in     = fs.String("in", "", "trace CSV file (required)")
		window = fs.Float64("window", 10_000, "time-series bucket width in ms")
	)
	version := cliutil.VersionFlag(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *version {
		cliutil.FprintVersion(stdout, "tactrace")
		return 0
	}
	if *in == "" {
		fmt.Fprintln(stderr, "tactrace: -in is required")
		return 2
	}
	f, err := os.Open(*in)
	if err != nil {
		fmt.Fprintf(stderr, "tactrace: %v\n", err)
		return 1
	}
	records, err := taccc.ReadTrace(f)
	f.Close()
	if err != nil {
		fmt.Fprintf(stderr, "tactrace: %v\n", err)
		return 1
	}

	sum := taccc.SummarizeTrace(records)
	fmt.Fprintf(stdout, "records:    %d (%d completed, %d missed deadline, %d dropped)\n",
		len(records), sum.Completed, sum.Missed, sum.Dropped)
	if sum.Completed > 0 {
		fmt.Fprintf(stdout, "latency:    mean=%.2fms p50=%.2fms p95=%.2fms p99=%.2fms\n",
			sum.Latency.Mean(), sum.Latency.Median(), sum.Latency.P95(), sum.Latency.P99())
		fmt.Fprintf(stdout, "miss rate:  %.2f%%\n", 100*sum.MissRate())
	}

	if len(sum.PerEdge) > 0 {
		edges := make([]int, 0, len(sum.PerEdge))
		for e := range sum.PerEdge {
			edges = append(edges, e)
		}
		sort.Ints(edges)
		fmt.Fprintln(stdout, "\nper-edge completions:")
		for _, e := range edges {
			fmt.Fprintf(stdout, "  edge-%d: %d\n", e, sum.PerEdge[e])
		}
	}

	series, err := taccc.TraceTimeSeries(records, *window)
	if err != nil {
		fmt.Fprintf(stderr, "tactrace: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "\ntime series (%.0f ms windows):\n", *window)
	fmt.Fprintln(stdout, "start_ms  completed  dropped  mean_ms  p95_ms")
	for _, w := range series {
		fmt.Fprintf(stdout, "%8.0f  %9d  %7d  %7.2f  %7.2f\n",
			w.StartMs, w.Completed, w.Dropped, w.MeanLatencyMs, w.P95Ms)
	}
	return 0
}
