// Command tactrace analyzes a per-request trace: either a CSV produced
// by tacsim -trace (or any cluster.Recorder feeding taccc.TraceWriter)
// or a run-archive directory whose event stream carries request spans
// (tacsim -archive). Output: aggregate summary, per-edge breakdown, and
// a latency-over-time series. -chrome instead validates a Chrome
// trace-event JSON export (tacsolve/tacbench/tacsim -trace-out) with
// the strict decoder — the CI trace-smoke gate.
//
// Usage:
//
//	tacsim -iot 100 -edge 10 -duration 60 -trace run.csv
//	tactrace -in run.csv
//	tactrace -in run.csv -window 5000
//	tacsim -iot 100 -edge 10 -archive runs/a
//	tactrace -in runs/a
//	tactrace -chrome trace.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	taccc "taccc"
	"taccc/internal/cliutil"
	"taccc/internal/obs"
	"taccc/internal/report"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tactrace", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		in     = fs.String("in", "", "trace CSV file or run-archive directory (required unless -chrome)")
		window = fs.Float64("window", 10_000, "time-series bucket width in ms (must be > 0)")
		chrome = fs.String("chrome", "", "validate a Chrome trace-event JSON export (from -trace-out) and exit")
	)
	version := cliutil.VersionFlag(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *version {
		cliutil.FprintVersion(stdout, "tactrace")
		return 0
	}
	if *chrome != "" {
		return validateChrome(*chrome, stdout, stderr)
	}
	if *in == "" {
		fmt.Fprintln(stderr, "tactrace: -in is required")
		return 2
	}
	if *window <= 0 {
		fmt.Fprintf(stderr, "tactrace: -window must be > 0, got %g\n", *window)
		return 2
	}
	records, err := loadRecords(*in)
	if err != nil {
		fmt.Fprintf(stderr, "tactrace: %v\n", err)
		return 1
	}

	sum := taccc.SummarizeTrace(records)
	fmt.Fprintf(stdout, "records:    %d (%d completed, %d missed deadline, %d dropped)\n",
		len(records), sum.Completed, sum.Missed, sum.Dropped)
	if sum.Completed > 0 {
		fmt.Fprintf(stdout, "latency:    mean=%.2fms p50=%.2fms p95=%.2fms p99=%.2fms\n",
			sum.Latency.Mean(), sum.Latency.Median(), sum.Latency.P95(), sum.Latency.P99())
		fmt.Fprintf(stdout, "miss rate:  %.2f%%\n", 100*sum.MissRate())
	}

	if len(sum.PerEdge) > 0 {
		edges := make([]int, 0, len(sum.PerEdge))
		for e := range sum.PerEdge {
			edges = append(edges, e)
		}
		sort.Ints(edges)
		fmt.Fprintln(stdout, "\nper-edge completions:")
		for _, e := range edges {
			fmt.Fprintf(stdout, "  edge-%d: %d\n", e, sum.PerEdge[e])
		}
	}

	series, err := taccc.TraceTimeSeries(records, *window)
	if err != nil {
		fmt.Fprintf(stderr, "tactrace: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "\ntime series (%.0f ms windows):\n", *window)
	fmt.Fprintln(stdout, "start_ms  completed  dropped  mean_ms  p95_ms")
	for _, w := range series {
		fmt.Fprintf(stdout, "%8.0f  %9d  %7d  %7.2f  %7.2f\n",
			w.StartMs, w.Completed, w.Dropped, w.MeanLatencyMs, w.P95Ms)
	}
	return 0
}

// loadRecords reads request records from path: a run-archive directory
// (via the same loader tacreport uses, extracting the event stream's
// request spans) or a CSV trace file.
func loadRecords(path string) ([]taccc.RequestRecord, error) {
	st, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	if st.IsDir() {
		src, err := report.LoadSource(path)
		if err != nil {
			return nil, err
		}
		records, err := taccc.TraceFromSpanEvents(src.Archive.Events)
		if err != nil {
			return nil, err
		}
		if len(records) == 0 {
			return nil, fmt.Errorf("%s: archive carries no request spans (run tacsim with -archive to record them)", path)
		}
		return records, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return taccc.ReadTrace(f)
}

// validateChrome strictly decodes a Chrome trace-event export and
// reports what it holds; any structural violation fails the run.
func validateChrome(path string, stdout, stderr io.Writer) int {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintf(stderr, "tactrace: %v\n", err)
		return 1
	}
	defer f.Close()
	ct, err := obs.ReadChromeTrace(f)
	if err != nil {
		fmt.Fprintf(stderr, "tactrace: %s: %v\n", path, err)
		return 1
	}
	spans, meta, counters := 0, 0, 0
	threads := map[int]bool{}
	counterTracks := map[string]bool{}
	for _, ev := range ct.TraceEvents {
		switch ev.Ph {
		case "X":
			spans++
			threads[ev.Tid] = true
		case "M":
			meta++
		case "C":
			counters++
			counterTracks[ev.Name] = true
		}
	}
	fmt.Fprintf(stdout, "chrome trace %s: valid (%d spans on %d threads, %d metadata events)\n",
		path, spans, len(threads), meta)
	if counters > 0 {
		fmt.Fprintf(stdout, "chrome trace %s: %d counter events on %d tracks\n",
			path, counters, len(counterTracks))
	}
	return 0
}
