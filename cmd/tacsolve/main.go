// Command tacsolve solves an assignment-problem instance (as produced by
// tacgen) with a chosen algorithm and reports delay, load and feasibility.
//
// Usage:
//
//	tacsolve -instance inst.json -algo qlearning
//	tacsolve -instance inst.json -algo exact            # branch-and-bound
//	tacsolve -instance inst.json -algo greedy -o a.json # save assignment
//	tacsolve -instance inst.json -algo all -workers 4   # compare, 4 solvers at a time
//	tacsolve -instance inst.json -archive runs/a        # self-contained run archive
//	tacsolve -iot 200 -edge 12 -rho 0.8 -algo tabu      # generate the scenario in-process
//	tacsolve -iot 200 -edge 12 -trace-out trace.json    # + Perfetto pipeline trace
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"sync"
	"time"

	taccc "taccc"
	"taccc/internal/cliutil"
	"taccc/internal/obs"
	"taccc/internal/obs/runlog"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tacsolve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		instPath = fs.String("instance", "", "instance JSON file (or generate one with -iot/-edge)")
		iot      = fs.Int("iot", 0, "scenario mode: number of IoT devices (generates the instance in-process; excludes -instance)")
		edge     = fs.Int("edge", 0, "scenario mode: number of edge servers")
		rho      = fs.Float64("rho", 0.7, "scenario mode: capacity tightness in (0, 1]")
		family   = fs.String("family", "hierarchical", "scenario mode: topology family (hierarchical, geometric, waxman, barabasi-albert, grid, fattree, star, ring)")
		algo     = fs.String("algo", "qlearning", "algorithm name, 'exact' for branch-and-bound, or 'all' to compare every algorithm")
		seed     = fs.Int64("seed", 1, "algorithm seed")
		out      = fs.String("o", "", "write the assignment JSON here")
		list     = fs.Bool("list", false, "list available algorithms and exit")
		workers  = fs.Int("workers", runtime.GOMAXPROCS(0), "parallelism for -algo all (1 = sequential); the portfolio algorithm always runs its members concurrently")
		progress = fs.Bool("progress", false, "print solver improvements to stderr as they happen")
		metrics  = fs.String("metrics-out", "", "write a metrics-registry snapshot JSON here on exit")
	)
	version := cliutil.VersionFlag(fs)
	var profiles cliutil.Profiles
	profiles.Flags(fs)
	var telemetry cliutil.Telemetry
	telemetry.Flags(fs)
	var eventsFlag cliutil.EventsFlag
	eventsFlag.Flags(fs, "per-iteration solver events")
	var archive cliutil.Archive
	archive.Flags(fs)
	var trace cliutil.Trace
	trace.Flags(fs)
	var sysmonFlag cliutil.Sysmon
	sysmonFlag.Flags(fs)
	var sloFlag cliutil.SLO
	sloFlag.Flags(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *version {
		cliutil.FprintVersion(stdout, "tacsolve")
		return 0
	}
	if err := sysmonFlag.Validate(); err != nil {
		fmt.Fprintf(stderr, "tacsolve: %v\n", err)
		return 2
	}
	if err := sloFlag.Validate(); err != nil {
		fmt.Fprintf(stderr, "tacsolve: %v\n", err)
		return 2
	}
	if err := archive.Start("tacsolve", fs, *seed); err != nil {
		fmt.Fprintf(stderr, "tacsolve: %v\n", err)
		return 1
	}
	// The resource sampler starts before tracing so the root phase (and
	// everything under it) carries begin/end resource attributes.
	if err := sysmonFlag.Start(&archive, trace.Enabled()); err != nil {
		fmt.Fprintf(stderr, "tacsolve: %v\n", err)
		return 1
	}
	defer sysmonFlag.Stop()
	if err := sloFlag.Start(&archive); err != nil {
		fmt.Fprintf(stderr, "tacsolve: %v\n", err)
		return 1
	}
	traceRoot, err := trace.Start("tacsolve", &archive, sysmonFlag.Source())
	if err != nil {
		fmt.Fprintf(stderr, "tacsolve: %v\n", err)
		return 1
	}
	stopProfiles, err := profiles.Start(stderr)
	if err != nil {
		fmt.Fprintf(stderr, "tacsolve: %v\n", err)
		return 1
	}
	defer stopProfiles()

	// Observability hooks: all optional, none changes solver results.
	var sinks []taccc.ProgressSink
	if *progress {
		sinks = append(sinks, taccc.NewProgressWriter(stderr))
	}
	eventStream, err := eventsFlag.Open()
	if err != nil {
		fmt.Fprintf(stderr, "tacsolve: %v\n", err)
		return 1
	}
	defer eventStream.Close() //lint:allow sinkerr backstop for early returns; the success path checks Close in finishObs
	// Solver iteration events flow to the -events file and the -archive
	// event stream alike.
	var evSinks []obs.Sink
	if eventStream != nil {
		evSinks = append(evSinks, eventStream.Sink())
	}
	if archive.Enabled() {
		evSinks = append(evSinks, archive.Sink())
	}
	if eventSink := obs.MultiSink(evSinks...); eventSink != nil {
		sinks = append(sinks, taccc.EventProgress(eventSink))
	}
	var metricsReg *taccc.MetricsRegistry
	if *metrics != "" || telemetry.Enabled() || archive.Enabled() {
		metricsReg = taccc.NewMetricsRegistry()
		sinks = append(sinks, taccc.MetricsProgress(metricsReg))
	}
	stopTelemetry, err := telemetry.Start(stderr, metricsReg, sysmonFlag.Registry(), sloFlag.Registry())
	if err != nil {
		fmt.Fprintf(stderr, "tacsolve: %v\n", err)
		return 1
	}
	defer stopTelemetry()
	sink := taccc.MultiProgress(sinks...)
	finishObs := func(summary runlog.Summary) int {
		// Detach the resource sampler from the archive/trace sinks (with
		// one final sample) before those streams are sealed, then finish
		// tracing first: it ends the root phase, so the final spans are in
		// the archive's trace stream before Finish seals it.
		sysmonFlag.CloseStreams()
		if err := trace.Finish(stdout, sysmonFlag.Counters()); err != nil {
			fmt.Fprintf(stderr, "tacsolve: %v\n", err)
			return 1
		}
		if err := eventStream.Close(); err != nil {
			fmt.Fprintf(stderr, "tacsolve: events: %v\n", err)
			return 1
		}
		if err := archive.Finish(metricsReg, summary, stdout); err != nil {
			fmt.Fprintf(stderr, "tacsolve: %v\n", err)
			return 1
		}
		if *metrics != "" {
			f, err := os.Create(*metrics)
			if err != nil {
				fmt.Fprintf(stderr, "tacsolve: %v\n", err)
				return 1
			}
			defer f.Close()
			if err := metricsReg.WriteJSON(f); err != nil {
				fmt.Fprintf(stderr, "tacsolve: metrics: %v\n", err)
				return 1
			}
		}
		return 0
	}

	reg := taccc.NewAlgorithmRegistry()
	if *list {
		fmt.Fprintln(stdout, strings.Join(append(reg.Names(), "exact"), "\n"))
		return 0
	}
	scenarioMode := *iot > 0 || *edge > 0
	if scenarioMode && *instPath != "" {
		fmt.Fprintln(stderr, "tacsolve: -instance and -iot/-edge are mutually exclusive")
		return 2
	}
	if !scenarioMode && *instPath == "" {
		fmt.Fprintln(stderr, "tacsolve: either -instance or -iot/-edge is required")
		return 2
	}
	var in *taccc.Instance
	if scenarioMode {
		if *iot <= 0 || *edge <= 0 {
			fmt.Fprintln(stderr, "tacsolve: scenario mode needs both -iot and -edge > 0")
			return 2
		}
		sc := taccc.Scenario{
			Family: taccc.Family(*family), NumIoT: *iot, NumEdge: *edge,
			Rho: *rho, Seed: *seed, Workers: *workers, Trace: traceRoot,
		}
		built, err := sc.Build()
		if err != nil {
			fmt.Fprintf(stderr, "tacsolve: %v\n", err)
			return 1
		}
		in = built.Instance
	} else {
		f, err := os.Open(*instPath)
		if err != nil {
			fmt.Fprintf(stderr, "tacsolve: %v\n", err)
			return 1
		}
		in, err = taccc.ReadInstance(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(stderr, "tacsolve: %v\n", err)
			return 1
		}
	}

	if *algo == "all" {
		summary, code := compareAll(in, reg, *seed, *workers, sink, traceRoot, stdout)
		if code != 0 {
			return code
		}
		return finishObs(summary)
	}

	start := time.Now()
	solvePh := traceRoot.Child("solve")
	solvePh.SetAttr("algo", *algo)
	var got *taccc.Assignment
	if *algo == "exact" {
		res, err := taccc.BranchAndBound(in, taccc.BnBOptions{})
		if err != nil {
			solvePh.End()
			fmt.Fprintf(stderr, "tacsolve: %v\n", err)
			return 1
		}
		got = res.Assignment
		fmt.Fprintf(stdout, "proven optimal: %v (nodes expanded: %d)\n", res.Proven, res.Nodes)
	} else {
		a, err := reg.New(*algo, *seed)
		if err != nil {
			solvePh.End()
			fmt.Fprintf(stderr, "tacsolve: %v\n", err)
			return 2
		}
		if sink != nil && !taccc.WithProgress(a, sink) {
			fmt.Fprintf(stderr, "tacsolve: note: %s does not report iteration progress\n", *algo)
		}
		taccc.WithPhases(a, solvePh)
		got, err = a.Assign(in)
		if err != nil {
			solvePh.End()
			fmt.Fprintf(stderr, "tacsolve: %v\n", err)
			return 1
		}
	}
	solvePh.End()
	elapsed := time.Since(start)

	fmt.Fprintf(stdout, "algorithm:    %s\n", *algo)
	fmt.Fprintf(stdout, "devices:      %d  edges: %d\n", in.N(), in.M())
	fmt.Fprintf(stdout, "total delay:  %.3f ms\n", in.TotalCost(got))
	fmt.Fprintf(stdout, "mean delay:   %.3f ms\n", in.MeanCost(got))
	fmt.Fprintf(stdout, "max delay:    %.3f ms\n", in.MaxCost(got))
	fmt.Fprintf(stdout, "lower bound:  %.3f ms (total)\n", taccc.LowerBound(in))
	fmt.Fprintf(stdout, "imbalance:    %.3f\n", in.Imbalance(got))
	fmt.Fprintf(stdout, "feasible:     %v\n", in.Feasible(got))
	fmt.Fprintf(stdout, "solve time:   %s\n", elapsed.Round(time.Microsecond))
	util := in.Utilization(got)
	fmt.Fprint(stdout, "edge utilization:")
	for _, u := range util {
		fmt.Fprintf(stdout, " %.2f", u)
	}
	fmt.Fprintln(stdout)

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(stderr, "tacsolve: %v\n", err)
			return 1
		}
		defer f.Close()
		if err := got.WriteJSON(f); err != nil {
			fmt.Fprintf(stderr, "tacsolve: %v\n", err)
			return 1
		}
	}
	// Static placement SLO check: with no queueing dynamics, each
	// device's assigned delay is its end-to-end latency, so the whole
	// placement lands in window 0 and the verdict is "does this
	// assignment meet the objectives before load is applied". (tacsim
	// gives the dynamic, queue-aware verdict.)
	if tr := sloFlag.Tracker(); tr != nil {
		for i := 0; i < in.N(); i++ {
			tr.Observe(0, in.CostAt(i, got.Of[i]), false)
		}
		tr.Finish(tr.WindowMs())
		sloFlag.PrintSummary(stdout)
	}
	feasible := 0.0
	if in.Feasible(got) {
		feasible = 1
	}
	return finishObs(runlog.Summary{
		"instance.devices":     float64(in.N()),
		"instance.edges":       float64(in.M()),
		"solve.total_delay_ms": in.TotalCost(got),
		"solve.mean_delay_ms":  in.MeanCost(got),
		"solve.max_delay_ms":   in.MaxCost(got),
		"solve.lower_bound_ms": taccc.LowerBound(in),
		"solve.imbalance":      in.Imbalance(got),
		"solve.feasible":       feasible,
	})
}

// compareAll solves the instance with every registered algorithm — up to
// workers at a time — and prints a comparison table in registry order. Each
// algorithm owns one row slot, so the table — and the returned archive
// summary (algo.<name>.mean_delay_ms / .max_delay_ms / .feasible) — is
// identical at any parallelism. The progress sink, when non-nil, is
// attached to every supporting algorithm; events from concurrent solvers
// interleave but each carries its algorithm name.
func compareAll(in *taccc.Instance, reg *taccc.AlgorithmRegistry, seed int64, workers int, sink taccc.ProgressSink, traceRoot *taccc.Phase, stdout io.Writer) (runlog.Summary, int) {
	type row struct {
		got     *taccc.Assignment
		err     error
		elapsed time.Duration
	}
	names := reg.Names()
	rows := make([]row, len(names))
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i, name := range names {
		a, err := reg.New(name, seed)
		if err != nil {
			rows[i].err = err
			continue
		}
		if sink != nil {
			taccc.WithProgress(a, sink)
		}
		wg.Add(1)
		go func(i int, name string, a taccc.Assigner) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			ph := traceRoot.Child(name)
			taccc.WithPhases(a, ph)
			start := time.Now()
			rows[i].got, rows[i].err = a.Assign(in)
			rows[i].elapsed = time.Since(start).Round(time.Microsecond)
			ph.End()
		}(i, name, a)
	}
	wg.Wait()
	summary := runlog.Summary{
		"instance.devices":     float64(in.N()),
		"instance.edges":       float64(in.M()),
		"solve.lower_bound_ms": taccc.LowerBound(in),
	}
	fmt.Fprintf(stdout, "%-18s %12s %12s %10s %12s\n", "algorithm", "mean ms", "max ms", "feasible", "time")
	fmt.Fprintf(stdout, "%-18s %12s %12s %10s %12s\n", "---------", "-------", "------", "--------", "----")
	for i, name := range names {
		r := rows[i]
		if r.err != nil {
			fmt.Fprintf(stdout, "%-18s %12s %12s %10s %12s\n", name, "-", "-", "no", r.elapsed)
			summary["algo."+name+".feasible"] = 0
			continue
		}
		fmt.Fprintf(stdout, "%-18s %12.3f %12.3f %10v %12s\n",
			name, in.MeanCost(r.got), in.MaxCost(r.got), in.Feasible(r.got), r.elapsed)
		summary["algo."+name+".mean_delay_ms"] = in.MeanCost(r.got)
		summary["algo."+name+".max_delay_ms"] = in.MaxCost(r.got)
		feasible := 0.0
		if in.Feasible(r.got) {
			feasible = 1
		}
		summary["algo."+name+".feasible"] = feasible
	}
	fmt.Fprintf(stdout, "lower bound (mean): %.3f ms\n", taccc.LowerBound(in)/float64(in.N()))
	return summary, 0
}
