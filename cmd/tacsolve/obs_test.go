package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"taccc/internal/obs"
)

func TestVersionFlag(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-version"}, &out, &errBuf); code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	if !strings.HasPrefix(out.String(), "tacsolve ") {
		t.Fatalf("version banner %q", out.String())
	}
}

// TestEventsStreamIsParseableConvergenceCurve covers the acceptance
// criterion: -algo qlearning -events out.jsonl yields one JSON line per
// episode with a non-increasing best cost.
func TestEventsStreamIsParseableConvergenceCurve(t *testing.T) {
	path := writeInstance(t)
	eventsPath := filepath.Join(t.TempDir(), "out.jsonl")
	var out, errBuf bytes.Buffer
	code := run([]string{"-instance", path, "-algo", "qlearning", "-events", eventsPath}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	f, err := os.Open(eventsPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	events, err := obs.ReadEventStream(f)
	if err != nil {
		t.Fatal(err)
	}
	prevBest := 0.0
	for i, e := range events {
		it, ok := e.Iter()
		if !ok || it.Algo != "qlearning" || it.Iter != i {
			t.Fatalf("event %d unexpected: %+v", i, e)
		}
		if it.Feasible {
			if prevBest > 0 && it.BestCost > prevBest+1e-9 {
				t.Fatalf("best cost regressed at iter %d: %v -> %v", it.Iter, prevBest, it.BestCost)
			}
			prevBest = it.BestCost
		}
	}
	if len(events) < 100 {
		t.Fatalf("only %d iteration events; expected one per episode", len(events))
	}
	if prevBest == 0 {
		t.Fatal("no feasible iteration in the stream")
	}
}

func TestMetricsOutSnapshot(t *testing.T) {
	path := writeInstance(t)
	metricsPath := filepath.Join(t.TempDir(), "m.json")
	var out, errBuf bytes.Buffer
	code := run([]string{"-instance", path, "-algo", "tabu", "-metrics-out", metricsPath}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	data, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Counters map[string]int64   `json:"counters"`
		Gauges   map[string]float64 `json:"gauges"`
	}
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("snapshot is not JSON: %v", err)
	}
	if snap.Counters["solver.tabu.iters"] == 0 {
		t.Fatalf("no solver.tabu.iters counter in %s", data)
	}
	if snap.Gauges["solver.tabu.best_cost_ms"] <= 0 {
		t.Fatalf("no solver.tabu.best_cost_ms gauge in %s", data)
	}
}

func TestProgressFlagPrintsImprovements(t *testing.T) {
	path := writeInstance(t)
	var out, errBuf bytes.Buffer
	code := run([]string{"-instance", path, "-algo", "lns", "-progress"}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	if !strings.Contains(errBuf.String(), "lns") {
		t.Fatalf("-progress wrote nothing about the solver:\n%s", errBuf.String())
	}
}

func TestCompareAllWithEvents(t *testing.T) {
	path := writeInstance(t)
	eventsPath := filepath.Join(t.TempDir(), "all.jsonl")
	var out, errBuf bytes.Buffer
	code := run([]string{"-instance", path, "-algo", "all", "-events", eventsPath}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	data, err := os.ReadFile(eventsPath)
	if err != nil {
		t.Fatal(err)
	}
	events, err := obs.ReadEventStream(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	algos := map[string]bool{}
	for _, e := range events {
		if algo, ok := e.Str("algo"); ok {
			algos[algo] = true
		}
	}
	for _, want := range []string{"qlearning", "tabu", "lns", "genetic"} {
		if !algos[want] {
			t.Errorf("no events from %s in -algo all stream (saw %v)", want, algos)
		}
	}
}

func TestCPUProfileFlag(t *testing.T) {
	path := writeInstance(t)
	profPath := filepath.Join(t.TempDir(), "cpu.pprof")
	var out, errBuf bytes.Buffer
	code := run([]string{"-instance", path, "-algo", "qlearning", "-cpuprofile", profPath}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	st, err := os.Stat(profPath)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() == 0 {
		t.Fatal("CPU profile is empty")
	}
}
