package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"taccc/internal/obs"
	"taccc/internal/obs/runlog"
	"taccc/internal/obs/sysmon"
	"taccc/internal/report"
)

// TestSysmonEndToEnd is the resource-plane acceptance criterion: a
// tacsolve run with -sysmon -trace-out -archive yields a Chrome trace
// with heap/goroutine counter tracks, a resources.jsonl that round-trips
// through runlog, and a report whose resource-attribution table covers
// the same phase set as the wall-time table.
func TestSysmonEndToEnd(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "trace.json")
	arDir := filepath.Join(dir, "run")
	runScenario(t, "-workers", "4", "-sysmon", "-sysmon-interval", "1ms",
		"-trace-out", tracePath, "-archive", arDir)

	// The Chrome export carries "C" counter events and still survives the
	// strict decoder.
	f, err := os.Open(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	ct, err := obs.ReadChromeTrace(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	counterTracks := map[string]int{}
	for _, ev := range ct.TraceEvents {
		if ev.Ph == "C" {
			counterTracks[ev.Name]++
		}
	}
	for _, want := range []string{"go.heap bytes", "go.goroutines", "go.gc_pause_ms"} {
		if counterTracks[want] == 0 {
			t.Errorf("trace export missing counter track %q (have %v)", want, counterTracks)
		}
	}

	// resources.jsonl loads, decodes and round-trips byte-identically.
	ar, err := runlog.Load(arDir)
	if err != nil {
		t.Fatal(err)
	}
	samples := sysmon.SamplesFromEvents(ar.Resources)
	if len(samples) == 0 {
		t.Fatal("archive has no resource samples")
	}
	for _, s := range samples {
		if s.HeapAllocBytes == 0 || s.Goroutines < 1 {
			t.Fatalf("degenerate sample: %+v", s)
		}
	}
	rewrite := filepath.Join(dir, "rewrite")
	if err := ar.Write(rewrite); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(filepath.Join(arDir, runlog.ResourcesFile))
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(filepath.Join(rewrite, runlog.ResourcesFile))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got) {
		t.Fatal("resources.jsonl differs after load/rewrite round trip")
	}

	// The report's resource table exists and covers the same phase set as
	// the wall-time pipeline table.
	src, err := report.LoadSource(arDir)
	if err != nil {
		t.Fatal(err)
	}
	rep := report.Summarize(src)
	if rep.Pipeline == nil || rep.Resources == nil {
		t.Fatalf("report missing pipeline (%v) or resource (%v) table", rep.Pipeline, rep.Resources)
	}
	if len(rep.Resources) != len(rep.Pipeline.Phases) {
		t.Fatalf("resource table has %d phases, wall-time table has %d",
			len(rep.Resources), len(rep.Pipeline.Phases))
	}
	for i := range rep.Resources {
		if rep.Resources[i].Name != rep.Pipeline.Phases[i].Name {
			t.Fatalf("phase %d: resource %q vs wall-time %q",
				i, rep.Resources[i].Name, rep.Pipeline.Phases[i].Name)
		}
	}
	if rep.ResourceUsage == nil || rep.ResourceUsage.Samples != len(samples) {
		t.Fatalf("resource usage = %+v, want %d samples", rep.ResourceUsage, len(samples))
	}
}

// TestArchiveBytesIdenticalWithSysmon pins the determinism carve-out for
// the resource plane: the archive's deterministic byte set (events,
// metrics, summary) is identical with sysmon on or off and at any worker
// count; only resources.jsonl (plus trace.jsonl and the manifest's
// wall-clock fields) may differ.
func TestArchiveBytesIdenticalWithSysmon(t *testing.T) {
	read := func(dir, name string) []byte {
		t.Helper()
		b, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	base := t.TempDir()
	type variant struct {
		dir     string
		workers int
		sysmon  bool
	}
	variants := []variant{
		{filepath.Join(base, "w1-off"), 1, false},
		{filepath.Join(base, "w1-on"), 1, true},
		{filepath.Join(base, "w8-on"), 8, true},
	}
	for _, v := range variants {
		args := []string{"-archive", v.dir, "-workers", strconv.Itoa(v.workers)}
		if v.sysmon {
			args = append(args, "-sysmon", "-sysmon-interval", "5ms")
		}
		runScenario(t, args...)
	}
	ref := variants[0]
	for _, v := range variants[1:] {
		for _, name := range []string{runlog.EventsFile, runlog.MetricsFile, runlog.SummaryFile} {
			if !bytes.Equal(read(ref.dir, name), read(v.dir, name)) {
				t.Errorf("%s differs between %s and %s", name, ref.dir, v.dir)
			}
		}
	}
	if _, err := os.Stat(filepath.Join(ref.dir, runlog.ResourcesFile)); !os.IsNotExist(err) {
		t.Fatalf("unsampled run wrote %s (err=%v)", runlog.ResourcesFile, err)
	}
	for _, v := range variants[1:] {
		if _, err := os.Stat(filepath.Join(v.dir, runlog.ResourcesFile)); err != nil {
			t.Fatalf("sampled run missing %s: %v", runlog.ResourcesFile, err)
		}
	}
}
