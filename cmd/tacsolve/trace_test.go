package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"taccc/internal/obs"
	"taccc/internal/obs/runlog"
	"taccc/internal/report"
)

func runScenario(t *testing.T, extra ...string) (string, string) {
	t.Helper()
	var out, errBuf bytes.Buffer
	args := append([]string{
		"-iot", "50", "-edge", "5", "-rho", "0.8", "-algo", "tabu", "-seed", "7",
	}, extra...)
	code := run(args, &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	return out.String(), errBuf.String()
}

// TestTraceOutProducesValidChromeTrace is the tentpole acceptance
// criterion: tacsolve -archive -trace-out yields a strict-decodable
// Chrome trace whose spans nest correctly, cover >= 95% of wall time,
// and carry per-worker shard spans for the delay-matrix build.
func TestTraceOutProducesValidChromeTrace(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "trace.json")
	arDir := filepath.Join(dir, "run")
	runScenario(t, "-workers", "4", "-trace-out", tracePath, "-archive", arDir)

	// Chrome export survives the strict decoder.
	f, err := os.Open(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	ct, err := obs.ReadChromeTrace(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	workerTids := map[int]bool{}
	for _, ev := range ct.TraceEvents {
		if ev.Ph == "X" && ev.Name == "shard" {
			workerTids[ev.Tid] = true
		}
	}
	if len(workerTids) != 4 {
		t.Fatalf("shard spans on %d worker threads, want 4", len(workerTids))
	}

	// The archive carries the same spans in trace.jsonl; fold them and
	// check structure + coverage.
	ar, err := runlog.Load(arDir)
	if err != nil {
		t.Fatal(err)
	}
	spans := ar.Spans()
	if len(spans) == 0 {
		t.Fatal("archive has no trace spans")
	}
	byID := map[obs.SpanID]obs.Span{}
	for _, sp := range spans {
		byID[sp.ID] = sp
		if sp.Parent == 0 && sp.Name != "tacsolve" {
			t.Fatalf("root span named %q", sp.Name)
		}
	}
	names := map[string]int{}
	for _, sp := range spans {
		names[sp.Name]++
		if sp.Parent == 0 {
			continue
		}
		par, ok := byID[sp.Parent]
		if !ok {
			t.Fatalf("span %q parented to unknown span %d", sp.Name, sp.Parent)
		}
		if sp.StartMs < par.StartMs-1e-9 || sp.EndMs > par.EndMs+1e-9 {
			t.Fatalf("span %q [%.3f, %.3f] escapes parent %q [%.3f, %.3f]",
				sp.Name, sp.StartMs, sp.EndMs, par.Name, par.StartMs, par.EndMs)
		}
	}
	for _, want := range []string{"topology", "delay-matrix", "workload", "instance", "solve", "construction", "improvement"} {
		if names[want] == 0 {
			t.Fatalf("missing %q span; got %v", want, names)
		}
	}
	if names["shard"] != 4 {
		t.Fatalf("%d shard spans, want 4", names["shard"])
	}
	for _, sp := range spans {
		if sp.Name != "shard" {
			continue
		}
		if byID[sp.Parent].Name != "delay-matrix" {
			t.Fatalf("shard parented under %q", byID[sp.Parent].Name)
		}
		if _, ok := sp.AttrNum("worker"); !ok {
			t.Fatalf("shard span missing worker attr: %+v", sp.Attrs)
		}
		if _, ok := sp.AttrNum("busy_ms"); !ok {
			t.Fatalf("shard span missing busy_ms attr: %+v", sp.Attrs)
		}
	}
	p := report.PipelineFromSpans(spans)
	if p == nil {
		t.Fatal("pipeline fold failed")
	}
	if p.CoveragePct < 95 {
		t.Fatalf("trace covers %.1f%% of wall time, want >= 95%%", p.CoveragePct)
	}
}

// TestArchiveEventsByteIdenticalWithTracing pins the determinism
// carve-out at the CLI level: the archive's deterministic byte set
// (events, metrics, summary) is identical with tracing on or off and at
// any worker count; only trace.jsonl (and the manifest's wall-clock
// fields) may differ.
func TestArchiveEventsByteIdenticalWithTracing(t *testing.T) {
	read := func(dir, name string) []byte {
		t.Helper()
		b, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	base := t.TempDir()
	type variant struct {
		dir     string
		workers int
		traced  bool
	}
	variants := []variant{
		{filepath.Join(base, "w1-off"), 1, false},
		{filepath.Join(base, "w1-on"), 1, true},
		{filepath.Join(base, "w8-on"), 8, true},
	}
	for _, v := range variants {
		args := []string{"-archive", v.dir, "-workers", strconv.Itoa(v.workers)}
		if v.traced {
			args = append(args, "-trace-out", filepath.Join(v.dir+".json"))
		}
		runScenario(t, args...)
	}
	ref := variants[0]
	for _, v := range variants[1:] {
		for _, name := range []string{runlog.EventsFile, runlog.MetricsFile, runlog.SummaryFile} {
			if !bytes.Equal(read(ref.dir, name), read(v.dir, name)) {
				t.Errorf("%s differs between %s and %s", name, ref.dir, v.dir)
			}
		}
	}
	if _, err := os.Stat(filepath.Join(ref.dir, runlog.TraceFile)); !os.IsNotExist(err) {
		t.Fatalf("untraced run wrote %s (err=%v)", runlog.TraceFile, err)
	}
	for _, v := range variants[1:] {
		if _, err := os.Stat(filepath.Join(v.dir, runlog.TraceFile)); err != nil {
			t.Fatalf("traced run missing %s: %v", runlog.TraceFile, err)
		}
	}
}

// TestScenarioModeUsageErrors pins the flag contract.
func TestScenarioModeUsageErrors(t *testing.T) {
	cases := [][]string{
		{"-iot", "50"}, // missing -edge
		{"-edge", "5"}, // missing -iot
		{"-iot", "50", "-edge", "5", "-instance", "x"}, // both modes
		{}, // neither mode
	}
	for _, args := range cases {
		var out, errBuf bytes.Buffer
		if code := run(args, &out, &errBuf); code != 2 {
			t.Errorf("args %v: exit %d, want 2 (stderr: %s)", args, code, errBuf.String())
		}
	}
}
