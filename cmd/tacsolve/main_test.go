package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	taccc "taccc"
)

func writeInstance(t *testing.T) string {
	t.Helper()
	in, err := taccc.SyntheticInstance(taccc.SyntheticUniform, 12, 3, 0.7, 5)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "inst.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := in.WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestSolveHeuristic(t *testing.T) {
	path := writeInstance(t)
	var out, errBuf bytes.Buffer
	code := run([]string{"-instance", path, "-algo", "greedy"}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	for _, want := range []string{"mean delay", "feasible:     true", "edge utilization"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestSolveExactAndSave(t *testing.T) {
	path := writeInstance(t)
	outPath := filepath.Join(t.TempDir(), "a.json")
	var out, errBuf bytes.Buffer
	code := run([]string{"-instance", path, "-algo", "exact", "-o", outPath}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	if !strings.Contains(out.String(), "proven optimal: true") {
		t.Fatalf("exact solve not proven:\n%s", out.String())
	}
	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"of"`) {
		t.Fatal("assignment JSON missing")
	}
}

func TestList(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-list"}, &out, &errBuf); code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, want := range []string{"qlearning", "greedy", "exact"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("list missing %q", want)
		}
	}
}

func TestSolveErrors(t *testing.T) {
	path := writeInstance(t)
	cases := [][]string{
		{},                            // missing -instance
		{"-instance", "/nonexistent"}, // unreadable
		{"-instance", path, "-algo", "bogus"},
	}
	for _, args := range cases {
		var out, errBuf bytes.Buffer
		if code := run(args, &out, &errBuf); code == 0 {
			t.Errorf("args %v: expected nonzero exit", args)
		}
	}
}

func TestSolveAll(t *testing.T) {
	path := writeInstance(t)
	var out, errBuf bytes.Buffer
	code := run([]string{"-instance", path, "-algo", "all"}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	for _, want := range []string{"greedy", "qlearning", "minmax", "lower bound"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("compare output missing %q", want)
		}
	}
}
