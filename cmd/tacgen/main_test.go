package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestGenerateTopologyJSON(t *testing.T) {
	var out, errBuf bytes.Buffer
	code := run([]string{"-kind", "topology", "-iot", "10", "-edge", "2", "-seed", "3"}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	if !strings.Contains(out.String(), `"nodes"`) {
		t.Fatal("no JSON nodes in output")
	}
}

func TestGenerateTopologyDOT(t *testing.T) {
	var out, errBuf bytes.Buffer
	code := run([]string{"-kind", "topology", "-format", "dot", "-iot", "5", "-edge", "2"}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	if !strings.Contains(out.String(), "graph topology") {
		t.Fatal("no DOT header")
	}
}

func TestGenerateInstanceToFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "inst.json")
	var out, errBuf bytes.Buffer
	code := run([]string{"-kind", "instance", "-iot", "12", "-edge", "3", "-o", path}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"cost_ms"`) {
		t.Fatal("instance JSON missing cost matrix")
	}
}

func TestGenerateSynthetic(t *testing.T) {
	var out, errBuf bytes.Buffer
	code := run([]string{"-kind", "synthetic", "-n", "8", "-m", "3", "-class", "correlated"}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	if !strings.Contains(out.String(), `"capacity"`) {
		t.Fatal("synthetic JSON missing capacity")
	}
}

func TestGenerateTopologyStats(t *testing.T) {
	var out, errBuf bytes.Buffer
	code := run([]string{"-kind", "topology", "-format", "stats", "-iot", "20", "-edge", "3"}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	for _, want := range []string{"nodes:", "diameter:", "IoT->nearest edge:"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("stats missing %q:\n%s", want, out.String())
		}
	}
}

func TestBadArgs(t *testing.T) {
	cases := [][]string{
		{"-kind", "bogus"},
		{"-kind", "topology", "-family", "bogus"},
		{"-kind", "topology", "-format", "bogus"},
		{"-kind", "synthetic", "-class", "bogus"},
		{"-not-a-flag"},
	}
	for _, args := range cases {
		var out, errBuf bytes.Buffer
		if code := run(args, &out, &errBuf); code == 0 {
			t.Errorf("args %v: expected nonzero exit", args)
		}
	}
}

func TestHotspotPlacement(t *testing.T) {
	var out, errBuf bytes.Buffer
	code := run([]string{"-kind", "topology", "-place", "hotspot", "-iot", "10", "-edge", "2"}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
}

func TestGenerateDevices(t *testing.T) {
	var out, errBuf bytes.Buffer
	code := run([]string{"-kind", "devices", "-iot", "5", "-profile", "wearables"}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	if !strings.Contains(out.String(), `"RateHz"`) {
		t.Fatal("devices JSON missing fields")
	}
	if code := run([]string{"-kind", "devices", "-profile", "bogus"}, &out, &errBuf); code == 0 {
		t.Fatal("bogus profile accepted")
	}
}

func TestVersionFlag(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-version"}, &out, &errBuf); code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	if !strings.HasPrefix(out.String(), "tacgen ") {
		t.Fatalf("version banner %q", out.String())
	}
}
