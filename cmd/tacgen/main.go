// Command tacgen generates topology graphs and assignment-problem
// instances for offline experimentation.
//
// Usage:
//
//	tacgen -kind topology -family hierarchical -iot 100 -edge 10 -o topo.json
//	tacgen -kind topology -format dot -o topo.dot
//	tacgen -kind instance -iot 100 -edge 10 -rho 0.7 -o inst.json
//	tacgen -kind synthetic -n 50 -m 5 -class correlated -o inst.json
//	tacgen -kind devices -iot 100 -profile factory -o devices.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	taccc "taccc"
	"taccc/internal/cliutil"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tacgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		kind    = fs.String("kind", "topology", "what to generate: topology | instance | synthetic")
		family  = fs.String("family", "hierarchical", "topology family (hierarchical, geometric, waxman, barabasi-albert, grid, fattree, star, ring)")
		format  = fs.String("format", "json", "topology output format: json | dot | stats")
		place   = fs.String("place", "uniform", "IoT placement: uniform | hotspot")
		iot     = fs.Int("iot", 100, "number of IoT devices")
		edge    = fs.Int("edge", 10, "number of edge servers")
		gw      = fs.Int("gateways", 0, "number of gateways (default 2x edge)")
		rho     = fs.Float64("rho", 0.7, "capacity tightness in (0,1]")
		payload = fs.Float64("payload", 0, "payload KB for payload-aware delays (0 = latency only)")
		n       = fs.Int("n", 50, "synthetic: devices")
		m       = fs.Int("m", 5, "synthetic: edges")
		class   = fs.String("class", "uniform", "synthetic family: uniform | correlated")
		profile = fs.String("profile", "default", "device profile for -kind devices (default, smartcity, factory, wearables)")
		seed    = fs.Int64("seed", 1, "random seed")
		out     = fs.String("o", "", "output file (default stdout)")
	)
	version := cliutil.VersionFlag(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *version {
		cliutil.FprintVersion(stdout, "tacgen")
		return 0
	}
	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(stderr, "tacgen: %v\n", err)
			return 1
		}
		defer f.Close()
		w = f
	}

	placement := taccc.PlaceUniform
	if *place == "hotspot" {
		placement = taccc.PlaceHotspot
	}

	switch *kind {
	case "topology":
		g, err := taccc.GenerateTopology(taccc.Family(*family), taccc.TopologyConfig{
			NumIoT: *iot, NumEdge: *edge, NumGateways: defaultGw(*gw, *edge), Seed: *seed,
		}, placement)
		if err != nil {
			fmt.Fprintf(stderr, "tacgen: %v\n", err)
			return 1
		}
		switch *format {
		case "json":
			err = g.WriteJSON(w)
		case "dot":
			err = g.WriteDOT(w)
		case "stats":
			m := taccc.ComputeTopologyMetrics(g)
			fmt.Fprintf(w, "family:            %s\n", *family)
			fmt.Fprintf(w, "nodes:             %d (%d links)\n", m.Nodes, m.Links)
			fmt.Fprintf(w, "by kind:           iot=%d gateway=%d router=%d edge=%d\n",
				m.ByKind[taccc.KindIoT], m.ByKind[taccc.KindGateway],
				m.ByKind[taccc.KindRouter], m.ByKind[taccc.KindEdge])
			fmt.Fprintf(w, "degree:            avg %.2f, max %d\n", m.AvgDegree, m.MaxDegree)
			fmt.Fprintf(w, "diameter:          %d hops\n", m.DiameterHops)
			fmt.Fprintf(w, "IoT->nearest edge: avg %.3f ms (max %.3f ms), avg %.1f hops\n",
				m.AvgIoTMinDelayMs, m.MaxIoTMinDelayMs, m.AvgIoTEdgeHops)
		default:
			err = fmt.Errorf("unknown format %q", *format)
		}
		if err != nil {
			fmt.Fprintf(stderr, "tacgen: %v\n", err)
			return 1
		}
	case "instance":
		built, err := taccc.Scenario{
			Family: taccc.Family(*family), Place: placement,
			NumIoT: *iot, NumEdge: *edge, NumGateways: defaultGw(*gw, *edge),
			Rho: *rho, PayloadKB: *payload, Seed: *seed,
		}.Build()
		if err != nil {
			fmt.Fprintf(stderr, "tacgen: %v\n", err)
			return 1
		}
		if err := built.Instance.WriteJSON(w); err != nil {
			fmt.Fprintf(stderr, "tacgen: %v\n", err)
			return 1
		}
	case "synthetic":
		k := taccc.SyntheticUniform
		if *class == "correlated" {
			k = taccc.SyntheticCorrelated
		} else if *class != "uniform" {
			fmt.Fprintf(stderr, "tacgen: unknown class %q\n", *class)
			return 1
		}
		in, err := taccc.SyntheticInstance(k, *n, *m, *rho, *seed)
		if err != nil {
			fmt.Fprintf(stderr, "tacgen: %v\n", err)
			return 1
		}
		if err := in.WriteJSON(w); err != nil {
			fmt.Fprintf(stderr, "tacgen: %v\n", err)
			return 1
		}
	case "devices":
		profiles := taccc.WorkloadProfiles(*seed)
		pr, ok := profiles[*profile]
		if !ok {
			fmt.Fprintf(stderr, "tacgen: unknown profile %q\n", *profile)
			return 1
		}
		devices, err := taccc.GenerateDevices(*iot, pr)
		if err != nil {
			fmt.Fprintf(stderr, "tacgen: %v\n", err)
			return 1
		}
		if err := taccc.WriteDevicesJSON(w, devices); err != nil {
			fmt.Fprintf(stderr, "tacgen: %v\n", err)
			return 1
		}
	default:
		fmt.Fprintf(stderr, "tacgen: unknown kind %q\n", *kind)
		return 2
	}
	return 0
}

func defaultGw(gw, edge int) int {
	if gw > 0 {
		return gw
	}
	return 2 * edge
}
