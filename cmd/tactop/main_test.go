package main

import (
	"bytes"
	"strings"
	"testing"

	"taccc/internal/obs"
	"taccc/internal/obs/httpserv"
)

func simRegistry() *obs.Registry {
	reg := obs.NewRegistry()
	reg.Counter("cluster.requests_sent").Add(1000)
	reg.Counter("cluster.requests_ok").Add(940)
	reg.Counter("cluster.requests_missed").Add(50)
	reg.Counter("cluster.requests_dropped").Add(10)
	reg.Gauge("cluster.edge_0.queue_depth").Set(4)
	reg.Gauge("cluster.edge_1.queue_depth").Set(0)
	for _, name := range []string{
		"cluster.latency_ms",
		"cluster.delay.uplink_ms",
		"cluster.delay.queue_ms",
		"cluster.delay.service_ms",
		"cluster.delay.downlink_ms",
	} {
		h := reg.Histogram(name, obs.DefaultLatencyBucketsMs())
		for _, v := range []float64{1, 4, 9, 45, 180} {
			h.Observe(v)
		}
	}
	return reg
}

func TestRunRendersOneSnapshot(t *testing.T) {
	srv, err := httpserv.Start("127.0.0.1:0", simRegistry())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var stdout, stderr bytes.Buffer
	if code := run([]string{"-addr", srv.Addr(), "-n", "1"}, &stdout, &stderr); code != 0 {
		t.Fatalf("run = %d, stderr: %s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "sent 1000") || !strings.Contains(out, "miss 5.05%") {
		t.Fatalf("header wrong:\n%s", out)
	}
	for _, phase := range []string{"uplink", "queue", "service", "downlink", "e2e"} {
		if !strings.Contains(out, phase) {
			t.Fatalf("missing phase row %q:\n%s", phase, out)
		}
	}
	if !strings.Contains(out, "edge   0  queue 4") || !strings.Contains(out, "edge   1  queue 0") {
		t.Fatalf("edge lines wrong:\n%s", out)
	}
	// p50 over {1,4,9,45,180} with default buckets: target 3rd of 5 -> bucket bound 10.
	if !strings.Contains(out, "10.00") {
		t.Fatalf("phase quantiles missing:\n%s", out)
	}
}

func TestRunHandlesEmptyRegistry(t *testing.T) {
	srv, err := httpserv.Start("127.0.0.1:0", obs.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-addr", srv.Addr(), "-n", "1"}, &stdout, &stderr); code != 0 {
		t.Fatalf("run = %d, stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "uplink") {
		t.Fatalf("phase table should still render with dashes:\n%s", stdout.String())
	}
}

func TestRunReportsUnreachableServer(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-addr", "127.0.0.1:1", "-n", "1"}, &stdout, &stderr); code != 1 {
		t.Fatalf("run = %d, want 1", code)
	}
	if !strings.Contains(stderr.String(), "tactop:") {
		t.Fatalf("no error reported: %q", stderr.String())
	}
}

func TestRunVersion(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-version"}, &stdout, &stderr); code != 0 {
		t.Fatalf("run = %d", code)
	}
	if !strings.Contains(stdout.String(), "tactop") {
		t.Fatalf("version banner missing: %q", stdout.String())
	}
}
