package main

import (
	"bytes"
	"strings"
	"testing"

	"taccc/internal/obs"
	"taccc/internal/obs/httpserv"
	"taccc/internal/obs/slo"
)

func simRegistry() *obs.Registry {
	reg := obs.NewRegistry()
	reg.Counter("cluster.requests_sent").Add(1000)
	reg.Counter("cluster.requests_ok").Add(940)
	reg.Counter("cluster.requests_missed").Add(50)
	reg.Counter("cluster.requests_dropped").Add(10)
	reg.Gauge("cluster.edge_0.queue_depth").Set(4)
	reg.Gauge("cluster.edge_1.queue_depth").Set(0)
	for _, name := range []string{
		"cluster.latency_ms",
		"cluster.delay.uplink_ms",
		"cluster.delay.queue_ms",
		"cluster.delay.service_ms",
		"cluster.delay.downlink_ms",
	} {
		h := reg.Histogram(name, obs.DefaultLatencyBucketsMs())
		for _, v := range []float64{1, 4, 9, 45, 180} {
			h.Observe(v)
		}
	}
	return reg
}

func TestRunRendersOneSnapshot(t *testing.T) {
	srv, err := httpserv.Start("127.0.0.1:0", simRegistry())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var stdout, stderr bytes.Buffer
	if code := run([]string{"-addr", srv.Addr(), "-n", "1"}, &stdout, &stderr); code != 0 {
		t.Fatalf("run = %d, stderr: %s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "sent 1000") || !strings.Contains(out, "miss 5.05%") {
		t.Fatalf("header wrong:\n%s", out)
	}
	for _, phase := range []string{"uplink", "queue", "service", "downlink", "e2e"} {
		if !strings.Contains(out, phase) {
			t.Fatalf("missing phase row %q:\n%s", phase, out)
		}
	}
	if !strings.Contains(out, "edge   0  queue 4") || !strings.Contains(out, "edge   1  queue 0") {
		t.Fatalf("edge lines wrong:\n%s", out)
	}
	// p50 over {1,4,9,45,180} with default buckets: target 3rd of 5 -> bucket bound 10.
	if !strings.Contains(out, "10.00") {
		t.Fatalf("phase quantiles missing:\n%s", out)
	}
}

func TestRunHandlesEmptyRegistry(t *testing.T) {
	srv, err := httpserv.Start("127.0.0.1:0", obs.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-addr", srv.Addr(), "-n", "1"}, &stdout, &stderr); code != 0 {
		t.Fatalf("run = %d, stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "uplink") {
		t.Fatalf("phase table should still render with dashes:\n%s", stdout.String())
	}
}

func TestRunReportsUnreachableServer(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-addr", "127.0.0.1:1", "-n", "1"}, &stdout, &stderr); code != 1 {
		t.Fatalf("run = %d, want 1", code)
	}
	if !strings.Contains(stderr.String(), "tactop:") {
		t.Fatalf("no error reported: %q", stderr.String())
	}
}

func TestRenderResources(t *testing.T) {
	base := map[string]float64{
		"sysmon_samples_total":       10,
		"sysmon_interval_ms":         250,
		"sysmon_last_sample_unix_ms": 1_000_000,
		"go_heap_alloc_bytes":        64 << 20,
		"go_heap_inuse_bytes":        96 << 20,
		"proc_rss_bytes":             128 << 20,
		"go_goroutines":              9,
		"go_gc_cycles_total":         4,
		"go_gc_pause_ms_total":       1.25,
		"go_alloc_bytes_per_s":       2 << 20,
	}

	// Fresh sample (100 ms old): full panel, no STALE flag.
	var buf bytes.Buffer
	renderResources(&buf, base, 1_000_100)
	out := buf.String()
	for _, want := range []string{"resources", "64.0 MB/96.0 MB", "rss 128.0 MB", "goroutines 9", "gc 4 (1.25 ms)", "2.0 MB/s", "sampled 0.1s ago"} {
		if !strings.Contains(out, want) {
			t.Errorf("panel missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "STALE") {
		t.Errorf("fresh sample flagged STALE:\n%s", out)
	}

	// Stale sample: older than 3 intervals and over a second.
	buf.Reset()
	renderResources(&buf, base, 1_000_000+5_000)
	if !strings.Contains(buf.String(), "STALE") {
		t.Errorf("5s-old sample at 250ms interval not flagged STALE:\n%s", buf.String())
	}

	// Old but within 3 intervals of a slow sampler: not stale.
	slow := map[string]float64{}
	for k, v := range base {
		slow[k] = v
	}
	slow["sysmon_interval_ms"] = 10_000
	buf.Reset()
	renderResources(&buf, slow, 1_000_000+5_000)
	if strings.Contains(buf.String(), "STALE") {
		t.Errorf("5s-old sample at 10s interval flagged STALE:\n%s", buf.String())
	}

	// No sysmon metrics in the scrape: the panel is absent entirely.
	buf.Reset()
	renderResources(&buf, map[string]float64{"cluster_requests_sent": 10}, 1_000_000)
	if buf.Len() != 0 {
		t.Errorf("panel rendered without sysmon metrics: %q", buf.String())
	}
}

func TestRenderSLO(t *testing.T) {
	base := map[string]float64{
		"slo_windows_total":                12,
		"slo_alerts_total":                 1,
		"slo_window_index":                 14,
		"slo_window_start_ms":              14_000,
		"slo_window_ms":                    1_000,
		"slo_window_e2e_p50_ms":            10,
		"slo_window_e2e_p95_ms":            50,
		"slo_window_e2e_p99_ms":            100,
		"slo_window_e2e_mean_ms":           18.5,
		"slo_window_e2e_count":             240,
		"slo_window_uplink_p50_ms":         2,
		"slo_window_uplink_p95_ms":         5,
		"slo_window_uplink_p99_ms":         5,
		"slo_window_uplink_mean_ms":        2.2,
		"slo_window_uplink_count":          240,
		"slo_window_e2e_miss_rate":         0.0125,
		"slo_obj_e2e_p95_compliance_pct":   91.67,
		"slo_obj_e2e_p95_target_pct":       99,
		"slo_obj_e2e_p95_violations":       1,
		"slo_obj_e2e_p95_windows":          12,
		"slo_obj_e2e_p95_budget_remaining": -0.88,
		"slo_obj_e2e_p95_burn_rate":        1.67,
		"slo_obj_e2e_p95_firing":           1,
	}
	var buf bytes.Buffer
	renderSLO(&buf, base)
	out := buf.String()
	for _, want := range []string{
		"slo window 14 (t=14.0s, width 1.0s)  closed 12  alert transitions 1",
		"e2e", "uplink",
		"window miss rate 1.25%",
		"obj e2e_p95",
		"compliance  91.67% (target 99.0%)",
		"violations 1/12",
		"budget  -0.88",
		"burn  1.67",
		"FIRING",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("SLO panel missing %q:\n%s", want, out)
		}
	}
	// Series with no samples in the current window are omitted, not
	// rendered as zeros.
	if strings.Contains(out, "queue") || strings.Contains(out, "downlink") {
		t.Errorf("empty series rendered:\n%s", out)
	}

	// Objective not firing: no FIRING flag.
	calm := map[string]float64{}
	for k, v := range base {
		calm[k] = v
	}
	calm["slo_obj_e2e_p95_firing"] = 0
	buf.Reset()
	renderSLO(&buf, calm)
	if strings.Contains(buf.String(), "FIRING") {
		t.Errorf("non-firing objective flagged FIRING:\n%s", buf.String())
	}

	// No SLO metrics in the scrape: the panel is absent entirely.
	buf.Reset()
	renderSLO(&buf, map[string]float64{"cluster_requests_sent": 10})
	if buf.Len() != 0 {
		t.Errorf("panel rendered without slo metrics: %q", buf.String())
	}
}

// TestRunRendersSLOFromLiveTracker drives the real pipeline: an slo
// Tracker populates its registry, httpserv exposes it, and tactop's one
// poll renders the panel.
func TestRunRendersSLOFromLiveTracker(t *testing.T) {
	reg := obs.NewRegistry()
	tr, err := slo.New(slo.Config{
		WindowMs: 1000,
		Objectives: []slo.Objective{
			{Series: slo.SeriesE2E, Stat: slo.StatQuantile(0.95), Threshold: 20, Target: 0.99},
		},
		Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		tr.Observe(float64(i*20), 150, false)
	}
	tr.Finish(1000)
	srv, err := httpserv.Start("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-addr", srv.Addr(), "-n", "1"}, &stdout, &stderr); code != 0 {
		t.Fatalf("run = %d, stderr: %s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "slo window") || !strings.Contains(out, "obj e2e_p95") {
		t.Fatalf("SLO panel missing from live render:\n%s", out)
	}
	if !strings.Contains(out, "compliance   0.00%") {
		t.Fatalf("violating objective should render 0%% compliance:\n%s", out)
	}
}

func TestRunVersion(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-version"}, &stdout, &stderr); code != 0 {
		t.Fatalf("run = %d", code)
	}
	if !strings.Contains(stdout.String(), "tactop") {
		t.Fatalf("version banner missing: %q", stdout.String())
	}
}
