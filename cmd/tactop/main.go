// Command tactop is a live text view over a running taccc telemetry
// server (tacsim/tacsolve/tacbench with -listen): it polls /metrics,
// reassembles the request counters and per-phase delay histograms, and
// renders a top-style summary — request totals and miss rate, p50/p95/p99
// per delay phase, one line per edge with its queue depth, (when the
// producer runs with -slo) an SLO panel: the latest closed window's
// per-series quantiles plus one line per objective with compliance,
// error budget, burn rate and a FIRING flag, and (when the producer runs
// with -sysmon) a resources panel: heap, RSS, goroutines, GC and
// allocation rate, plus the age of the last resource sample so a wedged
// run shows STALE instead of silently frozen gauges.
//
// Usage:
//
//	tacsim -listen :9477 -linger 1m &
//	tactop -addr 127.0.0.1:9477
//	tactop -addr 127.0.0.1:9477 -n 1          # one snapshot, then exit
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"regexp"
	"sort"
	"strconv"
	"time"

	"taccc/internal/cliutil"
	"taccc/internal/obs/httpserv"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tactop", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr     = fs.String("addr", "127.0.0.1:9477", "telemetry server address (host:port)")
		interval = fs.Duration("interval", 2*time.Second, "poll interval")
		n        = fs.Int("n", 0, "number of polls before exiting (0 = poll forever)")
	)
	version := cliutil.VersionFlag(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *version {
		cliutil.FprintVersion(stdout, "tactop")
		return 0
	}
	url := "http://" + *addr + "/metrics"
	for i := 0; *n == 0 || i < *n; i++ {
		if i > 0 {
			time.Sleep(*interval)
		}
		samples, err := fetch(url)
		if err != nil {
			fmt.Fprintf(stderr, "tactop: %v\n", err)
			return 1
		}
		render(stdout, *addr, samples)
	}
	return 0
}

func fetch(url string) ([]httpserv.Sample, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	return httpserv.ParseText(resp.Body)
}

var edgeDepthRe = regexp.MustCompile(`^cluster_edge_(\d+)_queue_depth$`)

// render writes one refresh of the live view from a parsed scrape.
func render(w io.Writer, addr string, samples []httpserv.Sample) {
	scalar := make(map[string]float64)
	for _, s := range samples {
		if len(s.Labels) == 0 {
			scalar[s.Name] = s.Value
		}
	}
	sent := scalar["cluster_requests_sent"]
	ok := scalar["cluster_requests_ok"]
	missed := scalar["cluster_requests_missed"]
	dropped := scalar["cluster_requests_dropped"]
	missPct := 0.0
	if finished := ok + missed; finished > 0 {
		missPct = 100 * missed / finished
	}
	fmt.Fprintf(w, "taccc @ %s  sent %.0f  ok %.0f  missed %.0f  dropped %.0f  miss %.2f%%\n",
		addr, sent, ok, missed, dropped, missPct)

	fmt.Fprintf(w, "%-10s %10s %10s %10s %10s\n", "phase", "p50 ms", "p95 ms", "p99 ms", "mean ms")
	phases := []struct{ label, metric string }{
		{"uplink", "cluster_delay_uplink_ms"},
		{"queue", "cluster_delay_queue_ms"},
		{"service", "cluster_delay_service_ms"},
		{"downlink", "cluster_delay_downlink_ms"},
		{"e2e", "cluster_latency_ms"},
	}
	for _, p := range phases {
		h, found := httpserv.HistogramFrom(samples, p.metric)
		if !found || h.Count == 0 {
			fmt.Fprintf(w, "%-10s %10s %10s %10s %10s\n", p.label, "-", "-", "-", "-")
			continue
		}
		fmt.Fprintf(w, "%-10s %10s %10s %10s %10.2f\n", p.label,
			quantStr(h.Quantile(0.5)), quantStr(h.Quantile(0.95)), quantStr(h.Quantile(0.99)), h.Mean)
	}

	type edge struct {
		idx   int
		depth float64
	}
	var edges []edge
	for name, v := range scalar {
		if m := edgeDepthRe.FindStringSubmatch(name); m != nil {
			idx, _ := strconv.Atoi(m[1])
			edges = append(edges, edge{idx: idx, depth: v})
		}
	}
	sort.Slice(edges, func(i, j int) bool { return edges[i].idx < edges[j].idx })
	for _, e := range edges {
		fmt.Fprintf(w, "edge %3d  queue %.0f\n", e.idx, e.depth)
	}
	renderSLO(w, scalar)
	renderResources(w, scalar, time.Now().UnixMilli())
	fmt.Fprintln(w)
}

var sloObjRe = regexp.MustCompile(`^slo_obj_(.+)_compliance_pct$`)

// sloSeries mirrors the tracker's emission order; the panel's rows.
var sloSeries = []string{"e2e", "uplink", "queue", "service", "downlink"}

// renderSLO writes the SLO panel when the scrape carries slo.* gauges
// (producer ran with -slo) and at least one window has closed: the
// latest closed window's per-series quantiles, then one line per
// objective with compliance, remaining error budget, burn rate and the
// firing state. Objectives are discovered from the exposition itself
// (slo_obj_<name>_compliance_pct), so the panel tracks whatever spec the
// producer was started with.
func renderSLO(w io.Writer, scalar map[string]float64) {
	if scalar["slo_windows_total"] <= 0 {
		return
	}
	fmt.Fprintf(w, "slo window %.0f (t=%.1fs, width %.1fs)  closed %.0f  alert transitions %.0f\n",
		scalar["slo_window_index"], scalar["slo_window_start_ms"]/1000,
		scalar["slo_window_ms"]/1000, scalar["slo_windows_total"], scalar["slo_alerts_total"])
	fmt.Fprintf(w, "%-10s %10s %10s %10s %10s %8s\n", "window", "p50 ms", "p95 ms", "p99 ms", "mean ms", "count")
	for _, s := range sloSeries {
		p := "slo_window_" + s + "_"
		if scalar[p+"count"] <= 0 {
			continue
		}
		fmt.Fprintf(w, "%-10s %10.2f %10.2f %10.2f %10.2f %8.0f\n", s,
			scalar[p+"p50_ms"], scalar[p+"p95_ms"], scalar[p+"p99_ms"], scalar[p+"mean_ms"], scalar[p+"count"])
	}
	if mr, ok := scalar["slo_window_e2e_miss_rate"]; ok {
		fmt.Fprintf(w, "window miss rate %.2f%%\n", 100*mr)
	}
	var names []string
	for name := range scalar {
		if m := sloObjRe.FindStringSubmatch(name); m != nil {
			names = append(names, m[1])
		}
	}
	sort.Strings(names)
	for _, name := range names {
		p := "slo_obj_" + name + "_"
		flag := ""
		if scalar[p+"firing"] > 0 {
			flag = "  FIRING"
		}
		fmt.Fprintf(w, "obj %-16s compliance %6.2f%% (target %.1f%%)  violations %.0f/%.0f  budget %+6.2f  burn %5.2f%s\n",
			name, scalar[p+"compliance_pct"], scalar[p+"target_pct"],
			scalar[p+"violations"], scalar[p+"windows"],
			scalar[p+"budget_remaining"], scalar[p+"burn_rate"], flag)
	}
}

// renderResources writes the sysmon panel when the scrape carries
// resource metrics (producer ran with -sysmon): heap and RSS levels,
// goroutines, GC totals, allocation rate, and the age of the last
// sample. A sample older than three sampling intervals (and at least a
// second) is flagged STALE — the sampler goroutine has stopped ticking,
// so the gauges are frozen, not calm.
func renderResources(w io.Writer, scalar map[string]float64, nowUnixMs int64) {
	if scalar["sysmon_samples_total"] <= 0 {
		return
	}
	fmt.Fprintf(w, "resources  heap %s/%s  rss %s  goroutines %.0f  gc %.0f (%.2f ms)  alloc %s/s",
		mb(scalar["go_heap_alloc_bytes"]), mb(scalar["go_heap_inuse_bytes"]),
		mb(scalar["proc_rss_bytes"]),
		scalar["go_goroutines"],
		scalar["go_gc_cycles_total"], scalar["go_gc_pause_ms_total"],
		mb(scalar["go_alloc_bytes_per_s"]))
	if last := scalar["sysmon_last_sample_unix_ms"]; last > 0 {
		ageMs := float64(nowUnixMs) - last
		if ageMs < 0 {
			ageMs = 0
		}
		fmt.Fprintf(w, "  sampled %.1fs ago", ageMs/1000)
		if interval := scalar["sysmon_interval_ms"]; interval > 0 && ageMs > 3*interval && ageMs > 1000 {
			fmt.Fprint(w, "  STALE (sampler wedged?)")
		}
	}
	fmt.Fprintln(w)
}

// mb renders a byte quantity as mebibytes with one decimal.
func mb(v float64) string {
	return strconv.FormatFloat(v/(1024*1024), 'f', 1, 64) + " MB"
}

func quantStr(v float64) string {
	if v != v || v > 1e18 { // NaN or +Inf upper bound: beyond the last bucket
		return ">10000"
	}
	return strconv.FormatFloat(v, 'f', 2, 64)
}
