// Command tacsim builds a deployment scenario, solves the assignment with
// a chosen algorithm, and replays the workload through the edge-cluster
// discrete-event simulator, reporting end-to-end latency and deadline
// behaviour.
//
// Usage:
//
//	tacsim -iot 100 -edge 10 -algo qlearning -duration 60
//	tacsim -iot 100 -edge 10 -algo greedy -fail-edge 0 -fail-at 20
//	tacsim -listen :9477 -linger 30s        # scrape /metrics while it runs
//	tacsim -events run.jsonl -trace-sample 0.1
//	tacsim -archive runs/a                  # self-contained run archive
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	taccc "taccc"
	"taccc/internal/cliutil"
	"taccc/internal/obs"
	"taccc/internal/obs/runlog"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tacsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		iot         = fs.Int("iot", 100, "number of IoT devices")
		edge        = fs.Int("edge", 10, "number of edge servers")
		family      = fs.String("family", "hierarchical", "topology family")
		algo        = fs.String("algo", "qlearning", "assignment algorithm")
		rho         = fs.Float64("rho", 0.7, "capacity tightness in (0,1]")
		payload     = fs.Float64("payload", 4, "request payload KB (payload-aware delays)")
		duration    = fs.Float64("duration", 60, "simulated seconds")
		warmup      = fs.Float64("warmup", 5, "warmup seconds excluded from stats")
		failEdge    = fs.Int("fail-edge", -1, "edge index to fail mid-run (-1 = none)")
		failAt      = fs.Float64("fail-at", 30, "failure time in seconds")
		discipline  = fs.String("discipline", "fifo", "edge queueing: fifo | ps")
		maxQueue    = fs.Int("max-queue", 0, "per-edge queue cap (0 = unlimited)")
		tracePath   = fs.String("trace", "", "write a per-request CSV trace to this file")
		jitter      = fs.Float64("jitter", 0, "lognormal network jitter sigma (0 = deterministic delays)")
		seed        = fs.Int64("seed", 1, "random seed")
		workers     = fs.Int("workers", 0, "parallelism for delay-matrix construction (<= 0 = all cores, 1 = sequential); output is identical at any setting")
		progress    = fs.Bool("progress", false, "print solver improvements to stderr while assigning")
		traceSample = fs.Float64("trace-sample", 0, "fraction of requests emitted as spans with -events/-archive, in [0,1] (0 = all)")
		metricsOut  = fs.String("metrics-out", "", "write the simulator's metrics-registry snapshot JSON here (request counters, queue gauges, latency and per-phase delay histograms)")
		linger      = fs.Duration("linger", 0, "keep the -listen telemetry server up this long after the run finishes")
	)
	version := cliutil.VersionFlag(fs)
	var profiles cliutil.Profiles
	profiles.Flags(fs)
	var telemetry cliutil.Telemetry
	telemetry.Flags(fs)
	var eventsFlag cliutil.EventsFlag
	eventsFlag.Flags(fs, "solver iteration and per-request span events")
	var archive cliutil.Archive
	archive.Flags(fs)
	var pipeTrace cliutil.Trace
	pipeTrace.Flags(fs)
	var sysmonFlag cliutil.Sysmon
	sysmonFlag.Flags(fs)
	var sloFlag cliutil.SLO
	sloFlag.Flags(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *version {
		cliutil.FprintVersion(stdout, "tacsim")
		return 0
	}
	if err := sysmonFlag.Validate(); err != nil {
		fmt.Fprintf(stderr, "tacsim: %v\n", err)
		return 2
	}
	if err := sloFlag.Validate(); err != nil {
		fmt.Fprintf(stderr, "tacsim: %v\n", err)
		return 2
	}
	if err := archive.Start("tacsim", fs, *seed); err != nil {
		fmt.Fprintf(stderr, "tacsim: %v\n", err)
		return 1
	}
	// The resource sampler starts before tracing so the root phase (and
	// everything under it) carries begin/end resource attributes.
	if err := sysmonFlag.Start(&archive, pipeTrace.Enabled()); err != nil {
		fmt.Fprintf(stderr, "tacsim: %v\n", err)
		return 1
	}
	defer sysmonFlag.Stop()
	if err := sloFlag.Start(&archive); err != nil {
		fmt.Fprintf(stderr, "tacsim: %v\n", err)
		return 1
	}
	traceRoot, err := pipeTrace.Start("tacsim", &archive, sysmonFlag.Source())
	if err != nil {
		fmt.Fprintf(stderr, "tacsim: %v\n", err)
		return 1
	}
	stopProfiles, err := profiles.Start(stderr)
	if err != nil {
		fmt.Fprintf(stderr, "tacsim: %v\n", err)
		return 1
	}
	defer stopProfiles()
	built, err := taccc.Scenario{
		Family: taccc.Family(*family),
		NumIoT: *iot, NumEdge: *edge, Rho: *rho, PayloadKB: *payload, Seed: *seed,
		Workers: *workers, Trace: traceRoot,
	}.Build()
	if err != nil {
		fmt.Fprintf(stderr, "tacsim: %v\n", err)
		return 1
	}
	var sinks []taccc.ProgressSink
	if *progress {
		sinks = append(sinks, taccc.NewProgressWriter(stderr))
	}
	eventStream, err := eventsFlag.Open()
	if err != nil {
		fmt.Fprintf(stderr, "tacsim: %v\n", err)
		return 1
	}
	defer eventStream.Close() //lint:allow sinkerr backstop for early returns; the success path checks Close in finishObs
	// Iteration events and request spans flow to the -events file and the
	// -archive event stream alike.
	var evSinks []obs.Sink
	if eventStream != nil {
		evSinks = append(evSinks, eventStream.Sink())
	}
	if archive.Enabled() {
		evSinks = append(evSinks, archive.Sink())
	}
	eventSink := obs.MultiSink(evSinks...)
	if eventSink != nil {
		sinks = append(sinks, taccc.EventProgress(eventSink))
	}
	var metricsReg *taccc.MetricsRegistry
	if *metricsOut != "" || telemetry.Enabled() || archive.Enabled() {
		metricsReg = taccc.NewMetricsRegistry()
		sinks = append(sinks, taccc.MetricsProgress(metricsReg))
	}
	stopTelemetry, err := telemetry.Start(stderr, metricsReg, sysmonFlag.Registry(), sloFlag.Registry())
	if err != nil {
		fmt.Fprintf(stderr, "tacsim: %v\n", err)
		return 1
	}
	defer stopTelemetry()

	reg := taccc.NewAlgorithmRegistry()
	a, err := reg.New(*algo, *seed)
	if err != nil {
		fmt.Fprintf(stderr, "tacsim: %v\n", err)
		return 2
	}
	if sink := taccc.MultiProgress(sinks...); sink != nil {
		taccc.WithProgress(a, sink)
	}
	solvePh := traceRoot.Child("solve")
	solvePh.SetAttr("algo", *algo)
	taccc.WithPhases(a, solvePh)
	got, err := a.Assign(built.Instance)
	solvePh.End()
	if err != nil {
		fmt.Fprintf(stderr, "tacsim: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "assignment: algo=%s mean-delay=%.3fms max-delay=%.3fms imbalance=%.2f\n",
		*algo, built.Instance.MeanCost(got), built.Instance.MaxCost(got), built.Instance.Imbalance(got))

	disc := taccc.DisciplineFIFO
	switch *discipline {
	case "fifo":
	case "ps":
		disc = taccc.DisciplinePS
	default:
		fmt.Fprintf(stderr, "tacsim: unknown discipline %q\n", *discipline)
		return 2
	}

	var recorder taccc.Recorder
	var traceWriter *taccc.TraceWriter
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fmt.Fprintf(stderr, "tacsim: %v\n", err)
			return 1
		}
		defer f.Close()
		traceWriter, err = taccc.NewTraceWriter(f)
		if err != nil {
			fmt.Fprintf(stderr, "tacsim: %v\n", err)
			return 1
		}
		recorder = traceWriter
	}

	down := taccc.NewDelayMatrixWorkers(built.Graph, taccc.LatencyCost, *workers)
	cfg := taccc.SimConfig{
		UplinkMs:    built.Delay.DelayMs,
		DownlinkMs:  down.DelayMs,
		Devices:     built.Devices,
		ServiceRate: taccc.ServiceRates(built.Capacity, 0.7),
		Assignment:  got.Of,
		WarmupMs:    *warmup * 1000,
		Discipline:  disc,
		MaxQueue:    *maxQueue,
		Recorder:    recorder,
		Metrics:     metricsReg,
		SLO:         sloFlag.Tracker(),
		JitterSigma: *jitter,
		Seed:        *seed,
	}
	if eventSink != nil {
		cfg.Spans = eventSink
		cfg.TraceSampleRate = *traceSample
	}
	sim, err := taccc.NewSimulator(cfg)
	if err != nil {
		fmt.Fprintf(stderr, "tacsim: %v\n", err)
		return 1
	}
	if *failEdge >= 0 {
		if err := sim.ScheduleEdgeFailure(*failAt*1000, *failEdge); err != nil {
			fmt.Fprintf(stderr, "tacsim: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "injecting failure of edge %d at t=%.0fs\n", *failEdge, *failAt)
	}
	simPh := traceRoot.Child("simulate")
	simPh.SetAttr("duration_s", *duration)
	res, err := sim.Run(*duration * 1000)
	simPh.End()
	if err != nil {
		fmt.Fprintf(stderr, "tacsim: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "completed:  %d requests (%d dropped)\n", res.Completed, res.Dropped)
	fmt.Fprintf(stdout, "latency:    p50=%.2fms p95=%.2fms p99=%.2fms max=%.2fms\n",
		res.Latency.Median(), res.Latency.P95(), res.Latency.P99(), res.Latency.Quantile(1))
	fmt.Fprintf(stdout, "deadlines:  %d missed (%.2f%%)\n", res.DeadlineMisses, 100*res.MissRate())
	sloFlag.PrintSummary(stdout)
	fmt.Fprint(stdout, "edge util: ")
	for _, u := range res.Utilization() {
		fmt.Fprintf(stdout, " %.2f", u)
	}
	fmt.Fprintln(stdout)
	if traceWriter != nil {
		if err := traceWriter.Flush(); err != nil {
			fmt.Fprintf(stderr, "tacsim: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "trace:      %d records -> %s\n", traceWriter.N(), *tracePath)
	}
	// Detach the sampler from the archive/trace sinks (it keeps updating
	// the registry through the -linger window below, so tactop's
	// staleness age stays honest), then finish tracing first so the final
	// spans reach the archive's trace stream before Finish seals it.
	sysmonFlag.CloseStreams()
	if err := pipeTrace.Finish(stdout, sysmonFlag.Counters()); err != nil {
		fmt.Fprintf(stderr, "tacsim: %v\n", err)
		return 1
	}
	if err := eventStream.Close(); err != nil {
		fmt.Fprintf(stderr, "tacsim: events: %v\n", err)
		return 1
	}
	summary := runlog.Summary{
		"assignment.mean_delay_ms": built.Instance.MeanCost(got),
		"assignment.max_delay_ms":  built.Instance.MaxCost(got),
		"assignment.imbalance":     built.Instance.Imbalance(got),
		"sim.completed":            float64(res.Completed),
		"sim.dropped":              float64(res.Dropped),
		"sim.deadline_misses":      float64(res.DeadlineMisses),
		"sim.miss_rate":            res.MissRate(),
		"sim.latency_p50_ms":       res.Latency.Median(),
		"sim.latency_p95_ms":       res.Latency.P95(),
		"sim.latency_p99_ms":       res.Latency.P99(),
		"sim.latency_max_ms":       res.Latency.Quantile(1),
	}
	if err := archive.Finish(metricsReg, summary, stdout); err != nil {
		fmt.Fprintf(stderr, "tacsim: %v\n", err)
		return 1
	}
	if *metricsOut != "" {
		f, err := os.Create(*metricsOut)
		if err != nil {
			fmt.Fprintf(stderr, "tacsim: %v\n", err)
			return 1
		}
		defer f.Close()
		if err := metricsReg.WriteJSON(f); err != nil {
			fmt.Fprintf(stderr, "tacsim: metrics: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "metrics:    registry snapshot -> %s\n", *metricsOut)
	}
	if telemetry.Enabled() && *linger > 0 {
		fmt.Fprintf(stderr, "telemetry: lingering %s for scrapes\n", *linger)
		time.Sleep(*linger)
	}
	return 0
}
