// Command tacsim builds a deployment scenario, solves the assignment with
// a chosen algorithm, and replays the workload through the edge-cluster
// discrete-event simulator, reporting end-to-end latency and deadline
// behaviour.
//
// Usage:
//
//	tacsim -iot 100 -edge 10 -algo qlearning -duration 60
//	tacsim -iot 100 -edge 10 -algo greedy -fail-edge 0 -fail-at 20
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	taccc "taccc"
	"taccc/internal/cliutil"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tacsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		iot        = fs.Int("iot", 100, "number of IoT devices")
		edge       = fs.Int("edge", 10, "number of edge servers")
		family     = fs.String("family", "hierarchical", "topology family")
		algo       = fs.String("algo", "qlearning", "assignment algorithm")
		rho        = fs.Float64("rho", 0.7, "capacity tightness in (0,1]")
		payload    = fs.Float64("payload", 4, "request payload KB (payload-aware delays)")
		duration   = fs.Float64("duration", 60, "simulated seconds")
		warmup     = fs.Float64("warmup", 5, "warmup seconds excluded from stats")
		failEdge   = fs.Int("fail-edge", -1, "edge index to fail mid-run (-1 = none)")
		failAt     = fs.Float64("fail-at", 30, "failure time in seconds")
		discipline = fs.String("discipline", "fifo", "edge queueing: fifo | ps")
		maxQueue   = fs.Int("max-queue", 0, "per-edge queue cap (0 = unlimited)")
		tracePath  = fs.String("trace", "", "write a per-request CSV trace to this file")
		jitter     = fs.Float64("jitter", 0, "lognormal network jitter sigma (0 = deterministic delays)")
		seed       = fs.Int64("seed", 1, "random seed")
		version    = fs.Bool("version", false, "print version and exit")
		progress   = fs.Bool("progress", false, "print solver improvements to stderr while assigning")
		events     = fs.String("events", "", "stream per-iteration solver events to this JSONL file")
		metricsOut = fs.String("metrics-out", "", "write the simulator's metrics-registry snapshot JSON here (request counters, queue gauges, latency histogram)")
	)
	var profiles cliutil.Profiles
	profiles.Flags(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *version {
		cliutil.FprintVersion(stdout, "tacsim")
		return 0
	}
	stopProfiles, err := profiles.Start(stderr)
	if err != nil {
		fmt.Fprintf(stderr, "tacsim: %v\n", err)
		return 1
	}
	defer stopProfiles()
	built, err := taccc.Scenario{
		Family: taccc.Family(*family),
		NumIoT: *iot, NumEdge: *edge, Rho: *rho, PayloadKB: *payload, Seed: *seed,
	}.Build()
	if err != nil {
		fmt.Fprintf(stderr, "tacsim: %v\n", err)
		return 1
	}
	var sinks []taccc.ProgressSink
	if *progress {
		sinks = append(sinks, taccc.NewProgressWriter(stderr))
	}
	var eventSink *taccc.JSONLSink
	if *events != "" {
		f, err := os.Create(*events)
		if err != nil {
			fmt.Fprintf(stderr, "tacsim: %v\n", err)
			return 1
		}
		defer f.Close()
		eventSink = taccc.NewJSONLSink(f)
		sinks = append(sinks, taccc.EventProgress(eventSink))
	}
	var metricsReg *taccc.MetricsRegistry
	if *metricsOut != "" {
		metricsReg = taccc.NewMetricsRegistry()
		sinks = append(sinks, taccc.MetricsProgress(metricsReg))
	}

	reg := taccc.NewAlgorithmRegistry()
	a, err := reg.New(*algo, *seed)
	if err != nil {
		fmt.Fprintf(stderr, "tacsim: %v\n", err)
		return 2
	}
	if sink := taccc.MultiProgress(sinks...); sink != nil {
		taccc.WithProgress(a, sink)
	}
	got, err := a.Assign(built.Instance)
	if err != nil {
		fmt.Fprintf(stderr, "tacsim: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "assignment: algo=%s mean-delay=%.3fms max-delay=%.3fms imbalance=%.2f\n",
		*algo, built.Instance.MeanCost(got), built.Instance.MaxCost(got), built.Instance.Imbalance(got))

	disc := taccc.DisciplineFIFO
	switch *discipline {
	case "fifo":
	case "ps":
		disc = taccc.DisciplinePS
	default:
		fmt.Fprintf(stderr, "tacsim: unknown discipline %q\n", *discipline)
		return 2
	}

	var recorder taccc.Recorder
	var traceWriter *taccc.TraceWriter
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fmt.Fprintf(stderr, "tacsim: %v\n", err)
			return 1
		}
		defer f.Close()
		traceWriter, err = taccc.NewTraceWriter(f)
		if err != nil {
			fmt.Fprintf(stderr, "tacsim: %v\n", err)
			return 1
		}
		recorder = traceWriter
	}

	down := taccc.NewDelayMatrix(built.Graph, taccc.LatencyCost)
	sim, err := taccc.NewSimulator(taccc.SimConfig{
		UplinkMs:    built.Delay.DelayMs,
		DownlinkMs:  down.DelayMs,
		Devices:     built.Devices,
		ServiceRate: taccc.ServiceRates(built.Capacity, 0.7),
		Assignment:  got.Of,
		WarmupMs:    *warmup * 1000,
		Discipline:  disc,
		MaxQueue:    *maxQueue,
		Recorder:    recorder,
		Metrics:     metricsReg,
		JitterSigma: *jitter,
		Seed:        *seed,
	})
	if err != nil {
		fmt.Fprintf(stderr, "tacsim: %v\n", err)
		return 1
	}
	if *failEdge >= 0 {
		if err := sim.ScheduleEdgeFailure(*failAt*1000, *failEdge); err != nil {
			fmt.Fprintf(stderr, "tacsim: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "injecting failure of edge %d at t=%.0fs\n", *failEdge, *failAt)
	}
	res, err := sim.Run(*duration * 1000)
	if err != nil {
		fmt.Fprintf(stderr, "tacsim: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "completed:  %d requests (%d dropped)\n", res.Completed, res.Dropped)
	fmt.Fprintf(stdout, "latency:    p50=%.2fms p95=%.2fms p99=%.2fms max=%.2fms\n",
		res.Latency.Median(), res.Latency.P95(), res.Latency.P99(), res.Latency.Quantile(1))
	fmt.Fprintf(stdout, "deadlines:  %d missed (%.2f%%)\n", res.DeadlineMisses, 100*res.MissRate())
	fmt.Fprint(stdout, "edge util: ")
	for _, u := range res.Utilization() {
		fmt.Fprintf(stdout, " %.2f", u)
	}
	fmt.Fprintln(stdout)
	if traceWriter != nil {
		if err := traceWriter.Flush(); err != nil {
			fmt.Fprintf(stderr, "tacsim: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "trace:      %d records -> %s\n", traceWriter.N(), *tracePath)
	}
	if eventSink != nil {
		if err := eventSink.Flush(); err != nil {
			fmt.Fprintf(stderr, "tacsim: events: %v\n", err)
			return 1
		}
	}
	if metricsReg != nil {
		f, err := os.Create(*metricsOut)
		if err != nil {
			fmt.Fprintf(stderr, "tacsim: %v\n", err)
			return 1
		}
		defer f.Close()
		if err := metricsReg.WriteJSON(f); err != nil {
			fmt.Fprintf(stderr, "tacsim: metrics: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "metrics:    registry snapshot -> %s\n", *metricsOut)
	}
	return 0
}
