package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestSimulateSmall(t *testing.T) {
	var out, errBuf bytes.Buffer
	code := run([]string{
		"-iot", "20", "-edge", "3", "-algo", "greedy",
		"-duration", "5", "-warmup", "1", "-seed", "2",
	}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	for _, want := range []string{"assignment:", "completed:", "latency:", "deadlines:"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestSimulateWithFailure(t *testing.T) {
	var out, errBuf bytes.Buffer
	code := run([]string{
		"-iot", "20", "-edge", "3", "-algo", "greedy",
		"-duration", "6", "-warmup", "1", "-fail-edge", "0", "-fail-at", "3",
	}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	if !strings.Contains(out.String(), "injecting failure") {
		t.Fatal("failure injection not reported")
	}
}

func TestSimulatePSDiscipline(t *testing.T) {
	var out, errBuf bytes.Buffer
	code := run([]string{
		"-iot", "15", "-edge", "3", "-algo", "greedy",
		"-duration", "4", "-warmup", "1", "-discipline", "ps", "-max-queue", "50",
	}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	if !strings.Contains(out.String(), "latency:") {
		t.Fatal("no latency line")
	}
}

func TestSimulateWithTrace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.csv")
	var out, errBuf bytes.Buffer
	code := run([]string{
		"-iot", "10", "-edge", "2", "-algo", "greedy",
		"-duration", "3", "-warmup", "1", "-trace", path,
	}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	if !strings.Contains(out.String(), "trace:") {
		t.Fatal("trace line missing")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "device,edge,") {
		t.Fatalf("trace file missing header: %q", string(data[:40]))
	}
}

func TestSimulateErrors(t *testing.T) {
	cases := [][]string{
		{"-iot", "0"},
		{"-algo", "bogus"},
		{"-discipline", "bogus"},
		{"-fail-edge", "99", "-iot", "10", "-edge", "2", "-duration", "3", "-warmup", "1"},
		{"-bogus-flag"},
	}
	for _, args := range cases {
		var out, errBuf bytes.Buffer
		if code := run(args, &out, &errBuf); code == 0 {
			t.Errorf("args %v: expected nonzero exit", args)
		}
	}
}
