package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestSpanStreamDeterministicAcrossWorkers is the acceptance criterion
// that the span JSONL a tacsim run emits is byte-identical at -workers 1
// and -workers 8, with sampling enabled: worker count only parallelizes
// delay-matrix construction, and trace sampling draws from its own seeded
// stream, so the event file must not move by a byte.
func TestSpanStreamDeterministicAcrossWorkers(t *testing.T) {
	dir := t.TempDir()
	runWorkers := func(workers string) []byte {
		path := filepath.Join(dir, "events-w"+workers+".jsonl")
		var out, errBuf bytes.Buffer
		code := run([]string{
			"-iot", "20", "-edge", "4", "-algo", "greedy",
			"-duration", "5", "-warmup", "1", "-jitter", "0.2",
			"-events", path, "-trace-sample", "0.5",
			"-workers", workers,
		}, &out, &errBuf)
		if code != 0 {
			t.Fatalf("workers=%s: exit %d: %s", workers, code, errBuf.String())
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	one := runWorkers("1")
	eight := runWorkers("8")
	if !bytes.Contains(one, []byte(`"kind":"span"`)) {
		t.Fatalf("no span events in stream: %.200s", one)
	}
	if !bytes.Equal(one, eight) {
		t.Fatal("span stream differs between -workers 1 and -workers 8")
	}
	// Sampling must actually thin the stream relative to trace-everything.
	fullPath := filepath.Join(dir, "events-full.jsonl")
	var out, errBuf bytes.Buffer
	code := run([]string{
		"-iot", "20", "-edge", "4", "-algo", "greedy",
		"-duration", "5", "-warmup", "1", "-jitter", "0.2",
		"-events", fullPath,
	}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	full, err := os.ReadFile(fullPath)
	if err != nil {
		t.Fatal(err)
	}
	if nSampled, nFull := bytes.Count(one, []byte(`"kind":"span"`)), bytes.Count(full, []byte(`"kind":"span"`)); nSampled >= nFull {
		t.Fatalf("sampling did not thin spans: %d sampled vs %d full", nSampled, nFull)
	}
}

// TestEventsFlushErrorFailsRun writes the event stream to /dev/full, so
// the buffered JSONL flush hits ENOSPC: the run must exit nonzero and
// name the events stream, not silently truncate it.
func TestEventsFlushErrorFailsRun(t *testing.T) {
	if _, err := os.Stat("/dev/full"); err != nil {
		t.Skip("/dev/full not available")
	}
	var out, errBuf bytes.Buffer
	code := run([]string{
		"-iot", "10", "-edge", "2", "-algo", "greedy",
		"-duration", "2", "-warmup", "0.5",
		"-events", "/dev/full",
	}, &out, &errBuf)
	if code == 0 {
		t.Fatalf("run succeeded despite an unwritable events stream:\n%s", errBuf.String())
	}
	if !strings.Contains(errBuf.String(), "events") {
		t.Fatalf("error does not name the events stream: %q", errBuf.String())
	}
}

// TestListenServesDuringLinger starts tacsim with -listen on an ephemeral
// port and a short -linger, scrapes /metrics and /healthz while it
// lingers, and verifies the exposition carries the simulator's counters.
func TestListenServesDuringLinger(t *testing.T) {
	var out bytes.Buffer
	errR, errW := newSyncBuffer()
	done := make(chan int, 1)
	go func() {
		done <- run([]string{
			"-iot", "10", "-edge", "2", "-algo", "greedy",
			"-duration", "2", "-warmup", "0.5",
			"-listen", "127.0.0.1:0", "-linger", "5s",
		}, &out, errW)
	}()
	addr := waitForAddr(t, errR, done)
	body := scrape(t, "http://"+addr+"/metrics")
	if !strings.Contains(body, "cluster_requests_sent") {
		t.Fatalf("metrics missing simulator counters:\n%s", body)
	}
	if got := scrape(t, "http://"+addr+"/healthz"); got != "ok\n" {
		t.Fatalf("/healthz = %q", got)
	}
}
