package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"taccc/internal/obs/runlog"
)

func runArchived(t *testing.T, dir string, workers int) {
	t.Helper()
	var out, errBuf bytes.Buffer
	code := run([]string{
		"-iot", "30", "-edge", "4", "-algo", "greedy", "-duration", "5",
		"-warmup", "1", "-seed", "11", "-workers", strconv.Itoa(workers),
		"-archive", dir,
	}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("workers=%d: exit %d: %s", workers, code, errBuf.String())
	}
}

// TestArchiveRoundTrip runs tacsim with -archive and validates the
// directory through the runlog reader.
func TestArchiveRoundTrip(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "run")
	runArchived(t, dir, 1)
	ar, err := runlog.Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if ar.Manifest.Tool != "tacsim" || ar.Manifest.Seed != 11 {
		t.Fatalf("manifest: %+v", ar.Manifest)
	}
	if ar.Manifest.Config["algo"] != "greedy" || ar.Manifest.Config["iot"] != "30" {
		t.Fatalf("config not captured: %v", ar.Manifest.Config)
	}
	// Execution-only flags must not leak into the archived config.
	for _, k := range []string{"archive", "workers"} {
		if _, ok := ar.Manifest.Config[k]; ok {
			t.Fatalf("execution-only flag %q archived: %v", k, ar.Manifest.Config)
		}
	}
	if len(ar.Events) == 0 {
		t.Fatal("no events archived")
	}
	if ar.Metrics.Counters["cluster.requests_sent"] == 0 {
		t.Fatalf("metrics snapshot missing request counters: %+v", ar.Metrics.Counters)
	}
	for _, k := range []string{"sim.miss_rate", "sim.latency_p95_ms", "assignment.mean_delay_ms"} {
		if _, ok := ar.Summary[k]; !ok {
			t.Fatalf("summary missing %q: %v", k, ar.Summary)
		}
	}
}

// TestArchiveDeterministicAcrossWorkers is the acceptance criterion:
// archiving the same seeded run at -workers 1 and -workers 8 produces
// byte-identical events, metrics and summary. Only the manifest's
// wall-clock fields may differ.
func TestArchiveDeterministicAcrossWorkers(t *testing.T) {
	base := t.TempDir()
	a, b := filepath.Join(base, "w1"), filepath.Join(base, "w8")
	runArchived(t, a, 1)
	runArchived(t, b, 8)

	for _, name := range []string{runlog.EventsFile, runlog.MetricsFile, runlog.SummaryFile} {
		da, err := os.ReadFile(filepath.Join(a, name))
		if err != nil {
			t.Fatal(err)
		}
		db, err := os.ReadFile(filepath.Join(b, name))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(da, db) {
			t.Errorf("%s differs between workers=1 and workers=8", name)
		}
	}

	// Manifests match after dropping wall-clock and the workers flag is
	// already excluded from config, so only timing may differ.
	norm := func(path string) map[string]any {
		data, err := os.ReadFile(filepath.Join(path, runlog.ManifestFile))
		if err != nil {
			t.Fatal(err)
		}
		var m map[string]any
		if err := json.Unmarshal(data, &m); err != nil {
			t.Fatal(err)
		}
		delete(m, "start_unix_ms")
		delete(m, "elapsed_ms")
		return m
	}
	ma, mb := norm(a), norm(b)
	ja, _ := json.Marshal(ma)
	jb, _ := json.Marshal(mb)
	if !bytes.Equal(ja, jb) {
		t.Errorf("manifests differ beyond wall-clock:\n%s\nvs\n%s", ja, jb)
	}
}

// TestArchiveCorruptionDetected truncates the metrics file and checks
// the reader rejects the archive.
func TestArchiveCorruptionDetected(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "run")
	runArchived(t, dir, 1)
	if err := os.WriteFile(filepath.Join(dir, runlog.MetricsFile), []byte("{truncated"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := runlog.Load(dir); err == nil {
		t.Fatal("corrupted metrics.json accepted")
	}
}
