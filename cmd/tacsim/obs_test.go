package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestVersionFlag(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-version"}, &out, &errBuf); code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	if !strings.HasPrefix(out.String(), "tacsim ") {
		t.Fatalf("version banner %q", out.String())
	}
}

// TestMetricsOutSnapshot covers the acceptance criterion: tacsim
// -metrics-out m.json emits a registry snapshot with request counters
// and a latency histogram.
func TestMetricsOutSnapshot(t *testing.T) {
	metricsPath := filepath.Join(t.TempDir(), "m.json")
	var out, errBuf bytes.Buffer
	code := run([]string{
		"-iot", "20", "-edge", "4", "-algo", "greedy",
		"-duration", "5", "-warmup", "1", "-metrics-out", metricsPath,
	}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	data, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Counters   map[string]int64 `json:"counters"`
		Histograms map[string]struct {
			Count  int64     `json:"count"`
			Bounds []float64 `json:"bounds"`
			Counts []int64   `json:"counts"`
		} `json:"histograms"`
	}
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("snapshot is not JSON: %v\n%s", err, data)
	}
	sent := snap.Counters["cluster.requests_sent"]
	okC := snap.Counters["cluster.requests_ok"]
	if sent == 0 || okC == 0 {
		t.Fatalf("request counters missing or zero: %s", data)
	}
	hist, isSet := snap.Histograms["cluster.latency_ms"]
	if !isSet || hist.Count == 0 {
		t.Fatalf("latency histogram missing or empty: %s", data)
	}
	if len(hist.Counts) != len(hist.Bounds)+1 {
		t.Fatalf("histogram has %d counts for %d bounds", len(hist.Counts), len(hist.Bounds))
	}
	if !strings.Contains(out.String(), "metrics:") {
		t.Fatalf("stdout does not mention the metrics file:\n%s", out.String())
	}
}

func TestSolverEventsFromSim(t *testing.T) {
	eventsPath := filepath.Join(t.TempDir(), "sim.jsonl")
	var out, errBuf bytes.Buffer
	code := run([]string{
		"-iot", "20", "-edge", "4", "-algo", "qlearning",
		"-duration", "2", "-warmup", "0.5", "-events", eventsPath,
	}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	data, err := os.ReadFile(eventsPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(data, []byte(`"kind":"iter"`)) || !bytes.Contains(data, []byte(`"algo":"qlearning"`)) {
		t.Fatalf("events file has no qlearning iter events: %.200s", data)
	}
}

// TestMetricsDoNotChangeSimOutput compares the full stdout of a run with
// and without -metrics-out (minus the metrics line itself): instrumenting
// the simulator must not alter any reported number.
func TestMetricsDoNotChangeSimOutput(t *testing.T) {
	base := []string{"-iot", "20", "-edge", "4", "-algo", "greedy", "-duration", "5", "-warmup", "1"}
	var plain, plainErr bytes.Buffer
	if code := run(base, &plain, &plainErr); code != 0 {
		t.Fatalf("exit %d: %s", code, plainErr.String())
	}
	metricsPath := filepath.Join(t.TempDir(), "m.json")
	var metered, meteredErr bytes.Buffer
	if code := run(append(base, "-metrics-out", metricsPath), &metered, &meteredErr); code != 0 {
		t.Fatalf("exit %d: %s", code, meteredErr.String())
	}
	got := strings.Split(metered.String(), "\n")
	var kept []string
	for _, line := range got {
		if strings.HasPrefix(line, "metrics:") {
			continue
		}
		kept = append(kept, line)
	}
	if strings.Join(kept, "\n") != plain.String() {
		t.Fatalf("-metrics-out changed the simulation output:\n%s\nvs\n%s", metered.String(), plain.String())
	}
}
