package main

import (
	"bytes"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer is a concurrency-safe stderr capture: the command goroutine
// writes while the test polls for the telemetry announcement.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func newSyncBuffer() (*syncBuffer, io.Writer) {
	b := &syncBuffer{}
	return b, b
}

// waitForAddr blocks until tacsim announces it is lingering (so the run
// is complete and every metric is final) and returns the telemetry
// address parsed from the announcement line.
func waitForAddr(t *testing.T, stderr *syncBuffer, done <-chan int) string {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		select {
		case code := <-done:
			t.Fatalf("tacsim exited early with %d:\n%s", code, stderr.String())
		default:
		}
		out := stderr.String()
		if strings.Contains(out, "telemetry: lingering") {
			i := strings.Index(out, "http://")
			if i < 0 {
				t.Fatalf("lingering without an announced address:\n%s", out)
			}
			addr := out[i+len("http://"):]
			if j := strings.IndexAny(addr, " \n"); j >= 0 {
				addr = addr[:j]
			}
			return addr
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("tacsim never reached the linger phase:\n%s", stderr.String())
	return ""
}

func scrape(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}
