package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"taccc/internal/obs/runlog"
)

// runArchivedSLO runs an overloaded, drop-prone scenario so windows
// violate objectives and alerts fire.
func runArchivedSLO(t *testing.T, dir string, workers int, sloSpec string) string {
	t.Helper()
	var out, errBuf bytes.Buffer
	args := []string{
		"-iot", "60", "-edge", "3", "-algo", "greedy", "-duration", "5",
		"-warmup", "1", "-seed", "11", "-rho", "0.98", "-max-queue", "40",
		"-workers", strconv.Itoa(workers), "-archive", dir,
	}
	if sloSpec != "" {
		args = append(args, "-slo", sloSpec, "-slo-window", "0.5")
	}
	if code := run(args, &out, &errBuf); code != 0 {
		t.Fatalf("workers=%d slo=%q: exit %d: %s", workers, sloSpec, code, errBuf.String())
	}
	return out.String()
}

// TestSLOFlagValidation pins the usage-error contract: a bad spec or a
// non-positive window is exit 2 before any simulation runs.
func TestSLOFlagValidation(t *testing.T) {
	cases := [][]string{
		{"-slo", "p95<=20", "-slo-window", "0"},
		{"-slo", "p95<=20", "-slo-window", "-1"},
		{"-slo", "bogus<=x"},
		{"-slo", "p95>=20"},
		{"-slo", "p95<=20@0"},
	}
	for _, extra := range cases {
		var out, errBuf bytes.Buffer
		args := append([]string{"-iot", "10", "-edge", "2", "-duration", "1"}, extra...)
		if code := run(args, &out, &errBuf); code != 2 {
			t.Errorf("args %v: exit %d, want 2 (stderr %q)", extra, code, errBuf.String())
		}
		if !strings.Contains(errBuf.String(), "tacsim:") {
			t.Errorf("args %v: no usage diagnostic: %q", extra, errBuf.String())
		}
	}
}

// TestSLOArchiveAlertsAndRoundTrip is the acceptance run: an overloaded
// scenario with -slo produces windowed quantiles, at least one fired and
// one resolved alert, and an slo.jsonl that runlog.Load round-trips.
func TestSLOArchiveAlertsAndRoundTrip(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "run")
	out := runArchivedSLO(t, dir, 1, "p95<=20@90,miss<=0.05")
	if !strings.Contains(out, "slo:") || !strings.Contains(out, "compliance") {
		t.Fatalf("stdout missing SLO summary:\n%s", out)
	}

	ar, err := runlog.Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ar.SLO) == 0 {
		t.Fatal("slo.jsonl empty or missing")
	}
	kinds := map[string]int{}
	fired, resolved := false, false
	for _, e := range ar.SLO {
		kinds[e.Kind]++
		if e.Kind == "slo-alert" {
			if s, _ := e.Str("state"); s == "firing" {
				fired = true
			} else if s == "resolved" {
				resolved = true
			}
		}
	}
	for _, k := range []string{"slo-window", "slo-eval", "slo-alert", "slo-objective"} {
		if kinds[k] == 0 {
			t.Errorf("no %s events in archive: %v", k, kinds)
		}
	}
	if !fired || !resolved {
		t.Fatalf("want a fired and a resolved alert under overload, got fired=%v resolved=%v (%v)",
			fired, resolved, kinds)
	}

	// Execution-only: the slo flags must not leak into the manifest config.
	for _, k := range []string{"slo", "slo-window"} {
		if _, ok := ar.Manifest.Config[k]; ok {
			t.Fatalf("execution-only flag %q archived: %v", k, ar.Manifest.Config)
		}
	}

	// Archive.Write must re-serialize slo.jsonl byte-identically.
	dir2 := filepath.Join(t.TempDir(), "rewrite")
	if err := ar.Write(dir2); err != nil {
		t.Fatal(err)
	}
	da, err := os.ReadFile(filepath.Join(dir, runlog.SLOFile))
	if err != nil {
		t.Fatal(err)
	}
	db, err := os.ReadFile(filepath.Join(dir2, runlog.SLOFile))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(da, db) {
		t.Fatal("slo.jsonl not byte-identical after Archive.Write round-trip")
	}
}

// TestSLODeterminism is the plane's core contract: the deterministic
// archive files are byte-identical with the plane on or off at any
// worker count, and slo.jsonl itself is byte-identical across worker
// counts.
func TestSLODeterminism(t *testing.T) {
	base := t.TempDir()
	off1 := filepath.Join(base, "off-w1")
	on1 := filepath.Join(base, "on-w1")
	on8 := filepath.Join(base, "on-w8")
	runArchivedSLO(t, off1, 1, "")
	runArchivedSLO(t, on1, 1, "p95<=20@90,miss<=0.05")
	runArchivedSLO(t, on8, 8, "p95<=20@90,miss<=0.05")

	read := func(dir, name string) []byte {
		t.Helper()
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	for _, name := range []string{runlog.EventsFile, runlog.MetricsFile, runlog.SummaryFile} {
		want := read(off1, name)
		if !bytes.Equal(want, read(on1, name)) {
			t.Errorf("%s differs with -slo on vs off", name)
		}
		if !bytes.Equal(want, read(on8, name)) {
			t.Errorf("%s differs between workers=1 (slo off) and workers=8 (slo on)", name)
		}
	}
	if !bytes.Equal(read(on1, runlog.SLOFile), read(on8, runlog.SLOFile)) {
		t.Error("slo.jsonl differs between workers=1 and workers=8")
	}
	if _, err := os.Stat(filepath.Join(off1, runlog.SLOFile)); !os.IsNotExist(err) {
		t.Errorf("slo.jsonl present without -slo (err=%v)", err)
	}
}
