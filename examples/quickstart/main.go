// Quickstart: build a deployment scenario, solve the IoT-to-edge
// assignment with the paper's Q-learning heuristic, compare against
// greedy, and verify no edge device is overloaded.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	taccc "taccc"
)

func main() {
	// A metropolitan deployment: 100 IoT devices, 10 edge servers on a
	// hierarchical gateway/router topology, capacities sized for 92%
	// target utilization.
	built, err := taccc.Scenario{
		NumIoT:  100,
		NumEdge: 10,
		Rho:     0.92,
		Seed:    42,
	}.Build()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scenario: %d IoT devices, %d edge servers, %d topology nodes\n",
		built.Instance.N(), built.Instance.M(), built.Graph.NumNodes())

	greedy, err := taccc.NewGreedy().Assign(built.Instance)
	if err != nil {
		log.Fatal(err)
	}
	q := taccc.NewQLearning(42)
	rl, err := q.Assign(built.Instance)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("greedy:     mean delay %6.3f ms, max %6.3f ms, feasible %v\n",
		built.Instance.MeanCost(greedy), built.Instance.MaxCost(greedy), built.Instance.Feasible(greedy))
	fmt.Printf("qlearning:  mean delay %6.3f ms, max %6.3f ms, feasible %v\n",
		built.Instance.MeanCost(rl), built.Instance.MaxCost(rl), built.Instance.Feasible(rl))
	fmt.Printf("lower bound (total/n): %.3f ms\n",
		taccc.LowerBound(built.Instance)/float64(built.Instance.N()))

	improvement := (built.Instance.TotalCost(greedy) - built.Instance.TotalCost(rl)) /
		built.Instance.TotalCost(greedy) * 100
	fmt.Printf("Q-learning improves on greedy by %.1f%%\n", improvement)

	fmt.Println("\nper-edge utilization under the RL assignment:")
	for j, u := range built.Instance.Utilization(rl) {
		fmt.Printf("  edge-%d: %5.1f%%\n", j, 100*u)
	}
}
