// Online cluster configuration: devices arrive over the day, occasionally
// leave, and an edge cabinet fails at noon. The OnlineController keeps the
// configuration healthy incrementally — immediate placement on join,
// threshold-triggered migrations as devices move, and a periodic bounded
// rebalance with the Q-learning assigner.
//
// Run with: go run ./examples/online
package main

import (
	"errors"
	"fmt"
	"log"

	taccc "taccc"
)

const (
	numEdges  = 5
	hours     = 12
	maxJoined = 60
	area      = 2500.0
)

func main() {
	infra, err := taccc.HierarchicalInfra(taccc.TopologyConfig{
		NumIoT: 1, NumEdge: numEdges, NumGateways: 10, AreaMeters: area, Seed: 21,
	})
	if err != nil {
		log.Fatal(err)
	}
	devices, err := taccc.GenerateDevices(maxJoined, taccc.DefaultProfile(21))
	if err != nil {
		log.Fatal(err)
	}
	capacity := make([]float64, numEdges)
	per := taccc.TotalLoad(devices) / 0.65 / numEdges
	for _, d := range devices {
		if l := d.Load() * 1.1; l > per {
			per = l
		}
	}
	for j := range capacity {
		capacity[j] = per
	}
	ctrl, err := taccc.NewOnlineController(capacity)
	if err != nil {
		log.Fatal(err)
	}

	walkers := make([]*taccc.RandomWaypoint, maxJoined)
	for i := range walkers {
		w, err := taccc.NewRandomWaypoint(area, 0.5, 8, 10_000,
			taccc.SplitSeed(21, fmt.Sprintf("w-%d", i)))
		if err != nil {
			log.Fatal(err)
		}
		walkers[i] = w
	}

	// costsNow snapshots every device's delay vector for this hour.
	costsNow := func(hour int) [][]float64 {
		xs := make([]float64, maxJoined)
		ys := make([]float64, maxJoined)
		for i, w := range walkers {
			p := w.Pos()
			xs[i], ys[i] = p.X, p.Y
		}
		g := infra.Clone()
		if err := taccc.AttachIoTAt(g, xs, ys, taccc.LinkParams{}, int64(hour)); err != nil {
			log.Fatal(err)
		}
		return taccc.NewDelayMatrix(g, taccc.LatencyCost).DelayMs
	}

	fmt.Println("hour  devices  mean-delay  migrations(cum)  note")
	joined := 0
	for hour := 0; hour < hours; hour++ {
		costs := costsNow(hour)
		note := ""

		// Five devices join every hour until all are in.
		for k := 0; k < 5 && joined < maxJoined; k++ {
			if _, err := ctrl.Join(joined, costs[joined], devices[joined].Load()); err != nil {
				if errors.Is(err, taccc.ErrNoCapacity) {
					note = "join rejected (cluster full)"
					break
				}
				log.Fatal(err)
			}
			joined++
		}
		// Everyone moved since last hour: refresh delays, migrate the
		// clear winners (>= 0.5 ms gain).
		for id := 0; id < joined; id++ {
			if err := ctrl.UpdateCosts(id, costs[id]); errors.Is(err, taccc.ErrUnknownDevice) {
				continue // stranded by the failure below
			} else if err != nil {
				log.Fatal(err)
			}
		}
		if _, err := ctrl.SweepMigrate(0.5); err != nil {
			log.Fatal(err)
		}
		// Every third hour: bounded rebalance with the RL assigner.
		if hour%3 == 2 {
			q := taccc.NewQLearning(int64(hour))
			if _, err := ctrl.Rebalance(q, ctrl.NumDevices()/4); err != nil &&
				!errors.Is(err, taccc.ErrInfeasible) {
				log.Fatal(err)
			}
			note = "periodic rebalance"
		}
		// Noon failure.
		if hour == 6 {
			stranded, err := ctrl.FailEdge(0)
			if err != nil {
				log.Fatal(err)
			}
			note = fmt.Sprintf("edge 0 failed; %d stranded, rest evacuated", len(stranded))
		}

		fmt.Printf("%4d  %7d  %7.3f ms  %15d  %s\n",
			hour, ctrl.NumDevices(), ctrl.MeanDelay(), ctrl.Migrations(), note)
		for _, w := range walkers {
			w.Advance(3_600_000 / 60) // advance one simulated minute per hour tick (keeps drift gentle)
		}
	}

	fmt.Println("\nfinal edge utilization:")
	for j, u := range ctrl.Utilization() {
		fmt.Printf("  edge-%d: %5.1f%%\n", j, 100*u)
	}
}
