// Smart city: traffic cameras and sensors clustered around hotspots
// (intersections), served by roadside edge cabinets on a metro grid.
// This example builds a payload-aware scenario, compares the full
// algorithm suite, and replays the winning assignment through the
// discrete-event cluster simulator to report end-to-end latency.
//
// Run with: go run ./examples/smartcity
package main

import (
	"errors"
	"fmt"
	"log"

	taccc "taccc"
)

func main() {
	// Camera-heavy workload: fewer devices, large payloads, tight
	// deadlines, strong spatial clustering at intersections.
	profile := taccc.Profile{
		Classes: []taccc.DeviceClass{
			{Name: "camera", Weight: 0.4, RateHz: 8, RateJitter: 0.3, PayloadKB: 60, PayloadSigma: 0.4, ComputeUnits: 1.5, DeadlineMs: 120, BurstProb: 0.3},
			{Name: "loop-sensor", Weight: 0.6, RateHz: 2, RateJitter: 0.5, PayloadKB: 0.5, PayloadSigma: 0.2, ComputeUnits: 0.3, DeadlineMs: 150},
		},
		ZipfSkew: 0.6,
		Seed:     7,
	}
	devices, err := taccc.GenerateDevices(80, profile)
	if err != nil {
		log.Fatal(err)
	}

	g, err := taccc.GenerateTopology(taccc.FamilyGrid, taccc.TopologyConfig{
		NumIoT: 80, NumEdge: 8, NumGateways: 36, AreaMeters: 4000, Seed: 7,
	}, taccc.PlaceHotspot)
	if err != nil {
		log.Fatal(err)
	}
	uplink := taccc.NewDelayMatrix(g, taccc.PayloadCost(30)) // video chunks
	downlink := taccc.NewDelayMatrix(g, taccc.LatencyCost)   // tiny ACKs

	capacity := make([]float64, 8)
	per := taccc.TotalLoad(devices) / 0.65 / 8
	for _, d := range devices {
		if l := d.Load() * 1.1; l > per {
			per = l
		}
	}
	for j := range capacity {
		capacity[j] = per
	}
	in, err := taccc.InstanceFromTopology(uplink, devices, capacity)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("algorithm      mean-delay   max-delay  feasible")
	reg := taccc.NewAlgorithmRegistry()
	best := ""
	bestCost := 0.0
	var bestAssign *taccc.Assignment
	for _, name := range reg.Names() {
		a, err := reg.New(name, 7)
		if err != nil {
			log.Fatal(err)
		}
		got, err := a.Assign(in)
		if err != nil {
			if errors.Is(err, taccc.ErrInfeasible) {
				fmt.Printf("%-14s %10s  %10s  no\n", name, "-", "-")
				continue
			}
			log.Fatal(err)
		}
		cost := in.MeanCost(got)
		fmt.Printf("%-14s %8.3fms  %8.3fms  yes\n", name, cost, in.MaxCost(got))
		if best == "" || cost < bestCost {
			best, bestCost, bestAssign = name, cost, got
		}
	}
	fmt.Printf("\nbest: %s (%.3f ms mean uplink delay)\n", best, bestCost)

	sim, err := taccc.NewSimulator(taccc.SimConfig{
		UplinkMs:    uplink.DelayMs,
		DownlinkMs:  downlink.DelayMs,
		Devices:     devices,
		ServiceRate: taccc.ServiceRates(capacity, 0.7),
		Assignment:  bestAssign.Of,
		WarmupMs:    5_000,
		Seed:        7,
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := sim.Run(60_000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n60 s simulated operation under %q:\n", best)
	fmt.Printf("  requests:   %d completed, %d dropped\n", res.Completed, res.Dropped)
	fmt.Printf("  latency:    p50 %.2f ms, p95 %.2f ms, p99 %.2f ms\n",
		res.Latency.Median(), res.Latency.P95(), res.Latency.P99())
	fmt.Printf("  deadlines:  %.2f%% missed\n", 100*res.MissRate())
	fmt.Println("  (the p95/p99 tail and misses come from correlated camera bursts:")
	fmt.Println("   ~30% of cameras are MMPP sources that burst to 5x their mean rate)")
}
