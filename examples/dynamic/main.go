// Dynamic reconfiguration: mobile IoT devices roam a campus (random
// waypoint), so the topology-derived delay matrix drifts over time, and an
// edge server fails halfway through. The example contrasts a one-shot
// static assignment with periodic Q-learning reconfiguration.
//
// Run with: go run ./examples/dynamic
package main

import (
	"fmt"
	"log"
	"math"

	taccc "taccc"
)

const (
	numDevices = 40
	numEdges   = 6
	epochs     = 10
	epochMs    = 30_000.0
	failEpoch  = 5
	area       = 3000.0
)

func main() {
	infra, err := taccc.HierarchicalInfra(taccc.TopologyConfig{
		NumIoT: 1, NumEdge: numEdges, NumGateways: 12, AreaMeters: area, Seed: 5,
	})
	if err != nil {
		log.Fatal(err)
	}
	devices, err := taccc.GenerateDevices(numDevices, taccc.DefaultProfile(5))
	if err != nil {
		log.Fatal(err)
	}
	capacity := make([]float64, numEdges)
	per := taccc.TotalLoad(devices) / 0.7 / numEdges
	for _, d := range devices {
		if l := d.Load() * 1.1; l > per {
			per = l
		}
	}
	for j := range capacity {
		capacity[j] = per
	}

	walkers := make([]*taccc.RandomWaypoint, numDevices)
	for i := range walkers {
		w, err := taccc.NewRandomWaypoint(area, 1, 10, 3_000,
			taccc.SplitSeed(5, fmt.Sprintf("walker-%d", i)))
		if err != nil {
			log.Fatal(err)
		}
		walkers[i] = w
	}

	buildInstance := func(epoch int, failed bool) *taccc.Instance {
		xs := make([]float64, numDevices)
		ys := make([]float64, numDevices)
		for i, w := range walkers {
			p := w.Pos()
			xs[i], ys[i] = p.X, p.Y
		}
		g := infra.Clone()
		if err := taccc.AttachIoTAt(g, xs, ys, taccc.LinkParams{}, int64(epoch)); err != nil {
			log.Fatal(err)
		}
		dm := taccc.NewDelayMatrix(g, taccc.LatencyCost)
		if failed {
			for i := range dm.DelayMs {
				dm.DelayMs[i][0] = math.Inf(1) // edge 0 is down
			}
		}
		in, err := taccc.InstanceFromTopology(dm, devices, capacity)
		if err != nil {
			log.Fatal(err)
		}
		return in
	}

	// One-shot static assignment from epoch 0.
	static, err := taccc.NewQLearning(5).Assign(buildInstance(0, false))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("epoch  static-delay  static-served  periodic-delay  migrations")
	var prev *taccc.Assignment
	for e := 0; e < epochs; e++ {
		failed := e >= failEpoch
		in := buildInstance(e, failed)

		served, sum := 0, 0.0
		for i, j := range static.Of {
			if c := in.CostMs[i][j]; !math.IsInf(c, 1) {
				sum += c
				served++
			}
		}
		staticCell := "    (none)"
		if served > 0 {
			staticCell = fmt.Sprintf("%7.3f ms", sum/float64(served))
		}

		periodic, err := taccc.NewQLearning(int64(100 + e)).Assign(in)
		if err != nil {
			log.Fatal(err)
		}
		migrations := 0
		if prev != nil {
			for i := range periodic.Of {
				if periodic.Of[i] != prev.Of[i] {
					migrations++
				}
			}
		}
		prev = periodic

		marker := ""
		if e == failEpoch {
			marker = "   <- edge 0 fails"
		}
		fmt.Printf("%5d  %s  %11d/%d  %11.3f ms  %10d%s\n",
			e, staticCell, served, numDevices, in.MeanCost(periodic), migrations, marker)

		for _, w := range walkers {
			w.Advance(epochMs)
		}
	}
	fmt.Println("\nperiodic reconfiguration keeps every device served at low delay;")
	fmt.Println("the static configuration strands the failed edge's devices and")
	fmt.Println("degrades as devices roam away from their original gateways.")
}
