// Factory floor: industrial IoT with strict deadlines on a fat-tree
// facility network. The example stresses capacity tightness — as more
// production lines come online (rho rises), topology-oblivious assignment
// starts overloading servers while the RL assigner keeps finding feasible,
// low-delay configurations.
//
// Run with: go run ./examples/factory
package main

import (
	"errors"
	"fmt"
	"log"

	taccc "taccc"
)

func main() {
	profile := taccc.Profile{
		Classes: []taccc.DeviceClass{
			{Name: "plc", Weight: 0.5, RateHz: 20, RateJitter: 0.1, PayloadKB: 0.2, PayloadSigma: 0.1, ComputeUnits: 0.4, DeadlineMs: 10},
			{Name: "vibration", Weight: 0.3, RateHz: 50, RateJitter: 0.2, PayloadKB: 2, PayloadSigma: 0.3, ComputeUnits: 0.8, DeadlineMs: 20},
			{Name: "vision-qa", Weight: 0.2, RateHz: 5, RateJitter: 0.2, PayloadKB: 80, PayloadSigma: 0.3, ComputeUnits: 3, DeadlineMs: 50, BurstProb: 0.5},
		},
		Seed: 11,
	}

	fmt.Println("capacity tightness sweep (fat-tree facility, 60 devices, 8 edge servers)")
	fmt.Println("rho    greedy            qlearning")
	for _, rho := range []float64{0.6, 0.75, 0.85, 0.95} {
		devices, err := taccc.GenerateDevices(60, profile)
		if err != nil {
			log.Fatal(err)
		}
		g, err := taccc.GenerateTopology(taccc.FamilyFatTree, taccc.TopologyConfig{
			NumIoT: 60, NumEdge: 8, NumGateways: 16, AreaMeters: 500, Seed: 11,
		}, taccc.PlaceUniform)
		if err != nil {
			log.Fatal(err)
		}
		dm := taccc.NewDelayMatrix(g, taccc.PayloadCost(2))
		capacity := make([]float64, 8)
		per := taccc.TotalLoad(devices) / rho / 8
		for _, d := range devices {
			if l := d.Load() * 1.05; l > per {
				per = l
			}
		}
		for j := range capacity {
			capacity[j] = per
		}
		in, err := taccc.InstanceFromTopology(dm, devices, capacity)
		if err != nil {
			log.Fatal(err)
		}

		report := func(a taccc.Assigner) string {
			got, err := a.Assign(in)
			if err != nil {
				if errors.Is(err, taccc.ErrInfeasible) {
					return "INFEASIBLE       "
				}
				log.Fatal(err)
			}
			return fmt.Sprintf("%7.3f ms (ok)  ", in.MeanCost(got))
		}
		fmt.Printf("%.2f   %s %s\n", rho, report(taccc.NewGreedy()), report(taccc.NewQLearning(11)))
	}

	fmt.Println("\ndeadline check at rho=0.6 under the RL assignment:")
	devices, err := taccc.GenerateDevices(60, profile)
	if err != nil {
		log.Fatal(err)
	}
	g, err := taccc.GenerateTopology(taccc.FamilyFatTree, taccc.TopologyConfig{
		NumIoT: 60, NumEdge: 8, NumGateways: 16, AreaMeters: 500, Seed: 11,
	}, taccc.PlaceUniform)
	if err != nil {
		log.Fatal(err)
	}
	dm := taccc.NewDelayMatrix(g, taccc.PayloadCost(2))
	capacity := make([]float64, 8)
	per := taccc.TotalLoad(devices) / 0.6 / 8
	for _, d := range devices {
		if l := d.Load() * 1.05; l > per {
			per = l
		}
	}
	for j := range capacity {
		capacity[j] = per
	}
	in, err := taccc.InstanceFromTopology(dm, devices, capacity)
	if err != nil {
		log.Fatal(err)
	}
	got, err := taccc.NewQLearning(11).Assign(in)
	if err != nil {
		log.Fatal(err)
	}
	sim, err := taccc.NewSimulator(taccc.SimConfig{
		UplinkMs:    dm.DelayMs,
		Devices:     devices,
		ServiceRate: taccc.ServiceRates(capacity, 0.7),
		Assignment:  got.Of,
		WarmupMs:    3_000,
		Seed:        11,
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := sim.Run(30_000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %d requests, p99 latency %.2f ms, %.3f%% deadline misses\n",
		res.Completed, res.Latency.P99(), 100*res.MissRate())
}
