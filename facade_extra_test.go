package taccc_test

import (
	"bytes"
	"errors"
	"math"
	"testing"

	taccc "taccc"
)

func TestPublicOnlineController(t *testing.T) {
	ctrl, err := taccc.NewOnlineController([]float64{10, 10})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ctrl.Join(0, []float64{3, 1}, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := ctrl.Join(1, []float64{1, 3}, 2); err != nil {
		t.Fatal(err)
	}
	if ctrl.NumDevices() != 2 || ctrl.MeanDelay() != 1 {
		t.Fatalf("controller state: n=%d mean=%v", ctrl.NumDevices(), ctrl.MeanDelay())
	}
	if _, err := ctrl.Rebalance(taccc.NewGreedy(), -1); err != nil {
		t.Fatal(err)
	}
	if _, err := ctrl.Join(0, []float64{1, 1}, 1); err == nil {
		t.Fatal("duplicate join accepted")
	}
	if _, err := ctrl.Join(9, []float64{1, 1}, 1e9); !errors.Is(err, taccc.ErrNoCapacity) {
		t.Fatalf("want ErrNoCapacity, got %v", err)
	}
	if err := ctrl.Leave(42); !errors.Is(err, taccc.ErrUnknownDevice) {
		t.Fatalf("want ErrUnknownDevice, got %v", err)
	}
}

func TestPublicCongestionFlow(t *testing.T) {
	built, err := taccc.Scenario{
		Family: taccc.FamilyGrid, NumIoT: 20, NumEdge: 3,
		Place: taccc.PlaceHotspot, Seed: 6,
	}.Build()
	if err != nil {
		t.Fatal(err)
	}
	a, err := taccc.NewGreedy().Assign(built.Instance)
	if err != nil {
		t.Fatal(err)
	}
	flows := make([]taccc.Flow, 20)
	for i, d := range built.Devices {
		flows[i] = taccc.Flow{IoT: built.Delay.IoT[i], RateHz: d.RateHz, PayloadKB: d.PayloadKB}
	}
	res, err := taccc.EvaluateCongestion(built.Graph, built.Delay, flows, a.Of)
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanDelayMs() <= 0 {
		t.Fatal("non-positive mean effective delay")
	}
	multi, err := built.Graph.EvaluateCongestionMultipath(built.Delay, flows, a.Of, 2)
	if err != nil {
		t.Fatal(err)
	}
	if multi.MeanDelayMs() <= 0 {
		t.Fatal("non-positive multipath delay")
	}
	cam, err := taccc.CongestionAwareDelayMatrix(built.Graph, built.Delay, flows, a.Of)
	if err != nil {
		t.Fatal(err)
	}
	if cam.NumIoT() != 20 {
		t.Fatalf("congestion-aware matrix rows = %d", cam.NumIoT())
	}
}

func TestPublicKShortestPaths(t *testing.T) {
	built, err := taccc.Scenario{Family: taccc.FamilyGrid, NumIoT: 10, NumEdge: 2, Seed: 2}.Build()
	if err != nil {
		t.Fatal(err)
	}
	iot := built.Delay.IoT[0]
	edge := built.Delay.Edge[0]
	paths, err := built.Graph.KShortestPaths(iot, edge, 3, taccc.LatencyCost)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no paths on connected graph")
	}
	if math.Abs(paths[0].Cost-built.Delay.DelayMs[0][0]) > 1e-9 {
		t.Fatalf("first path cost %v != delay matrix %v", paths[0].Cost, built.Delay.DelayMs[0][0])
	}
}

func TestPublicPreprocessAndPortfolio(t *testing.T) {
	in, err := taccc.SyntheticInstance(taccc.SyntheticCorrelated, 12, 3, 0.9, 8)
	if err != nil {
		t.Fatal(err)
	}
	red, err := taccc.Preprocess(in)
	if err != nil {
		if errors.Is(err, taccc.ErrInfeasible) {
			t.Skip("instance preprocessed to infeasible")
		}
		t.Fatal(err)
	}
	target := red.Residual
	if target == nil {
		t.Skip("fully fixed by preprocessing")
	}
	p := taccc.NewPortfolio(8)
	sub, err := p.Assign(target)
	if err != nil {
		t.Fatal(err)
	}
	full, err := red.Expand(sub)
	if err != nil {
		t.Fatal(err)
	}
	if !in.Feasible(full) {
		t.Fatal("expanded portfolio assignment infeasible")
	}
	if lpb := taccc.LPBound(in); in.TotalCost(full) < lpb-1e-6 {
		t.Fatalf("cost %v below LP bound %v", in.TotalCost(full), lpb)
	}
}

func TestPublicTraceRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := taccc.NewTraceWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	w.Record(taccc.RequestRecord{Device: 1, Edge: 0, SentAtMs: 5, DoneAtMs: 20, LatencyMs: 15, Outcome: taccc.OutcomeOK})
	w.Record(taccc.RequestRecord{Device: 2, Edge: 1, SentAtMs: 6, DoneAtMs: 6, Outcome: taccc.OutcomeDropped})
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	recs, err := taccc.ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	sum := taccc.SummarizeTrace(recs)
	if sum.Completed != 1 || sum.Dropped != 1 {
		t.Fatalf("summary = %+v", sum)
	}
	ts, err := taccc.TraceTimeSeries(recs, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 2 {
		t.Fatalf("windows = %d, want 2", len(ts))
	}
}

func TestPublicTopologyMetrics(t *testing.T) {
	g, err := taccc.GenerateTopology(taccc.FamilyRing, taccc.TopologyConfig{
		NumIoT: 12, NumEdge: 3, NumGateways: 6, Seed: 3,
	}, taccc.PlaceUniform)
	if err != nil {
		t.Fatal(err)
	}
	m := taccc.ComputeTopologyMetrics(g)
	if m.Nodes == 0 || m.DiameterHops <= 0 || m.AvgIoTMinDelayMs <= 0 {
		t.Fatalf("metrics = %+v", m)
	}
}

func TestPublicPSDisciplineAndQueueCap(t *testing.T) {
	built, err := taccc.Scenario{NumIoT: 15, NumEdge: 3, Seed: 9}.Build()
	if err != nil {
		t.Fatal(err)
	}
	a, err := taccc.NewGreedy().Assign(built.Instance)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := taccc.NewSimulator(taccc.SimConfig{
		UplinkMs:    built.Delay.DelayMs,
		Devices:     built.Devices,
		ServiceRate: taccc.ServiceRates(built.Capacity, 0.7),
		Assignment:  a.Of,
		Discipline:  taccc.DisciplinePS,
		MaxQueue:    100,
		Seed:        9,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(4_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed == 0 {
		t.Fatal("PS simulation completed nothing")
	}
}

func TestPublicOnlinePolicies(t *testing.T) {
	ctrl, err := taccc.NewOnlineController([]float64{10, 10})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ctrl.Join(0, []float64{4, 1}, 2); err != nil {
		t.Fatal(err)
	}
	if err := ctrl.UpdateCosts(0, []float64{1, 4}); err != nil {
		t.Fatal(err)
	}
	policies := []taccc.OnlinePolicy{
		taccc.PolicyJoinOnly{},
		taccc.PolicyThreshold{GainMs: 0.5},
		taccc.PolicyRebalance{Every: 1, BudgetFrac: 1, Seed: 2},
	}
	for _, p := range policies {
		if p.Name() == "" {
			t.Fatal("empty policy name")
		}
	}
	// The threshold policy should move the device to the now-closer edge.
	if err := policies[1].Tick(0, ctrl); err != nil {
		t.Fatal(err)
	}
	if got, _ := ctrl.Placement(0); got != 0 {
		t.Fatalf("device on edge %d, want 0 after threshold tick", got)
	}
}
