# Developer and CI entry points. `make ci` is what a pipeline should run:
# vet + tests + the race detector over the whole tree (the concurrent
# packages — internal/par, internal/experiment, internal/topology,
# internal/assign — get their interleavings exercised under -race by the
# determinism tests).

GO ?= go

.PHONY: all build test race bench vet ci

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detect the full tree. The parallel layer's tests (workers=1 vs
# workers=8 determinism, parallel portfolio, experiment suite runner) are
# the interesting part; everything else rides along for free.
race:
	$(GO) test -race ./...

# Benchmark the parallel kernels at workers=1 vs workers=GOMAXPROCS, the
# cluster simulator with span tracing off/on, plus the pre-existing
# hot-path micro-benchmarks. Override BENCHTIME (e.g. 1x in CI smoke).
BENCHTIME ?= 2x

bench:
	$(GO) test -bench 'Workers|ParallelPortfolio|ClusterSim' -benchtime $(BENCHTIME) -run '^$$' .

vet:
	$(GO) vet ./...

ci: vet build test race
