# Developer and CI entry points. `make ci` is what a pipeline's main job
# should run: vet + lint + build + tests. The race detector has its own
# target (and its own CI job) so the slow instrumented run parallelizes
# with the fast gate instead of serializing behind it.

GO ?= go

.PHONY: all build test race bench vet lint ci bench-json perf-gate baseline trace-smoke sysmon-smoke slo-smoke

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detect the full tree. The parallel layer's tests (workers=1 vs
# workers=8 determinism, parallel portfolio, experiment suite runner) are
# the interesting part; everything else rides along for free.
race:
	$(GO) test -race ./...

# Benchmark the parallel kernels at workers=1 vs workers=GOMAXPROCS, the
# cluster simulator with span tracing off/on, plus the pre-existing
# hot-path micro-benchmarks. Override BENCHTIME (e.g. 1x in CI smoke).
BENCHTIME ?= 2x

bench:
	$(GO) test -bench 'Workers|ParallelPortfolio|ClusterSim' -benchtime $(BENCHTIME) -run '^$$' .

vet:
	$(GO) vet ./...

# Repository-specific static analysis (see internal/lint): nine analyzers
# enforce the determinism, observability and parallel-safety invariants
# that plain `go vet` cannot see. taclint runs standalone over the module
# — it does not use `go vet -vettool=`, because the vettool protocol
# requires golang.org/x/tools' unitchecker and this repo is deliberately
# dependency-free; the standalone run checks the same packages with the
# same type information. LINTFORMAT=sarif emits SARIF 2.1.0 for CI code
# annotations instead of the go-vet style text.
LINTFORMAT ?= text

lint:
	$(GO) run ./cmd/taclint -format $(LINTFORMAT) ./...

ci: vet lint build test

# Perf gate: run the fixed bench suite to JSON and diff it against the
# committed baseline with tacreport. Verdicts subtract the propagated
# 95% CI half-widths, so only a confident slowdown beyond GATE_PCT fails
# (tacreport exits 3). The Markdown report lands in BENCH_report.md
# whether the gate passes or not.
GATE_PCT ?= 20
BENCH_REPS ?= 5

bench-json:
	$(GO) run ./cmd/tacbench -json BENCH_results.json -quick -reps $(BENCH_REPS)

perf-gate: bench-json
	$(GO) run ./cmd/tacreport BENCH_baseline.json BENCH_results.json \
	  -fail-on-regression $(GATE_PCT) -o BENCH_report.md
	@echo "perf gate passed (threshold $(GATE_PCT)%); report in BENCH_report.md"

# Refresh the committed baseline. Run on the reference machine, then
# commit BENCH_baseline.json alongside the change that moved it.
baseline:
	$(GO) run ./cmd/tacbench -json BENCH_baseline.json -quick -reps $(BENCH_REPS)

# Trace smoke: a real tacsolve run exports a Chrome trace and archives
# trace.jsonl, tactrace -chrome strict-validates the export, and
# tacreport renders the phase-attribution table from the archive. The
# end-to-end counterpart of the in-process pipeline-tracing tests.
TRACE_DIR ?= /tmp/taccc-trace-smoke

trace-smoke:
	rm -rf $(TRACE_DIR)
	$(GO) run ./cmd/tacsolve -iot 80 -edge 8 -rho 0.8 -algo tabu -seed 7 \
	  -workers 4 -trace-out $(TRACE_DIR)/trace.json -archive $(TRACE_DIR)/run
	$(GO) run ./cmd/tactrace -chrome $(TRACE_DIR)/trace.json
	$(GO) run ./cmd/tacreport $(TRACE_DIR)/run -o $(TRACE_DIR)/report.md
	grep -q '^## Pipeline phases' $(TRACE_DIR)/report.md
	grep -q 'critical path:' $(TRACE_DIR)/report.md
	@echo "trace smoke passed; report in $(TRACE_DIR)/report.md"

# Sysmon smoke: the trace smoke with resource sampling on — the export
# must still strict-validate (now with counter tracks), the archive must
# carry resources.jsonl, and the report must grow the per-phase
# resource-attribution table next to the wall-time one.
SYSMON_DIR ?= /tmp/taccc-sysmon-smoke

sysmon-smoke:
	rm -rf $(SYSMON_DIR)
	$(GO) run ./cmd/tacsolve -iot 80 -edge 8 -rho 0.8 -algo tabu -seed 7 \
	  -workers 4 -sysmon -sysmon-interval 25ms \
	  -trace-out $(SYSMON_DIR)/trace.json -archive $(SYSMON_DIR)/run
	$(GO) run ./cmd/tactrace -chrome $(SYSMON_DIR)/trace.json
	test -s $(SYSMON_DIR)/run/resources.jsonl
	$(GO) run ./cmd/tacreport $(SYSMON_DIR)/run -o $(SYSMON_DIR)/report.md
	grep -q '^## Pipeline phases' $(SYSMON_DIR)/report.md
	grep -q '^## Resource attribution' $(SYSMON_DIR)/report.md
	@echo "sysmon smoke passed; report in $(SYSMON_DIR)/report.md"

# SLO smoke: an overloaded tacsim run with the streaming SLO plane on
# must archive slo.jsonl with at least one fired alert, and tacreport
# must render the compliance section with the alert timeline.
SLO_DIR ?= /tmp/taccc-slo-smoke

slo-smoke:
	rm -rf $(SLO_DIR)
	$(GO) run ./cmd/tacsim -iot 60 -edge 3 -rho 0.98 -algo greedy -seed 11 \
	  -duration 10 -warmup 1 -max-queue 40 \
	  -slo 'p95<=20@90,miss<=0.05' -slo-window 0.5 -archive $(SLO_DIR)/run
	test -s $(SLO_DIR)/run/slo.jsonl
	grep -q '"kind":"slo-alert"' $(SLO_DIR)/run/slo.jsonl
	grep -q '"state":"firing"' $(SLO_DIR)/run/slo.jsonl
	$(GO) run ./cmd/tacreport $(SLO_DIR)/run -o $(SLO_DIR)/report.md
	grep -q '^## SLO compliance' $(SLO_DIR)/report.md
	grep -q '^### Alert timeline' $(SLO_DIR)/report.md
	@echo "slo smoke passed; report in $(SLO_DIR)/report.md"
