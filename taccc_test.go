package taccc_test

import (
	"errors"
	"testing"

	taccc "taccc"
)

// TestPublicAPIEndToEnd exercises the documented flow: scenario -> solve ->
// inspect -> simulate, entirely through the facade.
func TestPublicAPIEndToEnd(t *testing.T) {
	built, err := taccc.Scenario{NumIoT: 40, NumEdge: 5, Seed: 3}.Build()
	if err != nil {
		t.Fatal(err)
	}
	q := taccc.NewQLearning(3)
	a, err := q.Assign(built.Instance)
	if err != nil {
		t.Fatal(err)
	}
	if !built.Instance.Feasible(a) {
		t.Fatal("public API returned infeasible assignment")
	}
	if built.Instance.MeanCost(a) <= 0 {
		t.Fatal("non-positive mean delay")
	}
	if lb := taccc.LowerBound(built.Instance); built.Instance.TotalCost(a) < lb-1e-9 {
		t.Fatalf("cost %v below lower bound %v", built.Instance.TotalCost(a), lb)
	}

	sim, err := taccc.NewSimulator(taccc.SimConfig{
		UplinkMs:    built.Delay.DelayMs,
		Devices:     built.Devices,
		ServiceRate: built.Capacity,
		Assignment:  a.Of,
		Seed:        3,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(5_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed == 0 {
		t.Fatal("simulation completed no requests")
	}
}

func TestPublicManualInstance(t *testing.T) {
	in, err := taccc.NewInstance(
		[][]float64{{1, 9}, {9, 1}},
		[][]float64{{1, 1}, {1, 1}},
		[]float64{1, 1},
	)
	if err != nil {
		t.Fatal(err)
	}
	a, err := taccc.NewGreedy().Assign(in)
	if err != nil {
		t.Fatal(err)
	}
	if in.TotalCost(a) != 2 {
		t.Fatalf("TotalCost = %v, want 2", in.TotalCost(a))
	}
	res, err := taccc.BranchAndBound(in, taccc.BnBOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost != 2 || !res.Proven {
		t.Fatalf("B&B = %+v", res)
	}
}

func TestPublicRegistryAndErrInfeasible(t *testing.T) {
	reg := taccc.NewAlgorithmRegistry()
	if len(reg.Names()) < 10 {
		t.Fatalf("registry has only %d algorithms", len(reg.Names()))
	}
	in, err := taccc.NewInstance(
		[][]float64{{1}},
		[][]float64{{5}},
		[]float64{1},
	)
	if err != nil {
		t.Fatal(err)
	}
	g := taccc.NewGreedy()
	if _, err := g.Assign(in); !errors.Is(err, taccc.ErrInfeasible) {
		t.Fatalf("want ErrInfeasible, got %v", err)
	}
}

func TestPublicTopologyFlow(t *testing.T) {
	g, err := taccc.GenerateTopology(taccc.FamilyGrid, taccc.TopologyConfig{
		NumIoT: 15, NumEdge: 3, NumGateways: 9, Seed: 2,
	}, taccc.PlaceHotspot)
	if err != nil {
		t.Fatal(err)
	}
	dm := taccc.NewDelayMatrix(g, taccc.PayloadCost(8))
	devs, err := taccc.GenerateDevices(15, taccc.DefaultProfile(2))
	if err != nil {
		t.Fatal(err)
	}
	caps := make([]float64, 3)
	per := taccc.TotalLoad(devs) / 0.5 / 3
	for _, d := range devs {
		// A server must at least fit the single heaviest workload.
		if l := d.Load() * 1.1; l > per {
			per = l
		}
	}
	for j := range caps {
		caps[j] = per
	}
	in, err := taccc.InstanceFromTopology(dm, devs, caps)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := taccc.NewLocalSearch(1).Assign(in); err != nil {
		t.Fatal(err)
	}
}

func TestPublicExperiments(t *testing.T) {
	specs := taccc.Experiments()
	if len(specs) != 21 {
		t.Fatalf("have %d experiments, want 21", len(specs))
	}
	spec, err := taccc.ExperimentByID("F5")
	if err != nil {
		t.Fatal(err)
	}
	tables, err := spec.Run(taccc.ExperimentOptions{Quick: true, Reps: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) == 0 || len(tables[0].Rows) == 0 {
		t.Fatal("experiment produced no data")
	}
	stats, err := taccc.CompareAlgorithms(taccc.Scenario{NumIoT: 15, NumEdge: 3, Seed: 1},
		[]string{"greedy", "qlearning"}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 2 {
		t.Fatalf("got %d stats", len(stats))
	}
	if len(taccc.DefaultAlgorithms()) == 0 {
		t.Fatal("no default algorithms")
	}
}
