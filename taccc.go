package taccc

import (
	"io"
	"net/http"

	"taccc/internal/assign"
	"taccc/internal/cluster"
	"taccc/internal/experiment"
	"taccc/internal/gap"
	"taccc/internal/obs"
	"taccc/internal/obs/httpserv"
	"taccc/internal/obs/slo"
	"taccc/internal/online"
	"taccc/internal/topology"
	"taccc/internal/trace"
	"taccc/internal/workload"
	"taccc/internal/xrand"
)

// The facade re-exports the library's stable surface: problem modeling
// (Instance, Assignment), the topology substrate, workload generation, the
// assignment algorithms, the cluster simulator and the experiment harness.
// Aliases keep a single authoritative implementation in internal/ while
// giving downstream users one import.

// Problem modeling (internal/gap).
type (
	// Instance is a Generalized Assignment Problem instance: delays,
	// per-device loads, per-edge capacities.
	Instance = gap.Instance
	// Assignment maps each device index to its serving edge index.
	Assignment = gap.Assignment
	// Violation describes one overloaded edge.
	Violation = gap.Violation
	// BnBOptions tunes the exact solver.
	BnBOptions = gap.BnBOptions
	// BnBResult is the exact solver's outcome.
	BnBResult = gap.BnBResult
	// SyntheticKind selects a synthetic instance family.
	SyntheticKind = gap.SyntheticKind
)

// Synthetic instance families (classic OR benchmark classes).
const (
	SyntheticUniform    = gap.SyntheticUniform
	SyntheticCorrelated = gap.SyntheticCorrelated
)

// ErrInfeasible is returned when no overload-free assignment exists (exact
// solvers) or none was found (heuristics).
var ErrInfeasible = gap.ErrInfeasible

// NewInstance validates and wraps delay, weight and capacity matrices.
func NewInstance(costMs, weight [][]float64, capacity []float64) (*Instance, error) {
	return gap.NewInstance(costMs, weight, capacity)
}

// NewAssignment validates a device-to-edge mapping against an instance.
func NewAssignment(in *Instance, of []int) (*Assignment, error) {
	return gap.NewAssignment(in, of)
}

// ReadInstance parses an instance JSON written by Instance.WriteJSON.
func ReadInstance(r io.Reader) (*Instance, error) { return gap.ReadJSON(r) }

// ReadAssignment parses and validates an assignment JSON against in.
func ReadAssignment(r io.Reader, in *Instance) (*Assignment, error) {
	return gap.ReadAssignmentJSON(r, in)
}

// ReadTopology parses a topology JSON written by Graph.WriteJSON.
func ReadTopology(r io.Reader) (*Graph, error) { return topology.ReadJSON(r) }

// SyntheticInstance generates a random benchmark instance.
func SyntheticInstance(kind SyntheticKind, n, m int, rho float64, seed int64) (*Instance, error) {
	return gap.Synthetic(kind, n, m, rho, seed)
}

// BranchAndBound solves an instance exactly (small instances only).
func BranchAndBound(in *Instance, opts BnBOptions) (*BnBResult, error) {
	return gap.BranchAndBound(in, opts)
}

// LowerBound returns the best available lower bound on the optimal total
// delay (max of capacity-relaxed and Lagrangian bounds).
func LowerBound(in *Instance) float64 { return gap.LowerBound(in) }

// LPBound returns the LP-relaxation lower bound (the tightest bound this
// library computes), or -Inf when the LP could not be solved.
func LPBound(in *Instance) float64 { return gap.LPBound(in) }

// Reduction is the outcome of Preprocess: forced placements plus a smaller
// residual instance.
type Reduction = gap.Reduction

// Preprocess fixes forced device placements and shrinks the instance; see
// Reduction.Expand to lift residual solutions back.
func Preprocess(in *Instance) (*Reduction, error) { return gap.Preprocess(in) }

// Topology substrate (internal/topology).
type (
	// Graph is the network topology.
	Graph = topology.Graph
	// Node and NodeID identify topology vertices.
	Node   = topology.Node
	NodeID = topology.NodeID
	// NodeKind classifies nodes (IoT, gateway, router, edge, cloud).
	NodeKind = topology.NodeKind
	// Link is a network link with latency and bandwidth.
	Link = topology.Link
	// TopologyConfig sizes generated deployments.
	TopologyConfig = topology.Config
	// LinkParams controls generated link latencies and bandwidths.
	LinkParams = topology.LinkParams
	// Family names a topology generator.
	Family = topology.Family
	// Placement selects IoT placement (uniform or hotspot).
	Placement = topology.Placement
	// DelayMatrix is the IoT-by-edge shortest-path delay matrix.
	DelayMatrix = topology.DelayMatrix
	// LinkCost maps a link to a traversal cost.
	LinkCost = topology.LinkCost
	// Path is a node sequence with total cost (see Graph.KShortestPaths).
	Path = topology.Path
)

// Node kinds.
const (
	KindIoT     = topology.KindIoT
	KindGateway = topology.KindGateway
	KindRouter  = topology.KindRouter
	KindEdge    = topology.KindEdge
	KindCloud   = topology.KindCloud
)

// IoT placement strategies.
const (
	PlaceUniform = topology.PlaceUniform
	PlaceHotspot = topology.PlaceHotspot
)

// Topology families.
const (
	FamilyHierarchical = topology.FamilyHierarchical
	FamilyGeometric    = topology.FamilyGeometric
	FamilyWaxman       = topology.FamilyWaxman
	FamilyBA           = topology.FamilyBA
	FamilyGrid         = topology.FamilyGrid
	FamilyFatTree      = topology.FamilyFatTree
	FamilyStar         = topology.FamilyStar
	FamilyRing         = topology.FamilyRing
)

// NewGraph returns an empty topology graph.
func NewGraph() *Graph { return topology.NewGraph() }

// TopologyMetrics summarizes a graph's shape (see tacgen -format stats).
type TopologyMetrics = topology.Metrics

// ResilienceReport quantifies exposure to single-node infrastructure
// failures (see Graph.Resilience and Graph.CutVertices).
type ResilienceReport = topology.ResilienceReport

// ComputeTopologyMetrics walks the graph and derives degree, diameter and
// IoT-to-edge proximity statistics.
func ComputeTopologyMetrics(g *Graph) TopologyMetrics { return topology.ComputeMetrics(g) }

// GenerateTopology builds a topology of the named family.
func GenerateTopology(family Family, cfg TopologyConfig, place Placement) (*Graph, error) {
	return topology.Generate(family, cfg, place)
}

// Families lists every topology family.
func Families() []Family { return topology.Families() }

// Link-level congestion (internal/topology).
type (
	// Flow is one device's steady-state traffic demand.
	Flow = topology.Flow
	// LinkLoad reports a link's offered load and utilization.
	LinkLoad = topology.LinkLoad
	// CongestionResult holds effective delays and link utilizations.
	CongestionResult = topology.CongestionResult
)

// EvaluateCongestion routes flows along shortest paths and computes
// effective delays with per-link queueing inflation.
func EvaluateCongestion(g *Graph, dm *DelayMatrix, flows []Flow, assignment []int) (*CongestionResult, error) {
	return topology.EvaluateCongestion(g, dm, flows, assignment)
}

// CongestionAwareDelayMatrix inflates a delay matrix with the link
// utilizations the given assignment induces; iterate with re-assignment
// for congestion-aware configurations.
func CongestionAwareDelayMatrix(g *Graph, dm *DelayMatrix, flows []Flow, assignment []int) (*DelayMatrix, error) {
	return topology.CongestionAwareDelayMatrix(g, dm, flows, assignment)
}

// NewDelayMatrix derives IoT-to-edge delays from a topology under a cost
// model, fanning Dijkstra sources out across all cores. The result is
// identical to a sequential computation.
func NewDelayMatrix(g *Graph, cost LinkCost) *DelayMatrix {
	return topology.NewDelayMatrix(g, cost)
}

// NewDelayMatrixWorkers is NewDelayMatrix with an explicit worker count
// (<= 0 means all cores, 1 is fully sequential).
func NewDelayMatrixWorkers(g *Graph, cost LinkCost, workers int) *DelayMatrix {
	return topology.NewDelayMatrixWorkers(g, cost, workers)
}

// LatencyCost charges each link its configured latency.
func LatencyCost(l Link) float64 { return topology.LatencyCost(l) }

// PayloadCost charges latency plus transmission time for a payload size.
func PayloadCost(payloadKB float64) LinkCost { return topology.PayloadCost(payloadKB) }

// Workload generation (internal/workload).
type (
	// Device is one IoT device's demand profile.
	Device = workload.Device
	// DeviceClass is an archetype mixed into a Profile.
	DeviceClass = workload.Class
	// Profile configures a generated device population.
	Profile = workload.Profile
)

// Mobility (internal/workload) and incremental topology construction
// (internal/topology) for dynamic scenarios.
type (
	// RandomWaypoint is the classic mobility model for one device.
	RandomWaypoint = workload.RandomWaypoint
	// Position is a planar coordinate in meters.
	Position = workload.Position
)

// NewRandomWaypoint creates a deterministic walker over a square area.
func NewRandomWaypoint(areaMeters, minSpeedMps, maxSpeedMps, pauseMs float64, seed int64) (*RandomWaypoint, error) {
	return workload.NewRandomWaypoint(areaMeters, minSpeedMps, maxSpeedMps, pauseMs, xrand.New(seed))
}

// HierarchicalInfra builds a hierarchical topology without IoT devices;
// pair with AttachIoTAt to snapshot mobile device positions epoch by
// epoch.
func HierarchicalInfra(cfg TopologyConfig) (*Graph, error) {
	return topology.HierarchicalInfra(cfg)
}

// AttachIoTAt adds IoT nodes at the given coordinates, each wired to its
// nearest gateway.
func AttachIoTAt(g *Graph, xs, ys []float64, links LinkParams, seed int64) error {
	return topology.AttachIoTAt(g, xs, ys, links, seed)
}

// SplitSeed derives a child seed from (seed, label); the same pair always
// yields the same child, so derived randomness stays reproducible.
func SplitSeed(seed int64, label string) int64 { return xrand.SplitSeed(seed, label) }

// DefaultProfile models a mixed sensing deployment (sensors, trackers,
// cameras).
func DefaultProfile(seed int64) Profile { return workload.DefaultProfile(seed) }

// GenerateDevices draws a device population from a profile.
func GenerateDevices(n int, p Profile) ([]Device, error) { return workload.Generate(n, p) }

// TotalLoad sums the steady-state load of a population.
func TotalLoad(devices []Device) float64 { return workload.TotalLoad(devices) }

// InstanceFromTopology binds a delay matrix, device population and
// capacities into a GAP instance.
func InstanceFromTopology(dm *DelayMatrix, devices []Device, capacity []float64) (*Instance, error) {
	return gap.FromTopology(dm, devices, capacity)
}

// Assignment algorithms (internal/assign).
type (
	// Assigner is the algorithm interface.
	Assigner = assign.Assigner
	// AssignerFactory builds an assigner from a seed.
	AssignerFactory = assign.Factory
	// AlgorithmRegistry is the name-indexed algorithm table.
	AlgorithmRegistry = assign.Registry
	// QLearningAssigner is the paper's primary heuristic (exposes
	// Params and the convergence Trace).
	QLearningAssigner = assign.QLearning
	// RLParams tunes the RL assigners.
	RLParams = assign.RLParams
)

// NewAlgorithmRegistry returns a registry with every built-in algorithm.
func NewAlgorithmRegistry() *AlgorithmRegistry { return assign.NewRegistry() }

// NewQLearning returns the paper's Q-learning assigner.
func NewQLearning(seed int64) *QLearningAssigner { return assign.NewQLearning(seed) }

// NewGreedy returns the min-delay greedy baseline.
func NewGreedy() Assigner { return assign.NewGreedy() }

// NewLocalSearch returns the shift/swap hill-climbing baseline.
func NewLocalSearch(seed int64) Assigner { return assign.NewLocalSearch(seed) }

// NewLagrangian returns the Lagrangian-relaxation-guided baseline.
func NewLagrangian(seed int64) Assigner { return assign.NewLagrangian(seed) }

// NewPortfolio runs several assigners sequentially and keeps the best
// feasible result; with no members it uses the default strong set.
func NewPortfolio(seed int64, members ...Assigner) Assigner {
	return assign.NewPortfolio(seed, members...)
}

// NewParallelPortfolio is NewPortfolio with members solving concurrently:
// same result (best cost, ties broken by member order), wall-clock time of
// the slowest member instead of the sum. This is also the configuration the
// algorithm registry serves under the name "portfolio".
func NewParallelPortfolio(seed int64, members ...Assigner) Assigner {
	return assign.NewParallelPortfolio(seed, members...)
}

// NewMinMax returns the min-max-fairness assigner: it minimizes the
// worst-served device's delay via bisection, then polishes total delay
// under that cap.
func NewMinMax(seed int64) Assigner { return assign.NewMinMax(seed) }

// WithDeadlines masks every cell whose delay exceeds the device's budget,
// so any assigner produces deadline-respecting configurations.
func WithDeadlines(in *Instance, budgetMs []float64) (*Instance, error) {
	return gap.WithDeadlines(in, budgetMs)
}

// DeadlineViolations counts devices whose assigned delay exceeds their
// budget.
func DeadlineViolations(in *Instance, a *Assignment, budgetMs []float64) (int, error) {
	return gap.DeadlineViolations(in, a, budgetMs)
}

// Move describes one device's placement change between two assignments.
type Move = gap.Move

// DiffAssignments lists placement changes from old to new with per-device
// delay deltas (migration planning).
func DiffAssignments(in *Instance, old, new *Assignment) ([]Move, error) {
	return gap.Diff(in, old, new)
}

// MigrationGain sums a diff's delay improvement (positive = new is better).
func MigrationGain(moves []Move) float64 { return gap.MigrationGain(moves) }

// WithCloud appends a cloud tier column (unbounded capacity, fixed WAN
// delay) so overflow devices offload instead of making the instance
// infeasible.
func WithCloud(in *Instance, cloudDelayMs float64) (*Instance, error) {
	return gap.WithCloud(in, cloudDelayMs)
}

// CloudOffload counts devices a WithCloud assignment sent to the cloud.
func CloudOffload(in *Instance, a *Assignment) (count int, fraction float64, err error) {
	return gap.CloudOffload(in, a)
}

// NewReplayArrivals wraps a recorded inter-arrival gap sequence (ms) as an
// arrival process for the simulator, cycling when exhausted.
func NewReplayArrivals(gapsMs []float64) (*workload.Replay, error) {
	return workload.NewReplay(gapsMs)
}

// Cluster simulation (internal/cluster).
type (
	// SimConfig configures an edge-cluster simulation run.
	SimConfig = cluster.Config
	// Simulator replays request streams against an assignment.
	Simulator = cluster.Simulator
	// SimResult aggregates a run's latencies, misses and utilization.
	SimResult = cluster.Result
	// Discipline selects an edge server's queueing discipline.
	Discipline = cluster.Discipline
)

// Queueing disciplines.
const (
	// DisciplineFIFO serves requests one at a time in arrival order.
	DisciplineFIFO = cluster.DisciplineFIFO
	// DisciplinePS shares each server equally among queued requests.
	DisciplinePS = cluster.DisciplinePS
)

// NewSimulator validates a config and builds a simulator.
func NewSimulator(cfg SimConfig) (*Simulator, error) { return cluster.New(cfg) }

// Request tracing (internal/cluster + internal/trace).
type (
	// RequestRecord is one request's lifecycle.
	RequestRecord = cluster.RequestRecord
	// Outcome classifies how a request ended (ok / missed / dropped).
	Outcome = cluster.Outcome
	// Recorder consumes records during simulation; set SimConfig.Recorder.
	Recorder = cluster.Recorder
	// TraceWriter streams records as CSV.
	TraceWriter = trace.Writer
	// TraceSummary aggregates a trace.
	TraceSummary = trace.Summary
	// TraceWindow is one bucket of a latency time series.
	TraceWindow = trace.WindowPoint
)

// Request outcomes.
const (
	OutcomeOK      = cluster.OutcomeOK
	OutcomeMissed  = cluster.OutcomeMissed
	OutcomeDropped = cluster.OutcomeDropped
)

// NewTraceWriter starts a CSV trace on w (header written immediately).
func NewTraceWriter(w io.Writer) (*TraceWriter, error) { return trace.NewWriter(w) }

// ReadTrace parses a CSV trace written by TraceWriter.
func ReadTrace(r io.Reader) ([]RequestRecord, error) { return trace.Read(r) }

// TraceFromSpanEvents reconstructs per-request records from a structured
// event stream's root "request" spans — the event-plane counterpart of
// ReadTrace, letting run archives serve as trace sources directly.
func TraceFromSpanEvents(events []ObsEvent) ([]RequestRecord, error) {
	return trace.FromSpanEvents(events)
}

// SummarizeTrace aggregates records into counts and a latency sample.
func SummarizeTrace(records []RequestRecord) *TraceSummary { return trace.Summarize(records) }

// TraceTimeSeries buckets a trace into fixed windows for latency-over-time
// views.
func TraceTimeSeries(records []RequestRecord, windowMs float64) ([]TraceWindow, error) {
	return trace.TimeSeries(records, windowMs)
}

// Online reconfiguration (internal/online).
type (
	// OnlineController maintains a live configuration as devices join,
	// leave and move, with bounded-migration rebalancing.
	OnlineController = online.Controller
	// OnlinePolicy decides per-epoch maintenance on a controller.
	OnlinePolicy = online.Policy
	// PolicyJoinOnly never migrates (the configure-once strawman).
	PolicyJoinOnly = online.JoinOnly
	// PolicyThreshold migrates devices whose gain exceeds a bar.
	PolicyThreshold = online.Threshold
	// PolicyRebalance periodically re-solves under a migration budget.
	PolicyRebalance = online.Rebalance
)

// Online controller sentinel errors.
var (
	// ErrNoCapacity means no edge can host the joining device.
	ErrNoCapacity = online.ErrNoCapacity
	// ErrUnknownDevice means the device ID is not attached.
	ErrUnknownDevice = online.ErrUnknownDevice
)

// NewOnlineController builds a controller over the given edge capacities.
func NewOnlineController(capacity []float64) (*OnlineController, error) {
	return online.NewController(capacity)
}

// Experiments (internal/experiment).
type (
	// Scenario describes an evaluated deployment.
	Scenario = experiment.Scenario
	// BuiltScenario is a materialized scenario.
	BuiltScenario = experiment.Built
	// ExperimentOptions tunes experiment execution.
	ExperimentOptions = experiment.Options
	// ExperimentSpec is a runnable experiment.
	ExperimentSpec = experiment.Spec
	// ResultTable is a rendered experiment result.
	ResultTable = experiment.Table
	// AlgoStat aggregates one algorithm's behaviour over replications.
	AlgoStat = experiment.AlgoStat
	// ExperimentResult is one spec's outcome from RunExperiments.
	ExperimentResult = experiment.Result
)

// Experiments returns every table/figure experiment in report order.
func Experiments() []ExperimentSpec { return experiment.All() }

// ExperimentByID finds an experiment by its DESIGN.md identifier.
func ExperimentByID(id string) (ExperimentSpec, error) { return experiment.ByID(id) }

// RunExperiments executes specs with up to opts.Workers specs in flight
// (<= 0 means all cores, 1 is sequential), returning per-spec tables,
// timings and failures in spec order. Results are identical at any
// parallelism.
func RunExperiments(specs []ExperimentSpec, opts ExperimentOptions) []ExperimentResult {
	return experiment.RunAll(specs, opts)
}

// CompareAlgorithms runs the named algorithms over replications of a
// scenario and aggregates delay, runtime and feasibility, using every core.
// Results are bit-identical to a sequential run; see
// CompareAlgorithmsWorkers to bound (or disable) the parallelism.
func CompareAlgorithms(sc Scenario, algos []string, reps int) ([]AlgoStat, error) {
	return experiment.CompareAlgorithms(sc, algos, reps)
}

// CompareAlgorithmsWorkers is CompareAlgorithms with an explicit worker
// count (<= 0 means all cores, 1 restores sequential execution).
func CompareAlgorithmsWorkers(sc Scenario, algos []string, reps, workers int) ([]AlgoStat, error) {
	return experiment.CompareAlgorithmsWorkers(sc, algos, reps, workers)
}

// ServiceRates converts planner capacities into simulator service rates
// with queueing headroom (see internal/experiment.ServiceRates).
func ServiceRates(capacity []float64, headroom float64) []float64 {
	return experiment.ServiceRates(capacity, headroom)
}

// DefaultAlgorithms is the standard comparison set, weakest baseline first.
func DefaultAlgorithms() []string {
	out := make([]string, len(experiment.DefaultAlgorithms))
	copy(out, experiment.DefaultAlgorithms)
	return out
}

// Bench suite (internal/experiment): the fixed performance-tracking
// scenarios behind `tacbench -json` and the tacreport perf gate.
type (
	// BenchResults is the on-disk shape of BENCH_results.json.
	BenchResults = experiment.BenchResults
	// BenchScenario is one bench scenario's per-algorithm statistics.
	BenchScenario = experiment.BenchScenario
	// BenchAlgo is one algorithm's aggregated bench statistics.
	BenchAlgo = experiment.BenchAlgo
)

// RunBenchSuite executes the fixed bench scenarios with the standard
// algorithm set. Objective statistics are reproducible from opts.Seed at
// any opts.Workers; runtime statistics reflect this machine. Tool and
// Version are left for the caller to stamp.
func RunBenchSuite(opts ExperimentOptions) (*BenchResults, error) {
	return experiment.RunBench(opts)
}

// ReadBenchResults parses a BENCH_results.json / BENCH_baseline.json
// file, rejecting truncated or foreign files descriptively.
func ReadBenchResults(r io.Reader) (*BenchResults, error) {
	return experiment.ReadBenchResults(r)
}

// Observability (internal/obs). Every hook is optional and nil-safe:
// with no sink or registry attached the instrumented code paths are
// no-ops and results are bit-identical.
type (
	// ObsEvent is one structured observability event.
	ObsEvent = obs.Event
	// ObsSink consumes structured events (see NewJSONLSink).
	ObsSink = obs.Sink
	// JSONLSink streams events as JSON lines.
	JSONLSink = obs.JSONL
	// MetricsRegistry is a concurrency-safe named-metric table.
	MetricsRegistry = obs.Registry
	// MetricsSnapshot is a point-in-time registry export (JSON-friendly).
	MetricsSnapshot = obs.Snapshot
	// IterEvent is one solver iteration's progress (algo, iter, best
	// cost, feasibility).
	IterEvent = obs.IterEvent
	// ProgressSink consumes solver iteration events.
	ProgressSink = obs.ProgressSink
	// Span is one timed phase of a traced request (see SimConfig.Spans).
	Span = obs.Span
	// TraceID groups the spans of one traced request.
	TraceID = obs.TraceID
	// SpanID identifies a span within its trace.
	SpanID = obs.SpanID
	// HistogramSnapshot is a point-in-time histogram export with bucket
	// counts and quantile estimation.
	HistogramSnapshot = obs.HistogramSnapshot
	// Clock is the sanctioned monotonic wall-clock reader — the single
	// doorway through which wall time may enter instrumentation.
	Clock = obs.Clock
	// Tracer mints pipeline-trace phases over a span sink.
	Tracer = obs.Tracer
	// Phase is one live pipeline-trace phase; nil phases are inert, so
	// tracing hooks can be threaded through unconditionally.
	Phase = obs.Phase
	// SpanCollector gathers emitted spans in memory (for export or
	// phase-attribution reporting).
	SpanCollector = obs.SpanCollector
)

// NewMetricsRegistry returns an empty metrics registry; set it as
// SimConfig.Metrics for live simulator counters, or feed it solver
// progress via MetricsProgress.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// NewJSONLSink streams events to w as one JSON object per line.
func NewJSONLSink(w io.Writer) *JSONLSink { return obs.NewJSONL(w) }

// EventProgress adapts an event sink into a solver progress sink (one
// "iter" event per solver iteration).
func EventProgress(s ObsSink) ProgressSink { return obs.EventProgress(s) }

// MetricsProgress exposes solver progress as registry metrics
// (solver.<algo>.iters counters, solver.<algo>.best_cost_ms gauges).
func MetricsProgress(r *MetricsRegistry) ProgressSink { return obs.MetricsProgress(r) }

// MultiProgress fans iteration events out to several sinks.
func MultiProgress(sinks ...ProgressSink) ProgressSink { return obs.MultiProgress(sinks...) }

// NewProgressWriter prints a human-readable line to w each time a solver
// improves its incumbent.
func NewProgressWriter(w io.Writer) ProgressSink { return obs.ProgressWriter(w) }

// WithProgress attaches a progress sink to an assigner if it supports
// iteration reporting (q-learning episodes, tabu/LNS/genetic iterations,
// portfolio arms); reports whether it does. Attaching a sink never
// changes an assigner's result.
func WithProgress(a Assigner, sink ProgressSink) bool { return assign.WithProgress(a, sink) }

// WithPhases attaches a pipeline-trace parent phase to an assigner if it
// reports solver phases (construction/improvement/repair/polish);
// reports whether it does. Attaching never changes an assigner's result,
// and a nil parent keeps the solver on its zero-overhead path.
func WithPhases(a Assigner, parent *Phase) bool { return assign.WithPhases(a, parent) }

// WallClock returns the process-wide monotonic wall clock — the only
// sanctioned wall-clock source for instrumentation (see internal/obs).
func WallClock() Clock { return obs.WallClock() }

// NewTracer builds a pipeline tracer emitting finished phase spans into
// sink; a nil sink returns a nil (inert) tracer.
func NewTracer(sink ObsSink, clock Clock) *Tracer { return obs.NewTracer(sink, clock) }

// WriteChromeTrace exports spans as Chrome trace-event JSON, loadable in
// Perfetto or chrome://tracing.
func WriteChromeTrace(w io.Writer, spans []Span) error { return obs.WriteChromeTrace(w, spans) }

// DefaultLatencyBucketsMs returns the standard latency histogram bucket
// bounds (0.5 ms .. 10 s).
func DefaultLatencyBucketsMs() []float64 { return obs.DefaultLatencyBucketsMs() }

// EmitSpan sends a span into a sink (nil-safe); the cluster simulator
// emits spans automatically when SimConfig.Spans is set.
func EmitSpan(s ObsSink, sp Span) { obs.EmitSpan(s, sp) }

// Streaming SLO plane (internal/obs/slo): rolling-window latency
// quantiles, error budgets, and alert events driven purely by sim time.
// Set SimConfig.SLO to evaluate objectives during a cluster run; the
// tracker is nil-safe, so an unconfigured plane costs nothing and
// results stay bit-identical.
type (
	// SLOTracker aggregates fixed-width rolling windows and evaluates
	// objectives as the simulation advances (see NewSLOTracker).
	SLOTracker = slo.Tracker
	// SLOConfig configures a tracker: window width, objectives, event
	// sink, metrics registry.
	SLOConfig = slo.Config
	// SLOObjective is one target: a windowed statistic over a delay
	// series, a threshold, and a compliance target.
	SLOObjective = slo.Objective
	// SLOSeries names a delay series (e2e, uplink, queue, service,
	// downlink).
	SLOSeries = slo.Series
	// SLOStat is the windowed statistic an objective evaluates
	// (quantile, mean, or miss rate).
	SLOStat = slo.Stat
	// SLOObjectiveResult is an objective's end-of-run verdict: windows,
	// violations, compliance, remaining error budget, alert count.
	SLOObjectiveResult = slo.ObjectiveResult
)

// NewSLOTracker validates cfg and returns a windowed SLO tracker; set
// it as SimConfig.SLO. A nil tracker is inert.
func NewSLOTracker(cfg SLOConfig) (*SLOTracker, error) { return slo.New(cfg) }

// ParseSLOObjectives parses a comma-separated objective spec such as
// "p95<=20@99,uplink.mean<=5,miss<=0.01" (the tacsim/tacsolve -slo
// flag syntax).
func ParseSLOObjectives(spec string) ([]SLOObjective, error) { return slo.ParseObjectives(spec) }

// TelemetryHandler serves a metrics registry over HTTP: /metrics
// (Prometheus text exposition), /healthz, /snapshot (JSON) and
// /debug/pprof. The tacsim/tacsolve/tacbench -listen flag mounts this
// handler; embedders can mount it on their own server.
func TelemetryHandler(reg *MetricsRegistry) http.Handler { return httpserv.Handler(reg) }

// CompareAlgorithmsObserved is CompareAlgorithmsWorkers with a progress
// sink receiving one "cell" event per (algorithm, replication) solve and
// one "algo-done" aggregate per algorithm. Results are bit-identical
// with or without a sink.
func CompareAlgorithmsObserved(sc Scenario, algos []string, reps, workers int, progress ObsSink) ([]AlgoStat, error) {
	return experiment.CompareAlgorithmsObserved(sc, algos, reps, workers, progress)
}

// WorkloadProfiles returns the named device-profile presets (default,
// smartcity, factory, wearables), each seeded with seed.
func WorkloadProfiles(seed int64) map[string]Profile { return workload.Profiles(seed) }

// WriteDevicesJSON serializes a device population.
func WriteDevicesJSON(w io.Writer, devices []Device) error {
	return workload.WriteDevicesJSON(w, devices)
}

// ReadDevicesJSON parses a device population written by WriteDevicesJSON.
func ReadDevicesJSON(r io.Reader) ([]Device, error) { return workload.ReadDevicesJSON(r) }
