module taccc

go 1.22
