package taccc_test

import (
	"bytes"
	"math"
	"testing"

	taccc "taccc"
)

// TestSoakDynamicPipeline drives the whole stack through one long dynamic
// run — solve, simulate with drift, mid-run reconfiguration with migration
// pauses, an edge failure and recovery, churn, PS discipline and a trace
// recorder — and asserts global consistency invariants between the
// simulator's result and the trace.
func TestSoakDynamicPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	built, err := taccc.Scenario{NumIoT: 40, NumEdge: 5, Rho: 0.6, Seed: 11}.Build()
	if err != nil {
		t.Fatal(err)
	}
	initial, err := taccc.NewQLearning(11).Assign(built.Instance)
	if err != nil {
		t.Fatal(err)
	}
	alt, err := taccc.NewGreedy().Assign(built.Instance)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	w, err := taccc.NewTraceWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := taccc.NewSimulator(taccc.SimConfig{
		UplinkMs:    built.Delay.DelayMs,
		Devices:     built.Devices,
		ServiceRate: taccc.ServiceRates(built.Capacity, 0.6),
		Assignment:  initial.Of,
		WarmupMs:    5_000,
		Discipline:  taccc.DisciplinePS,
		JitterSigma: 0.3,
		MaxQueue:    2_000,
		Recorder:    w,
		Seed:        11,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Drift: delays double at t=60 s (device movement), revert at 120 s.
	doubled := make([][]float64, len(built.Delay.DelayMs))
	for i, row := range built.Delay.DelayMs {
		doubled[i] = make([]float64, len(row))
		for j, d := range row {
			doubled[i][j] = 2 * d
		}
	}
	if err := sim.ScheduleUplinkUpdate(60_000, doubled, nil); err != nil {
		t.Fatal(err)
	}
	if err := sim.ScheduleUplinkUpdate(120_000, built.Delay.DelayMs, nil); err != nil {
		t.Fatal(err)
	}
	// Reconfigure with migration pause at t=90 s.
	if err := sim.ScheduleReconfigureWithPause(90_000, alt.Of, 1_000); err != nil {
		t.Fatal(err)
	}
	// Edge failure and recovery.
	if err := sim.ScheduleEdgeFailure(30_000, 0); err != nil {
		t.Fatal(err)
	}
	if err := sim.ScheduleEdgeRecovery(45_000, 0); err != nil {
		t.Fatal(err)
	}
	// Churn: device 3 leaves for a minute.
	if err := sim.ScheduleDeviceChurn(20_000, 3, false); err != nil {
		t.Fatal(err)
	}
	if err := sim.ScheduleDeviceChurn(80_000, 3, true); err != nil {
		t.Fatal(err)
	}

	res, err := sim.Run(180_000) // 3 simulated minutes
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	// Global sanity.
	if res.Completed < 1_000 {
		t.Fatalf("only %d completions in 3 minutes", res.Completed)
	}
	if res.Dropped == 0 {
		t.Fatal("edge failure produced no drops")
	}
	for j, u := range res.Utilization() {
		if u < 0 || u > 1.2 {
			t.Fatalf("edge %d utilization %v out of range", j, u)
		}
	}
	// Trace agrees with result on the measured window.
	recs, err := taccc.ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	measured := 0
	misses := 0
	var latSum float64
	for _, r := range recs {
		if r.SentAtMs < 5_000 || r.Outcome == taccc.OutcomeDropped {
			continue
		}
		measured++
		latSum += r.LatencyMs
		if r.Outcome == taccc.OutcomeMissed {
			misses++
		}
	}
	if measured != res.Completed {
		t.Fatalf("trace measured %d completions, result %d", measured, res.Completed)
	}
	if misses != res.DeadlineMisses {
		t.Fatalf("trace misses %d, result %d", misses, res.DeadlineMisses)
	}
	if math.Abs(latSum/float64(measured)-res.Latency.Mean()) > 1e-3 {
		t.Fatalf("trace mean %v, result mean %v", latSum/float64(measured), res.Latency.Mean())
	}
	// Time series covers the full horizon.
	ts, err := taccc.TraceTimeSeries(recs, 30_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) < 5 {
		t.Fatalf("time series has %d windows, want ~6", len(ts))
	}
}
