package taccc_test

// One benchmark per evaluation table/figure (T1..T3, F1..F8) plus
// micro-benchmarks for the hot paths they exercise. The experiment benches
// run in quick mode with one replication per iteration; use cmd/tacbench
// for full-fidelity numbers.

import (
	"fmt"
	"io"
	"runtime"
	"testing"

	taccc "taccc"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	spec, err := taccc.ExperimentByID(id)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := spec.Run(taccc.ExperimentOptions{Quick: true, Reps: 1, Seed: int64(i + 1)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkT1AlgorithmComparison(b *testing.B) { benchExperiment(b, "T1") }
func BenchmarkT2Runtime(b *testing.B)             { benchExperiment(b, "T2") }
func BenchmarkT3EndToEnd(b *testing.B)            { benchExperiment(b, "T3") }
func BenchmarkT4OnlinePolicies(b *testing.B)      { benchExperiment(b, "T4") }
func BenchmarkF1ScaleIoT(b *testing.B)            { benchExperiment(b, "F1") }
func BenchmarkF2ScaleEdge(b *testing.B)           { benchExperiment(b, "F2") }
func BenchmarkF3Tightness(b *testing.B)           { benchExperiment(b, "F3") }
func BenchmarkF4Convergence(b *testing.B)         { benchExperiment(b, "F4") }
func BenchmarkF5Gap(b *testing.B)                 { benchExperiment(b, "F5") }
func BenchmarkF6Topology(b *testing.B)            { benchExperiment(b, "F6") }
func BenchmarkF7Dynamic(b *testing.B)             { benchExperiment(b, "F7") }
func BenchmarkF8Ablation(b *testing.B)            { benchExperiment(b, "F8") }
func BenchmarkF9Congestion(b *testing.B)          { benchExperiment(b, "F9") }
func BenchmarkF10GatewayDensity(b *testing.B)     { benchExperiment(b, "F10") }
func BenchmarkF11DesignAblation(b *testing.B)     { benchExperiment(b, "F11") }
func BenchmarkF12Multipath(b *testing.B)          { benchExperiment(b, "F12") }
func BenchmarkF13Fairness(b *testing.B)           { benchExperiment(b, "F13") }
func BenchmarkF14Resilience(b *testing.B)         { benchExperiment(b, "F14") }
func BenchmarkF15ReconfigFrequency(b *testing.B)  { benchExperiment(b, "F15") }
func BenchmarkF16CloudOffload(b *testing.B)       { benchExperiment(b, "F16") }

// --- Micro-benchmarks for the substrates the experiments lean on ---

func buildBench(b *testing.B, n, m int) *taccc.BuiltScenario {
	b.Helper()
	built, err := taccc.Scenario{NumIoT: n, NumEdge: m, Seed: 1}.Build()
	if err != nil {
		b.Fatal(err)
	}
	return built
}

func BenchmarkTopologyGenerate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := taccc.GenerateTopology(taccc.FamilyHierarchical, taccc.TopologyConfig{
			NumIoT: 200, NumEdge: 20, NumGateways: 40, Seed: int64(i),
		}, taccc.PlaceUniform)
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDelayMatrix(b *testing.B) {
	g, err := taccc.GenerateTopology(taccc.FamilyHierarchical, taccc.TopologyConfig{
		NumIoT: 200, NumEdge: 20, NumGateways: 40, Seed: 1,
	}, taccc.PlaceUniform)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		taccc.NewDelayMatrix(g, taccc.LatencyCost)
	}
}

func benchAssigner(b *testing.B, name string, n, m int) {
	built := buildBench(b, n, m)
	reg := taccc.NewAlgorithmRegistry()
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a, err := reg.New(name, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := a.Assign(built.Instance); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAssignGreedy100(b *testing.B)      { benchAssigner(b, "greedy", 100, 10) }
func BenchmarkAssignRegret100(b *testing.B)      { benchAssigner(b, "regret-greedy", 100, 10) }
func BenchmarkAssignLocalSearch100(b *testing.B) { benchAssigner(b, "local-search", 100, 10) }
func BenchmarkAssignLagrangian100(b *testing.B)  { benchAssigner(b, "lagrangian", 100, 10) }
func BenchmarkAssignQLearning100(b *testing.B)   { benchAssigner(b, "qlearning", 100, 10) }
func BenchmarkAssignQLearning400(b *testing.B)   { benchAssigner(b, "qlearning", 400, 40) }

func BenchmarkBranchAndBound12(b *testing.B) {
	in, err := taccc.SyntheticInstance(taccc.SyntheticCorrelated, 12, 3, 0.8, 3)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := taccc.BranchAndBound(in, taccc.BnBOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkClusterSim(b *testing.B) {
	built := buildBench(b, 100, 10)
	a, err := taccc.NewGreedy().Assign(built.Instance)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sim, err := taccc.NewSimulator(taccc.SimConfig{
			UplinkMs:    built.Delay.DelayMs,
			Devices:     built.Devices,
			ServiceRate: taccc.ServiceRates(built.Capacity, 0.7),
			Assignment:  a.Of,
			Seed:        int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sim.Run(10_000); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClusterSimSpans measures span emission against the nil-sink
// path: "off" must match BenchmarkClusterSim (tracing disabled is free),
// "on" prices full tracing through a JSONL encoder, and "sampled" the
// 10% operating point.
func BenchmarkClusterSimSpans(b *testing.B) {
	built := buildBench(b, 100, 10)
	a, err := taccc.NewGreedy().Assign(built.Instance)
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		name   string
		spans  bool
		sample float64
	}{
		{"off", false, 0},
		{"on", true, 0},
		{"sampled-10pct", true, 0.1},
	} {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cfg := taccc.SimConfig{
					UplinkMs:    built.Delay.DelayMs,
					Devices:     built.Devices,
					ServiceRate: taccc.ServiceRates(built.Capacity, 0.7),
					Assignment:  a.Of,
					Seed:        int64(i),
				}
				if mode.spans {
					cfg.Spans = taccc.NewJSONLSink(io.Discard)
					cfg.TraceSampleRate = mode.sample
				}
				sim, err := taccc.NewSimulator(cfg)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := sim.Run(10_000); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkClusterSimSLO pins the SLO plane's cost: "off" must match
// BenchmarkClusterSim (an unconfigured tracker is a nil pointer and
// every hook no-ops), "on" prices windowed aggregation plus objective
// evaluation with events discarded through a JSONL encoder.
func BenchmarkClusterSimSLO(b *testing.B) {
	built := buildBench(b, 100, 10)
	a, err := taccc.NewGreedy().Assign(built.Instance)
	if err != nil {
		b.Fatal(err)
	}
	objectives, err := taccc.ParseSLOObjectives("p95<=20@99,miss<=0.01")
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		name string
		slo  bool
	}{
		{"off", false},
		{"on", true},
	} {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cfg := taccc.SimConfig{
					UplinkMs:    built.Delay.DelayMs,
					Devices:     built.Devices,
					ServiceRate: taccc.ServiceRates(built.Capacity, 0.7),
					Assignment:  a.Of,
					Seed:        int64(i),
				}
				if mode.slo {
					tr, err := taccc.NewSLOTracker(taccc.SLOConfig{
						WindowMs:   500,
						Objectives: objectives,
						Sink:       taccc.NewJSONLSink(io.Discard),
					})
					if err != nil {
						b.Fatal(err)
					}
					cfg.SLO = tr
				}
				sim, err := taccc.NewSimulator(cfg)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := sim.Run(10_000); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkScenarioBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := (taccc.Scenario{NumIoT: 100, NumEdge: 10, Seed: int64(i)}).Build(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLowerBound(b *testing.B) {
	built := buildBench(b, 200, 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = taccc.LowerBound(built.Instance)
	}
}

// --- Parallel execution layer: workers=1 vs workers=GOMAXPROCS ---
//
// Compare sub-benchmarks to see the speedup, e.g.:
//
//	go test -bench 'Workers' -benchtime 2x .

func benchWorkerCounts(b *testing.B, run func(b *testing.B, workers int)) {
	b.Helper()
	for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
		workers := workers
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			run(b, workers)
		})
	}
}

func BenchmarkCompareAlgorithmsWorkers(b *testing.B) {
	sc := taccc.Scenario{NumIoT: 100, NumEdge: 10, Seed: 1}
	algos := []string{"greedy", "local-search", "tabu", "lagrangian", "qlearning"}
	benchWorkerCounts(b, func(b *testing.B, workers int) {
		for i := 0; i < b.N; i++ {
			if _, err := taccc.CompareAlgorithmsWorkers(sc, algos, 4, workers); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkAllPairsWorkers(b *testing.B) {
	g, err := taccc.GenerateTopology(taccc.FamilyHierarchical, taccc.TopologyConfig{
		NumIoT: 400, NumEdge: 40, NumGateways: 80, Seed: 1,
	}, taccc.PlaceUniform)
	if err != nil {
		b.Fatal(err)
	}
	benchWorkerCounts(b, func(b *testing.B, workers int) {
		for i := 0; i < b.N; i++ {
			g.AllPairsWorkers(taccc.LatencyCost, workers)
		}
	})
}

func BenchmarkDelayMatrixWorkers(b *testing.B) {
	g, err := taccc.GenerateTopology(taccc.FamilyHierarchical, taccc.TopologyConfig{
		NumIoT: 400, NumEdge: 40, NumGateways: 80, Seed: 1,
	}, taccc.PlaceUniform)
	if err != nil {
		b.Fatal(err)
	}
	benchWorkerCounts(b, func(b *testing.B, workers int) {
		for i := 0; i < b.N; i++ {
			taccc.NewDelayMatrixWorkers(g, taccc.LatencyCost, workers)
		}
	})
}

func BenchmarkParallelPortfolio(b *testing.B) {
	built := buildBench(b, 100, 10)
	for _, mk := range []struct {
		name string
		mk   func(seed int64) taccc.Assigner
	}{
		{"sequential", func(seed int64) taccc.Assigner { return taccc.NewPortfolio(seed) }},
		{"parallel", func(seed int64) taccc.Assigner { return taccc.NewParallelPortfolio(seed) }},
	} {
		mk := mk
		b.Run(mk.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := mk.mk(int64(i)).Assign(built.Instance); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkAssignScaling(b *testing.B) {
	for _, n := range []int{50, 100, 200} {
		n := n
		b.Run(fmt.Sprintf("greedy-n%d", n), func(b *testing.B) { benchAssigner(b, "greedy", n, n/10) })
		b.Run(fmt.Sprintf("qlearning-n%d", n), func(b *testing.B) { benchAssigner(b, "qlearning", n, n/10) })
	}
}
