package taccc_test

import (
	"fmt"
	"log"

	taccc "taccc"
)

// The quickstart flow: build a deployment scenario, solve the assignment,
// verify feasibility.
func ExampleScenario() {
	built, err := taccc.Scenario{NumIoT: 30, NumEdge: 4, Seed: 7}.Build()
	if err != nil {
		log.Fatal(err)
	}
	a, err := taccc.NewQLearning(7).Assign(built.Instance)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("devices:", built.Instance.N())
	fmt.Println("edges:", built.Instance.M())
	fmt.Println("feasible:", built.Instance.Feasible(a))
	// Output:
	// devices: 30
	// edges: 4
	// feasible: true
}

// Building an instance by hand and solving it exactly.
func ExampleBranchAndBound() {
	in, err := taccc.NewInstance(
		[][]float64{{1, 9}, {9, 1}}, // delays
		[][]float64{{1, 1}, {1, 1}}, // loads
		[]float64{1, 1},             // capacities
	)
	if err != nil {
		log.Fatal(err)
	}
	res, err := taccc.BranchAndBound(in, taccc.BnBOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimal total delay: %.0f ms (proven: %v)\n", res.Cost, res.Proven)
	// Output:
	// optimal total delay: 2 ms (proven: true)
}

// The algorithm registry sweeps every implementation generically.
func ExampleAlgorithmRegistry() {
	in, err := taccc.SyntheticInstance(taccc.SyntheticUniform, 10, 3, 0.6, 1)
	if err != nil {
		log.Fatal(err)
	}
	reg := taccc.NewAlgorithmRegistry()
	for _, name := range []string{"greedy", "qlearning"} {
		a, err := reg.New(name, 1)
		if err != nil {
			log.Fatal(err)
		}
		got, err := a.Assign(in)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s feasible: %v\n", name, in.Feasible(got))
	}
	// Output:
	// greedy feasible: true
	// qlearning feasible: true
}

// The online controller maintains a live configuration incrementally.
func ExampleOnlineController() {
	ctrl, err := taccc.NewOnlineController([]float64{10, 10})
	if err != nil {
		log.Fatal(err)
	}
	edge, err := ctrl.Join(0, []float64{5, 2}, 3) // joins the cheaper edge
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("placed on edge:", edge)
	// The device moved; edge 0 is now closer.
	if err := ctrl.UpdateCosts(0, []float64{1, 6}); err != nil {
		log.Fatal(err)
	}
	moved, err := ctrl.Migrate(0, 0.5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("migrated:", moved)
	fmt.Printf("mean delay: %.0f ms\n", ctrl.MeanDelay())
	// Output:
	// placed on edge: 1
	// migrated: true
	// mean delay: 1 ms
}

// Deadline budgets turn into hard constraints via cell masking.
func ExampleWithDeadlines() {
	in, err := taccc.NewInstance(
		[][]float64{{3, 30}},
		[][]float64{{1, 1}},
		[]float64{5, 5},
	)
	if err != nil {
		log.Fatal(err)
	}
	masked, err := taccc.WithDeadlines(in, []float64{10})
	if err != nil {
		log.Fatal(err)
	}
	a, err := taccc.NewGreedy().Assign(masked)
	if err != nil {
		log.Fatal(err)
	}
	v, err := taccc.DeadlineViolations(in, a, []float64{10})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("violations:", v)
	// Output:
	// violations: 0
}
