package taccc_test

// Facade-level coverage for the parallel execution layer: the workers knobs
// must be reachable from the public API and must never change results —
// only wall-clock time.

import (
	"reflect"
	"testing"

	taccc "taccc"
)

func TestParallelPortfolioPublicAPI(t *testing.T) {
	built, err := taccc.Scenario{NumIoT: 30, NumEdge: 4, Seed: 6}.Build()
	if err != nil {
		t.Fatal(err)
	}
	par, err := taccc.NewParallelPortfolio(6).Assign(built.Instance)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := taccc.NewPortfolio(6).Assign(built.Instance)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := built.Instance.TotalCost(par), built.Instance.TotalCost(seq); got != want {
		t.Fatalf("parallel portfolio cost %v != sequential %v", got, want)
	}
	if !built.Instance.Feasible(par) {
		t.Fatal("parallel portfolio returned infeasible assignment")
	}
}

func TestCompareAlgorithmsWorkersFacadeDeterminism(t *testing.T) {
	sc := taccc.Scenario{NumIoT: 20, NumEdge: 4, Seed: 13}
	algos := []string{"greedy", "local-search", "qlearning"}
	seq, err := taccc.CompareAlgorithmsWorkers(sc, algos, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	con, err := taccc.CompareAlgorithmsWorkers(sc, algos, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := range seq {
		seq[i].MeanRuntimeMs, con[i].MeanRuntimeMs = 0, 0
		seq[i].RuntimeCI95, con[i].RuntimeCI95 = 0, 0
		seq[i].FeasibleRuntimeMs, con[i].FeasibleRuntimeMs = 0, 0
		seq[i].FeasibleRuntimeCI95, con[i].FeasibleRuntimeCI95 = 0, 0
	}
	if !reflect.DeepEqual(seq, con) {
		t.Fatalf("workers=8 diverged:\n%+v\nvs\n%+v", con, seq)
	}
}

func TestTopologyKernelsWorkersFacadeDeterminism(t *testing.T) {
	g, err := taccc.GenerateTopology(taccc.FamilyHierarchical, taccc.TopologyConfig{
		NumIoT: 80, NumEdge: 8, NumGateways: 16, Seed: 2,
	}, taccc.PlaceUniform)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(
		g.AllPairsWorkers(taccc.LatencyCost, 8),
		g.AllPairsWorkers(taccc.LatencyCost, 1),
	) {
		t.Fatal("AllPairs differs between workers=8 and workers=1")
	}
	if !reflect.DeepEqual(
		taccc.NewDelayMatrixWorkers(g, taccc.LatencyCost, 8),
		taccc.NewDelayMatrixWorkers(g, taccc.LatencyCost, 1),
	) {
		t.Fatal("DelayMatrix differs between workers=8 and workers=1")
	}
}

func TestRunExperimentsFacade(t *testing.T) {
	spec, err := taccc.ExperimentByID("F6")
	if err != nil {
		t.Fatal(err)
	}
	specs := []taccc.ExperimentSpec{spec}
	seq := taccc.RunExperiments(specs, taccc.ExperimentOptions{Quick: true, Reps: 1, Seed: 5, Workers: 1})
	con := taccc.RunExperiments(specs, taccc.ExperimentOptions{Quick: true, Reps: 1, Seed: 5, Workers: 8})
	if len(seq) != 1 || len(con) != 1 || seq[0].Err != nil || con[0].Err != nil {
		t.Fatalf("unexpected results: %+v / %+v", seq, con)
	}
	if len(seq[0].Tables) == 0 {
		t.Fatal("no tables")
	}
	for i := range seq[0].Tables {
		if seq[0].Tables[i].CSV() != con[0].Tables[i].CSV() {
			t.Fatalf("table %d differs between workers=1 and workers=8", i)
		}
	}
}
