package gap

import (
	"math"
	"testing"
)

func TestWithCloudMakesInfeasibleSolvable(t *testing.T) {
	// Base instance is impossible: every weight exceeds every capacity.
	base, err := NewInstance(
		[][]float64{{1, 2}, {3, 4}},
		[][]float64{{10, 10}, {10, 10}},
		[]float64{5, 5},
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BruteForce(base); err == nil {
		t.Fatal("base instance unexpectedly feasible")
	}
	withCloud, err := WithCloud(base, 80)
	if err != nil {
		t.Fatal(err)
	}
	if withCloud.M() != 3 {
		t.Fatalf("M = %d, want 3", withCloud.M())
	}
	a, err := BruteForce(withCloud)
	if err != nil {
		t.Fatal(err)
	}
	count, frac, err := CloudOffload(withCloud, a)
	if err != nil {
		t.Fatal(err)
	}
	if count != 2 || frac != 1 {
		t.Fatalf("offload = %d (%.2f), want everything on the cloud", count, frac)
	}
	// Cost is two cloud round trips.
	if got := withCloud.TotalCost(a); got != 160 {
		t.Fatalf("TotalCost = %v, want 160", got)
	}
}

func TestWithCloudPrefersEdgesWhenTheyFit(t *testing.T) {
	base, err := Synthetic(SyntheticUniform, 15, 3, 0.6, 4)
	if err != nil {
		t.Fatal(err)
	}
	withCloud, err := WithCloud(base, 500) // cloud far worse than any edge
	if err != nil {
		t.Fatal(err)
	}
	res, err := BranchAndBound(withCloud, BnBOptions{})
	if err != nil {
		t.Fatal(err)
	}
	count, _, err := CloudOffload(withCloud, res.Assignment)
	if err != nil {
		t.Fatal(err)
	}
	if count != 0 {
		t.Fatalf("%d devices spilled to the cloud despite edge slack", count)
	}
}

func TestWithCloudValidation(t *testing.T) {
	base, err := Synthetic(SyntheticUniform, 4, 2, 0.6, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range []float64{0, -5, math.NaN(), math.Inf(1)} {
		if _, err := WithCloud(base, d); err == nil {
			t.Errorf("cloud delay %v accepted", d)
		}
	}
	a := &Assignment{Of: []int{0}}
	if _, _, err := CloudOffload(base, a); err == nil {
		t.Error("short assignment accepted")
	}
}
