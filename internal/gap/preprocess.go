package gap

import (
	"fmt"
	"math"
)

// Reduction is the result of Preprocess: devices whose placement is forced
// are fixed, their load subtracted from capacities, and the remaining
// ("free") devices form a smaller residual instance. Solve the residual
// with any Assigner and lift the result back with Expand.
type Reduction struct {
	// Fixed maps original device index -> forced edge.
	Fixed map[int]int
	// Free lists the original device index behind each residual row;
	// empty when every device was forced.
	Free []int
	// Residual is the instance over the free devices with reduced
	// capacities; nil when every device was forced.
	Residual *Instance
	// original dimensions for Expand validation.
	n, m int
}

// Preprocess simplifies an instance to fixpoint:
//
//  1. Cell elimination: any (i, j) whose weight exceeds edge j's remaining
//     capacity can never be used — treated as unreachable.
//  2. Forced assignment: a device with exactly one usable cell must take
//     it; its load is committed, which can eliminate further cells.
//  3. Infeasibility: a device with no usable cell proves the instance
//     infeasible (returned as ErrInfeasible).
//
// The reduction is safe: every feasible assignment of the original
// instance agrees with the forced placements.
func Preprocess(in *Instance) (*Reduction, error) {
	n, m := in.N(), in.M()
	capacity := make([]float64, m)
	copy(capacity, in.Capacity)
	fixed := make(map[int]int)
	free := make([]bool, n)
	for i := range free {
		free[i] = true
	}

	usable := func(i, j int) bool {
		return !math.IsInf(in.CostMs[i][j], 1) && in.Weight[i][j] <= capacity[j]+1e-12
	}

	for changed := true; changed; {
		changed = false
		for i := 0; i < n; i++ {
			if !free[i] {
				continue
			}
			count, only := 0, -1
			for j := 0; j < m; j++ {
				if usable(i, j) {
					count++
					only = j
				}
			}
			switch count {
			case 0:
				return nil, fmt.Errorf("gap: preprocess: device %d has no usable edge: %w", i, ErrInfeasible)
			case 1:
				fixed[i] = only
				free[i] = false
				capacity[only] -= in.Weight[i][only]
				changed = true
			}
		}
	}

	red := &Reduction{Fixed: fixed, n: n, m: m}
	for i := 0; i < n; i++ {
		if free[i] {
			red.Free = append(red.Free, i)
		}
	}
	if len(red.Free) == 0 {
		return red, nil
	}
	cost := make([][]float64, len(red.Free))
	weight := make([][]float64, len(red.Free))
	for k, i := range red.Free {
		cost[k] = make([]float64, m)
		weight[k] = make([]float64, m)
		for j := 0; j < m; j++ {
			c := in.CostMs[i][j]
			// Re-run cell elimination against committed capacity so
			// the residual encodes it.
			if !usable(i, j) {
				c = math.Inf(1)
			}
			cost[k][j] = c
			weight[k][j] = in.Weight[i][j]
		}
	}
	residual, err := NewInstance(cost, weight, capacity)
	if err != nil {
		return nil, fmt.Errorf("gap: preprocess: building residual: %w", err)
	}
	red.Residual = residual
	return red, nil
}

// NumFixed returns how many devices were forced.
func (r *Reduction) NumFixed() int { return len(r.Fixed) }

// Expand lifts a residual assignment back to the original device indexing.
// Pass nil when the reduction fixed every device.
func (r *Reduction) Expand(residual *Assignment) (*Assignment, error) {
	of := make([]int, r.n)
	for i := range of {
		of[i] = -1
	}
	for i, j := range r.Fixed {
		of[i] = j
	}
	if len(r.Free) > 0 {
		if residual == nil {
			return nil, fmt.Errorf("gap: expand: reduction has %d free devices but no residual assignment", len(r.Free))
		}
		if len(residual.Of) != len(r.Free) {
			return nil, fmt.Errorf("gap: expand: residual assignment has %d entries, want %d", len(residual.Of), len(r.Free))
		}
		for k, i := range r.Free {
			of[i] = residual.Of[k]
		}
	} else if residual != nil {
		return nil, fmt.Errorf("gap: expand: reduction fixed everything but got a residual assignment")
	}
	for i, j := range of {
		if j < 0 || j >= r.m {
			return nil, fmt.Errorf("gap: expand: device %d unassigned", i)
		}
	}
	return &Assignment{Of: of}, nil
}
