package gap

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestPreprocessForcesSingleOption(t *testing.T) {
	// Device 0 only fits on edge 1 (weight 8 > cap 5 on edge 0).
	in, err := NewInstance(
		[][]float64{
			{1, 9},
			{2, 3},
		},
		[][]float64{
			{8, 8},
			{2, 2},
		},
		[]float64{5, 10},
	)
	if err != nil {
		t.Fatal(err)
	}
	red, err := Preprocess(in)
	if err != nil {
		t.Fatal(err)
	}
	if red.NumFixed() != 1 || red.Fixed[0] != 1 {
		t.Fatalf("Fixed = %v", red.Fixed)
	}
	if len(red.Free) != 1 || red.Free[0] != 1 {
		t.Fatalf("Free = %v", red.Free)
	}
	// Residual capacity on edge 1 is 10 - 8 = 2.
	if red.Residual.Capacity[1] != 2 {
		t.Fatalf("residual capacity = %v", red.Residual.Capacity)
	}
}

func TestPreprocessCascades(t *testing.T) {
	// Forcing device 0 onto edge 0 consumes it entirely, which forces
	// device 1 onto edge 1.
	in, err := NewInstance(
		[][]float64{
			{1, math.Inf(1)}, // device 0: only edge 0
			{1, 5},           // device 1: prefers edge 0 but won't fit after device 0
		},
		[][]float64{
			{4, 4},
			{3, 3},
		},
		[]float64{4, 10},
	)
	if err != nil {
		t.Fatal(err)
	}
	red, err := Preprocess(in)
	if err != nil {
		t.Fatal(err)
	}
	if red.NumFixed() != 2 {
		t.Fatalf("Fixed = %v, want both forced", red.Fixed)
	}
	if red.Fixed[0] != 0 || red.Fixed[1] != 1 {
		t.Fatalf("Fixed = %v", red.Fixed)
	}
	if red.Residual != nil || len(red.Free) != 0 {
		t.Fatal("expected fully fixed reduction")
	}
	a, err := red.Expand(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !in.Feasible(a) {
		t.Fatal("expanded forced assignment infeasible")
	}
}

func TestPreprocessDetectsInfeasible(t *testing.T) {
	in, err := NewInstance(
		[][]float64{{1, 1}},
		[][]float64{{9, 9}},
		[]float64{5, 5},
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Preprocess(in); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("want ErrInfeasible, got %v", err)
	}
}

func TestPreprocessNoOpOnSlackInstance(t *testing.T) {
	in, err := Synthetic(SyntheticUniform, 12, 4, 0.5, 3)
	if err != nil {
		t.Fatal(err)
	}
	red, err := Preprocess(in)
	if err != nil {
		t.Fatal(err)
	}
	if red.NumFixed() != 0 {
		t.Fatalf("slack instance fixed %d devices", red.NumFixed())
	}
	if red.Residual.N() != in.N() {
		t.Fatalf("residual N = %d", red.Residual.N())
	}
}

func TestExpandValidation(t *testing.T) {
	in, err := NewInstance(
		[][]float64{{1, 2}, {3, 4}},
		[][]float64{{1, 1}, {1, 1}},
		[]float64{5, 5},
	)
	if err != nil {
		t.Fatal(err)
	}
	red, err := Preprocess(in)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := red.Expand(nil); err == nil {
		t.Error("nil residual accepted with free devices")
	}
	if _, err := red.Expand(&Assignment{Of: []int{0}}); err == nil {
		t.Error("short residual accepted")
	}
	a, err := red.Expand(&Assignment{Of: []int{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if a.Of[0] != 0 || a.Of[1] != 1 {
		t.Fatalf("Of = %v", a.Of)
	}
}

// Property: preprocessing preserves the optimum — solving the residual
// exactly and expanding gives the same cost as solving the original.
func TestPreprocessPreservesOptimumQuick(t *testing.T) {
	f := func(seed int64) bool {
		in, err := Synthetic(SyntheticCorrelated, 8, 3, 0.95, seed)
		if err != nil {
			return false
		}
		direct, derr := BranchAndBound(in, BnBOptions{})
		red, perr := Preprocess(in)
		if perr != nil {
			// Preprocess proved infeasibility: B&B must agree.
			return errors.Is(perr, ErrInfeasible) && errors.Is(derr, ErrInfeasible)
		}
		var expanded *Assignment
		if red.Residual != nil {
			sub, serr := BranchAndBound(red.Residual, BnBOptions{})
			if errors.Is(serr, ErrInfeasible) {
				return errors.Is(derr, ErrInfeasible)
			}
			if serr != nil {
				return false
			}
			expanded, serr = red.Expand(sub.Assignment)
			if serr != nil {
				return false
			}
		} else {
			var eerr error
			expanded, eerr = red.Expand(nil)
			if eerr != nil {
				return false
			}
		}
		if derr != nil {
			// Direct proved infeasible but reduction found a
			// feasible assignment: contradiction.
			return !in.Feasible(expanded)
		}
		return math.Abs(in.TotalCost(expanded)-direct.Cost) < 1e-6 && in.Feasible(expanded)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
