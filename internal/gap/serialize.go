package gap

import (
	"encoding/json"
	"fmt"
	"io"
)

// instanceJSON is the wire format for Instance.
type instanceJSON struct {
	CostMs   [][]float64 `json:"cost_ms"`
	Weight   [][]float64 `json:"weight"`
	Capacity []float64   `json:"capacity"`
}

// WriteJSON serializes the instance.
func (in *Instance) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(instanceJSON{CostMs: in.CostMs, Weight: in.Weight, Capacity: in.Capacity})
}

// ReadJSON parses and validates an instance written by WriteJSON.
func ReadJSON(r io.Reader) (*Instance, error) {
	var ij instanceJSON
	if err := json.NewDecoder(r).Decode(&ij); err != nil {
		return nil, fmt.Errorf("gap: decoding instance: %w", err)
	}
	return NewInstance(ij.CostMs, ij.Weight, ij.Capacity)
}

// assignmentJSON is the wire format for Assignment.
type assignmentJSON struct {
	Of []int `json:"of"`
}

// WriteJSON serializes the assignment.
func (a *Assignment) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(assignmentJSON{Of: a.Of})
}

// ReadAssignmentJSON parses an assignment and validates it against in.
func ReadAssignmentJSON(r io.Reader, in *Instance) (*Assignment, error) {
	var aj assignmentJSON
	if err := json.NewDecoder(r).Decode(&aj); err != nil {
		return nil, fmt.Errorf("gap: decoding assignment: %w", err)
	}
	return NewAssignment(in, aj.Of)
}
