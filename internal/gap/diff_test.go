package gap

import (
	"math"
	"testing"
)

func TestDiff(t *testing.T) {
	in := tiny(t)
	a, err := NewAssignment(in, []int{0, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewAssignment(in, []int{0, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	moves, err := Diff(in, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(moves) != 2 {
		t.Fatalf("moves = %+v, want 2", moves)
	}
	// Device 1: 0 -> 1, delta = 6 - 2 = 4. Device 2: 1 -> 0, delta = 3 - 4 = -1.
	if moves[0].Device != 1 || moves[0].DeltaCostMs != 4 {
		t.Fatalf("move 0 = %+v", moves[0])
	}
	if moves[1].Device != 2 || moves[1].DeltaCostMs != -1 {
		t.Fatalf("move 1 = %+v", moves[1])
	}
	// Gain = -(4 + -1) = -3; total cost difference must agree.
	gain := MigrationGain(moves)
	if math.Abs(gain-(in.TotalCost(a)-in.TotalCost(b))) > 1e-12 {
		t.Fatalf("gain %v, cost diff %v", gain, in.TotalCost(a)-in.TotalCost(b))
	}
}

func TestDiffIdentity(t *testing.T) {
	in := tiny(t)
	a, err := NewAssignment(in, []int{0, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	moves, err := Diff(in, a, a)
	if err != nil {
		t.Fatal(err)
	}
	if len(moves) != 0 {
		t.Fatalf("identity diff has %d moves", len(moves))
	}
	if MigrationGain(nil) != 0 {
		t.Fatal("empty gain != 0")
	}
}

func TestDiffLengthMismatch(t *testing.T) {
	in := tiny(t)
	a, err := NewAssignment(in, []int{0, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Diff(in, a, &Assignment{Of: []int{0}}); err == nil {
		t.Fatal("length mismatch accepted")
	}
}
