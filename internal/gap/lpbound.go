package gap

import (
	"fmt"
	"math"

	"taccc/internal/lp"
)

// LPRelaxation solves the linear relaxation of the instance:
//
//	min Σ c_ij x_ij   s.t.  Σ_j x_ij = 1  ∀i,  Σ_i w_ij x_ij <= C_j  ∀j,  x >= 0
//
// It returns the fractional solution (row-major x[i][j]) and its objective,
// which is the tightest polynomial-time lower bound this package computes.
// Pairs with +Inf cost are excluded from the formulation (their x is 0).
// The dense simplex underneath is O(rows·cols) per pivot; keep n·m within
// a few thousand variables.
func LPRelaxation(in *Instance) ([][]float64, float64, error) {
	n, m := in.N(), in.M()
	// Map (i, j) -> variable index, skipping unreachable pairs.
	varOf := make([][]int, n)
	nVars := 0
	for i := 0; i < n; i++ {
		varOf[i] = make([]int, m)
		for j := 0; j < m; j++ {
			if math.IsInf(in.CostMs[i][j], 1) {
				varOf[i][j] = -1
				continue
			}
			varOf[i][j] = nVars
			nVars++
		}
	}
	if nVars == 0 {
		return nil, 0, fmt.Errorf("gap: LP relaxation has no reachable pairs: %w", ErrInfeasible)
	}
	c := make([]float64, nVars)
	aeq := make([][]float64, n)
	beq := make([]float64, n)
	for i := 0; i < n; i++ {
		row := make([]float64, nVars)
		any := false
		for j := 0; j < m; j++ {
			if v := varOf[i][j]; v >= 0 {
				row[v] = 1
				c[v] = in.CostMs[i][j]
				any = true
			}
		}
		if !any {
			return nil, 0, fmt.Errorf("gap: device %d unreachable from every edge: %w", i, ErrInfeasible)
		}
		aeq[i] = row
		beq[i] = 1
	}
	aub := make([][]float64, m)
	bub := make([]float64, m)
	for j := 0; j < m; j++ {
		row := make([]float64, nVars)
		for i := 0; i < n; i++ {
			if v := varOf[i][j]; v >= 0 {
				row[v] = in.Weight[i][j]
			}
		}
		aub[j] = row
		bub[j] = in.Capacity[j]
	}
	sol, err := lp.Solve(lp.Problem{C: c, Aeq: aeq, Beq: beq, Aub: aub, Bub: bub}, 0)
	if err != nil {
		if err == lp.ErrInfeasible {
			return nil, 0, fmt.Errorf("gap: LP relaxation infeasible: %w", ErrInfeasible)
		}
		return nil, 0, fmt.Errorf("gap: LP relaxation: %w", err)
	}
	x := make([][]float64, n)
	for i := 0; i < n; i++ {
		x[i] = make([]float64, m)
		for j := 0; j < m; j++ {
			if v := varOf[i][j]; v >= 0 {
				x[i][j] = sol.X[v]
			}
		}
	}
	return x, sol.Objective, nil
}

// LPBound returns the LP-relaxation lower bound, or -Inf when the LP could
// not be solved (so callers can fall back to cheaper bounds).
func LPBound(in *Instance) float64 {
	_, obj, err := LPRelaxation(in)
	if err != nil {
		return math.Inf(-1)
	}
	return obj
}
