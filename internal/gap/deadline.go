package gap

import (
	"fmt"
	"math"
)

// WithDeadlines returns a copy of the instance where any cell whose delay
// exceeds the device's deadline budget is unreachable, so every assigner
// automatically produces deadline-respecting configurations. A zero or
// negative budget means "no deadline" for that device. Devices left with
// no usable cell make the constraint set infeasible at solve time (the
// assigners report ErrInfeasible), which is the honest answer when a
// deadline cannot be met.
func WithDeadlines(in *Instance, budgetMs []float64) (*Instance, error) {
	if len(budgetMs) != in.N() {
		return nil, fmt.Errorf("gap: %d deadline budgets for %d devices", len(budgetMs), in.N())
	}
	n, m := in.N(), in.M()
	cost := make([][]float64, n)
	for i := 0; i < n; i++ {
		row := make([]float64, m)
		copy(row, in.CostMs[i])
		if b := budgetMs[i]; b > 0 {
			for j := 0; j < m; j++ {
				if row[j] > b {
					row[j] = math.Inf(1)
				}
			}
		}
		cost[i] = row
	}
	return NewInstance(cost, in.Weight, in.Capacity)
}

// DeadlineViolations counts devices whose assigned delay exceeds their
// budget (budget <= 0 never violates).
func DeadlineViolations(in *Instance, a *Assignment, budgetMs []float64) (int, error) {
	if len(budgetMs) != in.N() {
		return 0, fmt.Errorf("gap: %d deadline budgets for %d devices", len(budgetMs), in.N())
	}
	if len(a.Of) != in.N() {
		return 0, fmt.Errorf("gap: assignment length %d for %d devices", len(a.Of), in.N())
	}
	count := 0
	for i, j := range a.Of {
		if b := budgetMs[i]; b > 0 && in.CostMs[i][j] > b {
			count++
		}
	}
	return count, nil
}
