package gap

import (
	"bytes"
	"math"
	"testing"

	"taccc/internal/topology"
	"taccc/internal/workload"
)

// tiny returns a 3-device, 2-edge instance where the per-device cheapest
// edges would overload edge 0.
func tiny(t *testing.T) *Instance {
	t.Helper()
	in, err := NewInstance(
		[][]float64{{1, 5}, {2, 6}, {3, 4}},
		[][]float64{{2, 2}, {2, 2}, {2, 2}},
		[]float64{4, 4},
	)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestNewInstanceValidation(t *testing.T) {
	ok := func(c, w [][]float64, cap []float64) error {
		_, err := NewInstance(c, w, cap)
		return err
	}
	if err := ok([][]float64{{1}}, [][]float64{{1}}, []float64{1}); err != nil {
		t.Fatalf("valid 1x1 rejected: %v", err)
	}
	cases := []struct {
		name string
		c, w [][]float64
		cap  []float64
	}{
		{"no devices", nil, nil, []float64{1}},
		{"no edges", [][]float64{{}}, [][]float64{{}}, nil},
		{"ragged cost", [][]float64{{1, 2}, {1}}, [][]float64{{1, 1}, {1, 1}}, []float64{1, 1}},
		{"ragged weight", [][]float64{{1, 2}}, [][]float64{{1}}, []float64{1, 1}},
		{"weight rows", [][]float64{{1}}, nil, []float64{1}},
		{"negative cost", [][]float64{{-1}}, [][]float64{{1}}, []float64{1}},
		{"NaN cost", [][]float64{{math.NaN()}}, [][]float64{{1}}, []float64{1}},
		{"zero weight", [][]float64{{1}}, [][]float64{{0}}, []float64{1}},
		{"inf weight", [][]float64{{1}}, [][]float64{{math.Inf(1)}}, []float64{1}},
		{"negative capacity", [][]float64{{1}}, [][]float64{{1}}, []float64{-1}},
	}
	for _, tc := range cases {
		if err := ok(tc.c, tc.w, tc.cap); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	// +Inf cost is allowed (unreachable pair).
	if err := ok([][]float64{{math.Inf(1), 1}}, [][]float64{{1, 1}}, []float64{1, 1}); err != nil {
		t.Errorf("+Inf cost rejected: %v", err)
	}
}

func TestNewAssignmentValidation(t *testing.T) {
	in := tiny(t)
	if _, err := NewAssignment(in, []int{0, 1}); err == nil {
		t.Error("short assignment accepted")
	}
	if _, err := NewAssignment(in, []int{0, 1, 2}); err == nil {
		t.Error("out-of-range edge accepted")
	}
	if _, err := NewAssignment(in, []int{0, -1, 0}); err == nil {
		t.Error("negative edge accepted")
	}
	inf, err := NewInstance(
		[][]float64{{math.Inf(1), 1}},
		[][]float64{{1, 1}},
		[]float64{1, 1},
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewAssignment(inf, []int{0}); err == nil {
		t.Error("assignment to unreachable edge accepted")
	}
}

func TestObjectives(t *testing.T) {
	in := tiny(t)
	a, err := NewAssignment(in, []int{0, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := in.TotalCost(a); got != 1+2+4 {
		t.Fatalf("TotalCost = %v, want 7", got)
	}
	if got := in.MeanCost(a); math.Abs(got-7.0/3) > 1e-12 {
		t.Fatalf("MeanCost = %v", got)
	}
	if got := in.MaxCost(a); got != 4 {
		t.Fatalf("MaxCost = %v, want 4", got)
	}
	loads := in.Loads(a)
	if loads[0] != 4 || loads[1] != 2 {
		t.Fatalf("Loads = %v, want [4 2]", loads)
	}
	if !in.Feasible(a) {
		t.Fatal("feasible assignment reported infeasible")
	}
	util := in.Utilization(a)
	if util[0] != 1 || util[1] != 0.5 {
		t.Fatalf("Utilization = %v", util)
	}
	if got := in.Imbalance(a); math.Abs(got-1/0.75) > 1e-12 {
		t.Fatalf("Imbalance = %v, want %v", got, 1/0.75)
	}
}

func TestViolations(t *testing.T) {
	in := tiny(t)
	a, err := NewAssignment(in, []int{0, 0, 0}) // load 6 on cap-4 edge
	if err != nil {
		t.Fatal(err)
	}
	v := in.Violations(a)
	if len(v) != 1 || v[0].Edge != 0 || math.Abs(v[0].Excess-2) > 1e-9 {
		t.Fatalf("Violations = %+v", v)
	}
	if in.Feasible(a) {
		t.Fatal("overloaded assignment reported feasible")
	}
}

func TestUtilizationZeroCapacity(t *testing.T) {
	in, err := NewInstance(
		[][]float64{{1, 2}},
		[][]float64{{1, 1}},
		[]float64{0, 5},
	)
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewAssignment(in, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	util := in.Utilization(a)
	if !math.IsInf(util[0], 1) {
		t.Fatalf("util on zero-cap loaded edge = %v, want +Inf", util[0])
	}
	if util[1] != 0 {
		t.Fatalf("idle edge util = %v, want 0", util[1])
	}
}

func TestImbalanceIdle(t *testing.T) {
	in := tiny(t)
	// Imbalance of an assignment exists only with an assignment; emulate
	// "idle" with zero utilization via zero weights — not allowed, so
	// instead check the perfectly-balanced case.
	a, err := NewAssignment(in, []int{0, 1, 0}) // loads [4, 2]? w all 2: [4 2]
	if err != nil {
		t.Fatal(err)
	}
	if in.Imbalance(a) < 1 {
		t.Fatal("imbalance below 1")
	}
}

func TestTightness(t *testing.T) {
	in := tiny(t)
	// min weight per device = 2 each, total 6; capacity total 8.
	if got := in.Tightness(); math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("Tightness = %v, want 0.75", got)
	}
}

func TestAssignmentClone(t *testing.T) {
	a := &Assignment{Of: []int{1, 2, 3}}
	b := a.Clone()
	b.Of[0] = 9
	if a.Of[0] != 1 {
		t.Fatal("Clone aliases storage")
	}
}

func TestFromTopology(t *testing.T) {
	cfg := topology.Config{NumIoT: 12, NumEdge: 3, NumGateways: 4, Seed: 5}
	g, err := topology.Hierarchical(cfg, topology.PlaceUniform)
	if err != nil {
		t.Fatal(err)
	}
	dm := topology.NewDelayMatrix(g, topology.LatencyCost)
	devs, err := workload.Generate(12, workload.DefaultProfile(5))
	if err != nil {
		t.Fatal(err)
	}
	caps, err := UniformCapacities(3, workload.TotalLoad(devs), 0.7)
	if err != nil {
		t.Fatal(err)
	}
	in, err := FromTopology(dm, devs, caps)
	if err != nil {
		t.Fatal(err)
	}
	if in.N() != 12 || in.M() != 3 {
		t.Fatalf("dims %dx%d", in.N(), in.M())
	}
	for i := 0; i < in.N(); i++ {
		for j := 0; j < in.M(); j++ {
			if in.CostMs[i][j] != dm.DelayMs[i][j] {
				t.Fatal("cost matrix does not match delay matrix")
			}
			if in.Weight[i][j] != devs[i].Load() {
				t.Fatal("weight does not match device load")
			}
		}
	}
}

func TestFromTopologyDimensionErrors(t *testing.T) {
	cfg := topology.Config{NumIoT: 4, NumEdge: 2, NumGateways: 2, Seed: 1}
	g, err := topology.Hierarchical(cfg, topology.PlaceUniform)
	if err != nil {
		t.Fatal(err)
	}
	dm := topology.NewDelayMatrix(g, topology.LatencyCost)
	devs, err := workload.Generate(3, workload.DefaultProfile(1)) // wrong count
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FromTopology(dm, devs, []float64{1, 1}); err == nil {
		t.Error("device-count mismatch accepted")
	}
	devs4, err := workload.Generate(4, workload.DefaultProfile(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FromTopology(dm, devs4, []float64{1}); err == nil {
		t.Error("capacity-count mismatch accepted")
	}
}

func TestUniformCapacities(t *testing.T) {
	caps, err := UniformCapacities(4, 100, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range caps {
		if c != 50 {
			t.Fatalf("caps = %v, want all 50", caps)
		}
	}
	for _, tc := range []struct {
		m    int
		load float64
		rho  float64
	}{{0, 1, 0.5}, {2, 1, 0}, {2, 1, 1.5}, {2, -1, 0.5}} {
		if _, err := UniformCapacities(tc.m, tc.load, tc.rho); err == nil {
			t.Errorf("UniformCapacities(%d, %v, %v) accepted", tc.m, tc.load, tc.rho)
		}
	}
}

func TestSyntheticValid(t *testing.T) {
	for _, kind := range []SyntheticKind{SyntheticUniform, SyntheticCorrelated} {
		in, err := Synthetic(kind, 30, 5, 0.8, 7)
		if err != nil {
			t.Fatal(err)
		}
		if in.N() != 30 || in.M() != 5 {
			t.Fatalf("dims %dx%d", in.N(), in.M())
		}
		// Capacity is sized from average weights, so min-weight
		// tightness must come out strictly below rho but positive.
		tight := in.Tightness()
		if tight <= 0 || tight >= 0.8 {
			t.Fatalf("tightness = %v, want in (0, 0.8)", tight)
		}
	}
}

func TestSyntheticDeterministic(t *testing.T) {
	a, err := Synthetic(SyntheticUniform, 10, 3, 0.5, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Synthetic(SyntheticUniform, 10, 3, 0.5, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.CostMs {
		for j := range a.CostMs[i] {
			if a.CostMs[i][j] != b.CostMs[i][j] || a.Weight[i][j] != b.Weight[i][j] {
				t.Fatal("same-seed synthetic instances differ")
			}
		}
	}
}

func TestSyntheticErrors(t *testing.T) {
	if _, err := Synthetic(SyntheticUniform, 0, 3, 0.5, 1); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := Synthetic(SyntheticUniform, 3, 0, 0.5, 1); err == nil {
		t.Error("m=0 accepted")
	}
	if _, err := Synthetic(SyntheticUniform, 3, 3, 0, 1); err == nil {
		t.Error("rho=0 accepted")
	}
	if _, err := Synthetic(SyntheticKind(99), 3, 3, 0.5, 1); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestInstanceJSONRoundTrip(t *testing.T) {
	in, err := Synthetic(SyntheticCorrelated, 8, 3, 0.7, 9)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := in.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	in2, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if in2.N() != in.N() || in2.M() != in.M() {
		t.Fatal("round trip changed dimensions")
	}
	for i := range in.CostMs {
		for j := range in.CostMs[i] {
			if in.CostMs[i][j] != in2.CostMs[i][j] {
				t.Fatal("round trip changed costs")
			}
		}
	}
}

func TestAssignmentJSONRoundTrip(t *testing.T) {
	in := tiny(t)
	a, err := NewAssignment(in, []int{0, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := a.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	a2, err := ReadAssignmentJSON(&buf, in)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Of {
		if a.Of[i] != a2.Of[i] {
			t.Fatal("assignment round trip mismatch")
		}
	}
	if _, err := ReadAssignmentJSON(bytes.NewReader([]byte(`{"of":[9,9,9]}`)), in); err == nil {
		t.Error("invalid assignment accepted on read")
	}
	if _, err := ReadJSON(bytes.NewReader([]byte("{"))); err == nil {
		t.Error("truncated instance JSON accepted")
	}
}
