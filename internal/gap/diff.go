package gap

import "fmt"

// Move describes one device's placement change between two assignments.
type Move struct {
	// Device is the moved device.
	Device int
	// From and To are the old and new edges.
	From, To int
	// DeltaCostMs is the per-device delay change (negative = improves).
	DeltaCostMs float64
}

// Diff lists the placement changes from old to new under in, in device
// order. Use it to build migration plans and to cost reconfigurations.
// Each move's delta comes from the same delta-cost kernel the Evaluator
// exposes as DeltaMove, so a migration plan's gains always agree with
// what a solver's incremental evaluation computed.
func Diff(in *Instance, old, new *Assignment) ([]Move, error) {
	if len(old.Of) != in.N() || len(new.Of) != in.N() {
		return nil, fmt.Errorf("gap: diff length mismatch: %d/%d vs %d devices", len(old.Of), len(new.Of), in.N())
	}
	var moves []Move
	for i := range old.Of {
		if old.Of[i] == new.Of[i] {
			continue
		}
		moves = append(moves, Move{
			Device:      i,
			From:        old.Of[i],
			To:          new.Of[i],
			DeltaCostMs: moveDelta(in, i, old.Of[i], new.Of[i]),
		})
	}
	return moves, nil
}

// MigrationGain sums the delay improvement of applying the diff (positive
// = the new assignment is better).
func MigrationGain(moves []Move) float64 {
	total := 0.0
	for _, m := range moves {
		total -= m.DeltaCostMs
	}
	return total
}
