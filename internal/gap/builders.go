package gap

import (
	"fmt"

	"taccc/internal/topology"
	"taccc/internal/workload"
	"taccc/internal/xrand"
)

// FromTopology binds a topology-derived delay matrix and a device
// population into a GAP instance. Device i's weight on every edge is its
// steady-state load (rate × compute); capacities are supplied per edge.
func FromTopology(dm *topology.DelayMatrix, devices []workload.Device, capacity []float64) (*Instance, error) {
	if dm.NumIoT() != len(devices) {
		return nil, fmt.Errorf("gap: delay matrix has %d IoT rows, got %d devices", dm.NumIoT(), len(devices))
	}
	if dm.NumEdge() != len(capacity) {
		return nil, fmt.Errorf("gap: delay matrix has %d edge cols, got %d capacities", dm.NumEdge(), len(capacity))
	}
	n, m := dm.NumIoT(), dm.NumEdge()
	cost := make([][]float64, n)
	weight := make([][]float64, n)
	for i := 0; i < n; i++ {
		cost[i] = make([]float64, m)
		copy(cost[i], dm.DelayMs[i])
		weight[i] = make([]float64, m)
		load := devices[i].Load()
		for j := 0; j < m; j++ {
			weight[i][j] = load
		}
	}
	capCopy := make([]float64, m)
	copy(capCopy, capacity)
	return NewInstance(cost, weight, capCopy)
}

// UniformCapacities returns m equal capacities sized so that the cluster's
// total capacity is total/rho, i.e. rho is the target system utilization
// (capacity tightness). rho must be in (0, 1].
func UniformCapacities(m int, totalLoad, rho float64) ([]float64, error) {
	if m <= 0 {
		return nil, fmt.Errorf("gap: UniformCapacities needs m > 0, got %d", m)
	}
	if rho <= 0 || rho > 1 {
		return nil, fmt.Errorf("gap: rho must be in (0,1], got %v", rho)
	}
	if totalLoad < 0 {
		return nil, fmt.Errorf("gap: negative total load %v", totalLoad)
	}
	per := totalLoad / rho / float64(m)
	out := make([]float64, m)
	for j := range out {
		out[j] = per
	}
	return out, nil
}

// SyntheticKind selects a classic GAP instance family from the OR
// literature (Martello–Toth classes), used for algorithm unit tests and
// the optimality-gap experiment.
type SyntheticKind int

// Synthetic instance families.
const (
	// SyntheticUniform draws costs and weights i.i.d. uniformly.
	SyntheticUniform SyntheticKind = iota + 1
	// SyntheticCorrelated makes cost inversely related to weight, the
	// harder classic family (cheap placements consume more capacity).
	SyntheticCorrelated
)

// Synthetic generates a random GAP instance with n devices, m edges and
// capacity tightness rho in (0,1] (higher is tighter). Deterministic in
// seed.
func Synthetic(kind SyntheticKind, n, m int, rho float64, seed int64) (*Instance, error) {
	if n <= 0 || m <= 0 {
		return nil, fmt.Errorf("gap: Synthetic needs n, m > 0, got %d, %d", n, m)
	}
	if rho <= 0 || rho > 1 {
		return nil, fmt.Errorf("gap: rho must be in (0,1], got %v", rho)
	}
	src := xrand.NewSplit(seed, "gap-synthetic")
	cost := make([][]float64, n)
	weight := make([][]float64, n)
	totalAvgW := 0.0
	for i := 0; i < n; i++ {
		cost[i] = make([]float64, m)
		weight[i] = make([]float64, m)
		rowSum := 0.0
		for j := 0; j < m; j++ {
			w := src.Uniform(5, 25)
			var c float64
			switch kind {
			case SyntheticCorrelated:
				// Classic class C/D flavor: cost decreases as
				// weight rises, plus noise.
				c = 111 - 3*w + src.Uniform(-10, 10)
				if c < 1 {
					c = 1
				}
			case SyntheticUniform:
				c = src.Uniform(10, 50)
			default:
				return nil, fmt.Errorf("gap: unknown synthetic kind %d", kind)
			}
			cost[i][j] = c
			weight[i][j] = w
			rowSum += w
		}
		totalAvgW += rowSum / float64(m)
	}
	// Martello–Toth style capacity sizing: at rho = 1 the total capacity
	// equals the total *average* weight, which is tight (solvers must
	// prefer below-average-weight placements) but almost always
	// feasible; smaller rho adds slack proportionally.
	capacity := make([]float64, m)
	per := totalAvgW / rho / float64(m)
	for j := range capacity {
		capacity[j] = per
	}
	return NewInstance(cost, weight, capacity)
}
