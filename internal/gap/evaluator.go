package gap

import "math"

// capEps absorbs floating-point accumulation error in capacity checks; it
// is the same epsilon the heuristics in internal/assign have always used,
// so Evaluator-based feasibility tests reproduce their decisions exactly.
const capEps = 1e-12

// evalOp tags one entry of the Evaluator's undo log.
type evalOp uint8

const (
	opMove evalOp = iota
	opSwap
	opUnassign
	opPlace
)

// undoRec captures everything needed to restore the Evaluator to its
// state before one applied operation. Residuals are restored from saved
// values — not recomputed — so an Apply/Undo pair is bit-exact.
type undoRec struct {
	op          evalOp
	a, b        int // devices (b unused except for swaps)
	fromA       int // a's edge before the op (-1 for Place)
	fromB       int // b's edge before a swap
	prevTotal   float64
	prevResI    int     // first touched edge
	prevResJ    int     // second touched edge (-1 when only one)
	prevResVal  float64 // residual[prevResI] before the op
	prevResVal2 float64
}

// Evaluator maintains the running objective and per-edge feasibility
// slack of one assignment over one instance, and prices single-device
// moves and pairwise swaps in O(1) instead of the O(n) full re-cost of
// Instance.TotalCost. It is the one delta-cost implementation in the
// repository: the metaheuristics in internal/assign drive their inner
// loops through it, and Diff's per-device deltas agree with it by
// construction (both read the same flat cost storage).
//
// Contract:
//
//   - The Evaluator owns its assignment vector and residual-capacity
//     buffer; callers mutate them only through Move/Swap/Place/Unassign.
//     The instance stays shared and read-only.
//   - Reset loads a placement (entries may be -1 = unplaced) and rebuilds
//     total and residuals with the same accumulation order the classic
//     solvers used (devices ascending), so a freshly Reset Evaluator is
//     bit-identical to the from-scratch state those solvers computed.
//   - Applied operations update the running total as total += delta, the
//     exact arithmetic the pre-Evaluator solvers performed; solver
//     results therefore stay bit-identical per seed.
//   - Every mutating operation pushes one undo record (unless tracking is
//     disabled via SetUndoTracking); Undo pops and restores the previous
//     state bit-exactly (saved values, never recomputed). The log depth is
//     unbounded but reuses its backing array, so steady-state Apply/Undo
//     cycles allocate nothing.
//   - Total() drifts from CostOf only by float rounding accumulated over
//     applied deltas; RecomputeTotal() re-sums in device order when a
//     solver needs the canonical full-scan value (LNS acceptance does).
type Evaluator struct {
	in   *Instance
	n, m int
	of   []int
	// residual[j] is Capacity[j] minus the load on edge j, maintained by
	// the identical += / -= sequence the solvers used on their local
	// residual slices.
	residual []float64
	total    float64
	track    bool
	log      []undoRec
}

// NewEvaluator returns an Evaluator for in with every device unplaced.
// Allocation happens only here (and on first log growth); Reset and the
// operations reuse the buffers.
func NewEvaluator(in *Instance) *Evaluator {
	e := &Evaluator{
		in:       in,
		n:        in.N(),
		m:        in.M(),
		of:       make([]int, in.N()),
		residual: make([]float64, in.M()),
		track:    true,
		log:      make([]undoRec, 0, 16),
	}
	for i := range e.of {
		e.of[i] = -1
	}
	copy(e.residual, in.Capacity)
	return e
}

// Instance returns the instance the Evaluator prices against.
func (e *Evaluator) Instance() *Instance { return e.in }

// Reset loads the placement (of[i] = edge of device i, -1 = unplaced),
// rebuilding the running total and residuals from scratch and clearing
// the undo log. of is copied, not retained.
func (e *Evaluator) Reset(of []int) {
	copy(e.of, of)
	copy(e.residual, e.in.Capacity)
	total := 0.0
	for i, j := range e.of {
		if j < 0 {
			continue
		}
		wRow := e.in.WeightRow(i)
		e.residual[j] -= wRow[j]
		total += e.in.CostRow(i)[j]
	}
	e.total = total
	e.log = e.log[:0]
}

// Total returns the running total cost of the loaded placement.
func (e *Evaluator) Total() float64 { return e.total }

// RecomputeTotal re-sums the placement cost in device order — the
// canonical CostOf value, free of incremental rounding drift — stores it
// as the running total and returns it.
func (e *Evaluator) RecomputeTotal() float64 {
	e.total = e.in.CostOf(e.of)
	return e.total
}

// Of returns device i's current edge (-1 when unplaced).
func (e *Evaluator) Of(i int) int { return e.of[i] }

// Placement returns the live assignment slice for read-only use in solver
// hot loops; see Residuals for the ownership rules.
func (e *Evaluator) Placement() []int { return e.of }

// Assignment copies the current placement into dst (allocating when dst
// is too short) and returns it.
func (e *Evaluator) Assignment(dst []int) []int {
	if cap(dst) < e.n {
		dst = make([]int, e.n)
	}
	dst = dst[:e.n]
	copy(dst, e.of)
	return dst
}

// Residual returns edge j's remaining capacity (negative = overloaded).
func (e *Evaluator) Residual(j int) float64 { return e.residual[j] }

// Residuals returns the live residual-capacity slice for read-only use in
// solver hot loops (no per-edge method-call overhead). The Evaluator keeps
// ownership: callers must not write to it, and the values change under
// every applied operation.
func (e *Evaluator) Residuals() []float64 { return e.residual }

// Load returns edge j's consumed capacity.
func (e *Evaluator) Load(j int) float64 { return e.in.Capacity[j] - e.residual[j] }

// Feasible reports whether no edge is overloaded, with the same relative
// epsilon Instance.Violations applies.
func (e *Evaluator) Feasible() bool {
	const eps = 1e-9
	for j, r := range e.residual {
		load := e.in.Capacity[j] - r
		if load > e.in.Capacity[j]*(1+eps)+eps {
			return false
		}
	}
	return true
}

// moveDelta is the one delta-cost expression in the package: the total
// cost change of moving device i from edge `from` to edge `to`. Both the
// Evaluator and Diff price moves through it, so migration plans and
// solver move evaluations can never disagree.
func moveDelta(in *Instance, i, from, to int) float64 {
	row := in.CostRow(i)
	return row[to] - row[from]
}

// DeltaMove prices moving device i to edge `to` in O(1): the change in
// total cost, negative = improvement. The device must be placed.
func (e *Evaluator) DeltaMove(i, to int) float64 {
	return moveDelta(e.in, i, e.of[i], to)
}

// DeltaSwap prices exchanging devices a's and b's edges in O(1), with the
// operand order the classic swap neighborhood used (so ties at the
// acceptance epsilon break identically).
func (e *Evaluator) DeltaSwap(a, b int) float64 {
	ja, jb := e.of[a], e.of[b]
	rowA, rowB := e.in.CostRow(a), e.in.CostRow(b)
	return rowA[jb] + rowB[ja] - rowA[ja] - rowB[jb]
}

// Fits reports whether device i can be placed on (or moved to) edge j
// within j's residual capacity: the Evaluator form of the heuristics'
// fits() check, bit-identical decisions included.
func (e *Evaluator) Fits(i, j int) bool {
	return e.in.WeightRow(i)[j] <= e.residual[j]+capEps && !math.IsInf(e.in.CostRow(i)[j], 1)
}

// SwapFits reports whether exchanging devices a's and b's edges respects
// both capacities, replicating the exact release-then-check arithmetic of
// the classic swap move.
func (e *Evaluator) SwapFits(a, b int) bool {
	ja, jb := e.of[a], e.of[b]
	wA, wB := e.in.WeightRow(a), e.in.WeightRow(b)
	if math.IsInf(e.in.CostRow(a)[jb], 1) || math.IsInf(e.in.CostRow(b)[ja], 1) {
		return false
	}
	resA := e.residual[ja] + wA[ja]
	resB := e.residual[jb] + wB[jb]
	return wB[ja] <= resA+capEps && wA[jb] <= resB+capEps
}

// SetUndoTracking enables or disables the undo log (on by default).
// Solvers that commit to every applied move — they never call Undo —
// turn it off so the hot path skips the record copy entirely. Disabling
// drops any pending history.
func (e *Evaluator) SetUndoTracking(enabled bool) {
	e.track = enabled
	e.log = e.log[:0]
}

// push appends an undo record, reusing the log's backing array. Callers
// guard on e.track so the record is not even built when tracking is off.
func (e *Evaluator) push(r undoRec) { e.log = append(e.log, r) }

// Move applies the shift of device i to edge `to`, updating residuals and
// the running total with the same arithmetic sequence the classic shift
// move used, and pushes an undo record. Returns the cost delta.
func (e *Evaluator) Move(i, to int) float64 {
	from := e.of[i]
	wRow := e.in.WeightRow(i)
	delta := e.DeltaMove(i, to)
	if e.track {
		e.push(undoRec{
			op: opMove, a: i, fromA: from, prevTotal: e.total,
			prevResI: from, prevResJ: to,
			prevResVal: e.residual[from], prevResVal2: e.residual[to],
		})
	}
	e.residual[from] += wRow[from]
	e.residual[to] -= wRow[to]
	e.of[i] = to
	e.total += delta
	return delta
}

// Swap applies the exchange of devices a's and b's edges (which must
// differ), updating residuals with the classic release-then-place
// sequence, and pushes an undo record. Returns the cost delta.
func (e *Evaluator) Swap(a, b int) float64 {
	ja, jb := e.of[a], e.of[b]
	wA, wB := e.in.WeightRow(a), e.in.WeightRow(b)
	delta := e.DeltaSwap(a, b)
	if e.track {
		e.push(undoRec{
			op: opSwap, a: a, b: b, fromA: ja, fromB: jb, prevTotal: e.total,
			prevResI: ja, prevResJ: jb,
			prevResVal: e.residual[ja], prevResVal2: e.residual[jb],
		})
	}
	resA := e.residual[ja] + wA[ja]
	resB := e.residual[jb] + wB[jb]
	e.residual[ja] = resA - wB[ja]
	e.residual[jb] = resB - wA[jb]
	e.of[a], e.of[b] = jb, ja
	e.total += delta
	return delta
}

// Unassign removes placed device i, releasing its capacity and cost.
func (e *Evaluator) Unassign(i int) {
	j := e.of[i]
	if e.track {
		e.push(undoRec{
			op: opUnassign, a: i, fromA: j, prevTotal: e.total,
			prevResI: j, prevResJ: -1, prevResVal: e.residual[j],
		})
	}
	e.residual[j] += e.in.WeightRow(i)[j]
	e.total -= e.in.CostRow(i)[j]
	e.of[i] = -1
}

// Place assigns unplaced device i to edge j.
func (e *Evaluator) Place(i, j int) {
	if e.track {
		e.push(undoRec{
			op: opPlace, a: i, fromA: -1, prevTotal: e.total,
			prevResI: j, prevResJ: -1, prevResVal: e.residual[j],
		})
	}
	e.residual[j] -= e.in.WeightRow(i)[j]
	e.total += e.in.CostRow(i)[j]
	e.of[i] = j
}

// Undo reverts the most recently applied operation bit-exactly from its
// saved state. Reports whether there was anything to undo.
func (e *Evaluator) Undo() bool {
	if len(e.log) == 0 {
		return false
	}
	r := e.log[len(e.log)-1]
	e.log = e.log[:len(e.log)-1]
	e.total = r.prevTotal
	e.residual[r.prevResI] = r.prevResVal
	if r.prevResJ >= 0 {
		e.residual[r.prevResJ] = r.prevResVal2
	}
	switch r.op {
	case opMove, opUnassign, opPlace:
		e.of[r.a] = r.fromA
	case opSwap:
		e.of[r.a], e.of[r.b] = r.fromA, r.fromB
	}
	return true
}

// UndoDepth returns how many applied operations the undo log holds.
func (e *Evaluator) UndoDepth() int { return len(e.log) }

// ClearUndo drops the undo history without touching the state. Solvers
// that commit to every applied move call it each iteration so the log —
// which reuses its backing array — never grows past one iteration's
// operations, keeping steady-state iterations allocation-free.
func (e *Evaluator) ClearUndo() { e.log = e.log[:0] }
