package gap

import (
	"math"
	"testing"

	"taccc/internal/xrand"
)

// evalFixtures returns the instances the evaluator tests sweep: the tiny
// hand-built case plus synthetic instances across both families, several
// shapes and seeds.
func evalFixtures(t *testing.T) []*Instance {
	t.Helper()
	out := []*Instance{tiny(t)}
	shapes := []struct {
		kind SyntheticKind
		n, m int
		rho  float64
	}{
		{SyntheticUniform, 12, 3, 0.7},
		{SyntheticUniform, 30, 5, 0.85},
		{SyntheticCorrelated, 20, 4, 0.8},
		{SyntheticCorrelated, 40, 6, 0.9},
	}
	for _, sh := range shapes {
		for seed := int64(1); seed <= 3; seed++ {
			in, err := Synthetic(sh.kind, sh.n, sh.m, sh.rho, seed)
			if err != nil {
				t.Fatalf("synthetic(%v,%d,%d): %v", sh.kind, sh.n, sh.m, err)
			}
			out = append(out, in)
		}
	}
	return out
}

// cheapestOf places every device on its cheapest finite edge, ignoring
// capacity — a valid placement for pricing tests even when overloaded.
func cheapestOf(in *Instance) []int {
	of := make([]int, in.N())
	for i := range of {
		best, bestC := -1, math.Inf(1)
		for j := 0; j < in.M(); j++ {
			if c := in.CostAt(i, j); c < bestC {
				best, bestC = j, c
			}
		}
		of[i] = best
	}
	return of
}

func TestEvaluatorDeltaMoveMatchesFullRecost(t *testing.T) {
	for _, in := range evalFixtures(t) {
		of := cheapestOf(in)
		ev := NewEvaluator(in)
		ev.Reset(of)
		base := in.CostOf(of)
		for i := 0; i < in.N(); i++ {
			for to := 0; to < in.M(); to++ {
				if math.IsInf(in.CostAt(i, to), 1) {
					continue
				}
				moved := append([]int(nil), of...)
				moved[i] = to
				want := in.CostOf(moved) - base
				if got := ev.DeltaMove(i, to); math.Abs(got-want) > 1e-12 {
					t.Fatalf("DeltaMove(%d,%d) = %v, full re-cost difference %v", i, to, got, want)
				}
			}
		}
	}
}

func TestEvaluatorDeltaSwapMatchesFullRecost(t *testing.T) {
	for _, in := range evalFixtures(t) {
		of := cheapestOf(in)
		ev := NewEvaluator(in)
		ev.Reset(of)
		base := in.CostOf(of)
		n := in.N()
		for a := 0; a < n; a++ {
			for b := a + 1; b < n; b++ {
				if math.IsInf(in.CostAt(a, of[b]), 1) || math.IsInf(in.CostAt(b, of[a]), 1) {
					continue
				}
				swapped := append([]int(nil), of...)
				swapped[a], swapped[b] = swapped[b], swapped[a]
				want := in.CostOf(swapped) - base
				if got := ev.DeltaSwap(a, b); math.Abs(got-want) > 1e-12 {
					t.Fatalf("DeltaSwap(%d,%d) = %v, full re-cost difference %v", a, b, got, want)
				}
			}
		}
	}
}

// TestEvaluatorDiffParity pins the one-delta-implementation contract: the
// per-device deltas Diff prices for a migration plan are exactly the
// DeltaMove values an Evaluator loaded with the old placement reports.
func TestEvaluatorDiffParity(t *testing.T) {
	for _, in := range evalFixtures(t) {
		oldOf := cheapestOf(in)
		newOf := append([]int(nil), oldOf...)
		// Perturb every third device to its most expensive finite edge.
		for i := 0; i < in.N(); i += 3 {
			worst, worstC := newOf[i], math.Inf(-1)
			for j := 0; j < in.M(); j++ {
				if c := in.CostAt(i, j); !math.IsInf(c, 1) && c > worstC {
					worst, worstC = j, c
				}
			}
			newOf[i] = worst
		}
		a, err := NewAssignment(in, oldOf)
		if err != nil {
			t.Fatal(err)
		}
		b, err := NewAssignment(in, newOf)
		if err != nil {
			t.Fatal(err)
		}
		moves, err := Diff(in, a, b)
		if err != nil {
			t.Fatal(err)
		}
		ev := NewEvaluator(in)
		ev.Reset(oldOf)
		for _, mv := range moves {
			if got := ev.DeltaMove(mv.Device, mv.To); math.Abs(got-mv.DeltaCostMs) > 1e-12 {
				t.Fatalf("device %d: Diff delta %v, Evaluator delta %v", mv.Device, mv.DeltaCostMs, got)
			}
		}
	}
}

// checkEvaluatorState compares every piece of Evaluator state against a
// from-scratch recomputation over the placement it reports.
func checkEvaluatorState(t *testing.T, in *Instance, ev *Evaluator) {
	t.Helper()
	of := ev.Assignment(nil)
	if want, got := in.CostOf(of), ev.Total(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("Total() = %v, CostOf = %v (drift %g)", got, want, got-want)
	}
	loads := make([]float64, in.M())
	for i, j := range of {
		if j >= 0 {
			loads[j] += in.WeightAt(i, j)
		}
	}
	feasible := true
	for j := 0; j < in.M(); j++ {
		if want, got := loads[j], ev.Load(j); math.Abs(got-want) > 1e-9 {
			t.Fatalf("Load(%d) = %v, recomputed %v", j, got, want)
		}
		if loads[j] > in.Capacity[j]*(1+1e-9)+1e-9 {
			feasible = false
		}
	}
	if got := ev.Feasible(); got != feasible {
		t.Fatalf("Feasible() = %v, recomputed %v (loads %v, caps %v)", got, feasible, loads, in.Capacity)
	}
}

// TestEvaluatorRandomOpsDifferential drives random operation sequences —
// moves, swaps, unassign/place pairs and undos — and after every step
// checks total, loads and feasibility against a full recomputation. This
// is the differential test backing the incremental-evaluation contract;
// `go test -race` runs it too.
func TestEvaluatorRandomOpsDifferential(t *testing.T) {
	for _, in := range evalFixtures(t) {
		for seed := int64(10); seed < 13; seed++ {
			src := xrand.New(seed)
			ev := NewEvaluator(in)
			ev.Reset(cheapestOf(in))
			n, m := in.N(), in.M()
			for step := 0; step < 200; step++ {
				switch op := src.Intn(4); op {
				case 0: // move
					i, to := src.Intn(n), src.Intn(m)
					if ev.Of(i) >= 0 && !math.IsInf(in.CostAt(i, to), 1) {
						ev.Move(i, to)
					}
				case 1: // swap
					// Swap requires distinct edges (same-edge pairs are
					// no-ops every solver skips before pricing).
					a, b := src.Intn(n), src.Intn(n)
					if a != b && ev.Of(a) >= 0 && ev.Of(b) >= 0 && ev.Of(a) != ev.Of(b) &&
						!math.IsInf(in.CostAt(a, ev.Of(b)), 1) && !math.IsInf(in.CostAt(b, ev.Of(a)), 1) {
						ev.Swap(a, b)
					}
				case 2: // unassign / place
					i := src.Intn(n)
					if ev.Of(i) >= 0 {
						ev.Unassign(i)
					} else if to := src.Intn(m); !math.IsInf(in.CostAt(i, to), 1) {
						ev.Place(i, to)
					}
				case 3:
					ev.Undo()
				}
				checkEvaluatorState(t, in, ev)
			}
		}
	}
}

// TestEvaluatorUndoBitExact applies a burst of operations and unwinds the
// whole log, requiring the restored state to equal the starting state
// bit-for-bit — not merely within epsilon.
func TestEvaluatorUndoBitExact(t *testing.T) {
	for _, in := range evalFixtures(t) {
		src := xrand.New(99)
		ev := NewEvaluator(in)
		ev.Reset(cheapestOf(in))
		of0 := ev.Assignment(nil)
		res0 := append([]float64(nil), ev.Residuals()...)
		total0 := ev.Total()

		n, m := in.N(), in.M()
		applied := 0
		for step := 0; step < 100; step++ {
			switch src.Intn(3) {
			case 0:
				i, to := src.Intn(n), src.Intn(m)
				if ev.Of(i) >= 0 && !math.IsInf(in.CostAt(i, to), 1) {
					ev.Move(i, to)
					applied++
				}
			case 1:
				a, b := src.Intn(n), src.Intn(n)
				if a != b && ev.Of(a) >= 0 && ev.Of(b) >= 0 && ev.Of(a) != ev.Of(b) &&
					!math.IsInf(in.CostAt(a, ev.Of(b)), 1) && !math.IsInf(in.CostAt(b, ev.Of(a)), 1) {
					ev.Swap(a, b)
					applied++
				}
			case 2:
				i := src.Intn(n)
				if ev.Of(i) >= 0 {
					ev.Unassign(i)
					applied++
				}
			}
		}
		if got := ev.UndoDepth(); got != applied {
			t.Fatalf("UndoDepth = %d after %d applied ops", got, applied)
		}
		for ev.Undo() {
		}
		if ev.Total() != total0 {
			t.Fatalf("total not restored bit-exactly: %v != %v", ev.Total(), total0)
		}
		for i, j := range ev.Placement() {
			if j != of0[i] {
				t.Fatalf("of[%d] = %d, want %d", i, j, of0[i])
			}
		}
		for j, r := range ev.Residuals() {
			if r != res0[j] {
				t.Fatalf("residual[%d] = %v, want %v (bit-exact)", j, r, res0[j])
			}
		}
	}
}

func TestEvaluatorSetUndoTracking(t *testing.T) {
	in := tiny(t)
	ev := NewEvaluator(in)
	ev.SetUndoTracking(false)
	ev.Reset([]int{0, 1, 0})
	ev.Move(0, 1)
	ev.Swap(0, 2)
	if d := ev.UndoDepth(); d != 0 {
		t.Fatalf("UndoDepth = %d with tracking off", d)
	}
	if ev.Undo() {
		t.Fatal("Undo succeeded with an empty log")
	}
	ev.SetUndoTracking(true)
	ev.Move(1, 0)
	if d := ev.UndoDepth(); d != 1 {
		t.Fatalf("UndoDepth = %d after re-enabling", d)
	}
	if !ev.Undo() || ev.Of(1) != 1 {
		t.Fatal("Undo after re-enabling did not restore")
	}
	ev.Move(1, 0)
	ev.ClearUndo()
	if d := ev.UndoDepth(); d != 0 {
		t.Fatalf("UndoDepth = %d after ClearUndo", d)
	}
}

// TestEvaluatorSteadyStateAllocs pins the allocation-free contract of the
// hot-path operations: once constructed, Reset and Move/Swap/Undo cycles
// must not allocate.
func TestEvaluatorSteadyStateAllocs(t *testing.T) {
	in := tiny(t)
	ev := NewEvaluator(in)
	of := []int{0, 1, 0}
	ev.Reset(of)
	ev.Move(0, 1) // grow the log once
	ev.Undo()
	allocs := testing.AllocsPerRun(100, func() {
		ev.Reset(of)
		ev.Move(0, 1)
		ev.Swap(1, 2)
		ev.Undo()
		ev.Undo()
	})
	if allocs != 0 {
		t.Fatalf("steady-state Reset/Move/Swap/Undo allocates %.1f/op", allocs)
	}
}

// TestDegenerateCostStats is the table test for the cost accessors on
// degenerate inputs: a deviceless instance and an empty assignment must
// report zeros (never NaN from the 0/0 mean).
func TestDegenerateCostStats(t *testing.T) {
	empty := &Instance{}
	tinyIn := tiny(t)
	full, err := NewAssignment(tinyIn, []int{0, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name             string
		in               *Instance
		a                *Assignment
		total, max, mean float64
	}{
		{"empty instance, empty assignment", empty, &Assignment{}, 0, 0, 0},
		{"tiny instance, empty placement", tinyIn, &Assignment{}, 0, 0, 0},
		{"tiny instance, full placement", tinyIn, full, 1 + 6 + 3, 6, 10.0 / 3},
	}
	for _, tc := range cases {
		if got := tc.in.TotalCost(tc.a); got != tc.total {
			t.Errorf("%s: TotalCost = %v, want %v", tc.name, got, tc.total)
		}
		if got := tc.in.MaxCost(tc.a); got != tc.max {
			t.Errorf("%s: MaxCost = %v, want %v", tc.name, got, tc.max)
		}
		got := tc.in.MeanCost(tc.a)
		if math.IsNaN(got) {
			t.Errorf("%s: MeanCost is NaN", tc.name)
		}
		if math.Abs(got-tc.mean) > 1e-12 {
			t.Errorf("%s: MeanCost = %v, want %v", tc.name, got, tc.mean)
		}
	}
}
