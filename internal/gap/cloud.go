package gap

import (
	"fmt"
	"math"
)

// WithCloud appends a cloud tier as an extra column: effectively unlimited
// capacity at a high, distance-independent delay. With a cloud fallback no
// instance is infeasible — overflow devices pay the WAN round trip instead
// — and "how much traffic spills to the cloud" becomes the interesting
// metric (see CloudOffload). cloudDelayMs must exceed zero; the cloud
// column index is the returned instance's M()-1.
func WithCloud(in *Instance, cloudDelayMs float64) (*Instance, error) {
	if cloudDelayMs <= 0 || math.IsNaN(cloudDelayMs) || math.IsInf(cloudDelayMs, 0) {
		return nil, fmt.Errorf("gap: invalid cloud delay %v", cloudDelayMs)
	}
	n, m := in.N(), in.M()
	cost := make([][]float64, n)
	weight := make([][]float64, n)
	totalW := 0.0
	for i := 0; i < n; i++ {
		cost[i] = make([]float64, m+1)
		copy(cost[i], in.CostMs[i])
		cost[i][m] = cloudDelayMs
		weight[i] = make([]float64, m+1)
		copy(weight[i], in.Weight[i])
		// The cloud charges the device's cheapest edge-side weight (a
		// neutral choice; cloud capacity is sized to absorb everything
		// anyway).
		minW := math.Inf(1)
		for j := 0; j < m; j++ {
			if in.Weight[i][j] < minW {
				minW = in.Weight[i][j]
			}
		}
		weight[i][m] = minW
		totalW += minW
	}
	capacity := make([]float64, m+1)
	copy(capacity, in.Capacity)
	capacity[m] = totalW * 2 // headroom so the cloud never binds
	return NewInstance(cost, weight, capacity)
}

// CloudOffload reports how an assignment over a WithCloud instance uses
// the cloud tier: the count of cloud-assigned devices and their fraction.
func CloudOffload(in *Instance, a *Assignment) (count int, fraction float64, err error) {
	if len(a.Of) != in.N() {
		return 0, 0, fmt.Errorf("gap: assignment length %d for %d devices", len(a.Of), in.N())
	}
	cloud := in.M() - 1
	for _, j := range a.Of {
		if j == cloud {
			count++
		}
	}
	return count, float64(count) / float64(in.N()), nil
}
