package gap

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestBruteForceTiny(t *testing.T) {
	in := tiny(t)
	a, err := BruteForce(in)
	if err != nil {
		t.Fatal(err)
	}
	// Cheapest row choices (all edge 0: 1+2+3=6) overload cap 4, so the
	// optimum moves exactly one device. Moving device 2 (cost 3->4) is
	// cheapest: total 1+2+4 = 7.
	if got := in.TotalCost(a); got != 7 {
		t.Fatalf("optimal cost = %v, want 7", got)
	}
	if !in.Feasible(a) {
		t.Fatal("brute-force result infeasible")
	}
}

func TestBruteForceInfeasible(t *testing.T) {
	in, err := NewInstance(
		[][]float64{{1, 1}, {1, 1}},
		[][]float64{{5, 5}, {5, 5}},
		[]float64{4, 4},
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BruteForce(in); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("want ErrInfeasible, got %v", err)
	}
}

func TestBruteForceRefusesHuge(t *testing.T) {
	in, err := Synthetic(SyntheticUniform, 60, 20, 0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BruteForce(in); err == nil {
		t.Fatal("huge instance accepted")
	}
}

func TestBranchAndBoundMatchesBruteForce(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		for _, kind := range []SyntheticKind{SyntheticUniform, SyntheticCorrelated} {
			in, err := Synthetic(kind, 8, 3, 0.75, seed)
			if err != nil {
				t.Fatal(err)
			}
			bf, bfErr := BruteForce(in)
			bb, bbErr := BranchAndBound(in, BnBOptions{})
			if (bfErr == nil) != (bbErr == nil) {
				t.Fatalf("seed %d: feasibility disagreement: bf=%v bb=%v", seed, bfErr, bbErr)
			}
			if bfErr != nil {
				continue
			}
			if !bb.Proven {
				t.Fatalf("seed %d: B&B not proven on small instance", seed)
			}
			if math.Abs(in.TotalCost(bf)-bb.Cost) > 1e-9 {
				t.Fatalf("seed %d: bf cost %v != bb cost %v", seed, in.TotalCost(bf), bb.Cost)
			}
			if !in.Feasible(bb.Assignment) {
				t.Fatalf("seed %d: B&B assignment infeasible", seed)
			}
		}
	}
}

func TestBranchAndBoundInfeasible(t *testing.T) {
	in, err := NewInstance(
		[][]float64{{1, 1}, {1, 1}},
		[][]float64{{5, 5}, {5, 5}},
		[]float64{4, 4},
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := BranchAndBound(in, BnBOptions{})
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("want ErrInfeasible, got %v", err)
	}
	if !res.Proven {
		t.Fatal("infeasibility should be proven")
	}
}

func TestBranchAndBoundNodeBudget(t *testing.T) {
	in, err := Synthetic(SyntheticCorrelated, 40, 8, 0.95, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := BranchAndBound(in, BnBOptions{MaxNodes: 50})
	if err == nil && res.Proven {
		// With only 50 nodes on a 40x8 instance, a proof is
		// implausible unless pruning is supernaturally good; accept a
		// found assignment but require honesty about Proven.
		t.Logf("surprisingly proven in %d nodes", res.Nodes)
	}
	if res.Nodes > 50 {
		t.Fatalf("expanded %d nodes, budget 50", res.Nodes)
	}
}

func TestBranchAndBoundInitialUpperPrunes(t *testing.T) {
	in, err := Synthetic(SyntheticUniform, 10, 3, 0.8, 4)
	if err != nil {
		t.Fatal(err)
	}
	free, err := BranchAndBound(in, BnBOptions{})
	if err != nil {
		t.Fatal(err)
	}
	primed, err := BranchAndBound(in, BnBOptions{InitialUpper: free.Cost + 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	if primed.Nodes > free.Nodes {
		t.Fatalf("priming increased nodes: %d > %d", primed.Nodes, free.Nodes)
	}
	if math.Abs(primed.Cost-free.Cost) > 1e-9 {
		t.Fatalf("priming changed optimum: %v vs %v", primed.Cost, free.Cost)
	}
}

func TestRowMinBound(t *testing.T) {
	in := tiny(t)
	if got := RowMinBound(in); got != 6 {
		t.Fatalf("RowMinBound = %v, want 6", got)
	}
}

func TestLagrangianBoundValidAndAtLeastRowMin(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		in, err := Synthetic(SyntheticCorrelated, 10, 3, 0.7, seed)
		if err != nil {
			t.Fatal(err)
		}
		res, err := BranchAndBound(in, BnBOptions{})
		if errors.Is(err, ErrInfeasible) {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		lb, _ := LagrangianBound(in, 100)
		if lb > res.Cost+1e-6 {
			t.Fatalf("seed %d: Lagrangian bound %v exceeds optimum %v", seed, lb, res.Cost)
		}
		rb := RowMinBound(in)
		if lb < rb-1e-6 {
			t.Fatalf("seed %d: Lagrangian bound %v below row-min %v", seed, lb, rb)
		}
		if LowerBound(in) > res.Cost+1e-6 {
			t.Fatalf("seed %d: LowerBound exceeds optimum", seed)
		}
	}
}

func TestLagrangianBoundTightensOnCapacityPressure(t *testing.T) {
	// On a tight instance the Lagrangian bound should strictly beat the
	// capacity-oblivious row-min bound for at least some seeds.
	improved := false
	for seed := int64(0); seed < 10; seed++ {
		in, err := Synthetic(SyntheticCorrelated, 20, 3, 0.95, seed)
		if err != nil {
			t.Fatal(err)
		}
		lb, _ := LagrangianBound(in, 200)
		if lb > RowMinBound(in)+1e-9 {
			improved = true
			break
		}
	}
	if !improved {
		t.Fatal("Lagrangian bound never improved on row-min across 10 tight seeds")
	}
}

// Property: B&B's optimum is sandwiched between every lower bound and the
// cost of any feasible heuristic assignment (here: brute force ==).
func TestBoundsSandwichQuick(t *testing.T) {
	f := func(seed int64) bool {
		in, err := Synthetic(SyntheticUniform, 7, 3, 0.8, seed)
		if err != nil {
			return false
		}
		res, err := BranchAndBound(in, BnBOptions{})
		if errors.Is(err, ErrInfeasible) {
			return true
		}
		if err != nil {
			return false
		}
		lb := LowerBound(in)
		return lb <= res.Cost+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
