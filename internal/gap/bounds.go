package gap

import "math"

// RowMinBound returns the capacity-relaxed lower bound: every device takes
// its cheapest edge. Always a valid lower bound on the optimal total cost.
func RowMinBound(in *Instance) float64 {
	total := 0.0
	for i := 0; i < in.N(); i++ {
		min := math.Inf(1)
		for j := 0; j < in.M(); j++ {
			if in.CostMs[i][j] < min {
				min = in.CostMs[i][j]
			}
		}
		total += min
	}
	return total
}

// LagrangianBound computes a lower bound by Lagrangian relaxation of the
// capacity constraints, improved by projected subgradient ascent on the
// multipliers for iters rounds. It returns the best bound found (always >=
// RowMinBound up to floating-point noise, since multipliers start at 0) and
// the multipliers achieving it.
//
// L(λ) = Σ_i min_j (c_ij + λ_j·w_ij) − Σ_j λ_j·C_j is a valid lower bound
// for every λ >= 0.
func LagrangianBound(in *Instance, iters int) (float64, []float64) {
	n, m := in.N(), in.M()
	lambda := make([]float64, m)
	best := make([]float64, m)
	bestVal := math.Inf(-1)

	demand := make([]float64, m) // Σ w_ij over argmin rows, per edge
	for it := 0; it < iters; it++ {
		for j := range demand {
			demand[j] = 0
		}
		val := 0.0
		for i := 0; i < n; i++ {
			minV, minJ := math.Inf(1), -1
			for j := 0; j < m; j++ {
				v := in.CostMs[i][j] + lambda[j]*in.Weight[i][j]
				if v < minV {
					minV, minJ = v, j
				}
			}
			if minJ >= 0 && !math.IsInf(minV, 1) {
				val += minV
				demand[minJ] += in.Weight[i][minJ]
			} else {
				// Row has no finite option: instance is
				// infeasible; the bound is unbounded.
				return math.Inf(1), lambda
			}
		}
		for j := 0; j < m; j++ {
			val -= lambda[j] * in.Capacity[j]
		}
		if val > bestVal {
			bestVal = val
			copy(best, lambda)
		}
		// Subgradient g_j = demand_j − C_j; diminishing step.
		step := 1.0 / float64(it+1)
		norm := 0.0
		for j := 0; j < m; j++ {
			g := demand[j] - in.Capacity[j]
			norm += g * g
		}
		if norm == 0 {
			break // multipliers are optimal for this relaxation
		}
		scale := step / math.Sqrt(norm)
		for j := 0; j < m; j++ {
			lambda[j] += scale * (demand[j] - in.Capacity[j])
			if lambda[j] < 0 {
				lambda[j] = 0
			}
		}
	}
	return bestVal, best
}

// LowerBound returns the better of the row-min and Lagrangian bounds.
func LowerBound(in *Instance) float64 {
	rb := RowMinBound(in)
	lb, _ := LagrangianBound(in, 50)
	if lb > rb {
		return lb
	}
	return rb
}
