package gap

import (
	"fmt"
	"math"
	"sort"
)

// BruteForce enumerates all m^n assignments and returns the optimum. It
// refuses instances where m^n exceeds ~50M nodes; use BranchAndBound
// beyond that.
func BruteForce(in *Instance) (*Assignment, error) {
	n, m := in.N(), in.M()
	if float64(n)*math.Log(float64(m)) > math.Log(5e7) {
		return nil, fmt.Errorf("gap: BruteForce instance too large (n=%d, m=%d)", n, m)
	}
	of := make([]int, n)
	bestOf := make([]int, n)
	bestCost := math.Inf(1)
	residual := make([]float64, m)
	copy(residual, in.Capacity)

	var rec func(i int, cost float64)
	rec = func(i int, cost float64) {
		if cost >= bestCost {
			return
		}
		if i == n {
			bestCost = cost
			copy(bestOf, of)
			return
		}
		for j := 0; j < m; j++ {
			w := in.Weight[i][j]
			if w > residual[j]+1e-12 || math.IsInf(in.CostMs[i][j], 1) {
				continue
			}
			of[i] = j
			residual[j] -= w
			rec(i+1, cost+in.CostMs[i][j])
			residual[j] += w
		}
	}
	rec(0, 0)
	if math.IsInf(bestCost, 1) {
		return nil, ErrInfeasible
	}
	return NewAssignment(in, bestOf)
}

// BnBResult reports a branch-and-bound outcome.
type BnBResult struct {
	// Assignment is the best feasible assignment found (nil if none).
	Assignment *Assignment
	// Cost is its total cost.
	Cost float64
	// Proven is true when the search space was exhausted, so Assignment
	// is optimal (or the instance proven infeasible when Assignment is
	// nil).
	Proven bool
	// Nodes is the number of search nodes expanded.
	Nodes int64
}

// BnBOptions tunes BranchAndBound.
type BnBOptions struct {
	// MaxNodes caps the number of expanded nodes; 0 means 10M.
	MaxNodes int64
	// InitialUpper primes the incumbent with a known feasible cost
	// (e.g. from a heuristic); 0 means +Inf.
	InitialUpper float64
}

// BranchAndBound solves the instance exactly by depth-first search with
// residual-capacity-aware lower bounds. Devices are branched in order of
// decreasing best-placement regret, edges in increasing cost order.
func BranchAndBound(in *Instance, opts BnBOptions) (*BnBResult, error) {
	n, m := in.N(), in.M()
	maxNodes := opts.MaxNodes
	if maxNodes <= 0 {
		maxNodes = 10_000_000
	}
	upper := math.Inf(1)
	if opts.InitialUpper > 0 {
		upper = opts.InitialUpper
	}

	// Branch order: devices with high regret (gap between best and
	// second-best edge) first — wrong early choices are pruned sooner.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	regret := make([]float64, n)
	for i := 0; i < n; i++ {
		best, second := math.Inf(1), math.Inf(1)
		for j := 0; j < m; j++ {
			c := in.CostMs[i][j]
			switch {
			case c < best:
				second, best = best, c
			case c < second:
				second = c
			}
		}
		if math.IsInf(second, 1) {
			second = best
		}
		regret[i] = second - best
	}
	sort.SliceStable(order, func(a, b int) bool { return regret[order[a]] > regret[order[b]] })

	// Per-device edge order by increasing cost.
	edgeOrder := make([][]int, n)
	for i := 0; i < n; i++ {
		eo := make([]int, m)
		for j := range eo {
			eo[j] = j
		}
		sort.SliceStable(eo, func(a, b int) bool { return in.CostMs[i][eo[a]] < in.CostMs[i][eo[b]] })
		edgeOrder[i] = eo
	}

	of := make([]int, n)
	for i := range of {
		of[i] = -1
	}
	bestOf := make([]int, n)
	found := false
	residual := make([]float64, m)
	copy(residual, in.Capacity)
	var nodes int64
	exhausted := true

	// remainingBound returns Σ over unplaced devices of the cheapest edge
	// still having residual capacity for that device, or +Inf if some
	// device has none (prune: infeasible completion).
	remainingBound := func(pos int) float64 {
		total := 0.0
		for p := pos; p < n; p++ {
			i := order[p]
			min := math.Inf(1)
			for j := 0; j < m; j++ {
				if in.Weight[i][j] <= residual[j]+1e-12 && in.CostMs[i][j] < min {
					min = in.CostMs[i][j]
				}
			}
			if math.IsInf(min, 1) {
				return math.Inf(1)
			}
			total += min
		}
		return total
	}

	var dfs func(pos int, cost float64)
	dfs = func(pos int, cost float64) {
		if nodes >= maxNodes {
			exhausted = false
			return
		}
		nodes++
		if pos == n {
			if cost < upper {
				upper = cost
				copy(bestOf, of)
				found = true
			}
			return
		}
		if cost+remainingBound(pos) >= upper {
			return
		}
		i := order[pos]
		for _, j := range edgeOrder[i] {
			c := in.CostMs[i][j]
			if math.IsInf(c, 1) {
				break // remaining edges in this order are worse
			}
			w := in.Weight[i][j]
			if w > residual[j]+1e-12 {
				continue
			}
			if cost+c >= upper {
				break // edges are cost-sorted: nothing cheaper follows
			}
			of[i] = j
			residual[j] -= w
			dfs(pos+1, cost+c)
			residual[j] += w
			of[i] = -1
			if nodes >= maxNodes {
				exhausted = false
				return
			}
		}
	}
	dfs(0, 0)

	res := &BnBResult{Cost: upper, Proven: exhausted, Nodes: nodes}
	if found {
		a, err := NewAssignment(in, bestOf)
		if err != nil {
			return nil, fmt.Errorf("gap: internal error building B&B assignment: %w", err)
		}
		res.Assignment = a
		return res, nil
	}
	if exhausted {
		return res, ErrInfeasible
	}
	return res, fmt.Errorf("gap: branch-and-bound node budget %d exhausted without a feasible assignment", maxNodes)
}
