// Package gap models the Generalized Assignment Problem instance that the
// paper reduces cluster configuration to: assign each IoT device i to
// exactly one edge device j, minimizing total communication delay
// Σ cost[i][a(i)] subject to per-edge capacity Σ_{a(i)=j} weight[i][j] <=
// capacity[j]. The package holds the instance model, objectives,
// feasibility checks, lower bounds and exact solvers; heuristics live in
// internal/assign.
package gap

import (
	"errors"
	"fmt"
	"math"
)

// ErrInfeasible is returned when no capacity-respecting assignment can be
// found (by exact solvers: proven; by heuristics: not found).
var ErrInfeasible = errors.New("gap: no feasible assignment found")

// Instance is an immutable GAP instance. Construct with NewInstance (which
// validates) and treat as read-only afterwards; solvers share instances
// across goroutines.
type Instance struct {
	// CostMs[i][j] is the communication delay of serving device i from
	// edge j, in milliseconds. Entries may be +Inf for unreachable pairs.
	CostMs [][]float64
	// Weight[i][j] is the capacity consumed on edge j by device i.
	Weight [][]float64
	// Capacity[j] is edge j's capacity.
	Capacity []float64

	// flatCost and flatWeight are row-major copies of CostMs and Weight
	// (entry (i,j) at index i*M()+j), built once by NewInstance. The
	// solver hot paths index these through CostRow/WeightRow: one bounds
	// check and no per-row slice-header load, where the nested form pays
	// both per access. Instances constructed as struct literals (tests)
	// leave them nil; the accessors fall back to the nested matrices.
	flatCost, flatWeight []float64
}

// NewInstance validates and wraps the given matrices. Dimensions must
// agree, weights must be positive and finite, capacities non-negative, and
// costs non-negative (+Inf allowed to mark unreachable pairs).
func NewInstance(costMs, weight [][]float64, capacity []float64) (*Instance, error) {
	n := len(costMs)
	if n == 0 {
		return nil, errors.New("gap: instance has no devices")
	}
	m := len(capacity)
	if m == 0 {
		return nil, errors.New("gap: instance has no edge devices")
	}
	if len(weight) != n {
		return nil, fmt.Errorf("gap: weight rows %d != cost rows %d", len(weight), n)
	}
	for i := 0; i < n; i++ {
		if len(costMs[i]) != m {
			return nil, fmt.Errorf("gap: cost row %d has %d cols, want %d", i, len(costMs[i]), m)
		}
		if len(weight[i]) != m {
			return nil, fmt.Errorf("gap: weight row %d has %d cols, want %d", i, len(weight[i]), m)
		}
		for j := 0; j < m; j++ {
			c := costMs[i][j]
			if math.IsNaN(c) || c < 0 {
				return nil, fmt.Errorf("gap: invalid cost %v at (%d,%d)", c, i, j)
			}
			w := weight[i][j]
			if math.IsNaN(w) || math.IsInf(w, 0) || w <= 0 {
				return nil, fmt.Errorf("gap: invalid weight %v at (%d,%d)", w, i, j)
			}
		}
	}
	for j, c := range capacity {
		if math.IsNaN(c) || c < 0 {
			return nil, fmt.Errorf("gap: invalid capacity %v at edge %d", c, j)
		}
	}
	in := &Instance{CostMs: costMs, Weight: weight, Capacity: capacity}
	in.flatCost, in.flatWeight = flatten(costMs, m), flatten(weight, m)
	return in, nil
}

// flatten packs an n×m nested matrix into one row-major slice.
func flatten(rows [][]float64, m int) []float64 {
	flat := make([]float64, len(rows)*m)
	for i, row := range rows {
		copy(flat[i*m:(i+1)*m], row)
	}
	return flat
}

// CostRow returns device i's delay row as a contiguous []float64 of
// length M(). The values are bit-identical to CostMs[i]; only the storage
// differs (row-major flat array when the instance came from NewInstance).
func (in *Instance) CostRow(i int) []float64 {
	if in.flatCost != nil {
		m := len(in.Capacity)
		return in.flatCost[i*m : (i+1)*m : (i+1)*m]
	}
	return in.CostMs[i]
}

// WeightRow returns device i's weight row; see CostRow.
func (in *Instance) WeightRow(i int) []float64 {
	if in.flatWeight != nil {
		m := len(in.Capacity)
		return in.flatWeight[i*m : (i+1)*m : (i+1)*m]
	}
	return in.Weight[i]
}

// CostAt returns CostMs[i][j] through the flat storage when available.
func (in *Instance) CostAt(i, j int) float64 {
	if in.flatCost != nil {
		return in.flatCost[i*len(in.Capacity)+j]
	}
	return in.CostMs[i][j]
}

// WeightAt returns Weight[i][j] through the flat storage when available.
func (in *Instance) WeightAt(i, j int) float64 {
	if in.flatWeight != nil {
		return in.flatWeight[i*len(in.Capacity)+j]
	}
	return in.Weight[i][j]
}

// N returns the number of devices.
func (in *Instance) N() int { return len(in.CostMs) }

// M returns the number of edge devices.
func (in *Instance) M() int { return len(in.Capacity) }

// Assignment maps each device to an edge: Of[i] = j. Produce via
// NewAssignment so lengths are checked.
type Assignment struct {
	// Of[i] is the edge device serving device i.
	Of []int
}

// NewAssignment validates of against the instance: correct length and
// in-range, reachable (finite-cost) targets.
func NewAssignment(in *Instance, of []int) (*Assignment, error) {
	if len(of) != in.N() {
		return nil, fmt.Errorf("gap: assignment length %d, want %d", len(of), in.N())
	}
	for i, j := range of {
		if j < 0 || j >= in.M() {
			return nil, fmt.Errorf("gap: device %d assigned to out-of-range edge %d", i, j)
		}
		if math.IsInf(in.CostMs[i][j], 1) {
			return nil, fmt.Errorf("gap: device %d assigned to unreachable edge %d", i, j)
		}
	}
	return &Assignment{Of: of}, nil
}

// Clone returns a deep copy.
func (a *Assignment) Clone() *Assignment {
	of := make([]int, len(a.Of))
	copy(of, a.Of)
	return &Assignment{Of: of}
}

// TotalCost returns Σ cost[i][a(i)] for the assignment under in. An empty
// assignment sums to 0.
func (in *Instance) TotalCost(a *Assignment) float64 {
	return in.CostOf(a.Of)
}

// CostOf sums the delay of a raw placement vector in device order,
// skipping unplaced devices (of[i] < 0). It is TotalCost without the
// Assignment wrapper — solver inner loops use it so re-costing a work
// buffer allocates nothing — and the accumulation order (i ascending) is
// the contract every incremental evaluation must reproduce.
func (in *Instance) CostOf(of []int) float64 {
	total := 0.0
	if in.flatCost != nil {
		m := len(in.Capacity)
		for i, j := range of {
			if j >= 0 {
				total += in.flatCost[i*m+j]
			}
		}
		return total
	}
	for i, j := range of {
		if j >= 0 {
			total += in.CostMs[i][j]
		}
	}
	return total
}

// MeanCost returns TotalCost / N, or 0 for a degenerate instance with no
// devices (never NaN).
func (in *Instance) MeanCost(a *Assignment) float64 {
	if in.N() == 0 {
		return 0
	}
	return in.TotalCost(a) / float64(in.N())
}

// MaxCost returns the largest per-device cost in the assignment.
func (in *Instance) MaxCost(a *Assignment) float64 {
	max := 0.0
	for i, j := range a.Of {
		if in.CostMs[i][j] > max {
			max = in.CostMs[i][j]
		}
	}
	return max
}

// Loads returns the per-edge consumed capacity under the assignment.
func (in *Instance) Loads(a *Assignment) []float64 {
	loads := make([]float64, in.M())
	for i, j := range a.Of {
		loads[j] += in.Weight[i][j]
	}
	return loads
}

// Feasible reports whether the assignment respects every capacity.
func (in *Instance) Feasible(a *Assignment) bool {
	return len(in.Violations(a)) == 0
}

// Violations returns the edges whose capacity is exceeded, with the excess.
type Violation struct {
	Edge   int
	Load   float64
	Excess float64
}

// Violations lists all overloaded edges under the assignment. A small
// epsilon absorbs floating-point accumulation error.
func (in *Instance) Violations(a *Assignment) []Violation {
	const eps = 1e-9
	var out []Violation
	for j, load := range in.Loads(a) {
		if load > in.Capacity[j]*(1+eps)+eps {
			out = append(out, Violation{Edge: j, Load: load, Excess: load - in.Capacity[j]})
		}
	}
	return out
}

// Utilization returns per-edge load/capacity ratios; edges with zero
// capacity report +Inf when loaded and 0 when empty.
func (in *Instance) Utilization(a *Assignment) []float64 {
	loads := in.Loads(a)
	out := make([]float64, in.M())
	for j, load := range loads {
		switch {
		case in.Capacity[j] > 0:
			out[j] = load / in.Capacity[j]
		case load > 0:
			out[j] = math.Inf(1)
		}
	}
	return out
}

// Imbalance returns the ratio of the maximum edge utilization to the mean
// utilization; 1.0 is perfectly balanced. Returns 0 for an all-idle
// cluster.
func (in *Instance) Imbalance(a *Assignment) float64 {
	util := in.Utilization(a)
	sum, max := 0.0, 0.0
	for _, u := range util {
		sum += u
		if u > max {
			max = u
		}
	}
	if sum == 0 {
		return 0
	}
	return max / (sum / float64(len(util)))
}

// Tightness returns the ratio of total minimum weight to total capacity —
// a rough difficulty indicator: near 0 is easy, near 1 nearly packed.
func (in *Instance) Tightness() float64 {
	totalW := 0.0
	for i := 0; i < in.N(); i++ {
		minW := math.Inf(1)
		for j := 0; j < in.M(); j++ {
			if in.Weight[i][j] < minW {
				minW = in.Weight[i][j]
			}
		}
		totalW += minW
	}
	totalC := 0.0
	for _, c := range in.Capacity {
		totalC += c
	}
	if totalC == 0 {
		return math.Inf(1)
	}
	return totalW / totalC
}
