package gap

import (
	"errors"
	"math"
	"testing"
)

func TestLPRelaxationTiny(t *testing.T) {
	in := tiny(t)
	x, obj, err := LPRelaxation(in)
	if err != nil {
		t.Fatal(err)
	}
	// LP bound must sit between the capacity-relaxed bound (6) and the
	// integral optimum (7).
	if obj < 6-1e-9 || obj > 7+1e-9 {
		t.Fatalf("LP objective = %v, want in [6, 7]", obj)
	}
	// Each row sums to 1.
	for i := range x {
		sum := 0.0
		for j := range x[i] {
			if x[i][j] < -1e-9 {
				t.Fatalf("negative x[%d][%d] = %v", i, j, x[i][j])
			}
			sum += x[i][j]
		}
		if math.Abs(sum-1) > 1e-6 {
			t.Fatalf("row %d sums to %v", i, sum)
		}
	}
	// Capacity respected fractionally.
	for j := 0; j < in.M(); j++ {
		load := 0.0
		for i := 0; i < in.N(); i++ {
			load += x[i][j] * in.Weight[i][j]
		}
		if load > in.Capacity[j]+1e-6 {
			t.Fatalf("fractional load %v exceeds capacity %v on edge %d", load, in.Capacity[j], j)
		}
	}
}

func TestLPBoundSandwichedByOptimum(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		in, err := Synthetic(SyntheticCorrelated, 10, 3, 0.8, seed)
		if err != nil {
			t.Fatal(err)
		}
		res, err := BranchAndBound(in, BnBOptions{})
		if errors.Is(err, ErrInfeasible) {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		lpb := LPBound(in)
		if lpb > res.Cost+1e-6 {
			t.Fatalf("seed %d: LP bound %v above optimum %v", seed, lpb, res.Cost)
		}
		// The LP bound dominates the row-min bound.
		if rb := RowMinBound(in); lpb < rb-1e-6 {
			t.Fatalf("seed %d: LP bound %v below row-min %v", seed, lpb, rb)
		}
	}
}

func TestLPBoundTighterThanLagrangianOnAverage(t *testing.T) {
	// LP = optimized Lagrangian dual, so LP >= any finite subgradient
	// run (up to tolerance).
	for seed := int64(0); seed < 5; seed++ {
		in, err := Synthetic(SyntheticCorrelated, 12, 3, 0.9, seed)
		if err != nil {
			t.Fatal(err)
		}
		lpb := LPBound(in)
		lgb, _ := LagrangianBound(in, 100)
		if lpb < lgb-1e-4 {
			t.Fatalf("seed %d: LP bound %v below Lagrangian %v", seed, lpb, lgb)
		}
	}
}

func TestLPRelaxationInfeasible(t *testing.T) {
	in, err := NewInstance(
		[][]float64{{1, 1}},
		[][]float64{{5, 5}},
		[]float64{1, 1},
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := LPRelaxation(in); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("want ErrInfeasible, got %v", err)
	}
	if !math.IsInf(LPBound(in), -1) {
		t.Fatal("LPBound on infeasible instance should be -Inf")
	}
}

func TestLPRelaxationUnreachablePairs(t *testing.T) {
	in, err := NewInstance(
		[][]float64{{math.Inf(1), 2}, {3, math.Inf(1)}},
		[][]float64{{1, 1}, {1, 1}},
		[]float64{5, 5},
	)
	if err != nil {
		t.Fatal(err)
	}
	x, obj, err := LPRelaxation(in)
	if err != nil {
		t.Fatal(err)
	}
	if x[0][0] != 0 || x[1][1] != 0 {
		t.Fatal("mass on unreachable pair")
	}
	if math.Abs(obj-5) > 1e-9 {
		t.Fatalf("objective = %v, want 5", obj)
	}
}

func TestLPRelaxationAllUnreachableRow(t *testing.T) {
	in, err := NewInstance(
		[][]float64{{math.Inf(1), math.Inf(1)}},
		[][]float64{{1, 1}},
		[]float64{5, 5},
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := LPRelaxation(in); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("want ErrInfeasible, got %v", err)
	}
}
