package cliutil

import (
	"flag"
	"fmt"
	"io"

	"taccc/internal/obs"
	"taccc/internal/obs/slo"
)

// SLO wires the shared -slo/-slo-window flags into a FlagSet and manages
// the SLO-tracker lifecycle around a command run. When on, one
// slo.Tracker feeds two planes at once: the slo-window/slo-eval/
// slo-alert/slo-objective event stream into the archive's slo.jsonl (and
// any extra sink the tool supplies), and live slo.* gauges in its own
// registry, merged into the -listen telemetry exposition but never into
// the archived metrics snapshot — that is what keeps events.jsonl /
// metrics.json / summary.json byte-identical with the plane on or off.
// Unlike sysmon, the SLO stream itself is sim-time driven and therefore
// deterministic: slo.jsonl is part of the archive's byte-identical set.
//
// All methods are nil-safe and no-op when the plane is off, so tools
// thread the struct through unconditionally, exactly like Sysmon.
type SLO struct {
	Spec      string
	WindowSec float64

	reg     *obs.Registry
	tracker *slo.Tracker
}

// Flags registers the SLO flags on fs.
func (s *SLO) Flags(fs *flag.FlagSet) {
	fs.StringVar(&s.Spec, "slo", "", "evaluate service-level objectives over rolling sim-time windows; comma-separated [series.]stat<=threshold[@target%] terms, e.g. 'p95<=20@99,miss<=0.01' (series: e2e uplink queue service downlink; stat: pNN mean miss). Emits slo.jsonl under -archive and live slo.* gauges on -listen")
	fs.Float64Var(&s.WindowSec, "slo-window", 1, "SLO window width in simulated seconds for -slo")
}

// Enabled reports whether SLO evaluation was requested.
func (s *SLO) Enabled() bool { return s != nil && s.Spec != "" }

// Validate checks flag values after parsing: the window width must be
// positive and the objective spec must parse. Returns a usage error
// (callers exit 2) rather than letting a nonsensical window silently
// misbehave. Valid with the plane off.
func (s *SLO) Validate() error {
	if s == nil || (!s.Enabled() && s.WindowSec > 0) {
		return nil
	}
	if !(s.WindowSec > 0) {
		return fmt.Errorf("-slo-window must be positive, got %v", s.WindowSec)
	}
	_, err := slo.ParseObjectives(s.Spec)
	return err
}

// Start builds the tracker when -slo was given: objectives from the
// spec, windows of -slo-window simulated seconds, events into the
// archive's slo.jsonl (when archiving is on), gauges into a dedicated
// registry. Call after Validate.
func (s *SLO) Start(a *Archive) error {
	if !s.Enabled() {
		return nil
	}
	objectives, err := slo.ParseObjectives(s.Spec)
	if err != nil {
		return err
	}
	var sink obs.Sink
	if a.Enabled() {
		js, err := a.StartSLO()
		if err != nil {
			return err
		}
		sink = js
	}
	s.reg = obs.NewRegistry()
	tr, err := slo.New(slo.Config{
		WindowMs:   s.WindowSec * 1000,
		Objectives: objectives,
		Sink:       sink,
		Metrics:    s.reg,
	})
	if err != nil {
		return err
	}
	s.tracker = tr
	return nil
}

// Tracker returns the configured tracker, nil when the plane is off —
// pass it straight to cluster.Config.SLO.
func (s *SLO) Tracker() *slo.Tracker {
	if s == nil {
		return nil
	}
	return s.tracker
}

// Registry returns the tracker's slo.* gauge registry, nil when the
// plane is off — pass it to Telemetry.Start alongside the tool's
// semantic registry.
func (s *SLO) Registry() *obs.Registry {
	if s == nil {
		return nil
	}
	return s.reg
}

// PrintSummary writes the per-objective verdict table to logw after the
// run (no-op when the plane is off or nothing was tracked).
func (s *SLO) PrintSummary(logw io.Writer) {
	if s == nil || s.tracker == nil {
		return
	}
	for _, r := range s.tracker.Results() {
		verdict := "met"
		if !r.Met {
			verdict = "VIOLATED"
		}
		fmt.Fprintf(logw, "slo:        %-16s %s  compliance %.2f%% (target %.2f%%)  windows %d  violations %d  budget %+.2f  alerts %d  -> %s\n",
			r.Name, r.Objective.Spec(), r.CompliancePct, 100*r.Target,
			r.Windows, r.Violations, r.BudgetRemaining, r.Alerts, verdict)
	}
}
