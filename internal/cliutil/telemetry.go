package cliutil

import (
	"flag"
	"fmt"
	"io"
	"os"

	"taccc/internal/obs"
	"taccc/internal/obs/httpserv"
)

// Telemetry wires the -listen flag into a FlagSet and manages the
// telemetry HTTP server (metrics/health/snapshot/pprof) around a command
// run.
type Telemetry struct {
	Listen string
}

// Flags registers the telemetry flags on fs.
func (t *Telemetry) Flags(fs *flag.FlagSet) {
	fs.StringVar(&t.Listen, "listen", "", "serve /metrics, /healthz, /snapshot and /debug/pprof on this address (e.g. :9477) while running")
}

// Enabled reports whether a listen address was requested.
func (t *Telemetry) Enabled() bool { return t.Listen != "" }

// Start launches the telemetry server over one or more registries when
// -listen was given (merged at serve time — the tool's semantic metrics
// plus sysmon's resource registry) and returns a stop function (always
// non-nil). The bound address is announced on logw so scripts can
// scrape a :0 listener.
func (t *Telemetry) Start(logw io.Writer, regs ...*obs.Registry) (stop func(), err error) {
	if !t.Enabled() {
		return func() {}, nil
	}
	srv, err := httpserv.Start(t.Listen, regs...)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(logw, "telemetry: serving /metrics /healthz /snapshot /debug/pprof on http://%s\n", srv.Addr())
	return func() { _ = srv.Close() }, nil
}

// EventsFlag wires the shared -events flag into a FlagSet; the help
// text names what the tool streams so the flag reads the same across
// tacsolve, tacsim and tacbench while staying accurate per tool.
type EventsFlag struct {
	Path string
}

// Flags registers the events flag on fs; what describes the stream's
// contents (e.g. "solver iteration and per-request span events").
func (e *EventsFlag) Flags(fs *flag.FlagSet, what string) {
	fs.StringVar(&e.Path, "events", "", "stream "+what+" to this JSONL file")
}

// Enabled reports whether an events path was requested.
func (e *EventsFlag) Enabled() bool { return e != nil && e.Path != "" }

// Open creates the event stream when -events was given; (nil, nil)
// otherwise — a nil *Events is safe everywhere downstream.
func (e *EventsFlag) Open() (*Events, error) {
	if !e.Enabled() {
		return nil, nil
	}
	return CreateEvents(e.Path)
}

// Events owns a JSONL event stream backed by a file (or any writer) and
// guarantees that flush and close errors surface instead of silently
// truncating the stream — a command that wrote -events must fail loudly
// when the bytes did not reach disk.
type Events struct {
	sink   *obs.JSONL
	closer io.Closer
	closed bool
}

// CreateEvents creates path and returns an event stream writing to it.
func CreateEvents(path string) (*Events, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return NewEvents(f, f), nil
}

// NewEvents wraps an arbitrary writer (closer may be nil) — the test
// seam for failure injection.
func NewEvents(w io.Writer, c io.Closer) *Events {
	return &Events{sink: obs.NewJSONL(w), closer: c}
}

// Sink returns the underlying JSONL sink (nil on a nil receiver, so the
// result can feed MultiSink/EventProgress unconditionally).
func (e *Events) Sink() *obs.JSONL {
	if e == nil {
		return nil
	}
	return e.sink
}

// Close flushes buffered events and closes the file, reporting the first
// error encountered anywhere in the stream's lifetime (including write
// errors latched during emission). It is idempotent and nil-safe, so it
// can be deferred and also called explicitly to check the error.
func (e *Events) Close() error {
	if e == nil || e.closed {
		return nil
	}
	e.closed = true
	err := e.sink.Flush()
	if e.closer != nil {
		if cerr := e.closer.Close(); err == nil {
			err = cerr
		}
	}
	return err
}
