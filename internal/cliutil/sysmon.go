package cliutil

import (
	"flag"
	"fmt"
	"time"

	"taccc/internal/obs"
	"taccc/internal/obs/sysmon"
)

// Sysmon wires the shared -sysmon/-sysmon-interval flags into a FlagSet
// and manages the resource-sampler lifecycle around a command run. When
// on, a background sysmon.Sampler feeds three planes at once: go.*/
// proc.* metrics in its own registry (merged into the -listen telemetry
// exposition, never into the archived metrics snapshot — that is what
// keeps archives byte-identical with sysmon on or off), "res" events
// into the archive's resources.jsonl, and an in-memory Collector whose
// samples become Chrome counter tracks in the -trace-out export. The
// sampler also acts as the tracer's ResourceSource so every pipeline
// phase carries begin/end resource attributes.
//
// All methods are nil-safe and no-op when sampling is off, so tools
// thread the struct through unconditionally, exactly like Trace.
type Sysmon struct {
	On       bool
	Interval time.Duration

	reg     *obs.Registry
	col     *sysmon.Collector
	sampler *sysmon.Sampler
}

// Flags registers the sysmon flags on fs.
func (s *Sysmon) Flags(fs *flag.FlagSet) {
	fs.BoolVar(&s.On, "sysmon", false, "sample runtime heap/GC/goroutine/RSS usage while running: go.*/proc.* metrics on -listen, resources.jsonl under -archive, counter tracks in -trace-out, per-phase resource attribution in traced archives")
	fs.DurationVar(&s.Interval, "sysmon-interval", sysmon.DefaultInterval, "sampling period for -sysmon")
}

// Enabled reports whether resource sampling was requested.
func (s *Sysmon) Enabled() bool { return s != nil && s.On }

// Validate checks flag values after parsing: a non-positive
// -sysmon-interval would make the sampler spin or never fire, so it is
// rejected as a usage error (callers exit 2) instead of silently
// misbehaving. Valid with sampling off as long as the interval was left
// at (or reset to) a sane value.
func (s *Sysmon) Validate() error {
	if s == nil || (!s.Enabled() && s.Interval > 0) {
		return nil
	}
	if s.Interval <= 0 {
		return fmt.Errorf("-sysmon-interval must be positive, got %v", s.Interval)
	}
	return nil
}

// Start launches the sampler when -sysmon was given: an immediate
// sample, then one per -sysmon-interval. The archive's resources.jsonl
// stream is opened when archiving is on; counter samples are collected
// in memory when collectCounters says a trace export will want them.
func (s *Sysmon) Start(a *Archive, collectCounters bool) error {
	if !s.Enabled() {
		return nil
	}
	s.reg = obs.NewRegistry()
	var sinks []obs.Sink
	if a.Enabled() {
		rs, err := a.StartResources()
		if err != nil {
			return err
		}
		sinks = append(sinks, rs)
	}
	if collectCounters {
		s.col = &sysmon.Collector{}
		sinks = append(sinks, s.col)
	}
	s.sampler = sysmon.New(sysmon.Options{
		Clock:    obs.WallClock(),
		Registry: s.reg,
		Sink:     obs.MultiSink(sinks...),
	})
	s.sampler.Start(s.Interval)
	return nil
}

// Registry returns the sampler's go.*/proc.* registry, nil when
// sampling is off — pass it to Telemetry.Start alongside the tool's
// semantic registry.
func (s *Sysmon) Registry() *obs.Registry {
	if s == nil {
		return nil
	}
	return s.reg
}

// Source returns the sampler as a tracer ResourceSource, nil (as an
// interface, not a typed nil) when sampling is off.
func (s *Sysmon) Source() obs.ResourceSource {
	if s == nil || s.sampler == nil {
		return nil
	}
	return s.sampler
}

// CloseStreams takes a final sample and detaches the sampler from the
// archive/collector sinks, so they can be sealed while the sampler
// keeps refreshing the registry (tacsim -linger). Call before
// Trace.Finish and Archive.Finish.
func (s *Sysmon) CloseStreams() {
	if s == nil {
		return
	}
	s.sampler.DetachSink()
}

// Counters returns the collected samples as Chrome counter tracks for
// the trace export (nil when sampling or collection is off).
func (s *Sysmon) Counters() []obs.CounterSample {
	if s == nil || s.col == nil {
		return nil
	}
	return sysmon.CounterSamples(s.col.Samples())
}

// Stop halts the background sampler. Idempotent and nil-safe; defer it.
func (s *Sysmon) Stop() {
	if s == nil {
		return
	}
	s.sampler.Stop()
}
