package cliutil

import (
	"bytes"
	"errors"
	"flag"
	"io"
	"net/http"
	"os"
	"strings"
	"testing"

	"taccc/internal/obs"
)

type failWriter struct{ err error }

func (f failWriter) Write([]byte) (int, error) { return 0, f.err }

type failCloser struct{ err error }

func (f failCloser) Close() error { return f.err }

func TestEventsReportsWriteErrors(t *testing.T) {
	wantErr := errors.New("disk full")
	e := NewEvents(failWriter{err: wantErr}, nil)
	obs.Emit(e.Sink(), "span", map[string]interface{}{"trace": 1})
	if err := e.Close(); !errors.Is(err, wantErr) {
		t.Fatalf("Close() = %v, want %v", err, wantErr)
	}
	if err := e.Close(); err != nil {
		t.Fatalf("second Close() = %v, want nil (idempotent)", err)
	}
}

func TestEventsReportsCloseErrors(t *testing.T) {
	wantErr := errors.New("close failed")
	var buf bytes.Buffer
	e := NewEvents(&buf, failCloser{err: wantErr})
	obs.Emit(e.Sink(), "iter", nil)
	if err := e.Close(); !errors.Is(err, wantErr) {
		t.Fatalf("Close() = %v, want %v", err, wantErr)
	}
	if !strings.Contains(buf.String(), `"kind":"iter"`) {
		t.Fatalf("event not flushed before close: %q", buf.String())
	}
}

func TestEventsNilSafe(t *testing.T) {
	var e *Events
	if e.Sink() != nil {
		t.Fatal("nil Events should yield a nil sink")
	}
	if err := e.Close(); err != nil {
		t.Fatalf("nil Close() = %v", err)
	}
}

func TestCreateEventsRoundTrip(t *testing.T) {
	path := t.TempDir() + "/events.jsonl"
	e, err := CreateEvents(path)
	if err != nil {
		t.Fatal(err)
	}
	obs.Emit(e.Sink(), "span", map[string]interface{}{"trace": 7})
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"trace":7`) {
		t.Fatalf("event lost: %q", data)
	}
}

func TestTelemetryDisabledIsNoOp(t *testing.T) {
	var tel Telemetry
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	tel.Flags(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if tel.Enabled() {
		t.Fatal("no -listen should mean disabled")
	}
	stop, err := tel.Start(io.Discard, nil)
	if err != nil {
		t.Fatal(err)
	}
	stop()
}

func TestTelemetryServesMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("cluster.requests.sent").Add(42)
	tel := Telemetry{Listen: "127.0.0.1:0"}
	var log bytes.Buffer
	stop, err := tel.Start(&log, reg)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	announced := log.String()
	i := strings.Index(announced, "http://")
	if i < 0 {
		t.Fatalf("no address announced: %q", announced)
	}
	addr := strings.TrimSpace(announced[i:])
	resp, err := http.Get(addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "cluster_requests_sent 42") {
		t.Fatalf("metrics not served: %q", body)
	}
}
