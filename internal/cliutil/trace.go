package cliutil

import (
	"flag"
	"fmt"
	"io"
	"os"

	"taccc/internal/obs"
)

// Trace wires the shared -trace-out flag into a FlagSet and manages the
// pipeline-tracing lifecycle: Start after flag parsing (returning the
// root phase the tool hangs its pipeline spans under), Finish on the way
// out to export the Chrome trace-event JSON. All methods are nil-safe
// and no-op when tracing is off, so tools thread the root phase through
// unconditionally and pay nothing when -trace-out is absent.
type Trace struct {
	Out    string
	col    *obs.SpanCollector
	tracer *obs.Tracer
	root   *obs.Phase
}

// Flags registers the trace flag on fs.
func (tr *Trace) Flags(fs *flag.FlagSet) {
	fs.StringVar(&tr.Out, "trace-out", "", "write a Chrome trace-event JSON pipeline trace to this file (open in Perfetto or chrome://tracing)")
}

// Enabled reports whether a trace output file was requested.
func (tr *Trace) Enabled() bool { return tr != nil && tr.Out != "" }

// Start builds the tracer and opens the root pipeline phase. When the
// run is also being archived, the span stream is persisted as
// trace.jsonl inside the archive — kept apart from events.jsonl because
// wall-clock spans are inherently nondeterministic. A non-nil res (the
// sysmon sampler) makes every phase — root included — carry begin/end
// resource attributes. Returns the root phase (nil when tracing is
// off — every downstream consumer is nil-safe).
func (tr *Trace) Start(name string, a *Archive, res obs.ResourceSource) (*obs.Phase, error) {
	if !tr.Enabled() {
		return nil, nil
	}
	tr.col = &obs.SpanCollector{}
	var sink obs.Sink = tr.col
	if a.Enabled() {
		ts, err := a.StartTrace()
		if err != nil {
			return nil, err
		}
		sink = obs.MultiSink(tr.col, ts)
	}
	tr.tracer = obs.NewTracer(sink, obs.WallClock())
	tr.tracer.SetResources(res)
	tr.root = tr.tracer.Root(name)
	return tr.root, nil
}

// Finish ends the root phase and writes the Chrome trace-event export —
// spans plus any resource counter tracks (Sysmon.Counters) — announcing
// the trace location on logw. Safe to call when tracing is off; export
// errors are returned so callers fail the run rather than ship a
// truncated trace.
func (tr *Trace) Finish(logw io.Writer, counters []obs.CounterSample) error {
	if !tr.Enabled() || tr.tracer == nil {
		return nil
	}
	tr.root.End()
	f, err := os.Create(tr.Out)
	if err != nil {
		return err
	}
	werr := obs.WriteChromeTrace(f, tr.col.Spans(), counters...)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return fmt.Errorf("trace-out %s: %w", tr.Out, werr)
	}
	fmt.Fprintf(logw, "trace:      chrome trace -> %s\n", tr.Out)
	return nil
}
