package cliutil

import (
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// binaries is the full CLI surface; every tool must answer -version with
// the shared banner so scripts can probe any of them uniformly.
var binaries = []string{
	"tacbench",
	"tacgen",
	"taclint",
	"tacreport",
	"tacsim",
	"tacsolve",
	"tactop",
	"tactrace",
}

// moduleRoot locates the repository root (the directory holding go.mod)
// so the test can build the cmd/ packages regardless of the test cwd.
func moduleRoot(t *testing.T) string {
	t.Helper()
	out, err := exec.Command("go", "list", "-m", "-f", "{{.Dir}}").Output()
	if err != nil {
		t.Fatalf("go list -m: %v", err)
	}
	return strings.TrimSpace(string(out))
}

// TestAllBinariesAnswerVersion builds every tool and shells each with
// -version, asserting the uniform "<tool> <version> (taccc)" banner.
func TestAllBinariesAnswerVersion(t *testing.T) {
	if testing.Short() {
		t.Skip("builds all binaries; skipped in -short")
	}
	root := moduleRoot(t)
	binDir := t.TempDir()
	build := exec.Command("go", "build", "-o", binDir, "./cmd/...")
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build ./cmd/...: %v\n%s", err, out)
	}
	for _, tool := range binaries {
		tool := tool
		t.Run(tool, func(t *testing.T) {
			bin := filepath.Join(binDir, tool)
			if _, err := os.Stat(bin); err != nil {
				t.Fatalf("binary not built: %v", err)
			}
			out, err := exec.Command(bin, "-version").CombinedOutput()
			if err != nil {
				t.Fatalf("%s -version: %v\n%s", tool, err, out)
			}
			want := regexp.MustCompile(`^` + tool + ` \S+ \(taccc\)\n$`)
			if !want.Match(out) {
				t.Fatalf("%s -version banner %q does not match %s", tool, out, want)
			}
		})
	}
}
