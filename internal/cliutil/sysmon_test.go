package cliutil

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"taccc/internal/obs"
	"taccc/internal/obs/runlog"
	"taccc/internal/obs/sysmon"
)

func TestSysmonFlags(t *testing.T) {
	var s Sysmon
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	s.Flags(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if s.On || s.Interval != sysmon.DefaultInterval {
		t.Fatalf("defaults: On=%v Interval=%v", s.On, s.Interval)
	}
	if s.Enabled() {
		t.Fatal("Enabled with -sysmon unset")
	}
	fs2 := flag.NewFlagSet("x", flag.ContinueOnError)
	var s2 Sysmon
	s2.Flags(fs2)
	if err := fs2.Parse([]string{"-sysmon", "-sysmon-interval", "10ms"}); err != nil {
		t.Fatal(err)
	}
	if !s2.Enabled() || s2.Interval != 10*time.Millisecond {
		t.Fatalf("parsed: On=%v Interval=%v", s2.On, s2.Interval)
	}
}

// TestSysmonValidate pins the usage-error contract: a non-positive
// interval is rejected up front instead of wedging the sampler.
func TestSysmonValidate(t *testing.T) {
	var nilS *Sysmon
	if err := nilS.Validate(); err != nil {
		t.Fatalf("nil Sysmon: %v", err)
	}
	for _, iv := range []time.Duration{time.Millisecond, time.Second} {
		s := &Sysmon{On: true, Interval: iv}
		if err := s.Validate(); err != nil {
			t.Errorf("interval %v rejected: %v", iv, err)
		}
	}
	for _, iv := range []time.Duration{0, -time.Second} {
		s := &Sysmon{On: true, Interval: iv}
		err := s.Validate()
		if err == nil || !strings.Contains(err.Error(), "-sysmon-interval must be positive") {
			t.Errorf("interval %v: error %v, want positive-interval diagnostic", iv, err)
		}
	}
	// Off but with a broken interval: still rejected, so the typo is not
	// silently swallowed when -sysmon is later enabled.
	if err := (&Sysmon{Interval: -time.Second}).Validate(); err == nil {
		t.Error("negative interval accepted with sampling off")
	}
}

// A nil or off Sysmon must be fully inert: that is the contract that
// lets every tool thread it through unconditionally.
func TestSysmonNilAndOffSafe(t *testing.T) {
	var nilS *Sysmon
	if nilS.Enabled() {
		t.Fatal("nil Sysmon enabled")
	}
	if err := nilS.Start(nil, true); err != nil {
		t.Fatal(err)
	}
	if nilS.Registry() != nil || nilS.Counters() != nil {
		t.Fatal("nil Sysmon produced a registry or counters")
	}
	if nilS.Source() != nil {
		t.Fatal("nil Sysmon Source() must be a true nil interface")
	}
	nilS.CloseStreams()
	nilS.Stop()

	var off Sysmon // flags unset
	if err := off.Start(&Archive{}, true); err != nil {
		t.Fatal(err)
	}
	if off.Source() != nil {
		t.Fatal("off Sysmon Source() must be a true nil interface")
	}
	off.CloseStreams()
	off.Stop()
}

func TestSysmonStartWithArchive(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "run")
	a := &Archive{Dir: dir}
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	a.Flags(fs)
	var seedFlag = fs.Int64("seed", 1, "")
	if err := fs.Parse([]string{"-archive", dir}); err != nil {
		t.Fatal(err)
	}
	if err := a.Start("tactest", fs, *seedFlag); err != nil {
		t.Fatal(err)
	}

	s := &Sysmon{On: true, Interval: time.Millisecond}
	if err := s.Start(a, true); err != nil {
		t.Fatal(err)
	}
	if s.Registry() == nil {
		t.Fatal("running Sysmon has no registry")
	}
	if s.Source() == nil {
		t.Fatal("running Sysmon has no ResourceSource")
	}
	deadline := time.Now().Add(5 * time.Second)
	for len(s.Counters()) == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	s.CloseStreams()
	s.Stop()
	if len(s.Counters()) == 0 {
		t.Fatal("no counter samples collected")
	}
	reg := obs.NewRegistry()
	reg.Counter("cluster.requests_ok").Add(1)
	if err := a.Finish(reg, runlog.Summary{"ok": 1}, os.Stderr); err != nil {
		t.Fatal(err)
	}

	arch, err := runlog.Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	samples := sysmon.SamplesFromEvents(arch.Resources)
	if len(samples) == 0 {
		t.Fatal("archive has no resource samples")
	}
	// The sysmon registry is separate: none of its metrics may leak into
	// the archived snapshot, which must stay identical with sysmon off.
	for name := range arch.Metrics.Counters {
		if name == "sysmon.samples_total" {
			t.Fatal("sysmon counter leaked into the archived metrics snapshot")
		}
	}
	for name := range arch.Metrics.Gauges {
		switch name {
		case "go.heap_alloc_bytes", "go.heap_inuse_bytes", "proc.rss_bytes":
			t.Fatalf("sysmon gauge %s leaked into the archived metrics snapshot", name)
		}
	}
}

// TestSysmonStartWithoutArchive: sampling with archiving off still
// collects counter samples and serves a registry.
func TestSysmonStartWithoutArchive(t *testing.T) {
	s := &Sysmon{On: true, Interval: time.Millisecond}
	if err := s.Start(&Archive{}, true); err != nil {
		t.Fatal(err)
	}
	defer s.Stop()
	s.CloseStreams() // forces at least the final sample through
	if len(s.Counters()) == 0 {
		t.Fatal("no counter samples without an archive")
	}
	snap := s.Registry().Snapshot()
	if snap.Counters["sysmon.samples_total"] == 0 {
		t.Fatalf("registry not fed: %+v", snap.Counters)
	}
}
