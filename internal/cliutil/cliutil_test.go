package cliutil

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestVersionNonEmpty(t *testing.T) {
	v := Version()
	if v == "" {
		t.Fatal("empty version")
	}
}

func TestFprintVersion(t *testing.T) {
	var buf bytes.Buffer
	FprintVersion(&buf, "tacsolve")
	out := buf.String()
	if !strings.HasPrefix(out, "tacsolve ") || !strings.Contains(out, "(taccc)") {
		t.Fatalf("banner %q missing tool name or suite tag", out)
	}
	if !strings.HasSuffix(out, "\n") {
		t.Fatal("banner should end with a newline")
	}
}

func TestProfilesLifecycle(t *testing.T) {
	dir := t.TempDir()
	var p Profiles
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	p.Flags(fs)
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	if err := fs.Parse([]string{"-cpuprofile", cpu, "-memprofile", mem}); err != nil {
		t.Fatal(err)
	}
	var errw bytes.Buffer
	stop, err := p.Start(&errw)
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile has samples to write.
	x := 0
	for i := 0; i < 1_000_000; i++ {
		x += i * i
	}
	_ = x
	stop()
	if errw.Len() != 0 {
		t.Fatalf("stop reported errors: %s", errw.String())
	}
	for _, f := range []string{cpu, mem} {
		st, err := os.Stat(f)
		if err != nil {
			t.Fatal(err)
		}
		if st.Size() == 0 {
			t.Fatalf("%s is empty", f)
		}
	}
}

func TestProfilesDisabledIsNoop(t *testing.T) {
	var p Profiles
	var errw bytes.Buffer
	stop, err := p.Start(&errw)
	if err != nil {
		t.Fatal(err)
	}
	stop()
	if errw.Len() != 0 {
		t.Fatalf("no-op profiles wrote errors: %s", errw.String())
	}
}

func TestProfilesBadPath(t *testing.T) {
	p := Profiles{CPU: filepath.Join(t.TempDir(), "missing-dir", "cpu.pprof")}
	if _, err := p.Start(&bytes.Buffer{}); err == nil {
		t.Fatal("unwritable CPU profile path should fail Start")
	}
}
