// Package cliutil holds the small pieces shared by every taccc command:
// build-info version reporting and pprof profiling flags.
package cliutil

import (
	"flag"
	"fmt"
	"io"
	"runtime/debug"

	"taccc/internal/obs"
)

// Version returns a human-readable version string from the binary's
// embedded build info: the module version when the binary was built with
// `go install module@version`, otherwise the VCS revision (12 hex chars,
// "+dirty" when the tree had local changes), otherwise "devel".
func Version() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "devel"
	}
	if v := bi.Main.Version; v != "" && v != "(devel)" {
		return v
	}
	rev, dirty := "", false
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if rev == "" {
		return "devel"
	}
	if len(rev) > 12 {
		rev = rev[:12]
	}
	if dirty {
		rev += "+dirty"
	}
	return rev
}

// FprintVersion writes the standard one-line version banner for tool.
func FprintVersion(w io.Writer, tool string) {
	fmt.Fprintf(w, "%s %s (taccc)\n", tool, Version())
}

// Profiles wires -cpuprofile/-memprofile flags into a FlagSet and manages
// the profile lifecycle around a command run.
type Profiles struct {
	CPU string
	Mem string
}

// Flags registers the profiling flags on fs.
func (p *Profiles) Flags(fs *flag.FlagSet) {
	fs.StringVar(&p.CPU, "cpuprofile", "", "write a CPU profile to this file")
	fs.StringVar(&p.Mem, "memprofile", "", "write a heap profile to this file on exit")
}

// Start begins CPU profiling if requested and returns a stop function
// that finishes the CPU profile and writes the heap profile. The stop
// function reports problems to errw rather than failing the run —
// profiles are diagnostics, not outputs.
func (p *Profiles) Start(errw io.Writer) (stop func(), err error) {
	var stopCPU func() error
	if p.CPU != "" {
		stopCPU, err = obs.StartCPUProfile(p.CPU)
		if err != nil {
			return nil, err
		}
	}
	return func() {
		if stopCPU != nil {
			if err := stopCPU(); err != nil {
				fmt.Fprintf(errw, "cpuprofile: %v\n", err)
			}
		}
		if p.Mem != "" {
			if err := obs.WriteHeapProfile(p.Mem); err != nil {
				fmt.Fprintf(errw, "memprofile: %v\n", err)
			}
		}
	}, nil
}
