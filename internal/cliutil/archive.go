package cliutil

import (
	"flag"
	"fmt"
	"io"

	"taccc/internal/obs"
	"taccc/internal/obs/runlog"
)

// executionOnlyFlags are flags that never change a run's results — they
// tune parallelism, profiling, telemetry or pick output destinations.
// They are excluded from the archived config so that archives of the
// same logical run are identical regardless of how it was executed:
// `-workers 1` and `-workers 8` runs of the same seed and scenario
// produce byte-identical archives (the manifest's wall-clock fields
// aside), which is what makes run-diffing trustworthy.
var executionOnlyFlags = map[string]bool{
	"archive":         true,
	"cpuprofile":      true,
	"memprofile":      true,
	"events":          true,
	"linger":          true,
	"listen":          true,
	"metrics-out":     true,
	"o":               true,
	"outdir":          true,
	"progress":        true,
	"slo":             true,
	"slo-window":      true,
	"sysmon":          true,
	"sysmon-interval": true,
	"trace":           true,
	"trace-out":       true,
	"workers":         true,
	"json":            true,
	"csv":             true,
	"md":              true,
}

// Archive wires the shared -archive flag into a FlagSet and manages the
// run-archive lifecycle: Start after flag parsing, Sink while running,
// Finish on the way out. All methods are nil-safe when archiving is off.
type Archive struct {
	Dir string
	w   *runlog.Writer
}

// Flags registers the archive flag on fs.
func (a *Archive) Flags(fs *flag.FlagSet) {
	fs.StringVar(&a.Dir, "archive", "", "write a self-contained run archive (manifest, event stream, metrics snapshot, result summary) into this directory")
}

// Enabled reports whether an archive directory was requested.
func (a *Archive) Enabled() bool { return a != nil && a.Dir != "" }

// Start creates the archive when -archive was given. The manifest
// records the tool name, build version, seed, and the tool's full
// semantic configuration — every parsed flag's final value except the
// execution-only set (workers, profiling, telemetry, output paths),
// which cannot change results and would break run-to-run comparability.
func (a *Archive) Start(tool string, fs *flag.FlagSet, seed int64) error {
	if !a.Enabled() {
		return nil
	}
	config := make(map[string]string)
	fs.VisitAll(func(f *flag.Flag) {
		if !executionOnlyFlags[f.Name] && f.Name != "version" {
			config[f.Name] = f.Value.String()
		}
	})
	w, err := runlog.Create(a.Dir, runlog.Manifest{
		Tool: tool, Version: Version(), Seed: seed, Config: config,
	})
	if err != nil {
		return err
	}
	a.w = w
	return nil
}

// Sink returns the archive's event stream (nil when archiving is off),
// ready to feed MultiSink/EventProgress unconditionally.
func (a *Archive) Sink() *obs.JSONL {
	if a == nil {
		return nil
	}
	return a.w.Sink()
}

// StartTrace opens the archive's pipeline-trace stream (trace.jsonl),
// nil when archiving is off. Sealed by Finish along with the rest.
func (a *Archive) StartTrace() (*obs.JSONL, error) {
	if !a.Enabled() {
		return nil, nil
	}
	return a.w.StartTrace()
}

// StartResources opens the archive's resource-sample stream
// (resources.jsonl), nil when archiving is off. Sealed by Finish along
// with the rest.
func (a *Archive) StartResources() (*obs.JSONL, error) {
	if !a.Enabled() {
		return nil, nil
	}
	return a.w.StartResources()
}

// StartSLO opens the archive's SLO stream (slo.jsonl), nil when
// archiving is off. Sealed by Finish along with the rest.
func (a *Archive) StartSLO() (*obs.JSONL, error) {
	if !a.Enabled() {
		return nil, nil
	}
	return a.w.StartSLO()
}

// Finish seals the archive with the final metrics snapshot and result
// summary, announcing the archive location on logw. Safe to call when
// archiving is off; the first archive-write error is returned so
// callers fail the run rather than ship a truncated archive.
func (a *Archive) Finish(reg *obs.Registry, summary runlog.Summary, logw io.Writer) error {
	if !a.Enabled() || a.w == nil {
		return nil
	}
	if err := a.w.Close(reg.Snapshot(), summary); err != nil {
		return err
	}
	fmt.Fprintf(logw, "archive:    run archive -> %s\n", a.Dir)
	return nil
}

// VersionFlag registers the standard -version flag on fs; every taccc
// tool exposes it and prints the shared FprintVersion banner.
func VersionFlag(fs *flag.FlagSet) *bool {
	return fs.Bool("version", false, "print version and exit")
}
