package cliutil

import (
	"bytes"
	"flag"
	"io"
	"path/filepath"
	"strings"
	"testing"

	"taccc/internal/obs"
	"taccc/internal/obs/runlog"
)

func parseSLO(t *testing.T, args ...string) *SLO {
	t.Helper()
	var s SLO
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	s.Flags(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	return &s
}

func TestSLOFlagsDefaults(t *testing.T) {
	s := parseSLO(t)
	if s.Enabled() {
		t.Fatal("Enabled with -slo unset")
	}
	if s.WindowSec != 1 {
		t.Fatalf("default window = %v, want 1s", s.WindowSec)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("defaults must validate: %v", err)
	}
}

func TestSLOValidate(t *testing.T) {
	var nilS *SLO
	if err := nilS.Validate(); err != nil {
		t.Fatalf("nil SLO: %v", err)
	}

	// Disabled plane ignores the spec but still rejects a broken window
	// so a typo is not silently swallowed.
	if err := parseSLO(t, "-slo-window", "0").Validate(); err == nil {
		t.Fatal("zero window accepted")
	}

	cases := []struct {
		args []string
		want string // error substring, "" = valid
	}{
		{[]string{"-slo", "p95<=20"}, ""},
		{[]string{"-slo", "p95<=20@99.9,uplink.mean<=5,miss<=0.01"}, ""},
		{[]string{"-slo", "p95<=20", "-slo-window", "0.25"}, ""},
		{[]string{"-slo", "p95<=20", "-slo-window", "0"}, "-slo-window must be positive"},
		{[]string{"-slo", "p95<=20", "-slo-window", "-2"}, "-slo-window must be positive"},
		{[]string{"-slo", "p95>=20"}, "want [series.]stat<=threshold"},
		{[]string{"-slo", "p200<=20"}, "unknown stat"},
		{[]string{"-slo", "p95<=20@0"}, "target"},
	}
	for _, tc := range cases {
		err := parseSLO(t, tc.args...).Validate()
		if tc.want == "" {
			if err != nil {
				t.Errorf("args %v: unexpected error %v", tc.args, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("args %v: error %v, want substring %q", tc.args, err, tc.want)
		}
	}
}

func TestSLONilAndOffSafe(t *testing.T) {
	var nilS *SLO
	if nilS.Enabled() {
		t.Fatal("nil SLO enabled")
	}
	if err := nilS.Start(nil); err != nil {
		t.Fatal(err)
	}
	if nilS.Tracker() != nil || nilS.Registry() != nil {
		t.Fatal("nil SLO produced a tracker or registry")
	}
	nilS.PrintSummary(&bytes.Buffer{})

	off := parseSLO(t)
	if err := off.Start(&Archive{}); err != nil {
		t.Fatal(err)
	}
	if off.Tracker() != nil || off.Registry() != nil {
		t.Fatal("off SLO produced a tracker or registry")
	}
}

func TestSLOStartWithArchive(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "run")
	var a Archive
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	a.Flags(fs)
	if err := fs.Parse([]string{"-archive", dir}); err != nil {
		t.Fatal(err)
	}
	if err := a.Start("testtool", fs, 1); err != nil {
		t.Fatal(err)
	}

	s := parseSLO(t, "-slo", "p95<=20@90", "-slo-window", "0.5")
	if err := s.Start(&a); err != nil {
		t.Fatal(err)
	}
	tr := s.Tracker()
	if tr == nil {
		t.Fatal("no tracker after Start")
	}
	if tr.WindowMs() != 500 {
		t.Fatalf("window = %v ms, want 500", tr.WindowMs())
	}
	if s.Registry() == nil {
		t.Fatal("no gauge registry after Start")
	}

	// Drive one violating window through the tracker and seal the archive.
	tr.Observe(100, 500, false)
	tr.Finish(500)
	var sum bytes.Buffer
	s.PrintSummary(&sum)
	if !strings.Contains(sum.String(), "e2e_p95") || !strings.Contains(sum.String(), "VIOLATED") {
		t.Fatalf("summary wrong:\n%s", sum.String())
	}
	if err := a.Finish(obs.NewRegistry(), runlog.Summary{}, io.Discard); err != nil {
		t.Fatal(err)
	}

	ar, err := runlog.Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ar.SLO) == 0 {
		t.Fatal("archive has no SLO events")
	}
	// SLO gauges live in their own registry: the archived snapshot must
	// stay identical with the plane off.
	for name := range ar.Metrics.Gauges {
		if strings.HasPrefix(name, "slo.") {
			t.Fatalf("slo gauge %s leaked into the archived metrics snapshot", name)
		}
	}
}

func TestSLOStartWithoutArchive(t *testing.T) {
	s := parseSLO(t, "-slo", "p95<=20")
	if err := s.Start(nil); err != nil {
		t.Fatal(err)
	}
	if s.Tracker() == nil {
		t.Fatal("tracker must exist without an archive (gauges still serve -listen)")
	}
	s.Tracker().Observe(10, 5, false)
	s.Tracker().Finish(1000)
}
