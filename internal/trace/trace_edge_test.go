package trace

import (
	"bytes"
	"strings"
	"testing"

	"taccc/internal/cluster"
)

// TestHeaderOnlyTrace covers a run that produced no requests: the file
// holds just the CSV header and every analysis degrades gracefully.
func TestHeaderOnlyTrace(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.N() != 0 {
		t.Fatalf("N() = %d for an empty trace", w.N())
	}
	records, err := Read(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("header-only trace should read cleanly: %v", err)
	}
	if len(records) != 0 {
		t.Fatalf("%d records from a header-only trace", len(records))
	}
	s := Summarize(records)
	if s.Completed != 0 || s.Missed != 0 || s.Dropped != 0 || s.Latency.N() != 0 {
		t.Fatalf("non-zero summary from empty trace: %+v", s)
	}
	if s.MissRate() != 0 {
		t.Fatalf("MissRate() = %v on empty trace", s.MissRate())
	}
	ts, err := TimeSeries(records, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 0 {
		t.Fatalf("%d windows from empty trace", len(ts))
	}
}

func TestSingleRecordWindow(t *testing.T) {
	rec := cluster.RequestRecord{
		Device: 3, Edge: 1, SentAtMs: 1200, DoneAtMs: 1212,
		LatencyMs: 12, Outcome: cluster.OutcomeOK,
	}
	ts, err := TimeSeries([]cluster.RequestRecord{rec}, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 1 {
		t.Fatalf("%d windows for a single record, want 1", len(ts))
	}
	wp := ts[0]
	if wp.StartMs != 1000 {
		t.Errorf("window starts at %v, want 1000 (bucket of DoneAtMs)", wp.StartMs)
	}
	if wp.Completed != 1 || wp.Dropped != 0 {
		t.Errorf("window counts = %+v, want 1 completed", wp)
	}
	// With one sample, mean and P95 both collapse to the single latency.
	if wp.MeanLatencyMs != 12 || wp.P95Ms != 12 {
		t.Errorf("single-sample stats = mean %v p95 %v, want 12/12", wp.MeanLatencyMs, wp.P95Ms)
	}
}

// TestWindowWiderThanSpan puts every record into one bucket when the
// window dwarfs the trace's time span.
func TestWindowWiderThanSpan(t *testing.T) {
	records := []cluster.RequestRecord{
		{Device: 0, Edge: 0, SentAtMs: 10, DoneAtMs: 20, LatencyMs: 10, Outcome: cluster.OutcomeOK},
		{Device: 1, Edge: 0, SentAtMs: 500, DoneAtMs: 530, LatencyMs: 30, Outcome: cluster.OutcomeMissed},
		{Device: 2, Edge: 1, SentAtMs: 900, DoneAtMs: 900, LatencyMs: 0, Outcome: cluster.OutcomeDropped},
	}
	ts, err := TimeSeries(records, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 1 {
		t.Fatalf("%d windows, want 1 when the window exceeds the span", len(ts))
	}
	wp := ts[0]
	if wp.StartMs != 0 {
		t.Errorf("bucket starts at %v, want 0", wp.StartMs)
	}
	if wp.Completed != 2 || wp.Dropped != 1 {
		t.Errorf("bucket counts = %+v, want 2 completed 1 dropped", wp)
	}
	if wp.MeanLatencyMs != 20 {
		t.Errorf("mean latency %v, want 20 (drops excluded)", wp.MeanLatencyMs)
	}
}
