// Package trace persists and analyzes per-request traces from the cluster
// simulator: a CSV writer that plugs into cluster.Config.Recorder, a
// reader, an aggregate summary, and a windowed time series for
// latency-over-time plots. Traces make simulation runs inspectable and
// diffable offline — the record/replay counterpart to the live Result.
package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"

	"taccc/internal/cluster"
	"taccc/internal/obs"
	"taccc/internal/stats"
)

// header is the CSV column layout.
var header = []string{"device", "edge", "sent_ms", "done_ms", "latency_ms", "outcome"}

// Writer streams records as CSV rows. Create with NewWriter and Flush (or
// Close the underlying file) when done.
type Writer struct {
	w   *csv.Writer
	err error
	n   int
}

// NewWriter emits the header immediately.
func NewWriter(w io.Writer) (*Writer, error) {
	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return nil, fmt.Errorf("trace: writing header: %w", err)
	}
	return &Writer{w: cw}, nil
}

// Record implements cluster.Recorder. The first write error is latched and
// reported by Flush.
func (t *Writer) Record(r cluster.RequestRecord) {
	if t.err != nil {
		return
	}
	t.err = t.w.Write([]string{
		strconv.Itoa(r.Device),
		strconv.Itoa(r.Edge),
		strconv.FormatFloat(r.SentAtMs, 'f', 3, 64),
		strconv.FormatFloat(r.DoneAtMs, 'f', 3, 64),
		strconv.FormatFloat(r.LatencyMs, 'f', 3, 64),
		string(r.Outcome),
	})
	if t.err == nil {
		t.n++
	}
}

// N returns the number of records written.
func (t *Writer) N() int { return t.n }

// Flush drains buffers and returns the first error encountered.
func (t *Writer) Flush() error {
	t.w.Flush()
	if t.err != nil {
		return fmt.Errorf("trace: %w", t.err)
	}
	if err := t.w.Error(); err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	return nil
}

// Read parses a trace written by Writer.
func Read(r io.Reader) ([]cluster.RequestRecord, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("trace: reading: %w", err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("trace: empty input")
	}
	if len(rows[0]) != len(header) || rows[0][0] != header[0] {
		return nil, fmt.Errorf("trace: unrecognized header %v", rows[0])
	}
	out := make([]cluster.RequestRecord, 0, len(rows)-1)
	for lineNo, row := range rows[1:] {
		rec, err := parseRow(row)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", lineNo+2, err)
		}
		out = append(out, rec)
	}
	return out, nil
}

func parseRow(row []string) (cluster.RequestRecord, error) {
	var rec cluster.RequestRecord
	if len(row) != len(header) {
		return rec, fmt.Errorf("want %d fields, got %d", len(header), len(row))
	}
	var err error
	if rec.Device, err = strconv.Atoi(row[0]); err != nil {
		return rec, fmt.Errorf("device: %w", err)
	}
	if rec.Edge, err = strconv.Atoi(row[1]); err != nil {
		return rec, fmt.Errorf("edge: %w", err)
	}
	if rec.SentAtMs, err = strconv.ParseFloat(row[2], 64); err != nil {
		return rec, fmt.Errorf("sent_ms: %w", err)
	}
	if rec.DoneAtMs, err = strconv.ParseFloat(row[3], 64); err != nil {
		return rec, fmt.Errorf("done_ms: %w", err)
	}
	if rec.LatencyMs, err = strconv.ParseFloat(row[4], 64); err != nil {
		return rec, fmt.Errorf("latency_ms: %w", err)
	}
	switch o := cluster.Outcome(row[5]); o {
	case cluster.OutcomeOK, cluster.OutcomeMissed, cluster.OutcomeDropped:
		rec.Outcome = o
	default:
		return rec, fmt.Errorf("unknown outcome %q", row[5])
	}
	return rec, nil
}

// Summary aggregates a trace.
type Summary struct {
	Completed int
	Missed    int
	Dropped   int
	// Latency pools the completed requests' latencies.
	Latency stats.Sample
	// PerEdge counts completed requests per edge index.
	PerEdge map[int]int
}

// Summarize computes aggregate statistics over records.
func Summarize(records []cluster.RequestRecord) *Summary {
	s := &Summary{PerEdge: make(map[int]int)}
	for _, r := range records {
		switch r.Outcome {
		case cluster.OutcomeDropped:
			s.Dropped++
		case cluster.OutcomeMissed:
			s.Missed++
			s.Completed++
			s.Latency.Add(r.LatencyMs)
			s.PerEdge[r.Edge]++
		default:
			s.Completed++
			s.Latency.Add(r.LatencyMs)
			s.PerEdge[r.Edge]++
		}
	}
	return s
}

// MissRate returns misses / completed (0 when empty).
func (s *Summary) MissRate() float64 {
	if s.Completed == 0 {
		return 0
	}
	return float64(s.Missed) / float64(s.Completed)
}

// WindowPoint is one bucket of a latency time series.
type WindowPoint struct {
	// StartMs is the bucket's inclusive start time.
	StartMs float64
	// Completed and Dropped count requests finishing in the bucket.
	Completed int
	Dropped   int
	// MeanLatencyMs and P95Ms summarize completed-request latency.
	MeanLatencyMs float64
	P95Ms         float64
}

// TimeSeries buckets the trace by completion time into windows of
// windowMs, producing the "latency over time" view of a run. Records are
// bucketed by DoneAtMs; buckets are returned in time order, empty buckets
// omitted.
func TimeSeries(records []cluster.RequestRecord, windowMs float64) ([]WindowPoint, error) {
	if windowMs <= 0 {
		return nil, fmt.Errorf("trace: window must be positive, got %v", windowMs)
	}
	type bucket struct {
		completed int
		dropped   int
		lat       stats.Sample
	}
	buckets := make(map[int]*bucket)
	for _, r := range records {
		idx := int(r.DoneAtMs / windowMs)
		b := buckets[idx]
		if b == nil {
			b = &bucket{}
			buckets[idx] = b
		}
		if r.Outcome == cluster.OutcomeDropped {
			b.dropped++
		} else {
			b.completed++
			b.lat.Add(r.LatencyMs)
		}
	}
	idxs := make([]int, 0, len(buckets))
	for i := range buckets {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	out := make([]WindowPoint, 0, len(idxs))
	for _, i := range idxs {
		b := buckets[i]
		wp := WindowPoint{
			StartMs:   float64(i) * windowMs,
			Completed: b.completed,
			Dropped:   b.dropped,
		}
		if b.completed > 0 {
			wp.MeanLatencyMs = b.lat.Mean()
			wp.P95Ms = b.lat.P95()
		}
		out = append(out, wp)
	}
	return out, nil
}

// FromSpanEvents reconstructs per-request records from a structured
// event stream: every root "request" span — as the simulator emits with
// cluster.Config.Spans, and as run archives persist in events.jsonl —
// becomes one record. This is what lets tactrace analyze a run archive
// directly instead of requiring a separate -trace CSV. Span events of
// other kinds and request phase children (uplink/queue/service/downlink)
// are ignored; a request span with a malformed payload is an error, not
// a silent skip.
func FromSpanEvents(events []obs.Event) ([]cluster.RequestRecord, error) {
	var out []cluster.RequestRecord
	for _, sp := range obs.SpansFromEvents(events) {
		if sp.Name != "request" || sp.Parent != 0 {
			continue
		}
		dev, okD := sp.AttrNum("device")
		edge, okE := sp.AttrNum("edge")
		outcome, okO := sp.AttrStr("outcome")
		if !okD || !okE || !okO {
			return nil, fmt.Errorf("trace: request span in trace %d missing device/edge/outcome attrs", sp.Trace)
		}
		rec := cluster.RequestRecord{
			Device:   int(dev),
			Edge:     int(edge),
			SentAtMs: sp.StartMs,
			DoneAtMs: sp.EndMs,
		}
		switch o := cluster.Outcome(outcome); o {
		case cluster.OutcomeOK, cluster.OutcomeMissed:
			rec.Outcome = o
			rec.LatencyMs = sp.EndMs - sp.StartMs
		case cluster.OutcomeDropped:
			// Drops record their drop time but no latency, matching the
			// CSV writer's convention.
			rec.Outcome = o
		default:
			return nil, fmt.Errorf("trace: request span in trace %d has unknown outcome %q", sp.Trace, outcome)
		}
		out = append(out, rec)
	}
	return out, nil
}
