package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"taccc/internal/cluster"
	"taccc/internal/workload"
)

func sampleRecords() []cluster.RequestRecord {
	return []cluster.RequestRecord{
		{Device: 0, Edge: 1, SentAtMs: 10, DoneAtMs: 25, LatencyMs: 15, Outcome: cluster.OutcomeOK},
		{Device: 1, Edge: 0, SentAtMs: 12, DoneAtMs: 300, LatencyMs: 288, Outcome: cluster.OutcomeMissed},
		{Device: 2, Edge: 1, SentAtMs: 14, DoneAtMs: 14, Outcome: cluster.OutcomeDropped},
		{Device: 0, Edge: 1, SentAtMs: 1200, DoneAtMs: 1215, LatencyMs: 15, Outcome: cluster.OutcomeOK},
	}
}

func TestWriterReaderRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	recs := sampleRecords()
	for _, r := range recs {
		w.Record(r)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.N() != len(recs) {
		t.Fatalf("N = %d, want %d", w.N(), len(recs))
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("read %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i].Device != recs[i].Device || got[i].Edge != recs[i].Edge ||
			got[i].Outcome != recs[i].Outcome ||
			math.Abs(got[i].LatencyMs-recs[i].LatencyMs) > 1e-3 {
			t.Fatalf("record %d mismatch: %+v vs %+v", i, got[i], recs[i])
		}
	}
}

func TestReadErrors(t *testing.T) {
	cases := map[string]string{
		"empty":       "",
		"bad header":  "a,b,c\n",
		"bad device":  "device,edge,sent_ms,done_ms,latency_ms,outcome\nx,0,1,2,3,ok\n",
		"bad outcome": "device,edge,sent_ms,done_ms,latency_ms,outcome\n1,0,1,2,3,wat\n",
		"short row":   "device,edge,sent_ms,done_ms,latency_ms,outcome\n1,0,1\n",
	}
	for name, in := range cases {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize(sampleRecords())
	if s.Completed != 3 || s.Missed != 1 || s.Dropped != 1 {
		t.Fatalf("summary = %+v", s)
	}
	if math.Abs(s.MissRate()-1.0/3) > 1e-9 {
		t.Fatalf("MissRate = %v", s.MissRate())
	}
	if s.PerEdge[1] != 2 || s.PerEdge[0] != 1 {
		t.Fatalf("PerEdge = %v", s.PerEdge)
	}
	if s.Latency.N() != 3 {
		t.Fatalf("latency sample N = %d", s.Latency.N())
	}
	empty := Summarize(nil)
	if empty.MissRate() != 0 {
		t.Fatal("empty MissRate != 0")
	}
}

func TestTimeSeries(t *testing.T) {
	ts, err := TimeSeries(sampleRecords(), 1000)
	if err != nil {
		t.Fatal(err)
	}
	// Buckets: [0,1000) has 2 completed + 1 dropped; [1000,2000) has 1.
	if len(ts) != 2 {
		t.Fatalf("got %d windows, want 2: %+v", len(ts), ts)
	}
	if ts[0].StartMs != 0 || ts[0].Completed != 2 || ts[0].Dropped != 1 {
		t.Fatalf("window 0 = %+v", ts[0])
	}
	if ts[1].StartMs != 1000 || ts[1].Completed != 1 {
		t.Fatalf("window 1 = %+v", ts[1])
	}
	if ts[0].MeanLatencyMs <= 0 || ts[0].P95Ms <= 0 {
		t.Fatalf("window 0 latency stats = %+v", ts[0])
	}
	if _, err := TimeSeries(nil, 0); err == nil {
		t.Fatal("zero window accepted")
	}
}

// TestEndToEndWithSimulator runs a real simulation with a trace recorder
// and checks the trace agrees with the simulator's own Result.
func TestEndToEndWithSimulator(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	cfg := cluster.Config{
		UplinkMs: [][]float64{{5, 50}, {50, 5}},
		Devices: []workload.Device{
			{ID: 0, RateHz: 10, ComputeUnits: 1, DeadlineMs: 100},
			{ID: 1, RateHz: 10, ComputeUnits: 1, DeadlineMs: 100},
		},
		ServiceRate: []float64{1000, 1000},
		Assignment:  []int{0, 1},
		Recorder:    w,
		Seed:        3,
	}
	s, err := cluster.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(10_000)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	recs, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	sum := Summarize(recs)
	// No warmup configured, so the trace's completed count must equal
	// the result's.
	if sum.Completed != res.Completed {
		t.Fatalf("trace completed %d, result %d", sum.Completed, res.Completed)
	}
	if sum.Missed != res.DeadlineMisses {
		t.Fatalf("trace missed %d, result %d", sum.Missed, res.DeadlineMisses)
	}
	if sum.Dropped != res.Dropped {
		t.Fatalf("trace dropped %d, result %d", sum.Dropped, res.Dropped)
	}
	if math.Abs(sum.Latency.Mean()-res.Latency.Mean()) > 1e-6 {
		t.Fatalf("trace mean %v, result mean %v", sum.Latency.Mean(), res.Latency.Mean())
	}
	ts, err := TimeSeries(recs, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) < 5 {
		t.Fatalf("expected ~10 windows, got %d", len(ts))
	}
}
