package online

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"taccc/internal/assign"
	"taccc/internal/xrand"
)

func newTestController(t *testing.T) *Controller {
	t.Helper()
	c, err := NewController([]float64{10, 10})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewControllerValidation(t *testing.T) {
	if _, err := NewController(nil); err == nil {
		t.Error("empty capacity accepted")
	}
	if _, err := NewController([]float64{-1}); err == nil {
		t.Error("negative capacity accepted")
	}
	if _, err := NewController([]float64{math.NaN()}); err == nil {
		t.Error("NaN capacity accepted")
	}
}

func TestJoinPlacesCheapest(t *testing.T) {
	c := newTestController(t)
	edge, err := c.Join(1, []float64{5, 2}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if edge != 1 {
		t.Fatalf("joined edge %d, want 1", edge)
	}
	if got, _ := c.Placement(1); got != 1 {
		t.Fatalf("Placement = %d", got)
	}
	if c.NumDevices() != 1 {
		t.Fatalf("NumDevices = %d", c.NumDevices())
	}
	if c.TotalDelay() != 2 || c.MeanDelay() != 2 {
		t.Fatalf("delay accounting wrong: total %v mean %v", c.TotalDelay(), c.MeanDelay())
	}
	loads := c.Loads()
	if loads[0] != 0 || loads[1] != 3 {
		t.Fatalf("Loads = %v", loads)
	}
}

func TestJoinRespectsCapacity(t *testing.T) {
	c := newTestController(t)
	// Fill edge 1 so the next device detours to edge 0.
	if _, err := c.Join(1, []float64{5, 2}, 9); err != nil {
		t.Fatal(err)
	}
	edge, err := c.Join(2, []float64{5, 2}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if edge != 0 {
		t.Fatalf("second join went to %d, want detour to 0", edge)
	}
}

func TestJoinErrors(t *testing.T) {
	c := newTestController(t)
	if _, err := c.Join(1, []float64{1, 1}, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Join(1, []float64{1, 1}, 3); err == nil {
		t.Error("duplicate join accepted")
	}
	if _, err := c.Join(2, []float64{1}, 3); err == nil {
		t.Error("wrong cost width accepted")
	}
	if _, err := c.Join(3, []float64{1, 1}, 0); err == nil {
		t.Error("zero weight accepted")
	}
	if _, err := c.Join(4, []float64{-1, 1}, 3); err == nil {
		t.Error("negative cost accepted")
	}
	if _, err := c.Join(5, []float64{1, 1}, 100); !errors.Is(err, ErrNoCapacity) {
		t.Errorf("want ErrNoCapacity, got %v", err)
	}
}

func TestLeaveFreesCapacity(t *testing.T) {
	c := newTestController(t)
	if _, err := c.Join(1, []float64{1, 2}, 10); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Join(2, []float64{1, 2}, 10); err != nil {
		t.Fatal(err) // fits on edge 1
	}
	if err := c.Leave(1); err != nil {
		t.Fatal(err)
	}
	if c.NumDevices() != 1 {
		t.Fatalf("NumDevices = %d", c.NumDevices())
	}
	if _, err := c.Join(3, []float64{1, 2}, 10); err != nil {
		t.Fatalf("capacity not freed: %v", err)
	}
	if err := c.Leave(99); !errors.Is(err, ErrUnknownDevice) {
		t.Errorf("want ErrUnknownDevice, got %v", err)
	}
}

func TestUpdateCostsAndMigrate(t *testing.T) {
	c := newTestController(t)
	if _, err := c.Join(1, []float64{1, 5}, 3); err != nil {
		t.Fatal(err)
	}
	// Device moved: edge 1 is now much closer.
	if err := c.UpdateCosts(1, []float64{9, 2}); err != nil {
		t.Fatal(err)
	}
	moved, err := c.Migrate(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !moved {
		t.Fatal("expected migration")
	}
	if got, _ := c.Placement(1); got != 1 {
		t.Fatalf("Placement after migrate = %d", got)
	}
	if c.Migrations() != 1 {
		t.Fatalf("Migrations = %d", c.Migrations())
	}
	// Threshold prevents marginal migrations.
	if err := c.UpdateCosts(1, []float64{1.5, 2}); err != nil {
		t.Fatal(err)
	}
	moved, err = c.Migrate(1, 1.0) // gain 0.5 < threshold 1.0
	if err != nil {
		t.Fatal(err)
	}
	if moved {
		t.Fatal("migrated despite threshold")
	}
	if err := c.UpdateCosts(99, []float64{1, 1}); !errors.Is(err, ErrUnknownDevice) {
		t.Errorf("want ErrUnknownDevice, got %v", err)
	}
}

func TestSweepMigrate(t *testing.T) {
	c := newTestController(t)
	for i := 1; i <= 3; i++ {
		if _, err := c.Join(i, []float64{1, 5}, 2); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i <= 3; i++ {
		if err := c.UpdateCosts(i, []float64{5, 1}); err != nil {
			t.Fatal(err)
		}
	}
	moved, err := c.SweepMigrate(0)
	if err != nil {
		t.Fatal(err)
	}
	if moved != 3 {
		t.Fatalf("SweepMigrate moved %d, want 3", moved)
	}
	if c.MeanDelay() != 1 {
		t.Fatalf("MeanDelay = %v, want 1", c.MeanDelay())
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	c := newTestController(t)
	if _, err := c.Join(7, []float64{1, 5}, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Join(3, []float64{4, 2}, 3); err != nil {
		t.Fatal(err)
	}
	ids, in, cur, err := c.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 || ids[0] != 3 || ids[1] != 7 {
		t.Fatalf("ids = %v, want [3 7]", ids)
	}
	if in.N() != 2 || in.M() != 2 {
		t.Fatalf("instance dims %dx%d", in.N(), in.M())
	}
	if !in.Feasible(cur) {
		t.Fatal("snapshot assignment infeasible")
	}
	if in.TotalCost(cur) != c.TotalDelay() {
		t.Fatalf("snapshot cost %v != controller %v", in.TotalCost(cur), c.TotalDelay())
	}
	// Empty snapshot errors.
	empty := newTestController(t)
	if _, _, _, err := empty.Snapshot(); err == nil {
		t.Error("empty snapshot accepted")
	}
}

func TestRebalanceImprovesAndBoundsMigrations(t *testing.T) {
	c, err := NewController([]float64{10, 10, 10})
	if err != nil {
		t.Fatal(err)
	}
	// Ten devices all parked on their worst edge via later cost updates.
	for i := 0; i < 10; i++ {
		if _, err := c.Join(i, []float64{1, 1, 1}, 2); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		costs := []float64{9, 9, 9}
		costs[i%3] = 1
		if err := c.UpdateCosts(i, costs); err != nil {
			t.Fatal(err)
		}
	}
	before := c.MeanDelay()
	applied, err := c.Rebalance(assign.NewGreedy(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if applied > 4 {
		t.Fatalf("applied %d migrations, budget 4", applied)
	}
	if c.MeanDelay() >= before {
		t.Fatalf("rebalance did not improve: %v -> %v", before, c.MeanDelay())
	}
	// Unlimited budget finishes the job.
	if _, err := c.Rebalance(assign.NewGreedy(), -1); err != nil {
		t.Fatal(err)
	}
	if c.MeanDelay() > before {
		t.Fatalf("full rebalance worse than start")
	}
	// Capacity never violated.
	for j, u := range c.Utilization() {
		if u > 1+1e-9 {
			t.Fatalf("edge %d overloaded after rebalance: %v", j, u)
		}
	}
}

func TestFailEdgeEvacuates(t *testing.T) {
	c := newTestController(t)
	if _, err := c.Join(1, []float64{1, 5}, 6); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Join(2, []float64{1, 5}, 3); err != nil {
		t.Fatal(err) // edge 0 now at 9/10; device 2 on edge 0
	}
	stranded, err := c.FailEdge(0)
	if err != nil {
		t.Fatal(err)
	}
	// Edge 1 has 10 capacity: both (6 + 3) fit.
	if len(stranded) != 0 {
		t.Fatalf("stranded %v, want none", stranded)
	}
	for _, id := range []int{1, 2} {
		if e, _ := c.Placement(id); e != 1 {
			t.Fatalf("device %d on edge %d, want 1", id, e)
		}
	}
	if _, err := c.FailEdge(9); err == nil {
		t.Error("invalid edge accepted")
	}
}

func TestFailEdgeStrands(t *testing.T) {
	c, err := NewController([]float64{10, 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Join(1, []float64{1, 5}, 6); err != nil {
		t.Fatal(err)
	}
	stranded, err := c.FailEdge(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(stranded) != 1 || stranded[0] != 1 {
		t.Fatalf("stranded = %v, want [1]", stranded)
	}
	if c.NumDevices() != 0 {
		t.Fatalf("stranded device still attached")
	}
}

// Property: a controller driven by random joins/leaves/updates/migrations
// never overloads an edge and never loses track of load accounting.
func TestControllerInvariantQuick(t *testing.T) {
	f := func(seed int64) bool {
		src := xrand.New(seed)
		m := src.UniformInt(2, 4)
		capacity := make([]float64, m)
		for j := range capacity {
			capacity[j] = src.Uniform(5, 15)
		}
		c, err := NewController(capacity)
		if err != nil {
			return false
		}
		nextID := 0
		alive := map[int]bool{}
		for step := 0; step < 200; step++ {
			switch src.Intn(4) {
			case 0: // join
				costs := make([]float64, m)
				for j := range costs {
					costs[j] = src.Uniform(1, 10)
				}
				if _, err := c.Join(nextID, costs, src.Uniform(0.5, 3)); err == nil {
					alive[nextID] = true
				} else if !errors.Is(err, ErrNoCapacity) {
					return false
				}
				nextID++
			case 1: // leave
				for id := range alive {
					if err := c.Leave(id); err != nil {
						return false
					}
					delete(alive, id)
					break
				}
			case 2: // update + migrate
				for id := range alive {
					costs := make([]float64, m)
					for j := range costs {
						costs[j] = src.Uniform(1, 10)
					}
					if err := c.UpdateCosts(id, costs); err != nil {
						return false
					}
					if _, err := c.Migrate(id, 0.5); err != nil {
						return false
					}
					break
				}
			case 3: // sweep
				if _, err := c.SweepMigrate(1); err != nil {
					return false
				}
			}
			// Invariants.
			loads := c.Loads()
			for j := range loads {
				if loads[j] > capacity[j]+1e-9 || loads[j] < -1e-9 {
					return false
				}
			}
			if c.NumDevices() != len(alive) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
