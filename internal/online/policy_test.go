package online

import (
	"strings"
	"testing"

	"taccc/internal/assign"
)

// policyFixture builds a controller with three devices parked on their
// worst edge (cost updates arrived after joining).
func policyFixture(t *testing.T) *Controller {
	t.Helper()
	c, err := NewController([]float64{10, 10})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := c.Join(i, []float64{1, 5}, 2); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		if err := c.UpdateCosts(i, []float64{5, 1}); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

func TestJoinOnlyDoesNothing(t *testing.T) {
	c := policyFixture(t)
	before := c.MeanDelay()
	if err := (JoinOnly{}).Tick(0, c); err != nil {
		t.Fatal(err)
	}
	if c.MeanDelay() != before || c.Migrations() != 0 {
		t.Fatal("join-only policy acted")
	}
	if JoinOnly.Name(JoinOnly{}) != "join-only" {
		t.Fatal("name wrong")
	}
}

func TestThresholdMigrates(t *testing.T) {
	c := policyFixture(t)
	if err := (Threshold{}).Tick(0, c); err != nil {
		t.Fatal(err)
	}
	if c.MeanDelay() != 1 {
		t.Fatalf("MeanDelay = %v, want 1 after threshold sweep", c.MeanDelay())
	}
	if c.Migrations() != 3 {
		t.Fatalf("Migrations = %d, want 3", c.Migrations())
	}
}

func TestThresholdRespectsGain(t *testing.T) {
	c := policyFixture(t)
	// Gain of 10 ms exceeds the 4 ms improvement: nothing moves.
	if err := (Threshold{GainMs: 10}).Tick(0, c); err != nil {
		t.Fatal(err)
	}
	if c.Migrations() != 0 {
		t.Fatalf("Migrations = %d, want 0 under high gain bar", c.Migrations())
	}
}

func TestRebalanceTriggersOnSchedule(t *testing.T) {
	c := policyFixture(t)
	p := Rebalance{Every: 2, BudgetFrac: 1, NewAssigner: func(int) assign.Assigner { return assign.NewGreedy() }}
	// Epoch 0: no trigger (0 % 2 != 1).
	if err := p.Tick(0, c); err != nil {
		t.Fatal(err)
	}
	if c.Migrations() != 0 {
		t.Fatal("rebalanced off schedule")
	}
	// Epoch 1: triggers.
	if err := p.Tick(1, c); err != nil {
		t.Fatal(err)
	}
	if c.MeanDelay() != 1 {
		t.Fatalf("MeanDelay = %v after rebalance", c.MeanDelay())
	}
}

func TestRebalanceBudget(t *testing.T) {
	c := policyFixture(t)
	p := Rebalance{Every: 1, BudgetFrac: 0.34, NewAssigner: func(int) assign.Assigner { return assign.NewGreedy() }}
	if err := p.Tick(0, c); err != nil {
		t.Fatal(err)
	}
	// Budget 0.34 * 3 = 1 migration.
	if c.Migrations() != 1 {
		t.Fatalf("Migrations = %d, want 1 under budget", c.Migrations())
	}
}

func TestRebalanceDefaultAssigner(t *testing.T) {
	c := policyFixture(t)
	p := Rebalance{Every: 1, BudgetFrac: 1, Seed: 5}
	if err := p.Tick(0, c); err != nil {
		t.Fatal(err)
	}
	if c.MeanDelay() != 1 {
		t.Fatalf("MeanDelay = %v after default rebalance", c.MeanDelay())
	}
}

func TestRebalanceEmptyController(t *testing.T) {
	c, err := NewController([]float64{5})
	if err != nil {
		t.Fatal(err)
	}
	if err := (Rebalance{Every: 1}).Tick(0, c); err != nil {
		t.Fatal("empty controller should be a no-op, got error")
	}
}

func TestPolicyNames(t *testing.T) {
	for _, p := range []Policy{JoinOnly{}, Threshold{}, Rebalance{}} {
		if strings.TrimSpace(p.Name()) == "" {
			t.Fatalf("%T has empty name", p)
		}
	}
}
