// Package online maintains a live cluster configuration as IoT devices
// join, leave and move: the incremental counterpart of the one-shot
// assignment in internal/assign. A Controller tracks per-edge residual
// capacity and the current placement, places arrivals immediately, and
// supports bounded-migration rebalancing driven by any batch Assigner —
// the mechanism behind the paper's "cluster configuration" framing, where
// the assignment is an operating point that must be maintained, not a
// one-time computation.
package online

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"taccc/internal/assign"
	"taccc/internal/gap"
)

// ErrNoCapacity is returned when a device cannot be placed on any edge.
var ErrNoCapacity = errors.New("online: no edge has capacity for device")

// ErrUnknownDevice is returned for operations on devices not present.
var ErrUnknownDevice = errors.New("online: unknown device")

// device is the controller's view of one attached IoT device.
type device struct {
	costs  []float64 // current delay to each edge (ms)
	weight float64   // capacity consumed
	edge   int       // current placement
}

// Controller owns the live configuration. It is not safe for concurrent
// use; wrap with a mutex if shared.
type Controller struct {
	capacity []float64
	residual []float64
	devices  map[int]*device

	migrations int
}

// NewController creates a controller over m edges with the given
// capacities.
func NewController(capacity []float64) (*Controller, error) {
	if len(capacity) == 0 {
		return nil, errors.New("online: no edges")
	}
	for j, c := range capacity {
		if c < 0 || math.IsNaN(c) {
			return nil, fmt.Errorf("online: invalid capacity %v at edge %d", c, j)
		}
	}
	c := &Controller{
		capacity: append([]float64(nil), capacity...),
		residual: append([]float64(nil), capacity...),
		devices:  make(map[int]*device),
	}
	return c, nil
}

// NumEdges returns the number of edges.
func (c *Controller) NumEdges() int { return len(c.capacity) }

// NumDevices returns the number of attached devices.
func (c *Controller) NumDevices() int { return len(c.devices) }

// Migrations returns the cumulative count of placement changes applied to
// already-attached devices (joins don't count).
func (c *Controller) Migrations() int { return c.migrations }

// Placement returns the edge currently serving the device.
func (c *Controller) Placement(id int) (int, error) {
	d, ok := c.devices[id]
	if !ok {
		return 0, fmt.Errorf("online: placement of %d: %w", id, ErrUnknownDevice)
	}
	return d.edge, nil
}

// TotalDelay returns the summed current delay over attached devices.
// Devices are folded in ascending id order: FP addition is not
// associative, and summing in map-iteration order would make the last
// bits of the total vary run to run.
func (c *Controller) TotalDelay() float64 {
	ids := make([]int, 0, len(c.devices))
	for id := range c.devices {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	total := 0.0
	for _, id := range ids {
		d := c.devices[id]
		total += d.costs[d.edge]
	}
	return total
}

// MeanDelay returns the mean per-device delay (0 when empty).
func (c *Controller) MeanDelay() float64 {
	if len(c.devices) == 0 {
		return 0
	}
	return c.TotalDelay() / float64(len(c.devices))
}

// Loads returns the consumed capacity per edge.
func (c *Controller) Loads() []float64 {
	out := make([]float64, len(c.capacity))
	for j := range out {
		out[j] = c.capacity[j] - c.residual[j]
	}
	return out
}

// Utilization returns per-edge load/capacity (0 for zero-capacity edges
// with no load, +Inf otherwise).
func (c *Controller) Utilization() []float64 {
	out := make([]float64, len(c.capacity))
	for j, load := range c.Loads() {
		switch {
		case c.capacity[j] > 0:
			out[j] = load / c.capacity[j]
		case load > 0:
			out[j] = math.Inf(1)
		}
	}
	return out
}

func (c *Controller) checkCosts(costs []float64, weight float64) error {
	if len(costs) != len(c.capacity) {
		return fmt.Errorf("online: got %d costs for %d edges", len(costs), len(c.capacity))
	}
	if weight <= 0 || math.IsNaN(weight) || math.IsInf(weight, 0) {
		return fmt.Errorf("online: invalid device weight %v", weight)
	}
	for j, d := range costs {
		if d < 0 || math.IsNaN(d) {
			return fmt.Errorf("online: invalid cost %v for edge %d", d, j)
		}
	}
	return nil
}

// Join attaches a new device, placing it on the cheapest edge with
// residual capacity. Returns the chosen edge.
func (c *Controller) Join(id int, costs []float64, weight float64) (int, error) {
	if _, dup := c.devices[id]; dup {
		return 0, fmt.Errorf("online: device %d already attached", id)
	}
	if err := c.checkCosts(costs, weight); err != nil {
		return 0, err
	}
	best, bestCost := -1, math.Inf(1)
	for j := range c.capacity {
		if weight <= c.residual[j]+1e-12 && costs[j] < bestCost {
			best, bestCost = j, costs[j]
		}
	}
	if best < 0 {
		return 0, fmt.Errorf("online: joining device %d: %w", id, ErrNoCapacity)
	}
	c.devices[id] = &device{costs: append([]float64(nil), costs...), weight: weight, edge: best}
	c.residual[best] -= weight
	return best, nil
}

// Leave detaches a device and frees its capacity.
func (c *Controller) Leave(id int) error {
	d, ok := c.devices[id]
	if !ok {
		return fmt.Errorf("online: leaving device %d: %w", id, ErrUnknownDevice)
	}
	c.residual[d.edge] += d.weight
	delete(c.devices, id)
	return nil
}

// UpdateCosts replaces a device's delay vector (e.g. after it moved). The
// placement is unchanged; call Migrate or Rebalance to act on it.
func (c *Controller) UpdateCosts(id int, costs []float64) error {
	d, ok := c.devices[id]
	if !ok {
		return fmt.Errorf("online: updating device %d: %w", id, ErrUnknownDevice)
	}
	if err := c.checkCosts(costs, d.weight); err != nil {
		return err
	}
	copy(d.costs, costs)
	return nil
}

// Migrate moves one device to the cheapest feasible edge if that improves
// its delay by more than absGainMs. It reports whether a migration
// happened.
func (c *Controller) Migrate(id int, absGainMs float64) (bool, error) {
	d, ok := c.devices[id]
	if !ok {
		return false, fmt.Errorf("online: migrating device %d: %w", id, ErrUnknownDevice)
	}
	best, bestCost := d.edge, d.costs[d.edge]
	for j := range c.capacity {
		if j == d.edge {
			continue
		}
		if d.weight <= c.residual[j]+1e-12 && d.costs[j] < bestCost {
			best, bestCost = j, d.costs[j]
		}
	}
	if best == d.edge || d.costs[d.edge]-bestCost <= absGainMs {
		return false, nil
	}
	c.residual[d.edge] += d.weight
	c.residual[best] -= d.weight
	d.edge = best
	c.migrations++
	return true, nil
}

// SweepMigrate runs Migrate over every device (ascending ID for
// determinism) and returns the number of migrations performed.
func (c *Controller) SweepMigrate(absGainMs float64) (int, error) {
	moved := 0
	for _, id := range c.sortedIDs() {
		did, err := c.Migrate(id, absGainMs)
		if err != nil {
			return moved, err
		}
		if did {
			moved++
		}
	}
	return moved, nil
}

// Snapshot exports the live state as a GAP instance plus the current
// assignment. The i-th row of the instance corresponds to ids[i].
func (c *Controller) Snapshot() (ids []int, in *gap.Instance, current *gap.Assignment, err error) {
	if len(c.devices) == 0 {
		return nil, nil, nil, errors.New("online: snapshot of empty controller")
	}
	ids = c.sortedIDs()
	n, m := len(ids), len(c.capacity)
	cost := make([][]float64, n)
	weight := make([][]float64, n)
	of := make([]int, n)
	for k, id := range ids {
		d := c.devices[id]
		cost[k] = append([]float64(nil), d.costs...)
		weight[k] = make([]float64, m)
		for j := range weight[k] {
			weight[k][j] = d.weight
		}
		of[k] = d.edge
	}
	in, err = gap.NewInstance(cost, weight, append([]float64(nil), c.capacity...))
	if err != nil {
		return nil, nil, nil, err
	}
	current, err = gap.NewAssignment(in, of)
	if err != nil {
		return nil, nil, nil, err
	}
	return ids, in, current, nil
}

// Rebalance re-solves the configuration with the given batch assigner and
// applies at most maxMigrations placement changes, chosen by largest
// per-device delay gain. maxMigrations < 0 means unlimited. It returns the
// number of migrations applied.
//
// Applying a subset of a feasible target assignment can transiently need
// ordering to respect capacity; moves are applied greedily and any move
// that would overload its target at apply time is skipped, so the
// controller never enters an overloaded state.
func (c *Controller) Rebalance(a assign.Assigner, maxMigrations int) (int, error) {
	ids, in, current, err := c.Snapshot()
	if err != nil {
		return 0, err
	}
	target, err := a.Assign(in)
	if err != nil {
		return 0, fmt.Errorf("online: rebalance solve: %w", err)
	}
	type move struct {
		id   int
		to   int
		gain float64
	}
	var moves []move
	for k, id := range ids {
		if target.Of[k] == current.Of[k] {
			continue
		}
		d := c.devices[id]
		moves = append(moves, move{
			id:   id,
			to:   target.Of[k],
			gain: d.costs[d.edge] - d.costs[target.Of[k]],
		})
	}
	sort.SliceStable(moves, func(x, y int) bool { return moves[x].gain > moves[y].gain })
	if maxMigrations >= 0 && len(moves) > maxMigrations {
		moves = moves[:maxMigrations]
	}
	applied := 0
	// Two passes: releases first aren't separable (each move both
	// releases and claims), so iterate until fixpoint to let chains
	// apply in a capacity-safe order.
	for progress := true; progress; {
		progress = false
		for i := range moves {
			m := &moves[i]
			if m.id < 0 {
				continue
			}
			d := c.devices[m.id]
			if d.edge == m.to {
				m.id = -1
				continue
			}
			if d.weight > c.residual[m.to]+1e-12 {
				continue // blocked for now; maybe a later release frees it
			}
			c.residual[d.edge] += d.weight
			c.residual[m.to] -= d.weight
			d.edge = m.to
			c.migrations++
			applied++
			m.id = -1
			progress = true
		}
	}
	return applied, nil
}

// FailEdge evacuates an edge: its capacity drops to zero and every device
// on it is re-placed on the cheapest feasible edge. Devices that cannot be
// re-placed are detached and their IDs returned.
func (c *Controller) FailEdge(j int) (stranded []int, err error) {
	if j < 0 || j >= len(c.capacity) {
		return nil, fmt.Errorf("online: failing invalid edge %d", j)
	}
	c.capacity[j] = 0
	c.residual[j] = 0
	for _, id := range c.sortedIDs() {
		d := c.devices[id]
		if d.edge != j {
			continue
		}
		best, bestCost := -1, math.Inf(1)
		for e := range c.capacity {
			if e == j {
				continue
			}
			if d.weight <= c.residual[e]+1e-12 && d.costs[e] < bestCost {
				best, bestCost = e, d.costs[e]
			}
		}
		if best < 0 {
			stranded = append(stranded, id)
			delete(c.devices, id)
			continue
		}
		c.residual[best] -= d.weight
		d.edge = best
		c.migrations++
	}
	return stranded, nil
}

func (c *Controller) sortedIDs() []int {
	ids := make([]int, 0, len(c.devices))
	for id := range c.devices {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}
