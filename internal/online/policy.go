package online

import (
	"fmt"

	"taccc/internal/assign"
)

// Policy decides what maintenance a controller performs at each epoch of a
// dynamic deployment. Policies are invoked by the caller's epoch loop
// after device costs have been refreshed (UpdateCosts) and churn applied.
type Policy interface {
	// Name labels the policy in reports.
	Name() string
	// Tick performs this epoch's maintenance on the controller.
	Tick(epoch int, c *Controller) error
}

// JoinOnly performs no maintenance: devices stay where Join put them (the
// "configure once" strawman baseline).
type JoinOnly struct{}

// Name implements Policy.
func (JoinOnly) Name() string { return "join-only" }

// Tick implements Policy.
func (JoinOnly) Tick(int, *Controller) error { return nil }

// Threshold migrates every device whose best edge beats its current one by
// more than GainMs, every epoch. Cheap, reactive, migration-heavy.
type Threshold struct {
	// GainMs is the minimum improvement that justifies a migration
	// (0 uses 0.5 ms).
	GainMs float64
}

// Name implements Policy.
func (t Threshold) Name() string { return "threshold" }

// Tick implements Policy.
func (t Threshold) Tick(_ int, c *Controller) error {
	gain := t.GainMs
	if gain <= 0 {
		gain = 0.5
	}
	_, err := c.SweepMigrate(gain)
	return err
}

// Rebalance re-solves the configuration with a batch assigner every Every
// epochs under a migration budget — the planned, bounded-churn policy.
type Rebalance struct {
	// Every triggers a rebalance when epoch % Every == Every-1
	// (default 2).
	Every int
	// BudgetFrac caps migrations at this fraction of attached devices
	// (default 0.2).
	BudgetFrac float64
	// NewAssigner builds the solver for an epoch; nil uses Q-learning
	// seeded by (Seed, epoch).
	NewAssigner func(epoch int) assign.Assigner
	// Seed seeds the default assigner.
	Seed int64
}

// Name implements Policy.
func (r Rebalance) Name() string { return "rebalance" }

// Tick implements Policy.
func (r Rebalance) Tick(epoch int, c *Controller) error {
	every := r.Every
	if every <= 0 {
		every = 2
	}
	if epoch%every != every-1 || c.NumDevices() == 0 {
		return nil
	}
	frac := r.BudgetFrac
	if frac <= 0 {
		frac = 0.2
	}
	budget := int(float64(c.NumDevices()) * frac)
	var a assign.Assigner
	if r.NewAssigner != nil {
		a = r.NewAssigner(epoch)
	} else {
		q := assign.NewQLearning(r.Seed + int64(epoch))
		q.Params.Episodes = 150
		a = q
	}
	if _, err := c.Rebalance(a, budget); err != nil {
		// A transiently unsolvable snapshot skips this round; any
		// other error propagates.
		return fmt.Errorf("online: rebalance tick (epoch %d): %w", epoch, err)
	}
	return nil
}
