package topology

import (
	"fmt"
	"math"

	"taccc/internal/xrand"
)

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := NewGraph()
	c.nodes = make([]Node, len(g.nodes))
	copy(c.nodes, g.nodes)
	c.adj = make([][]halfLink, len(g.adj))
	for i, hs := range g.adj {
		c.adj[i] = make([]halfLink, len(hs))
		copy(c.adj[i], hs)
	}
	for name, id := range g.byName {
		c.byName[name] = id
	}
	c.links = g.links
	return c
}

// HierarchicalInfra builds the infrastructure of a Hierarchical topology
// (routers, gateways, edge servers) without any IoT devices, for scenarios
// that attach mobile devices epoch by epoch via AttachIoTAt.
func HierarchicalInfra(cfg Config) (*Graph, error) {
	cfg = cfg.withDefaults()
	if cfg.NumEdge <= 0 || cfg.NumGateways <= 0 {
		return nil, fmt.Errorf("topology: infra needs NumEdge and NumGateways > 0, got %d, %d", cfg.NumEdge, cfg.NumGateways)
	}
	if cfg.NumRouters <= 0 {
		cfg.NumRouters = cfg.NumEdge
	}
	src := xrand.NewSplit(cfg.Seed, "hierarchical-infra")
	g := NewGraph()
	routers := make([]NodeID, cfg.NumRouters)
	for r := range routers {
		routers[r] = g.MustAddNode(KindRouter, fmt.Sprintf("router-%d", r),
			src.Uniform(0, cfg.AreaMeters), src.Uniform(0, cfg.AreaMeters))
		if r > 0 {
			parent := routers[src.Intn(r)]
			g.MustAddLink(routers[r], parent, cfg.Links.wired(g, routers[r], parent), cfg.Links.WiredBandwidthMbps)
		}
	}
	for gw := 0; gw < cfg.NumGateways; gw++ {
		id := g.MustAddNode(KindGateway, fmt.Sprintf("gw-%d", gw),
			src.Uniform(0, cfg.AreaMeters), src.Uniform(0, cfg.AreaMeters))
		best, bestD := routers[0], math.Inf(1)
		for _, r := range routers {
			if d := g.Dist(id, r); d < bestD {
				best, bestD = r, d
			}
		}
		g.MustAddLink(id, best, cfg.Links.wired(g, id, best), cfg.Links.WiredBandwidthMbps)
	}
	placeEdges(g, cfg, routers, src)
	if !g.Connected() {
		return nil, fmt.Errorf("topology: generated infrastructure not connected")
	}
	return g, nil
}

// AttachIoTAt adds one IoT node per coordinate pair, each wired to its
// nearest gateway with a wireless link. Names are iot-0..iot-(k-1); the
// graph must not already contain IoT nodes with those names.
func AttachIoTAt(g *Graph, xs, ys []float64, links LinkParams, seed int64) error {
	if len(xs) != len(ys) {
		return fmt.Errorf("topology: AttachIoTAt got %d xs and %d ys", len(xs), len(ys))
	}
	gateways := g.NodesOfKind(KindGateway)
	if len(gateways) == 0 {
		return fmt.Errorf("topology: AttachIoTAt on a graph with no gateways")
	}
	if (links == LinkParams{}) {
		links = DefaultLinkParams()
	}
	src := xrand.NewSplit(seed, "attach-iot")
	for i := range xs {
		id, err := g.AddNode(KindIoT, fmt.Sprintf("iot-%d", i), xs[i], ys[i])
		if err != nil {
			return err
		}
		best, bestD := gateways[0], math.Inf(1)
		for _, gw := range gateways {
			if d := g.Dist(id, gw); d < bestD {
				best, bestD = gw, d
			}
		}
		if err := g.AddLink(id, best, links.wireless(src), links.WirelessBandwidthMbps); err != nil {
			return err
		}
	}
	return nil
}
