package topology

import (
	"bytes"
	"testing"
)

func TestClone(t *testing.T) {
	g, err := Hierarchical(baseCfg(8), PlaceUniform)
	if err != nil {
		t.Fatal(err)
	}
	c := g.Clone()
	var bg, bc bytes.Buffer
	if err := g.WriteJSON(&bg); err != nil {
		t.Fatal(err)
	}
	if err := c.WriteJSON(&bc); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bg.Bytes(), bc.Bytes()) {
		t.Fatal("clone differs from original")
	}
	// Mutating the clone must not affect the original.
	c.MustAddNode(KindRouter, "extra", 0, 0)
	if g.NumNodes() == c.NumNodes() {
		t.Fatal("clone shares node storage")
	}
	if _, ok := g.NodeByName("extra"); ok {
		t.Fatal("clone shares name index")
	}
}

func TestHierarchicalInfraAndAttach(t *testing.T) {
	cfg := Config{NumIoT: 1, NumEdge: 4, NumGateways: 6, Seed: 3}
	infra, err := HierarchicalInfra(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(infra.NodesOfKind(KindIoT)); got != 0 {
		t.Fatalf("infra has %d IoT nodes, want 0", got)
	}
	if got := len(infra.NodesOfKind(KindEdge)); got != 4 {
		t.Fatalf("infra has %d edges, want 4", got)
	}
	if !infra.Connected() {
		t.Fatal("infra not connected")
	}

	g := infra.Clone()
	xs := []float64{100, 2000, 4000}
	ys := []float64{100, 2500, 4900}
	if err := AttachIoTAt(g, xs, ys, LinkParams{}, 7); err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("attached graph invalid: %v", err)
	}
	dm := NewDelayMatrix(g, LatencyCost)
	if dm.NumIoT() != 3 || dm.NumEdge() != 4 {
		t.Fatalf("matrix dims %dx%d", dm.NumIoT(), dm.NumEdge())
	}
	// Infra untouched.
	if len(infra.NodesOfKind(KindIoT)) != 0 {
		t.Fatal("attaching to clone mutated infra")
	}
}

func TestAttachIoTAtErrors(t *testing.T) {
	cfg := Config{NumIoT: 1, NumEdge: 2, NumGateways: 2, Seed: 1}
	infra, err := HierarchicalInfra(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := AttachIoTAt(infra.Clone(), []float64{1, 2}, []float64{1}, LinkParams{}, 1); err == nil {
		t.Error("mismatched coordinate lengths accepted")
	}
	empty := NewGraph()
	if err := AttachIoTAt(empty, []float64{1}, []float64{1}, LinkParams{}, 1); err == nil {
		t.Error("graph without gateways accepted")
	}
	g := infra.Clone()
	if err := AttachIoTAt(g, []float64{1}, []float64{1}, LinkParams{}, 1); err != nil {
		t.Fatal(err)
	}
	// Attaching again with the same names must fail.
	if err := AttachIoTAt(g, []float64{2}, []float64{2}, LinkParams{}, 1); err == nil {
		t.Error("duplicate IoT names accepted")
	}
}

func TestHierarchicalInfraValidation(t *testing.T) {
	if _, err := HierarchicalInfra(Config{NumEdge: 0, NumGateways: 2}); err == nil {
		t.Error("NumEdge 0 accepted")
	}
	if _, err := HierarchicalInfra(Config{NumEdge: 2, NumGateways: 0}); err == nil {
		t.Error("NumGateways 0 accepted")
	}
}
