package topology

import (
	"fmt"
	"math"
)

// Flow is one IoT device's steady-state traffic demand toward its edge
// server.
type Flow struct {
	// IoT is the source node.
	IoT NodeID
	// RateHz is the request rate; PayloadKB the mean uplink payload.
	RateHz    float64
	PayloadKB float64
}

// Mbps returns the flow's offered load in megabits per second.
func (f Flow) Mbps() float64 {
	// kB/req * 8 = kbit/req; * rate = kbit/s; / 1000 = Mbit/s.
	return f.PayloadKB * 8 * f.RateHz / 1000
}

// LinkLoad reports the utilization of one link under a traffic assignment.
type LinkLoad struct {
	Link Link
	// Mbps is the total offered load (both directions aggregated; the
	// uplink direction dominates for IoT traffic).
	Mbps float64
	// Utilization is Mbps / bandwidth (0 for links with unspecified
	// bandwidth).
	Utilization float64
}

// CongestionResult is the outcome of evaluating an assignment at link
// granularity.
type CongestionResult struct {
	// DelayMs[k] is flow k's effective path delay including queueing
	// inflation on loaded links.
	DelayMs []float64
	// Links lists every link that carries traffic, with utilization.
	Links []LinkLoad
	// Overloaded lists links whose offered load meets or exceeds their
	// bandwidth.
	Overloaded []Link
}

// MeanDelayMs returns the mean effective delay across flows.
func (r *CongestionResult) MeanDelayMs() float64 {
	if len(r.DelayMs) == 0 {
		return 0
	}
	sum := 0.0
	for _, d := range r.DelayMs {
		sum += d
	}
	return sum / float64(len(r.DelayMs))
}

// MaxUtilization returns the highest link utilization observed.
func (r *CongestionResult) MaxUtilization() float64 {
	max := 0.0
	for _, l := range r.Links {
		if l.Utilization > max {
			max = l.Utilization
		}
	}
	return max
}

// utilCap bounds the queueing multiplier: utilization is clamped to this
// value in the 1/(1-u) factor so overloaded links produce large-but-finite
// delays (they are also reported in Overloaded).
const utilCap = 0.95

// EvaluateCongestion routes every flow along its shortest path (by
// configured latency) to the assigned edge, accumulates per-link load and
// computes effective delays with an M/M/1-style transmission inflation:
//
//	linkDelay = latency + transmission(payload) / (1 - min(util, 0.95))
//
// The delay matrix supplies the edge columns; assign[k] selects the column
// serving flow k. Delay-matrix-driven assigners are blind to this shared-
// link contention, which is exactly what the F9 experiment measures.
func EvaluateCongestion(g *Graph, dm *DelayMatrix, flows []Flow, assignment []int) (*CongestionResult, error) {
	if len(flows) != len(assignment) {
		return nil, fmt.Errorf("topology: %d flows but %d assignments", len(flows), len(assignment))
	}
	// Shortest-path trees from each used edge node.
	trees := make(map[int]*ShortestPaths)
	for _, col := range assignment {
		if col < 0 || col >= len(dm.Edge) {
			return nil, fmt.Errorf("topology: assignment column %d out of range", col)
		}
		if _, ok := trees[col]; !ok {
			trees[col] = g.Dijkstra(dm.Edge[col], LatencyCost)
		}
	}
	// Accumulate per-link load walking each flow's path.
	load := make(map[linkKey]float64)
	paths := make([][]NodeID, len(flows))
	for k, f := range flows {
		sp := trees[assignment[k]]
		path := sp.PathTo(f.IoT)
		if path == nil {
			return nil, fmt.Errorf("topology: flow %d cannot reach edge column %d", k, assignment[k])
		}
		paths[k] = path
		mbps := f.Mbps()
		for h := 0; h+1 < len(path); h++ {
			load[normKey(path[h], path[h+1])] += mbps
		}
	}
	res := &CongestionResult{DelayMs: make([]float64, len(flows))}
	utils := make(map[linkKey]float64, len(load))
	for _, key := range sortedLinkKeys(load) {
		mbps := load[key]
		l, ok := g.LinkBetween(key.a, key.b)
		if !ok {
			return nil, fmt.Errorf("topology: internal error: path uses missing link %d-%d", key.a, key.b)
		}
		util := 0.0
		if l.BandwidthMbps > 0 {
			util = mbps / l.BandwidthMbps
		}
		utils[key] = util
		res.Links = append(res.Links, LinkLoad{Link: l, Mbps: mbps, Utilization: util})
		if l.BandwidthMbps > 0 && util >= 1 {
			res.Overloaded = append(res.Overloaded, l)
		}
	}
	// Effective per-flow delays.
	for k, f := range flows {
		path := paths[k]
		total := 0.0
		for h := 0; h+1 < len(path); h++ {
			l, _ := g.LinkBetween(path[h], path[h+1])
			total += l.LatencyMs
			if l.BandwidthMbps > 0 {
				bits := f.PayloadKB * 8 * 1000
				tx := bits / (l.BandwidthMbps * 1000)
				u := utils[normKey(path[h], path[h+1])]
				if u > utilCap {
					u = utilCap
				}
				total += tx / (1 - u)
			}
		}
		res.DelayMs[k] = total
	}
	return res, nil
}

// CongestionAwareDelayMatrix rebuilds an IoT-by-edge delay matrix whose
// entries include the queueing inflation the *current* assignment induces:
// entry (i, j) is the effective delay device i would see on edge j given
// everyone else's traffic stays put. Iterating assignment and matrix
// refresh a few rounds yields congestion-aware configurations (see
// experiment F9).
func CongestionAwareDelayMatrix(g *Graph, dm *DelayMatrix, flows []Flow, assignment []int) (*DelayMatrix, error) {
	if len(flows) != len(assignment) {
		return nil, fmt.Errorf("topology: %d flows but %d assignments", len(flows), len(assignment))
	}
	// Current per-link utilization from the standing assignment.
	cur, err := EvaluateCongestion(g, dm, flows, assignment)
	if err != nil {
		return nil, err
	}
	utils := make(map[linkKey]float64, len(cur.Links))
	for _, ll := range cur.Links {
		utils[normKey(ll.Link.A, ll.Link.B)] = ll.Utilization
	}
	out := &DelayMatrix{
		IoT:     append([]NodeID(nil), dm.IoT...),
		Edge:    append([]NodeID(nil), dm.Edge...),
		DelayMs: make([][]float64, len(dm.IoT)),
	}
	// Shortest-path trees from every edge (latency cost, matching the
	// routing EvaluateCongestion uses).
	trees := make([]*ShortestPaths, len(dm.Edge))
	for j, e := range dm.Edge {
		trees[j] = g.Dijkstra(e, LatencyCost)
	}
	iotRow := make(map[NodeID]int, len(dm.IoT))
	for i, id := range dm.IoT {
		iotRow[id] = i
	}
	for i := range out.DelayMs {
		out.DelayMs[i] = make([]float64, len(dm.Edge))
	}
	for k, f := range flows {
		i, ok := iotRow[f.IoT]
		if !ok {
			return nil, fmt.Errorf("topology: flow %d source %d not in delay matrix", k, f.IoT)
		}
		for j := range dm.Edge {
			path := trees[j].PathTo(f.IoT)
			if path == nil {
				out.DelayMs[i][j] = math.Inf(1)
				continue
			}
			total := 0.0
			for h := 0; h+1 < len(path); h++ {
				l, _ := g.LinkBetween(path[h], path[h+1])
				total += l.LatencyMs
				if l.BandwidthMbps > 0 {
					bits := f.PayloadKB * 8 * 1000
					tx := bits / (l.BandwidthMbps * 1000)
					u := utils[normKey(path[h], path[h+1])]
					if u > utilCap {
						u = utilCap
					}
					total += tx / (1 - u)
				}
			}
			out.DelayMs[i][j] = total
		}
	}
	return out, nil
}
