package topology

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// graphJSON is the wire format for Graph.
type graphJSON struct {
	Nodes []nodeJSON `json:"nodes"`
	Links []linkJSON `json:"links"`
}

type nodeJSON struct {
	Kind string  `json:"kind"`
	Name string  `json:"name"`
	X    float64 `json:"x"`
	Y    float64 `json:"y"`
}

type linkJSON struct {
	A         string  `json:"a"`
	B         string  `json:"b"`
	LatencyMs float64 `json:"latency_ms"`
	Bandwidth float64 `json:"bandwidth_mbps"`
}

func kindFromString(s string) (NodeKind, error) {
	switch s {
	case "iot":
		return KindIoT, nil
	case "gateway":
		return KindGateway, nil
	case "router":
		return KindRouter, nil
	case "edge":
		return KindEdge, nil
	case "cloud":
		return KindCloud, nil
	default:
		return 0, fmt.Errorf("topology: unknown node kind %q", s)
	}
}

// WriteJSON serializes the graph. Node order and link order are stable so
// output is byte-for-byte reproducible.
func (g *Graph) WriteJSON(w io.Writer) error {
	var gj graphJSON
	for _, n := range g.nodes {
		gj.Nodes = append(gj.Nodes, nodeJSON{Kind: n.Kind.String(), Name: n.Name, X: n.X, Y: n.Y})
	}
	links := g.Links()
	sort.Slice(links, func(i, j int) bool {
		if links[i].A != links[j].A {
			return links[i].A < links[j].A
		}
		return links[i].B < links[j].B
	})
	for _, l := range links {
		gj.Links = append(gj.Links, linkJSON{
			A: g.nodes[l.A].Name, B: g.nodes[l.B].Name,
			LatencyMs: l.LatencyMs, Bandwidth: l.BandwidthMbps,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(gj)
}

// ReadJSON parses a graph previously written by WriteJSON.
func ReadJSON(r io.Reader) (*Graph, error) {
	var gj graphJSON
	if err := json.NewDecoder(r).Decode(&gj); err != nil {
		return nil, fmt.Errorf("topology: decoding graph: %w", err)
	}
	g := NewGraph()
	for _, n := range gj.Nodes {
		kind, err := kindFromString(n.Kind)
		if err != nil {
			return nil, err
		}
		if _, err := g.AddNode(kind, n.Name, n.X, n.Y); err != nil {
			return nil, err
		}
	}
	for _, l := range gj.Links {
		a, ok := g.byName[l.A]
		if !ok {
			return nil, fmt.Errorf("topology: link references unknown node %q", l.A)
		}
		b, ok := g.byName[l.B]
		if !ok {
			return nil, fmt.Errorf("topology: link references unknown node %q", l.B)
		}
		if err := g.AddLink(a, b, l.LatencyMs, l.Bandwidth); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// WriteDOT emits a Graphviz representation for visual inspection. Nodes are
// colored by kind; link labels carry latency.
func (g *Graph) WriteDOT(w io.Writer) error {
	var b strings.Builder
	b.WriteString("graph topology {\n")
	b.WriteString("  layout=neato;\n  overlap=false;\n")
	for _, n := range g.nodes {
		color := map[NodeKind]string{
			KindIoT: "lightblue", KindGateway: "orange", KindRouter: "gray",
			KindEdge: "green", KindCloud: "purple",
		}[n.Kind]
		fmt.Fprintf(&b, "  %q [style=filled, fillcolor=%s, pos=\"%.1f,%.1f\"];\n",
			n.Name, color, n.X/100, n.Y/100)
	}
	for _, l := range g.Links() {
		fmt.Fprintf(&b, "  %q -- %q [label=\"%.2fms\"];\n",
			g.nodes[l.A].Name, g.nodes[l.B].Name, l.LatencyMs)
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}
