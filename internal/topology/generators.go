package topology

import (
	"fmt"
	"math"
	"sort"

	"taccc/internal/xrand"
)

// LinkParams controls how generators assign latency and bandwidth to the
// links they create. All latencies are milliseconds, bandwidths Mbit/s.
type LinkParams struct {
	// WiredBaseMs is the fixed per-hop latency of wired links.
	WiredBaseMs float64
	// WiredPerKmMs adds distance-proportional propagation delay.
	WiredPerKmMs float64
	// WirelessBaseMs is the fixed latency of the IoT-to-gateway hop.
	WirelessBaseMs float64
	// WirelessJitterMs adds a uniform [0, jitter) term per wireless link,
	// modeling interference and contention differences between devices.
	WirelessJitterMs float64
	// WiredBandwidthMbps and WirelessBandwidthMbps set link capacities.
	WiredBandwidthMbps    float64
	WirelessBandwidthMbps float64
}

// DefaultLinkParams returns parameters typical of a metropolitan edge
// deployment: sub-millisecond wired hops, a few milliseconds of wireless
// access latency.
func DefaultLinkParams() LinkParams {
	return LinkParams{
		WiredBaseMs:           0.5,
		WiredPerKmMs:          0.005,
		WirelessBaseMs:        2.0,
		WirelessJitterMs:      2.0,
		WiredBandwidthMbps:    1000,
		WirelessBandwidthMbps: 50,
	}
}

func (p LinkParams) wired(g *Graph, a, b NodeID) float64 {
	return p.WiredBaseMs + p.WiredPerKmMs*g.Dist(a, b)/1000
}

func (p LinkParams) wireless(src *xrand.Source) float64 {
	return p.WirelessBaseMs + src.Float64()*p.WirelessJitterMs
}

// Config captures the sizing shared by all generators.
type Config struct {
	// NumIoT, NumEdge, NumGateways, NumRouters size the deployment.
	// Generators that do not use routers ignore NumRouters.
	NumIoT      int
	NumEdge     int
	NumGateways int
	NumRouters  int
	// AreaMeters is the side of the square deployment region.
	AreaMeters float64
	// Links controls latency/bandwidth assignment; the zero value is
	// replaced by DefaultLinkParams.
	Links LinkParams
	// Seed drives all randomness; equal configs produce equal graphs.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.AreaMeters == 0 {
		c.AreaMeters = 5000
	}
	if (c.Links == LinkParams{}) {
		c.Links = DefaultLinkParams()
	}
	return c
}

func (c Config) validate() error {
	if c.NumIoT <= 0 {
		return fmt.Errorf("topology: config needs NumIoT > 0, got %d", c.NumIoT)
	}
	if c.NumEdge <= 0 {
		return fmt.Errorf("topology: config needs NumEdge > 0, got %d", c.NumEdge)
	}
	if c.NumGateways <= 0 {
		return fmt.Errorf("topology: config needs NumGateways > 0, got %d", c.NumGateways)
	}
	if c.AreaMeters <= 0 {
		return fmt.Errorf("topology: config needs AreaMeters > 0, got %v", c.AreaMeters)
	}
	return nil
}

// Placement selects how IoT devices are scattered over the area.
type Placement int

// Placement strategies.
const (
	// PlaceUniform scatters devices uniformly at random.
	PlaceUniform Placement = iota + 1
	// PlaceHotspot concentrates devices around a few Gaussian hotspots,
	// modeling crowds/intersections.
	PlaceHotspot
)

// attachIoT places cfg.NumIoT devices and links each to its nearest
// gateway with a wireless link. Placement is uniform or hotspot-clustered.
func attachIoT(g *Graph, cfg Config, place Placement, src *xrand.Source) {
	gateways := g.NodesOfKind(KindGateway)
	var hotspots [][2]float64
	if place == PlaceHotspot {
		k := len(gateways)/3 + 1
		for h := 0; h < k; h++ {
			hotspots = append(hotspots, [2]float64{
				src.Uniform(0, cfg.AreaMeters), src.Uniform(0, cfg.AreaMeters),
			})
		}
	}
	for i := 0; i < cfg.NumIoT; i++ {
		var x, y float64
		switch place {
		case PlaceHotspot:
			h := hotspots[src.Intn(len(hotspots))]
			sigma := cfg.AreaMeters / 20
			x = clamp(src.Normal(h[0], sigma), 0, cfg.AreaMeters)
			y = clamp(src.Normal(h[1], sigma), 0, cfg.AreaMeters)
		default:
			x = src.Uniform(0, cfg.AreaMeters)
			y = src.Uniform(0, cfg.AreaMeters)
		}
		id := g.MustAddNode(KindIoT, fmt.Sprintf("iot-%d", i), x, y)
		best, bestDist := gateways[0], math.Inf(1)
		for _, gw := range gateways {
			if d := g.Dist(id, gw); d < bestDist {
				best, bestDist = gw, d
			}
		}
		g.MustAddLink(id, best, cfg.Links.wireless(src), cfg.Links.WirelessBandwidthMbps)
	}
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// connectInfra makes an infrastructure node set connected by adding
// minimum-distance links between components (a lightweight MST repair).
func connectInfra(g *Graph, cfg Config, ids []NodeID) {
	if len(ids) == 0 {
		return
	}
	comp := components(g, ids)
	for len(comp) > 1 {
		// Join the first component to its nearest other component.
		bestA, bestB := NodeID(-1), NodeID(-1)
		bestD := math.Inf(1)
		for _, a := range comp[0] {
			for _, other := range comp[1:] {
				for _, b := range other {
					if d := g.Dist(a, b); d < bestD {
						bestA, bestB, bestD = a, b, d
					}
				}
			}
		}
		g.MustAddLink(bestA, bestB, cfg.Links.wired(g, bestA, bestB), cfg.Links.WiredBandwidthMbps)
		comp = components(g, ids)
	}
}

// components returns the connected components of the subgraph induced by
// ids, as slices of node IDs.
func components(g *Graph, ids []NodeID) [][]NodeID {
	inSet := make(map[NodeID]bool, len(ids))
	for _, id := range ids {
		inSet[id] = true
	}
	seen := make(map[NodeID]bool, len(ids))
	var out [][]NodeID
	for _, start := range ids {
		if seen[start] {
			continue
		}
		var comp []NodeID
		stack := []NodeID{start}
		seen[start] = true
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, u)
			for _, v := range g.Neighbors(u) {
				if inSet[v] && !seen[v] {
					seen[v] = true
					stack = append(stack, v)
				}
			}
		}
		out = append(out, comp)
	}
	return out
}

// placeEdges co-locates edge servers with a subset of infrastructure nodes
// (gateways or routers), attaching each with a short wired link.
func placeEdges(g *Graph, cfg Config, hosts []NodeID, src *xrand.Source) {
	if len(hosts) == 0 {
		panic("topology: placeEdges with no hosts")
	}
	perm := src.Perm(len(hosts))
	for e := 0; e < cfg.NumEdge; e++ {
		host := hosts[perm[e%len(hosts)]]
		hn := g.Node(host)
		id := g.MustAddNode(KindEdge, fmt.Sprintf("edge-%d", e), hn.X, hn.Y)
		g.MustAddLink(id, host, cfg.Links.WiredBaseMs/2, cfg.Links.WiredBandwidthMbps)
	}
}

// Hierarchical builds the canonical edge deployment: a tree of routers with
// an optional cloud root, gateways hanging off routers, edge servers
// co-located with routers, and IoT devices attached to their nearest
// gateway. This is the default topology for all experiments.
func Hierarchical(cfg Config, place Placement) (*Graph, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.NumRouters <= 0 {
		cfg.NumRouters = cfg.NumEdge
	}
	src := xrand.NewSplit(cfg.Seed, "hierarchical")
	g := NewGraph()

	routers := make([]NodeID, cfg.NumRouters)
	for r := range routers {
		routers[r] = g.MustAddNode(KindRouter, fmt.Sprintf("router-%d", r),
			src.Uniform(0, cfg.AreaMeters), src.Uniform(0, cfg.AreaMeters))
		if r > 0 {
			// Random-tree backbone: attach to a uniformly chosen
			// earlier router.
			parent := routers[src.Intn(r)]
			g.MustAddLink(routers[r], parent, cfg.Links.wired(g, routers[r], parent), cfg.Links.WiredBandwidthMbps)
		}
	}
	for gw := 0; gw < cfg.NumGateways; gw++ {
		id := g.MustAddNode(KindGateway, fmt.Sprintf("gw-%d", gw),
			src.Uniform(0, cfg.AreaMeters), src.Uniform(0, cfg.AreaMeters))
		// Attach to the nearest router.
		best, bestD := routers[0], math.Inf(1)
		for _, r := range routers {
			if d := g.Dist(id, r); d < bestD {
				best, bestD = r, d
			}
		}
		g.MustAddLink(id, best, cfg.Links.wired(g, id, best), cfg.Links.WiredBandwidthMbps)
	}
	placeEdges(g, cfg, routers, src)
	attachIoT(g, cfg, place, src)
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// RandomGeometric places gateways uniformly in the plane and connects pairs
// within the given radius, repairing connectivity with shortest bridging
// links. Edge servers are co-located with random gateways.
func RandomGeometric(cfg Config, radiusMeters float64, place Placement) (*Graph, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if radiusMeters <= 0 {
		return nil, fmt.Errorf("topology: RandomGeometric needs radius > 0, got %v", radiusMeters)
	}
	src := xrand.NewSplit(cfg.Seed, "geometric")
	g := NewGraph()
	gws := make([]NodeID, cfg.NumGateways)
	for i := range gws {
		gws[i] = g.MustAddNode(KindGateway, fmt.Sprintf("gw-%d", i),
			src.Uniform(0, cfg.AreaMeters), src.Uniform(0, cfg.AreaMeters))
	}
	for i := 0; i < len(gws); i++ {
		for j := i + 1; j < len(gws); j++ {
			if g.Dist(gws[i], gws[j]) <= radiusMeters {
				g.MustAddLink(gws[i], gws[j], cfg.Links.wired(g, gws[i], gws[j]), cfg.Links.WiredBandwidthMbps)
			}
		}
	}
	connectInfra(g, cfg, gws)
	placeEdges(g, cfg, gws, src)
	attachIoT(g, cfg, place, src)
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// Waxman connects gateway pairs with probability
// alpha * exp(-d / (beta * L)) where L is the maximum pairwise distance —
// the classic Waxman random-topology model — then repairs connectivity.
func Waxman(cfg Config, alpha, beta float64, place Placement) (*Graph, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if alpha <= 0 || alpha > 1 || beta <= 0 || beta > 1 {
		return nil, fmt.Errorf("topology: Waxman parameters must be in (0,1], got alpha=%v beta=%v", alpha, beta)
	}
	src := xrand.NewSplit(cfg.Seed, "waxman")
	g := NewGraph()
	gws := make([]NodeID, cfg.NumGateways)
	for i := range gws {
		gws[i] = g.MustAddNode(KindGateway, fmt.Sprintf("gw-%d", i),
			src.Uniform(0, cfg.AreaMeters), src.Uniform(0, cfg.AreaMeters))
	}
	maxD := 0.0
	for i := 0; i < len(gws); i++ {
		for j := i + 1; j < len(gws); j++ {
			if d := g.Dist(gws[i], gws[j]); d > maxD {
				maxD = d
			}
		}
	}
	if maxD == 0 {
		maxD = 1
	}
	for i := 0; i < len(gws); i++ {
		for j := i + 1; j < len(gws); j++ {
			p := alpha * math.Exp(-g.Dist(gws[i], gws[j])/(beta*maxD))
			if src.Bernoulli(p) {
				g.MustAddLink(gws[i], gws[j], cfg.Links.wired(g, gws[i], gws[j]), cfg.Links.WiredBandwidthMbps)
			}
		}
	}
	connectInfra(g, cfg, gws)
	placeEdges(g, cfg, gws, src)
	attachIoT(g, cfg, place, src)
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// BarabasiAlbert grows a preferential-attachment gateway backbone: each new
// gateway links to attach existing gateways chosen proportionally to their
// degree. Produces the heavy-tailed degree distributions seen in ISP-like
// aggregation networks.
func BarabasiAlbert(cfg Config, attach int, place Placement) (*Graph, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if attach <= 0 {
		return nil, fmt.Errorf("topology: BarabasiAlbert needs attach > 0, got %d", attach)
	}
	if cfg.NumGateways < attach+1 {
		return nil, fmt.Errorf("topology: BarabasiAlbert needs NumGateways > attach, got %d <= %d", cfg.NumGateways, attach)
	}
	src := xrand.NewSplit(cfg.Seed, "ba")
	g := NewGraph()
	gws := make([]NodeID, cfg.NumGateways)
	for i := range gws {
		gws[i] = g.MustAddNode(KindGateway, fmt.Sprintf("gw-%d", i),
			src.Uniform(0, cfg.AreaMeters), src.Uniform(0, cfg.AreaMeters))
	}
	// Seed clique over the first attach+1 gateways.
	for i := 0; i <= attach; i++ {
		for j := i + 1; j <= attach; j++ {
			g.MustAddLink(gws[i], gws[j], cfg.Links.wired(g, gws[i], gws[j]), cfg.Links.WiredBandwidthMbps)
		}
	}
	for i := attach + 1; i < len(gws); i++ {
		weights := make([]float64, i)
		for j := 0; j < i; j++ {
			weights[j] = float64(g.Degree(gws[j]))
		}
		chosen := map[int]bool{}
		for len(chosen) < attach {
			c := src.Choice(weights)
			if chosen[c] {
				continue
			}
			chosen[c] = true
			g.MustAddLink(gws[i], gws[c], cfg.Links.wired(g, gws[i], gws[c]), cfg.Links.WiredBandwidthMbps)
			weights[c] = 0 // avoid re-picking
		}
	}
	placeEdges(g, cfg, gws, src)
	attachIoT(g, cfg, place, src)
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// Grid lays gateways out on a rows x cols lattice spanning the area, with
// 4-neighbor wired links. Edge servers are spread evenly over lattice
// points. Models planned metro deployments (street-corner cabinets).
func Grid(cfg Config, rows, cols int, place Placement) (*Graph, error) {
	cfg = cfg.withDefaults()
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("topology: Grid needs positive dimensions, got %dx%d", rows, cols)
	}
	cfg.NumGateways = rows * cols
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	src := xrand.NewSplit(cfg.Seed, "grid")
	g := NewGraph()
	ids := make([][]NodeID, rows)
	for r := 0; r < rows; r++ {
		ids[r] = make([]NodeID, cols)
		for c := 0; c < cols; c++ {
			x := cfg.AreaMeters * (float64(c) + 0.5) / float64(cols)
			y := cfg.AreaMeters * (float64(r) + 0.5) / float64(rows)
			ids[r][c] = g.MustAddNode(KindGateway, fmt.Sprintf("gw-%d-%d", r, c), x, y)
			if r > 0 {
				g.MustAddLink(ids[r][c], ids[r-1][c], cfg.Links.wired(g, ids[r][c], ids[r-1][c]), cfg.Links.WiredBandwidthMbps)
			}
			if c > 0 {
				g.MustAddLink(ids[r][c], ids[r][c-1], cfg.Links.wired(g, ids[r][c], ids[r][c-1]), cfg.Links.WiredBandwidthMbps)
			}
		}
	}
	var flat []NodeID
	for _, row := range ids {
		flat = append(flat, row...)
	}
	// Spread edge servers evenly rather than randomly: planned placement.
	stride := len(flat) / cfg.NumEdge
	if stride == 0 {
		stride = 1
	}
	for e := 0; e < cfg.NumEdge; e++ {
		host := flat[(e*stride)%len(flat)]
		hn := g.Node(host)
		id := g.MustAddNode(KindEdge, fmt.Sprintf("edge-%d", e), hn.X, hn.Y)
		g.MustAddLink(id, host, cfg.Links.WiredBaseMs/2, cfg.Links.WiredBandwidthMbps)
	}
	attachIoT(g, cfg, place, src)
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// FatTree builds a k-ary fat-tree (k even): (k/2)^2 core routers, k pods of
// k/2 aggregation and k/2 top-of-rack routers. Gateways and edge servers
// hang off ToR routers. Models an edge deployment inside a small
// datacenter-style facility.
func FatTree(cfg Config, k int, place Placement) (*Graph, error) {
	cfg = cfg.withDefaults()
	if k < 2 || k%2 != 0 {
		return nil, fmt.Errorf("topology: FatTree needs even k >= 2, got %d", k)
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	src := xrand.NewSplit(cfg.Seed, "fattree")
	g := NewGraph()
	half := k / 2
	core := make([]NodeID, half*half)
	for i := range core {
		core[i] = g.MustAddNode(KindRouter, fmt.Sprintf("core-%d", i), 0, 0)
	}
	var tors []NodeID
	for pod := 0; pod < k; pod++ {
		agg := make([]NodeID, half)
		for a := range agg {
			agg[a] = g.MustAddNode(KindRouter, fmt.Sprintf("agg-%d-%d", pod, a), 0, 0)
			for c := 0; c < half; c++ {
				g.MustAddLink(agg[a], core[a*half+c], cfg.Links.WiredBaseMs, cfg.Links.WiredBandwidthMbps)
			}
		}
		for t := 0; t < half; t++ {
			tor := g.MustAddNode(KindRouter, fmt.Sprintf("tor-%d-%d", pod, t), 0, 0)
			tors = append(tors, tor)
			for _, a := range agg {
				g.MustAddLink(tor, a, cfg.Links.WiredBaseMs, cfg.Links.WiredBandwidthMbps)
			}
		}
	}
	// Gateways attach to ToRs round-robin; they carry the wireless side.
	for i := 0; i < cfg.NumGateways; i++ {
		tor := tors[i%len(tors)]
		id := g.MustAddNode(KindGateway, fmt.Sprintf("gw-%d", i),
			src.Uniform(0, cfg.AreaMeters), src.Uniform(0, cfg.AreaMeters))
		g.MustAddLink(id, tor, cfg.Links.WiredBaseMs, cfg.Links.WiredBandwidthMbps)
	}
	placeEdges(g, cfg, tors, src)
	attachIoT(g, cfg, place, src)
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// Star attaches every gateway and every edge server to one central router;
// the degenerate single-hop cluster used as a sanity-check family.
func Star(cfg Config, place Placement) (*Graph, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	src := xrand.NewSplit(cfg.Seed, "star")
	g := NewGraph()
	center := g.MustAddNode(KindRouter, "hub", cfg.AreaMeters/2, cfg.AreaMeters/2)
	for i := 0; i < cfg.NumGateways; i++ {
		id := g.MustAddNode(KindGateway, fmt.Sprintf("gw-%d", i),
			src.Uniform(0, cfg.AreaMeters), src.Uniform(0, cfg.AreaMeters))
		g.MustAddLink(id, center, cfg.Links.wired(g, id, center), cfg.Links.WiredBandwidthMbps)
	}
	placeEdges(g, cfg, []NodeID{center}, src)
	attachIoT(g, cfg, place, src)
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// Ring arranges gateways in a cycle (metro fiber ring) with edge servers on
// evenly spaced ring positions.
func Ring(cfg Config, place Placement) (*Graph, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.NumGateways < 3 {
		return nil, fmt.Errorf("topology: Ring needs at least 3 gateways, got %d", cfg.NumGateways)
	}
	src := xrand.NewSplit(cfg.Seed, "ring")
	g := NewGraph()
	gws := make([]NodeID, cfg.NumGateways)
	r := cfg.AreaMeters / 2 * 0.8
	cx, cy := cfg.AreaMeters/2, cfg.AreaMeters/2
	for i := range gws {
		theta := 2 * math.Pi * float64(i) / float64(cfg.NumGateways)
		gws[i] = g.MustAddNode(KindGateway, fmt.Sprintf("gw-%d", i),
			cx+r*math.Cos(theta), cy+r*math.Sin(theta))
		if i > 0 {
			g.MustAddLink(gws[i], gws[i-1], cfg.Links.wired(g, gws[i], gws[i-1]), cfg.Links.WiredBandwidthMbps)
		}
	}
	g.MustAddLink(gws[len(gws)-1], gws[0], cfg.Links.wired(g, gws[len(gws)-1], gws[0]), cfg.Links.WiredBandwidthMbps)
	// Evenly spaced edge hosts around the ring.
	stride := len(gws) / cfg.NumEdge
	if stride == 0 {
		stride = 1
	}
	for e := 0; e < cfg.NumEdge; e++ {
		host := gws[(e*stride)%len(gws)]
		hn := g.Node(host)
		id := g.MustAddNode(KindEdge, fmt.Sprintf("edge-%d", e), hn.X, hn.Y)
		g.MustAddLink(id, host, cfg.Links.WiredBaseMs/2, cfg.Links.WiredBandwidthMbps)
	}
	attachIoT(g, cfg, place, src)
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// Family names a generator so experiment sweeps can iterate over topology
// families generically.
type Family string

// Topology families available to sweeps.
const (
	FamilyHierarchical Family = "hierarchical"
	FamilyGeometric    Family = "geometric"
	FamilyWaxman       Family = "waxman"
	FamilyBA           Family = "barabasi-albert"
	FamilyGrid         Family = "grid"
	FamilyFatTree      Family = "fattree"
	FamilyStar         Family = "star"
	FamilyRing         Family = "ring"
)

// Families returns all families in stable order.
func Families() []Family {
	return []Family{
		FamilyHierarchical, FamilyGeometric, FamilyWaxman, FamilyBA,
		FamilyGrid, FamilyFatTree, FamilyStar, FamilyRing,
	}
}

// Generate builds a topology of the named family with reasonable
// family-specific defaults derived from cfg.
func Generate(family Family, cfg Config, place Placement) (*Graph, error) {
	cfg = cfg.withDefaults()
	switch family {
	case FamilyHierarchical:
		return Hierarchical(cfg, place)
	case FamilyGeometric:
		return RandomGeometric(cfg, cfg.AreaMeters/3, place)
	case FamilyWaxman:
		return Waxman(cfg, 0.8, 0.3, place)
	case FamilyBA:
		attach := 2
		if cfg.NumGateways <= attach {
			attach = 1
		}
		return BarabasiAlbert(cfg, attach, place)
	case FamilyGrid:
		side := int(math.Ceil(math.Sqrt(float64(cfg.NumGateways))))
		return Grid(cfg, side, side, place)
	case FamilyFatTree:
		return FatTree(cfg, 4, place)
	case FamilyStar:
		return Star(cfg, place)
	case FamilyRing:
		if cfg.NumGateways < 3 {
			cfg.NumGateways = 3
		}
		return Ring(cfg, place)
	default:
		return nil, fmt.Errorf("topology: unknown family %q", family)
	}
}

// sortIDs sorts node IDs ascending; used by tests and deterministic output.
func sortIDs(ids []NodeID) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}
