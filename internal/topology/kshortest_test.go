package topology

import (
	"math"
	"testing"
	"testing/quick"
)

// diamond builds a 4-node diamond with two distinct s->t paths of costs 3
// and 4, plus a long direct edge of cost 10.
//
//	    b(1,2)
//	  /        \
//	s            t      s-t direct: 10
//	  \        /
//	    c(2,2)
func diamond(t *testing.T) (*Graph, NodeID, NodeID) {
	t.Helper()
	g := NewGraph()
	s := g.MustAddNode(KindIoT, "s", 0, 0)
	b := g.MustAddNode(KindRouter, "b", 0, 0)
	c := g.MustAddNode(KindRouter, "c", 0, 0)
	tt := g.MustAddNode(KindEdge, "t", 0, 0)
	g.MustAddLink(s, b, 1, 0)
	g.MustAddLink(b, tt, 2, 0)
	g.MustAddLink(s, c, 2, 0)
	g.MustAddLink(c, tt, 2, 0)
	g.MustAddLink(s, tt, 10, 0)
	return g, s, tt
}

func TestKShortestDiamond(t *testing.T) {
	g, s, dst := diamond(t)
	paths, err := g.KShortestPaths(s, dst, 5, LatencyCost)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 3 {
		t.Fatalf("got %d paths, want 3: %+v", len(paths), paths)
	}
	wantCosts := []float64{3, 4, 10}
	for i, w := range wantCosts {
		if math.Abs(paths[i].Cost-w) > 1e-9 {
			t.Fatalf("path %d cost = %v, want %v", i, paths[i].Cost, w)
		}
	}
	// First path goes through b.
	if len(paths[0].Nodes) != 3 || g.Node(paths[0].Nodes[1]).Name != "b" {
		t.Fatalf("path 0 = %v", paths[0].Nodes)
	}
}

func TestKShortestLimitsToK(t *testing.T) {
	g, s, dst := diamond(t)
	paths, err := g.KShortestPaths(s, dst, 2, LatencyCost)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 {
		t.Fatalf("got %d paths, want 2", len(paths))
	}
}

func TestKShortestUnreachable(t *testing.T) {
	g := NewGraph()
	a := g.MustAddNode(KindIoT, "a", 0, 0)
	b := g.MustAddNode(KindEdge, "b", 0, 0)
	paths, err := g.KShortestPaths(a, b, 3, LatencyCost)
	if err != nil {
		t.Fatal(err)
	}
	if paths != nil {
		t.Fatalf("expected no paths, got %v", paths)
	}
}

func TestKShortestValidation(t *testing.T) {
	g, s, dst := diamond(t)
	if _, err := g.KShortestPaths(s, 99, 2, LatencyCost); err == nil {
		t.Error("bad endpoint accepted")
	}
	if _, err := g.KShortestPaths(s, dst, 0, LatencyCost); err == nil {
		t.Error("k=0 accepted")
	}
}

// Properties on generated topologies: costs are non-decreasing, paths are
// loopless, distinct, and start/end correctly; the first path matches
// Dijkstra.
func TestKShortestPropertiesQuick(t *testing.T) {
	f := func(seed int64) bool {
		cfg := Config{NumIoT: 5, NumEdge: 2, NumGateways: 8, Seed: seed}
		g, err := Waxman(cfg, 0.9, 0.5, PlaceUniform)
		if err != nil {
			return false
		}
		iot := g.NodesOfKind(KindIoT)[0]
		edge := g.NodesOfKind(KindEdge)[0]
		paths, err := g.KShortestPaths(iot, edge, 4, LatencyCost)
		if err != nil {
			return false
		}
		if len(paths) == 0 {
			return false // generated graphs are connected
		}
		sp := g.Dijkstra(iot, LatencyCost)
		if math.Abs(paths[0].Cost-sp.Dist[edge]) > 1e-9 {
			return false
		}
		for i, p := range paths {
			if p.Nodes[0] != iot || p.Nodes[len(p.Nodes)-1] != edge {
				return false
			}
			if i > 0 && p.Cost < paths[i-1].Cost-1e-9 {
				return false
			}
			seen := map[NodeID]bool{}
			for _, nid := range p.Nodes {
				if seen[nid] {
					return false // loop
				}
				seen[nid] = true
			}
			if math.Abs(pathCost(g, p.Nodes, LatencyCost)-p.Cost) > 1e-9 {
				return false
			}
			for j := 0; j < i; j++ {
				if equalPath(paths[j].Nodes, p.Nodes) {
					return false // duplicate
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
