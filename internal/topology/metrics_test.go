package topology

import (
	"math"
	"testing"
)

func TestComputeMetricsLine(t *testing.T) {
	g, _, _, _, _ := lineGraph(t)
	m := ComputeMetrics(g)
	if m.Nodes != 4 || m.Links != 3 {
		t.Fatalf("nodes/links = %d/%d", m.Nodes, m.Links)
	}
	if m.ByKind[KindIoT] != 1 || m.ByKind[KindEdge] != 1 {
		t.Fatalf("ByKind = %v", m.ByKind)
	}
	// Degrees: 1,2,2,1 -> avg 1.5, max 2.
	if math.Abs(m.AvgDegree-1.5) > 1e-12 || m.MaxDegree != 2 {
		t.Fatalf("degree stats: avg %v max %d", m.AvgDegree, m.MaxDegree)
	}
	if m.DiameterHops != 3 {
		t.Fatalf("diameter = %d, want 3", m.DiameterHops)
	}
	if m.AvgIoTMinDelayMs != 3 || m.MaxIoTMinDelayMs != 3 {
		t.Fatalf("IoT min delay = %v/%v, want 3", m.AvgIoTMinDelayMs, m.MaxIoTMinDelayMs)
	}
	if m.AvgIoTEdgeHops != 3 {
		t.Fatalf("IoT hops = %v, want 3", m.AvgIoTEdgeHops)
	}
}

func TestComputeMetricsDisconnected(t *testing.T) {
	g := NewGraph()
	g.MustAddNode(KindIoT, "a", 0, 0)
	g.MustAddNode(KindEdge, "b", 0, 0)
	m := ComputeMetrics(g)
	if m.DiameterHops != -1 {
		t.Fatalf("diameter of disconnected graph = %d, want -1", m.DiameterHops)
	}
}

func TestComputeMetricsGenerated(t *testing.T) {
	g, err := Hierarchical(baseCfg(3), PlaceUniform)
	if err != nil {
		t.Fatal(err)
	}
	m := ComputeMetrics(g)
	if m.ByKind[KindIoT] != 40 || m.ByKind[KindEdge] != 5 {
		t.Fatalf("ByKind = %v", m.ByKind)
	}
	if m.DiameterHops <= 0 {
		t.Fatalf("diameter = %d", m.DiameterHops)
	}
	if m.AvgIoTMinDelayMs <= 0 || m.MaxIoTMinDelayMs < m.AvgIoTMinDelayMs {
		t.Fatalf("delay stats: avg %v max %v", m.AvgIoTMinDelayMs, m.MaxIoTMinDelayMs)
	}
	if m.AvgIoTEdgeHops < 1 {
		t.Fatalf("hops = %v", m.AvgIoTEdgeHops)
	}
}
