package topology

import (
	"container/heap"
	"fmt"
	"math"

	"taccc/internal/obs"
	"taccc/internal/par"
)

// Infinity marks unreachable pairs in distance results.
var Infinity = math.Inf(1)

// LinkCost maps a link to a non-negative traversal cost. It is the knob
// that makes path computation payload-aware: propagation-only, or
// propagation plus transmission for a given message size.
type LinkCost func(l Link) float64

// LatencyCost returns each link's configured latency; transmission time is
// ignored. This is the cost used for small control messages.
func LatencyCost(l Link) float64 { return l.LatencyMs }

// PayloadCost returns a cost model combining propagation latency and the
// transmission time of a payload of the given size (kilobytes) at the
// link's bandwidth. Links with unspecified bandwidth contribute no
// transmission time.
func PayloadCost(payloadKB float64) LinkCost {
	return func(l Link) float64 {
		d := l.LatencyMs
		if l.BandwidthMbps > 0 {
			// kB -> bits = *8*1000; Mbit/s -> bits/ms = *1000.
			bits := payloadKB * 8 * 1000
			d += bits / (l.BandwidthMbps * 1000)
		}
		return d
	}
}

// pqItem is a Dijkstra priority-queue entry.
type pqItem struct {
	node NodeID
	dist float64
}

type pq []pqItem

func (q pq) Len() int            { return len(q) }
func (q pq) Less(i, j int) bool  { return q[i].dist < q[j].dist }
func (q pq) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x interface{}) { *q = append(*q, x.(pqItem)) }
func (q *pq) Pop() interface{} {
	old := *q
	n := len(old)
	item := old[n-1]
	*q = old[:n-1]
	return item
}

// ShortestPaths holds single-source shortest-path results.
type ShortestPaths struct {
	Source NodeID
	// Dist[v] is the cost of the cheapest path from Source to v, or
	// Infinity if unreachable.
	Dist []float64
	// Prev[v] is the predecessor of v on that path, or -1 for the source
	// and unreachable nodes.
	Prev []NodeID
}

// PathTo reconstructs the node sequence from the source to v, inclusive.
// It returns nil if v is unreachable.
func (sp *ShortestPaths) PathTo(v NodeID) []NodeID {
	if int(v) >= len(sp.Dist) || math.IsInf(sp.Dist[v], 1) {
		return nil
	}
	var rev []NodeID
	for u := v; u != -1; u = sp.Prev[u] {
		rev = append(rev, u)
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// Dijkstra computes single-source shortest paths from src under the given
// cost model. Costs must be non-negative; a negative cost causes a panic.
func (g *Graph) Dijkstra(src NodeID, cost LinkCost) *ShortestPaths {
	if !g.valid(src) {
		panic(fmt.Sprintf("topology: Dijkstra source %d out of range", src))
	}
	n := len(g.nodes)
	dist := make([]float64, n)
	prev := make([]NodeID, n)
	done := make([]bool, n)
	for i := range dist {
		dist[i] = Infinity
		prev[i] = -1
	}
	dist[src] = 0
	q := &pq{{node: src, dist: 0}}
	for q.Len() > 0 {
		item := heap.Pop(q).(pqItem)
		u := item.node
		if done[u] {
			continue
		}
		done[u] = true
		for _, h := range g.adj[u] {
			c := cost(Link{A: u, B: h.to, LatencyMs: h.latencyMs, BandwidthMbps: h.bwMbps})
			if c < 0 {
				panic(fmt.Sprintf("topology: negative link cost %v on %d-%d", c, u, h.to))
			}
			if nd := item.dist + c; nd < dist[h.to] {
				dist[h.to] = nd
				prev[h.to] = u
				heap.Push(q, pqItem{node: h.to, dist: nd})
			}
		}
	}
	return &ShortestPaths{Source: src, Dist: dist, Prev: prev}
}

// HopCounts returns the minimum hop count from src to every node via BFS,
// with -1 marking unreachable nodes.
func (g *Graph) HopCounts(src NodeID) []int {
	if !g.valid(src) {
		panic(fmt.Sprintf("topology: HopCounts source %d out of range", src))
	}
	hops := make([]int, len(g.nodes))
	for i := range hops {
		hops[i] = -1
	}
	hops[src] = 0
	queue := []NodeID{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, h := range g.adj[u] {
			if hops[h.to] == -1 {
				hops[h.to] = hops[u] + 1
				queue = append(queue, h.to)
			}
		}
	}
	return hops
}

// AllPairs computes the full distance matrix under cost by running Dijkstra
// from every node, fanning sources out across all cores. The result is
// row-major: m[u][v]. Use AllPairsWorkers to bound the parallelism.
func (g *Graph) AllPairs(cost LinkCost) [][]float64 {
	return g.AllPairsWorkers(cost, 0)
}

// AllPairsWorkers is AllPairs with an explicit worker count (<= 0 means all
// cores, 1 is fully sequential). Sources are independent — each goroutine
// runs Dijkstra from its own node and writes only its own row — so the
// matrix is identical for every worker count; cost must be safe for
// concurrent calls (the package's cost models are pure functions).
func (g *Graph) AllPairsWorkers(cost LinkCost, workers int) [][]float64 {
	n := len(g.nodes)
	m := make([][]float64, n)
	par.For(par.Workers(workers), n, func(u int) {
		m[u] = g.Dijkstra(NodeID(u), cost).Dist
	})
	return m
}

// FloydWarshall computes all-pairs shortest distances with the classic
// O(n^3) recurrence. It exists as an independent oracle for testing the
// Dijkstra implementation and for very small graphs.
func (g *Graph) FloydWarshall(cost LinkCost) [][]float64 {
	n := len(g.nodes)
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n)
		for j := range m[i] {
			if i != j {
				m[i][j] = Infinity
			}
		}
	}
	for _, l := range g.Links() {
		c := cost(l)
		if c < m[l.A][l.B] {
			m[l.A][l.B] = c
			m[l.B][l.A] = c
		}
	}
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			if math.IsInf(m[i][k], 1) {
				continue
			}
			for j := 0; j < n; j++ {
				if d := m[i][k] + m[k][j]; d < m[i][j] {
					m[i][j] = d
				}
			}
		}
	}
	return m
}

// DelayMatrix is the IoT-by-edge communication-delay matrix derived from a
// topology; it is the bridge between the network substrate and the GAP
// formulation.
type DelayMatrix struct {
	// IoT and Edge list the node IDs backing each row/column.
	IoT  []NodeID
	Edge []NodeID
	// DelayMs[i][j] is the delay from IoT[i] to Edge[j], Infinity if
	// disconnected.
	DelayMs [][]float64
}

// NewDelayMatrix computes shortest-path delays from every IoT node to every
// edge node under the given cost model. Dijkstra runs from each edge node
// (there are typically far fewer edges than IoT devices), with sources
// fanned out across all cores. Use NewDelayMatrixWorkers to bound the
// parallelism.
func NewDelayMatrix(g *Graph, cost LinkCost) *DelayMatrix {
	return NewDelayMatrixWorkers(g, cost, 0)
}

// NewDelayMatrixWorkers is NewDelayMatrix with an explicit worker count
// (<= 0 means all cores, 1 is fully sequential). Each goroutine owns one
// edge source and writes only column j of the pre-sized matrix, so the
// result is identical for every worker count.
func NewDelayMatrixWorkers(g *Graph, cost LinkCost, workers int) *DelayMatrix {
	iot := g.NodesOfKind(KindIoT)
	edge := g.NodesOfKind(KindEdge)
	m := make([][]float64, len(iot))
	for i := range m {
		m[i] = make([]float64, len(edge))
	}
	par.For(par.Workers(workers), len(edge), func(j int) {
		sp := g.Dijkstra(edge[j], cost)
		for i, d := range iot {
			m[i][j] = sp.Dist[d]
		}
	})
	return &DelayMatrix{IoT: iot, Edge: edge, DelayMs: m}
}

// NewDelayMatrixTraced is NewDelayMatrixWorkers with wall-clock tracing:
// when phase is a live obs phase (the "delay-matrix" span of a pipeline
// trace), each worker's shard is emitted as a child span named "shard"
// with worker ID, items processed and busy time, giving Perfetto one
// timeline row per worker. A nil phase is exactly NewDelayMatrixWorkers:
// no clock reads, no spans, bit-identical matrix.
func NewDelayMatrixTraced(g *Graph, cost LinkCost, workers int, phase *obs.Phase) *DelayMatrix {
	iot := g.NodesOfKind(KindIoT)
	edge := g.NodesOfKind(KindEdge)
	m := make([][]float64, len(iot))
	for i := range m {
		m[i] = make([]float64, len(edge))
	}
	var now func() float64
	if phase != nil {
		now = phase.NowMs
	}
	shards := par.ForShards(par.Workers(workers), len(edge), now, func(j int) {
		sp := g.Dijkstra(edge[j], cost)
		for i, d := range iot {
			m[i][j] = sp.Dist[d]
		}
	})
	for _, sh := range shards {
		phase.Span("shard", sh.StartMs, sh.EndMs, map[string]interface{}{
			"worker":  sh.Worker,
			"items":   sh.Items,
			"busy_ms": sh.BusyMs,
		})
	}
	return &DelayMatrix{IoT: iot, Edge: edge, DelayMs: m}
}

// NumIoT returns the number of IoT rows.
func (dm *DelayMatrix) NumIoT() int { return len(dm.IoT) }

// NumEdge returns the number of edge columns.
func (dm *DelayMatrix) NumEdge() int { return len(dm.Edge) }

// MinDelay returns the smallest delay in row i and the column achieving it.
// It panics for an out-of-range row and returns (Infinity, -1) when the row
// is fully disconnected.
func (dm *DelayMatrix) MinDelay(i int) (float64, int) {
	if i < 0 || i >= len(dm.DelayMs) {
		panic(fmt.Sprintf("topology: MinDelay row %d out of range", i))
	}
	best, bestJ := Infinity, -1
	for j, d := range dm.DelayMs[i] {
		if d < best {
			best, bestJ = d, j
		}
	}
	return best, bestJ
}
