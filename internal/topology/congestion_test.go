package topology

import (
	"math"
	"testing"
)

// congGraph: two IoT devices share one gateway uplink to the edge.
//
//	iot-0 --\
//	         gw --(bw 10)-- edge-0
//	iot-1 --/
func congGraph(t *testing.T) (*Graph, *DelayMatrix) {
	t.Helper()
	g := NewGraph()
	i0 := g.MustAddNode(KindIoT, "iot-0", 0, 0)
	i1 := g.MustAddNode(KindIoT, "iot-1", 0, 1)
	gw := g.MustAddNode(KindGateway, "gw", 1, 0)
	e := g.MustAddNode(KindEdge, "edge-0", 2, 0)
	g.MustAddLink(i0, gw, 2, 100)
	g.MustAddLink(i1, gw, 2, 100)
	g.MustAddLink(gw, e, 1, 10) // shared 10 Mbps bottleneck
	return g, NewDelayMatrix(g, LatencyCost)
}

func TestFlowMbps(t *testing.T) {
	f := Flow{RateHz: 10, PayloadKB: 100}
	// 100 kB * 8 = 800 kbit; * 10 = 8000 kbit/s = 8 Mbit/s.
	if got := f.Mbps(); math.Abs(got-8) > 1e-12 {
		t.Fatalf("Mbps = %v, want 8", got)
	}
}

func TestEvaluateCongestionLight(t *testing.T) {
	g, dm := congGraph(t)
	flows := []Flow{
		{IoT: dm.IoT[0], RateHz: 1, PayloadKB: 1},
		{IoT: dm.IoT[1], RateHz: 1, PayloadKB: 1},
	}
	res, err := EvaluateCongestion(g, dm, flows, []int{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	// Light load: delay ~= base latency (3 ms) + tiny transmission.
	for k, d := range res.DelayMs {
		if d < 3 || d > 4 {
			t.Fatalf("flow %d delay = %v, want ~3", k, d)
		}
	}
	if len(res.Overloaded) != 0 {
		t.Fatalf("overloaded links at light load: %v", res.Overloaded)
	}
	if res.MaxUtilization() <= 0 {
		t.Fatal("no utilization recorded")
	}
}

func TestEvaluateCongestionInflatesSharedLink(t *testing.T) {
	g, dm := congGraph(t)
	light := []Flow{
		{IoT: dm.IoT[0], RateHz: 1, PayloadKB: 10},
		{IoT: dm.IoT[1], RateHz: 1, PayloadKB: 10},
	}
	heavy := []Flow{
		{IoT: dm.IoT[0], RateHz: 10, PayloadKB: 100}, // 8 Mbps
		{IoT: dm.IoT[1], RateHz: 10, PayloadKB: 100}, // 8 Mbps -> 16 on a 10 Mbps link
	}
	lr, err := EvaluateCongestion(g, dm, light, []int{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	hr, err := EvaluateCongestion(g, dm, heavy, []int{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if hr.MeanDelayMs() <= lr.MeanDelayMs() {
		t.Fatalf("heavy load (%v) not slower than light (%v)", hr.MeanDelayMs(), lr.MeanDelayMs())
	}
	if len(hr.Overloaded) != 1 {
		t.Fatalf("want 1 overloaded link, got %v", hr.Overloaded)
	}
	if hr.MaxUtilization() < 1 {
		t.Fatalf("max utilization %v, want >= 1", hr.MaxUtilization())
	}
	// Delays remain finite thanks to the utilization cap.
	for _, d := range hr.DelayMs {
		if math.IsInf(d, 0) || math.IsNaN(d) {
			t.Fatalf("non-finite delay %v", d)
		}
	}
}

func TestEvaluateCongestionValidation(t *testing.T) {
	g, dm := congGraph(t)
	flows := []Flow{{IoT: dm.IoT[0], RateHz: 1, PayloadKB: 1}}
	if _, err := EvaluateCongestion(g, dm, flows, []int{0, 0}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := EvaluateCongestion(g, dm, flows, []int{5}); err == nil {
		t.Error("out-of-range column accepted")
	}
}

func TestCongestionAwareDelayMatrix(t *testing.T) {
	g, dm := congGraph(t)
	flows := []Flow{
		{IoT: dm.IoT[0], RateHz: 10, PayloadKB: 100},
		{IoT: dm.IoT[1], RateHz: 10, PayloadKB: 100},
	}
	cam, err := CongestionAwareDelayMatrix(g, dm, flows, []int{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	// The congestion-aware entries must exceed the raw latency entries
	// on the saturated shared link.
	for i := range cam.DelayMs {
		if cam.DelayMs[i][0] <= dm.DelayMs[i][0] {
			t.Fatalf("row %d: congestion-aware %v not above base %v",
				i, cam.DelayMs[i][0], dm.DelayMs[i][0])
		}
	}
	if _, err := CongestionAwareDelayMatrix(g, dm, flows[:1], []int{0, 0}); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestCongestionOnGeneratedTopology(t *testing.T) {
	cfg := Config{NumIoT: 30, NumEdge: 4, NumGateways: 6, Seed: 9}
	g, err := Hierarchical(cfg, PlaceHotspot)
	if err != nil {
		t.Fatal(err)
	}
	dm := NewDelayMatrix(g, LatencyCost)
	flows := make([]Flow, 30)
	assignment := make([]int, 30)
	for i := range flows {
		flows[i] = Flow{IoT: dm.IoT[i], RateHz: 5, PayloadKB: 20}
		_, assignment[i] = dm.MinDelay(i)
	}
	res, err := EvaluateCongestion(g, dm, flows, assignment)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.DelayMs) != 30 {
		t.Fatalf("got %d delays", len(res.DelayMs))
	}
	// Effective delay dominates the raw shortest-path delay.
	for i := range flows {
		if res.DelayMs[i] < dm.DelayMs[i][assignment[i]]-1e-9 {
			t.Fatalf("flow %d effective %v below base %v",
				i, res.DelayMs[i], dm.DelayMs[i][assignment[i]])
		}
	}
}
