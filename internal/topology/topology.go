// Package topology models the edge-computing network substrate: a weighted
// graph whose nodes are IoT devices, wireless gateways, routers, edge
// servers and (optionally) a cloud datacenter, and whose links carry a
// latency/bandwidth cost. It provides generators for common deployment
// shapes, shortest-path routines, and the IoT-to-edge delay matrices that
// the assignment algorithms in internal/assign consume.
//
// The package is deliberately self-contained: delays are plain float64
// milliseconds so instances can be serialized, diffed and replayed without
// any unit ambiguity.
package topology

import (
	"errors"
	"fmt"
	"math"
)

// NodeKind classifies the role a node plays in the deployment.
type NodeKind int

// Node kinds, ordered roughly from the network edge inward.
const (
	// KindIoT is a sensor/actuator device that must be assigned to an
	// edge server.
	KindIoT NodeKind = iota + 1
	// KindGateway is a wireless access point/base station that IoT
	// devices attach to.
	KindGateway
	// KindRouter is an interior switch/router.
	KindRouter
	// KindEdge is an edge server capable of hosting IoT workloads.
	KindEdge
	// KindCloud is a remote datacenter (high capacity, high delay).
	KindCloud
)

// String returns the lowercase name of the kind.
func (k NodeKind) String() string {
	switch k {
	case KindIoT:
		return "iot"
	case KindGateway:
		return "gateway"
	case KindRouter:
		return "router"
	case KindEdge:
		return "edge"
	case KindCloud:
		return "cloud"
	default:
		return fmt.Sprintf("NodeKind(%d)", int(k))
	}
}

// NodeID identifies a node within a Graph. IDs are dense indices assigned
// in insertion order.
type NodeID int

// Node is a vertex of the topology graph.
type Node struct {
	ID   NodeID
	Kind NodeKind
	// Name is a human-readable label, unique within a graph.
	Name string
	// X, Y are planar coordinates (meters) used by geometric generators
	// and by the propagation-delay model. Zero for non-geometric graphs.
	X, Y float64
}

// Link is an undirected edge with a fixed one-way latency (ms) and a
// bandwidth (Mbit/s) used for transmission-delay computation.
type Link struct {
	A, B NodeID
	// LatencyMs is the one-way propagation+processing latency.
	LatencyMs float64
	// BandwidthMbps is the link capacity; 0 means "unspecified" and
	// transmission delay is treated as zero on this link.
	BandwidthMbps float64
}

// Graph is an undirected multigraph-free network topology. Construct with
// NewGraph and mutate through AddNode/AddLink.
type Graph struct {
	nodes []Node
	// adj[u] lists the incident links of u (stored once per direction).
	adj    [][]halfLink
	byName map[string]NodeID
	links  int
}

// halfLink is the adjacency-list view of a Link from one endpoint.
type halfLink struct {
	to        NodeID
	latencyMs float64
	bwMbps    float64
}

// NewGraph returns an empty graph.
func NewGraph() *Graph {
	return &Graph{byName: make(map[string]NodeID)}
}

// AddNode appends a node and returns its ID. The name must be unique and
// non-empty.
func (g *Graph) AddNode(kind NodeKind, name string, x, y float64) (NodeID, error) {
	if name == "" {
		return 0, errors.New("topology: node name must be non-empty")
	}
	if _, dup := g.byName[name]; dup {
		return 0, fmt.Errorf("topology: duplicate node name %q", name)
	}
	id := NodeID(len(g.nodes))
	g.nodes = append(g.nodes, Node{ID: id, Kind: kind, Name: name, X: x, Y: y})
	g.adj = append(g.adj, nil)
	g.byName[name] = id
	return id, nil
}

// MustAddNode is AddNode that panics on error; for use by generators with
// programmatically unique names.
func (g *Graph) MustAddNode(kind NodeKind, name string, x, y float64) NodeID {
	id, err := g.AddNode(kind, name, x, y)
	if err != nil {
		panic(err)
	}
	return id
}

// AddLink connects a and b with the given one-way latency and bandwidth.
// Self-loops, unknown endpoints, negative latency and duplicate links are
// rejected.
func (g *Graph) AddLink(a, b NodeID, latencyMs, bandwidthMbps float64) error {
	if !g.valid(a) || !g.valid(b) {
		return fmt.Errorf("topology: link endpoints %d-%d out of range", a, b)
	}
	if a == b {
		return fmt.Errorf("topology: self-loop on node %d", a)
	}
	if latencyMs < 0 || math.IsNaN(latencyMs) {
		return fmt.Errorf("topology: invalid latency %v on link %d-%d", latencyMs, a, b)
	}
	if bandwidthMbps < 0 || math.IsNaN(bandwidthMbps) {
		return fmt.Errorf("topology: invalid bandwidth %v on link %d-%d", bandwidthMbps, a, b)
	}
	for _, h := range g.adj[a] {
		if h.to == b {
			return fmt.Errorf("topology: duplicate link %d-%d", a, b)
		}
	}
	g.adj[a] = append(g.adj[a], halfLink{to: b, latencyMs: latencyMs, bwMbps: bandwidthMbps})
	g.adj[b] = append(g.adj[b], halfLink{to: a, latencyMs: latencyMs, bwMbps: bandwidthMbps})
	g.links++
	return nil
}

// MustAddLink is AddLink that panics on error.
func (g *Graph) MustAddLink(a, b NodeID, latencyMs, bandwidthMbps float64) {
	if err := g.AddLink(a, b, latencyMs, bandwidthMbps); err != nil {
		panic(err)
	}
}

func (g *Graph) valid(id NodeID) bool { return id >= 0 && int(id) < len(g.nodes) }

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumLinks returns the number of undirected links.
func (g *Graph) NumLinks() int { return g.links }

// Node returns the node with the given ID. It panics for out-of-range IDs.
func (g *Graph) Node(id NodeID) Node {
	if !g.valid(id) {
		panic(fmt.Sprintf("topology: node %d out of range", id))
	}
	return g.nodes[id]
}

// NodeByName looks a node up by name.
func (g *Graph) NodeByName(name string) (Node, bool) {
	id, ok := g.byName[name]
	if !ok {
		return Node{}, false
	}
	return g.nodes[id], true
}

// Nodes returns a copy of all nodes in ID order.
func (g *Graph) Nodes() []Node {
	out := make([]Node, len(g.nodes))
	copy(out, g.nodes)
	return out
}

// NodesOfKind returns the IDs of all nodes of the given kind, in ID order.
func (g *Graph) NodesOfKind(kind NodeKind) []NodeID {
	var out []NodeID
	for _, n := range g.nodes {
		if n.Kind == kind {
			out = append(out, n.ID)
		}
	}
	return out
}

// Links returns a copy of all links, each reported once with A < B.
func (g *Graph) Links() []Link {
	out := make([]Link, 0, g.links)
	for u, hs := range g.adj {
		for _, h := range hs {
			if NodeID(u) < h.to {
				out = append(out, Link{A: NodeID(u), B: h.to, LatencyMs: h.latencyMs, BandwidthMbps: h.bwMbps})
			}
		}
	}
	return out
}

// Neighbors returns the IDs adjacent to id, in insertion order.
func (g *Graph) Neighbors(id NodeID) []NodeID {
	if !g.valid(id) {
		panic(fmt.Sprintf("topology: node %d out of range", id))
	}
	out := make([]NodeID, len(g.adj[id]))
	for i, h := range g.adj[id] {
		out[i] = h.to
	}
	return out
}

// Degree returns the number of links incident to id.
func (g *Graph) Degree(id NodeID) int {
	if !g.valid(id) {
		panic(fmt.Sprintf("topology: node %d out of range", id))
	}
	return len(g.adj[id])
}

// LinkBetween returns the link joining a and b, if any.
func (g *Graph) LinkBetween(a, b NodeID) (Link, bool) {
	if !g.valid(a) || !g.valid(b) {
		return Link{}, false
	}
	for _, h := range g.adj[a] {
		if h.to == b {
			return Link{A: a, B: b, LatencyMs: h.latencyMs, BandwidthMbps: h.bwMbps}, true
		}
	}
	return Link{}, false
}

// Connected reports whether every node is reachable from node 0. An empty
// graph is considered connected.
func (g *Graph) Connected() bool {
	if len(g.nodes) == 0 {
		return true
	}
	seen := make([]bool, len(g.nodes))
	stack := []NodeID{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, h := range g.adj[u] {
			if !seen[h.to] {
				seen[h.to] = true
				count++
				stack = append(stack, h.to)
			}
		}
	}
	return count == len(g.nodes)
}

// Validate checks structural invariants that generators must uphold: a
// connected graph with at least one IoT and one edge node.
func (g *Graph) Validate() error {
	if len(g.NodesOfKind(KindIoT)) == 0 {
		return errors.New("topology: graph has no IoT nodes")
	}
	if len(g.NodesOfKind(KindEdge)) == 0 {
		return errors.New("topology: graph has no edge nodes")
	}
	if !g.Connected() {
		return errors.New("topology: graph is not connected")
	}
	return nil
}

// Dist returns the Euclidean distance in meters between two nodes'
// coordinates.
func (g *Graph) Dist(a, b NodeID) float64 {
	na, nb := g.Node(a), g.Node(b)
	dx, dy := na.X-nb.X, na.Y-nb.Y
	return math.Hypot(dx, dy)
}
