package topology

import "math"

// Metrics summarizes a topology's shape; tacgen -stats prints them so
// generated families can be characterized and compared.
type Metrics struct {
	// Nodes and Links count the graph elements.
	Nodes int
	Links int
	// ByKind counts nodes per role.
	ByKind map[NodeKind]int
	// AvgDegree is the mean node degree.
	AvgDegree float64
	// MaxDegree is the largest node degree.
	MaxDegree int
	// DiameterHops is the longest shortest path in hops over the whole
	// graph (-1 if disconnected).
	DiameterHops int
	// AvgIoTMinDelayMs and MaxIoTMinDelayMs summarize each IoT device's
	// delay to its *nearest* edge server (the floor any assignment can
	// reach).
	AvgIoTMinDelayMs float64
	MaxIoTMinDelayMs float64
	// AvgIoTEdgeHops is the mean hop count from IoT devices to their
	// nearest edge server.
	AvgIoTEdgeHops float64
}

// ComputeMetrics walks the graph; cost O(V·E) from the per-node BFS.
func ComputeMetrics(g *Graph) Metrics {
	m := Metrics{
		Nodes:  g.NumNodes(),
		Links:  g.NumLinks(),
		ByKind: make(map[NodeKind]int),
	}
	for _, n := range g.Nodes() {
		m.ByKind[n.Kind]++
		d := g.Degree(n.ID)
		m.AvgDegree += float64(d)
		if d > m.MaxDegree {
			m.MaxDegree = d
		}
	}
	if m.Nodes > 0 {
		m.AvgDegree /= float64(m.Nodes)
	}
	// Hop diameter.
	m.DiameterHops = 0
	for v := 0; v < m.Nodes; v++ {
		hops := g.HopCounts(NodeID(v))
		for _, h := range hops {
			if h < 0 {
				m.DiameterHops = -1
				break
			}
			if h > m.DiameterHops {
				m.DiameterHops = h
			}
		}
		if m.DiameterHops < 0 {
			break
		}
	}
	// IoT-to-nearest-edge stats.
	iot := g.NodesOfKind(KindIoT)
	edges := g.NodesOfKind(KindEdge)
	if len(iot) == 0 || len(edges) == 0 {
		return m
	}
	dm := NewDelayMatrix(g, LatencyCost)
	sumDelay, sumHops := 0.0, 0.0
	counted := 0
	for i := range dm.IoT {
		d, j := dm.MinDelay(i)
		if j < 0 || math.IsInf(d, 1) {
			continue
		}
		counted++
		sumDelay += d
		if d > m.MaxIoTMinDelayMs {
			m.MaxIoTMinDelayMs = d
		}
		hops := g.HopCounts(dm.IoT[i])
		best := -1
		for _, e := range dm.Edge {
			if h := hops[e]; h >= 0 && (best < 0 || h < best) {
				best = h
			}
		}
		if best >= 0 {
			sumHops += float64(best)
		}
	}
	if counted > 0 {
		m.AvgIoTMinDelayMs = sumDelay / float64(counted)
		m.AvgIoTEdgeHops = sumHops / float64(counted)
	}
	return m
}
