package topology

import "sort"

// CutVertices returns the graph's articulation points — nodes whose
// failure disconnects some pair of currently-connected nodes — via
// Tarjan's low-link algorithm, in ascending ID order. In an edge
// deployment these are the single points of failure between IoT devices
// and their edge servers.
func (g *Graph) CutVertices() []NodeID {
	n := len(g.nodes)
	disc := make([]int, n)
	low := make([]int, n)
	parent := make([]NodeID, n)
	isCut := make([]bool, n)
	for i := range disc {
		disc[i] = -1
		parent[i] = -1
	}
	timer := 0

	// Iterative DFS to avoid recursion depth limits on long paths.
	type frame struct {
		u        NodeID
		childIdx int
		children int
	}
	for start := 0; start < n; start++ {
		if disc[start] != -1 {
			continue
		}
		stack := []frame{{u: NodeID(start)}}
		disc[start] = timer
		low[start] = timer
		timer++
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			adj := g.adj[f.u]
			if f.childIdx < len(adj) {
				v := adj[f.childIdx].to
				f.childIdx++
				if disc[v] == -1 {
					parent[v] = f.u
					f.children++
					disc[v] = timer
					low[v] = timer
					timer++
					stack = append(stack, frame{u: v})
				} else if v != parent[f.u] && disc[v] < low[f.u] {
					low[f.u] = disc[v]
				}
				continue
			}
			// Post-order: fold into parent.
			stack = stack[:len(stack)-1]
			if p := parent[f.u]; p != -1 {
				if low[f.u] < low[p] {
					low[p] = low[f.u]
				}
				if parent[p] != -1 && low[f.u] >= disc[p] {
					isCut[p] = true
				}
			}
			// Root rule.
			if parent[f.u] == -1 && f.children > 1 {
				isCut[f.u] = true
			}
		}
	}
	var out []NodeID
	for i, c := range isCut {
		if c {
			out = append(out, NodeID(i))
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// ResilienceReport quantifies how exposed IoT-to-edge connectivity is to
// single-node infrastructure failures.
type ResilienceReport struct {
	// CutVertices lists articulation points among infrastructure nodes
	// (gateways/routers; IoT and edge endpoints excluded — losing the
	// endpoint itself is not a routing failure).
	CutVertices []NodeID
	// WorstCaseStranded is the largest number of IoT devices that lose
	// connectivity to every edge server when one infrastructure cut
	// vertex fails.
	WorstCaseStranded int
	// WorstVertex is the infrastructure node achieving that maximum, or
	// -1 when no failure strands anyone.
	WorstVertex NodeID
}

// Resilience evaluates single-node infrastructure failures: for every cut
// vertex that is a gateway or router, it simulates the node's removal and
// counts IoT devices left with no path to any edge server.
func (g *Graph) Resilience() ResilienceReport {
	rep := ResilienceReport{WorstVertex: -1}
	iot := g.NodesOfKind(KindIoT)
	edges := g.NodesOfKind(KindEdge)
	for _, cv := range g.CutVertices() {
		kind := g.Node(cv).Kind
		if kind != KindGateway && kind != KindRouter {
			continue
		}
		rep.CutVertices = append(rep.CutVertices, cv)
		stranded := g.strandedWithout(cv, iot, edges)
		if stranded > rep.WorstCaseStranded {
			rep.WorstCaseStranded = stranded
			rep.WorstVertex = cv
		}
	}
	return rep
}

// strandedWithout counts IoT devices with no path to any edge when banned
// is removed (BFS from all edges simultaneously, skipping banned).
func (g *Graph) strandedWithout(banned NodeID, iot, edges []NodeID) int {
	reach := make([]bool, len(g.nodes))
	var queue []NodeID
	for _, e := range edges {
		if e == banned {
			continue
		}
		reach[e] = true
		queue = append(queue, e)
	}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, h := range g.adj[u] {
			if h.to == banned || reach[h.to] {
				continue
			}
			reach[h.to] = true
			queue = append(queue, h.to)
		}
	}
	stranded := 0
	for _, d := range iot {
		if !reach[d] {
			stranded++
		}
	}
	return stranded
}
