package topology

import (
	"reflect"
	"testing"
)

// genParallelTestGraph builds a mid-sized hierarchical deployment for the
// parallel-kernel determinism tests.
func genParallelTestGraph(t testing.TB, seed int64) *Graph {
	t.Helper()
	g, err := Generate(FamilyHierarchical, Config{
		NumIoT: 120, NumEdge: 12, NumGateways: 24, NumRouters: 12, Seed: seed,
	}, PlaceUniform)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestAllPairsWorkersDeterministic(t *testing.T) {
	for _, seed := range []int64{1, 7} {
		g := genParallelTestGraph(t, seed)
		for _, cost := range []LinkCost{LatencyCost, PayloadCost(16)} {
			want := g.AllPairsWorkers(cost, 1)
			for _, workers := range []int{2, 8} {
				got := g.AllPairsWorkers(cost, workers)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("seed %d: AllPairs at workers=%d differs from sequential", seed, workers)
				}
			}
			if !reflect.DeepEqual(g.AllPairs(cost), want) {
				t.Fatalf("seed %d: default AllPairs differs from sequential", seed)
			}
		}
	}
}

func TestNewDelayMatrixWorkersDeterministic(t *testing.T) {
	for _, seed := range []int64{1, 7} {
		g := genParallelTestGraph(t, seed)
		want := NewDelayMatrixWorkers(g, LatencyCost, 1)
		for _, workers := range []int{2, 8} {
			got := NewDelayMatrixWorkers(g, LatencyCost, workers)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("seed %d: DelayMatrix at workers=%d differs from sequential", seed, workers)
			}
		}
		if !reflect.DeepEqual(NewDelayMatrix(g, LatencyCost), want) {
			t.Fatalf("seed %d: default NewDelayMatrix differs from sequential", seed)
		}
	}
}

// TestAllPairsMatchesFloydWarshall pins the parallel Dijkstra fan-out to the
// independent O(n^3) oracle.
func TestAllPairsParallelMatchesFloydWarshall(t *testing.T) {
	g, err := Generate(FamilyGeometric, Config{
		NumIoT: 30, NumEdge: 4, NumGateways: 8, NumRouters: 4, Seed: 3,
	}, PlaceUniform)
	if err != nil {
		t.Fatal(err)
	}
	want := g.FloydWarshall(LatencyCost)
	got := g.AllPairsWorkers(LatencyCost, 8)
	if len(got) != len(want) {
		t.Fatalf("dims differ: %d vs %d", len(got), len(want))
	}
	for u := range want {
		for v := range want[u] {
			d := got[u][v] - want[u][v]
			if d > 1e-9 || d < -1e-9 {
				t.Fatalf("dist[%d][%d] = %v, oracle %v", u, v, got[u][v], want[u][v])
			}
		}
	}
}
