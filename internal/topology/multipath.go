package topology

import (
	"fmt"
	"math"
	"sort"
)

// linkKey identifies an undirected link for load accounting.
type linkKey struct{ a, b NodeID }

func normKey(a, b NodeID) linkKey {
	if a > b {
		a, b = b, a
	}
	return linkKey{a, b}
}

// sortedLinkKeys returns load's keys in ascending (a, b) order, so loops
// aggregating per-link results iterate deterministically instead of in
// map order (CongestionResult.Links and Overloaded are ordered output).
func sortedLinkKeys(load map[linkKey]float64) []linkKey {
	keys := make([]linkKey, 0, len(load))
	for k := range load {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].a != keys[j].a {
			return keys[i].a < keys[j].a
		}
		return keys[i].b < keys[j].b
	})
	return keys
}

// effectiveDelay returns a path's delay for the given payload under the
// supplied per-link loads (Mbps): latency plus transmission inflated by
// 1/(1-util), with utilization capped.
func (g *Graph) effectiveDelay(path []NodeID, payloadKB float64, load map[linkKey]float64) float64 {
	total := 0.0
	for h := 0; h+1 < len(path); h++ {
		l, ok := g.LinkBetween(path[h], path[h+1])
		if !ok {
			return math.Inf(1)
		}
		total += l.LatencyMs
		if l.BandwidthMbps > 0 {
			u := load[normKey(path[h], path[h+1])] / l.BandwidthMbps
			if u > utilCap {
				u = utilCap
			}
			bits := payloadKB * 8 * 1000
			total += bits / (l.BandwidthMbps * 1000) / (1 - u)
		}
	}
	return total
}

// EvaluateCongestionMultipath is the congestion-aware routing counterpart
// of EvaluateCongestion: instead of pinning every flow to its single
// shortest path, each flow (heaviest first) picks the cheapest of its k
// shortest loopless paths *under the load already committed*, the way an
// ECMP/segment-routed underlay would spread hotspot traffic. The
// assignment (which edge serves which device) is unchanged — only routing
// differs — so comparing against EvaluateCongestion isolates the value of
// multipath routing.
func (g *Graph) EvaluateCongestionMultipath(dm *DelayMatrix, flows []Flow, assignment []int, k int) (*CongestionResult, error) {
	if len(flows) != len(assignment) {
		return nil, fmt.Errorf("topology: %d flows but %d assignments", len(flows), len(assignment))
	}
	if k <= 0 {
		return nil, fmt.Errorf("topology: k must be positive, got %d", k)
	}
	for _, col := range assignment {
		if col < 0 || col >= len(dm.Edge) {
			return nil, fmt.Errorf("topology: assignment column %d out of range", col)
		}
	}
	// Heaviest flows route first: they distort utilization the most, so
	// they get first pick while links are empty.
	order := make([]int, len(flows))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return flows[order[a]].Mbps() > flows[order[b]].Mbps() })

	load := make(map[linkKey]float64)
	chosen := make([][]NodeID, len(flows))
	for _, fi := range order {
		f := flows[fi]
		paths, err := g.KShortestPaths(f.IoT, dm.Edge[assignment[fi]], k, LatencyCost)
		if err != nil {
			return nil, err
		}
		if len(paths) == 0 {
			return nil, fmt.Errorf("topology: flow %d cannot reach edge column %d", fi, assignment[fi])
		}
		best, bestCost := 0, math.Inf(1)
		for pi, p := range paths {
			if c := g.effectiveDelay(p.Nodes, f.PayloadKB, load); c < bestCost {
				best, bestCost = pi, c
			}
		}
		chosen[fi] = paths[best].Nodes
		mbps := f.Mbps()
		for h := 0; h+1 < len(chosen[fi]); h++ {
			load[normKey(chosen[fi][h], chosen[fi][h+1])] += mbps
		}
	}
	// Final result under the committed loads.
	res := &CongestionResult{DelayMs: make([]float64, len(flows))}
	for fi, f := range flows {
		res.DelayMs[fi] = g.effectiveDelay(chosen[fi], f.PayloadKB, load)
	}
	for _, key := range sortedLinkKeys(load) {
		mbps := load[key]
		l, ok := g.LinkBetween(key.a, key.b)
		if !ok {
			return nil, fmt.Errorf("topology: internal error: load on missing link %d-%d", key.a, key.b)
		}
		util := 0.0
		if l.BandwidthMbps > 0 {
			util = mbps / l.BandwidthMbps
		}
		res.Links = append(res.Links, LinkLoad{Link: l, Mbps: mbps, Utilization: util})
		if l.BandwidthMbps > 0 && util >= 1 {
			res.Overloaded = append(res.Overloaded, l)
		}
	}
	return res, nil
}
