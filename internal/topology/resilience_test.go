package topology

import (
	"testing"
	"testing/quick"
)

func TestCutVerticesLine(t *testing.T) {
	// iot - gw - router - edge: gw and router are articulation points.
	g, _, gw, r, _ := lineGraph(t)
	cuts := g.CutVertices()
	if len(cuts) != 2 || cuts[0] != gw || cuts[1] != r {
		t.Fatalf("CutVertices = %v, want [%d %d]", cuts, gw, r)
	}
}

func TestCutVerticesCycleHasNone(t *testing.T) {
	g := NewGraph()
	var ids []NodeID
	for i := 0; i < 5; i++ {
		ids = append(ids, g.MustAddNode(KindRouter, names5[i], 0, 0))
	}
	for i := 0; i < 5; i++ {
		g.MustAddLink(ids[i], ids[(i+1)%5], 1, 0)
	}
	if cuts := g.CutVertices(); len(cuts) != 0 {
		t.Fatalf("cycle has cut vertices: %v", cuts)
	}
}

var names5 = []string{"a", "b", "c", "d", "e"}

func TestCutVerticesBridgeOfTwoCycles(t *testing.T) {
	// Two triangles joined at one shared node: the shared node cuts.
	g := NewGraph()
	a := g.MustAddNode(KindRouter, "a", 0, 0)
	b := g.MustAddNode(KindRouter, "b", 0, 0)
	c := g.MustAddNode(KindRouter, "c", 0, 0)
	d := g.MustAddNode(KindRouter, "d", 0, 0)
	e := g.MustAddNode(KindRouter, "e", 0, 0)
	g.MustAddLink(a, b, 1, 0)
	g.MustAddLink(b, c, 1, 0)
	g.MustAddLink(c, a, 1, 0)
	g.MustAddLink(c, d, 1, 0)
	g.MustAddLink(d, e, 1, 0)
	g.MustAddLink(e, c, 1, 0)
	cuts := g.CutVertices()
	if len(cuts) != 1 || cuts[0] != c {
		t.Fatalf("CutVertices = %v, want [%d]", cuts, c)
	}
}

// Property: removing a non-cut vertex never disconnects a connected graph,
// and removing a cut vertex always does. Verified against a brute-force
// connectivity check on generated topologies.
func TestCutVerticesQuick(t *testing.T) {
	f := func(seed int64) bool {
		cfg := Config{NumIoT: 6, NumEdge: 2, NumGateways: 7, Seed: seed}
		g, err := Waxman(cfg, 0.8, 0.5, PlaceUniform)
		if err != nil {
			return false
		}
		cutSet := map[NodeID]bool{}
		for _, cv := range g.CutVertices() {
			cutSet[cv] = true
		}
		// Brute force: a vertex is a cut vertex iff removing it leaves
		// the remaining graph (with >= 2 nodes) disconnected.
		for v := 0; v < g.NumNodes(); v++ {
			if disconnectsWithout(g, NodeID(v)) != cutSet[NodeID(v)] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// disconnectsWithout reports whether removing banned splits the remaining
// nodes of a connected graph.
func disconnectsWithout(g *Graph, banned NodeID) bool {
	n := g.NumNodes()
	if n <= 2 {
		return false
	}
	start := NodeID(-1)
	for v := 0; v < n; v++ {
		if NodeID(v) != banned {
			start = NodeID(v)
			break
		}
	}
	seen := map[NodeID]bool{start: true}
	queue := []NodeID{start}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, w := range g.Neighbors(u) {
			if w == banned || seen[w] {
				continue
			}
			seen[w] = true
			queue = append(queue, w)
		}
	}
	return len(seen) != n-1
}

func TestResilienceLine(t *testing.T) {
	g, _, gw, _, _ := lineGraph(t)
	rep := g.Resilience()
	if len(rep.CutVertices) != 2 {
		t.Fatalf("infra cut vertices = %v", rep.CutVertices)
	}
	// Losing the gateway (or router) strands the single IoT device.
	if rep.WorstCaseStranded != 1 {
		t.Fatalf("WorstCaseStranded = %d, want 1", rep.WorstCaseStranded)
	}
	if rep.WorstVertex != gw && g.Node(rep.WorstVertex).Kind != KindRouter {
		t.Fatalf("WorstVertex = %v", rep.WorstVertex)
	}
}

func TestResilienceRingIsRobust(t *testing.T) {
	// Ring backbone: no single gateway failure disconnects the ring, so
	// only devices attached to the failed gateway itself are exposed —
	// and those are counted, since their sole uplink dies with it.
	cfg := Config{NumIoT: 12, NumEdge: 3, NumGateways: 6, Seed: 5}
	g, err := Ring(cfg, PlaceUniform)
	if err != nil {
		t.Fatal(err)
	}
	rep := g.Resilience()
	// Gateways are cut vertices only w.r.t. their attached IoT leaves.
	if rep.WorstCaseStranded > 12 {
		t.Fatalf("stranded %d of 12", rep.WorstCaseStranded)
	}
	// The hierarchical tree must be strictly more exposed than the ring
	// on the same sizing.
	tree, err := Hierarchical(cfg, PlaceUniform)
	if err != nil {
		t.Fatal(err)
	}
	treeRep := tree.Resilience()
	if treeRep.WorstCaseStranded < rep.WorstCaseStranded {
		t.Fatalf("tree (%d) less exposed than ring (%d)",
			treeRep.WorstCaseStranded, rep.WorstCaseStranded)
	}
}
