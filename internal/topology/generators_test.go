package topology

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func baseCfg(seed int64) Config {
	return Config{NumIoT: 40, NumEdge: 5, NumGateways: 10, NumRouters: 4, Seed: seed}
}

// checkGenerated verifies the invariants every generator must uphold.
func checkGenerated(t *testing.T, g *Graph, err error, cfg Config) {
	t.Helper()
	if err != nil {
		t.Fatalf("generator error: %v", err)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("generated graph invalid: %v", err)
	}
	if got := len(g.NodesOfKind(KindIoT)); got != cfg.NumIoT {
		t.Fatalf("IoT count = %d, want %d", got, cfg.NumIoT)
	}
	if got := len(g.NodesOfKind(KindEdge)); got != cfg.NumEdge {
		t.Fatalf("edge count = %d, want %d", got, cfg.NumEdge)
	}
	// Every IoT device reaches every edge server.
	dm := NewDelayMatrix(g, LatencyCost)
	for i := range dm.DelayMs {
		for j := range dm.DelayMs[i] {
			if math.IsInf(dm.DelayMs[i][j], 1) {
				t.Fatalf("IoT %d cannot reach edge %d", i, j)
			}
			if dm.DelayMs[i][j] <= 0 {
				t.Fatalf("non-positive delay %v at (%d,%d)", dm.DelayMs[i][j], i, j)
			}
		}
	}
	// IoT devices have exactly one (wireless) uplink.
	for _, id := range g.NodesOfKind(KindIoT) {
		if g.Degree(id) != 1 {
			t.Fatalf("IoT node %d has degree %d, want 1", id, g.Degree(id))
		}
		nbr := g.Neighbors(id)[0]
		if g.Node(nbr).Kind != KindGateway {
			t.Fatalf("IoT node %d attached to %v, want gateway", id, g.Node(nbr).Kind)
		}
	}
}

func TestAllFamiliesGenerateValidGraphs(t *testing.T) {
	for _, fam := range Families() {
		fam := fam
		t.Run(string(fam), func(t *testing.T) {
			cfg := baseCfg(11)
			g, err := Generate(fam, cfg, PlaceUniform)
			checkGenerated(t, g, err, cfg)
		})
	}
}

func TestAllFamiliesHotspotPlacement(t *testing.T) {
	for _, fam := range Families() {
		fam := fam
		t.Run(string(fam), func(t *testing.T) {
			cfg := baseCfg(23)
			g, err := Generate(fam, cfg, PlaceHotspot)
			checkGenerated(t, g, err, cfg)
		})
	}
}

func TestGenerateDeterministic(t *testing.T) {
	for _, fam := range Families() {
		cfg := baseCfg(77)
		g1, err1 := Generate(fam, cfg, PlaceUniform)
		g2, err2 := Generate(fam, cfg, PlaceUniform)
		if err1 != nil || err2 != nil {
			t.Fatalf("%s: %v / %v", fam, err1, err2)
		}
		var b1, b2 bytes.Buffer
		if err := g1.WriteJSON(&b1); err != nil {
			t.Fatal(err)
		}
		if err := g2.WriteJSON(&b2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
			t.Fatalf("%s: same seed produced different graphs", fam)
		}
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	a, err := Hierarchical(baseCfg(1), PlaceUniform)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Hierarchical(baseCfg(2), PlaceUniform)
	if err != nil {
		t.Fatal(err)
	}
	var ba, bb bytes.Buffer
	if err := a.WriteJSON(&ba); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteJSON(&bb); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(ba.Bytes(), bb.Bytes()) {
		t.Fatal("different seeds produced identical graphs")
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{NumIoT: 0, NumEdge: 1, NumGateways: 1},
		{NumIoT: 1, NumEdge: 0, NumGateways: 1},
		{NumIoT: 1, NumEdge: 1, NumGateways: 0},
		{NumIoT: 1, NumEdge: 1, NumGateways: 1, AreaMeters: -5},
	}
	for i, cfg := range bad {
		if _, err := Hierarchical(cfg, PlaceUniform); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestGeneratorParameterValidation(t *testing.T) {
	cfg := baseCfg(1)
	if _, err := RandomGeometric(cfg, 0, PlaceUniform); err == nil {
		t.Error("RandomGeometric accepted radius 0")
	}
	if _, err := Waxman(cfg, 0, 0.5, PlaceUniform); err == nil {
		t.Error("Waxman accepted alpha 0")
	}
	if _, err := Waxman(cfg, 0.5, 1.5, PlaceUniform); err == nil {
		t.Error("Waxman accepted beta > 1")
	}
	if _, err := BarabasiAlbert(cfg, 0, PlaceUniform); err == nil {
		t.Error("BarabasiAlbert accepted attach 0")
	}
	if _, err := BarabasiAlbert(Config{NumIoT: 1, NumEdge: 1, NumGateways: 2, Seed: 1}, 5, PlaceUniform); err == nil {
		t.Error("BarabasiAlbert accepted attach >= gateways")
	}
	if _, err := Grid(cfg, 0, 3, PlaceUniform); err == nil {
		t.Error("Grid accepted 0 rows")
	}
	if _, err := FatTree(cfg, 3, PlaceUniform); err == nil {
		t.Error("FatTree accepted odd k")
	}
	if _, err := Ring(Config{NumIoT: 1, NumEdge: 1, NumGateways: 2, Seed: 1}, PlaceUniform); err == nil {
		t.Error("Ring accepted 2 gateways")
	}
	if _, err := Generate(Family("nope"), cfg, PlaceUniform); err == nil {
		t.Error("Generate accepted unknown family")
	}
}

func TestGridStructure(t *testing.T) {
	cfg := Config{NumIoT: 10, NumEdge: 2, NumGateways: 1, Seed: 3}
	g, err := Grid(cfg, 3, 4, PlaceUniform)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(g.NodesOfKind(KindGateway)); got != 12 {
		t.Fatalf("gateway count = %d, want 12", got)
	}
	// Interior lattice links: 3*3 + 2*4 = 17.
	wired := 0
	for _, l := range g.Links() {
		if g.Node(l.A).Kind == KindGateway && g.Node(l.B).Kind == KindGateway {
			wired++
		}
	}
	if wired != 17 {
		t.Fatalf("lattice link count = %d, want 17", wired)
	}
}

func TestFatTreeStructure(t *testing.T) {
	cfg := Config{NumIoT: 10, NumEdge: 4, NumGateways: 8, Seed: 3}
	g, err := FatTree(cfg, 4, PlaceUniform)
	if err != nil {
		t.Fatal(err)
	}
	// k=4: 4 core + 4 pods * (2 agg + 2 tor) = 20 routers.
	if got := len(g.NodesOfKind(KindRouter)); got != 20 {
		t.Fatalf("router count = %d, want 20", got)
	}
	checkGenerated(t, g, nil, cfg)
}

func TestBarabasiAlbertHubEmerges(t *testing.T) {
	cfg := Config{NumIoT: 5, NumEdge: 2, NumGateways: 60, Seed: 13}
	g, err := BarabasiAlbert(cfg, 2, PlaceUniform)
	if err != nil {
		t.Fatal(err)
	}
	maxDeg := 0
	for _, gw := range g.NodesOfKind(KindGateway) {
		deg := 0
		for _, n := range g.Neighbors(gw) {
			if g.Node(n).Kind == KindGateway {
				deg++
			}
		}
		if deg > maxDeg {
			maxDeg = deg
		}
	}
	// Preferential attachment should produce at least one clear hub.
	if maxDeg < 6 {
		t.Fatalf("max gateway degree = %d; expected a hub >= 6", maxDeg)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	g, err := Hierarchical(baseCfg(21), PlaceUniform)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := g.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumNodes() != g.NumNodes() || g2.NumLinks() != g.NumLinks() {
		t.Fatalf("round trip changed size: %d/%d vs %d/%d",
			g2.NumNodes(), g2.NumLinks(), g.NumNodes(), g.NumLinks())
	}
	var buf2 bytes.Buffer
	if err := g2.WriteJSON(&buf2); err != nil {
		t.Fatal(err)
	}
	// Note: node IDs may be renumbered but names are stable, and
	// WriteJSON orders by ID which follows file order, so re-encoding
	// must be identical.
	var buf3 bytes.Buffer
	if err := g.WriteJSON(&buf3); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf2.Bytes(), buf3.Bytes()) {
		t.Fatal("round trip is not byte-stable")
	}
}

func TestReadJSONErrors(t *testing.T) {
	cases := map[string]string{
		"garbage":      "{",
		"unknown kind": `{"nodes":[{"kind":"alien","name":"a"}],"links":[]}`,
		"unknown link": `{"nodes":[{"kind":"iot","name":"a"}],"links":[{"a":"a","b":"zzz","latency_ms":1}]}`,
		"bad latency":  `{"nodes":[{"kind":"iot","name":"a"},{"kind":"edge","name":"b"}],"links":[{"a":"a","b":"b","latency_ms":-1}]}`,
	}
	for name, payload := range cases {
		if _, err := ReadJSON(bytes.NewReader([]byte(payload))); err == nil {
			t.Errorf("%s: ReadJSON accepted invalid input", name)
		}
	}
}

// Property: for arbitrary small configs and seeds, the hierarchical
// generator yields valid graphs whose delay matrix is fully finite.
func TestHierarchicalQuick(t *testing.T) {
	f := func(seed int64, nIoT, nEdge, nGw uint8) bool {
		cfg := Config{
			NumIoT:      int(nIoT%30) + 1,
			NumEdge:     int(nEdge%6) + 1,
			NumGateways: int(nGw%8) + 1,
			Seed:        seed,
		}
		g, err := Hierarchical(cfg, PlaceUniform)
		if err != nil {
			return false
		}
		dm := NewDelayMatrix(g, LatencyCost)
		for i := range dm.DelayMs {
			for j := range dm.DelayMs[i] {
				if math.IsInf(dm.DelayMs[i][j], 1) || dm.DelayMs[i][j] <= 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSortIDs(t *testing.T) {
	ids := []NodeID{5, 1, 3}
	sortIDs(ids)
	if ids[0] != 1 || ids[1] != 3 || ids[2] != 5 {
		t.Fatalf("sortIDs = %v", ids)
	}
}
