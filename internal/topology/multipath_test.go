package topology

import (
	"math"
	"testing"
)

// twoPathGraph: two IoT devices reach the edge via two parallel gateway
// paths of equal latency but limited bandwidth, so single-path routing
// stacks both flows on one path while multipath spreads them.
func twoPathGraph(t *testing.T) (*Graph, *DelayMatrix) {
	t.Helper()
	g := NewGraph()
	i0 := g.MustAddNode(KindIoT, "iot-0", 0, 0)
	i1 := g.MustAddNode(KindIoT, "iot-1", 0, 1)
	gw := g.MustAddNode(KindGateway, "gw", 1, 0)
	ra := g.MustAddNode(KindRouter, "ra", 2, 0)
	rb := g.MustAddNode(KindRouter, "rb", 2, 1)
	e := g.MustAddNode(KindEdge, "edge-0", 3, 0)
	g.MustAddLink(i0, gw, 1, 1000)
	g.MustAddLink(i1, gw, 1, 1000)
	g.MustAddLink(gw, ra, 1, 10)
	g.MustAddLink(gw, rb, 1.0001, 10) // epsilon worse: never chosen by single-path
	g.MustAddLink(ra, e, 1, 10)
	g.MustAddLink(rb, e, 1, 10)
	return g, NewDelayMatrix(g, LatencyCost)
}

func TestMultipathSpreadsLoad(t *testing.T) {
	g, dm := twoPathGraph(t)
	flows := []Flow{
		{IoT: dm.IoT[0], RateHz: 10, PayloadKB: 90}, // 7.2 Mbps each
		{IoT: dm.IoT[1], RateHz: 10, PayloadKB: 90},
	}
	assignment := []int{0, 0}
	single, err := EvaluateCongestion(g, dm, flows, assignment)
	if err != nil {
		t.Fatal(err)
	}
	multi, err := g.EvaluateCongestionMultipath(dm, flows, assignment, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Single-path: both flows share the ra path, 14.4 Mbps on 10 Mbps
	// links -> overloaded. Multipath: one flow detours via rb.
	if len(single.Overloaded) == 0 {
		t.Fatal("single-path routing should overload the shared path")
	}
	if len(multi.Overloaded) != 0 {
		t.Fatalf("multipath still overloaded: %v", multi.Overloaded)
	}
	if multi.MeanDelayMs() >= single.MeanDelayMs() {
		t.Fatalf("multipath mean %v not below single-path %v",
			multi.MeanDelayMs(), single.MeanDelayMs())
	}
	if multi.MaxUtilization() >= single.MaxUtilization() {
		t.Fatalf("multipath max util %v not below single-path %v",
			multi.MaxUtilization(), single.MaxUtilization())
	}
}

func TestMultipathMatchesSinglePathWhenUncongested(t *testing.T) {
	g, dm := twoPathGraph(t)
	flows := []Flow{
		{IoT: dm.IoT[0], RateHz: 1, PayloadKB: 1},
		{IoT: dm.IoT[1], RateHz: 1, PayloadKB: 1},
	}
	assignment := []int{0, 0}
	single, err := EvaluateCongestion(g, dm, flows, assignment)
	if err != nil {
		t.Fatal(err)
	}
	multi, err := g.EvaluateCongestionMultipath(dm, flows, assignment, 3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(single.MeanDelayMs()-multi.MeanDelayMs()) > 0.1 {
		t.Fatalf("uncongested multipath %v diverges from single %v",
			multi.MeanDelayMs(), single.MeanDelayMs())
	}
}

func TestMultipathValidation(t *testing.T) {
	g, dm := twoPathGraph(t)
	flows := []Flow{{IoT: dm.IoT[0], RateHz: 1, PayloadKB: 1}}
	if _, err := g.EvaluateCongestionMultipath(dm, flows, []int{0, 0}, 2); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := g.EvaluateCongestionMultipath(dm, flows, []int{5}, 2); err == nil {
		t.Error("bad column accepted")
	}
	if _, err := g.EvaluateCongestionMultipath(dm, flows, []int{0}, 0); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestMultipathOnGeneratedTopology(t *testing.T) {
	cfg := Config{NumIoT: 20, NumEdge: 3, NumGateways: 6, Seed: 4}
	g, err := Hierarchical(cfg, PlaceHotspot)
	if err != nil {
		t.Fatal(err)
	}
	dm := NewDelayMatrix(g, LatencyCost)
	flows := make([]Flow, 20)
	assignment := make([]int, 20)
	for i := range flows {
		flows[i] = Flow{IoT: dm.IoT[i], RateHz: 5, PayloadKB: 20}
		_, assignment[i] = dm.MinDelay(i)
	}
	res, err := g.EvaluateCongestionMultipath(dm, flows, assignment, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range res.DelayMs {
		if math.IsInf(d, 0) || math.IsNaN(d) || d <= 0 {
			t.Fatalf("flow %d delay %v", i, d)
		}
	}
}
