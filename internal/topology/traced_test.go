package topology

import (
	"reflect"
	"testing"

	"taccc/internal/obs"
)

// TestNewDelayMatrixTracedIdentical pins the tracing carve-out: the
// traced build returns a bit-identical matrix whether tracing is off
// (nil phase), on, sequential or parallel.
func TestNewDelayMatrixTracedIdentical(t *testing.T) {
	g := genParallelTestGraph(t, 5)
	want := NewDelayMatrixWorkers(g, LatencyCost, 1)
	if got := NewDelayMatrixTraced(g, LatencyCost, 8, nil); !reflect.DeepEqual(got, want) {
		t.Fatal("traced build with nil phase differs from untraced")
	}
	var col obs.SpanCollector
	tr := obs.NewTracer(&col, obs.WallClock())
	for _, workers := range []int{1, 8} {
		ph := tr.Root("delay-matrix")
		if got := NewDelayMatrixTraced(g, LatencyCost, workers, ph); !reflect.DeepEqual(got, want) {
			t.Fatalf("traced build at workers=%d differs from untraced", workers)
		}
		ph.End()
	}
}

func TestNewDelayMatrixTracedShardSpans(t *testing.T) {
	g := genParallelTestGraph(t, 5)
	var col obs.SpanCollector
	tr := obs.NewTracer(&col, obs.WallClock())
	ph := tr.Root("delay-matrix")
	dm := NewDelayMatrixTraced(g, LatencyCost, 4, ph)
	ph.End()

	spans := col.Spans()
	var root obs.Span
	items, shards := 0, 0
	workers := map[float64]bool{}
	for _, sp := range spans {
		switch sp.Name {
		case "delay-matrix":
			root = sp
		case "shard":
			shards++
			w, ok := sp.AttrNum("worker")
			if !ok || workers[w] {
				t.Fatalf("shard span missing or duplicate worker attr: %+v", sp)
			}
			workers[w] = true
			n, ok := sp.AttrNum("items")
			if !ok {
				t.Fatalf("shard span missing items attr: %+v", sp)
			}
			items += int(n)
			if _, ok := sp.AttrNum("busy_ms"); !ok {
				t.Fatalf("shard span missing busy_ms attr: %+v", sp)
			}
		}
	}
	if shards != 4 {
		t.Fatalf("got %d shard spans, want 4", shards)
	}
	if items != dm.NumEdge() {
		t.Fatalf("shard items sum to %d, want %d edge sources", items, dm.NumEdge())
	}
	if root.Name == "" {
		t.Fatal("delay-matrix parent span missing")
	}
	for _, sp := range spans {
		if sp.Name == "shard" && sp.Parent != root.ID {
			t.Fatalf("shard span not parented to the delay-matrix phase: %+v", sp)
		}
	}
}
