package topology

import (
	"math"
	"strings"
	"testing"
)

// lineGraph builds iot - gw - router - edge with unit latencies.
func lineGraph(t *testing.T) (*Graph, NodeID, NodeID, NodeID, NodeID) {
	t.Helper()
	g := NewGraph()
	iot := g.MustAddNode(KindIoT, "iot-0", 0, 0)
	gw := g.MustAddNode(KindGateway, "gw-0", 1, 0)
	r := g.MustAddNode(KindRouter, "r-0", 2, 0)
	e := g.MustAddNode(KindEdge, "edge-0", 3, 0)
	g.MustAddLink(iot, gw, 1, 100)
	g.MustAddLink(gw, r, 1, 100)
	g.MustAddLink(r, e, 1, 100)
	return g, iot, gw, r, e
}

func TestAddNodeRejectsDuplicatesAndEmpty(t *testing.T) {
	g := NewGraph()
	if _, err := g.AddNode(KindIoT, "", 0, 0); err == nil {
		t.Fatal("empty name accepted")
	}
	if _, err := g.AddNode(KindIoT, "a", 0, 0); err != nil {
		t.Fatalf("first add failed: %v", err)
	}
	if _, err := g.AddNode(KindEdge, "a", 0, 0); err == nil {
		t.Fatal("duplicate name accepted")
	}
}

func TestAddLinkValidation(t *testing.T) {
	g := NewGraph()
	a := g.MustAddNode(KindIoT, "a", 0, 0)
	b := g.MustAddNode(KindEdge, "b", 0, 0)
	cases := []struct {
		name string
		do   func() error
	}{
		{"self-loop", func() error { return g.AddLink(a, a, 1, 1) }},
		{"bad endpoint", func() error { return g.AddLink(a, 99, 1, 1) }},
		{"negative latency", func() error { return g.AddLink(a, b, -1, 1) }},
		{"NaN latency", func() error { return g.AddLink(a, b, math.NaN(), 1) }},
		{"negative bandwidth", func() error { return g.AddLink(a, b, 1, -5) }},
	}
	for _, tc := range cases {
		if err := tc.do(); err == nil {
			t.Errorf("%s: no error", tc.name)
		}
	}
	if err := g.AddLink(a, b, 1, 1); err != nil {
		t.Fatalf("valid link rejected: %v", err)
	}
	if err := g.AddLink(b, a, 1, 1); err == nil {
		t.Fatal("duplicate (reversed) link accepted")
	}
}

func TestNeighborsAndDegree(t *testing.T) {
	g, iot, gw, r, e := lineGraph(t)
	if got := g.Degree(gw); got != 2 {
		t.Fatalf("Degree(gw) = %d, want 2", got)
	}
	nbrs := g.Neighbors(gw)
	if len(nbrs) != 2 || nbrs[0] != iot || nbrs[1] != r {
		t.Fatalf("Neighbors(gw) = %v", nbrs)
	}
	if g.Degree(e) != 1 {
		t.Fatalf("Degree(edge) = %d, want 1", g.Degree(e))
	}
	_ = iot
}

func TestLinkBetween(t *testing.T) {
	g, iot, gw, _, e := lineGraph(t)
	l, ok := g.LinkBetween(iot, gw)
	if !ok || l.LatencyMs != 1 {
		t.Fatalf("LinkBetween(iot, gw) = %+v, %v", l, ok)
	}
	if _, ok := g.LinkBetween(iot, e); ok {
		t.Fatal("LinkBetween found nonexistent link")
	}
	if _, ok := g.LinkBetween(iot, 99); ok {
		t.Fatal("LinkBetween accepted out-of-range node")
	}
}

func TestConnectedAndValidate(t *testing.T) {
	g, _, _, _, _ := lineGraph(t)
	if !g.Connected() {
		t.Fatal("line graph should be connected")
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// Add an isolated node.
	g.MustAddNode(KindRouter, "island", 0, 0)
	if g.Connected() {
		t.Fatal("graph with island reported connected")
	}
	if err := g.Validate(); err == nil {
		t.Fatal("Validate accepted disconnected graph")
	}
}

func TestValidateRequiresRoles(t *testing.T) {
	g := NewGraph()
	a := g.MustAddNode(KindIoT, "a", 0, 0)
	b := g.MustAddNode(KindRouter, "b", 0, 0)
	g.MustAddLink(a, b, 1, 0)
	if err := g.Validate(); err == nil {
		t.Fatal("Validate accepted graph without edge servers")
	}
}

func TestNodesOfKindAndCopySemantics(t *testing.T) {
	g, iot, _, _, e := lineGraph(t)
	iots := g.NodesOfKind(KindIoT)
	if len(iots) != 1 || iots[0] != iot {
		t.Fatalf("NodesOfKind(IoT) = %v", iots)
	}
	edges := g.NodesOfKind(KindEdge)
	if len(edges) != 1 || edges[0] != e {
		t.Fatalf("NodesOfKind(Edge) = %v", edges)
	}
	nodes := g.Nodes()
	nodes[0].Name = "mutated"
	if g.Node(0).Name == "mutated" {
		t.Fatal("Nodes leaked internal storage")
	}
}

func TestDijkstraLine(t *testing.T) {
	g, iot, gw, r, e := lineGraph(t)
	sp := g.Dijkstra(iot, LatencyCost)
	want := map[NodeID]float64{iot: 0, gw: 1, r: 2, e: 3}
	for id, d := range want {
		if sp.Dist[id] != d {
			t.Errorf("Dist[%d] = %v, want %v", id, sp.Dist[id], d)
		}
	}
	path := sp.PathTo(e)
	wantPath := []NodeID{iot, gw, r, e}
	if len(path) != len(wantPath) {
		t.Fatalf("PathTo(e) = %v, want %v", path, wantPath)
	}
	for i := range path {
		if path[i] != wantPath[i] {
			t.Fatalf("PathTo(e) = %v, want %v", path, wantPath)
		}
	}
}

func TestDijkstraPicksCheaperPath(t *testing.T) {
	g := NewGraph()
	a := g.MustAddNode(KindIoT, "a", 0, 0)
	b := g.MustAddNode(KindRouter, "b", 0, 0)
	c := g.MustAddNode(KindEdge, "c", 0, 0)
	g.MustAddLink(a, c, 10, 0) // direct but slow
	g.MustAddLink(a, b, 2, 0)
	g.MustAddLink(b, c, 3, 0) // detour 5 < 10
	sp := g.Dijkstra(a, LatencyCost)
	if sp.Dist[c] != 5 {
		t.Fatalf("Dist[c] = %v, want 5", sp.Dist[c])
	}
	p := sp.PathTo(c)
	if len(p) != 3 || p[1] != b {
		t.Fatalf("PathTo(c) = %v, want detour through b", p)
	}
}

func TestDijkstraUnreachable(t *testing.T) {
	g := NewGraph()
	a := g.MustAddNode(KindIoT, "a", 0, 0)
	b := g.MustAddNode(KindEdge, "b", 0, 0)
	sp := g.Dijkstra(a, LatencyCost)
	if !math.IsInf(sp.Dist[b], 1) {
		t.Fatalf("Dist to unreachable = %v, want +Inf", sp.Dist[b])
	}
	if sp.PathTo(b) != nil {
		t.Fatal("PathTo(unreachable) should be nil")
	}
}

func TestHopCounts(t *testing.T) {
	g, iot, gw, r, e := lineGraph(t)
	hops := g.HopCounts(iot)
	for id, want := range map[NodeID]int{iot: 0, gw: 1, r: 2, e: 3} {
		if hops[id] != want {
			t.Errorf("hops[%d] = %d, want %d", id, hops[id], want)
		}
	}
	g.MustAddNode(KindRouter, "island", 0, 0)
	hops = g.HopCounts(iot)
	if hops[len(hops)-1] != -1 {
		t.Fatal("unreachable node should have hop count -1")
	}
}

func TestPayloadCost(t *testing.T) {
	l := Link{LatencyMs: 2, BandwidthMbps: 8}
	// 1 kB = 8000 bits; at 8 Mbit/s = 8000 bits/ms -> 1 ms transmission.
	got := PayloadCost(1)(l)
	if math.Abs(got-3) > 1e-9 {
		t.Fatalf("PayloadCost = %v, want 3", got)
	}
	// Zero bandwidth: transmission ignored.
	l.BandwidthMbps = 0
	if got := PayloadCost(1000)(l); got != 2 {
		t.Fatalf("PayloadCost with bw=0 = %v, want 2", got)
	}
}

func TestDijkstraMatchesFloydWarshall(t *testing.T) {
	// Random-ish deterministic graph via the Waxman generator.
	cfg := Config{NumIoT: 20, NumEdge: 4, NumGateways: 12, Seed: 99}
	g, err := Waxman(cfg, 0.9, 0.5, PlaceUniform)
	if err != nil {
		t.Fatal(err)
	}
	fw := g.FloydWarshall(LatencyCost)
	for u := 0; u < g.NumNodes(); u++ {
		sp := g.Dijkstra(NodeID(u), LatencyCost)
		for v := 0; v < g.NumNodes(); v++ {
			a, b := sp.Dist[v], fw[u][v]
			if math.IsInf(a, 1) != math.IsInf(b, 1) {
				t.Fatalf("reachability mismatch at %d->%d", u, v)
			}
			if !math.IsInf(a, 1) && math.Abs(a-b) > 1e-9 {
				t.Fatalf("distance mismatch at %d->%d: dijkstra %v, fw %v", u, v, a, b)
			}
		}
	}
}

func TestAllPairsSymmetric(t *testing.T) {
	cfg := Config{NumIoT: 10, NumEdge: 3, NumGateways: 8, Seed: 5}
	g, err := Hierarchical(cfg, PlaceUniform)
	if err != nil {
		t.Fatal(err)
	}
	m := g.AllPairs(LatencyCost)
	for u := range m {
		if m[u][u] != 0 {
			t.Fatalf("self-distance m[%d][%d] = %v", u, u, m[u][u])
		}
		for v := range m[u] {
			if math.Abs(m[u][v]-m[v][u]) > 1e-9 {
				t.Fatalf("asymmetric distances: m[%d][%d]=%v m[%d][%d]=%v", u, v, m[u][v], v, u, m[v][u])
			}
		}
	}
}

func TestDelayMatrix(t *testing.T) {
	g, iot, _, _, e := lineGraph(t)
	dm := NewDelayMatrix(g, LatencyCost)
	if dm.NumIoT() != 1 || dm.NumEdge() != 1 {
		t.Fatalf("matrix dims %dx%d, want 1x1", dm.NumIoT(), dm.NumEdge())
	}
	if dm.IoT[0] != iot || dm.Edge[0] != e {
		t.Fatal("matrix node IDs wrong")
	}
	if dm.DelayMs[0][0] != 3 {
		t.Fatalf("delay = %v, want 3", dm.DelayMs[0][0])
	}
	d, j := dm.MinDelay(0)
	if d != 3 || j != 0 {
		t.Fatalf("MinDelay = %v,%d", d, j)
	}
}

func TestDelayMatrixMatchesPerIoTDijkstra(t *testing.T) {
	cfg := Config{NumIoT: 30, NumEdge: 5, NumGateways: 10, Seed: 7}
	g, err := Hierarchical(cfg, PlaceHotspot)
	if err != nil {
		t.Fatal(err)
	}
	dm := NewDelayMatrix(g, LatencyCost)
	for i, iot := range dm.IoT {
		sp := g.Dijkstra(iot, LatencyCost)
		for j, e := range dm.Edge {
			if math.Abs(dm.DelayMs[i][j]-sp.Dist[e]) > 1e-9 {
				t.Fatalf("delay[%d][%d] = %v, dijkstra %v", i, j, dm.DelayMs[i][j], sp.Dist[e])
			}
		}
	}
}

func TestNodeKindString(t *testing.T) {
	for k, want := range map[NodeKind]string{
		KindIoT: "iot", KindGateway: "gateway", KindRouter: "router",
		KindEdge: "edge", KindCloud: "cloud", NodeKind(42): "NodeKind(42)",
	} {
		if got := k.String(); got != want {
			t.Errorf("NodeKind(%d).String() = %q, want %q", int(k), got, want)
		}
	}
}

func TestEmptyGraphConnected(t *testing.T) {
	if !NewGraph().Connected() {
		t.Fatal("empty graph should be vacuously connected")
	}
}

func TestDOTContainsAllNodes(t *testing.T) {
	g, _, _, _, _ := lineGraph(t)
	var sb strings.Builder
	if err := g.WriteDOT(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, name := range []string{"iot-0", "gw-0", "r-0", "edge-0"} {
		if !strings.Contains(out, name) {
			t.Errorf("DOT output missing node %q", name)
		}
	}
}
