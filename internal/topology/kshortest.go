package topology

import (
	"container/heap"
	"fmt"
	"math"
	"sort"
)

// Path is a node sequence with its total cost.
type Path struct {
	Nodes []NodeID
	Cost  float64
}

// equalPath reports whether two node sequences are identical.
func equalPath(a, b []NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// KShortestPaths returns up to k loopless paths from src to dst in
// increasing cost order, using Yen's algorithm. Fewer than k paths are
// returned when the graph does not contain that many distinct loopless
// paths. Multipath (ECMP-style) traffic spreading and failure-resilient
// routing both build on this.
func (g *Graph) KShortestPaths(src, dst NodeID, k int, cost LinkCost) ([]Path, error) {
	if !g.valid(src) || !g.valid(dst) {
		return nil, fmt.Errorf("topology: k-shortest endpoints %d-%d out of range", src, dst)
	}
	if k <= 0 {
		return nil, fmt.Errorf("topology: k must be positive, got %d", k)
	}
	sp := g.Dijkstra(src, cost)
	first := sp.PathTo(dst)
	if first == nil {
		return nil, nil // unreachable: no paths at all
	}
	paths := []Path{{Nodes: first, Cost: sp.Dist[dst]}}
	var candidates []Path

	for len(paths) < k {
		prev := paths[len(paths)-1].Nodes
		// Each node of the previous path (except the last) is a spur.
		for spurIdx := 0; spurIdx < len(prev)-1; spurIdx++ {
			spur := prev[spurIdx]
			root := prev[:spurIdx+1]
			rootCost := pathCost(g, root, cost)
			// Ban edges that would reproduce an already-known path
			// with this root, and ban revisiting root nodes.
			bannedEdges := map[[2]NodeID]bool{}
			for _, p := range paths {
				if len(p.Nodes) > spurIdx && equalPath(p.Nodes[:spurIdx+1], root) {
					a, b := p.Nodes[spurIdx], p.Nodes[spurIdx+1]
					bannedEdges[[2]NodeID{a, b}] = true
					bannedEdges[[2]NodeID{b, a}] = true
				}
			}
			bannedNodes := map[NodeID]bool{}
			for _, nid := range root[:len(root)-1] {
				bannedNodes[nid] = true
			}
			spurPath, spurCost := g.constrainedShortest(spur, dst, cost, bannedEdges, bannedNodes)
			if spurPath == nil {
				continue
			}
			total := append(append([]NodeID{}, root[:len(root)-1]...), spurPath...)
			cand := Path{Nodes: total, Cost: rootCost + spurCost}
			dup := false
			for _, c := range candidates {
				if equalPath(c.Nodes, cand.Nodes) {
					dup = true
					break
				}
			}
			for _, p := range paths {
				if equalPath(p.Nodes, cand.Nodes) {
					dup = true
					break
				}
			}
			if !dup {
				candidates = append(candidates, cand)
			}
		}
		if len(candidates) == 0 {
			break
		}
		sort.SliceStable(candidates, func(a, b int) bool { return candidates[a].Cost < candidates[b].Cost })
		paths = append(paths, candidates[0])
		candidates = candidates[1:]
	}
	return paths, nil
}

// pathCost sums the link costs along a node sequence.
func pathCost(g *Graph, nodes []NodeID, cost LinkCost) float64 {
	total := 0.0
	for i := 0; i+1 < len(nodes); i++ {
		l, ok := g.LinkBetween(nodes[i], nodes[i+1])
		if !ok {
			return math.Inf(1)
		}
		total += cost(l)
	}
	return total
}

// constrainedShortest is Dijkstra from src to dst avoiding banned edges and
// nodes. Returns (nil, +Inf) when no path exists.
func (g *Graph) constrainedShortest(src, dst NodeID, cost LinkCost, bannedEdges map[[2]NodeID]bool, bannedNodes map[NodeID]bool) ([]NodeID, float64) {
	n := len(g.nodes)
	dist := make([]float64, n)
	prevN := make([]NodeID, n)
	done := make([]bool, n)
	for i := range dist {
		dist[i] = math.Inf(1)
		prevN[i] = -1
	}
	dist[src] = 0
	q := &pq{{node: src, dist: 0}}
	for q.Len() > 0 {
		item := heap.Pop(q).(pqItem)
		u := item.node
		if done[u] {
			continue
		}
		done[u] = true
		if u == dst {
			break
		}
		for _, h := range g.adj[u] {
			if bannedNodes[h.to] || bannedEdges[[2]NodeID{u, h.to}] {
				continue
			}
			c := cost(Link{A: u, B: h.to, LatencyMs: h.latencyMs, BandwidthMbps: h.bwMbps})
			if nd := item.dist + c; nd < dist[h.to] {
				dist[h.to] = nd
				prevN[h.to] = u
				heap.Push(q, pqItem{node: h.to, dist: nd})
			}
		}
	}
	if math.IsInf(dist[dst], 1) {
		return nil, math.Inf(1)
	}
	var rev []NodeID
	for u := dst; u != -1; u = prevN[u] {
		rev = append(rev, u)
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev, dist[dst]
}
