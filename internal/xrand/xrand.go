// Package xrand provides deterministic, seed-splittable pseudo-random
// sources for reproducible experiments.
//
// Every simulation and every experiment replication in this repository draws
// randomness through this package so that a (seed, stream-label) pair fully
// determines the run. Splitting is done by hashing the parent seed together
// with a label, which keeps independent subsystems (topology generation,
// workload arrivals, algorithm exploration) decorrelated even when they are
// created from the same root seed.
package xrand

import (
	"hash/fnv"
	"math"
	"math/rand"
)

// Source is a deterministic random source with convenience distributions.
// The zero value is not usable; construct with New or Split.
type Source struct {
	rng *rand.Rand
}

// New returns a Source seeded with seed.
func New(seed int64) *Source {
	return &Source{rng: rand.New(rand.NewSource(seed))}
}

// SplitSeed derives a child seed from a parent seed and a label. The same
// (seed, label) pair always yields the same child seed.
func SplitSeed(seed int64, label string) int64 {
	h := fnv.New64a()
	var buf [8]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(uint64(seed) >> (8 * i))
	}
	_, _ = h.Write(buf[:])
	_, _ = h.Write([]byte(label))
	return int64(h.Sum64())
}

// Split returns a new Source whose stream is determined by this source's
// seed history and the given label. Splitting does not advance the parent.
func (s *Source) Split(label string) *Source {
	return New(SplitSeed(s.Int63(), label))
}

// NewSplit returns a Source derived from (seed, label) without constructing
// an intermediate parent.
func NewSplit(seed int64, label string) *Source {
	return New(SplitSeed(seed, label))
}

// Int63 returns a non-negative pseudo-random 63-bit integer.
func (s *Source) Int63() int64 { return s.rng.Int63() }

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int { return s.rng.Intn(n) }

// Float64 returns a uniform float64 in [0, 1).
func (s *Source) Float64() float64 { return s.rng.Float64() }

// Uniform returns a uniform float64 in [lo, hi).
func (s *Source) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*s.rng.Float64()
}

// UniformInt returns a uniform integer in [lo, hi]. It panics if hi < lo.
func (s *Source) UniformInt(lo, hi int) int {
	if hi < lo {
		panic("xrand: UniformInt with hi < lo")
	}
	return lo + s.rng.Intn(hi-lo+1)
}

// Normal returns a normally distributed float64 with the given mean and
// standard deviation.
func (s *Source) Normal(mean, stddev float64) float64 {
	return mean + stddev*s.rng.NormFloat64()
}

// Exponential returns an exponentially distributed float64 with the given
// rate (mean 1/rate). It panics if rate <= 0.
func (s *Source) Exponential(rate float64) float64 {
	if rate <= 0 {
		panic("xrand: Exponential with non-positive rate")
	}
	return s.rng.ExpFloat64() / rate
}

// Pareto returns a Pareto-distributed float64 with scale xm and shape alpha.
func (s *Source) Pareto(xm, alpha float64) float64 {
	u := 1 - s.rng.Float64() // in (0,1]
	return xm / math.Pow(u, 1/alpha)
}

// LogNormal returns a log-normally distributed float64 where the underlying
// normal has mean mu and standard deviation sigma.
func (s *Source) LogNormal(mu, sigma float64) float64 {
	return math.Exp(s.Normal(mu, sigma))
}

// Bernoulli returns true with probability p.
func (s *Source) Bernoulli(p float64) bool { return s.rng.Float64() < p }

// Perm returns a pseudo-random permutation of [0, n).
func (s *Source) Perm(n int) []int { return s.rng.Perm(n) }

// PermInto fills p with a pseudo-random permutation of [0, len(p)) without
// allocating. It performs exactly the draws Perm(len(p)) performs, in the
// same order, so swapping one for the other never shifts the stream: a
// source in a given state produces the same permutation from either.
func (s *Source) PermInto(p []int) {
	for i := range p {
		j := s.rng.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
}

// Shuffle pseudo-randomizes the order of n elements using swap.
func (s *Source) Shuffle(n int, swap func(i, j int)) { s.rng.Shuffle(n, swap) }

// Choice returns a uniform index weighted by weights. Weights must be
// non-negative with a positive sum; otherwise Choice panics.
func (s *Source) Choice(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		if w < 0 || math.IsNaN(w) {
			panic("xrand: Choice with negative or NaN weight")
		}
		total += w
	}
	if total <= 0 {
		panic("xrand: Choice with non-positive total weight")
	}
	r := s.rng.Float64() * total
	acc := 0.0
	for i, w := range weights {
		acc += w
		if r < acc {
			return i
		}
	}
	return len(weights) - 1 // floating-point slack
}

// Poisson returns a Poisson-distributed integer with the given mean using
// Knuth's method for small means and a normal approximation for large ones.
func (s *Source) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 500 {
		// Normal approximation with continuity correction.
		v := s.Normal(mean, math.Sqrt(mean))
		if v < 0 {
			return 0
		}
		return int(v + 0.5)
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= s.rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}
