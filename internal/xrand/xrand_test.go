package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Int63() != b.Int63() {
			t.Fatalf("sources with equal seeds diverged at draw %d", i)
		}
	}
}

func TestSplitSeedStable(t *testing.T) {
	if SplitSeed(7, "topology") != SplitSeed(7, "topology") {
		t.Fatal("SplitSeed is not deterministic")
	}
	if SplitSeed(7, "topology") == SplitSeed(7, "workload") {
		t.Fatal("SplitSeed does not separate labels")
	}
	if SplitSeed(7, "topology") == SplitSeed(8, "topology") {
		t.Fatal("SplitSeed does not separate seeds")
	}
}

func TestNewSplitIndependence(t *testing.T) {
	a := NewSplit(1, "a")
	b := NewSplit(1, "b")
	same := 0
	for i := 0; i < 100; i++ {
		if a.Intn(1000) == b.Intn(1000) {
			same++
		}
	}
	if same > 20 {
		t.Fatalf("split streams look correlated: %d/100 equal draws", same)
	}
}

func TestUniformRange(t *testing.T) {
	s := New(1)
	for i := 0; i < 10000; i++ {
		v := s.Uniform(3, 7)
		if v < 3 || v >= 7 {
			t.Fatalf("Uniform(3,7) out of range: %v", v)
		}
	}
}

func TestUniformIntRange(t *testing.T) {
	s := New(1)
	seen := map[int]bool{}
	for i := 0; i < 10000; i++ {
		v := s.UniformInt(2, 5)
		if v < 2 || v > 5 {
			t.Fatalf("UniformInt(2,5) out of range: %v", v)
		}
		seen[v] = true
	}
	for v := 2; v <= 5; v++ {
		if !seen[v] {
			t.Errorf("UniformInt never produced %d", v)
		}
	}
}

func TestUniformIntPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("UniformInt(5,2) did not panic")
		}
	}()
	New(1).UniformInt(5, 2)
}

func TestExponentialMean(t *testing.T) {
	s := New(7)
	const rate = 2.0
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += s.Exponential(rate)
	}
	mean := sum / n
	if math.Abs(mean-1/rate) > 0.01 {
		t.Fatalf("Exponential(2) mean = %v, want ~0.5", mean)
	}
}

func TestExponentialPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Exponential(0) did not panic")
		}
	}()
	New(1).Exponential(0)
}

func TestPoissonMean(t *testing.T) {
	s := New(3)
	for _, mean := range []float64{0.5, 4, 30, 800} {
		sum := 0.0
		const n = 50000
		for i := 0; i < n; i++ {
			sum += float64(s.Poisson(mean))
		}
		got := sum / n
		if math.Abs(got-mean) > 0.05*mean+0.05 {
			t.Errorf("Poisson(%v) sample mean = %v", mean, got)
		}
	}
}

func TestPoissonNonPositive(t *testing.T) {
	if got := New(1).Poisson(0); got != 0 {
		t.Fatalf("Poisson(0) = %d, want 0", got)
	}
	if got := New(1).Poisson(-3); got != 0 {
		t.Fatalf("Poisson(-3) = %d, want 0", got)
	}
}

func TestParetoLowerBound(t *testing.T) {
	s := New(11)
	for i := 0; i < 10000; i++ {
		if v := s.Pareto(2, 1.5); v < 2 {
			t.Fatalf("Pareto(2, 1.5) below scale: %v", v)
		}
	}
}

func TestChoiceDistribution(t *testing.T) {
	s := New(5)
	weights := []float64{1, 0, 3}
	counts := make([]int, 3)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[s.Choice(weights)]++
	}
	if counts[1] != 0 {
		t.Fatalf("Choice picked zero-weight index %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if math.Abs(ratio-3) > 0.2 {
		t.Fatalf("Choice ratio = %v, want ~3", ratio)
	}
}

func TestChoicePanics(t *testing.T) {
	for _, weights := range [][]float64{{}, {0, 0}, {-1, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Choice(%v) did not panic", weights)
				}
			}()
			New(1).Choice(weights)
		}()
	}
}

func TestBernoulliExtremes(t *testing.T) {
	s := New(9)
	for i := 0; i < 1000; i++ {
		if s.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !s.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(2)
	p := s.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("Perm produced invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestZipfUniformWhenSkewZero(t *testing.T) {
	z := NewZipf(New(1), 4, 0)
	for i := 0; i < 4; i++ {
		if math.Abs(z.Prob(i)-0.25) > 1e-12 {
			t.Fatalf("Prob(%d) = %v, want 0.25", i, z.Prob(i))
		}
	}
}

func TestZipfSkewFavorsLowRanks(t *testing.T) {
	z := NewZipf(New(1), 100, 1.0)
	counts := make([]int, 100)
	for i := 0; i < 100000; i++ {
		counts[z.Sample()]++
	}
	if counts[0] <= counts[50] {
		t.Fatalf("rank 0 (%d) should dominate rank 50 (%d)", counts[0], counts[50])
	}
}

func TestZipfProbSumsToOne(t *testing.T) {
	z := NewZipf(New(1), 37, 0.8)
	sum := 0.0
	for i := 0; i < z.N(); i++ {
		sum += z.Prob(i)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("Zipf probabilities sum to %v", sum)
	}
}

func TestZipfPanics(t *testing.T) {
	for _, tc := range []struct {
		n int
		s float64
	}{{0, 1}, {-1, 1}, {5, -0.1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewZipf(%d, %v) did not panic", tc.n, tc.s)
				}
			}()
			NewZipf(New(1), tc.n, tc.s)
		}()
	}
}

// Property: Zipf samples are always within range for arbitrary seeds/sizes.
func TestZipfSampleInRangeQuick(t *testing.T) {
	f := func(seed int64, n uint8, skewCenti uint16) bool {
		size := int(n%64) + 1
		skew := float64(skewCenti%300) / 100
		z := NewZipf(New(seed), size, skew)
		for i := 0; i < 50; i++ {
			v := z.Sample()
			if v < 0 || v >= size {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Choice always returns an in-range index with positive weight.
func TestChoiceInRangeQuick(t *testing.T) {
	f := func(seed int64, raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		weights := make([]float64, len(raw))
		total := 0.0
		for i, r := range raw {
			weights[i] = float64(r)
			total += weights[i]
		}
		if total == 0 {
			return true
		}
		s := New(seed)
		for i := 0; i < 20; i++ {
			idx := s.Choice(weights)
			if idx < 0 || idx >= len(weights) || weights[idx] == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestPermIntoMatchesPerm pins the RNG-stream contract PermInto exists
// for: filling a caller-owned buffer must perform exactly the draws
// Perm(len(p)) performs, so switching a solver from Perm to PermInto
// changes neither its permutations nor any later draw from the source.
func TestPermIntoMatchesPerm(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 100} {
		a, b := New(31), New(31)
		p := make([]int, n)
		a.PermInto(p)
		q := b.Perm(n)
		for i := range p {
			if p[i] != q[i] {
				t.Fatalf("n=%d: PermInto %v, Perm %v", n, p, q)
			}
		}
		if a.Int63() != b.Int63() {
			t.Fatalf("n=%d: sources diverged after PermInto vs Perm", n)
		}
	}
}
