package xrand

import "math"

// Zipf samples integers in [0, n) with probability proportional to
// 1/(rank+1)^s. A skew s of 0 degenerates to uniform; typical IoT demand
// skews are in [0.6, 1.2].
type Zipf struct {
	cdf []float64
	src *Source
}

// NewZipf returns a Zipf sampler over n ranks with skew s drawing from src.
// It panics if n <= 0 or s < 0.
func NewZipf(src *Source, n int, s float64) *Zipf {
	if n <= 0 {
		panic("xrand: NewZipf with n <= 0")
	}
	if s < 0 {
		panic("xrand: NewZipf with negative skew")
	}
	cdf := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		total += 1 / math.Pow(float64(i+1), s)
		cdf[i] = total
	}
	for i := range cdf {
		cdf[i] /= total
	}
	return &Zipf{cdf: cdf, src: src}
}

// N returns the number of ranks.
func (z *Zipf) N() int { return len(z.cdf) }

// Sample returns a rank in [0, N()).
func (z *Zipf) Sample() int {
	r := z.src.Float64()
	// Binary search for the first cdf entry >= r.
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < r {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Prob returns the probability mass of rank i.
func (z *Zipf) Prob(i int) float64 {
	if i < 0 || i >= len(z.cdf) {
		return 0
	}
	if i == 0 {
		return z.cdf[0]
	}
	return z.cdf[i] - z.cdf[i-1]
}
