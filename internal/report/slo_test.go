package report

import (
	"bytes"
	"strings"
	"testing"

	"taccc/internal/obs"
	"taccc/internal/obs/runlog"
	"taccc/internal/obs/slo"
)

// sloCollect buffers tracker events.
type sloCollect struct{ events []obs.Event }

func (c *sloCollect) Emit(e obs.Event) { c.events = append(c.events, e) }

// sloStream drives a real tracker through an overloaded run and returns
// its event stream round-tripped through the canonical JSONL encoding —
// exactly what runlog.Load hands the report (json.Number fields).
func sloStream(t *testing.T) []obs.Event {
	t.Helper()
	sink := &sloCollect{}
	tr, err := slo.New(slo.Config{
		WindowMs: 100,
		Objectives: []slo.Objective{
			{Name: "lat", Series: slo.SeriesE2E, Stat: slo.StatQuantile(0.95), Threshold: 20, Target: 0.90},
			{Name: "miss", Series: slo.SeriesE2E, Stat: slo.StatMiss, Threshold: 0.5, Target: 0.99},
		},
		Sink: sink,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Windows 0-1 comply (5 ms), windows 2-4 violate (500 ms): alert
	// fires at window 2 and force-resolves at Finish.
	for w := 0; w < 5; w++ {
		v := 5.0
		if w >= 2 {
			v = 500
		}
		tr.ObserveRequest(float64(w*100)+50, 1, 1, 2, 1, v, false)
	}
	tr.Finish(500)
	var buf bytes.Buffer
	for _, e := range sink.events {
		line, err := obs.EncodeEventLine(e)
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(line)
	}
	decoded, err := obs.ReadEventStream(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return decoded
}

func TestSLOFromEvents(t *testing.T) {
	r := SLOFromEvents(sloStream(t))
	if r == nil {
		t.Fatal("nil report from populated stream")
	}
	if r.Windows != 5 {
		t.Fatalf("windows = %d, want 5", r.Windows)
	}
	if len(r.Objectives) != 2 {
		t.Fatalf("objectives = %d, want 2", len(r.Objectives))
	}
	lat := r.Objectives[0]
	if lat.Name != "lat" || lat.Violations != 3 || lat.Windows != 5 {
		t.Fatalf("lat stat wrong: %+v", lat)
	}
	if lat.Met {
		t.Fatalf("lat objective met at 40%% compliance vs 90%% target")
	}
	if len(lat.WorstWindows) != 3 {
		t.Fatalf("worst windows = %d, want 3 (capped)", len(lat.WorstWindows))
	}
	// All three violating windows observed the same bucket bound; ties
	// break toward the earlier window.
	if lat.WorstWindows[0].Window != 2 {
		t.Fatalf("worst window = %d, want 2", lat.WorstWindows[0].Window)
	}
	if lat.WorstWindows[0].Observed <= 20 {
		t.Fatalf("worst observed %v not above threshold", lat.WorstWindows[0].Observed)
	}
	miss := r.Objectives[1]
	if !miss.Met || miss.Violations != 0 {
		t.Fatalf("miss objective should be clean: %+v", miss)
	}
	// Alert timeline: lat fires at window 2, end-of-run resolve.
	if len(r.Alerts) != 2 {
		t.Fatalf("alerts = %d, want 2: %+v", len(r.Alerts), r.Alerts)
	}
	if r.Alerts[0].State != "firing" || r.Alerts[0].Objective != "lat" || r.Alerts[0].Window != 2 {
		t.Fatalf("fire transition wrong: %+v", r.Alerts[0])
	}
	if r.Alerts[1].State != "resolved" || r.Alerts[1].Reason != "end-of-run" {
		t.Fatalf("resolve transition wrong: %+v", r.Alerts[1])
	}
}

func TestSLOFromEventsEmpty(t *testing.T) {
	if r := SLOFromEvents(nil); r != nil {
		t.Fatalf("nil stream produced %+v", r)
	}
	if r := SLOFromEvents([]obs.Event{{Kind: "span"}}); r != nil {
		t.Fatalf("stream without SLO events produced %+v", r)
	}
}

func sloArchive(t *testing.T) *runlog.Archive {
	t.Helper()
	return &runlog.Archive{
		Manifest: runlog.Manifest{Format: runlog.FormatVersion, Tool: "tacsim", Version: "test", Seed: 1},
		Summary:  runlog.Summary{},
		SLO:      sloStream(t),
	}
}

func TestSummarizeRendersSLOSection(t *testing.T) {
	src := &Source{Kind: "archive", Path: "mem", Archive: sloArchive(t)}
	r := Summarize(src)
	if r.SLO == nil {
		t.Fatal("Summarize dropped the SLO stream")
	}
	md := r.Markdown()
	for _, want := range []string{
		"## SLO compliance",
		"5 evaluated window(s)",
		"| lat | e2e.p95<=20 | 5 | 3 |",
		"**VIOLATED**",
		"| miss |",
		"| met |",
		"worst windows for lat",
		"### Alert timeline",
		"**lat FIRED**",
		"resolved (end-of-run)",
	} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}
}

func TestSummarizeWithoutSLOHasNoSection(t *testing.T) {
	a := sloArchive(t)
	a.SLO = nil
	r := Summarize(&Source{Kind: "archive", Path: "mem", Archive: a})
	if r.SLO != nil {
		t.Fatalf("SLO report without slo.jsonl: %+v", r.SLO)
	}
	if strings.Contains(r.Markdown(), "SLO compliance") {
		t.Fatal("markdown renders SLO section without SLO data")
	}
}

func TestSLOMetricsForDiff(t *testing.T) {
	src := &Source{Kind: "archive", Path: "mem", Archive: sloArchive(t)}
	got := map[string]Metric{}
	for _, m := range src.Metrics() {
		got[m.Name] = m
	}
	comp, ok := got["slo/lat compliance_pct"]
	if !ok {
		t.Fatalf("missing slo/lat compliance_pct in %v", got)
	}
	if comp.Value != 40 || !comp.HigherIsBetter || comp.CI95 != 0 {
		t.Fatalf("compliance metric wrong: %+v", comp)
	}
	if v := got["slo/lat violations"]; v.Value != 3 || v.HigherIsBetter {
		t.Fatalf("violations metric wrong: %+v", v)
	}
	if v := got["slo/lat budget_remaining"]; !v.HigherIsBetter {
		t.Fatalf("budget metric should improve upward: %+v", v)
	}
	if v := got["slo/miss compliance_pct"]; v.Value != 100 {
		t.Fatalf("miss compliance = %v, want 100", v.Value)
	}
	// Diffing identical SLO streams must stay clean.
	d, err := DiffSources(src, &Source{Kind: "archive", Path: "mem2", Archive: sloArchive(t)}, 5)
	if err != nil {
		t.Fatal(err)
	}
	sloRows := 0
	for _, md := range d.Metrics {
		if !strings.HasPrefix(md.Name, "slo/") {
			continue
		}
		sloRows++
		if md.Verdict != VerdictOK {
			t.Fatalf("identical SLO streams judged %s: %+v", md.Verdict, md)
		}
	}
	if sloRows == 0 {
		t.Fatal("diff carried no slo/ metrics")
	}
}
