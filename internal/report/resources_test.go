package report

import (
	"strings"
	"testing"

	"taccc/internal/obs"
	"taccc/internal/obs/runlog"
	"taccc/internal/obs/sysmon"
)

// resourcedSpans is tracedSpans with begin/end resource attributes on
// the non-root, non-shard spans — the shape a -sysmon run produces.
func resourcedSpans() []obs.Span {
	res := func(begin, end uint64, allocs, gc uint64, pause float64) map[string]interface{} {
		return map[string]interface{}{
			"heap_begin_bytes": begin,
			"heap_end_bytes":   end,
			"heap_delta_bytes": int64(end) - int64(begin),
			"allocs":           allocs,
			"gc_cycles":        gc,
			"gc_pause_ms":      pause,
		}
	}
	spans := tracedSpans()
	spans[1].Attrs = res(1000, 1500, 50, 0, 0)    // topology
	spans[2].Attrs = res(1500, 4000, 900, 1, 0.5) // delay-matrix
	spans[5].Attrs = res(4000, 2000, 300, 2, 1.5) // solve (heap shrank)
	spans[6].Attrs = res(4100, 2000, 250, 2, 1.5) // improvement
	return spans
}

func TestResourcePhasesFromSpans(t *testing.T) {
	samples := []sysmon.Sample{
		{TMs: 30, HeapAllocBytes: 9000},  // inside delay-matrix: transient high
		{TMs: 60, HeapAllocBytes: 3000},  // inside solve, below its boundary peak
		{TMs: 99, HeapAllocBytes: 12000}, // untraced tail: no phase window
	}
	phases := ResourcePhasesFromSpans(resourcedSpans(), samples)
	if phases == nil {
		t.Fatal("nil resource table from a resourced trace")
	}

	// The acceptance criterion: the resource table's phase set and order
	// match the wall-time table's exactly.
	pipeline := PipelineFromSpans(resourcedSpans())
	if len(phases) != len(pipeline.Phases) {
		t.Fatalf("resource table has %d phases, pipeline has %d", len(phases), len(pipeline.Phases))
	}
	for i := range phases {
		if phases[i].Name != pipeline.Phases[i].Name {
			t.Fatalf("phase %d: resource %q vs pipeline %q", i, phases[i].Name, pipeline.Phases[i].Name)
		}
	}

	byName := map[string]ResourcePhase{}
	for _, ph := range phases {
		byName[ph.Name] = ph
	}
	dm := byName["delay-matrix"]
	if dm.HeapDeltaBytes != 2500 || dm.Allocs != 900 || dm.GCCycles != 1 || dm.GCPauseMs != 0.5 {
		t.Fatalf("delay-matrix row = %+v", dm)
	}
	// Peak comes from the periodic sample at t=30, above both boundaries.
	if dm.PeakHeapBytes != 9000 {
		t.Fatalf("delay-matrix peak = %d, want the in-window sample's 9000", dm.PeakHeapBytes)
	}
	solve := byName["solve"]
	if solve.HeapDeltaBytes != -2000 {
		t.Fatalf("solve heap delta = %d, want -2000", solve.HeapDeltaBytes)
	}
	// The t=60 sample (3000) is below solve's begin snapshot (4000).
	if solve.PeakHeapBytes != 4000 {
		t.Fatalf("solve peak = %d, want the boundary 4000", solve.PeakHeapBytes)
	}
	if byName["topology"].Spans != 1 {
		t.Fatalf("topology row = %+v", byName["topology"])
	}
}

// A trace without resource attributes (sysmon off) yields no table at
// all, not a table of zero rows.
func TestResourcePhasesNilWithoutAttrs(t *testing.T) {
	if got := ResourcePhasesFromSpans(tracedSpans(), nil); got != nil {
		t.Fatalf("resource table from an unresourced trace: %+v", got)
	}
	if got := ResourcePhasesFromSpans(nil, nil); got != nil {
		t.Fatalf("resource table from an empty stream: %+v", got)
	}
}

func TestResourceUsageFromSamples(t *testing.T) {
	if u := ResourceUsageFromSamples(nil); u != nil {
		t.Fatalf("usage from no samples = %+v", u)
	}
	samples := []sysmon.Sample{
		{TMs: 0, HeapAllocBytes: 1000, RSSBytes: 5000, Goroutines: 4, GCCycles: 10, GCPauseMs: 2},
		{TMs: 10, HeapAllocBytes: 8000, RSSBytes: 9000, Goroutines: 12, GCCycles: 11, GCPauseMs: 2.5},
		{TMs: 20, HeapAllocBytes: 3000, RSSBytes: 7000, Goroutines: 6, GCCycles: 13, GCPauseMs: 3.25},
	}
	u := ResourceUsageFromSamples(samples)
	if u.Samples != 3 || u.PeakHeapBytes != 8000 || u.PeakRSSBytes != 9000 || u.MaxGoroutines != 12 {
		t.Fatalf("usage peaks = %+v", u)
	}
	// GC figures are deltas over the sampled window, not process totals.
	if u.GCCycles != 3 || u.GCPauseMs != 1.25 {
		t.Fatalf("usage GC deltas = %+v", u)
	}
}

func TestResourceMarkdownTable(t *testing.T) {
	man := runlog.Manifest{Format: runlog.FormatVersion, Tool: "tactest", Version: "devel", Seed: 1}
	samples := []sysmon.Sample{
		{TMs: 30, HeapAllocBytes: 9000, RSSBytes: 1 << 20, Goroutines: 8, GCCycles: 1, GCPauseMs: 0.5},
	}
	r := &Report{Path: "x", Kind: "archive", MissRate: -1,
		Manifest:      &man,
		Pipeline:      PipelineFromSpans(resourcedSpans()),
		Resources:     ResourcePhasesFromSpans(resourcedSpans(), samples),
		ResourceUsage: ResourceUsageFromSamples(samples),
	}
	md := r.Markdown()
	for _, want := range []string{"## Resource attribution", "Δheap KB", "delay-matrix", "max goroutines 8"} {
		if !strings.Contains(md, want) {
			t.Fatalf("markdown missing %q:\n%s", want, md)
		}
	}
}
