package report

import (
	"fmt"
	"sort"
	"strings"

	"taccc/internal/obs"
)

// SLOWindowStat is one violating window, kept for the "worst windows"
// listing (largest observed-over-threshold excess first).
type SLOWindowStat struct {
	Window   int64   `json:"window"`
	EndMs    float64 `json:"end_ms"`
	Observed float64 `json:"observed"`
}

// SLOObjectiveStat is one objective's final verdict from the archive's
// slo-objective summary event, plus its worst violating windows from the
// slo-eval stream.
type SLOObjectiveStat struct {
	Name            string          `json:"name"`
	Series          string          `json:"series"`
	Stat            string          `json:"stat"`
	Threshold       float64         `json:"threshold"`
	TargetPct       float64         `json:"target_pct"`
	Windows         int             `json:"windows"`
	Violations      int             `json:"violations"`
	CompliancePct   float64         `json:"compliance_pct"`
	BudgetTotal     float64         `json:"budget_total"`
	BudgetRemaining float64         `json:"budget_remaining"`
	Alerts          int             `json:"alerts"`
	Met             bool            `json:"met"`
	WorstWindows    []SLOWindowStat `json:"worst_windows,omitempty"`
}

// SLOAlertStat is one alert transition from the archive's slo-alert
// stream, in emission (sim-time) order.
type SLOAlertStat struct {
	Objective string  `json:"objective"`
	State     string  `json:"state"`
	Reason    string  `json:"reason,omitempty"`
	Window    int64   `json:"window"`
	AtMs      float64 `json:"at_ms"`
	Observed  float64 `json:"observed"`
}

// SLOReport is the offline view of an archive's slo.jsonl stream.
type SLOReport struct {
	// Windows is the number of closed (non-empty) windows the run
	// evaluated.
	Windows    int                `json:"windows"`
	Objectives []SLOObjectiveStat `json:"objectives"`
	// Alerts is the full fire/resolve timeline.
	Alerts []SLOAlertStat `json:"alerts,omitempty"`
}

// worstWindowsPerObjective caps the "worst windows" listing.
const worstWindowsPerObjective = 3

// SLOFromEvents folds an archive's SLO stream (slo-window / slo-eval /
// slo-alert / slo-objective events) into the report view. Returns nil
// when the stream is empty or absent — archives from runs without -slo.
func SLOFromEvents(events []obs.Event) *SLOReport {
	if len(events) == 0 {
		return nil
	}
	r := &SLOReport{}
	windows := map[int64]bool{}
	worst := map[string][]SLOWindowStat{}
	order := []string{}
	for _, e := range events {
		switch e.Kind {
		case "slo-window":
			if w, ok := e.Int("window"); ok {
				windows[w] = true
			}
		case "slo-eval":
			violated, _ := e.Bool("violated")
			if !violated {
				continue
			}
			name, _ := e.Str("objective")
			w, _ := e.Int("window")
			endMs, _ := e.Num("end_ms")
			observed, _ := e.Num("observed")
			worst[name] = append(worst[name], SLOWindowStat{Window: w, EndMs: endMs, Observed: observed})
		case "slo-alert":
			a := SLOAlertStat{}
			a.Objective, _ = e.Str("objective")
			a.State, _ = e.Str("state")
			a.Reason, _ = e.Str("reason")
			a.Window, _ = e.Int("window")
			a.AtMs, _ = e.Num("at_ms")
			a.Observed, _ = e.Num("observed")
			r.Alerts = append(r.Alerts, a)
		case "slo-objective":
			o := SLOObjectiveStat{}
			o.Name, _ = e.Str("objective")
			o.Series, _ = e.Str("series")
			o.Stat, _ = e.Str("stat")
			o.Threshold, _ = e.Num("threshold")
			o.TargetPct, _ = e.Num("target_pct")
			if v, ok := e.Int("windows"); ok {
				o.Windows = int(v)
			}
			if v, ok := e.Int("violations"); ok {
				o.Violations = int(v)
			}
			o.CompliancePct, _ = e.Num("compliance_pct")
			o.BudgetTotal, _ = e.Num("budget_total")
			o.BudgetRemaining, _ = e.Num("budget_remaining")
			if v, ok := e.Int("alerts"); ok {
				o.Alerts = int(v)
			}
			o.Met, _ = e.Bool("met")
			r.Objectives = append(r.Objectives, o)
			order = append(order, o.Name)
		}
	}
	if len(r.Objectives) == 0 && len(windows) == 0 && len(r.Alerts) == 0 {
		return nil
	}
	r.Windows = len(windows)
	// Worst windows: the largest observed values first (every recorded
	// eval here violated, so "largest observed" is "worst excess" for
	// <=-thresholded stats). Ties break toward the earlier window for
	// stable output.
	for _, name := range order {
		ws := worst[name]
		sort.Slice(ws, func(i, j int) bool {
			if ws[i].Observed != ws[j].Observed {
				return ws[i].Observed > ws[j].Observed
			}
			return ws[i].Window < ws[j].Window
		})
		if len(ws) > worstWindowsPerObjective {
			ws = ws[:worstWindowsPerObjective]
		}
		for i := range r.Objectives {
			if r.Objectives[i].Name == name {
				r.Objectives[i].WorstWindows = ws
				break
			}
		}
	}
	return r
}

// markdownSLO renders the "SLO compliance" section.
func (r *SLOReport) markdown(b *strings.Builder) {
	fmt.Fprintf(b, "## SLO compliance\n\n")
	fmt.Fprintf(b, "%d evaluated window(s)\n\n", r.Windows)
	fmt.Fprintf(b, "| objective | spec | windows | violations | compliance | target | budget left | alerts | verdict |\n")
	fmt.Fprintf(b, "|---|---|---:|---:|---:|---:|---:|---:|---|\n")
	for _, o := range r.Objectives {
		verdict := "met"
		if !o.Met {
			verdict = "**VIOLATED**"
		}
		fmt.Fprintf(b, "| %s | %s.%s<=%g | %d | %d | %.2f%% | %.2f%% | %+.2f | %d | %s |\n",
			o.Name, o.Series, o.Stat, o.Threshold, o.Windows, o.Violations,
			o.CompliancePct, o.TargetPct, o.BudgetRemaining, o.Alerts, verdict)
	}
	fmt.Fprintln(b)
	for _, o := range r.Objectives {
		if len(o.WorstWindows) == 0 {
			continue
		}
		parts := make([]string, 0, len(o.WorstWindows))
		for _, w := range o.WorstWindows {
			parts = append(parts, fmt.Sprintf("w%d@%.1fs %.3g", w.Window, w.EndMs/1000, w.Observed))
		}
		fmt.Fprintf(b, "- worst windows for %s (vs %g): %s\n", o.Name, o.Threshold, strings.Join(parts, ", "))
	}
	if len(r.Alerts) > 0 {
		fmt.Fprintf(b, "\n### Alert timeline\n\n")
		for _, a := range r.Alerts {
			switch a.State {
			case "firing":
				fmt.Fprintf(b, "- t=%.1fs **%s FIRED** (window %d, observed %.3g)\n",
					a.AtMs/1000, a.Objective, a.Window, a.Observed)
			default:
				reason := a.Reason
				if reason == "" {
					reason = a.State
				}
				fmt.Fprintf(b, "- t=%.1fs %s resolved (%s)\n", a.AtMs/1000, a.Objective, reason)
			}
		}
	}
	fmt.Fprintln(b)
}
