package report

import (
	"math"
	"strings"
	"testing"

	"taccc/internal/obs"
	"taccc/internal/obs/runlog"
)

// tracedSpans builds a synthetic pipeline trace with exact timings:
//
//	pipeline [0, 100]
//	├── topology     [0, 10]
//	├── delay-matrix [10, 50]   (2 shards: busy 35+25 of 40+38 resident)
//	│   ├── shard worker=0 [10, 50] busy=35
//	│   └── shard worker=1 [11, 49] busy=25
//	├── solve        [50, 90]
//	│   └── improvement [55, 88]
//	└── (untraced tail 90..100)
func tracedSpans() []obs.Span {
	return []obs.Span{
		{Trace: 1, ID: 1, Name: "pipeline", StartMs: 0, EndMs: 100},
		{Trace: 1, ID: 2, Parent: 1, Name: "topology", StartMs: 0, EndMs: 10},
		{Trace: 1, ID: 3, Parent: 1, Name: "delay-matrix", StartMs: 10, EndMs: 50},
		{Trace: 1, ID: 4, Parent: 3, Name: "shard", StartMs: 10, EndMs: 50,
			Attrs: map[string]interface{}{"worker": 0, "items": 6, "busy_ms": 35.0}},
		{Trace: 1, ID: 5, Parent: 3, Name: "shard", StartMs: 11, EndMs: 49,
			Attrs: map[string]interface{}{"worker": 1, "items": 5, "busy_ms": 25.0}},
		{Trace: 1, ID: 6, Parent: 1, Name: "solve", StartMs: 50, EndMs: 90},
		{Trace: 1, ID: 7, Parent: 6, Name: "improvement", StartMs: 55, EndMs: 88},
	}
}

func TestPipelineFromSpans(t *testing.T) {
	p := PipelineFromSpans(tracedSpans())
	if p == nil {
		t.Fatal("nil pipeline from a rooted trace")
	}
	if p.Root != "pipeline" || p.WallMs != 100 {
		t.Fatalf("root = %s, wall = %v", p.Root, p.WallMs)
	}
	// Direct children cover [0,90] of [0,100].
	if math.Abs(p.CoveragePct-90) > 1e-9 {
		t.Fatalf("coverage = %v, want 90", p.CoveragePct)
	}
	want := []string{"topology", "delay-matrix", "solve", "improvement"}
	if len(p.Phases) != len(want) {
		t.Fatalf("phases = %+v", p.Phases)
	}
	byName := map[string]PipelinePhase{}
	for i, ph := range p.Phases {
		if ph.Name != want[i] {
			t.Fatalf("phase order: got %s at %d, want %s", ph.Name, i, want[i])
		}
		byName[ph.Name] = ph
	}
	dm := byName["delay-matrix"]
	if dm.TotalMs != 40 || math.Abs(dm.SharePct-40) > 1e-9 || dm.Count != 1 {
		t.Fatalf("delay-matrix row = %+v", dm)
	}
	if dm.Workers != 2 {
		t.Fatalf("delay-matrix workers = %d", dm.Workers)
	}
	// speedup = (35+25)/40 = 1.5x; idle = 1 - 60/78.
	if math.Abs(dm.SpeedupX-1.5) > 1e-9 {
		t.Fatalf("speedup = %v, want 1.5", dm.SpeedupX)
	}
	wantIdle := 100 * (1 - 60.0/78.0)
	if math.Abs(dm.IdlePct-wantIdle) > 1e-9 {
		t.Fatalf("idle = %v, want %v", dm.IdlePct, wantIdle)
	}
	if topo := byName["topology"]; topo.Workers != 0 || topo.SpeedupX != 0 {
		t.Fatalf("serial phase grew worker columns: %+v", topo)
	}
	// Critical path: root → delay-matrix wait — no: solve (40) vs
	// delay-matrix (40): SliceStable irrelevant, longest child picks
	// first max strictly greater; delay-matrix and solve tie at 40 and
	// the first encountered wins. Pin the documented rule instead: the
	// path descends through dominant children to a leaf.
	if len(p.Critical) != 1 && len(p.Critical) != 2 {
		t.Fatalf("critical path = %+v", p.Critical)
	}
	if first := p.Critical[0]; first.DurMs != 40 {
		t.Fatalf("critical head = %+v, want a 40 ms phase", first)
	}
}

func TestPipelineCriticalPathDescends(t *testing.T) {
	spans := []obs.Span{
		{Trace: 1, ID: 1, Name: "root", StartMs: 0, EndMs: 100},
		{Trace: 1, ID: 2, Parent: 1, Name: "a", StartMs: 0, EndMs: 30},
		{Trace: 1, ID: 3, Parent: 1, Name: "b", StartMs: 30, EndMs: 100},
		{Trace: 1, ID: 4, Parent: 3, Name: "b1", StartMs: 30, EndMs: 40},
		{Trace: 1, ID: 5, Parent: 3, Name: "b2", StartMs: 40, EndMs: 95},
	}
	p := PipelineFromSpans(spans)
	if len(p.Critical) != 2 || p.Critical[0].Name != "b" || p.Critical[1].Name != "b2" {
		t.Fatalf("critical path = %+v, want b → b2", p.Critical)
	}
	if p.Critical[1].SharePct != 55 {
		t.Fatalf("b2 share = %v, want 55", p.Critical[1].SharePct)
	}
}

func TestPipelineNoRoot(t *testing.T) {
	if p := PipelineFromSpans(nil); p != nil {
		t.Fatalf("pipeline from empty stream = %+v", p)
	}
	orphans := []obs.Span{{Trace: 1, ID: 2, Parent: 9, Name: "x", StartMs: 0, EndMs: 1}}
	if p := PipelineFromSpans(orphans); p != nil {
		t.Fatalf("pipeline from rootless stream = %+v", p)
	}
}

func TestPipelineMarkdownAndMetrics(t *testing.T) {
	man := runlog.Manifest{Format: runlog.FormatVersion, Tool: "tactest", Version: "devel", Seed: 1}
	r := &Report{Path: "x", Kind: "archive", MissRate: -1,
		Manifest: &man, Pipeline: PipelineFromSpans(tracedSpans())}
	md := r.Markdown()
	for _, want := range []string{"## Pipeline phases", "delay-matrix", "1.50x", "critical path:", "90.0% traced"} {
		if !strings.Contains(md, want) {
			t.Fatalf("markdown missing %q:\n%s", want, md)
		}
	}
}
