package report

import (
	"math"
	"sort"

	"taccc/internal/obs"
)

// PipelinePhase is one row of the pipeline phase-attribution table:
// every span sharing a name is folded into total wall time, share of
// the root span, and — for phases carrying per-worker "shard" child
// spans (the delay-matrix build) — the realized parallel speedup and
// worker idle fraction.
type PipelinePhase struct {
	Name     string  `json:"name"`
	TotalMs  float64 `json:"total_ms"`
	SharePct float64 `json:"share_pct"`
	Count    int     `json:"count"`
	// Workers is the number of distinct worker shards observed under
	// this phase (0 for serial phases).
	Workers int `json:"workers,omitempty"`
	// SpeedupX is Σ shard busy time / phase wall time — the parallel
	// speedup the shards actually delivered (only when Workers > 0).
	SpeedupX float64 `json:"speedup_x,omitempty"`
	// IdlePct is the fraction of the workers' combined residency spent
	// not executing items: 100·(1 − Σ busy / Σ (shard end − start)).
	// High idle with balanced shards means scheduling overhead; high
	// idle with one long shard means imbalance.
	IdlePct float64 `json:"idle_pct,omitempty"`
}

// CriticalStep is one hop of the pipeline critical path: the chain of
// dominant child spans from the root down.
type CriticalStep struct {
	Name     string  `json:"name"`
	DurMs    float64 `json:"dur_ms"`
	SharePct float64 `json:"share_pct"`
}

// Pipeline is the folded wall-clock pipeline trace of one run.
type Pipeline struct {
	Root   string  `json:"root"`
	WallMs float64 `json:"wall_ms"`
	// CoveragePct is how much of the root span's wall time its direct
	// child phases account for (interval union, so overlapping phases
	// don't double-count). Low coverage means untraced time.
	CoveragePct float64         `json:"coverage_pct"`
	Phases      []PipelinePhase `json:"phases"`
	Critical    []CriticalStep  `json:"critical,omitempty"`
}

// shardSpan is the reserved span name for per-worker shard accounting;
// shards feed their parent phase's speedup/idle columns instead of
// appearing as a phase of their own.
const shardSpan = "shard"

// PipelineFromSpans folds a span stream into the phase-attribution
// report. Returns nil when the stream has no root span.
func PipelineFromSpans(spans []obs.Span) *Pipeline {
	var root *obs.Span
	for i := range spans {
		sp := &spans[i]
		if sp.Parent != 0 {
			continue
		}
		if root == nil || sp.EndMs-sp.StartMs > root.EndMs-root.StartMs {
			root = sp
		}
	}
	if root == nil {
		return nil
	}
	p := &Pipeline{Root: root.Name, WallMs: root.EndMs - root.StartMs}

	children := map[obs.SpanID][]obs.Span{}
	for _, sp := range spans {
		if sp.Parent != 0 {
			children[sp.Parent] = append(children[sp.Parent], sp)
		}
	}

	// Phase table: group every non-root, non-shard span by name,
	// ordered by first appearance so the table reads in pipeline order.
	type acc struct {
		totalMs, firstStart       float64
		count                     int
		workers                   map[float64]bool
		shardBusyMs, shardResidMs float64
	}
	phases := map[string]*acc{}
	var order []string
	for _, sp := range spans {
		if sp.Parent == 0 || sp.Name == shardSpan {
			continue
		}
		a, ok := phases[sp.Name]
		if !ok {
			a = &acc{firstStart: sp.StartMs}
			phases[sp.Name] = a
			order = append(order, sp.Name)
		}
		a.totalMs += sp.EndMs - sp.StartMs
		if sp.StartMs < a.firstStart {
			a.firstStart = sp.StartMs
		}
		a.count++
		for _, sh := range children[sp.ID] {
			if sh.Name != shardSpan {
				continue
			}
			if a.workers == nil {
				a.workers = map[float64]bool{}
			}
			if w, ok := sh.AttrNum("worker"); ok {
				a.workers[w] = true
			}
			if busy, ok := sh.AttrNum("busy_ms"); ok {
				a.shardBusyMs += busy
			}
			a.shardResidMs += sh.EndMs - sh.StartMs
		}
	}
	sort.SliceStable(order, func(i, j int) bool {
		return phases[order[i]].firstStart < phases[order[j]].firstStart
	})
	for _, name := range order {
		a := phases[name]
		row := PipelinePhase{Name: name, TotalMs: a.totalMs, Count: a.count, Workers: len(a.workers)}
		if p.WallMs > 0 {
			row.SharePct = 100 * a.totalMs / p.WallMs
		}
		if len(a.workers) > 0 {
			if a.totalMs > 0 {
				row.SpeedupX = a.shardBusyMs / a.totalMs
			}
			if a.shardResidMs > 0 {
				row.IdlePct = 100 * math.Max(0, 1-a.shardBusyMs/a.shardResidMs)
			}
		}
		p.Phases = append(p.Phases, row)
	}

	// Coverage: union of the root's direct children clipped to the root.
	p.CoveragePct = coveragePct(*root, children[root.ID])

	// Critical path: from the root, repeatedly descend into the longest
	// child span until a leaf.
	for cur := root; ; {
		var next *obs.Span
		for i := range children[cur.ID] {
			ch := &children[cur.ID][i]
			if ch.Name == shardSpan {
				continue
			}
			if next == nil || ch.EndMs-ch.StartMs > next.EndMs-next.StartMs {
				next = ch
			}
		}
		if next == nil {
			break
		}
		step := CriticalStep{Name: next.Name, DurMs: next.EndMs - next.StartMs}
		if p.WallMs > 0 {
			step.SharePct = 100 * step.DurMs / p.WallMs
		}
		p.Critical = append(p.Critical, step)
		cur = next
	}
	return p
}

// coveragePct computes the percentage of root's duration covered by the
// union of its child intervals (clipped to the root window).
func coveragePct(root obs.Span, kids []obs.Span) float64 {
	wall := root.EndMs - root.StartMs
	if wall <= 0 || len(kids) == 0 {
		return 0
	}
	type iv struct{ lo, hi float64 }
	ivs := make([]iv, 0, len(kids))
	for _, ch := range kids {
		lo, hi := math.Max(ch.StartMs, root.StartMs), math.Min(ch.EndMs, root.EndMs)
		if hi > lo {
			ivs = append(ivs, iv{lo, hi})
		}
	}
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].lo < ivs[j].lo })
	covered, end := 0.0, math.Inf(-1)
	for _, v := range ivs {
		if v.hi <= end {
			continue
		}
		if v.lo > end {
			covered += v.hi - v.lo
		} else {
			covered += v.hi - end
		}
		end = v.hi
	}
	return 100 * covered / wall
}
