// Package report turns run archives (internal/obs/runlog) and bench
// results files (internal/experiment.BenchResults) into offline analysis
// reports: a single-source summary (convergence, per-phase delay
// attribution, miss rate, hot edges) and a two-source diff with
// per-metric deltas, 95% confidence intervals and regression verdicts.
// cmd/tacreport is a thin CLI over this package; the verdict rule here is
// what the CI perf gate enforces.
package report

import (
	"fmt"
	"math"
	"os"
	"sort"
	"strings"

	"taccc/internal/experiment"
	"taccc/internal/obs"
	"taccc/internal/obs/runlog"
	"taccc/internal/obs/sysmon"
	"taccc/internal/stats"
)

// Source is one loaded tacreport input: a run archive directory or a
// bench results JSON file, auto-detected by Load.
type Source struct {
	// Kind is "archive" or "bench".
	Kind    string
	Path    string
	Archive *runlog.Archive
	Bench   *experiment.BenchResults
}

// LoadSource opens path as a run archive (a directory containing a
// manifest) or a bench results file (anything else), validating either.
func LoadSource(path string) (*Source, error) {
	if runlog.IsArchiveDir(path) {
		a, err := runlog.Load(path)
		if err != nil {
			return nil, err
		}
		return &Source{Kind: "archive", Path: path, Archive: a}, nil
	}
	st, err := os.Stat(path)
	if err != nil {
		return nil, fmt.Errorf("report: %w", err)
	}
	if st.IsDir() {
		return nil, fmt.Errorf("report: %s: directory is not a run archive (no %s)", path, runlog.ManifestFile)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("report: %w", err)
	}
	defer f.Close()
	b, err := experiment.ReadBenchResults(f)
	if err != nil {
		return nil, fmt.Errorf("report: %s: %w", path, err)
	}
	return &Source{Kind: "bench", Path: path, Bench: b}, nil
}

// Metric is one named scalar extracted from a source for diffing. CI95
// is the 95% confidence half-width when the source carries one (0
// otherwise: single-run histogram quantiles and summary scalars get
// threshold-only comparison).
type Metric struct {
	Name           string  `json:"name"`
	Value          float64 `json:"value"`
	CI95           float64 `json:"ci95,omitempty"`
	HigherIsBetter bool    `json:"higher_is_better,omitempty"`
	// Floor is an absolute noise floor: a move no larger than this is
	// never significant, whatever its relative size. Used for resource
	// metrics whose jitter is absolute rather than relative — µs-scale
	// GC pauses and KB-scale heap peaks sit so close to zero that
	// scheduler noise alone can clear any percentage threshold.
	Floor float64 `json:"floor,omitempty"`
}

// Absolute noise floors for the resource metrics (see Metric.Floor):
// forced-GC pauses jitter by tens of microseconds, GC-settled heap
// peaks by tens of kilobytes, independent of the measured value.
const (
	gcPauseFloorMs    = 0.05
	peakHeapFloorByte = 256 << 10
)

// ConvergenceStat summarizes one algorithm's solver-convergence stream
// from an archive's "iter" events.
type ConvergenceStat struct {
	Algo string `json:"algo"`
	// Iters is the total number of iteration events.
	Iters int `json:"iters"`
	// Improvements counts strict incumbent improvements.
	Improvements int `json:"improvements"`
	// FirstFeasibleIter is the iteration index at which a feasible
	// incumbent first existed (-1 when never).
	FirstFeasibleIter int `json:"first_feasible_iter"`
	// BestCostMs is the final incumbent cost, or -1 when no feasible
	// incumbent was ever found (kept finite so reports marshal to JSON).
	BestCostMs float64 `json:"best_cost_ms"`
	// ItersToBest is the iteration index where the final best was first
	// reached — the convergence-speed number diffs compare.
	ItersToBest int `json:"iters_to_best"`
}

// convergence folds an archive's iter events into per-algorithm stats,
// sorted by algorithm name.
func convergence(events []obs.IterEvent) []ConvergenceStat {
	byAlgo := map[string]*ConvergenceStat{}
	for _, ev := range events {
		st, ok := byAlgo[ev.Algo]
		if !ok {
			st = &ConvergenceStat{Algo: ev.Algo, FirstFeasibleIter: -1, BestCostMs: math.Inf(1)}
			byAlgo[ev.Algo] = st
		}
		st.Iters++
		if ev.Feasible && st.FirstFeasibleIter < 0 {
			st.FirstFeasibleIter = ev.Iter
		}
		if ev.Feasible && ev.BestCost < st.BestCostMs-1e-12 {
			st.BestCostMs = ev.BestCost
			st.ItersToBest = ev.Iter
			st.Improvements++
		}
	}
	out := make([]ConvergenceStat, 0, len(byAlgo))
	for _, st := range byAlgo {
		if math.IsInf(st.BestCostMs, 0) {
			st.BestCostMs = -1
		}
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Algo < out[j].Algo })
	return out
}

// cellStats aggregates an archive's "cell" events (one per algorithm ×
// replication solve, as emitted by experiment comparisons) into
// per-algorithm runtime and cost populations — the diffable metrics that
// carry real confidence intervals.
type cellStat struct {
	algo              string
	runtime, cost     stats.Welford
	feasible, errored int
	total             int
}

func cellStats(events []obs.Event) []cellStat {
	byAlgo := map[string]*cellStat{}
	for _, e := range events {
		if e.Kind != "cell" {
			continue
		}
		algo, ok := e.Str("algo")
		if !ok {
			continue
		}
		st, seen := byAlgo[algo]
		if !seen {
			st = &cellStat{algo: algo}
			byAlgo[algo] = st
		}
		st.total++
		if rt, ok := e.Num("runtime_ms"); ok {
			st.runtime.Add(rt)
		}
		if feas, _ := e.Bool("feasible"); feas {
			st.feasible++
			if c, ok := e.Num("cost_ms"); ok {
				st.cost.Add(c)
			}
		}
		if _, hasErr := e.Str("error"); hasErr {
			st.errored++
		}
	}
	out := make([]cellStat, 0, len(byAlgo))
	for _, st := range byAlgo {
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].algo < out[j].algo })
	return out
}

// higherIsBetter classifies a summary key's direction: throughput-like
// quantities improve upward, everything else (delays, misses, drops,
// imbalance) improves downward. Structural keys (instance sizes) never
// move between comparable runs, so their direction is immaterial.
func higherIsBetter(name string) bool {
	for _, marker := range []string{"feasible", "completed", "requests_ok", "specs_ok"} {
		if strings.Contains(name, marker) {
			return true
		}
	}
	return false
}

// diffQuantiles are the histogram quantiles extracted for diffing.
var diffQuantiles = []struct {
	label string
	q     float64
}{{"p50", 0.50}, {"p95", 0.95}, {"p99", 0.99}}

// Metrics flattens a source into its diffable named scalars, sorted by
// name. Both sides of a diff extract with the same rules, so metric
// names line up whenever the runs are comparable.
func (s *Source) Metrics() []Metric {
	var out []Metric
	switch s.Kind {
	case "bench":
		for _, sc := range s.Bench.Scenarios {
			for _, a := range sc.Algos {
				prefix := sc.ID + "/" + a.Name + " "
				out = append(out,
					Metric{Name: prefix + "feasible_runtime_ms", Value: a.FeasibleRuntimeMs, CI95: a.RuntimeCI95Ms},
					Metric{Name: prefix + "mean_cost_ms", Value: a.MeanCostMs, CI95: a.CostCI95Ms},
					Metric{Name: prefix + "feasible_rate", Value: a.FeasibleRate, HigherIsBetter: true},
					// Alloc figures are deterministic counts (no CI): any
					// delta is a real change in the solver's allocation
					// behaviour, so the diff judges them on threshold alone.
					Metric{Name: prefix + "allocs_per_op", Value: float64(a.AllocsPerOp)},
					Metric{Name: prefix + "bytes_per_op", Value: float64(a.BytesPerOp)},
					// Peak heap is a min-over-rounds figure with no CI (judged
					// on threshold alone, like the alloc counts); GC pause is
					// scheduler-noisy, so it carries its measured CI. Both get
					// the absolute noise floors.
					Metric{Name: prefix + "peak_heap_bytes", Value: float64(a.PeakHeapBytes), Floor: peakHeapFloorByte},
					Metric{Name: prefix + "gc_pause_ms", Value: a.GCPauseMs, CI95: a.GCPauseCI95Ms, Floor: gcPauseFloorMs},
				)
			}
		}
	case "archive":
		for name, v := range s.Archive.Summary {
			out = append(out, Metric{Name: name, Value: v, HigherIsBetter: higherIsBetter(name)})
		}
		for name, h := range s.Archive.Metrics.Histograms {
			for _, dq := range diffQuantiles {
				if v := h.Quantile(dq.q); !math.IsInf(v, 0) {
					out = append(out, Metric{Name: name + " " + dq.label, Value: v})
				}
			}
			out = append(out, Metric{Name: name + " mean", Value: h.Mean})
		}
		for name, v := range s.Archive.Metrics.Counters {
			out = append(out, Metric{Name: name, Value: float64(v), HigherIsBetter: higherIsBetter(name)})
		}
		for _, st := range cellStats(s.Archive.Events) {
			out = append(out, Metric{Name: "cells/" + st.algo + " runtime_ms", Value: st.runtime.Mean(), CI95: st.runtime.CI95()})
			if st.feasible > 0 {
				out = append(out, Metric{Name: "cells/" + st.algo + " cost_ms", Value: st.cost.Mean(), CI95: st.cost.CI95()})
			}
		}
		// Resource attribution (runs traced with -sysmon): per-phase peak
		// heap and GC pause plus the whole-run sampled peak. Wall-clock
		// resource measurements carry no CI, so diffs judge them on
		// threshold alone.
		resSamples := sysmon.SamplesFromEvents(s.Archive.Resources)
		for _, ph := range ResourcePhasesFromSpans(s.Archive.Spans(), resSamples) {
			out = append(out,
				Metric{Name: "resources/" + ph.Name + " peak_heap_bytes", Value: float64(ph.PeakHeapBytes), Floor: peakHeapFloorByte},
				Metric{Name: "resources/" + ph.Name + " gc_pause_ms", Value: ph.GCPauseMs, Floor: gcPauseFloorMs},
			)
		}
		if u := ResourceUsageFromSamples(resSamples); u != nil {
			out = append(out, Metric{Name: "resources/ peak_heap_bytes", Value: float64(u.PeakHeapBytes), Floor: peakHeapFloorByte})
		}
		// Pipeline phase times are wall-clock measurements with no
		// replication, so no CI: diffs judge them on threshold alone,
		// exactly like the alloc counts above.
		if p := PipelineFromSpans(s.Archive.Spans()); p != nil {
			out = append(out, Metric{Name: "pipeline/ wall_ms", Value: p.WallMs})
			for _, ph := range p.Phases {
				out = append(out, Metric{Name: "pipeline/" + ph.Name + " total_ms", Value: ph.TotalMs})
				if ph.Workers > 0 {
					out = append(out, Metric{Name: "pipeline/" + ph.Name + " speedup_x", Value: ph.SpeedupX, HigherIsBetter: true})
				}
			}
		}
		// SLO compliance (runs with -slo): per-objective verdict numbers.
		// Deterministic per seed/config/spec, no CI — threshold-only
		// comparison, with compliance and remaining budget improving
		// upward. A two-run diff on slo/<name> compliance_pct is the
		// CI-aware "did this change hurt the SLO" check.
		if sr := SLOFromEvents(s.Archive.SLO); sr != nil {
			for _, o := range sr.Objectives {
				prefix := "slo/" + o.Name + " "
				out = append(out,
					Metric{Name: prefix + "compliance_pct", Value: o.CompliancePct, HigherIsBetter: true},
					Metric{Name: prefix + "violations", Value: float64(o.Violations)},
					Metric{Name: prefix + "budget_remaining", Value: o.BudgetRemaining, HigherIsBetter: true},
					Metric{Name: prefix + "alerts", Value: float64(o.Alerts)},
				)
			}
		}
		for _, cs := range convergence(s.Archive.IterEvents()) {
			if cs.BestCostMs >= 0 {
				out = append(out, Metric{Name: "convergence/" + cs.Algo + " best_cost_ms", Value: cs.BestCostMs})
				out = append(out, Metric{Name: "convergence/" + cs.Algo + " iters_to_best", Value: float64(cs.ItersToBest)})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
