package report

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Verdict values for a diffed metric.
const (
	VerdictRegression  = "REGRESSION"
	VerdictImprovement = "IMPROVEMENT"
	VerdictOK          = "OK"
)

// deltaPctCap bounds the reported relative delta so that a metric
// growing from (near-)zero stays JSON-serializable and still reads as
// the gross regression it is.
const deltaPctCap = 1e4

// MetricDelta is one metric's old-vs-new comparison with its
// significance verdict.
type MetricDelta struct {
	Name string  `json:"name"`
	Old  float64 `json:"old"`
	New  float64 `json:"new"`
	// CIOld / CINew are the sides' 95% confidence half-widths (0 when
	// the source carries none).
	CIOld float64 `json:"ci_old,omitempty"`
	CINew float64 `json:"ci_new,omitempty"`
	// DeltaPct is 100*(new-old)/|old|, capped at ±deltaPctCap.
	DeltaPct float64 `json:"delta_pct"`
	// HalfWidthPct is the propagated CI half-width of DeltaPct:
	// 100*sqrt(ciOld²+ciNew²)/|old|. Zero means threshold-only judging.
	HalfWidthPct   float64 `json:"half_width_pct,omitempty"`
	HigherIsBetter bool    `json:"higher_is_better,omitempty"`
	// Floor is the metric's absolute noise floor (the larger of the two
	// sides'): an absolute move within it is always OK.
	Floor   float64 `json:"floor,omitempty"`
	Verdict string  `json:"verdict"`
}

// Diff is a full two-source comparison.
type Diff struct {
	OldPath string `json:"old"`
	NewPath string `json:"new"`
	// Kind is the compared sources' kind ("archive" or "bench").
	Kind string `json:"kind"`
	// ThresholdPct is the significance threshold the verdicts used.
	ThresholdPct float64       `json:"threshold_pct"`
	Metrics      []MetricDelta `json:"metrics"`
	// OnlyOld / OnlyNew name metrics present on one side only — surfaced
	// instead of silently dropped, since a vanished metric usually means
	// the runs are not comparable.
	OnlyOld      []string `json:"only_old,omitempty"`
	OnlyNew      []string `json:"only_new,omitempty"`
	Regressions  int      `json:"regressions"`
	Improvements int      `json:"improvements"`
}

// judge applies the gate's significance rule. The relative delta is
// normalized so that positive means "worse"; a move is only a
// REGRESSION when even the CI-optimistic reading (delta minus the
// propagated half-width) clears the threshold, and only an IMPROVEMENT
// when the CI-pessimistic reading does. Metrics without CIs degrade to
// plain threshold comparison. An absolute move within the metric's
// noise floor is always OK — near-zero timing metrics would otherwise
// turn scheduler jitter into huge relative deltas.
func judge(d *MetricDelta, thresholdPct float64) {
	denom := math.Abs(d.Old)
	switch {
	case denom == 0 && d.New == d.Old:
		// Nothing moved; nothing to judge.
	case denom == 0:
		d.DeltaPct = math.Copysign(deltaPctCap, d.New-d.Old)
	default:
		d.DeltaPct = 100 * (d.New - d.Old) / denom
		if math.Abs(d.DeltaPct) > deltaPctCap {
			d.DeltaPct = math.Copysign(deltaPctCap, d.DeltaPct)
		}
		d.HalfWidthPct = 100 * math.Sqrt(d.CIOld*d.CIOld+d.CINew*d.CINew) / denom
	}
	if d.Floor > 0 && math.Abs(d.New-d.Old) <= d.Floor {
		d.Verdict = VerdictOK
		return
	}
	worse := d.DeltaPct
	if d.HigherIsBetter {
		worse = -worse
	}
	switch {
	case worse-d.HalfWidthPct > thresholdPct:
		d.Verdict = VerdictRegression
	case worse+d.HalfWidthPct < -thresholdPct:
		d.Verdict = VerdictImprovement
	default:
		d.Verdict = VerdictOK
	}
}

// DiffSources compares two like-kind sources metric by metric.
// thresholdPct is the significance threshold in percent (e.g. 5 means a
// metric must be confidently more than 5% worse to be a REGRESSION).
func DiffSources(oldSrc, newSrc *Source, thresholdPct float64) (*Diff, error) {
	if oldSrc.Kind != newSrc.Kind {
		return nil, fmt.Errorf("report: cannot diff %s %s against %s %s",
			oldSrc.Kind, oldSrc.Path, newSrc.Kind, newSrc.Path)
	}
	d := &Diff{OldPath: oldSrc.Path, NewPath: newSrc.Path, Kind: oldSrc.Kind, ThresholdPct: thresholdPct}
	oldM := map[string]Metric{}
	for _, m := range oldSrc.Metrics() {
		oldM[m.Name] = m
	}
	newM := map[string]Metric{}
	for _, m := range newSrc.Metrics() {
		newM[m.Name] = m
	}
	for name, om := range oldM {
		nm, ok := newM[name]
		if !ok {
			d.OnlyOld = append(d.OnlyOld, name)
			continue
		}
		md := MetricDelta{
			Name: name, Old: om.Value, New: nm.Value,
			CIOld: om.CI95, CINew: nm.CI95,
			HigherIsBetter: om.HigherIsBetter,
			Floor:          math.Max(om.Floor, nm.Floor),
		}
		judge(&md, thresholdPct)
		d.Metrics = append(d.Metrics, md)
		switch md.Verdict {
		case VerdictRegression:
			d.Regressions++
		case VerdictImprovement:
			d.Improvements++
		}
	}
	for name := range newM {
		if _, ok := oldM[name]; !ok {
			d.OnlyNew = append(d.OnlyNew, name)
		}
	}
	// Regressions first (worst delta leading), then improvements, then OK,
	// alphabetical within each band — the report reads most-urgent-first.
	rank := map[string]int{VerdictRegression: 0, VerdictImprovement: 1, VerdictOK: 2}
	sort.Slice(d.Metrics, func(i, j int) bool {
		a, b := d.Metrics[i], d.Metrics[j]
		if rank[a.Verdict] != rank[b.Verdict] {
			return rank[a.Verdict] < rank[b.Verdict]
		}
		return a.Name < b.Name
	})
	sort.Strings(d.OnlyOld)
	sort.Strings(d.OnlyNew)
	return d, nil
}

// VerdictLine renders one metric's single-line verdict, e.g.
//
//	REGRESSION cluster.latency_ms p99 +12.4% [CI ±3.1%] (20.000 -> 22.480)
func (m MetricDelta) VerdictLine() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s %s %+.1f%%", m.Verdict, m.Name, m.DeltaPct)
	if m.HalfWidthPct > 0 {
		fmt.Fprintf(&b, " [CI ±%.1f%%]", m.HalfWidthPct)
	}
	fmt.Fprintf(&b, " (%.3f -> %.3f)", m.Old, m.New)
	return b.String()
}

// Markdown renders the diff as a Markdown report.
func (d *Diff) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# tacreport diff\n\n")
	fmt.Fprintf(&b, "- old: `%s`\n- new: `%s`\n- kind: %s\n- threshold: %.1f%%\n", d.OldPath, d.NewPath, d.Kind, d.ThresholdPct)
	fmt.Fprintf(&b, "- verdict: **%d regression(s), %d improvement(s), %d metric(s) compared**\n\n",
		d.Regressions, d.Improvements, len(d.Metrics))
	if d.Regressions > 0 || d.Improvements > 0 {
		fmt.Fprintf(&b, "## Verdicts\n\n```\n")
		for _, m := range d.Metrics {
			if m.Verdict != VerdictOK {
				fmt.Fprintln(&b, m.VerdictLine())
			}
		}
		fmt.Fprintf(&b, "```\n\n")
	}
	fmt.Fprintf(&b, "## All metrics\n\n")
	fmt.Fprintf(&b, "| metric | old | new | Δ%% | CI ±%% | verdict |\n")
	fmt.Fprintf(&b, "|---|---:|---:|---:|---:|---|\n")
	for _, m := range d.Metrics {
		ci := "-"
		if m.HalfWidthPct > 0 {
			ci = fmt.Sprintf("%.1f", m.HalfWidthPct)
		}
		fmt.Fprintf(&b, "| %s | %.3f | %.3f | %+.1f | %s | %s |\n",
			m.Name, m.Old, m.New, m.DeltaPct, ci, m.Verdict)
	}
	if len(d.OnlyOld) > 0 {
		fmt.Fprintf(&b, "\nOnly in old: %s\n", strings.Join(d.OnlyOld, ", "))
	}
	if len(d.OnlyNew) > 0 {
		fmt.Fprintf(&b, "\nOnly in new: %s\n", strings.Join(d.OnlyNew, ", "))
	}
	return b.String()
}

// WriteJSON writes the diff as indented JSON.
func (d *Diff) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}
