package report

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"taccc/internal/experiment"
	"taccc/internal/obs/runlog"
	"taccc/internal/obs/sysmon"
)

// PhaseStat attributes delay to one request phase (uplink, queue,
// service, downlink) from the archive's cluster.delay.* histograms.
type PhaseStat struct {
	Phase    string  `json:"phase"`
	MeanMs   float64 `json:"mean_ms"`
	SharePct float64 `json:"share_pct"`
	Count    int64   `json:"count"`
}

// EdgeStat is one edge's final queue depth (from the
// cluster.edge_<i>.queue_depth gauges).
type EdgeStat struct {
	Edge       string  `json:"edge"`
	QueueDepth float64 `json:"queue_depth"`
}

// QuantileStat is one latency histogram quantile.
type QuantileStat struct {
	Label string  `json:"label"`
	Ms    float64 `json:"ms"`
}

// Report is the offline analysis of a single source.
type Report struct {
	Path string `json:"path"`
	Kind string `json:"kind"`

	// Archive fields.
	Manifest    *runlog.Manifest  `json:"manifest,omitempty"`
	Convergence []ConvergenceStat `json:"convergence,omitempty"`
	Phases      []PhaseStat       `json:"phases,omitempty"`
	Latency     []QuantileStat    `json:"latency,omitempty"`
	// MissRate is cluster.requests_missed / cluster.requests_sent
	// (-1 when the archive carries no request counters).
	MissRate float64        `json:"miss_rate"`
	TopEdges []EdgeStat     `json:"top_edges,omitempty"`
	Summary  runlog.Summary `json:"summary,omitempty"`
	Events   int            `json:"events,omitempty"`
	// Pipeline is the wall-clock pipeline-trace attribution, present
	// only when the archive carries a trace.jsonl (run with -trace-out).
	Pipeline *Pipeline `json:"pipeline,omitempty"`
	// Resources is the per-phase resource attribution (heap, allocs,
	// GC), present only when the run traced with -sysmon; its phase set
	// matches Pipeline's. ResourceUsage summarizes the periodic samples
	// from resources.jsonl.
	Resources     []ResourcePhase `json:"resources,omitempty"`
	ResourceUsage *ResourceUsage  `json:"resource_usage,omitempty"`
	// SLO is the SLO-compliance view (per-objective verdicts, worst
	// windows, alert timeline), present only when the archive carries an
	// slo.jsonl (run with -slo).
	SLO *SLOReport `json:"slo,omitempty"`

	// Bench fields.
	Bench *experiment.BenchResults `json:"bench,omitempty"`
}

// delayPhases are the simulator's per-phase delay histograms in
// pipeline order.
var delayPhases = []string{"uplink", "queue", "service", "downlink"}

// Summarize builds the offline analysis report for one source.
func Summarize(s *Source) *Report {
	r := &Report{Path: s.Path, Kind: s.Kind, MissRate: -1}
	if s.Kind == "bench" {
		r.Bench = s.Bench
		return r
	}
	a := s.Archive
	man := a.Manifest
	r.Manifest = &man
	r.Convergence = convergence(a.IterEvents())
	r.Summary = a.Summary
	r.Events = len(a.Events)
	r.Pipeline = PipelineFromSpans(a.Spans())
	resSamples := sysmon.SamplesFromEvents(a.Resources)
	r.Resources = ResourcePhasesFromSpans(a.Spans(), resSamples)
	r.ResourceUsage = ResourceUsageFromSamples(resSamples)
	r.SLO = SLOFromEvents(a.SLO)

	// Per-phase delay attribution: each phase's mean and its share of
	// the summed phase means.
	total := 0.0
	for _, phase := range delayPhases {
		if h, ok := a.Metrics.Histograms["cluster.delay."+phase+"_ms"]; ok && h.Count > 0 {
			r.Phases = append(r.Phases, PhaseStat{Phase: phase, MeanMs: h.Mean, Count: h.Count})
			total += h.Mean
		}
	}
	for i := range r.Phases {
		if total > 0 {
			r.Phases[i].SharePct = 100 * r.Phases[i].MeanMs / total
		}
	}

	if h, ok := a.Metrics.Histograms["cluster.latency_ms"]; ok && h.Count > 0 {
		for _, dq := range diffQuantiles {
			if v := h.Quantile(dq.q); !math.IsInf(v, 0) {
				r.Latency = append(r.Latency, QuantileStat{Label: dq.label, Ms: v})
			}
		}
	}

	if sent, ok := a.Metrics.Counters["cluster.requests_sent"]; ok && sent > 0 {
		r.MissRate = float64(a.Metrics.Counters["cluster.requests_missed"]) / float64(sent)
	}

	// Top edges by final queue depth.
	for name, v := range a.Metrics.Gauges {
		if strings.HasPrefix(name, "cluster.edge_") && strings.HasSuffix(name, ".queue_depth") {
			edge := strings.TrimSuffix(strings.TrimPrefix(name, "cluster."), ".queue_depth")
			r.TopEdges = append(r.TopEdges, EdgeStat{Edge: edge, QueueDepth: v})
		}
	}
	sort.Slice(r.TopEdges, func(i, j int) bool {
		if r.TopEdges[i].QueueDepth != r.TopEdges[j].QueueDepth {
			return r.TopEdges[i].QueueDepth > r.TopEdges[j].QueueDepth
		}
		return r.TopEdges[i].Edge < r.TopEdges[j].Edge
	})
	if len(r.TopEdges) > 5 {
		r.TopEdges = r.TopEdges[:5]
	}
	return r
}

// Markdown renders the report.
func (r *Report) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# tacreport summary\n\n")
	if r.Kind == "bench" {
		fmt.Fprintf(&b, "- source: `%s` (bench results)\n- tool: %s %s, seed %d, reps %d, quick %v\n\n",
			r.Path, r.Bench.Tool, r.Bench.Version, r.Bench.Seed, r.Bench.Reps, r.Bench.Quick)
		for _, sc := range r.Bench.Scenarios {
			fmt.Fprintf(&b, "## Scenario %s (iot=%d edge=%d rho=%.2f)\n\n", sc.ID, sc.NumIoT, sc.NumEdge, sc.Rho)
			fmt.Fprintf(&b, "| algorithm | mean cost ms | ±CI | feasible runtime ms | ±CI | allocs/op | bytes/op | peak heap MB | gc pause ms | feasible rate | errors |\n")
			fmt.Fprintf(&b, "|---|---:|---:|---:|---:|---:|---:|---:|---:|---:|---:|\n")
			for _, a := range sc.Algos {
				fmt.Fprintf(&b, "| %s | %.3f | %.3f | %.3f | %.3f | %d | %d | %.2f | %.3f | %.2f | %d |\n",
					a.Name, a.MeanCostMs, a.CostCI95Ms, a.FeasibleRuntimeMs, a.RuntimeCI95Ms, a.AllocsPerOp, a.BytesPerOp,
					float64(a.PeakHeapBytes)/(1<<20), a.GCPauseMs, a.FeasibleRate, a.Errors)
			}
			fmt.Fprintln(&b)
		}
		return b.String()
	}
	m := r.Manifest
	fmt.Fprintf(&b, "- source: `%s` (run archive, format %d)\n", r.Path, m.Format)
	fmt.Fprintf(&b, "- tool: %s %s, seed %d\n", m.Tool, m.Version, m.Seed)
	fmt.Fprintf(&b, "- started: unix %d ms, elapsed %.1f ms, %d event(s)\n", m.StartUnixMs, m.ElapsedMs, r.Events)
	if len(m.Config) > 0 {
		keys := make([]string, 0, len(m.Config))
		for k := range m.Config {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		parts := make([]string, 0, len(keys))
		for _, k := range keys {
			parts = append(parts, k+"="+m.Config[k])
		}
		fmt.Fprintf(&b, "- config: %s\n", strings.Join(parts, " "))
	}
	fmt.Fprintln(&b)

	if len(r.Convergence) > 0 {
		fmt.Fprintf(&b, "## Convergence\n\n")
		fmt.Fprintf(&b, "| algorithm | iters | improvements | first feasible | best cost ms | iters to best |\n")
		fmt.Fprintf(&b, "|---|---:|---:|---:|---:|---:|\n")
		for _, c := range r.Convergence {
			best := "-"
			if c.BestCostMs >= 0 {
				best = fmt.Sprintf("%.3f", c.BestCostMs)
			}
			fmt.Fprintf(&b, "| %s | %d | %d | %d | %s | %d |\n",
				c.Algo, c.Iters, c.Improvements, c.FirstFeasibleIter, best, c.ItersToBest)
		}
		fmt.Fprintln(&b)
	}
	if p := r.Pipeline; p != nil {
		fmt.Fprintf(&b, "## Pipeline phases\n\n")
		fmt.Fprintf(&b, "root `%s`: %.1f ms wall, %.1f%% traced\n\n", p.Root, p.WallMs, p.CoveragePct)
		fmt.Fprintf(&b, "| phase | total ms | share | spans | workers | speedup | idle |\n")
		fmt.Fprintf(&b, "|---|---:|---:|---:|---:|---:|---:|\n")
		for _, ph := range p.Phases {
			workers, speedup, idle := "-", "-", "-"
			if ph.Workers > 0 {
				workers = fmt.Sprintf("%d", ph.Workers)
				speedup = fmt.Sprintf("%.2fx", ph.SpeedupX)
				idle = fmt.Sprintf("%.1f%%", ph.IdlePct)
			}
			fmt.Fprintf(&b, "| %s | %.3f | %.1f%% | %d | %s | %s | %s |\n",
				ph.Name, ph.TotalMs, ph.SharePct, ph.Count, workers, speedup, idle)
		}
		fmt.Fprintln(&b)
		if len(p.Critical) > 0 {
			parts := make([]string, 0, len(p.Critical))
			for _, c := range p.Critical {
				parts = append(parts, fmt.Sprintf("%s (%.1f ms, %.1f%%)", c.Name, c.DurMs, c.SharePct))
			}
			fmt.Fprintf(&b, "critical path: %s\n\n", strings.Join(parts, " → "))
		}
	}
	if len(r.Resources) > 0 {
		fmt.Fprintf(&b, "## Resource attribution\n\n")
		if u := r.ResourceUsage; u != nil {
			fmt.Fprintf(&b, "%d sample(s): peak heap %.1f MB, peak rss %.1f MB, max goroutines %d, gc %d cycle(s) (%.2f ms paused)\n\n",
				u.Samples, float64(u.PeakHeapBytes)/(1<<20), float64(u.PeakRSSBytes)/(1<<20),
				u.MaxGoroutines, u.GCCycles, u.GCPauseMs)
		}
		fmt.Fprintf(&b, "| phase | Δheap KB | allocs | gc cycles | gc pause ms | peak heap MB | spans |\n")
		fmt.Fprintf(&b, "|---|---:|---:|---:|---:|---:|---:|\n")
		for _, ph := range r.Resources {
			fmt.Fprintf(&b, "| %s | %.1f | %d | %d | %.3f | %.2f | %d |\n",
				ph.Name, float64(ph.HeapDeltaBytes)/1024, ph.Allocs, ph.GCCycles, ph.GCPauseMs,
				float64(ph.PeakHeapBytes)/(1<<20), ph.Spans)
		}
		fmt.Fprintln(&b)
	}
	if r.SLO != nil {
		r.SLO.markdown(&b)
	}
	if len(r.Phases) > 0 {
		fmt.Fprintf(&b, "## Delay attribution\n\n")
		fmt.Fprintf(&b, "| phase | mean ms | share | observations |\n|---|---:|---:|---:|\n")
		for _, p := range r.Phases {
			fmt.Fprintf(&b, "| %s | %.3f | %.1f%% | %d |\n", p.Phase, p.MeanMs, p.SharePct, p.Count)
		}
		fmt.Fprintln(&b)
	}
	if len(r.Latency) > 0 || r.MissRate >= 0 {
		fmt.Fprintf(&b, "## Requests\n\n")
		for _, q := range r.Latency {
			fmt.Fprintf(&b, "- latency %s ≤ %.3f ms\n", q.Label, q.Ms)
		}
		if r.MissRate >= 0 {
			fmt.Fprintf(&b, "- deadline miss rate: %.2f%%\n", 100*r.MissRate)
		}
		fmt.Fprintln(&b)
	}
	if len(r.TopEdges) > 0 {
		fmt.Fprintf(&b, "## Top edges by queue depth\n\n")
		for _, e := range r.TopEdges {
			fmt.Fprintf(&b, "- %s: %.0f\n", e.Edge, e.QueueDepth)
		}
		fmt.Fprintln(&b)
	}
	if len(r.Summary) > 0 {
		keys := make([]string, 0, len(r.Summary))
		for k := range r.Summary {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Fprintf(&b, "## Result summary\n\n| key | value |\n|---|---:|\n")
		for _, k := range keys {
			fmt.Fprintf(&b, "| %s | %g |\n", k, r.Summary[k])
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}

// WriteJSON writes the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
