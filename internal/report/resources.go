package report

import (
	"sort"

	"taccc/internal/obs"
	"taccc/internal/obs/sysmon"
)

// ResourcePhase is one row of the resource-attribution table: every
// span sharing a name folded into heap growth, allocation and GC work,
// plus the peak heap observed while the phase ran. The grouping rules
// are identical to PipelineFromSpans (root and shard spans excluded,
// phases ordered by first start), so the resource table's phase set
// matches the wall-time table's whenever the run traced with -sysmon.
type ResourcePhase struct {
	Name string `json:"name"`
	// Spans counts the spans that carried begin/end resource snapshots.
	Spans int `json:"spans"`
	// HeapDeltaBytes is the summed live-heap growth across the phase's
	// spans (negative when GC reclaimed more than the phase allocated).
	HeapDeltaBytes int64 `json:"heap_delta_bytes"`
	// Allocs is the total number of heap allocations during the phase.
	Allocs uint64 `json:"allocs"`
	// GCCycles and GCPauseMs are the GC cycles completed and
	// stop-the-world pause time accumulated while the phase ran.
	GCCycles  uint64  `json:"gc_cycles"`
	GCPauseMs float64 `json:"gc_pause_ms"`
	// PeakHeapBytes is the highest heap-allocated figure seen for the
	// phase: the max over its boundary snapshots and every periodic
	// resource sample whose timestamp falls inside one of its spans.
	PeakHeapBytes uint64 `json:"peak_heap_bytes"`
}

// ResourceUsage summarizes a run's periodic resource samples
// (resources.jsonl) as a whole.
type ResourceUsage struct {
	Samples       int     `json:"samples"`
	PeakHeapBytes uint64  `json:"peak_heap_bytes"`
	PeakRSSBytes  uint64  `json:"peak_rss_bytes"`
	MaxGoroutines int     `json:"max_goroutines"`
	GCCycles      uint64  `json:"gc_cycles"`
	GCPauseMs     float64 `json:"gc_pause_ms"`
}

// ResourcePhasesFromSpans joins a span stream's begin/end resource
// attributes (attached by the tracer when a ResourceSource is wired)
// with the periodic samples to produce the per-phase resource table.
// Returns nil when no span carries resource attributes — the run
// traced without -sysmon.
func ResourcePhasesFromSpans(spans []obs.Span, samples []sysmon.Sample) []ResourcePhase {
	type acc struct {
		firstStart float64
		row        ResourcePhase
		// windows are the phase's span intervals, for assigning periodic
		// samples to the phases that were running when they were taken.
		windows [][2]float64
	}
	phases := map[string]*acc{}
	var order []string
	withRes := false
	for _, sp := range spans {
		if sp.Parent == 0 || sp.Name == shardSpan {
			continue
		}
		a, ok := phases[sp.Name]
		if !ok {
			a = &acc{firstStart: sp.StartMs, row: ResourcePhase{Name: sp.Name}}
			phases[sp.Name] = a
			order = append(order, sp.Name)
		}
		if sp.StartMs < a.firstStart {
			a.firstStart = sp.StartMs
		}
		a.windows = append(a.windows, [2]float64{sp.StartMs, sp.EndMs})
		begin, okBegin := sp.AttrNum("heap_begin_bytes")
		end, okEnd := sp.AttrNum("heap_end_bytes")
		if !okBegin || !okEnd {
			continue
		}
		withRes = true
		a.row.Spans++
		if v, ok := sp.AttrNum("heap_delta_bytes"); ok {
			a.row.HeapDeltaBytes += int64(v)
		}
		if v, ok := sp.AttrNum("allocs"); ok {
			a.row.Allocs += uint64(v)
		}
		if v, ok := sp.AttrNum("gc_cycles"); ok {
			a.row.GCCycles += uint64(v)
		}
		if v, ok := sp.AttrNum("gc_pause_ms"); ok {
			a.row.GCPauseMs += v
		}
		if u := uint64(begin); u > a.row.PeakHeapBytes {
			a.row.PeakHeapBytes = u
		}
		if u := uint64(end); u > a.row.PeakHeapBytes {
			a.row.PeakHeapBytes = u
		}
	}
	if !withRes {
		return nil
	}
	// Boundary snapshots miss transient highs between them; the periodic
	// samples fill those in for whichever phases were live at the time.
	for _, s := range samples {
		for _, a := range phases {
			for _, w := range a.windows {
				if s.TMs >= w[0] && s.TMs <= w[1] {
					if s.HeapAllocBytes > a.row.PeakHeapBytes {
						a.row.PeakHeapBytes = s.HeapAllocBytes
					}
					break
				}
			}
		}
	}
	sort.SliceStable(order, func(i, j int) bool {
		return phases[order[i]].firstStart < phases[order[j]].firstStart
	})
	out := make([]ResourcePhase, 0, len(order))
	for _, name := range order {
		out = append(out, phases[name].row)
	}
	return out
}

// ResourceUsageFromSamples folds a run's periodic resource samples into
// whole-run peaks and GC totals (deltas over the sampled window, so a
// warm process's pre-run GC history doesn't count against the run).
// Returns nil when there are no samples.
func ResourceUsageFromSamples(samples []sysmon.Sample) *ResourceUsage {
	if len(samples) == 0 {
		return nil
	}
	u := &ResourceUsage{Samples: len(samples)}
	for _, s := range samples {
		if s.HeapAllocBytes > u.PeakHeapBytes {
			u.PeakHeapBytes = s.HeapAllocBytes
		}
		if s.RSSBytes > u.PeakRSSBytes {
			u.PeakRSSBytes = s.RSSBytes
		}
		if s.Goroutines > u.MaxGoroutines {
			u.MaxGoroutines = s.Goroutines
		}
	}
	first, last := samples[0], samples[len(samples)-1]
	u.GCCycles = last.GCCycles - first.GCCycles
	u.GCPauseMs = last.GCPauseMs - first.GCPauseMs
	return u
}
