package report

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"taccc/internal/experiment"
	"taccc/internal/obs"
	"taccc/internal/obs/runlog"
)

// writeArchive synthesizes a tacsim-shaped archive: solver convergence,
// per-phase delay histograms, request counters, queue-depth gauges and a
// scalar summary. latencyScale stretches the simulated delays so tests
// can fabricate regressions.
func writeArchive(t *testing.T, dir string, latencyScale float64) {
	t.Helper()
	w, err := runlog.Create(dir, runlog.Manifest{Tool: "tacsim", Version: "test", Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	sink := w.Sink()
	prog := obs.EventProgress(sink)
	costs := []float64{90, 80, 80, 70, 70}
	for i, c := range costs {
		obs.EmitIter(prog, "qlearning", i, c*latencyScale, true)
	}
	reg := obs.NewRegistry()
	for _, v := range []float64{5, 10, 20, 40} {
		reg.Histogram("cluster.latency_ms", obs.DefaultLatencyBucketsMs()).Observe(v * latencyScale)
		reg.Histogram("cluster.delay.queue_ms", obs.DefaultLatencyBucketsMs()).Observe(v * latencyScale * 0.5)
		reg.Histogram("cluster.delay.service_ms", obs.DefaultLatencyBucketsMs()).Observe(v * latencyScale * 0.5)
	}
	reg.Counter("cluster.requests_sent").Add(100)
	reg.Counter("cluster.requests_missed").Add(int64(10 * latencyScale))
	reg.Gauge("cluster.edge_0.queue_depth").Set(3)
	reg.Gauge("cluster.edge_1.queue_depth").Set(9)
	if err := w.Close(reg.Snapshot(), runlog.Summary{
		"sim.latency_p50_ms": 10 * latencyScale,
		"sim.completed":      100,
	}); err != nil {
		t.Fatal(err)
	}
}

func TestLoadSourceAutoDetect(t *testing.T) {
	dir := t.TempDir()
	arDir := filepath.Join(dir, "run")
	writeArchive(t, arDir, 1)
	s, err := LoadSource(arDir)
	if err != nil {
		t.Fatal(err)
	}
	if s.Kind != "archive" || s.Archive == nil {
		t.Fatalf("archive not detected: %+v", s)
	}

	benchPath := filepath.Join(dir, "bench.json")
	res := &experiment.BenchResults{
		Tool: "tacbench", Version: "test", Reps: 2,
		Scenarios: []experiment.BenchScenario{{
			ID: "small", NumIoT: 10, NumEdge: 2,
			Algos: []experiment.BenchAlgo{{Name: "greedy", MeanCostMs: 5, FeasibleRuntimeMs: 1, FeasibleRate: 1, Reps: 2}},
		}},
	}
	f, err := os.Create(benchPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	s, err = LoadSource(benchPath)
	if err != nil {
		t.Fatal(err)
	}
	if s.Kind != "bench" || s.Bench == nil {
		t.Fatalf("bench not detected: %+v", s)
	}

	if _, err := LoadSource(filepath.Join(dir, "nope")); err == nil {
		t.Fatal("missing path accepted")
	}
	if _, err := LoadSource(dir); err == nil {
		t.Fatal("plain directory accepted as archive")
	}
}

func TestSummarizeArchive(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "run")
	writeArchive(t, dir, 1)
	s, err := LoadSource(dir)
	if err != nil {
		t.Fatal(err)
	}
	r := Summarize(s)
	if len(r.Convergence) != 1 {
		t.Fatalf("convergence: %+v", r.Convergence)
	}
	c := r.Convergence[0]
	if c.Algo != "qlearning" || c.Iters != 5 || c.Improvements != 3 || c.BestCostMs != 70 || c.ItersToBest != 3 {
		t.Fatalf("convergence stats wrong: %+v", c)
	}
	if len(r.Phases) != 2 {
		t.Fatalf("phases: %+v", r.Phases)
	}
	total := 0.0
	for _, p := range r.Phases {
		total += p.SharePct
	}
	if math.Abs(total-100) > 1e-9 {
		t.Fatalf("phase shares sum to %.3f, want 100", total)
	}
	if math.Abs(r.MissRate-0.1) > 1e-12 {
		t.Fatalf("miss rate %v, want 0.1", r.MissRate)
	}
	if len(r.TopEdges) != 2 || r.TopEdges[0].Edge != "edge_1" {
		t.Fatalf("top edges not sorted by depth: %+v", r.TopEdges)
	}
	md := r.Markdown()
	for _, want := range []string{"## Convergence", "## Delay attribution", "qlearning", "edge_1", "miss rate"} {
		if !strings.Contains(md, want) {
			t.Fatalf("markdown missing %q:\n%s", want, md)
		}
	}
	var buf strings.Builder
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatalf("report does not marshal: %v", err)
	}
}

func TestDiffIdenticalArchivesIsClean(t *testing.T) {
	dir := t.TempDir()
	a, b := filepath.Join(dir, "a"), filepath.Join(dir, "b")
	writeArchive(t, a, 1)
	writeArchive(t, b, 1)
	sa, err := LoadSource(a)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := LoadSource(b)
	if err != nil {
		t.Fatal(err)
	}
	d, err := DiffSources(sa, sb, 5)
	if err != nil {
		t.Fatal(err)
	}
	if d.Regressions != 0 || d.Improvements != 0 {
		t.Fatalf("identical archives diffed dirty: %+v", d.Metrics)
	}
	if len(d.Metrics) == 0 || len(d.OnlyOld) != 0 || len(d.OnlyNew) != 0 {
		t.Fatalf("metric matching broken: %d metrics, onlyOld=%v onlyNew=%v", len(d.Metrics), d.OnlyOld, d.OnlyNew)
	}
}

func TestDiffDetectsLatencyRegression(t *testing.T) {
	dir := t.TempDir()
	a, b := filepath.Join(dir, "a"), filepath.Join(dir, "b")
	writeArchive(t, a, 1)
	writeArchive(t, b, 2) // everything latency-ish doubles
	sa, _ := LoadSource(a)
	sb, _ := LoadSource(b)
	d, err := DiffSources(sa, sb, 20)
	if err != nil {
		t.Fatal(err)
	}
	if d.Regressions == 0 {
		t.Fatalf("doubled latency not flagged: %+v", d.Metrics)
	}
	byName := map[string]MetricDelta{}
	for _, m := range d.Metrics {
		byName[m.Name] = m
	}
	if m := byName["sim.latency_p50_ms"]; m.Verdict != VerdictRegression || math.Abs(m.DeltaPct-100) > 1e-9 {
		t.Fatalf("sim.latency_p50_ms verdict: %+v", m)
	}
	// Unchanged throughput stays OK.
	if m := byName["sim.completed"]; m.Verdict != VerdictOK {
		t.Fatalf("sim.completed verdict: %+v", m)
	}
	// The convergence comparison sees the doubled best cost too.
	if m := byName["convergence/qlearning best_cost_ms"]; m.Verdict != VerdictRegression {
		t.Fatalf("convergence best cost verdict: %+v", m)
	}
	md := d.Markdown()
	if !strings.Contains(md, "REGRESSION sim.latency_p50_ms +100.0%") {
		t.Fatalf("verdict line missing:\n%s", md)
	}
}

func TestDiffKindMismatchErrors(t *testing.T) {
	dir := t.TempDir()
	arDir := filepath.Join(dir, "run")
	writeArchive(t, arDir, 1)
	sa, _ := LoadSource(arDir)
	sb := &Source{Kind: "bench", Path: "x", Bench: &experiment.BenchResults{}}
	if _, err := DiffSources(sa, sb, 5); err == nil {
		t.Fatal("kind mismatch accepted")
	}
}

func TestJudgeSignificanceRule(t *testing.T) {
	cases := []struct {
		name                   string
		old, new, ciOld, ciNew float64
		higherBetter           bool
		threshold              float64
		want                   string
	}{
		// 20% worse, tight CIs: clearly a regression at 5%.
		{"confident regression", 100, 120, 1, 1, false, 5, VerdictRegression},
		// 20% worse but CIs are so wide the delta is not significant.
		{"noisy move is OK", 100, 120, 15, 15, false, 5, VerdictOK},
		// 20% better with tight CIs.
		{"confident improvement", 100, 80, 1, 1, false, 5, VerdictImprovement},
		// Higher-is-better metrics flip direction: a drop is a regression.
		{"throughput drop", 1.0, 0.5, 0, 0, true, 5, VerdictRegression},
		{"throughput gain", 0.5, 1.0, 0, 0, true, 5, VerdictImprovement},
		// Growth from zero is a (capped) regression, not a crash.
		{"zero to nonzero", 0, 5, 0, 0, false, 5, VerdictRegression},
		{"zero to zero", 0, 0, 0, 0, false, 5, VerdictOK},
		// Within threshold: no verdict either way.
		{"small move", 100, 103, 0, 0, false, 5, VerdictOK},
	}
	for _, tc := range cases {
		d := MetricDelta{Old: tc.old, New: tc.new, CIOld: tc.ciOld, CINew: tc.ciNew, HigherIsBetter: tc.higherBetter}
		judge(&d, tc.threshold)
		if d.Verdict != tc.want {
			t.Errorf("%s: verdict %s (delta %+.1f%% hw %.1f%%), want %s", tc.name, d.Verdict, d.DeltaPct, d.HalfWidthPct, tc.want)
		}
		if math.IsInf(d.DeltaPct, 0) || math.IsNaN(d.DeltaPct) {
			t.Errorf("%s: non-finite delta %v", tc.name, d.DeltaPct)
		}
	}
}

func TestDiffBenchRuntimeRegressionRespectsCI(t *testing.T) {
	mk := func(runtime, ci float64) *Source {
		return &Source{Kind: "bench", Path: "p", Bench: &experiment.BenchResults{
			Scenarios: []experiment.BenchScenario{{ID: "s", Algos: []experiment.BenchAlgo{{
				Name: "greedy", MeanCostMs: 10, CostCI95Ms: 0.1,
				FeasibleRuntimeMs: runtime, RuntimeCI95Ms: ci, FeasibleRate: 1, Reps: 5,
			}}}},
		}}
	}
	// 2x slower with tight CIs: gate fires.
	d, err := DiffSources(mk(1, 0.05), mk(2, 0.05), 20)
	if err != nil {
		t.Fatal(err)
	}
	if d.Regressions != 1 {
		t.Fatalf("confident 2x slowdown not flagged: %+v", d.Metrics)
	}
	// Same 2x but the CI half-widths swamp the delta: no verdict.
	d, err = DiffSources(mk(1, 1.5), mk(2, 1.5), 20)
	if err != nil {
		t.Fatal(err)
	}
	if d.Regressions != 0 {
		t.Fatalf("noisy slowdown failed the gate: %+v", d.Metrics)
	}
}

// TestDiffBenchAllocRegressionGates: allocs/op carries no CI, so the gate
// judges it on threshold alone — a solver that starts allocating in its
// inner loop fails the diff even when its runtime stays inside noise.
func TestDiffBenchAllocRegressionGates(t *testing.T) {
	mk := func(allocs, bytes uint64) *Source {
		return &Source{Kind: "bench", Path: "p", Bench: &experiment.BenchResults{
			Scenarios: []experiment.BenchScenario{{ID: "s", Algos: []experiment.BenchAlgo{{
				Name: "tabu", MeanCostMs: 10, CostCI95Ms: 0.1,
				FeasibleRuntimeMs: 1, RuntimeCI95Ms: 0.05,
				AllocsPerOp: allocs, BytesPerOp: bytes, FeasibleRate: 1, Reps: 5,
			}}}},
		}}
	}
	d, err := DiffSources(mk(1000, 64000), mk(1500, 64000), 20)
	if err != nil {
		t.Fatal(err)
	}
	if d.Regressions != 1 {
		t.Fatalf("50%% alloc growth not flagged: %+v", d.Metrics)
	}
	d, err = DiffSources(mk(1000, 64000), mk(1000, 64000), 20)
	if err != nil {
		t.Fatal(err)
	}
	if d.Regressions != 0 {
		t.Fatalf("flat allocs flagged: %+v", d.Metrics)
	}
}
