package experiment

import (
	"bytes"
	"reflect"
	"strings"
	"sync"
	"testing"

	"taccc/internal/obs"
)

// lockedSink collects events emitted concurrently from worker goroutines.
type lockedSink struct {
	mu     sync.Mutex
	events []obs.Event
}

func (s *lockedSink) Emit(ev obs.Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.events = append(s.events, ev)
}

func (s *lockedSink) byKind(kind string) []obs.Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []obs.Event
	for _, ev := range s.events {
		if ev.Kind == kind {
			out = append(out, ev)
		}
	}
	return out
}

func TestObservedComparisonEmitsCellAndAlgoEvents(t *testing.T) {
	sc := Scenario{NumIoT: 20, NumEdge: 4, Seed: 5}
	algos := []string{"greedy", "local-search"}
	const reps = 3
	sink := &lockedSink{}
	res, err := CompareAlgorithmsObserved(sc, algos, reps, 0, sink)
	if err != nil {
		t.Fatal(err)
	}
	cells := sink.byKind("cell")
	if len(cells) != len(algos)*reps {
		t.Fatalf("%d cell events, want %d", len(cells), len(algos)*reps)
	}
	seen := map[string]int{}
	for _, ev := range cells {
		algo, _ := ev.Fields["algo"].(string)
		seen[algo]++
		if feasible, _ := ev.Fields["feasible"].(bool); feasible {
			if _, hasCost := ev.Fields["cost_ms"]; !hasCost {
				t.Fatalf("feasible cell without cost_ms: %+v", ev)
			}
		}
	}
	for _, a := range algos {
		if seen[a] != reps {
			t.Fatalf("algo %s has %d cell events, want %d", a, seen[a], reps)
		}
	}
	done := sink.byKind("algo-done")
	if len(done) != len(algos) {
		t.Fatalf("%d algo-done events, want %d", len(done), len(algos))
	}
	// algo-done events come from the sequential fold: order is fixed.
	for i, ev := range done {
		if algo, _ := ev.Fields["algo"].(string); algo != algos[i] {
			t.Fatalf("algo-done %d is %q, want %s", i, algo, algos[i])
		}
	}
	if len(res) != len(algos) {
		t.Fatalf("%d stats, want %d", len(res), len(algos))
	}
}

// TestObservedComparisonIsDeterministic checks the headline contract:
// attaching a sink changes nothing, at any worker count.
func TestObservedComparisonIsDeterministic(t *testing.T) {
	sc := Scenario{NumIoT: 30, NumEdge: 5, Seed: 7}
	algos := []string{"greedy", "local-search", "qlearning"}
	const reps = 2
	want, err := CompareAlgorithmsWorkers(sc, algos, reps, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 8} {
		sink := &lockedSink{}
		got, err := CompareAlgorithmsObserved(sc, algos, reps, workers, sink)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(stripRuntimes(want), stripRuntimes(got)) {
			t.Fatalf("workers=%d: sink changed results:\n%+v\nvs\n%+v", workers, want, got)
		}
		if len(sink.byKind("cell")) != len(algos)*reps {
			t.Fatalf("workers=%d: missing cell events", workers)
		}
	}
}

func TestRunAllEmitsSpecEvents(t *testing.T) {
	specs := []Spec{mustSpec(t, "F1"), mustSpec(t, "F6")}
	sink := &lockedSink{}
	o := Options{Quick: true, Reps: 1, Progress: sink}
	results := RunAll(specs, o)
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("%s: %v", r.Spec.ID, r.Err)
		}
	}
	starts, dones := sink.byKind("spec-start"), sink.byKind("spec-done")
	if len(starts) != len(specs) || len(dones) != len(specs) {
		t.Fatalf("%d spec-start / %d spec-done events, want %d each", len(starts), len(dones), len(specs))
	}
	for _, ev := range dones {
		if ok, _ := ev.Fields["ok"].(bool); !ok {
			t.Fatalf("spec-done reports failure: %+v", ev)
		}
		if _, has := ev.Fields["elapsed_ms"]; !has {
			t.Fatalf("spec-done missing elapsed_ms: %+v", ev)
		}
	}
}

// TestCellEventsStreamAsJSONL wires the real JSONL sink under the
// comparison — the tacbench -events path — and checks the stream decodes
// through the shared reader.
func TestCellEventsStreamAsJSONL(t *testing.T) {
	var buf bytes.Buffer
	sink := obs.NewJSONL(&buf)
	_, err := CompareAlgorithmsObserved(Scenario{NumIoT: 20, NumEdge: 4, Seed: 5}, []string{"greedy"}, 3, 0, sink)
	if err != nil {
		t.Fatal(err)
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	events, err := obs.ReadEventStream(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 4 { // 3 cells + 1 algo-done
		t.Fatalf("%d events, want 4", len(events))
	}
	for i, e := range events {
		if e.Kind == "" {
			t.Fatalf("event %d has no kind: %+v", i, e)
		}
	}
}

func TestStatCellAnnotations(t *testing.T) {
	cases := []struct {
		st   AlgoStat
		want string
	}{
		{AlgoStat{MeanCost: 12.5, FeasibleRate: 1}, "12.500"},
		{AlgoStat{MeanCost: 12.5, FeasibleRate: 0.5}, "12.500 (50% feas)"},
		{AlgoStat{MeanCost: 12.5, FeasibleRate: 0.75, Errors: 1}, "12.500 (75% feas) [1 err]"},
		{AlgoStat{FeasibleRate: 0, Errors: 3}, "- (0% feas) [3 err]"},
	}
	for _, tc := range cases {
		if got := statCell(tc.st); got != tc.want {
			t.Errorf("statCell(%+v) = %q, want %q", tc.st, got, tc.want)
		}
	}
}

func TestTableMarkdown(t *testing.T) {
	tab := &Table{ID: "T9", Title: "demo", Header: []string{"a", "b"}, Note: "units"}
	tab.AddRow("x", 1.5)
	md := tab.Markdown()
	for _, want := range []string{"### T9: demo", "| a | b |", "| --- | --- |", "| x | 1.500 |", "_units_"} {
		if !strings.Contains(md, want) {
			t.Errorf("Markdown missing %q:\n%s", want, md)
		}
	}
}
