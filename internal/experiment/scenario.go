package experiment

import (
	"fmt"

	"taccc/internal/gap"
	"taccc/internal/obs"
	"taccc/internal/topology"
	"taccc/internal/workload"
	"taccc/internal/xrand"
)

// Scenario describes one evaluated deployment: a topology family and size,
// a workload population and a capacity tightness. Building a scenario
// yields the GAP instance every algorithm solves plus the artifacts needed
// for end-to-end simulation.
type Scenario struct {
	// Family and Place select the topology generator; zero values mean
	// hierarchical with uniform placement.
	Family topology.Family
	Place  topology.Placement
	// NumIoT and NumEdge size the deployment; NumGateways defaults to
	// 2×NumEdge, NumRouters to NumEdge.
	NumIoT      int
	NumEdge     int
	NumGateways int
	NumRouters  int
	// Rho is the capacity tightness in (0, 1]; default 0.7.
	Rho float64
	// PayloadKB, when > 0, makes delays payload-aware (transmission time
	// at link bandwidth added to propagation).
	PayloadKB float64
	// Links overrides generated link latencies/bandwidths; the zero
	// value uses topology.DefaultLinkParams.
	Links topology.LinkParams
	// Workload selects a named profile preset ("default", "smartcity",
	// "factory", "wearables"); empty means "default".
	Workload string
	// CapacitySkew in [0, 1) makes edge capacities heterogeneous:
	// alternate edges get per*(1+skew) and per*(1-skew) capacity while
	// the total stays fixed. 0 means uniform.
	CapacitySkew float64
	// Workers bounds the parallelism of delay-matrix construction
	// (<= 0 means all cores, 1 is sequential). The built scenario is
	// identical at any setting.
	Workers int
	// Seed drives every random choice.
	Seed int64
	// Trace, when non-nil, is the pipeline-trace parent phase: Build
	// emits wall-clock child spans for topology generation, delay-matrix
	// construction (with one "shard" span per worker), workload
	// generation and instance assembly. Strictly observational — the
	// built scenario is bit-identical with or without it.
	Trace *obs.Phase
}

func (s Scenario) withDefaults() Scenario {
	if s.Family == "" {
		s.Family = topology.FamilyHierarchical
	}
	if s.Place == 0 {
		s.Place = topology.PlaceUniform
	}
	if s.NumGateways == 0 {
		s.NumGateways = 2 * s.NumEdge
	}
	if s.NumRouters == 0 {
		s.NumRouters = s.NumEdge
	}
	if s.Rho == 0 {
		s.Rho = 0.7
	}
	return s
}

// Capacities sizes uniform per-edge capacities at tightness rho, raised if
// necessary so the heaviest single device fits on an edge (a deployment
// whose largest workload exceeds every server is malformed, not "tight").
func Capacities(m int, devices []workload.Device, rho float64) ([]float64, error) {
	capacity, err := gap.UniformCapacities(m, workload.TotalLoad(devices), rho)
	if err != nil {
		return nil, err
	}
	maxLoad := 0.0
	for _, d := range devices {
		if l := d.Load(); l > maxLoad {
			maxLoad = l
		}
	}
	floor := maxLoad * 1.05
	for j := range capacity {
		if capacity[j] < floor {
			capacity[j] = floor
		}
	}
	return capacity, nil
}

// ServiceRates converts assignment capacities into simulator service
// rates: the planner commits only `headroom` (in (0, 1]) of each server's
// physical rate, so a fully packed edge still runs its queue at utilization
// ~headroom instead of 1.0. Panics on out-of-range headroom.
func ServiceRates(capacity []float64, headroom float64) []float64 {
	if headroom <= 0 || headroom > 1 {
		panic(fmt.Sprintf("experiment: headroom %v outside (0,1]", headroom))
	}
	out := make([]float64, len(capacity))
	for j, c := range capacity {
		out[j] = c / headroom
	}
	return out
}

// Built is a fully materialized scenario.
type Built struct {
	Scenario Scenario
	Graph    *topology.Graph
	Delay    *topology.DelayMatrix
	Devices  []workload.Device
	Instance *gap.Instance
	// Capacity is the per-edge capacity used for the instance (compute
	// units per second).
	Capacity []float64
}

// Build materializes the scenario deterministically.
func (s Scenario) Build() (*Built, error) {
	s = s.withDefaults()
	if s.NumIoT <= 0 || s.NumEdge <= 0 {
		return nil, fmt.Errorf("experiment: scenario needs NumIoT and NumEdge > 0, got %d, %d", s.NumIoT, s.NumEdge)
	}
	cfg := topology.Config{
		NumIoT:      s.NumIoT,
		NumEdge:     s.NumEdge,
		NumGateways: s.NumGateways,
		NumRouters:  s.NumRouters,
		Links:       s.Links,
		Seed:        xrand.SplitSeed(s.Seed, "topology"),
	}
	topoPh := s.Trace.Child("topology")
	g, err := topology.Generate(s.Family, cfg, s.Place)
	topoPh.SetAttr("family", string(s.Family))
	topoPh.End()
	if err != nil {
		return nil, fmt.Errorf("experiment: generating topology: %w", err)
	}
	cost := topology.LatencyCost
	if s.PayloadKB > 0 {
		cost = topology.PayloadCost(s.PayloadKB)
	}
	dmPh := s.Trace.Child("delay-matrix")
	dm := topology.NewDelayMatrixTraced(g, cost, s.Workers, dmPh)
	dmPh.SetAttr("iot", dm.NumIoT())
	dmPh.SetAttr("edge", dm.NumEdge())
	dmPh.End()
	profileName := s.Workload
	if profileName == "" {
		profileName = "default"
	}
	wlPh := s.Trace.Child("workload")
	profile, ok := workload.Profiles(xrand.SplitSeed(s.Seed, "workload"))[profileName]
	if !ok {
		wlPh.End()
		return nil, fmt.Errorf("experiment: unknown workload profile %q", profileName)
	}
	devices, err := workload.Generate(s.NumIoT, profile)
	wlPh.End()
	if err != nil {
		return nil, fmt.Errorf("experiment: generating workload: %w", err)
	}
	instPh := s.Trace.Child("instance")
	defer instPh.End()
	capacity, err := Capacities(s.NumEdge, devices, s.Rho)
	if err != nil {
		return nil, fmt.Errorf("experiment: sizing capacities: %w", err)
	}
	if s.CapacitySkew != 0 {
		if s.CapacitySkew < 0 || s.CapacitySkew >= 1 {
			return nil, fmt.Errorf("experiment: CapacitySkew %v outside [0,1)", s.CapacitySkew)
		}
		for j := range capacity {
			if j%2 == 0 {
				capacity[j] *= 1 + s.CapacitySkew
			} else {
				capacity[j] *= 1 - s.CapacitySkew
			}
		}
	}
	in, err := gap.FromTopology(dm, devices, capacity)
	if err != nil {
		return nil, fmt.Errorf("experiment: building instance: %w", err)
	}
	return &Built{
		Scenario: s,
		Graph:    g,
		Delay:    dm,
		Devices:  devices,
		Instance: in,
		Capacity: capacity,
	}, nil
}
