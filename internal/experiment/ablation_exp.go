package experiment

import (
	"errors"
	"fmt"

	"taccc/internal/assign"
	"taccc/internal/gap"
	"taccc/internal/stats"
	"taccc/internal/xrand"
)

// F11 ablates the three design choices the Q-learning assigner makes on
// top of vanilla tabular Q-learning (see DESIGN.md):
//
//  1. cost-seeded Q initialization (vs zero initialization),
//  2. regret-greedy warm start of the incumbent (vs none),
//  3. cost-biased softmax exploration (vs uniform).
//
// Each row disables exactly one choice; the last row disables all three
// (vanilla tabular Q-learning with feasibility masking).
func F11(o Options) ([]*Table, error) {
	o = o.withDefaults()
	n, m := 100, 10
	if o.Quick {
		n, m = 30, 4
	}
	type variant struct {
		name string
		mut  func(*assign.RLParams)
	}
	variants := []variant{
		{"full (all choices on)", func(*assign.RLParams) {}},
		{"- cost seeding", func(p *assign.RLParams) { p.NoCostSeeding = true }},
		{"- warm start", func(p *assign.RLParams) { p.NoWarmStart = true }},
		{"- softmax exploration", func(p *assign.RLParams) { p.UniformExploration = true }},
		{"vanilla (all off)", func(p *assign.RLParams) {
			p.NoCostSeeding = true
			p.NoWarmStart = true
			p.UniformExploration = true
		}},
	}
	tab := &Table{
		ID:     "F11",
		Title:  fmt.Sprintf("Q-learning design-choice ablation, n=%d m=%d, rho=0.85", n, m),
		Header: []string{"variant", "mean delay ms", "feasible rate", "runtime ms"},
		Note:   fmt.Sprintf("%d replications; each row disables one design choice", o.Reps),
	}
	for _, v := range variants {
		var cost, rt stats.Welford
		feasible := 0
		for r := 0; r < o.Reps; r++ {
			sc := Scenario{NumIoT: n, NumEdge: m, Rho: 0.85, Seed: xrand.SplitSeed(o.Seed, fmt.Sprintf("F11-%d", r))}
			b, err := sc.Build()
			if err != nil {
				return nil, err
			}
			q := assign.NewQLearning(xrand.SplitSeed(o.Seed, fmt.Sprintf("F11-%s-%d", v.name, r)))
			v.mut(&q.Params)
			start := wallMs.NowMs()
			got, err := q.Assign(b.Instance)
			rt.Add(wallMs.NowMs() - start)
			if err != nil {
				if errors.Is(err, gap.ErrInfeasible) {
					continue
				}
				return nil, err
			}
			feasible++
			cost.Add(b.Instance.MeanCost(got))
		}
		if feasible == 0 {
			tab.AddRow(v.name, "-", 0.0, rt.Mean())
			continue
		}
		tab.AddRow(v.name, cost.Mean(), float64(feasible)/float64(o.Reps), rt.Mean())
	}
	return []*Table{tab}, nil
}
