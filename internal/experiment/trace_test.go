package experiment

import (
	"reflect"
	"testing"

	"taccc/internal/obs"
)

// TestBuildBitIdenticalWithTracing pins the pipeline-tracing carve-out:
// attaching a trace phase to a scenario changes nothing about the built
// artifacts, at any worker count.
func TestBuildBitIdenticalWithTracing(t *testing.T) {
	base := Scenario{NumIoT: 60, NumEdge: 6, Rho: 0.75, Seed: 9, Workers: 1}
	want, err := base.Build()
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 8} {
		var col obs.SpanCollector
		tr := obs.NewTracer(&col, obs.WallClock())
		root := tr.Root("build")
		sc := base
		sc.Workers = workers
		sc.Trace = root
		got, err := sc.Build()
		root.End()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.Delay.DelayMs, want.Delay.DelayMs) {
			t.Fatalf("workers=%d: delay matrix differs with tracing attached", workers)
		}
		if !reflect.DeepEqual(got.Instance, want.Instance) {
			t.Fatalf("workers=%d: instance differs with tracing attached", workers)
		}
		if !reflect.DeepEqual(got.Devices, want.Devices) {
			t.Fatalf("workers=%d: devices differ with tracing attached", workers)
		}
		names := map[string]int{}
		for _, sp := range col.Spans() {
			names[sp.Name]++
		}
		for _, phase := range []string{"topology", "delay-matrix", "workload", "instance"} {
			if names[phase] != 1 {
				t.Fatalf("workers=%d: phase %q emitted %d times, want 1 (all: %v)", workers, phase, names[phase], names)
			}
		}
		if names["shard"] == 0 {
			t.Fatalf("workers=%d: no delay-matrix shard spans", workers)
		}
	}
}

// TestRunAllEmitsSpecSpans checks the experiment-suite cells appear as
// spans named by spec ID, and that attaching the tracer leaves tables
// unchanged.
func TestRunAllEmitsSpecSpans(t *testing.T) {
	specs := []Spec{
		{ID: "S1", Title: "first", Run: func(o Options) ([]*Table, error) {
			tab := &Table{ID: "S1", Title: "t", Header: []string{"a"}}
			tab.AddRow(1.0)
			return []*Table{tab}, nil
		}},
		{ID: "S2", Title: "second", Run: func(o Options) ([]*Table, error) { return nil, nil }},
	}
	opts := Options{Reps: 1, Seed: 1, Workers: 2}
	want := RunAll(specs, opts)

	var col obs.SpanCollector
	tr := obs.NewTracer(&col, obs.WallClock())
	root := tr.Root("suite")
	opts.Trace = root
	got := RunAll(specs, opts)
	root.End()

	for i := range want {
		if want[i].Err != nil || got[i].Err != nil {
			t.Fatalf("spec errors: %v %v", want[i].Err, got[i].Err)
		}
		if !reflect.DeepEqual(want[i].Tables, got[i].Tables) {
			t.Fatalf("spec %s: tables differ with tracing attached", want[i].Spec.ID)
		}
	}
	byName := map[string]obs.Span{}
	for _, sp := range col.Spans() {
		byName[sp.Name] = sp
	}
	rootSp, ok := byName["suite"]
	if !ok {
		t.Fatal("missing suite root span")
	}
	for _, id := range []string{"S1", "S2"} {
		sp, ok := byName[id]
		if !ok {
			t.Fatalf("missing spec span %s", id)
		}
		if sp.Parent != rootSp.ID {
			t.Fatalf("spec span %s not parented under the suite root", id)
		}
		if okAttr, _ := sp.Attrs["ok"].(bool); !okAttr {
			t.Fatalf("spec span %s missing ok attr: %+v", id, sp.Attrs)
		}
	}
}
