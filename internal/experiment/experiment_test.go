package experiment

import (
	"math"
	"strings"
	"testing"

	"taccc/internal/assign"
)

func quickOpts() Options { return Options{Quick: true, Reps: 2, Seed: 7} }

func TestTableRenderAndCSV(t *testing.T) {
	tab := &Table{
		ID:     "X1",
		Title:  "demo",
		Header: []string{"a", "b"},
		Note:   "hello",
	}
	tab.AddRow("x", 1.5)
	tab.AddRow("longer", 1234567.0)
	out := tab.Render()
	for _, want := range []string{"X1", "demo", "a", "b", "x", "1.500", "hello"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render missing %q in:\n%s", want, out)
		}
	}
	csv := tab.CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV has %d lines, want 3", len(lines))
	}
	if lines[0] != "a,b" {
		t.Fatalf("CSV header = %q", lines[0])
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		1.23456: "1.235",
		150.26:  "150.3",
		2e6:     "2e+06",
	}
	for in, want := range cases {
		if got := formatFloat(in); got != want {
			t.Errorf("formatFloat(%v) = %q, want %q", in, got, want)
		}
	}
	if got := formatFloat(math.NaN()); got != "-" {
		t.Errorf("formatFloat(NaN) = %q, want -", got)
	}
}

func TestScenarioBuild(t *testing.T) {
	b, err := Scenario{NumIoT: 20, NumEdge: 4, Seed: 3}.Build()
	if err != nil {
		t.Fatal(err)
	}
	if b.Instance.N() != 20 || b.Instance.M() != 4 {
		t.Fatalf("instance dims %dx%d", b.Instance.N(), b.Instance.M())
	}
	if len(b.Devices) != 20 || len(b.Capacity) != 4 {
		t.Fatal("artifacts sized wrong")
	}
	// Deterministic.
	b2, err := Scenario{NumIoT: 20, NumEdge: 4, Seed: 3}.Build()
	if err != nil {
		t.Fatal(err)
	}
	g1, err := assign.NewGreedy().Assign(b.Instance)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := assign.NewGreedy().Assign(b2.Instance)
	if err != nil {
		t.Fatal(err)
	}
	if b.Instance.TotalCost(g1) != b2.Instance.TotalCost(g2) {
		t.Fatal("same-seed scenarios differ")
	}
}

func TestScenarioBuildErrors(t *testing.T) {
	if _, err := (Scenario{NumIoT: 0, NumEdge: 4}).Build(); err == nil {
		t.Error("NumIoT 0 accepted")
	}
	if _, err := (Scenario{NumIoT: 5, NumEdge: 0}).Build(); err == nil {
		t.Error("NumEdge 0 accepted")
	}
	if _, err := (Scenario{NumIoT: 5, NumEdge: 2, Family: "bogus"}).Build(); err == nil {
		t.Error("bogus family accepted")
	}
}

func TestScenarioPayloadAwareCostsHigher(t *testing.T) {
	plain, err := Scenario{NumIoT: 15, NumEdge: 3, Seed: 9}.Build()
	if err != nil {
		t.Fatal(err)
	}
	heavy, err := Scenario{NumIoT: 15, NumEdge: 3, Seed: 9, PayloadKB: 100}.Build()
	if err != nil {
		t.Fatal(err)
	}
	for i := range plain.Instance.CostMs {
		for j := range plain.Instance.CostMs[i] {
			if heavy.Instance.CostMs[i][j] <= plain.Instance.CostMs[i][j] {
				t.Fatal("payload-aware delay not larger")
			}
		}
	}
}

func TestCompareAlgorithms(t *testing.T) {
	sc := Scenario{NumIoT: 20, NumEdge: 4, Seed: 11}
	res, err := CompareAlgorithms(sc, []string{"random", "greedy", "qlearning"}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("got %d stats", len(res))
	}
	byName := map[string]AlgoStat{}
	for _, st := range res {
		byName[st.Name] = st
		if st.Reps != 2 {
			t.Fatalf("%s: Reps = %d", st.Name, st.Reps)
		}
		if st.FeasibleRate <= 0 {
			t.Fatalf("%s: no feasible replication", st.Name)
		}
		if st.MeanCost <= 0 {
			t.Fatalf("%s: non-positive mean cost", st.Name)
		}
	}
	if byName["qlearning"].MeanCost > byName["random"].MeanCost {
		t.Fatalf("qlearning (%v) worse than random (%v)",
			byName["qlearning"].MeanCost, byName["random"].MeanCost)
	}
}

func TestCompareAlgorithmsErrors(t *testing.T) {
	sc := Scenario{NumIoT: 5, NumEdge: 2, Seed: 1}
	if _, err := CompareAlgorithms(sc, []string{"greedy"}, 0); err == nil {
		t.Error("reps=0 accepted")
	}
	if _, err := CompareAlgorithms(sc, []string{"bogus"}, 1); err == nil {
		t.Error("bogus algorithm accepted")
	}
}

func TestAllExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("quick experiment sweep still takes a few seconds")
	}
	for _, spec := range All() {
		spec := spec
		t.Run(spec.ID, func(t *testing.T) {
			tables, err := spec.Run(quickOpts())
			if err != nil {
				t.Fatalf("%s: %v", spec.ID, err)
			}
			if len(tables) == 0 {
				t.Fatalf("%s produced no tables", spec.ID)
			}
			for _, tab := range tables {
				if len(tab.Rows) == 0 {
					t.Fatalf("%s table %s has no rows", spec.ID, tab.ID)
				}
				for _, row := range tab.Rows {
					if len(row) != len(tab.Header) {
						t.Fatalf("%s table %s: row width %d, header %d",
							spec.ID, tab.ID, len(row), len(tab.Header))
					}
				}
				if out := tab.Render(); !strings.Contains(out, tab.ID) {
					t.Fatalf("%s render missing ID", spec.ID)
				}
			}
		})
	}
}

func TestByID(t *testing.T) {
	s, err := ByID("F3")
	if err != nil || s.ID != "F3" {
		t.Fatalf("ByID(F3) = %+v, %v", s, err)
	}
	if _, err := ByID("Z9"); err == nil {
		t.Fatal("unknown ID accepted")
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Reps != 5 || o.Seed != 1 {
		t.Fatalf("defaults: %+v", o)
	}
	q := Options{Quick: true}.withDefaults()
	if q.Reps != 2 {
		t.Fatalf("quick default reps: %+v", q)
	}
}
