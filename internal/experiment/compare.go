package experiment

import (
	"errors"
	"fmt"
	"time"

	"taccc/internal/assign"
	"taccc/internal/gap"
	"taccc/internal/stats"
	"taccc/internal/xrand"
)

// DefaultAlgorithms is the algorithm subset used by most experiments:
// every baseline class plus the paper's RL heuristics, ordered weakest
// first so tables read top-to-bottom as "worse to better".
var DefaultAlgorithms = []string{
	"random", "round-robin", "first-fit", "greedy", "regret-greedy",
	"local-search", "tabu", "lns", "lagrangian", "qlearning",
}

// FastAlgorithms is a cheaper subset for wide sweeps.
var FastAlgorithms = []string{"random", "greedy", "local-search", "qlearning"}

// AlgoStat aggregates one algorithm's behaviour over replications of a
// scenario.
type AlgoStat struct {
	Name string
	// MeanCost and CostCI95 summarize per-device mean delay (ms) over
	// feasible replications.
	MeanCost float64
	CostCI95 float64
	// MaxCost is the mean of per-replication max device delay.
	MaxCost float64
	// Imbalance is the mean max/mean edge-utilization ratio.
	Imbalance float64
	// MeanRuntimeMs is the mean wall-clock solve time.
	MeanRuntimeMs float64
	// FeasibleRate is the fraction of replications with a feasible
	// result.
	FeasibleRate float64
	// Reps is the number of replications attempted.
	Reps int
}

// CompareAlgorithms runs each named algorithm on reps independently seeded
// replications of the scenario and aggregates. Scenario seeds are derived
// from sc.Seed, so the same call is fully reproducible.
func CompareAlgorithms(sc Scenario, algos []string, reps int) ([]AlgoStat, error) {
	if reps <= 0 {
		return nil, fmt.Errorf("experiment: reps must be positive, got %d", reps)
	}
	reg := assign.NewRegistry()
	// Pre-build the instances once; all algorithms see identical inputs.
	builds := make([]*Built, reps)
	for r := 0; r < reps; r++ {
		s := sc
		s.Seed = xrand.SplitSeed(sc.Seed, fmt.Sprintf("rep-%d", r))
		b, err := s.Build()
		if err != nil {
			return nil, err
		}
		builds[r] = b
	}
	out := make([]AlgoStat, 0, len(algos))
	for _, name := range algos {
		var cost, maxCost, imb, runtime stats.Welford
		feasible := 0
		for r := 0; r < reps; r++ {
			a, err := reg.New(name, xrand.SplitSeed(sc.Seed, fmt.Sprintf("%s-%d", name, r)))
			if err != nil {
				return nil, err
			}
			in := builds[r].Instance
			start := time.Now()
			got, err := a.Assign(in)
			elapsed := time.Since(start)
			runtime.Add(float64(elapsed.Nanoseconds()) / 1e6)
			if err != nil {
				if errors.Is(err, gap.ErrInfeasible) {
					continue
				}
				return nil, fmt.Errorf("experiment: %s rep %d: %w", name, r, err)
			}
			feasible++
			cost.Add(in.MeanCost(got))
			maxCost.Add(in.MaxCost(got))
			imb.Add(in.Imbalance(got))
		}
		st := AlgoStat{
			Name:          name,
			MeanRuntimeMs: runtime.Mean(),
			FeasibleRate:  float64(feasible) / float64(reps),
			Reps:          reps,
		}
		if feasible > 0 {
			st.MeanCost = cost.Mean()
			st.CostCI95 = cost.CI95()
			st.MaxCost = maxCost.Mean()
			st.Imbalance = imb.Mean()
		}
		out = append(out, st)
	}
	return out, nil
}
