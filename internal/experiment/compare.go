package experiment

import (
	"errors"
	"fmt"

	"taccc/internal/assign"
	"taccc/internal/gap"
	"taccc/internal/obs"
	"taccc/internal/par"
	"taccc/internal/stats"
	"taccc/internal/xrand"
)

// wallMs is the package's one wall-clock source, behind the sanctioned
// obs.Clock doorway: runtime measurement is observational by contract
// (it lands in runtime columns and events, never in seeds, assignments
// or costs), and routing it through obs keeps this package clean under
// taclint's detrand rule without per-site annotations.
var wallMs = obs.WallClock()

// DefaultAlgorithms is the algorithm subset used by most experiments:
// every baseline class plus the paper's RL heuristics, ordered weakest
// first so tables read top-to-bottom as "worse to better".
var DefaultAlgorithms = []string{
	"random", "round-robin", "first-fit", "greedy", "regret-greedy",
	"local-search", "tabu", "lns", "lagrangian", "qlearning",
}

// FastAlgorithms is a cheaper subset for wide sweeps.
var FastAlgorithms = []string{"random", "greedy", "local-search", "qlearning"}

// AlgoStat aggregates one algorithm's behaviour over replications of a
// scenario.
type AlgoStat struct {
	Name string
	// MeanCost and CostCI95 summarize per-device mean delay (ms) over
	// feasible replications.
	MeanCost float64
	CostCI95 float64
	// MaxCost is the mean of per-replication max device delay.
	MaxCost float64
	// Imbalance is the mean max/mean edge-utilization ratio.
	Imbalance float64
	// MeanRuntimeMs is the mean wall-clock solve time over ALL attempted
	// replications — feasible, infeasible and errored alike — so it
	// reflects what a caller actually pays per solve. Compare against
	// FeasibleRuntimeMs, which averages over the same population as the
	// cost fields.
	MeanRuntimeMs float64
	// RuntimeCI95 is the 95% confidence half-width of MeanRuntimeMs.
	RuntimeCI95 float64
	// FeasibleRuntimeMs is the mean wall-clock solve time over feasible
	// replications only (0 when none were feasible). MeanCost, CostCI95,
	// MaxCost and Imbalance average over this same population, so runtime
	// and quality columns built from it are directly comparable.
	FeasibleRuntimeMs float64
	// FeasibleRuntimeCI95 is the 95% confidence half-width of
	// FeasibleRuntimeMs — the uncertainty the perf-regression gate uses
	// when judging whether a runtime delta is significant.
	FeasibleRuntimeCI95 float64
	// FeasibleRate is the fraction of replications with a feasible
	// result.
	FeasibleRate float64
	// Reps is the number of replications attempted.
	Reps int
	// Errors counts replications that failed with an unexpected error
	// (anything other than gap.ErrInfeasible). Errored replications count
	// toward MeanRuntimeMs and Reps but not toward FeasibleRate or the
	// cost fields.
	Errors int
}

// cell is one (algorithm, replication) solve result. Cells are computed
// independently — possibly concurrently — and folded sequentially, so
// aggregate statistics never depend on execution order.
type cell struct {
	runtimeMs float64
	cost      float64
	maxCost   float64
	imbalance float64
	feasible  bool
	err       error
}

// CompareAlgorithms runs each named algorithm on reps independently seeded
// replications of the scenario and aggregates, using every core. Scenario
// seeds are derived from sc.Seed, so the same call is fully reproducible at
// any parallelism. Use CompareAlgorithmsWorkers to bound the worker count.
func CompareAlgorithms(sc Scenario, algos []string, reps int) ([]AlgoStat, error) {
	return CompareAlgorithmsWorkers(sc, algos, reps, 0)
}

// CompareAlgorithmsWorkers is CompareAlgorithms with an explicit worker
// count (<= 0 means all cores, 1 restores fully sequential execution).
//
// Each (algorithm, replication) cell is an independent unit of work: its
// assigner is constructed from xrand.SplitSeed(sc.Seed, "<algo>-<rep>")
// exactly as the sequential loop always did, it writes its result into the
// slot it owns, and aggregation folds the pre-sized cell slice in a fixed
// order afterwards. Output is therefore bit-identical for every worker
// count; only wall-clock time changes.
//
// An algorithm failing a replication with an unexpected error (anything
// other than gap.ErrInfeasible) no longer aborts the whole comparison: the
// failure is counted in that algorithm's AlgoStat.Errors and the remaining
// cells still run. Unknown algorithm names and scenario build failures
// still error out the call.
func CompareAlgorithmsWorkers(sc Scenario, algos []string, reps, workers int) ([]AlgoStat, error) {
	return compareWithRegistry(assign.NewRegistry(), sc, algos, reps, workers, nil)
}

// CompareAlgorithmsObserved is CompareAlgorithmsWorkers with a progress
// sink. The sink receives one "cell" event as each (algorithm,
// replication) solve finishes — fields: algo, rep, runtime_ms, feasible,
// cost_ms when feasible, error when the solve failed unexpectedly — and
// one "algo-done" event per algorithm after the sequential fold, carrying
// the aggregate (mean_cost_ms, feasible_rate, errors). Cell events are
// emitted from worker goroutines, so their interleaving across algorithms
// depends on scheduling; the fields identify each cell unambiguously and
// the aggregates are computed from the owned slots, never from the event
// stream, so results stay bit-identical at any worker count. A nil sink
// is free.
func CompareAlgorithmsObserved(sc Scenario, algos []string, reps, workers int, progress obs.Sink) ([]AlgoStat, error) {
	return compareWithRegistry(assign.NewRegistry(), sc, algos, reps, workers, progress)
}

// compareWithRegistry is the engine behind CompareAlgorithmsWorkers,
// parameterized by registry so tests can inject failing assigners.
func compareWithRegistry(reg *assign.Registry, sc Scenario, algos []string, reps, workers int, progress obs.Sink) ([]AlgoStat, error) {
	if reps <= 0 {
		return nil, fmt.Errorf("experiment: reps must be positive, got %d", reps)
	}
	// Reject unknown algorithm names before any cell runs; a typo should
	// fail fast, not surface as reps*len(algos) errored cells.
	for _, name := range algos {
		if _, err := reg.New(name, 0); err != nil {
			return nil, err
		}
	}
	w := par.Workers(workers)
	// Pre-build the instances once; all algorithms see identical inputs.
	// Builds are independent per replication, so they fan out too.
	builds := make([]*Built, reps)
	err := par.ForErr(w, reps, func(r int) error {
		s := sc
		s.Seed = xrand.SplitSeed(sc.Seed, fmt.Sprintf("rep-%d", r))
		b, err := s.Build()
		if err != nil {
			return err
		}
		builds[r] = b
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Solve every (algorithm, replication) cell into its own slot.
	// Instances are read-only for assigners (see assign.Assigner), so
	// cells sharing a replication's instance never contend.
	cells := make([]cell, len(algos)*reps)
	par.For(w, len(cells), func(k int) {
		name, r := algos[k/reps], k%reps
		a, err := reg.New(name, xrand.SplitSeed(sc.Seed, fmt.Sprintf("%s-%d", name, r)))
		if err != nil {
			cells[k] = cell{err: err}
			return
		}
		in := builds[r].Instance
		start := wallMs.NowMs()
		got, err := a.Assign(in)
		c := cell{runtimeMs: wallMs.NowMs() - start}
		if err != nil {
			c.err = err
		} else {
			c.feasible = true
			c.cost = in.MeanCost(got)
			c.maxCost = in.MaxCost(got)
			c.imbalance = in.Imbalance(got)
		}
		cells[k] = c
		if progress != nil {
			fields := map[string]interface{}{
				"algo": name, "rep": r, "runtime_ms": c.runtimeMs, "feasible": c.feasible,
			}
			if c.feasible {
				fields["cost_ms"] = c.cost
			} else if c.err != nil && !errors.Is(c.err, gap.ErrInfeasible) {
				fields["error"] = c.err.Error()
			}
			obs.Emit(progress, "cell", fields)
		}
	})
	// Sequential fold in (algorithm, replication) order: identical
	// accumulation order — and therefore identical floating-point results —
	// at any worker count.
	out := make([]AlgoStat, 0, len(algos))
	for ai, name := range algos {
		var cost, maxCost, imb, runtime, feasRuntime stats.Welford
		feasible, errored := 0, 0
		for r := 0; r < reps; r++ {
			c := cells[ai*reps+r]
			runtime.Add(c.runtimeMs)
			if c.err != nil {
				if !errors.Is(c.err, gap.ErrInfeasible) {
					errored++
				}
				continue
			}
			feasible++
			feasRuntime.Add(c.runtimeMs)
			cost.Add(c.cost)
			maxCost.Add(c.maxCost)
			imb.Add(c.imbalance)
		}
		st := AlgoStat{
			Name:          name,
			MeanRuntimeMs: runtime.Mean(),
			RuntimeCI95:   runtime.CI95(),
			FeasibleRate:  float64(feasible) / float64(reps),
			Reps:          reps,
			Errors:        errored,
		}
		if feasible > 0 {
			st.MeanCost = cost.Mean()
			st.CostCI95 = cost.CI95()
			st.MaxCost = maxCost.Mean()
			st.Imbalance = imb.Mean()
			st.FeasibleRuntimeMs = feasRuntime.Mean()
			st.FeasibleRuntimeCI95 = feasRuntime.CI95()
		}
		if progress != nil {
			fields := map[string]interface{}{
				"algo": name, "feasible_rate": st.FeasibleRate, "errors": st.Errors, "reps": reps,
			}
			if feasible > 0 {
				fields["mean_cost_ms"] = st.MeanCost
			}
			obs.Emit(progress, "algo-done", fields)
		}
		out = append(out, st)
	}
	return out, nil
}
