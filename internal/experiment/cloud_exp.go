package experiment

import (
	"errors"
	"fmt"

	"taccc/internal/assign"
	"taccc/internal/gap"
	"taccc/internal/stats"
	"taccc/internal/xrand"
)

// F16 adds a cloud fallback tier (WAN delay, effectively unbounded
// capacity) and sweeps capacity tightness with skewed edge capacities:
// as the edge fills up, devices spill to the cloud and pay the WAN round
// trip. The metric pair (mean delay, offload fraction) shows how much
// on-edge capacity a smarter assigner preserves before resorting to the
// cloud.
func F16(o Options) ([]*Table, error) {
	o = o.withDefaults()
	n, m := 100, 10
	cloudMs := 60.0
	// Edge capacity as a fraction of total demand; below 1.0 the edge
	// tier cannot hold everyone and the overflow must go to the cloud.
	scales := []float64{1.2, 1.0, 0.8, 0.6}
	if o.Quick {
		n, m = 30, 4
		scales = []float64{1.2, 0.7}
	}
	algos := []string{"greedy", "qlearning"}
	tab := &Table{
		ID:     "F16",
		Title:  fmt.Sprintf("cloud offload vs edge provisioning, n=%d m=%d, cloud RTT %.0f ms, skewed capacities", n, m, cloudMs),
		Header: []string{"edge capacity / demand", "greedy mean ms", "greedy offload %", "qlearning mean ms", "qlearning offload %"},
		Note:   fmt.Sprintf("%d replications; the cloud column absorbs overflow at a fixed WAN delay", o.Reps),
	}
	reg := assign.NewRegistry()
	for _, scale := range scales {
		cells := []interface{}{scale}
		for _, name := range algos {
			var mean, off stats.Welford
			for r := 0; r < o.Reps; r++ {
				sc := Scenario{
					NumIoT: n, NumEdge: m, Rho: 1.0, CapacitySkew: 0.5,
					Seed: xrand.SplitSeed(o.Seed, fmt.Sprintf("F16-%v-%d", scale, r)),
				}
				b, err := sc.Build()
				if err != nil {
					return nil, err
				}
				// Shrink/grow the edge tier relative to demand
				// (instances are read-only: rebuild).
				scaled := make([]float64, len(b.Instance.Capacity))
				for j, c := range b.Instance.Capacity {
					scaled[j] = c * scale
				}
				rebuilt, err := gap.NewInstance(b.Instance.CostMs, b.Instance.Weight, scaled)
				if err != nil {
					return nil, err
				}
				withCloud, err := gap.WithCloud(rebuilt, cloudMs)
				if err != nil {
					return nil, err
				}
				a, err := reg.New(name, xrand.SplitSeed(o.Seed, fmt.Sprintf("F16-%s-%v-%d", name, scale, r)))
				if err != nil {
					return nil, err
				}
				got, err := a.Assign(withCloud)
				if err != nil {
					if errors.Is(err, gap.ErrInfeasible) {
						continue
					}
					return nil, err
				}
				count, frac, err := gap.CloudOffload(withCloud, got)
				if err != nil {
					return nil, err
				}
				_ = count
				mean.Add(withCloud.MeanCost(got))
				off.Add(100 * frac)
			}
			if mean.N() == 0 {
				cells = append(cells, "-", "-")
				continue
			}
			cells = append(cells, mean.Mean(), off.Mean())
		}
		tab.AddRow(cells...)
	}
	return []*Table{tab}, nil
}
