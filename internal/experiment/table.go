// Package experiment is the evaluation harness: it defines the scenarios,
// runs every algorithm across seeds, and renders the tables and figure
// series of the paper's (reconstructed) evaluation. Each experiment has a
// stable ID (T1..T3, F1..F8) documented in DESIGN.md and EXPERIMENTS.md and
// is runnable via cmd/tacbench.
package experiment

import (
	"fmt"
	"strings"
)

// Table is a rendered experiment result: one header row plus data rows.
// Figures are represented as tables whose first column is the x-axis.
type Table struct {
	// ID is the experiment identifier (e.g. "T1", "F3").
	ID string
	// Title is a one-line description.
	Title string
	// Header names the columns.
	Header []string
	// Rows hold pre-formatted cells.
	Rows [][]string
	// Note is an optional caption (assumptions, units).
	Note string
}

// AddRow appends a row of cells, formatting each with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

func formatFloat(v float64) string {
	switch {
	case v != v: // NaN
		return "-"
	case v >= 1e6:
		return fmt.Sprintf("%.3g", v)
	case v >= 100:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// Render returns an aligned, boxless ASCII rendering.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	if t.Note != "" {
		fmt.Fprintf(&b, "note: %s\n", t.Note)
	}
	return b.String()
}

// Markdown returns a GitHub-flavored Markdown rendering: the ID and
// title as a heading, the table, and the note as a trailing emphasis
// line.
func (t *Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s: %s\n\n", t.ID, t.Title)
	b.WriteString("| " + strings.Join(t.Header, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat(" --- |", len(t.Header)) + "\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	if t.Note != "" {
		fmt.Fprintf(&b, "\n_%s_\n", t.Note)
	}
	return b.String()
}

// CSV returns an RFC-4180-ish comma-separated rendering (cells are simple
// numbers and identifiers; no quoting needed).
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Header, ","))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	return b.String()
}
