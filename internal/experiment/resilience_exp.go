package experiment

import (
	"fmt"

	"taccc/internal/stats"
	"taccc/internal/topology"
	"taccc/internal/xrand"
)

// F14 quantifies structural resilience per topology family: how many
// infrastructure nodes are single points of failure (articulation points),
// and how many IoT devices the worst single failure strands (no path to
// any edge server). Tree-shaped deployments concentrate risk; meshes and
// rings spread it — the availability face of topology awareness.
func F14(o Options) ([]*Table, error) {
	o = o.withDefaults()
	n, m := 100, 10
	if o.Quick {
		n, m = 30, 4
	}
	tab := &Table{
		ID:     "F14",
		Title:  fmt.Sprintf("single-failure resilience by topology family, n=%d m=%d", n, m),
		Header: []string{"family", "infra cut vertices", "worst-case stranded", "stranded %"},
		Note:   fmt.Sprintf("%d replications; stranded = IoT devices losing every edge server after one infra-node failure", o.Reps),
	}
	for _, fam := range topology.Families() {
		var cuts, stranded stats.Welford
		for r := 0; r < o.Reps; r++ {
			cfg := topology.Config{
				NumIoT: n, NumEdge: m, NumGateways: 2 * m, NumRouters: m,
				Seed: xrand.SplitSeed(o.Seed, fmt.Sprintf("F14-%s-%d", fam, r)),
			}
			g, err := topology.Generate(fam, cfg, topology.PlaceUniform)
			if err != nil {
				return nil, err
			}
			rep := g.Resilience()
			cuts.Add(float64(len(rep.CutVertices)))
			stranded.Add(float64(rep.WorstCaseStranded))
		}
		tab.AddRow(string(fam), cuts.Mean(), stranded.Mean(), 100*stranded.Mean()/float64(n))
	}
	return []*Table{tab}, nil
}
