package experiment

import (
	"errors"
	"fmt"
	"math"

	"taccc/internal/assign"
	"taccc/internal/gap"
	"taccc/internal/topology"
	"taccc/internal/workload"
	"taccc/internal/xrand"
)

// F7 plays out a dynamic deployment: devices move (random waypoint), the
// delay matrix drifts epoch by epoch, and an edge server fails midway.
// It compares a static assignment (computed once) against periodic
// reconfiguration with greedy and with Q-learning, reporting per-epoch
// mean delay, the fraction of devices the static policy can still serve,
// and the migration churn periodic reconfiguration pays.
func F7(o Options) ([]*Table, error) {
	o = o.withDefaults()
	n, m, epochs := 60, 10, 12
	epochMs := 60_000.0
	failEpoch := 6
	if o.Quick {
		n, m, epochs, failEpoch = 20, 4, 6, 3
	}
	const area = 5000.0

	seed := xrand.SplitSeed(o.Seed, "F7")
	infraCfg := topology.Config{
		NumIoT: 1, NumEdge: m, NumGateways: 2 * m, NumRouters: m,
		AreaMeters: area, Seed: xrand.SplitSeed(seed, "infra"),
	}
	infra, err := topology.HierarchicalInfra(infraCfg)
	if err != nil {
		return nil, err
	}
	devices, err := workload.Generate(n, workload.DefaultProfile(xrand.SplitSeed(seed, "devices")))
	if err != nil {
		return nil, err
	}
	capacity, err := Capacities(m, devices, 0.7)
	if err != nil {
		return nil, err
	}
	walkers := make([]*workload.RandomWaypoint, n)
	for i := range walkers {
		w, err := workload.NewRandomWaypoint(area, 1, 15, 5_000,
			xrand.New(xrand.SplitSeed(seed, fmt.Sprintf("walker-%d", i))))
		if err != nil {
			return nil, err
		}
		walkers[i] = w
	}

	// buildEpoch snapshots device positions into a GAP instance; failed
	// marks one edge column unreachable.
	buildEpoch := func(epoch int, failed bool) (*gap.Instance, error) {
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i, w := range walkers {
			p := w.Pos()
			xs[i], ys[i] = p.X, p.Y
		}
		g := infra.Clone()
		if err := topology.AttachIoTAt(g, xs, ys, topology.LinkParams{},
			xrand.SplitSeed(seed, fmt.Sprintf("attach-%d", epoch))); err != nil {
			return nil, err
		}
		dm := topology.NewDelayMatrix(g, topology.LatencyCost)
		if failed {
			for i := range dm.DelayMs {
				dm.DelayMs[i][0] = math.Inf(1)
			}
		}
		return gap.FromTopology(dm, devices, capacity)
	}

	solve := func(a assign.Assigner, in *gap.Instance) (*gap.Assignment, error) {
		got, err := a.Assign(in)
		if err != nil && !errors.Is(err, gap.ErrInfeasible) {
			return nil, err
		}
		return got, nil
	}

	// Static assignment from epoch 0.
	in0, err := buildEpoch(0, false)
	if err != nil {
		return nil, err
	}
	static, err := solve(assign.NewQLearning(xrand.SplitSeed(seed, "static")), in0)
	if err != nil {
		return nil, err
	}
	if static == nil {
		return nil, fmt.Errorf("experiment: F7 epoch-0 instance infeasible")
	}

	tab := &Table{
		ID:     "F7",
		Title:  fmt.Sprintf("dynamic scenario: n=%d m=%d, edge 0 fails at epoch %d", n, m, failEpoch),
		Header: []string{"epoch", "static ms", "static served %", "periodic-greedy ms", "periodic-qlearning ms", "migrations (q)"},
		Note:   "per-epoch mean delay over served devices; periodic policies re-solve each epoch",
	}

	var prevQ *gap.Assignment
	for e := 0; e < epochs; e++ {
		failed := e >= failEpoch
		in, err := buildEpoch(e, failed)
		if err != nil {
			return nil, err
		}
		// Static policy evaluation: devices pointing at the failed
		// edge are unserved.
		served := 0
		staticSum := 0.0
		for i, j := range static.Of {
			if c := in.CostMs[i][j]; !math.IsInf(c, 1) {
				staticSum += c
				served++
			}
		}
		staticMean := math.NaN()
		if served > 0 {
			staticMean = staticSum / float64(served)
		}

		gAssign, err := solve(assign.NewGreedy(), in)
		if err != nil {
			return nil, err
		}
		qAssign, err := solve(assign.NewQLearning(xrand.SplitSeed(seed, fmt.Sprintf("q-%d", e))), in)
		if err != nil {
			return nil, err
		}

		greedyCell := "-"
		if gAssign != nil {
			greedyCell = formatFloat(in.MeanCost(gAssign))
		}
		qCell := "-"
		migrations := 0
		if qAssign != nil {
			qCell = formatFloat(in.MeanCost(qAssign))
			if prevQ != nil {
				for i := range qAssign.Of {
					if qAssign.Of[i] != prevQ.Of[i] {
						migrations++
					}
				}
			}
			prevQ = qAssign
		}
		tab.AddRow(e, staticMean, 100*float64(served)/float64(n), greedyCell, qCell, migrations)

		for _, w := range walkers {
			w.Advance(epochMs)
		}
	}
	return []*Table{tab}, nil
}
