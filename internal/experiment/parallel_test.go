package experiment

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"taccc/internal/assign"
	"taccc/internal/gap"
)

// stripRuntimes zeroes the wall-clock fields, which are the only
// machine-dependent part of an AlgoStat; everything else must be
// bit-identical across worker counts.
func stripRuntimes(stats []AlgoStat) []AlgoStat {
	out := make([]AlgoStat, len(stats))
	copy(out, stats)
	for i := range out {
		out[i].MeanRuntimeMs = 0
		out[i].RuntimeCI95 = 0
		out[i].FeasibleRuntimeMs = 0
		out[i].FeasibleRuntimeCI95 = 0
	}
	return out
}

func TestCompareAlgorithmsWorkersDeterministic(t *testing.T) {
	sc := Scenario{NumIoT: 25, NumEdge: 4, Seed: 11}
	algos := []string{"random", "greedy", "local-search", "qlearning"}
	want, err := CompareAlgorithmsWorkers(sc, algos, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		got, err := CompareAlgorithmsWorkers(sc, algos, 3, workers)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(stripRuntimes(got), stripRuntimes(want)) {
			t.Fatalf("workers=%d diverged from sequential:\n%+v\nvs\n%+v",
				workers, stripRuntimes(got), stripRuntimes(want))
		}
	}
	// The all-cores default must agree too.
	got, err := CompareAlgorithms(sc, algos, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(stripRuntimes(got), stripRuntimes(want)) {
		t.Fatal("default CompareAlgorithms diverged from sequential")
	}
}

// brokenAssigner fails every solve with a non-infeasible error.
type brokenAssigner struct{}

func (brokenAssigner) Name() string { return "broken" }
func (brokenAssigner) Assign(*gap.Instance) (*gap.Assignment, error) {
	return nil, fmt.Errorf("broken: induced failure")
}

// flakyAssigner fails odd seeds and delegates even seeds to greedy, so a
// comparison sees a mix of errored and healthy replications.
type flakyAssigner struct{ seed int64 }

func (flakyAssigner) Name() string { return "flaky" }
func (f flakyAssigner) Assign(in *gap.Instance) (*gap.Assignment, error) {
	if f.seed%2 != 0 {
		return nil, fmt.Errorf("flaky: induced failure for seed %d", f.seed)
	}
	return assign.NewGreedy().Assign(in)
}

func TestCompareAlgorithmsRecordsErrorsAndContinues(t *testing.T) {
	reg := assign.NewRegistry()
	reg.Register("broken", func(int64) assign.Assigner { return brokenAssigner{} })
	reg.Register("flaky", func(seed int64) assign.Assigner { return flakyAssigner{seed: seed} })
	sc := Scenario{NumIoT: 20, NumEdge: 4, Seed: 5}
	const reps = 4
	for _, workers := range []int{1, 8} {
		res, err := compareWithRegistry(reg, sc, []string{"broken", "greedy", "flaky"}, reps, workers, nil)
		if err != nil {
			t.Fatalf("workers=%d: errored replications aborted the comparison: %v", workers, err)
		}
		byName := map[string]AlgoStat{}
		for _, st := range res {
			byName[st.Name] = st
		}
		if st := byName["broken"]; st.Errors != reps || st.FeasibleRate != 0 {
			t.Fatalf("workers=%d: broken stat = %+v, want Errors=%d FeasibleRate=0", workers, st, reps)
		}
		if st := byName["greedy"]; st.Errors != 0 || st.FeasibleRate != 1 || st.MeanCost <= 0 {
			t.Fatalf("workers=%d: greedy work discarded: %+v", workers, st)
		}
		st := byName["flaky"]
		if st.Errors == 0 || st.Errors == reps {
			t.Fatalf("workers=%d: flaky should mix errors and successes, got %+v", workers, st)
		}
		if st.Errors+int(st.FeasibleRate*reps+0.5) != reps {
			t.Fatalf("workers=%d: flaky errors (%d) + feasible don't cover %d reps: %+v",
				workers, st.Errors, reps, st)
		}
	}
}

func TestCompareAlgorithmsRuntimePopulations(t *testing.T) {
	reg := assign.NewRegistry()
	reg.Register("flaky", func(seed int64) assign.Assigner { return flakyAssigner{seed: seed} })
	sc := Scenario{NumIoT: 20, NumEdge: 4, Seed: 5}
	res, err := compareWithRegistry(reg, sc, []string{"greedy", "flaky"}, 4, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range res {
		if st.MeanRuntimeMs <= 0 {
			t.Fatalf("%s: MeanRuntimeMs not recorded: %+v", st.Name, st)
		}
		if st.FeasibleRate > 0 && st.FeasibleRuntimeMs <= 0 {
			t.Fatalf("%s: feasible reps but FeasibleRuntimeMs empty: %+v", st.Name, st)
		}
	}
}

func TestCompareAlgorithmsUnknownNameStillErrors(t *testing.T) {
	sc := Scenario{NumIoT: 10, NumEdge: 2, Seed: 1}
	if _, err := CompareAlgorithmsWorkers(sc, []string{"greedy", "bogus"}, 2, 8); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestRunAllDeterministicAcrossWorkers(t *testing.T) {
	specs := []Spec{mustSpec(t, "F1"), mustSpec(t, "F6")}
	seq := RunAll(specs, Options{Quick: true, Reps: 1, Seed: 9, Workers: 1})
	con := RunAll(specs, Options{Quick: true, Reps: 1, Seed: 9, Workers: 8})
	if len(seq) != len(specs) || len(con) != len(specs) {
		t.Fatalf("result counts: %d, %d", len(seq), len(con))
	}
	for i := range specs {
		if seq[i].Err != nil || con[i].Err != nil {
			t.Fatalf("spec %s failed: %v / %v", specs[i].ID, seq[i].Err, con[i].Err)
		}
		if seq[i].Spec.ID != specs[i].ID || con[i].Spec.ID != specs[i].ID {
			t.Fatalf("result %d out of spec order", i)
		}
		for j := range seq[i].Tables {
			a, b := seq[i].Tables[j].CSV(), con[i].Tables[j].CSV()
			if a != b {
				t.Fatalf("spec %s table %d differs between workers=1 and workers=8:\n%s\nvs\n%s",
					specs[i].ID, j, a, b)
			}
		}
	}
}

func TestRunAllRecordsPerSpecFailure(t *testing.T) {
	boom := errors.New("spec failure")
	specs := []Spec{
		{ID: "OK", Run: func(Options) ([]*Table, error) {
			tab := &Table{ID: "OK", Header: []string{"x"}}
			tab.AddRow(1)
			return []*Table{tab}, nil
		}},
		{ID: "BAD", Run: func(Options) ([]*Table, error) { return nil, boom }},
	}
	res := RunAll(specs, Options{Workers: 4})
	if res[0].Err != nil || len(res[0].Tables) != 1 {
		t.Fatalf("healthy spec lost: %+v", res[0])
	}
	if !errors.Is(res[1].Err, boom) {
		t.Fatalf("failure not recorded: %+v", res[1])
	}
}

func mustSpec(t *testing.T, id string) Spec {
	t.Helper()
	s, err := ByID(id)
	if err != nil {
		t.Fatal(err)
	}
	return s
}
