package experiment

import (
	"errors"
	"fmt"

	"taccc/internal/assign"
	"taccc/internal/gap"
	"taccc/internal/stats"
	"taccc/internal/xrand"
)

// F13 contrasts the total-delay objective against min-max fairness: the
// min-max assigner bisects on the worst-served device's delay, which is
// what a deployment-wide deadline actually constrains. The table reports
// both objectives for each algorithm so the trade is visible: minmax cuts
// the tail delay for a small mean penalty.
func F13(o Options) ([]*Table, error) {
	o = o.withDefaults()
	n, m := 100, 10
	if o.Quick {
		n, m = 30, 4
	}
	algos := []string{"greedy", "regret-greedy", "lagrangian", "qlearning", "minmax"}
	tab := &Table{
		ID:     "F13",
		Title:  fmt.Sprintf("objective trade-off: mean vs max per-device delay (ms), n=%d m=%d, rho=0.8", n, m),
		Header: []string{"algorithm", "mean delay", "max delay", "max/mean"},
		Note:   fmt.Sprintf("%d replications; minmax optimizes the max column by construction", o.Reps),
	}
	reg := assign.NewRegistry()
	for _, name := range algos {
		var mean, max stats.Welford
		ok := 0
		for r := 0; r < o.Reps; r++ {
			sc := Scenario{NumIoT: n, NumEdge: m, Rho: 0.8, Seed: xrand.SplitSeed(o.Seed, fmt.Sprintf("F13-%d", r))}
			b, err := sc.Build()
			if err != nil {
				return nil, err
			}
			a, err := reg.New(name, xrand.SplitSeed(o.Seed, fmt.Sprintf("F13-%s-%d", name, r)))
			if err != nil {
				return nil, err
			}
			got, err := a.Assign(b.Instance)
			if err != nil {
				if errors.Is(err, gap.ErrInfeasible) {
					continue
				}
				return nil, err
			}
			ok++
			mean.Add(b.Instance.MeanCost(got))
			max.Add(b.Instance.MaxCost(got))
		}
		if ok == 0 {
			tab.AddRow(name, "-", "-", "-")
			continue
		}
		tab.AddRow(name, mean.Mean(), max.Mean(), max.Mean()/mean.Mean())
	}
	return []*Table{tab}, nil
}
