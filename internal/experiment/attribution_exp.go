package experiment

import (
	"errors"
	"fmt"

	"taccc/internal/assign"
	"taccc/internal/cluster"
	"taccc/internal/gap"
	"taccc/internal/obs"
	"taccc/internal/stats"
	"taccc/internal/topology"
	"taccc/internal/xrand"
)

// F17 attributes end-to-end latency to its phases — uplink, queue wait,
// service, downlink — as capacity tightens. It drives the cluster
// simulator with a metrics registry attached and reads the per-phase
// delay histograms the telemetry plane exports: at loose rho the network
// (uplink + downlink) dominates and topology-aware placement is the whole
// game; as rho approaches 1, queueing takes over and the assignment's
// load-balancing quality matters more than its delay matrix.
func F17(o Options) ([]*Table, error) {
	o = o.withDefaults()
	n, m, horizon := 100, 10, 60_000.0
	if o.Quick {
		n, m, horizon = 30, 5, 10_000.0
	}
	rhos := []float64{0.5, 0.7, 0.85, 0.95}
	phases := []string{"uplink", "queue", "service", "downlink"}

	tab := &Table{
		ID:     "F17",
		Title:  fmt.Sprintf("delay attribution by phase vs capacity tightness, n=%d m=%d, qlearning assignment", n, m),
		Header: []string{"rho", "uplink ms", "queue ms", "service ms", "downlink ms", "e2e ms", "queue share %"},
		Note:   fmt.Sprintf("%d replications; phase means from the telemetry plane's cluster.delay.* histograms; queue share = queue / e2e", o.Reps),
	}
	for _, rho := range rhos {
		means := make(map[string]*stats.Welford, len(phases))
		for _, p := range phases {
			means[p] = &stats.Welford{}
		}
		var e2e, share stats.Welford
		for r := 0; r < o.Reps; r++ {
			seed := xrand.SplitSeed(o.Seed, fmt.Sprintf("F17-%g-%d", rho, r))
			sc := Scenario{NumIoT: n, NumEdge: m, PayloadKB: 4, Rho: rho, Seed: seed}
			b, err := sc.Build()
			if err != nil {
				return nil, err
			}
			q := assign.NewQLearning(xrand.SplitSeed(seed, "q"))
			got, err := q.Assign(b.Instance)
			if err != nil {
				if errors.Is(err, gap.ErrInfeasible) {
					continue
				}
				return nil, err
			}
			down := topology.NewDelayMatrixWorkers(b.Graph, topology.LatencyCost, o.Workers)
			reg := obs.NewRegistry()
			s, err := cluster.New(cluster.Config{
				UplinkMs:   b.Delay.DelayMs,
				DownlinkMs: down.DelayMs,
				Devices:    b.Devices,
				// Capacity already scales with rho via the scenario, so
				// a fixed headroom lets tightness flow straight into
				// queue occupancy — the sweep's whole point.
				ServiceRate: ServiceRates(b.Capacity, 0.55),
				Assignment:  got.Of,
				WarmupMs:    horizon / 10,
				Metrics:     reg,
				Seed:        xrand.SplitSeed(seed, "sim"),
			})
			if err != nil {
				return nil, err
			}
			if _, err := s.Run(horizon); err != nil {
				return nil, err
			}
			snap := reg.Snapshot()
			total := 0.0
			for _, p := range phases {
				h := snap.Histograms["cluster.delay."+p+"_ms"]
				if h.Count == 0 {
					continue
				}
				means[p].Add(h.Mean)
				total += h.Mean
			}
			if total > 0 {
				e2e.Add(total)
				share.Add(100 * snap.Histograms["cluster.delay.queue_ms"].Mean / total)
			}
		}
		if e2e.N() == 0 {
			tab.AddRow(rho, "-", "-", "-", "-", "-", "-")
			continue
		}
		tab.AddRow(rho,
			means["uplink"].Mean(), means["queue"].Mean(),
			means["service"].Mean(), means["downlink"].Mean(),
			e2e.Mean(), share.Mean())
	}
	return []*Table{tab}, nil
}
