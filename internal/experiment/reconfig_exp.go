package experiment

import (
	"errors"
	"fmt"
	"math"

	"taccc/internal/assign"
	"taccc/internal/cluster"
	"taccc/internal/gap"
	"taccc/internal/stats"
	"taccc/internal/topology"
	"taccc/internal/workload"
	"taccc/internal/xrand"
)

// F15 measures the reconfiguration-frequency trade-off end to end inside
// one simulation: device mobility drifts the delay matrix every epoch
// (replayed via ScheduleUplinkUpdate), and each policy re-solves the
// assignment every k epochs, paying a migration pause per moved device.
// Too rare = latency creeps with drift; too frequent = migration pauses
// eat throughput. The sweet spot is the operational answer to "how often
// should the cluster be reconfigured?".
func F15(o Options) ([]*Table, error) {
	o = o.withDefaults()
	n, m, epochs := 50, 6, 12
	epochMs := 30_000.0
	pauseMs := 2_000.0
	if o.Quick {
		n, m, epochs = 16, 3, 6
		epochMs = 10_000
	}
	const area = 3000.0
	periods := []int{0, 6, 3, 1} // 0 = never reconfigure

	type row struct {
		label     string
		meanLat   stats.Welford
		completed stats.Welford
		moved     stats.Welford
	}
	rows := make([]*row, len(periods))
	for i, k := range periods {
		label := "never"
		if k > 0 {
			label = fmt.Sprintf("every %d epochs", k)
		}
		rows[i] = &row{label: label}
	}

	for r := 0; r < o.Reps; r++ {
		seed := xrand.SplitSeed(o.Seed, fmt.Sprintf("F15-%d", r))
		infra, err := topology.HierarchicalInfra(topology.Config{
			NumIoT: 1, NumEdge: m, NumGateways: 2 * m, AreaMeters: area,
			Seed: xrand.SplitSeed(seed, "infra"),
		})
		if err != nil {
			return nil, err
		}
		devices, err := workload.Generate(n, workload.DefaultProfile(xrand.SplitSeed(seed, "devices")))
		if err != nil {
			return nil, err
		}
		capacity, err := Capacities(m, devices, 0.6)
		if err != nil {
			return nil, err
		}
		// Precompute one delay matrix per epoch from the mobility trace.
		walkers := make([]*workload.RandomWaypoint, n)
		for i := range walkers {
			w, err := workload.NewRandomWaypoint(area, 2, 14, 3_000,
				xrand.New(xrand.SplitSeed(seed, fmt.Sprintf("walker-%d", i))))
			if err != nil {
				return nil, err
			}
			walkers[i] = w
		}
		matrices := make([][][]float64, epochs)
		instances := make([]*gap.Instance, epochs)
		for e := 0; e < epochs; e++ {
			xs := make([]float64, n)
			ys := make([]float64, n)
			for i, w := range walkers {
				p := w.Pos()
				xs[i], ys[i] = p.X, p.Y
			}
			g := infra.Clone()
			if err := topology.AttachIoTAt(g, xs, ys, topology.LinkParams{},
				xrand.SplitSeed(seed, fmt.Sprintf("attach-%d", e))); err != nil {
				return nil, err
			}
			dm := topology.NewDelayMatrix(g, topology.LatencyCost)
			matrices[e] = dm.DelayMs
			in, err := gap.FromTopology(dm, devices, capacity)
			if err != nil {
				return nil, err
			}
			instances[e] = in
			for _, w := range walkers {
				w.Advance(epochMs)
			}
		}

		solve := func(e int, s int64) (*gap.Assignment, error) {
			q := assign.NewQLearning(xrand.SplitSeed(seed, fmt.Sprintf("q-%d-%d", e, s)))
			q.Params.Episodes = 150
			got, err := q.Assign(instances[e])
			if err != nil && !errors.Is(err, gap.ErrInfeasible) {
				return nil, err
			}
			return got, nil
		}
		initial, err := solve(0, 0)
		if err != nil {
			return nil, err
		}
		if initial == nil {
			continue
		}

		for pi, k := range periods {
			simCfg := cluster.Config{
				UplinkMs:    matrices[0],
				Devices:     devices,
				ServiceRate: ServiceRates(capacity, 0.6),
				Assignment:  initial.Of,
				WarmupMs:    epochMs / 2,
				Seed:        xrand.SplitSeed(seed, fmt.Sprintf("sim-%d", pi)),
			}
			s, err := cluster.New(simCfg)
			if err != nil {
				return nil, err
			}
			moved := 0
			prev := initial
			for e := 1; e < epochs; e++ {
				at := float64(e) * epochMs
				if err := s.ScheduleUplinkUpdate(at, matrices[e], nil); err != nil {
					return nil, err
				}
				if k > 0 && e%k == 0 {
					next, err := solve(e, int64(pi))
					if err != nil {
						return nil, err
					}
					if next == nil {
						continue
					}
					for i := range next.Of {
						if next.Of[i] != prev.Of[i] {
							moved++
						}
					}
					if err := s.ScheduleReconfigureWithPause(at+1, next.Of, pauseMs); err != nil {
						return nil, err
					}
					prev = next
				}
			}
			res, err := s.Run(float64(epochs) * epochMs)
			if err != nil {
				return nil, err
			}
			if res.Completed == 0 {
				continue
			}
			rows[pi].meanLat.Add(res.Latency.Mean())
			rows[pi].completed.Add(float64(res.Completed))
			rows[pi].moved.Add(float64(moved))
		}
	}

	tab := &Table{
		ID:     "F15",
		Title:  fmt.Sprintf("reconfiguration frequency trade-off, n=%d m=%d, %d epochs, %.0f s each, %.1f s migration pause", n, m, epochs, epochMs/1000, pauseMs/1000),
		Header: []string{"reconfigure", "mean latency ms", "completed requests", "devices moved"},
		Note:   fmt.Sprintf("%d replications; mobility drifts the delay matrix every epoch", o.Reps),
	}
	for _, rw := range rows {
		if rw.meanLat.N() == 0 {
			tab.AddRow(rw.label, "-", "-", "-")
			continue
		}
		tab.AddRow(rw.label, rw.meanLat.Mean(), math.Round(rw.completed.Mean()), rw.moved.Mean())
	}
	return []*Table{tab}, nil
}
