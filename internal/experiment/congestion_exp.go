package experiment

import (
	"errors"
	"fmt"

	"taccc/internal/assign"
	"taccc/internal/gap"
	"taccc/internal/stats"
	"taccc/internal/topology"
	"taccc/internal/xrand"
)

// F12 isolates the routing dimension: with the assignment held fixed
// (Q-learning on the static matrix), compare single-shortest-path routing
// against congestion-aware multipath (cheapest of k=3 loopless paths under
// committed load, heaviest flows first). Shows how much of the hotspot
// damage an ECMP-style underlay absorbs without touching the assignment.
func F12(o Options) ([]*Table, error) {
	o = o.withDefaults()
	n, m := 80, 8
	if o.Quick {
		n, m = 24, 4
	}
	var singleDelay, multiDelay, singleUtil, multiUtil stats.Welford
	for r := 0; r < o.Reps; r++ {
		seed := xrand.SplitSeed(o.Seed, fmt.Sprintf("F12-%d", r))
		links := topology.DefaultLinkParams()
		links.WiredBandwidthMbps = 80
		// A grid underlay: unlike the (tree-shaped) hierarchical
		// family, the lattice offers genuine alternative paths for
		// multipath routing to exploit.
		sc := Scenario{
			Family: topology.FamilyGrid,
			NumIoT: n, NumEdge: m,
			Place: topology.PlaceHotspot,
			Rho:   0.75,
			Links: links,
			Seed:  seed,
		}
		b, err := sc.Build()
		if err != nil {
			return nil, err
		}
		flows := make([]topology.Flow, n)
		for i, d := range b.Devices {
			flows[i] = topology.Flow{IoT: b.Delay.IoT[i], RateHz: d.RateHz, PayloadKB: d.PayloadKB * 6}
		}
		q := assign.NewQLearning(xrand.SplitSeed(seed, "q"))
		got, err := q.Assign(b.Instance)
		if err != nil {
			if errors.Is(err, gap.ErrInfeasible) {
				continue
			}
			return nil, err
		}
		single, err := topology.EvaluateCongestion(b.Graph, b.Delay, flows, got.Of)
		if err != nil {
			return nil, err
		}
		multi, err := b.Graph.EvaluateCongestionMultipath(b.Delay, flows, got.Of, 3)
		if err != nil {
			return nil, err
		}
		singleDelay.Add(single.MeanDelayMs())
		multiDelay.Add(multi.MeanDelayMs())
		singleUtil.Add(single.MaxUtilization())
		multiUtil.Add(multi.MaxUtilization())
	}
	tab := &Table{
		ID:     "F12",
		Title:  fmt.Sprintf("routing ablation: single path vs multipath (k=3), n=%d m=%d, hotspot traffic", n, m),
		Header: []string{"routing", "mean effective delay ms", "max link util"},
		Note:   fmt.Sprintf("%d replications; identical Q-learning assignment, only routing differs", o.Reps),
	}
	tab.AddRow("shortest path", singleDelay.Mean(), singleUtil.Mean())
	tab.AddRow("multipath k=3", multiDelay.Mean(), multiUtil.Mean())
	return []*Table{tab}, nil
}

// F9 measures what delay-matrix-driven assignment misses at link
// granularity: hotspot-clustered devices funnel traffic through shared
// gateway uplinks, so an assignment that is optimal under the static delay
// matrix can saturate links. The experiment compares congestion-oblivious
// assignments against an iterated congestion-aware refinement (re-solve on
// a delay matrix inflated by the previous round's link utilizations).
func F9(o Options) ([]*Table, error) {
	o = o.withDefaults()
	n, m := 80, 8
	rounds := 3
	if o.Quick {
		n, m, rounds = 24, 4, 2
	}
	type policyStat struct {
		name    string
		delay   stats.Welford
		maxUtil stats.Welford
		over    stats.Welford
	}
	policies := []*policyStat{
		{name: "greedy (oblivious)"},
		{name: "qlearning (oblivious)"},
		{name: fmt.Sprintf("qlearning + congestion refine x%d", rounds)},
	}

	for r := 0; r < o.Reps; r++ {
		seed := xrand.SplitSeed(o.Seed, fmt.Sprintf("F9-%d", r))
		// Thin metro backhaul: 150 Mbps wired links make shared
		// gateway uplinks the bottleneck under hotspot traffic.
		links := topology.DefaultLinkParams()
		links.WiredBandwidthMbps = 80
		sc := Scenario{
			NumIoT: n, NumEdge: m,
			Place: topology.PlaceHotspot,
			Rho:   0.75,
			Links: links,
			Seed:  seed,
		}
		b, err := sc.Build()
		if err != nil {
			return nil, err
		}
		// Camera-scale payloads make the shared wireless/gateway links
		// the bottleneck.
		flows := make([]topology.Flow, n)
		for i, d := range b.Devices {
			flows[i] = topology.Flow{IoT: b.Delay.IoT[i], RateHz: d.RateHz, PayloadKB: d.PayloadKB * 4}
		}

		evaluate := func(ps *policyStat, of []int) error {
			res, err := topology.EvaluateCongestion(b.Graph, b.Delay, flows, of)
			if err != nil {
				return err
			}
			ps.delay.Add(res.MeanDelayMs())
			// Report utilization of *shared* links only: per-device
			// wireless access links load identically under every
			// assignment and would mask the interesting signal.
			maxShared, overShared := 0.0, 0
			for _, ll := range res.Links {
				if b.Graph.Node(ll.Link.A).Kind == topology.KindIoT ||
					b.Graph.Node(ll.Link.B).Kind == topology.KindIoT {
					continue
				}
				if ll.Utilization > maxShared {
					maxShared = ll.Utilization
				}
				if ll.Utilization >= 1 {
					overShared++
				}
			}
			ps.maxUtil.Add(maxShared)
			ps.over.Add(float64(overShared))
			return nil
		}

		solve := func(a assign.Assigner, in *gap.Instance) (*gap.Assignment, error) {
			got, err := a.Assign(in)
			if err != nil && !errors.Is(err, gap.ErrInfeasible) {
				return nil, err
			}
			return got, nil
		}

		g0, err := solve(assign.NewGreedy(), b.Instance)
		if err != nil {
			return nil, err
		}
		if g0 != nil {
			if err := evaluate(policies[0], g0.Of); err != nil {
				return nil, err
			}
		}
		q0, err := solve(assign.NewQLearning(xrand.SplitSeed(seed, "q0")), b.Instance)
		if err != nil {
			return nil, err
		}
		if q0 == nil {
			continue
		}
		if err := evaluate(policies[1], q0.Of); err != nil {
			return nil, err
		}

		// Congestion-aware refinement: re-derive the delay matrix with
		// the standing assignment's link inflation, rebuild the
		// instance on those effective delays, re-solve, repeat.
		cur := q0
		for round := 0; round < rounds; round++ {
			cam, err := topology.CongestionAwareDelayMatrix(b.Graph, b.Delay, flows, cur.Of)
			if err != nil {
				return nil, err
			}
			in, err := gap.FromTopology(cam, b.Devices, b.Capacity)
			if err != nil {
				return nil, err
			}
			next, err := solve(assign.NewQLearning(xrand.SplitSeed(seed, fmt.Sprintf("q-ref-%d", round))), in)
			if err != nil {
				return nil, err
			}
			if next == nil {
				break
			}
			// Keep the refinement only if it helps under the true
			// congestion evaluation (the matrix is an approximation).
			curRes, err := topology.EvaluateCongestion(b.Graph, b.Delay, flows, cur.Of)
			if err != nil {
				return nil, err
			}
			nextRes, err := topology.EvaluateCongestion(b.Graph, b.Delay, flows, next.Of)
			if err != nil {
				return nil, err
			}
			if nextRes.MeanDelayMs() < curRes.MeanDelayMs() {
				cur = next
			}
		}
		if err := evaluate(policies[2], cur.Of); err != nil {
			return nil, err
		}
	}

	tab := &Table{
		ID:     "F9",
		Title:  fmt.Sprintf("link-level congestion: effective delay under hotspot traffic, n=%d m=%d", n, m),
		Header: []string{"policy", "mean effective delay ms", "max link util", "overloaded links"},
		Note:   fmt.Sprintf("%d replications; effective delay = latency + transmission/(1-util) per link", o.Reps),
	}
	for _, ps := range policies {
		if ps.delay.N() == 0 {
			tab.AddRow(ps.name, "-", "-", "-")
			continue
		}
		tab.AddRow(ps.name, ps.delay.Mean(), ps.maxUtil.Mean(), ps.over.Mean())
	}
	return []*Table{tab}, nil
}
