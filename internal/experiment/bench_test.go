package experiment

import (
	"bytes"
	"strings"
	"testing"
)

// TestRunBenchDeterministicObjective: the objective side of the bench
// (costs, feasibility) must be bit-identical across runs and worker
// counts — that is what makes a committed baseline comparable across
// machines.
func TestRunBenchDeterministicObjective(t *testing.T) {
	a, err := RunBench(Options{Quick: true, Reps: 2, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunBench(Options{Quick: true, Reps: 2, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Scenarios) != len(b.Scenarios) || len(a.Scenarios) == 0 {
		t.Fatalf("scenario counts differ: %d vs %d", len(a.Scenarios), len(b.Scenarios))
	}
	for i := range a.Scenarios {
		sa, sb := a.Scenarios[i], b.Scenarios[i]
		if sa.ID != sb.ID || len(sa.Algos) != len(sb.Algos) {
			t.Fatalf("scenario %d shape differs: %+v vs %+v", i, sa, sb)
		}
		for j := range sa.Algos {
			x, y := sa.Algos[j], sb.Algos[j]
			if x.Name != y.Name || x.MeanCostMs != y.MeanCostMs || x.CostCI95Ms != y.CostCI95Ms ||
				x.FeasibleRate != y.FeasibleRate || x.Errors != y.Errors {
				t.Errorf("%s/%s objective stats differ across workers: %+v vs %+v", sa.ID, x.Name, x, y)
			}
		}
	}
	// Every standard algorithm appears on every scenario.
	for _, sc := range a.Scenarios {
		if len(sc.Algos) != len(DefaultAlgorithms) {
			t.Fatalf("scenario %s has %d algos, want %d", sc.ID, len(sc.Algos), len(DefaultAlgorithms))
		}
	}
}

func TestBenchResultsJSONRoundTrip(t *testing.T) {
	res, err := RunBench(Options{Quick: true, Reps: 2})
	if err != nil {
		t.Fatal(err)
	}
	res.Tool, res.Version = "tacbench", "v0.0.0-test"
	var buf bytes.Buffer
	if err := res.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBenchResults(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Tool != "tacbench" || got.Version != "v0.0.0-test" || len(got.Scenarios) != len(res.Scenarios) {
		t.Fatalf("round trip lost fields: %+v", got)
	}
	if got.Scenarios[0].Algos[0] != res.Scenarios[0].Algos[0] {
		t.Fatalf("algo stats changed: %+v vs %+v", got.Scenarios[0].Algos[0], res.Scenarios[0].Algos[0])
	}
}

func TestReadBenchResultsRejectsGarbage(t *testing.T) {
	for name, input := range map[string]string{
		"truncated":    `{"scenarios": [`,
		"empty object": `{}`,
		"no algos":     `{"scenarios":[{"id":"small"}]}`,
	} {
		if _, err := ReadBenchResults(strings.NewReader(input)); err == nil {
			t.Errorf("%s: ReadBenchResults accepted %q", name, input)
		}
	}
}

// TestRunBenchRecordsAllocs: the sequential alloc pass must populate
// per-algorithm allocation statistics on every scenario — they are the
// numbers the perf gate holds flat — and the suite must include the
// "meta" scenario sized for the metaheuristics' inner loops.
func TestRunBenchRecordsAllocs(t *testing.T) {
	res, err := RunBench(Options{Quick: true, Reps: 2})
	if err != nil {
		t.Fatal(err)
	}
	ids := map[string]bool{}
	for _, sc := range res.Scenarios {
		ids[sc.ID] = true
		for _, a := range sc.Algos {
			// Every solver allocates at least its result assignment, so a
			// zero here means the measurement pass did not run.
			if a.AllocsPerOp == 0 || a.BytesPerOp == 0 {
				t.Errorf("%s/%s: allocs_per_op=%d bytes_per_op=%d (alloc pass missing)",
					sc.ID, a.Name, a.AllocsPerOp, a.BytesPerOp)
			}
		}
	}
	if !ids["meta"] {
		t.Fatalf("bench suite lacks the meta scenario: %v", ids)
	}
}
