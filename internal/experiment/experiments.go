package experiment

import (
	"errors"
	"fmt"
	"math"
	"time"

	"taccc/internal/assign"
	"taccc/internal/cluster"
	"taccc/internal/gap"
	"taccc/internal/obs"
	"taccc/internal/par"
	"taccc/internal/stats"
	"taccc/internal/topology"
	"taccc/internal/xrand"
)

// Options tunes experiment execution. The zero value means full fidelity
// with 5 replications, seed 1 and all cores.
type Options struct {
	// Reps is the number of replications per data point (default 5).
	Reps int
	// Quick shrinks instance sizes and horizons for smoke runs.
	Quick bool
	// Seed is the root seed (default 1).
	Seed int64
	// Workers bounds the parallelism of replication cells and of RunAll:
	// <= 0 means all cores (runtime.GOMAXPROCS(0)), 1 restores fully
	// sequential execution. Results are identical at every setting; only
	// wall-clock time changes.
	Workers int
	// Progress, when non-nil, receives structured events as experiments
	// run: one "cell" per (algorithm, replication) solve, one "algo-done"
	// per aggregated algorithm, and "spec-start"/"spec-done" from RunAll.
	// Strictly observational — results are bit-identical with or without
	// a sink (see CompareAlgorithmsObserved for the ordering caveat).
	Progress obs.Sink
	// Trace, when non-nil, is the pipeline-trace parent phase: RunAll
	// emits one wall-clock child span per experiment-suite cell (spec),
	// named by the spec ID. Strictly observational, like Progress.
	Trace *obs.Phase
}

// compare runs the standard algorithm comparison with this Options'
// worker bound and progress sink.
func (o Options) compare(sc Scenario, algos []string) ([]AlgoStat, error) {
	return CompareAlgorithmsObserved(sc, algos, o.Reps, o.Workers, o.Progress)
}

// statCell formats an algorithm's mean cost for a comparison table,
// annotating partial feasibility and unexpected solver errors so neither
// is silently averaged away.
func statCell(st AlgoStat) string {
	cell := formatFloat(st.MeanCost)
	if st.FeasibleRate <= 0 {
		cell = "-"
	}
	if st.FeasibleRate < 1 {
		cell = fmt.Sprintf("%s (%.0f%% feas)", cell, 100*st.FeasibleRate)
	}
	if st.Errors > 0 {
		cell = fmt.Sprintf("%s [%d err]", cell, st.Errors)
	}
	return cell
}

func (o Options) withDefaults() Options {
	if o.Reps <= 0 {
		o.Reps = 5
		if o.Quick {
			o.Reps = 2
		}
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// Spec describes a runnable experiment.
type Spec struct {
	// ID is the table/figure identifier from DESIGN.md.
	ID string
	// Title is the one-line description.
	Title string
	// Run executes the experiment.
	Run func(Options) ([]*Table, error)
}

// All returns every experiment in report order.
func All() []Spec {
	return []Spec{
		{ID: "T1", Title: "Mean communication delay per algorithm across instance sizes", Run: T1},
		{ID: "T2", Title: "Solve runtime per algorithm across instance sizes", Run: T2},
		{ID: "T3", Title: "End-to-end simulated latency and deadline misses per algorithm", Run: T3},
		{ID: "T4", Title: "Online reconfiguration policies under churn and mobility", Run: T4},
		{ID: "F1", Title: "Delay vs number of IoT devices", Run: F1},
		{ID: "F2", Title: "Delay vs number of edge devices", Run: F2},
		{ID: "F3", Title: "Feasibility and delay vs capacity tightness", Run: F3},
		{ID: "F4", Title: "Q-learning convergence over episodes", Run: F4},
		{ID: "F5", Title: "Optimality gap vs exact branch-and-bound", Run: F5},
		{ID: "F6", Title: "Delay across topology families", Run: F6},
		{ID: "F7", Title: "Dynamic reconfiguration under mobility and edge failure", Run: F7},
		{ID: "F8", Title: "RL state-signal ablation", Run: F8},
		{ID: "F9", Title: "Link-level congestion and congestion-aware refinement", Run: F9},
		{ID: "F10", Title: "Delay vs gateway density (access-network provisioning)", Run: F10},
		{ID: "F11", Title: "Q-learning design-choice ablation", Run: F11},
		{ID: "F12", Title: "Routing ablation: single path vs congestion-aware multipath", Run: F12},
		{ID: "F13", Title: "Objective trade-off: total delay vs min-max fairness", Run: F13},
		{ID: "F14", Title: "Single-failure resilience by topology family", Run: F14},
		{ID: "F15", Title: "Reconfiguration frequency trade-off under mobility", Run: F15},
		{ID: "F16", Title: "Cloud offload vs capacity tightness", Run: F16},
		{ID: "F17", Title: "Delay attribution by phase vs capacity tightness", Run: F17},
	}
}

// ByID finds an experiment.
func ByID(id string) (Spec, error) {
	for _, s := range All() {
		if s.ID == id {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("experiment: unknown id %q", id)
}

// Result is one spec's outcome from RunAll.
type Result struct {
	Spec   Spec
	Tables []*Table
	// Elapsed is the spec's own wall-clock time; under a parallel RunAll
	// the sum of Elapsed values exceeds the batch's wall-clock time.
	Elapsed time.Duration
	// Err is the spec's failure, if any; other specs still run.
	Err error
}

// RunAll executes the given specs — the suite runner behind `tacbench -exp
// all` — with up to o.Workers specs in flight at once (<= 0 means all
// cores, 1 runs the suite sequentially). Every spec derives its randomness
// from o.Seed alone, so results are identical at any parallelism; specs
// additionally parallelize their own replication cells with the same
// o.Workers bound. Results are returned in spec order, one per spec, with
// per-spec failures recorded in Result.Err rather than aborting the batch.
func RunAll(specs []Spec, o Options) []Result {
	w := par.Workers(o.Workers)
	return par.Map(w, len(specs), func(i int) Result {
		obs.Emit(o.Progress, "spec-start", map[string]interface{}{"id": specs[i].ID, "title": specs[i].Title})
		ph := o.Trace.Child(specs[i].ID)
		ph.SetAttr("title", specs[i].Title)
		start := wallMs.NowMs()
		tables, err := specs[i].Run(o)
		elapsedMs := wallMs.NowMs() - start
		ph.SetAttr("ok", err == nil)
		ph.End()
		done := map[string]interface{}{
			"id": specs[i].ID, "elapsed_ms": elapsedMs, "ok": err == nil,
		}
		if err != nil {
			done["error"] = err.Error()
		}
		obs.Emit(o.Progress, "spec-done", done)
		return Result{Spec: specs[i], Tables: tables, Elapsed: time.Duration(elapsedMs * float64(time.Millisecond)), Err: err}
	})
}

// sizesFor returns the IoT-count sweep for size-scaling experiments.
func sizesFor(o Options) []int {
	if o.Quick {
		return []int{20, 40}
	}
	return []int{50, 100, 200, 400}
}

// T1 compares mean per-device delay for every algorithm across instance
// sizes (m = n/10, hierarchical topology, rho = 0.7).
func T1(o Options) ([]*Table, error) {
	o = o.withDefaults()
	sizes := sizesFor(o)
	tab := &Table{
		ID:     "T1",
		Title:  "mean per-device delay (ms), hierarchical topology, rho=0.7",
		Header: append([]string{"algorithm"}, sizeHeaders(sizes)...),
		Note:   fmt.Sprintf("%d replications per cell; lower is better", o.Reps),
	}
	cols := make(map[string][]string)
	for _, n := range sizes {
		sc := Scenario{NumIoT: n, NumEdge: maxInt(n/10, 2), Seed: xrand.SplitSeed(o.Seed, fmt.Sprintf("T1-%d", n))}
		res, err := o.compare(sc, DefaultAlgorithms)
		if err != nil {
			return nil, err
		}
		for _, st := range res {
			cols[st.Name] = append(cols[st.Name], statCell(st))
		}
	}
	for _, name := range DefaultAlgorithms {
		row := append([]string{name}, cols[name]...)
		tab.Rows = append(tab.Rows, row)
	}
	return []*Table{tab}, nil
}

// T2 reports mean wall-clock solve time per algorithm across sizes.
func T2(o Options) ([]*Table, error) {
	o = o.withDefaults()
	sizes := sizesFor(o)
	tab := &Table{
		ID:     "T2",
		Title:  "mean solve runtime (ms)",
		Header: append([]string{"algorithm"}, sizeHeaders(sizes)...),
		Note:   "wall clock on this machine; ordering matters more than magnitude",
	}
	cols := make(map[string][]string)
	for _, n := range sizes {
		sc := Scenario{NumIoT: n, NumEdge: maxInt(n/10, 2), Seed: xrand.SplitSeed(o.Seed, fmt.Sprintf("T2-%d", n))}
		res, err := o.compare(sc, DefaultAlgorithms)
		if err != nil {
			return nil, err
		}
		for _, st := range res {
			cols[st.Name] = append(cols[st.Name], formatFloat(st.MeanRuntimeMs))
		}
	}
	for _, name := range DefaultAlgorithms {
		tab.Rows = append(tab.Rows, append([]string{name}, cols[name]...))
	}
	return []*Table{tab}, nil
}

// T3 runs the end-to-end cluster simulation under each algorithm's
// assignment and reports latency percentiles and deadline misses.
func T3(o Options) ([]*Table, error) {
	o = o.withDefaults()
	n, m, horizon := 100, 10, 60_000.0
	if o.Quick {
		n, m, horizon = 30, 5, 10_000.0
	}
	tab := &Table{
		ID:     "T3",
		Title:  fmt.Sprintf("end-to-end simulated latency, n=%d m=%d, %.0f s horizon", n, m, horizon/1000),
		Header: []string{"algorithm", "mean ms", "p50 ms", "p95 ms", "p99 ms", "miss %", "max util", "drops"},
		Note:   fmt.Sprintf("%d replications; payload-aware uplink, FIFO edge queues, edges provisioned for ~55%% peak utilization", o.Reps),
	}
	reg := assign.NewRegistry()
	for _, name := range DefaultAlgorithms {
		var mean, p50, p95, p99, miss, util stats.Welford
		drops := 0
		ok := 0
		for r := 0; r < o.Reps; r++ {
			sc := Scenario{
				NumIoT: n, NumEdge: m, PayloadKB: 4, Rho: 0.6,
				Seed: xrand.SplitSeed(o.Seed, fmt.Sprintf("T3-%d", r)),
			}
			b, err := sc.Build()
			if err != nil {
				return nil, err
			}
			a, err := reg.New(name, xrand.SplitSeed(o.Seed, fmt.Sprintf("T3-%s-%d", name, r)))
			if err != nil {
				return nil, err
			}
			got, err := a.Assign(b.Instance)
			if err != nil {
				if errors.Is(err, gap.ErrInfeasible) {
					continue
				}
				return nil, err
			}
			down := topology.NewDelayMatrix(b.Graph, topology.LatencyCost)
			simCfg := cluster.Config{
				UplinkMs:   b.Delay.DelayMs,
				DownlinkMs: down.DelayMs,
				Devices:    b.Devices,
				// Commit 55% of physical capacity to planning:
				// even fully packed edges keep stable queues, so
				// the end-to-end numbers reflect communication
				// delay rather than queueing collapse.
				ServiceRate: ServiceRates(b.Capacity, 0.55),
				Assignment:  got.Of,
				WarmupMs:    horizon / 10,
				Seed:        xrand.SplitSeed(o.Seed, fmt.Sprintf("T3-sim-%s-%d", name, r)),
			}
			s, err := cluster.New(simCfg)
			if err != nil {
				return nil, err
			}
			res, err := s.Run(horizon)
			if err != nil {
				return nil, err
			}
			ok++
			mean.Add(res.Latency.Mean())
			p50.Add(res.Latency.Median())
			p95.Add(res.Latency.P95())
			p99.Add(res.Latency.P99())
			miss.Add(100 * res.MissRate())
			util.Add(maxFloat(res.Utilization()))
			drops += res.Dropped
		}
		if ok == 0 {
			tab.AddRow(name, "-", "-", "-", "-", "-", "-", "-")
			continue
		}
		tab.AddRow(name, mean.Mean(), p50.Mean(), p95.Mean(), p99.Mean(), miss.Mean(), util.Mean(), drops)
	}
	return []*Table{tab}, nil
}

// F1 sweeps the number of IoT devices with the edge count fixed.
func F1(o Options) ([]*Table, error) {
	o = o.withDefaults()
	ns := []int{25, 50, 100, 200, 400}
	m := 10
	if o.Quick {
		ns = []int{20, 40, 80}
		m = 5
	}
	algos := []string{"random", "greedy", "regret-greedy", "local-search", "lagrangian", "qlearning"}
	tab := &Table{
		ID:     "F1",
		Title:  fmt.Sprintf("mean per-device delay (ms) vs n, m=%d fixed", m),
		Header: append([]string{"n"}, algos...),
		Note:   fmt.Sprintf("%d replications per point", o.Reps),
	}
	for _, n := range ns {
		sc := Scenario{NumIoT: n, NumEdge: m, Seed: xrand.SplitSeed(o.Seed, fmt.Sprintf("F1-%d", n))}
		res, err := o.compare(sc, algos)
		if err != nil {
			return nil, err
		}
		cells := []interface{}{n}
		for _, st := range res {
			cells = append(cells, statCell(st))
		}
		tab.AddRow(cells...)
	}
	return []*Table{tab}, nil
}

// F2 sweeps the number of edge devices with the IoT count fixed.
func F2(o Options) ([]*Table, error) {
	o = o.withDefaults()
	ms := []int{4, 8, 16, 32}
	n := 160
	if o.Quick {
		ms = []int{3, 6, 12}
		n = 48
	}
	algos := []string{"random", "greedy", "regret-greedy", "local-search", "lagrangian", "qlearning"}
	tab := &Table{
		ID:     "F2",
		Title:  fmt.Sprintf("mean per-device delay (ms) vs m, n=%d fixed", n),
		Header: append([]string{"m"}, algos...),
		Note:   fmt.Sprintf("%d replications per point; more edges = shorter paths", o.Reps),
	}
	for _, m := range ms {
		sc := Scenario{NumIoT: n, NumEdge: m, Seed: xrand.SplitSeed(o.Seed, fmt.Sprintf("F2-%d", m))}
		res, err := o.compare(sc, algos)
		if err != nil {
			return nil, err
		}
		cells := []interface{}{m}
		for _, st := range res {
			cells = append(cells, statCell(st))
		}
		tab.AddRow(cells...)
	}
	return []*Table{tab}, nil
}

// F3 sweeps capacity tightness rho, reporting feasibility rate and delay.
func F3(o Options) ([]*Table, error) {
	o = o.withDefaults()
	rhos := []float64{0.5, 0.7, 0.8, 0.9, 0.95, 0.99}
	n, m := 100, 10
	if o.Quick {
		rhos = []float64{0.6, 0.9}
		n, m = 30, 4
	}
	algos := []string{"greedy", "regret-greedy", "local-search", "lagrangian", "qlearning"}
	feas := &Table{
		ID:     "F3",
		Title:  "feasibility rate vs capacity tightness rho",
		Header: append([]string{"rho"}, algos...),
		Note:   "fraction of replications with an overload-free assignment",
	}
	cost := &Table{
		ID:     "F3b",
		Title:  "mean per-device delay (ms) vs rho (feasible replications only)",
		Header: append([]string{"rho"}, algos...),
	}
	for _, rho := range rhos {
		sc := Scenario{NumIoT: n, NumEdge: m, Rho: rho, Seed: xrand.SplitSeed(o.Seed, fmt.Sprintf("F3-%v", rho))}
		res, err := o.compare(sc, algos)
		if err != nil {
			return nil, err
		}
		fc := []interface{}{rho}
		cc := []interface{}{rho}
		for _, st := range res {
			fc = append(fc, st.FeasibleRate)
			if st.FeasibleRate > 0 {
				cc = append(cc, st.MeanCost)
			} else {
				cc = append(cc, "-")
			}
		}
		feas.AddRow(fc...)
		cost.AddRow(cc...)
	}
	return []*Table{feas, cost}, nil
}

// F4 records the Q-learning convergence curve (best feasible total delay
// found so far, averaged over replications) against episode count, with
// the greedy baseline for reference.
func F4(o Options) ([]*Table, error) {
	o = o.withDefaults()
	n, m := 100, 10
	episodes := 400
	if o.Quick {
		n, m, episodes = 30, 4, 100
	}
	checkpoints := []int{1, 2, 5, 10, 20, 50, 100, 200, episodes}
	curves := make([][]float64, 0, o.Reps)
	var greedyCost stats.Welford
	for r := 0; r < o.Reps; r++ {
		sc := Scenario{NumIoT: n, NumEdge: m, Seed: xrand.SplitSeed(o.Seed, fmt.Sprintf("F4-%d", r))}
		b, err := sc.Build()
		if err != nil {
			return nil, err
		}
		q := assign.NewQLearning(xrand.SplitSeed(o.Seed, fmt.Sprintf("F4-q-%d", r)))
		q.Params.Episodes = episodes
		// Disable the regret-greedy warm start so the curve shows the
		// learner's own progress from greedy-level quality downward;
		// production runs keep the warm start (see F11).
		q.Params.NoWarmStart = true
		if _, err := q.Assign(b.Instance); err != nil && !errors.Is(err, gap.ErrInfeasible) {
			return nil, err
		}
		trace := q.Trace()
		if len(trace) > 0 {
			curves = append(curves, trace)
		}
		if g, err := assign.NewGreedy().Assign(b.Instance); err == nil {
			greedyCost.Add(b.Instance.TotalCost(g))
		}
	}
	tab := &Table{
		ID:     "F4",
		Title:  fmt.Sprintf("Q-learning convergence, n=%d m=%d (best total delay so far, ms)", n, m),
		Header: []string{"episode", "qlearning best", "greedy (ref)"},
		Note:   fmt.Sprintf("mean over %d replications; warm start disabled to expose learning", len(curves)),
	}
	for _, cp := range checkpoints {
		if cp > episodes {
			continue
		}
		var v stats.Welford
		for _, c := range curves {
			if cp-1 < len(c) && !math.IsInf(c[cp-1], 1) {
				v.Add(c[cp-1])
			}
		}
		if v.N() == 0 {
			tab.AddRow(cp, "-", greedyCost.Mean())
			continue
		}
		tab.AddRow(cp, v.Mean(), greedyCost.Mean())
	}
	return []*Table{tab}, nil
}

// F5 measures heuristic optimality gaps against branch-and-bound on small
// instances.
func F5(o Options) ([]*Table, error) {
	o = o.withDefaults()
	ns := []int{8, 10, 12}
	if o.Quick {
		ns = []int{6, 8}
	}
	algos := []string{"greedy", "local-search", "lns", "lagrangian", "lp-rounding", "qlearning"}
	tab := &Table{
		ID:     "F5",
		Title:  "mean optimality gap (%) vs exact B&B, m=3, rho=0.8",
		Header: append([]string{"n"}, algos...),
		Note:   fmt.Sprintf("%d replications; gap = (heuristic - optimal) / optimal", o.Reps),
	}
	reg := assign.NewRegistry()
	for _, n := range ns {
		gapPct := make(map[string]*stats.Welford, len(algos))
		for _, a := range algos {
			gapPct[a] = &stats.Welford{}
		}
		for r := 0; r < o.Reps; r++ {
			sc := Scenario{NumIoT: n, NumEdge: 3, Rho: 0.8, Seed: xrand.SplitSeed(o.Seed, fmt.Sprintf("F5-%d-%d", n, r))}
			b, err := sc.Build()
			if err != nil {
				return nil, err
			}
			opt, err := gap.BranchAndBound(b.Instance, gap.BnBOptions{})
			if err != nil {
				if errors.Is(err, gap.ErrInfeasible) {
					continue
				}
				return nil, err
			}
			for _, name := range algos {
				a, err := reg.New(name, xrand.SplitSeed(o.Seed, fmt.Sprintf("F5-%s-%d-%d", name, n, r)))
				if err != nil {
					return nil, err
				}
				got, err := a.Assign(b.Instance)
				if err != nil {
					continue
				}
				g := (b.Instance.TotalCost(got) - opt.Cost) / opt.Cost * 100
				if g < 0 && g > -1e-6 {
					g = 0 // floating-point noise around the optimum
				}
				gapPct[name].Add(g)
			}
		}
		cells := []interface{}{n}
		for _, a := range algos {
			if gapPct[a].N() == 0 {
				cells = append(cells, "-")
			} else {
				cells = append(cells, gapPct[a].Mean())
			}
		}
		tab.AddRow(cells...)
	}
	return []*Table{tab}, nil
}

// F6 compares algorithms across topology families.
func F6(o Options) ([]*Table, error) {
	o = o.withDefaults()
	n, m := 100, 10
	if o.Quick {
		n, m = 30, 4
	}
	algos := []string{"random", "greedy", "local-search", "qlearning"}
	tab := &Table{
		ID:     "F6",
		Title:  fmt.Sprintf("mean per-device delay (ms) by topology family, n=%d m=%d", n, m),
		Header: append([]string{"family"}, algos...),
		Note:   fmt.Sprintf("%d replications per family", o.Reps),
	}
	for _, fam := range topology.Families() {
		sc := Scenario{
			Family: fam, NumIoT: n, NumEdge: m,
			Seed: xrand.SplitSeed(o.Seed, "F6-"+string(fam)),
		}
		res, err := o.compare(sc, algos)
		if err != nil {
			return nil, err
		}
		cells := []interface{}{string(fam)}
		for _, st := range res {
			cells = append(cells, statCell(st))
		}
		tab.AddRow(cells...)
	}
	return []*Table{tab}, nil
}

// F8 ablates the RL state signal: load-vector quantization levels,
// on-policy vs off-policy, and the stateless bandit.
func F8(o Options) ([]*Table, error) {
	o = o.withDefaults()
	n, m := 100, 10
	if o.Quick {
		n, m = 30, 4
	}
	type variant struct {
		name string
		mk   func(seed int64) assign.Assigner
	}
	// The regret-greedy warm start is disabled for every variant so the
	// table discriminates the learners themselves; F11 quantifies what
	// the warm start adds back.
	qVariant := func(levels int) func(int64) assign.Assigner {
		return func(s int64) assign.Assigner {
			q := assign.NewQLearning(s)
			q.Params.LoadLevels = levels
			q.Params.NoWarmStart = true
			return q
		}
	}
	variants := []variant{
		{"bandit (stateless)", func(s int64) assign.Assigner { return assign.NewBandit(s) }},
		{"qlearning levels=1", qVariant(1)},
		{"qlearning levels=2", qVariant(2)},
		{"qlearning levels=4", qVariant(4)},
		{"qlearning levels=8", qVariant(8)},
		{"sarsa levels=4", func(s int64) assign.Assigner {
			a := assign.NewSARSA(s)
			a.Params.NoWarmStart = true
			return a
		}},
		{"expected-sarsa levels=4", func(s int64) assign.Assigner {
			a := assign.NewExpectedSARSA(s)
			a.Params.NoWarmStart = true
			return a
		}},
		{"double-q levels=4", func(s int64) assign.Assigner {
			a := assign.NewDoubleQLearning(s)
			a.Params.NoWarmStart = true
			return a
		}},
		{"nstep-q n=3 levels=4", func(s int64) assign.Assigner {
			a := assign.NewNStepQLearning(s)
			a.Params.NoWarmStart = true
			return a
		}},
	}
	tab := &Table{
		ID:     "F8",
		Title:  fmt.Sprintf("RL ablation: mean per-device delay (ms), n=%d m=%d, rho=0.85", n, m),
		Header: []string{"variant", "mean delay", "feasible rate", "runtime ms"},
		Note:   fmt.Sprintf("%d replications; warm start disabled for all variants; finer load quantization = richer state", o.Reps),
	}
	for _, v := range variants {
		var cost, rt stats.Welford
		feasible := 0
		for r := 0; r < o.Reps; r++ {
			sc := Scenario{NumIoT: n, NumEdge: m, Rho: 0.85, Seed: xrand.SplitSeed(o.Seed, fmt.Sprintf("F8-%d", r))}
			b, err := sc.Build()
			if err != nil {
				return nil, err
			}
			a := v.mk(xrand.SplitSeed(o.Seed, fmt.Sprintf("F8-%s-%d", v.name, r)))
			start := wallMs.NowMs()
			got, err := a.Assign(b.Instance)
			rt.Add(wallMs.NowMs() - start)
			if err != nil {
				if errors.Is(err, gap.ErrInfeasible) {
					continue
				}
				return nil, err
			}
			feasible++
			cost.Add(b.Instance.MeanCost(got))
		}
		if feasible == 0 {
			tab.AddRow(v.name, "-", 0.0, rt.Mean())
			continue
		}
		tab.AddRow(v.name, cost.Mean(), float64(feasible)/float64(o.Reps), rt.Mean())
	}
	return []*Table{tab}, nil
}

// F10 sweeps gateway density with devices and edges fixed: denser access
// networks shorten the wireless-to-wired hop for every algorithm, while
// the gap between topology-aware assignment and random shrinks (with many
// gateways every edge is "close"). The infrastructure-provisioning view of
// topology awareness.
func F10(o Options) ([]*Table, error) {
	o = o.withDefaults()
	n, m := 120, 8
	gws := []int{4, 8, 16, 32, 64}
	if o.Quick {
		n, m = 30, 4
		gws = []int{4, 12}
	}
	algos := []string{"random", "greedy", "qlearning"}
	tab := &Table{
		ID:     "F10",
		Title:  fmt.Sprintf("mean per-device delay (ms) vs gateway count, n=%d m=%d", n, m),
		Header: append(append([]string{"gateways"}, algos...), "random/qlearning"),
		Note:   fmt.Sprintf("%d replications; last column is the robustness ratio", o.Reps),
	}
	for _, gw := range gws {
		sc := Scenario{
			NumIoT: n, NumEdge: m, NumGateways: gw,
			Seed: xrand.SplitSeed(o.Seed, fmt.Sprintf("F10-%d", gw)),
		}
		res, err := o.compare(sc, algos)
		if err != nil {
			return nil, err
		}
		cells := []interface{}{gw}
		byName := map[string]float64{}
		for _, st := range res {
			cells = append(cells, st.MeanCost)
			byName[st.Name] = st.MeanCost
		}
		ratio := math.NaN()
		if byName["qlearning"] > 0 {
			ratio = byName["random"] / byName["qlearning"]
		}
		cells = append(cells, ratio)
		tab.AddRow(cells...)
	}
	return []*Table{tab}, nil
}

func sizeHeaders(sizes []int) []string {
	out := make([]string, len(sizes))
	for i, n := range sizes {
		out[i] = fmt.Sprintf("n=%d", n)
	}
	return out
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func maxFloat(xs []float64) float64 {
	max := 0.0
	for _, x := range xs {
		if x > max {
			max = x
		}
	}
	return max
}
