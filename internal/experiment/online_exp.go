package experiment

import (
	"errors"
	"fmt"

	"taccc/internal/gap"
	"taccc/internal/online"
	"taccc/internal/stats"
	"taccc/internal/topology"
	"taccc/internal/workload"
	"taccc/internal/xrand"
)

// T4 evaluates online reconfiguration policies on a churn-and-mobility
// trace: devices join and leave over time, every attached device moves
// (random waypoint) so delays drift each epoch, and one edge server fails
// midway. Policies trade delay against migration churn:
//
//   - join-only: place on arrival, never migrate (beyond failure
//     evacuation) — the "configure once" strawman.
//   - threshold: migrate any device whose best edge beats its current one
//     by more than a fixed gain.
//   - rebalance: periodically re-solve with the Q-learning assigner under
//     a migration budget.
func T4(o Options) ([]*Table, error) {
	o = o.withDefaults()
	m, epochs := 8, 16
	maxDevices := 80
	failEpoch := 8
	if o.Quick {
		m, epochs, maxDevices, failEpoch = 4, 8, 24, 4
	}
	const area = 4000.0

	type policyResult struct {
		name       string
		delay      stats.Welford
		migrations int
		stranded   int
		rejected   int
	}
	// The three built-in online.Policy implementations, compared on the
	// same trace.
	mkPolicies := func(seed int64) []online.Policy {
		return []online.Policy{
			online.JoinOnly{},
			online.Threshold{GainMs: 0.5},
			online.Rebalance{Every: 2, BudgetFrac: 0.2, Seed: xrand.SplitSeed(seed, "rebalance")},
		}
	}
	policies := []string{"join-only", "threshold", "rebalance"}

	tab := &Table{
		ID:     "T4",
		Title:  fmt.Sprintf("online policies under churn+mobility, m=%d, %d epochs, edge 0 fails at epoch %d", m, epochs, failEpoch),
		Header: []string{"policy", "avg mean delay ms", "migrations", "stranded", "rejected joins"},
		Note:   fmt.Sprintf("%d replications; delay averaged over epochs and attached devices", o.Reps),
	}

	results := make([]*policyResult, len(policies))
	for i, p := range policies {
		results[i] = &policyResult{name: p}
	}

	for r := 0; r < o.Reps; r++ {
		seed := xrand.SplitSeed(o.Seed, fmt.Sprintf("T4-%d", r))
		infra, err := topology.HierarchicalInfra(topology.Config{
			NumIoT: 1, NumEdge: m, NumGateways: 2 * m, AreaMeters: area,
			Seed: xrand.SplitSeed(seed, "infra"),
		})
		if err != nil {
			return nil, err
		}
		devices, err := workload.Generate(maxDevices, workload.DefaultProfile(xrand.SplitSeed(seed, "devices")))
		if err != nil {
			return nil, err
		}
		capacity, err := Capacities(m, devices, 0.7)
		if err != nil {
			return nil, err
		}
		walkers := make([]*workload.RandomWaypoint, maxDevices)
		for i := range walkers {
			w, err := workload.NewRandomWaypoint(area, 1, 12, 4_000,
				xrand.New(xrand.SplitSeed(seed, fmt.Sprintf("walker-%d", i))))
			if err != nil {
				return nil, err
			}
			walkers[i] = w
		}
		// Deterministic churn script: device i joins at epoch i%J and
		// leaves for one epoch every 6th epoch when (i+e)%11 == 0.
		churn := xrand.NewSplit(seed, "churn")
		joinEpoch := make([]int, maxDevices)
		for i := range joinEpoch {
			joinEpoch[i] = churn.Intn(epochs / 2)
		}

		// costsAt computes the delay vector of device i this epoch from
		// a per-epoch topology snapshot. Build the snapshot once per
		// epoch for all devices.
		buildCosts := func(epoch int) ([][]float64, error) {
			xs := make([]float64, maxDevices)
			ys := make([]float64, maxDevices)
			for i, w := range walkers {
				p := w.Pos()
				xs[i], ys[i] = p.X, p.Y
			}
			g := infra.Clone()
			if err := topology.AttachIoTAt(g, xs, ys, topology.LinkParams{},
				xrand.SplitSeed(seed, fmt.Sprintf("attach-%d", epoch))); err != nil {
				return nil, err
			}
			dm := topology.NewDelayMatrix(g, topology.LatencyCost)
			return dm.DelayMs, nil
		}

		for pi, policy := range mkPolicies(seed) {
			res := results[pi]
			ctrl, err := online.NewController(capacity)
			if err != nil {
				return nil, err
			}
			attached := make(map[int]bool)
			// Reset walkers per policy by re-deriving them so every
			// policy sees the identical trace.
			for i := range walkers {
				w, err := workload.NewRandomWaypoint(area, 1, 12, 4_000,
					xrand.New(xrand.SplitSeed(seed, fmt.Sprintf("walker-%d", i))))
				if err != nil {
					return nil, err
				}
				walkers[i] = w
			}
			for e := 0; e < epochs; e++ {
				costs, err := buildCosts(e)
				if err != nil {
					return nil, err
				}
				// Churn: joins due this epoch, temporary leaves.
				for i := 0; i < maxDevices; i++ {
					if e == joinEpoch[i] && !attached[i] {
						if _, err := ctrl.Join(i, costs[i], devices[i].Load()); err != nil {
							if errors.Is(err, online.ErrNoCapacity) {
								res.rejected++
								continue
							}
							return nil, err
						}
						attached[i] = true
					}
				}
				// Refresh delay vectors for attached devices.
				for i := range attached {
					if err := ctrl.UpdateCosts(i, costs[i]); err != nil {
						return nil, err
					}
				}
				// Failure injection.
				if e == failEpoch {
					stranded, err := ctrl.FailEdge(0)
					if err != nil {
						return nil, err
					}
					res.stranded += len(stranded)
					for _, id := range stranded {
						delete(attached, id)
					}
				}
				// Policy action. A transiently unsolvable snapshot
				// just skips this round's maintenance.
				if err := policy.Tick(e, ctrl); err != nil && !errors.Is(err, gap.ErrInfeasible) {
					return nil, err
				}
				if ctrl.NumDevices() > 0 {
					res.delay.Add(ctrl.MeanDelay())
				}
				for _, w := range walkers {
					w.Advance(60_000)
				}
			}
			res.migrations += ctrl.Migrations()
		}
	}
	for _, res := range results {
		tab.AddRow(res.name, res.delay.Mean(),
			res.migrations/o.Reps, res.stranded/o.Reps, res.rejected/o.Reps)
	}
	return []*Table{tab}, nil
}
