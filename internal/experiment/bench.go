package experiment

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
	"time"

	"taccc/internal/assign"
	"taccc/internal/gap"
	"taccc/internal/obs/sysmon"
	"taccc/internal/stats"
	"taccc/internal/xrand"
)

// The bench suite is the repository's machine-readable performance
// trajectory: a fixed set of scenarios solved by every standard
// algorithm, summarized per algorithm as feasible-runtime and objective
// statistics with 95% confidence intervals. `tacbench -json` writes a
// BenchResults file (BENCH_results.json); `tacreport old.json new.json
// -fail-on-regression <pct>` diffs two of them and gates CI on the
// committed BENCH_baseline.json. Objective fields are bit-identical
// across machines (they derive from seeds alone); runtime fields carry
// their CIs so the gate can tell drift from noise.

// BenchAlgo is one algorithm's aggregated bench statistics on one
// scenario — the unit the perf gate compares across runs.
type BenchAlgo struct {
	Name string `json:"name"`
	// MeanCostMs / CostCI95Ms summarize mean per-device delay over
	// feasible replications (deterministic given the scenario seed).
	MeanCostMs float64 `json:"mean_cost_ms"`
	CostCI95Ms float64 `json:"cost_ci95_ms"`
	// FeasibleRuntimeMs / RuntimeCI95Ms summarize wall-clock solve time
	// over feasible replications (machine-dependent).
	FeasibleRuntimeMs float64 `json:"feasible_runtime_ms"`
	RuntimeCI95Ms     float64 `json:"runtime_ci95_ms"`
	// AllocsPerOp / BytesPerOp are the heap allocations and bytes of one
	// steady-state solve (min over measured rounds after a warm-up, like
	// testing.B's allocs/op). Deterministic given the scenario seed, so
	// the perf gate treats a change as a real regression, not noise.
	AllocsPerOp uint64 `json:"allocs_per_op"`
	BytesPerOp  uint64 `json:"bytes_per_op"`
	// PeakHeapBytes / GCPauseMs profile one steady-state solve's memory
	// pressure: the HeapAlloc high-water mark of one solve run with the
	// collector disabled (1 ms watcher, minimum over rounds — without GC
	// pacing in the way the mark is reproducible and judged
	// threshold-only like the alloc counts) and the mean pause of the
	// forced GC that closes each round over that solve's garbage (never
	// zero, so two-run ratios stay finite). Pause durations are
	// scheduler-noisy at the microsecond scale, so GCPauseMs carries its
	// 95% CI over the rounds and the diff subtracts the half-width
	// before judging, as for runtimes.
	PeakHeapBytes uint64  `json:"peak_heap_bytes"`
	GCPauseMs     float64 `json:"gc_pause_ms"`
	GCPauseCI95Ms float64 `json:"gc_pause_ci95_ms"`
	FeasibleRate  float64 `json:"feasible_rate"`
	Errors        int     `json:"errors,omitempty"`
	Reps          int     `json:"reps"`
}

// BenchScenario is one scenario's results.
type BenchScenario struct {
	ID      string      `json:"id"`
	NumIoT  int         `json:"iot"`
	NumEdge int         `json:"edge"`
	Rho     float64     `json:"rho"`
	Algos   []BenchAlgo `json:"algorithms"`
}

// BenchResults is the on-disk shape of BENCH_results.json /
// BENCH_baseline.json.
type BenchResults struct {
	Tool      string          `json:"tool"`
	Version   string          `json:"version"`
	Seed      int64           `json:"seed"`
	Quick     bool            `json:"quick"`
	Reps      int             `json:"reps"`
	Scenarios []BenchScenario `json:"scenarios"`
}

// benchScenarios returns the fixed suite: a comfortably provisioned
// mid-size instance, a capacity-tight one, and a larger "meta" instance
// sized so the metaheuristics' inner loops — not setup — dominate their
// runtime, all shrunk under -quick.
func benchScenarios(quick bool) []BenchScenario {
	if quick {
		return []BenchScenario{
			{ID: "small", NumIoT: 30, NumEdge: 4, Rho: 0.7},
			{ID: "tight", NumIoT: 40, NumEdge: 5, Rho: 0.9},
			{ID: "meta", NumIoT: 120, NumEdge: 12, Rho: 0.85},
		}
	}
	return []BenchScenario{
		{ID: "small", NumIoT: 60, NumEdge: 6, Rho: 0.7},
		{ID: "tight", NumIoT: 100, NumEdge: 10, Rho: 0.9},
		{ID: "meta", NumIoT: 400, NumEdge: 25, Rho: 0.85},
	}
}

// RunBench executes the bench suite with the standard algorithm set and
// returns per-scenario, per-algorithm statistics. Objective statistics
// are reproducible from o.Seed at any o.Workers setting; runtime
// statistics reflect this machine. Tool and Version are left for the
// caller to stamp.
func RunBench(o Options) (*BenchResults, error) {
	o = o.withDefaults()
	out := &BenchResults{Seed: o.Seed, Quick: o.Quick, Reps: o.Reps}
	for _, bs := range benchScenarios(o.Quick) {
		sc := Scenario{
			NumIoT: bs.NumIoT, NumEdge: bs.NumEdge, Rho: bs.Rho,
			Seed: xrand.SplitSeed(o.Seed, "bench-"+bs.ID),
		}
		stats, err := o.compare(sc, DefaultAlgorithms)
		if err != nil {
			return nil, fmt.Errorf("bench %s: %w", bs.ID, err)
		}
		for _, st := range stats {
			bs.Algos = append(bs.Algos, BenchAlgo{
				Name:              st.Name,
				MeanCostMs:        st.MeanCost,
				CostCI95Ms:        st.CostCI95,
				FeasibleRuntimeMs: st.FeasibleRuntimeMs,
				RuntimeCI95Ms:     st.FeasibleRuntimeCI95,
				FeasibleRate:      st.FeasibleRate,
				Errors:            st.Errors,
				Reps:              st.Reps,
			})
		}
		if err := measureBenchAllocs(sc, bs.Algos); err != nil {
			return nil, fmt.Errorf("bench %s: alloc pass: %w", bs.ID, err)
		}
		out.Scenarios = append(out.Scenarios, bs)
	}
	return out, nil
}

// measureBenchAllocs fills each algorithm's AllocsPerOp/BytesPerOp and
// PeakHeapBytes/GCPauseMs by re-solving replication 0 of the scenario
// sequentially: one warm-up solve grows every lazily sized buffer, then
// the minimum over three measured solves filters incidental runtime
// allocation out; five further resource rounds (with the peak-heap
// watcher running) follow so the watcher never perturbs the alloc
// figures. Run after the parallel compare pass so no worker goroutine
// allocates while the runtime.MemStats deltas are taken.
func measureBenchAllocs(sc Scenario, algos []BenchAlgo) error {
	s := sc
	s.Seed = xrand.SplitSeed(sc.Seed, "rep-0")
	b, err := s.Build()
	if err != nil {
		return err
	}
	reg := assign.NewRegistry()
	for idx := range algos {
		name := algos[idx].Name
		// The same per-cell seed the compare pass used for replication 0,
		// so the measured solve follows the identical execution path.
		seed := xrand.SplitSeed(sc.Seed, fmt.Sprintf("%s-%d", name, 0))
		solve := func() error {
			a, err := reg.New(name, seed)
			if err != nil {
				return err
			}
			if _, err := a.Assign(b.Instance); err != nil && !errors.Is(err, gap.ErrInfeasible) {
				return err
			}
			return nil
		}
		if err := solve(); err != nil { // warm-up
			return err
		}
		var before, after runtime.MemStats //lint:allow resmon bench measurement harness reads MemStats deltas in place
		bestAllocs, bestBytes := ^uint64(0), ^uint64(0)
		for round := 0; round < 3; round++ {
			a, err := reg.New(name, seed)
			if err != nil {
				return err
			}
			runtime.ReadMemStats(&before) //lint:allow resmon alloc pass needs a raw Mallocs/TotalAlloc delta around one solve
			_, aerr := a.Assign(b.Instance)
			runtime.ReadMemStats(&after) //lint:allow resmon alloc pass needs a raw Mallocs/TotalAlloc delta around one solve
			if aerr != nil && !errors.Is(aerr, gap.ErrInfeasible) {
				return aerr
			}
			if d := after.Mallocs - before.Mallocs; d < bestAllocs {
				bestAllocs = d
			}
			if d := after.TotalAlloc - before.TotalAlloc; d < bestBytes {
				bestBytes = d
			}
		}
		algos[idx].AllocsPerOp = bestAllocs
		algos[idx].BytesPerOp = bestBytes

		// Resource rounds run after the alloc rounds so the peak watcher's
		// own bookkeeping never pollutes allocs/op. Each round settles the
		// heap with a forced GC, then disables the collector for the solve:
		// with nothing reclaimed mid-solve, the HeapAlloc high-water mark
		// is the settled baseline plus everything the solve allocates — a
		// reproducible figure, where a peak under live GC pacing would
		// swing with collection timing. The closing forced GC (collector
		// re-enabled) is then the round's whole pause delta, so the pause
		// is never zero and covers a comparable amount of garbage each
		// time. Peak heap is the minimum over rounds (like the alloc
		// counts); pause is the mean with its CI, since individual pause
		// durations still jitter with the scheduler.
		bestPeak := ^uint64(0)
		var pause stats.Welford
		for round := 0; round < 5; round++ {
			a, err := reg.New(name, seed)
			if err != nil {
				return err
			}
			runtime.GC()
			gcPct := debug.SetGCPercent(-1)
			runtime.ReadMemStats(&before)                  //lint:allow resmon resource pass brackets the round's GC pause delta
			stopPeak := sysmon.WatchPeak(time.Millisecond) //lint:allow taintclock alloc pass samples live-heap peak on a real ticker; results are measurements, not solver state
			_, aerr := a.Assign(b.Instance)
			peak := stopPeak()
			debug.SetGCPercent(gcPct)
			runtime.GC()
			runtime.ReadMemStats(&after) //lint:allow resmon resource pass brackets the round's GC pause delta
			if aerr != nil && !errors.Is(aerr, gap.ErrInfeasible) {
				return aerr
			}
			if peak < bestPeak {
				bestPeak = peak
			}
			pause.Add(float64(after.PauseTotalNs-before.PauseTotalNs) / 1e6)
		}
		algos[idx].PeakHeapBytes = bestPeak
		algos[idx].GCPauseMs = pause.Mean()
		algos[idx].GCPauseCI95Ms = pause.CI95()
	}
	return nil
}

// WriteJSON writes the results as indented JSON.
func (b *BenchResults) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}

// ReadBenchResults parses a BENCH_results.json / BENCH_baseline.json
// file, validating just enough that a truncated or foreign file is
// reported descriptively rather than diffed as an empty bench.
func ReadBenchResults(r io.Reader) (*BenchResults, error) {
	var b BenchResults
	if err := json.NewDecoder(r).Decode(&b); err != nil {
		return nil, fmt.Errorf("bench results: invalid or truncated JSON: %w", err)
	}
	if len(b.Scenarios) == 0 {
		return nil, fmt.Errorf("bench results: no scenarios (not a bench file?)")
	}
	for _, sc := range b.Scenarios {
		if sc.ID == "" || len(sc.Algos) == 0 {
			return nil, fmt.Errorf("bench results: scenario %q has no algorithm stats", sc.ID)
		}
	}
	return &b, nil
}
