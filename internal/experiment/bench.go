package experiment

import (
	"encoding/json"
	"fmt"
	"io"

	"taccc/internal/xrand"
)

// The bench suite is the repository's machine-readable performance
// trajectory: a fixed set of scenarios solved by every standard
// algorithm, summarized per algorithm as feasible-runtime and objective
// statistics with 95% confidence intervals. `tacbench -json` writes a
// BenchResults file (BENCH_results.json); `tacreport old.json new.json
// -fail-on-regression <pct>` diffs two of them and gates CI on the
// committed BENCH_baseline.json. Objective fields are bit-identical
// across machines (they derive from seeds alone); runtime fields carry
// their CIs so the gate can tell drift from noise.

// BenchAlgo is one algorithm's aggregated bench statistics on one
// scenario — the unit the perf gate compares across runs.
type BenchAlgo struct {
	Name string `json:"name"`
	// MeanCostMs / CostCI95Ms summarize mean per-device delay over
	// feasible replications (deterministic given the scenario seed).
	MeanCostMs float64 `json:"mean_cost_ms"`
	CostCI95Ms float64 `json:"cost_ci95_ms"`
	// FeasibleRuntimeMs / RuntimeCI95Ms summarize wall-clock solve time
	// over feasible replications (machine-dependent).
	FeasibleRuntimeMs float64 `json:"feasible_runtime_ms"`
	RuntimeCI95Ms     float64 `json:"runtime_ci95_ms"`
	FeasibleRate      float64 `json:"feasible_rate"`
	Errors            int     `json:"errors,omitempty"`
	Reps              int     `json:"reps"`
}

// BenchScenario is one scenario's results.
type BenchScenario struct {
	ID      string      `json:"id"`
	NumIoT  int         `json:"iot"`
	NumEdge int         `json:"edge"`
	Rho     float64     `json:"rho"`
	Algos   []BenchAlgo `json:"algorithms"`
}

// BenchResults is the on-disk shape of BENCH_results.json /
// BENCH_baseline.json.
type BenchResults struct {
	Tool      string          `json:"tool"`
	Version   string          `json:"version"`
	Seed      int64           `json:"seed"`
	Quick     bool            `json:"quick"`
	Reps      int             `json:"reps"`
	Scenarios []BenchScenario `json:"scenarios"`
}

// benchScenarios returns the fixed suite: a comfortably provisioned
// mid-size instance and a capacity-tight one, shrunk under -quick.
func benchScenarios(quick bool) []BenchScenario {
	if quick {
		return []BenchScenario{
			{ID: "small", NumIoT: 30, NumEdge: 4, Rho: 0.7},
			{ID: "tight", NumIoT: 40, NumEdge: 5, Rho: 0.9},
		}
	}
	return []BenchScenario{
		{ID: "small", NumIoT: 60, NumEdge: 6, Rho: 0.7},
		{ID: "tight", NumIoT: 100, NumEdge: 10, Rho: 0.9},
	}
}

// RunBench executes the bench suite with the standard algorithm set and
// returns per-scenario, per-algorithm statistics. Objective statistics
// are reproducible from o.Seed at any o.Workers setting; runtime
// statistics reflect this machine. Tool and Version are left for the
// caller to stamp.
func RunBench(o Options) (*BenchResults, error) {
	o = o.withDefaults()
	out := &BenchResults{Seed: o.Seed, Quick: o.Quick, Reps: o.Reps}
	for _, bs := range benchScenarios(o.Quick) {
		sc := Scenario{
			NumIoT: bs.NumIoT, NumEdge: bs.NumEdge, Rho: bs.Rho,
			Seed: xrand.SplitSeed(o.Seed, "bench-"+bs.ID),
		}
		stats, err := o.compare(sc, DefaultAlgorithms)
		if err != nil {
			return nil, fmt.Errorf("bench %s: %w", bs.ID, err)
		}
		for _, st := range stats {
			bs.Algos = append(bs.Algos, BenchAlgo{
				Name:              st.Name,
				MeanCostMs:        st.MeanCost,
				CostCI95Ms:        st.CostCI95,
				FeasibleRuntimeMs: st.FeasibleRuntimeMs,
				RuntimeCI95Ms:     st.FeasibleRuntimeCI95,
				FeasibleRate:      st.FeasibleRate,
				Errors:            st.Errors,
				Reps:              st.Reps,
			})
		}
		out.Scenarios = append(out.Scenarios, bs)
	}
	return out, nil
}

// WriteJSON writes the results as indented JSON.
func (b *BenchResults) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}

// ReadBenchResults parses a BENCH_results.json / BENCH_baseline.json
// file, validating just enough that a truncated or foreign file is
// reported descriptively rather than diffed as an empty bench.
func ReadBenchResults(r io.Reader) (*BenchResults, error) {
	var b BenchResults
	if err := json.NewDecoder(r).Decode(&b); err != nil {
		return nil, fmt.Errorf("bench results: invalid or truncated JSON: %w", err)
	}
	if len(b.Scenarios) == 0 {
		return nil, fmt.Errorf("bench results: no scenarios (not a bench file?)")
	}
	for _, sc := range b.Scenarios {
		if sc.ID == "" || len(sc.Algos) == 0 {
			return nil, fmt.Errorf("bench results: scenario %q has no algorithm stats", sc.ID)
		}
	}
	return &b, nil
}
