package cluster

import (
	"math"
	"testing"
)

func TestPSValidation(t *testing.T) {
	cfg := simpleConfig()
	cfg.Discipline = Discipline(9)
	if _, err := New(cfg); err == nil {
		t.Error("unknown discipline accepted")
	}
	cfg = simpleConfig()
	cfg.MaxQueue = -1
	if _, err := New(cfg); err == nil {
		t.Error("negative MaxQueue accepted")
	}
}

func TestPSLightLoadMatchesFIFO(t *testing.T) {
	// At light load requests rarely overlap, so PS and FIFO should see
	// nearly identical latency distributions.
	mk := func(d Discipline) *Result {
		cfg := simpleConfig()
		cfg.Devices[0].RateHz = 1
		cfg.Devices[1].RateHz = 1
		cfg.Discipline = d
		res, err := mustRun(cfg, 60_000)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	fifo := mk(DisciplineFIFO)
	ps := mk(DisciplinePS)
	if math.Abs(fifo.Latency.Median()-ps.Latency.Median()) > 1 {
		t.Fatalf("light-load medians diverge: fifo %v, ps %v",
			fifo.Latency.Median(), ps.Latency.Median())
	}
	if ps.Completed == 0 {
		t.Fatal("PS completed nothing")
	}
}

func TestPSSharesCapacityUnderLoad(t *testing.T) {
	// Two devices on one edge at moderate load. Under PS short requests
	// are not stuck behind long ones, so the completion count should be
	// close to FIFO while latencies stay finite and ordered.
	mk := func(d Discipline) *Result {
		cfg := simpleConfig()
		cfg.Devices[0].RateHz = 40
		cfg.Devices[1].RateHz = 40
		cfg.ServiceRate = []float64{100, 100} // service 10 ms, util 0.8
		cfg.Assignment = []int{0, 0}
		cfg.Discipline = d
		res, err := mustRun(cfg, 60_000)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	fifo := mk(DisciplineFIFO)
	ps := mk(DisciplinePS)
	if ps.Completed < fifo.Completed*8/10 {
		t.Fatalf("PS completed %d vs FIFO %d", ps.Completed, fifo.Completed)
	}
	if ps.Latency.P95() <= 0 || math.IsInf(ps.Latency.P95(), 0) {
		t.Fatalf("PS p95 = %v", ps.Latency.P95())
	}
	// Utilization accounting should be comparable (same offered work).
	fu, pu := fifo.Utilization()[0], ps.Utilization()[0]
	if math.Abs(fu-pu) > 0.1 {
		t.Fatalf("utilization accounting diverges: fifo %v, ps %v", fu, pu)
	}
}

func TestPSDeterministic(t *testing.T) {
	mk := func() *Result {
		cfg := simpleConfig()
		cfg.Discipline = DisciplinePS
		res, err := mustRun(cfg, 20_000)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := mk(), mk()
	if a.Completed != b.Completed || a.Latency.Mean() != b.Latency.Mean() {
		t.Fatal("PS runs with equal seeds differ")
	}
}

func TestMaxQueueDrops(t *testing.T) {
	cfg := simpleConfig()
	cfg.Devices[0].RateHz = 50
	cfg.ServiceRate = []float64{20, 1000} // 50 ms service, overload
	cfg.MaxQueue = 3
	res, err := mustRun(cfg, 30_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Dropped == 0 {
		t.Fatal("no drops despite queue cap under overload")
	}
	if res.PeakQueue[0] > 3 {
		t.Fatalf("peak queue %d exceeds cap 3", res.PeakQueue[0])
	}
}

func TestMaxQueueDropsPS(t *testing.T) {
	cfg := simpleConfig()
	cfg.Devices[0].RateHz = 50
	cfg.ServiceRate = []float64{20, 1000}
	cfg.MaxQueue = 3
	cfg.Discipline = DisciplinePS
	res, err := mustRun(cfg, 30_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Dropped == 0 {
		t.Fatal("no drops despite queue cap under PS overload")
	}
	if res.PeakQueue[0] > 3 {
		t.Fatalf("peak queue %d exceeds cap 3", res.PeakQueue[0])
	}
}

func TestPSShortJobsNotStuckBehindLong(t *testing.T) {
	// Device 0 issues rare huge requests, device 1 frequent tiny ones,
	// same edge. Under FIFO the tiny requests queue behind the huge
	// ones; under PS their median should be much lower.
	mk := func(d Discipline) *Result {
		cfg := simpleConfig()
		cfg.Devices[0].RateHz = 0.5
		cfg.Devices[0].ComputeUnits = 50 // 500 ms of work
		cfg.Devices[1].RateHz = 20
		cfg.Devices[1].ComputeUnits = 0.5 // 5 ms of work
		cfg.ServiceRate = []float64{100, 100}
		cfg.Assignment = []int{0, 0}
		cfg.Discipline = d
		res, err := mustRun(cfg, 120_000)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	fifo := mk(DisciplineFIFO)
	ps := mk(DisciplinePS)
	// The median is the uncontended path in both disciplines; the tail
	// is where FIFO strands short requests behind 500 ms jobs.
	if ps.Latency.P95() >= fifo.Latency.P95() {
		t.Fatalf("PS p95 %v not below FIFO p95 %v for short-job mix",
			ps.Latency.P95(), fifo.Latency.P95())
	}
}
