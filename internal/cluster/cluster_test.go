package cluster

import (
	"math"
	"testing"

	"taccc/internal/workload"
)

// simpleConfig builds a 2-device, 2-edge config with deterministic delays.
func simpleConfig() Config {
	return Config{
		UplinkMs: [][]float64{
			{5, 50},
			{50, 5},
		},
		Devices: []workload.Device{
			{ID: 0, RateHz: 10, ComputeUnits: 1, PayloadKB: 1, DeadlineMs: 100},
			{ID: 1, RateHz: 10, ComputeUnits: 1, PayloadKB: 1, DeadlineMs: 100},
		},
		ServiceRate: []float64{1000, 1000}, // 1 ms service
		Assignment:  []int{0, 1},
		Seed:        1,
	}
}

func TestValidation(t *testing.T) {
	base := simpleConfig()
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"no devices", func(c *Config) { c.Devices = nil; c.UplinkMs = nil; c.Assignment = nil }},
		{"no edges", func(c *Config) { c.ServiceRate = nil }},
		{"uplink rows", func(c *Config) { c.UplinkMs = c.UplinkMs[:1] }},
		{"uplink cols", func(c *Config) { c.UplinkMs = [][]float64{{1}, {1}} }},
		{"downlink rows", func(c *Config) { c.DownlinkMs = [][]float64{{1, 1}} }},
		{"downlink cols", func(c *Config) { c.DownlinkMs = [][]float64{{1}, {1}} }},
		{"zero rate", func(c *Config) { c.ServiceRate = []float64{0, 1000} }},
		{"assignment len", func(c *Config) { c.Assignment = []int{0} }},
		{"assignment range", func(c *Config) { c.Assignment = []int{0, 7} }},
		{"negative warmup", func(c *Config) { c.WarmupMs = -1 }},
	}
	for _, tc := range cases {
		cfg := simpleConfig()
		_ = base
		tc.mutate(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestLatencyComposition(t *testing.T) {
	// Low rate so queueing is negligible: latency ~= uplink + service +
	// downlink = 5 + 1 + 5 = 11 ms.
	cfg := simpleConfig()
	cfg.Devices[0].RateHz = 1
	cfg.Devices[1].RateHz = 1
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(60_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed < 50 {
		t.Fatalf("only %d completions in 60 s at 2 req/s", res.Completed)
	}
	med := res.Latency.Median()
	if math.Abs(med-11) > 0.5 {
		t.Fatalf("median latency = %v ms, want ~11", med)
	}
	if res.DeadlineMisses != 0 {
		t.Fatalf("%d deadline misses at light load", res.DeadlineMisses)
	}
	if res.Dropped != 0 {
		t.Fatalf("%d drops with no failures", res.Dropped)
	}
}

func TestRunTwiceFails(t *testing.T) {
	s, err := New(simpleConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(1000); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(1000); err == nil {
		t.Fatal("second Run accepted")
	}
}

func TestRunRejectsShortDuration(t *testing.T) {
	cfg := simpleConfig()
	cfg.WarmupMs = 500
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(400); err == nil {
		t.Fatal("duration <= warmup accepted")
	}
}

func TestBadAssignmentRaisesLatency(t *testing.T) {
	good, err := New(simpleConfig())
	if err != nil {
		t.Fatal(err)
	}
	gr, err := good.Run(30_000)
	if err != nil {
		t.Fatal(err)
	}
	bad := simpleConfig()
	bad.Assignment = []int{1, 0} // cross-assigned: 50 ms uplinks
	b, err := New(bad)
	if err != nil {
		t.Fatal(err)
	}
	br, err := b.Run(30_000)
	if err != nil {
		t.Fatal(err)
	}
	if br.Latency.Median() <= gr.Latency.Median()+50 {
		t.Fatalf("bad assignment median %v not clearly above good %v",
			br.Latency.Median(), gr.Latency.Median())
	}
}

func TestQueueingUnderOverload(t *testing.T) {
	// Service takes 100 ms but requests arrive at ~20 Hz on one edge:
	// utilization > 1, queue grows, latency explodes.
	cfg := simpleConfig()
	cfg.Devices[0].RateHz = 20
	cfg.ServiceRate[0] = 10 // 1 unit / 10 per sec = 100 ms service
	cfg.Assignment = []int{0, 1}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(30_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.PeakQueue[0] < 10 {
		t.Fatalf("peak queue %d; expected a long backlog", res.PeakQueue[0])
	}
	if res.Latency.P95() < 1000 {
		t.Fatalf("p95 latency %v ms; expected severe queueing", res.Latency.P95())
	}
	util := res.Utilization()
	if util[0] < 0.9 {
		t.Fatalf("overloaded edge utilization %v; want ~1", util[0])
	}
}

func TestUtilizationMatchesOfferedLoad(t *testing.T) {
	// Device 0: 10 Hz x 1 unit on a 100-unit/s edge = 10% utilization.
	cfg := simpleConfig()
	cfg.ServiceRate = []float64{100, 100}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(120_000)
	if err != nil {
		t.Fatal(err)
	}
	util := res.Utilization()
	for j := 0; j < 2; j++ {
		if math.Abs(util[j]-0.10) > 0.02 {
			t.Fatalf("edge %d utilization = %v, want ~0.10", j, util[j])
		}
	}
}

func TestWarmupExcluded(t *testing.T) {
	cfg := simpleConfig()
	cfg.WarmupMs = 10_000
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(20_000)
	if err != nil {
		t.Fatal(err)
	}
	// ~10 s of measured time at ~20 req/s total.
	if res.Completed > 250 {
		t.Fatalf("completed %d; warmup apparently counted", res.Completed)
	}
	if res.DurationMs != 10_000 {
		t.Fatalf("DurationMs = %v, want 10000", res.DurationMs)
	}
}

func TestDeterministicRuns(t *testing.T) {
	r1, err := mustRun(simpleConfig(), 10_000)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := mustRun(simpleConfig(), 10_000)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Completed != r2.Completed || r1.Latency.Mean() != r2.Latency.Mean() {
		t.Fatal("same-seed runs differ")
	}
	cfg := simpleConfig()
	cfg.Seed = 2
	r3, err := mustRun(cfg, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	if r3.Completed == r1.Completed && r3.Latency.Mean() == r1.Latency.Mean() {
		t.Fatal("different seeds produced identical runs (suspicious)")
	}
}

func mustRun(cfg Config, dur float64) (*Result, error) {
	s, err := New(cfg)
	if err != nil {
		return nil, err
	}
	return s.Run(dur)
}

func TestReconfigureTakesEffect(t *testing.T) {
	// Start cross-assigned (50 ms uplink), fix at t=15 s; late-window
	// latencies should be dominated by the good mapping.
	cfg := simpleConfig()
	cfg.Assignment = []int{1, 0}
	cfg.WarmupMs = 20_000 // measure only after the fix
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.ScheduleReconfigure(15_000, []int{0, 1}); err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(40_000)
	if err != nil {
		t.Fatal(err)
	}
	if med := res.Latency.Median(); math.Abs(med-11) > 1 {
		t.Fatalf("median after reconfigure = %v, want ~11", med)
	}
}

func TestReconfigureValidation(t *testing.T) {
	s, err := New(simpleConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.ScheduleReconfigure(1, []int{0}); err == nil {
		t.Error("short assignment accepted")
	}
	if err := s.ScheduleReconfigure(1, []int{0, 9}); err == nil {
		t.Error("out-of-range edge accepted")
	}
}

func TestEdgeFailureDropsAndRecoveryRestores(t *testing.T) {
	cfg := simpleConfig()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.ScheduleEdgeFailure(5_000, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.ScheduleEdgeRecovery(10_000, 0); err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(20_000)
	if err != nil {
		t.Fatal(err)
	}
	// Device 0 at 10 Hz for 5 s of failure: ~50 drops.
	if res.Dropped < 20 || res.Dropped > 90 {
		t.Fatalf("Dropped = %d, want ~50", res.Dropped)
	}
	if res.Completed == 0 {
		t.Fatal("nothing completed despite recovery")
	}
}

func TestFailureValidation(t *testing.T) {
	s, err := New(simpleConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.ScheduleEdgeFailure(1, 5); err == nil {
		t.Error("invalid edge failure accepted")
	}
	if err := s.ScheduleEdgeRecovery(1, -1); err == nil {
		t.Error("invalid edge recovery accepted")
	}
	if err := s.ScheduleDeviceChurn(1, 99, false); err == nil {
		t.Error("invalid device churn accepted")
	}
}

func TestDeviceChurnSilencesAndResumes(t *testing.T) {
	cfg := simpleConfig()
	cfg.Devices[1].RateHz = 0.001 // effectively silent; focus on device 0
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.ScheduleDeviceChurn(5_000, 0, false); err != nil {
		t.Fatal(err)
	}
	if err := s.ScheduleDeviceChurn(15_000, 0, true); err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(20_000)
	if err != nil {
		t.Fatal(err)
	}
	// Active windows: 0-5 s and 15-20 s => ~100 requests at 10 Hz,
	// versus ~200 without churn.
	if res.Completed < 60 || res.Completed > 140 {
		t.Fatalf("Completed = %d, want ~100 with 10 s silent window", res.Completed)
	}
}

func TestDeadlineMisses(t *testing.T) {
	cfg := simpleConfig()
	cfg.Devices[0].DeadlineMs = 1 // impossible: uplink alone is 5 ms
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(10_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.DeadlineMisses == 0 {
		t.Fatal("no deadline misses with 1 ms deadline")
	}
	if res.MissRate() <= 0 || res.MissRate() > 1 {
		t.Fatalf("MissRate = %v", res.MissRate())
	}
}

func TestDownlinkMatrixUsed(t *testing.T) {
	cfg := simpleConfig()
	cfg.Devices[0].RateHz = 1
	cfg.Devices[1].RateHz = 1
	cfg.DownlinkMs = [][]float64{{100, 100}, {100, 100}}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(30_000)
	if err != nil {
		t.Fatal(err)
	}
	// 5 up + 1 service + 100 down ≈ 106.
	if med := res.Latency.Median(); math.Abs(med-106) > 1 {
		t.Fatalf("median = %v, want ~106", med)
	}
}

func TestInfiniteUplinkDropped(t *testing.T) {
	cfg := simpleConfig()
	cfg.UplinkMs[0][0] = math.Inf(1)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(5_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Dropped == 0 {
		t.Fatal("unreachable edge produced no drops")
	}
}

func TestMissRateEmpty(t *testing.T) {
	var r Result
	if r.MissRate() != 0 {
		t.Fatal("MissRate of empty result should be 0")
	}
	if len(r.Utilization()) != 0 {
		t.Fatal("Utilization of empty result should be empty")
	}
}
