package cluster

import (
	"math"
	"testing"

	"taccc/internal/workload"
)

func TestServersPerEdgeValidation(t *testing.T) {
	cfg := simpleConfig()
	cfg.ServersPerEdge = []int{1}
	if _, err := New(cfg); err == nil {
		t.Error("wrong server-count length accepted")
	}
	cfg = simpleConfig()
	cfg.ServersPerEdge = []int{1, 0}
	if _, err := New(cfg); err == nil {
		t.Error("zero servers accepted")
	}
}

// Two servers absorb an offered load that overwhelms one server of the
// same per-server rate.
func TestMultiServerAbsorbsLoad(t *testing.T) {
	mk := func(servers int) *Result {
		cfg := Config{
			UplinkMs:       [][]float64{{0}},
			DownlinkMs:     [][]float64{{0}},
			Devices:        []workload.Device{{ID: 0, RateHz: 60, ComputeUnits: 1}},
			ServiceRate:    []float64{50}, // 20 ms service; rho = 1.2 on one server
			ServersPerEdge: []int{servers},
			Assignment:     []int{0},
			WarmupMs:       20_000,
			Seed:           3,
		}
		res, err := mustRun(cfg, 120_000)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	one := mk(1)
	two := mk(2)
	// One server at rho=1.2 diverges; two servers at rho=0.6 stay stable.
	if one.Latency.Mean() < 5*two.Latency.Mean() {
		t.Fatalf("overloaded single server (%v ms) should dwarf two servers (%v ms)",
			one.Latency.Mean(), two.Latency.Mean())
	}
	if two.Latency.P95() > 200 {
		t.Fatalf("two-server p95 = %v ms; expected a stable queue", two.Latency.P95())
	}
}

// M/D/2 sanity: with two servers at rho=0.3 each, waiting time is tiny, so
// mean latency ~ service time.
func TestMD2LowLoadLatency(t *testing.T) {
	cfg := Config{
		UplinkMs:       [][]float64{{0}},
		DownlinkMs:     [][]float64{{0}},
		Devices:        []workload.Device{{ID: 0, RateHz: 30, ComputeUnits: 1}},
		ServiceRate:    []float64{50}, // 20 ms service; 2 servers -> rho 0.3 each
		ServersPerEdge: []int{2},
		Assignment:     []int{0},
		WarmupMs:       10_000,
		Seed:           7,
	}
	res, err := mustRun(cfg, 300_000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Latency.Mean()-20) > 4 {
		t.Fatalf("M/D/2 low-load mean = %v ms, want ~20 (service only)", res.Latency.Mean())
	}
}

// PS pools multi-server capacity: aggregate rate doubles, so the same
// offered load completes with roughly half the sojourn time.
func TestPSMultiServerPoolsCapacity(t *testing.T) {
	mk := func(servers int) *Result {
		cfg := Config{
			UplinkMs:       [][]float64{{0}},
			DownlinkMs:     [][]float64{{0}},
			Devices:        []workload.Device{{ID: 0, RateHz: 20, ComputeUnits: 1}},
			ServiceRate:    []float64{50},
			ServersPerEdge: []int{servers},
			Assignment:     []int{0},
			Discipline:     DisciplinePS,
			WarmupMs:       10_000,
			Seed:           5,
		}
		res, err := mustRun(cfg, 300_000)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	one := mk(1)
	two := mk(2)
	// M/G/1-PS: T = S/(1-rho). one: S=20, rho=0.4 -> 33.3 ms.
	// pooled two: S=10, rho=0.2 -> 12.5 ms.
	if math.Abs(one.Latency.Mean()-33.3) > 4 {
		t.Fatalf("PS single mean = %v, want ~33.3", one.Latency.Mean())
	}
	if math.Abs(two.Latency.Mean()-12.5) > 2.5 {
		t.Fatalf("PS pooled mean = %v, want ~12.5", two.Latency.Mean())
	}
}
