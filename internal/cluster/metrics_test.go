package cluster

import (
	"reflect"
	"testing"

	"taccc/internal/obs"
)

// runPair runs the same config twice — once bare, once with a metrics
// registry attached — and returns both results plus the registry snapshot.
func runPair(t *testing.T, mk func() Config, durationMs float64) (bare, metered *Result, snap obs.Snapshot) {
	t.Helper()
	s1, err := New(mk())
	if err != nil {
		t.Fatal(err)
	}
	bare, err = s1.Run(durationMs)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	cfg := mk()
	cfg.Metrics = reg
	s2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	metered, err = s2.Run(durationMs)
	if err != nil {
		t.Fatal(err)
	}
	return bare, metered, reg.Snapshot()
}

func TestMetricsMatchResultCounts(t *testing.T) {
	// WarmupMs = 0 so Result and the live counters measure the same
	// traffic; MaxQueue forces some drops so every counter is exercised.
	mk := func() Config {
		cfg := simpleConfig()
		cfg.Devices[0].RateHz = 200
		cfg.Devices[1].RateHz = 200
		cfg.Devices[0].DeadlineMs = 12
		cfg.Devices[1].DeadlineMs = 12
		cfg.MaxQueue = 3
		return cfg
	}
	_, res, snap := runPair(t, mk, 10_000)

	if got := snap.Counters["cluster.requests_ok"] + snap.Counters["cluster.requests_missed"]; got != int64(res.Completed) {
		t.Errorf("ok+missed = %d, Result.Completed = %d", got, res.Completed)
	}
	if got := snap.Counters["cluster.requests_missed"]; got != int64(res.DeadlineMisses) {
		t.Errorf("requests_missed = %d, Result.DeadlineMisses = %d", got, res.DeadlineMisses)
	}
	if got := snap.Counters["cluster.requests_dropped"]; got != int64(res.Dropped) {
		t.Errorf("requests_dropped = %d, Result.Dropped = %d", got, res.Dropped)
	}
	if res.Dropped == 0 {
		t.Error("config should force drops (MaxQueue) so the dropped counter is exercised")
	}
	if res.DeadlineMisses == 0 {
		t.Error("config should force deadline misses so the missed counter is exercised")
	}
	// Sent splits into completions, drops, and requests still in flight
	// when the horizon ended.
	sent := snap.Counters["cluster.requests_sent"]
	if inFlight := sent - int64(res.Completed) - int64(res.Dropped); inFlight < 0 {
		t.Errorf("sent = %d < completed %d + dropped %d", sent, res.Completed, res.Dropped)
	}

	hist, okHist := snap.Histograms["cluster.latency_ms"]
	if !okHist {
		t.Fatal("no cluster.latency_ms histogram in snapshot")
	}
	if hist.Count != int64(res.Completed) {
		t.Errorf("latency histogram count = %d, want %d completions", hist.Count, res.Completed)
	}
	if res.Completed > 0 {
		lo, hi := res.Latency.Quantile(0), res.Latency.Quantile(1)
		if hist.Mean < lo || hist.Mean > hi {
			t.Errorf("histogram mean %v outside observed latency range [%v, %v]", hist.Mean, lo, hi)
		}
	}
	for j := 0; j < 2; j++ {
		name := []string{"cluster.edge_0.queue_depth", "cluster.edge_1.queue_depth"}[j]
		depth, okG := snap.Gauges[name]
		if !okG {
			t.Fatalf("no %s gauge in snapshot", name)
		}
		if depth < 0 || depth > float64(res.PeakQueue[j]) {
			t.Errorf("%s = %v, want within [0, peak %d]", name, depth, res.PeakQueue[j])
		}
	}
}

func TestMetricsDoNotPerturbSimulation(t *testing.T) {
	for name, mutate := range map[string]func(*Config){
		"fifo":   func(*Config) {},
		"ps":     func(c *Config) { c.Discipline = DisciplinePS },
		"jitter": func(c *Config) { c.JitterSigma = 0.3 },
	} {
		mk := func() Config {
			cfg := simpleConfig()
			cfg.Devices[0].RateHz = 100
			cfg.Devices[1].RateHz = 100
			cfg.WarmupMs = 500
			mutate(&cfg)
			return cfg
		}
		bare, metered, _ := runPair(t, mk, 5_000)
		if !reflect.DeepEqual(bare, metered) {
			t.Errorf("%s: attaching a metrics registry changed the Result:\n%+v\nvs\n%+v", name, bare, metered)
		}
	}
}

func TestMetricsCountWarmupTraffic(t *testing.T) {
	mk := func() Config {
		cfg := simpleConfig()
		cfg.Devices[0].RateHz = 100
		cfg.Devices[1].RateHz = 100
		cfg.WarmupMs = 2_000
		return cfg
	}
	_, res, snap := runPair(t, mk, 4_000)
	// ~200 req/s over 4 s total vs a 2 s measured window: the live
	// counters see roughly twice what Result reports.
	done := snap.Counters["cluster.requests_ok"] + snap.Counters["cluster.requests_missed"]
	if done <= int64(res.Completed) {
		t.Errorf("live counters (%d done) should include warmup traffic beyond Result.Completed = %d", done, res.Completed)
	}
}
