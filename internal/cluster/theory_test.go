package cluster

import (
	"math"
	"testing"

	"taccc/internal/workload"
)

// TestMD1MeanWait validates the FIFO queue against queueing theory: one
// Poisson source with deterministic service is an M/D/1 queue, whose mean
// waiting time is W = rho * S / (2 * (1 - rho)) with service time S.
func TestMD1MeanWait(t *testing.T) {
	const (
		rateHz    = 40.0
		serviceMs = 15.0 // rho = 0.6
	)
	rho := rateHz * serviceMs / 1000
	cfg := Config{
		UplinkMs: [][]float64{{0}}, // isolate queueing: no network delay
		Devices: []workload.Device{
			{ID: 0, RateHz: rateHz, ComputeUnits: 1},
		},
		DownlinkMs:  [][]float64{{0}},
		ServiceRate: []float64{1000 / serviceMs}, // S = 15 ms
		Assignment:  []int{0},
		WarmupMs:    60_000,
		Seed:        5,
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(1_200_000) // 20 simulated minutes
	if err != nil {
		t.Fatal(err)
	}
	wantWait := rho * serviceMs / (2 * (1 - rho))
	wantLatency := wantWait + serviceMs
	got := res.Latency.Mean()
	if math.Abs(got-wantLatency) > 0.1*wantLatency {
		t.Fatalf("M/D/1 mean latency = %.3f ms, theory %.3f ms (wait %.3f + service %.1f)",
			got, wantLatency, wantWait, serviceMs)
	}
	// Utilization should match rho.
	if u := res.Utilization()[0]; math.Abs(u-rho) > 0.05 {
		t.Fatalf("utilization = %.3f, want ~%.2f", u, rho)
	}
}

// TestMD1PSMeanLatency validates processor sharing against the M/G/1-PS
// result: mean sojourn time T = S / (1 - rho), insensitive to the service
// distribution.
func TestMD1PSMeanLatency(t *testing.T) {
	const (
		rateHz    = 40.0
		serviceMs = 15.0 // rho = 0.6
	)
	rho := rateHz * serviceMs / 1000
	cfg := Config{
		UplinkMs: [][]float64{{0}},
		Devices: []workload.Device{
			{ID: 0, RateHz: rateHz, ComputeUnits: 1},
		},
		DownlinkMs:  [][]float64{{0}},
		ServiceRate: []float64{1000 / serviceMs},
		Assignment:  []int{0},
		WarmupMs:    60_000,
		Discipline:  DisciplinePS,
		Seed:        5,
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(1_200_000)
	if err != nil {
		t.Fatal(err)
	}
	want := serviceMs / (1 - rho)
	got := res.Latency.Mean()
	if math.Abs(got-want) > 0.1*want {
		t.Fatalf("M/D/1-PS mean latency = %.3f ms, theory %.3f ms", got, want)
	}
}

// TestLittlesLaw checks L = lambda * W on the FIFO queue by comparing the
// time-averaged offered rate against completions and latency.
func TestLittlesLaw(t *testing.T) {
	cfg := Config{
		UplinkMs: [][]float64{{0}},
		Devices: []workload.Device{
			{ID: 0, RateHz: 25, ComputeUnits: 1},
		},
		DownlinkMs:  [][]float64{{0}},
		ServiceRate: []float64{50}, // S = 20 ms, rho = 0.5
		Assignment:  []int{0},
		WarmupMs:    30_000,
		Seed:        9,
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(630_000)
	if err != nil {
		t.Fatal(err)
	}
	lambda := float64(res.Completed) / res.DurationMs // per ms
	wMs := res.Latency.Mean()
	l := lambda * wMs
	// For M/D/1 at rho=0.5: W = 0.5*20/(2*0.5) + 20 = 30 ms; L = 0.75.
	wantL := lambda * 30
	if math.Abs(l-wantL) > 0.15*wantL {
		t.Fatalf("Little's law estimate L = %.3f, want ~%.3f", l, wantL)
	}
}
