package cluster

import (
	"math"
	"testing"
)

func TestJitterValidation(t *testing.T) {
	cfg := simpleConfig()
	cfg.JitterSigma = -0.1
	if _, err := New(cfg); err == nil {
		t.Error("negative jitter accepted")
	}
	cfg = simpleConfig()
	cfg.JitterSigma = math.NaN()
	if _, err := New(cfg); err == nil {
		t.Error("NaN jitter accepted")
	}
}

func TestJitterPreservesMeanRaisesVariance(t *testing.T) {
	mk := func(sigma float64) *Result {
		cfg := simpleConfig()
		cfg.Devices[0].RateHz = 5
		cfg.Devices[1].RateHz = 5
		cfg.JitterSigma = sigma
		res, err := mustRun(cfg, 240_000)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	clean := mk(0)
	noisy := mk(0.5)
	// Mean latency preserved within a few percent (jitter is
	// mean-normalized).
	if math.Abs(clean.Latency.Mean()-noisy.Latency.Mean()) > 0.08*clean.Latency.Mean() {
		t.Fatalf("jitter shifted the mean: %v vs %v", clean.Latency.Mean(), noisy.Latency.Mean())
	}
	// The spread must widen: p99 - p50 grows materially.
	cleanSpread := clean.Latency.P99() - clean.Latency.Median()
	noisySpread := noisy.Latency.P99() - noisy.Latency.Median()
	if noisySpread <= cleanSpread*1.5 {
		t.Fatalf("jitter did not widen the tail: spread %v vs %v", noisySpread, cleanSpread)
	}
}

func TestJitterNeverNegative(t *testing.T) {
	cfg := simpleConfig()
	cfg.JitterSigma = 1.5 // extreme
	res, err := mustRun(cfg, 30_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Latency.Quantile(0) <= 0 {
		t.Fatalf("non-positive latency with jitter: %v", res.Latency.Quantile(0))
	}
}
