package cluster

import (
	"bytes"
	"math"
	"reflect"
	"testing"

	"taccc/internal/obs"
)

// spanCollector gathers emitted spans grouped by trace. The simulator is
// single-threaded, so no locking is needed.
type spanCollector struct {
	order  []obs.TraceID
	traces map[obs.TraceID][]obs.Span
}

func newSpanCollector() *spanCollector {
	return &spanCollector{traces: make(map[obs.TraceID][]obs.Span)}
}

func (c *spanCollector) Emit(e obs.Event) {
	if e.Kind != "span" {
		return
	}
	sp := obs.Span{
		Trace:   obs.TraceID(e.Fields["trace"].(uint64)),
		ID:      obs.SpanID(e.Fields["span"].(uint64)),
		Name:    e.Fields["name"].(string),
		StartMs: e.Fields["start_ms"].(float64),
		EndMs:   e.Fields["end_ms"].(float64),
	}
	if p, ok := e.Fields["parent"].(uint64); ok {
		sp.Parent = obs.SpanID(p)
	}
	if o, ok := e.Fields["attr.outcome"].(string); ok {
		sp.Attrs = map[string]interface{}{"outcome": o}
	}
	if _, seen := c.traces[sp.Trace]; !seen {
		c.order = append(c.order, sp.Trace)
	}
	c.traces[sp.Trace] = append(c.traces[sp.Trace], sp)
}

// busyConfig loads simpleConfig enough that queueing actually happens.
func busyConfig() Config {
	cfg := simpleConfig()
	cfg.Devices[0].RateHz = 150
	cfg.Devices[1].RateHz = 150
	cfg.Devices[0].DeadlineMs = 15
	cfg.Devices[1].DeadlineMs = 15
	return cfg
}

const phaseTol = 1e-9

func TestTraceSpansPartitionLatency(t *testing.T) {
	for name, mutate := range map[string]func(*Config){
		"fifo":        func(*Config) {},
		"fifo-jitter": func(c *Config) { c.JitterSigma = 0.3 },
		"ps":          func(c *Config) { c.Discipline = DisciplinePS },
	} {
		cfg := busyConfig()
		mutate(&cfg)
		col := newSpanCollector()
		cfg.Spans = col
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run(10_000)
		if err != nil {
			t.Fatal(err)
		}
		if len(col.traces) == 0 {
			t.Fatalf("%s: no traces emitted", name)
		}
		completed := 0
		wantNames := []string{"uplink", "queue", "service", "downlink", "request"}
		for tid, spans := range col.traces {
			if len(spans) != 5 {
				continue // in flight at horizon or dropped; checked elsewhere
			}
			root := spans[4]
			if root.Name != "request" || root.Parent != 0 {
				t.Fatalf("%s: trace %d does not end with a root request span: %+v", name, tid, spans)
			}
			completed++
			sum := 0.0
			at := root.StartMs
			for k, sp := range spans[:4] {
				if sp.Name != wantNames[k] {
					t.Fatalf("%s: trace %d child %d named %q, want %q", name, tid, k, sp.Name, wantNames[k])
				}
				if sp.Parent != 1 || sp.Trace != tid {
					t.Fatalf("%s: trace %d child %q has parent %d trace %d", name, tid, sp.Name, sp.Parent, sp.Trace)
				}
				if math.Abs(sp.StartMs-at) > phaseTol {
					t.Fatalf("%s: trace %d child %q starts at %v, want contiguous %v", name, tid, sp.Name, sp.StartMs, at)
				}
				at = sp.EndMs
				sum += sp.DurationMs()
			}
			if math.Abs(sum-root.DurationMs()) > phaseTol {
				t.Fatalf("%s: trace %d children sum to %v, root lasts %v", name, tid, sum, root.DurationMs())
			}
		}
		// Warmup is 0 and nothing drops, so completed traces and Result
		// completions count the same requests.
		if completed != res.Completed {
			t.Fatalf("%s: %d completed traces vs %d completions", name, completed, res.Completed)
		}
	}
}

// TestPhaseHistogramsSumToLatency is the acceptance check that the
// per-phase delay histograms decompose the end-to-end latency histogram:
// same observation count per phase, and phase sums adding up to the
// latency sum within float tolerance.
func TestPhaseHistogramsSumToLatency(t *testing.T) {
	for name, mutate := range map[string]func(*Config){
		"fifo":      func(*Config) {},
		"ps":        func(c *Config) { c.Discipline = DisciplinePS },
		"jitter":    func(c *Config) { c.JitterSigma = 0.4 },
		"multisrv":  func(c *Config) { c.ServersPerEdge = []int{2, 2} },
		"downlink+": func(c *Config) { c.DownlinkMs = [][]float64{{2, 20}, {20, 2}} },
	} {
		cfg := busyConfig()
		mutate(&cfg)
		reg := obs.NewRegistry()
		cfg.Metrics = reg
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Run(10_000); err != nil {
			t.Fatal(err)
		}
		snap := reg.Snapshot()
		lat := snap.Histograms["cluster.latency_ms"]
		if lat.Count == 0 {
			t.Fatalf("%s: empty latency histogram", name)
		}
		phaseSum := 0.0
		for _, phase := range []string{"uplink", "queue", "service", "downlink"} {
			h, ok := snap.Histograms["cluster.delay."+phase+"_ms"]
			if !ok {
				t.Fatalf("%s: missing cluster.delay.%s_ms", name, phase)
			}
			if h.Count != lat.Count {
				t.Fatalf("%s: %s histogram has %d observations, latency has %d", name, phase, h.Count, lat.Count)
			}
			phaseSum += h.Sum
		}
		if rel := math.Abs(phaseSum-lat.Sum) / lat.Sum; rel > 1e-9 {
			t.Fatalf("%s: phase sums %v vs latency sum %v (rel err %v)", name, phaseSum, lat.Sum, rel)
		}
	}
}

func TestSpansDoNotPerturbSimulation(t *testing.T) {
	for name, mutate := range map[string]func(*Config){
		"fifo":    func(*Config) {},
		"ps":      func(c *Config) { c.Discipline = DisciplinePS },
		"jitter":  func(c *Config) { c.JitterSigma = 0.3 },
		"sampled": func(c *Config) { c.TraceSampleRate = 0.25 },
	} {
		mk := func() Config {
			cfg := busyConfig()
			cfg.WarmupMs = 500
			mutate(&cfg)
			return cfg
		}
		s1, err := New(mk())
		if err != nil {
			t.Fatal(err)
		}
		bare, err := s1.Run(5_000)
		if err != nil {
			t.Fatal(err)
		}
		cfg := mk()
		cfg.Spans = newSpanCollector()
		s2, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		traced, err := s2.Run(5_000)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(bare, traced) {
			t.Errorf("%s: attaching a span sink changed the Result:\n%+v\nvs\n%+v", name, bare, traced)
		}
	}
}

// TestSpanSamplingDeterministic runs the same sampled config twice through
// JSONL and demands byte-identical output — the library-level half of the
// workers=1-vs-8 CLI guarantee.
func TestSpanSamplingDeterministic(t *testing.T) {
	runOnce := func() []byte {
		var buf bytes.Buffer
		cfg := busyConfig()
		cfg.JitterSigma = 0.2
		cfg.TraceSampleRate = 0.5
		cfg.Spans = obs.NewJSONL(&buf)
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Run(8_000); err != nil {
			t.Fatal(err)
		}
		if err := cfg.Spans.(*obs.JSONL).Flush(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := runOnce(), runOnce()
	if len(a) == 0 {
		t.Fatal("no span events emitted")
	}
	if !bytes.Equal(a, b) {
		t.Fatal("sampled span stream differs between identical runs")
	}
}

func TestSpanSamplingThinsTraces(t *testing.T) {
	countTraces := func(rate float64) int {
		cfg := busyConfig()
		cfg.TraceSampleRate = rate
		col := newSpanCollector()
		cfg.Spans = col
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Run(10_000); err != nil {
			t.Fatal(err)
		}
		return len(col.traces)
	}
	all := countTraces(0) // 0 = trace everything
	half := countTraces(0.5)
	if all == 0 {
		t.Fatal("rate 0 should trace everything, got none")
	}
	if half == 0 || half >= all {
		t.Fatalf("rate 0.5 should thin traces: %d sampled vs %d full", half, all)
	}
	if frac := float64(half) / float64(all); frac < 0.3 || frac > 0.7 {
		t.Errorf("rate 0.5 sampled %.2f of traces, want ~0.5", frac)
	}
}

func TestDroppedRequestTraces(t *testing.T) {
	cfg := busyConfig()
	cfg.MaxQueue = 1
	col := newSpanCollector()
	cfg.Spans = col
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(10_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Dropped == 0 {
		t.Fatal("config should force queue-full drops")
	}
	dropped := 0
	for tid, spans := range col.traces {
		last := spans[len(spans)-1]
		if last.Name != "request" {
			continue // request still in flight at the horizon
		}
		if last.Attrs["outcome"] != string(OutcomeDropped) {
			continue
		}
		dropped++
		if len(spans) != 2 || spans[0].Name != "uplink" {
			t.Fatalf("dropped trace %d should be uplink+root, got %+v", tid, spans)
		}
		if spans[0].EndMs != last.EndMs {
			t.Fatalf("dropped trace %d uplink ends %v, root ends %v", tid, spans[0].EndMs, last.EndMs)
		}
	}
	if dropped != res.Dropped {
		t.Fatalf("%d dropped traces vs %d dropped requests", dropped, res.Dropped)
	}
}

func TestTraceSampleRateValidation(t *testing.T) {
	for _, rate := range []float64{-0.1, 1.1, math.NaN()} {
		cfg := simpleConfig()
		cfg.TraceSampleRate = rate
		if _, err := New(cfg); err == nil {
			t.Errorf("TraceSampleRate %v accepted", rate)
		}
	}
}
