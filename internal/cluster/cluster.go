// Package cluster is the edge-cluster runtime simulator: it replays IoT
// request streams against an assignment, modeling uplink network delay
// (from the topology-derived delay matrix), FIFO queueing and service at
// each edge server, and downlink delay back to the device. It reports
// end-to-end latency distributions, deadline misses, per-edge utilization
// and drops, and supports runtime reconfiguration, device churn and edge
// failure injection — the substrate for the end-to-end and dynamic
// experiments (T3, F7).
package cluster

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"taccc/internal/obs"
	"taccc/internal/obs/slo"
	"taccc/internal/sim"
	"taccc/internal/stats"
	"taccc/internal/workload"
	"taccc/internal/xrand"
)

// Discipline selects how an edge server schedules queued requests.
type Discipline int

// Queueing disciplines.
const (
	// DisciplineFIFO serves one request at a time in arrival order
	// (the default).
	DisciplineFIFO Discipline = iota
	// DisciplinePS is egalitarian processor sharing: all queued
	// requests progress simultaneously at rate/k each.
	DisciplinePS
)

// Config describes a simulation run. All fields are required unless noted.
type Config struct {
	// UplinkMs[i][j] is the request delay from device i to edge j;
	// DownlinkMs[i][j] the response delay (often smaller payloads). If
	// DownlinkMs is nil, UplinkMs is used for both directions.
	UplinkMs   [][]float64
	DownlinkMs [][]float64
	// Devices holds the demand profiles; Devices[i] pairs with row i.
	Devices []workload.Device
	// ServiceRate[j] is the processing rate of ONE server at edge j, in
	// compute units per second; a request of c units takes c/rate
	// seconds of service.
	ServiceRate []float64
	// ServersPerEdge[j] is the number of parallel servers at edge j
	// (an M/M/c-style station under FIFO). Nil means one server
	// everywhere. Under processor sharing the servers pool into one
	// PS station of aggregate rate c*rate (the standard fluid
	// approximation).
	ServersPerEdge []int
	// Assignment[i] is the edge serving device i.
	Assignment []int
	// WarmupMs excludes the initial transient from statistics.
	WarmupMs float64
	// Discipline selects FIFO (default) or processor sharing.
	Discipline Discipline
	// MaxQueue caps the number of requests queued or in service per
	// edge; arrivals beyond the cap are dropped. 0 means unlimited.
	MaxQueue int
	// Recorder, when non-nil, receives one RequestRecord per request
	// (completions and drops, including warmup traffic). Use
	// internal/trace to persist and analyze.
	Recorder Recorder
	// Metrics, when non-nil, receives live counters as the simulation
	// progresses: cluster.requests_sent / _ok / _missed / _dropped,
	// per-edge cluster.edge_<j>.queue_depth gauges, a cluster.latency_ms
	// histogram of end-to-end latencies, and per-phase delay histograms
	// cluster.delay.{uplink,queue,service,downlink}_ms whose per-request
	// contributions sum to the end-to-end latency. Unlike Result,
	// counters include warmup traffic (they mirror what a real
	// deployment's metrics endpoint would report). Nil costs nothing.
	Metrics *obs.Registry
	// Spans, when non-nil, receives one trace per sampled request as
	// "span" events (see internal/obs.Span): a root "request" span plus
	// child spans for uplink, queue wait, service (which under processor
	// sharing absorbs the PS-server reschedules) and downlink. Traces
	// cover requests that enter the network; arrivals dropped at the
	// device (failed or unreachable edge) are never uplinked and are not
	// traced. Nil costs nothing.
	Spans obs.Sink
	// SLO, when non-nil, receives every completion (end-to-end latency
	// plus the per-phase breakdown) and drop, windowed by simulation
	// time, and evaluates the configured service-level objectives as
	// windows close. Like Metrics it covers warmup traffic (it mirrors a
	// deployment's live SLO monitor). Observations are made from the
	// single-threaded event loop at event time, so the emitted SLO
	// stream is deterministic per seed at any worker count. Nil costs
	// nothing.
	SLO *slo.Tracker
	// TraceSampleRate is the fraction of requests traced when Spans is
	// set, in [0, 1]. 0 means trace everything, so a config that only
	// sets Spans gets full traces. Sampling decisions come from a
	// dedicated RNG stream derived from Seed — never from the
	// simulation's own randomness — so attaching, detaching or sampling
	// spans cannot perturb the schedule, and the emitted span stream is
	// identical run-to-run at any worker count.
	TraceSampleRate float64
	// JitterSigma, when > 0, multiplies every per-request network delay
	// (uplink and downlink) by an independent lognormal factor with the
	// given sigma, normalized to mean 1 so average delays are preserved
	// while variance grows — wireless links are not deterministic.
	JitterSigma float64
	// Seed drives arrival randomness.
	Seed int64
}

// Outcome classifies how a request ended.
type Outcome string

// Request outcomes.
const (
	// OutcomeOK completed within its deadline (or had none).
	OutcomeOK Outcome = "ok"
	// OutcomeMissed completed after its deadline.
	OutcomeMissed Outcome = "missed"
	// OutcomeDropped never completed (failed edge, unreachable pair or
	// full queue).
	OutcomeDropped Outcome = "dropped"
)

// RequestRecord is one request's lifecycle for trace recording.
type RequestRecord struct {
	// Device and Edge identify the request's endpoints; Edge is -1 for
	// requests dropped before edge selection mattered.
	Device int
	Edge   int
	// SentAtMs and DoneAtMs bound the lifecycle (DoneAtMs is the drop
	// time for dropped requests).
	SentAtMs float64
	DoneAtMs float64
	// LatencyMs is end-to-end latency (0 for drops).
	LatencyMs float64
	// Outcome classifies the ending.
	Outcome Outcome
}

// Recorder consumes request records as the simulation produces them.
type Recorder interface {
	Record(RequestRecord)
}

func (c Config) validate() error {
	n := len(c.Devices)
	if n == 0 {
		return errors.New("cluster: no devices")
	}
	m := len(c.ServiceRate)
	if m == 0 {
		return errors.New("cluster: no edge servers")
	}
	if len(c.UplinkMs) != n {
		return fmt.Errorf("cluster: uplink matrix has %d rows, want %d", len(c.UplinkMs), n)
	}
	for i, row := range c.UplinkMs {
		if len(row) != m {
			return fmt.Errorf("cluster: uplink row %d has %d cols, want %d", i, len(row), m)
		}
	}
	if c.DownlinkMs != nil {
		if len(c.DownlinkMs) != n {
			return fmt.Errorf("cluster: downlink matrix has %d rows, want %d", len(c.DownlinkMs), n)
		}
		for i, row := range c.DownlinkMs {
			if len(row) != m {
				return fmt.Errorf("cluster: downlink row %d has %d cols, want %d", i, len(row), m)
			}
		}
	}
	for j, r := range c.ServiceRate {
		if r <= 0 || math.IsNaN(r) || math.IsInf(r, 0) {
			return fmt.Errorf("cluster: invalid service rate %v at edge %d", r, j)
		}
	}
	if len(c.Assignment) != n {
		return fmt.Errorf("cluster: assignment length %d, want %d", len(c.Assignment), n)
	}
	for i, j := range c.Assignment {
		if j < 0 || j >= m {
			return fmt.Errorf("cluster: device %d assigned to invalid edge %d", i, j)
		}
	}
	if c.WarmupMs < 0 {
		return fmt.Errorf("cluster: negative warmup %v", c.WarmupMs)
	}
	if c.Discipline != DisciplineFIFO && c.Discipline != DisciplinePS {
		return fmt.Errorf("cluster: unknown discipline %d", c.Discipline)
	}
	if c.MaxQueue < 0 {
		return fmt.Errorf("cluster: negative MaxQueue %d", c.MaxQueue)
	}
	if c.JitterSigma < 0 || math.IsNaN(c.JitterSigma) {
		return fmt.Errorf("cluster: invalid JitterSigma %v", c.JitterSigma)
	}
	if c.TraceSampleRate < 0 || c.TraceSampleRate > 1 || math.IsNaN(c.TraceSampleRate) {
		return fmt.Errorf("cluster: TraceSampleRate %v outside [0,1]", c.TraceSampleRate)
	}
	if c.ServersPerEdge != nil {
		if len(c.ServersPerEdge) != m {
			return fmt.Errorf("cluster: %d server counts for %d edges", len(c.ServersPerEdge), m)
		}
		for j, k := range c.ServersPerEdge {
			if k <= 0 {
				return fmt.Errorf("cluster: edge %d has %d servers, want >= 1", j, k)
			}
		}
	}
	return nil
}

// servers returns edge j's server count.
func (c Config) servers(j int) int {
	if c.ServersPerEdge == nil {
		return 1
	}
	return c.ServersPerEdge[j]
}

// Result aggregates a run's observable behaviour (post-warmup).
type Result struct {
	// Latency collects end-to-end request latencies in ms.
	Latency stats.Sample
	// Completed, DeadlineMisses and Dropped count requests.
	Completed      int
	DeadlineMisses int
	Dropped        int
	// EdgeBusyMs[j] is the total service busy time of edge j; divide by
	// the measured duration for utilization.
	EdgeBusyMs []float64
	// PeakQueue[j] is the maximum number of requests simultaneously
	// queued or in service at edge j.
	PeakQueue []int
	// DurationMs is the measured (post-warmup) horizon.
	DurationMs float64
}

// Utilization returns per-edge busy fractions over the measured window.
func (r *Result) Utilization() []float64 {
	out := make([]float64, len(r.EdgeBusyMs))
	if r.DurationMs <= 0 {
		return out
	}
	for j, b := range r.EdgeBusyMs {
		out[j] = b / r.DurationMs
	}
	return out
}

// MissRate returns the fraction of completed requests that missed their
// deadline.
func (r *Result) MissRate() float64 {
	if r.Completed == 0 {
		return 0
	}
	return float64(r.DeadlineMisses) / float64(r.Completed)
}

// Simulator owns one simulation. Construct with New, optionally schedule
// reconfigurations/failures/churn, then call Run once.
type Simulator struct {
	cfg     Config
	engine  sim.Engine
	src     *xrand.Source
	arrival []workload.Arrivals

	assignment []int
	active     []bool
	failed     []bool
	// nextArrive[i] is device i's pending arrival event; deactivation
	// cancels it so reactivation can never duplicate the stream.
	nextArrive []*sim.Event
	// uplink/downlink are the live delay matrices (swappable at runtime
	// via ScheduleUplinkUpdate).
	uplink   [][]float64
	downlink [][]float64
	// busyUntil[j][s] is server s of edge j's next free time.
	busyUntil [][]float64
	inFlight  []int
	ps        []*psServer

	met metricsSet

	// spanSrc draws trace-sampling decisions (nil when spans are off);
	// it is split from the config seed under its own label so it never
	// touches the simulation's random streams. nextTrace counts accepted
	// requests so sampled traces keep stable, gap-free-ordered IDs.
	spanSrc   *xrand.Source
	nextTrace uint64

	result  Result
	horizon float64
	ran     bool
}

// metricsSet pre-resolves the simulator's live metrics once at
// construction. With a nil registry every handle is nil and each update
// is a no-op method call on a nil receiver — the simulation schedule is
// identical either way.
type metricsSet struct {
	sent, ok, missed, dropped *obs.Counter
	latency                   *obs.Histogram
	// Per-phase delay histograms; one observation per completed request
	// each, so their sums add up to the latency histogram's sum.
	phaseUplink, phaseQueue, phaseService, phaseDownlink *obs.Histogram
	queueDepth                                           []*obs.Gauge
}

func newMetricsSet(r *obs.Registry, edges int) metricsSet {
	ms := metricsSet{
		sent:          r.Counter("cluster.requests_sent"),
		ok:            r.Counter("cluster.requests_ok"),
		missed:        r.Counter("cluster.requests_missed"),
		dropped:       r.Counter("cluster.requests_dropped"),
		latency:       r.Histogram("cluster.latency_ms", obs.DefaultLatencyBucketsMs()),
		phaseUplink:   r.Histogram("cluster.delay.uplink_ms", obs.DefaultLatencyBucketsMs()),
		phaseQueue:    r.Histogram("cluster.delay.queue_ms", obs.DefaultLatencyBucketsMs()),
		phaseService:  r.Histogram("cluster.delay.service_ms", obs.DefaultLatencyBucketsMs()),
		phaseDownlink: r.Histogram("cluster.delay.downlink_ms", obs.DefaultLatencyBucketsMs()),
		queueDepth:    make([]*obs.Gauge, edges),
	}
	for j := range ms.queueDepth {
		ms.queueDepth[j] = r.Gauge(fmt.Sprintf("cluster.edge_%d.queue_depth", j))
	}
	return ms
}

// observeDone records a completed request in the live metrics.
func (ms *metricsSet) observeDone(latencyMs float64, outcome Outcome) {
	if outcome == OutcomeMissed {
		ms.missed.Add(1)
	} else {
		ms.ok.Add(1)
	}
	ms.latency.Observe(latencyMs)
}

// observePhases attributes one completed request's latency to its phases.
func (ms *metricsSet) observePhases(uplinkMs, queueMs, serviceMs, downlinkMs float64) {
	ms.phaseUplink.Observe(uplinkMs)
	ms.phaseQueue.Observe(queueMs)
	ms.phaseService.Observe(serviceMs)
	ms.phaseDownlink.Observe(downlinkMs)
}

// New validates the config and builds a simulator.
func New(cfg Config) (*Simulator, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	src := xrand.NewSplit(cfg.Seed, "cluster")
	s := &Simulator{
		cfg:        cfg,
		src:        src,
		arrival:    make([]workload.Arrivals, len(cfg.Devices)),
		assignment: make([]int, len(cfg.Assignment)),
		active:     make([]bool, len(cfg.Devices)),
		failed:     make([]bool, len(cfg.ServiceRate)),
		nextArrive: make([]*sim.Event, len(cfg.Devices)),
		busyUntil:  make([][]float64, len(cfg.ServiceRate)),
		inFlight:   make([]int, len(cfg.ServiceRate)),
	}
	s.met = newMetricsSet(cfg.Metrics, len(cfg.ServiceRate))
	if cfg.Spans != nil {
		s.spanSrc = xrand.NewSplit(cfg.Seed, "trace-sample")
	}
	for j := range s.busyUntil {
		s.busyUntil[j] = make([]float64, cfg.servers(j))
	}
	copy(s.assignment, cfg.Assignment)
	s.uplink = cfg.UplinkMs
	s.downlink = cfg.DownlinkMs
	for i, d := range cfg.Devices {
		a, err := workload.NewArrivals(d, src.Split(fmt.Sprintf("dev-%d", i)))
		if err != nil {
			return nil, fmt.Errorf("cluster: device %d: %w", i, err)
		}
		s.arrival[i] = a
		s.active[i] = true
	}
	s.result.EdgeBusyMs = make([]float64, len(cfg.ServiceRate))
	s.result.PeakQueue = make([]int, len(cfg.ServiceRate))
	if cfg.Discipline == DisciplinePS {
		s.ps = make([]*psServer, len(cfg.ServiceRate))
		for j := range s.ps {
			// Multi-server PS pools into one station of aggregate rate.
			s.ps[j] = &psServer{
				rate: cfg.ServiceRate[j] * float64(cfg.servers(j)),
				jobs: make(map[int64]*psJob),
			}
		}
	}
	return s, nil
}

// psJob is one in-service request under processor sharing.
type psJob struct {
	remaining float64 // compute units left
	devIdx    int
	sentAt    float64
	arriveAt  float64     // when the request reached the edge
	trace     obs.TraceID // 0 = untraced
}

// psServer shares its rate equally among active jobs. Remaining work is
// advanced lazily at every arrival/completion event.
type psServer struct {
	rate   float64
	jobs   map[int64]*psJob
	nextID int64
	lastT  float64
	wake   *sim.Event
}

// advance applies elapsed virtual time to all jobs.
func (p *psServer) advance(now float64) {
	if k := len(p.jobs); k > 0 && now > p.lastT {
		done := p.rate * (now - p.lastT) / 1000 / float64(k)
		for _, j := range p.jobs {
			j.remaining -= done
		}
	}
	p.lastT = now
}

// nextCompletion returns the id and absolute time of the earliest finishing
// job, or (-1, 0) when idle.
func (p *psServer) nextCompletion(now float64) (int64, float64) {
	bestID := int64(-1)
	best := math.Inf(1)
	for id, j := range p.jobs {
		// Tie-break on id so map iteration order cannot leak into the
		// schedule.
		if j.remaining < best || (j.remaining == best && id < bestID) {
			best = j.remaining
			bestID = id
		}
	}
	if bestID < 0 {
		return -1, 0
	}
	if best < 0 {
		best = 0
	}
	return bestID, now + best*float64(len(p.jobs))*1000/p.rate
}

// record forwards to the configured recorder, if any.
func (s *Simulator) record(rec RequestRecord) {
	if s.cfg.Recorder != nil {
		s.cfg.Recorder.Record(rec)
	}
}

// Span IDs within a trace are fixed — the root request span is 1 and each
// phase child has a stable ID — so readers join phases without any
// per-trace bookkeeping.
const (
	spanRoot     obs.SpanID = 1
	spanUplink   obs.SpanID = 2
	spanQueue    obs.SpanID = 3
	spanService  obs.SpanID = 4
	spanDownlink obs.SpanID = 5
)

// sampleTrace decides whether the next accepted request is traced and
// returns its trace ID (0 = untraced). IDs count accepted requests, so a
// sampled subset keeps stable identities under any sample rate.
func (s *Simulator) sampleTrace() obs.TraceID {
	if s.cfg.Spans == nil {
		return 0
	}
	s.nextTrace++
	if r := s.cfg.TraceSampleRate; r > 0 && r < 1 && s.spanSrc.Float64() >= r {
		return 0
	}
	return obs.TraceID(s.nextTrace)
}

// childSpan emits one phase span of trace tid.
func (s *Simulator) childSpan(tid obs.TraceID, id obs.SpanID, name string, startMs, endMs float64) {
	obs.EmitSpan(s.cfg.Spans, obs.Span{
		Trace: tid, ID: id, Parent: spanRoot,
		Name: name, StartMs: startMs, EndMs: endMs,
	})
}

// rootSpan emits trace tid's root request span, after its children so a
// streaming reader sees a trace complete when the root arrives.
func (s *Simulator) rootSpan(tid obs.TraceID, dev, edge int, startMs, endMs float64, outcome Outcome) {
	obs.EmitSpan(s.cfg.Spans, obs.Span{
		Trace: tid, ID: spanRoot, Name: "request",
		StartMs: startMs, EndMs: endMs,
		Attrs: map[string]interface{}{
			"device":  dev,
			"edge":    edge,
			"outcome": string(outcome),
		},
	})
}

// emitTrace writes one completed request's trace: the four phase children
// (uplink, queue wait, service, downlink) followed by the root. The child
// durations partition the root exactly: uplink+queue+service+downlink ==
// end-to-end latency.
func (s *Simulator) emitTrace(tid obs.TraceID, dev, edge int, sentAt, edgeAt, startSvc, finish, downMs float64, outcome Outcome) {
	if tid == 0 {
		return
	}
	end := finish + downMs
	s.childSpan(tid, spanUplink, "uplink", sentAt, edgeAt)
	s.childSpan(tid, spanQueue, "queue", edgeAt, startSvc)
	s.childSpan(tid, spanService, "service", startSvc, finish)
	s.childSpan(tid, spanDownlink, "downlink", finish, end)
	s.rootSpan(tid, dev, edge, sentAt, end, outcome)
}

// emitDropTrace writes the trace of a request dropped on arrival at the
// edge: the uplink child it spent, then the root marked dropped.
func (s *Simulator) emitDropTrace(tid obs.TraceID, dev, edge int, sentAt, dropAt float64) {
	if tid == 0 {
		return
	}
	s.childSpan(tid, spanUplink, "uplink", sentAt, dropAt)
	s.rootSpan(tid, dev, edge, sentAt, dropAt, OutcomeDropped)
}

// downlinkDelay returns the response delay for (device, edge).
func (s *Simulator) downlinkDelay(i, j int) float64 {
	base := s.uplink[i][j]
	if s.downlink != nil {
		base = s.downlink[i][j]
	}
	return s.jitter(base)
}

// jitter applies the configured per-request lognormal network jitter.
// The factor exp(N(0, sigma)) has mean exp(sigma^2/2), so it is divided
// out to keep the average delay equal to the configured one.
func (s *Simulator) jitter(delayMs float64) float64 {
	sigma := s.cfg.JitterSigma
	if sigma == 0 || math.IsInf(delayMs, 1) {
		return delayMs
	}
	factor := math.Exp(s.src.Normal(0, sigma)) / math.Exp(sigma*sigma/2)
	return delayMs * factor
}

// validateMatrix checks an n-by-m delay matrix.
func (s *Simulator) validateMatrix(ms [][]float64, label string) error {
	if len(ms) != len(s.cfg.Devices) {
		return fmt.Errorf("cluster: %s matrix has %d rows, want %d", label, len(ms), len(s.cfg.Devices))
	}
	for i, row := range ms {
		if len(row) != len(s.cfg.ServiceRate) {
			return fmt.Errorf("cluster: %s row %d has %d cols, want %d", label, i, len(row), len(s.cfg.ServiceRate))
		}
	}
	return nil
}

// ScheduleUplinkUpdate swaps the live delay matrices at virtual time tMs —
// the mechanism for replaying mobility-driven topology drift inside one
// simulation run. downlink may be nil to mirror the uplink. Must be called
// before Run. The matrices are used as-is (not copied); do not mutate them
// after scheduling.
func (s *Simulator) ScheduleUplinkUpdate(tMs float64, uplink, downlink [][]float64) error {
	if err := s.validateMatrix(uplink, "uplink"); err != nil {
		return err
	}
	if downlink != nil {
		if err := s.validateMatrix(downlink, "downlink"); err != nil {
			return err
		}
	}
	s.engine.Schedule(tMs, func(*sim.Engine) {
		s.uplink = uplink
		s.downlink = downlink
	})
	return nil
}

// ScheduleReconfigureWithPause swaps the assignment at tMs like
// ScheduleReconfigure, but devices whose placement changed pause for
// pauseMs (their state is migrating): their arrival streams stop and
// resume when the migration completes. Must be called before Run.
func (s *Simulator) ScheduleReconfigureWithPause(tMs float64, assignment []int, pauseMs float64) error {
	if len(assignment) != len(s.cfg.Devices) {
		return fmt.Errorf("cluster: reconfigure assignment length %d, want %d", len(assignment), len(s.cfg.Devices))
	}
	for i, j := range assignment {
		if j < 0 || j >= len(s.cfg.ServiceRate) {
			return fmt.Errorf("cluster: reconfigure device %d to invalid edge %d", i, j)
		}
	}
	if pauseMs < 0 {
		return fmt.Errorf("cluster: negative migration pause %v", pauseMs)
	}
	of := make([]int, len(assignment))
	copy(of, assignment)
	s.engine.Schedule(tMs, func(e *sim.Engine) {
		for i := range of {
			if s.assignment[i] == of[i] || !s.active[i] {
				continue
			}
			i := i
			s.deactivateDevice(e, i)
			e.After(pauseMs, func(e *sim.Engine) { s.activateDevice(e, i) })
		}
		copy(s.assignment, of)
	})
	return nil
}

// ScheduleReconfigure swaps the live assignment at virtual time tMs.
// Requests already in flight complete under their old edge; new arrivals
// use the new mapping. Must be called before Run.
func (s *Simulator) ScheduleReconfigure(tMs float64, assignment []int) error {
	if len(assignment) != len(s.cfg.Devices) {
		return fmt.Errorf("cluster: reconfigure assignment length %d, want %d", len(assignment), len(s.cfg.Devices))
	}
	for i, j := range assignment {
		if j < 0 || j >= len(s.cfg.ServiceRate) {
			return fmt.Errorf("cluster: reconfigure device %d to invalid edge %d", i, j)
		}
	}
	of := make([]int, len(assignment))
	copy(of, assignment)
	s.engine.Schedule(tMs, func(*sim.Engine) { copy(s.assignment, of) })
	return nil
}

// ScheduleEdgeFailure marks edge j failed at tMs: all requests targeting
// it afterwards are dropped until ScheduleEdgeRecovery. Must be called
// before Run.
func (s *Simulator) ScheduleEdgeFailure(tMs float64, j int) error {
	if j < 0 || j >= len(s.cfg.ServiceRate) {
		return fmt.Errorf("cluster: failure on invalid edge %d", j)
	}
	s.engine.Schedule(tMs, func(*sim.Engine) { s.failed[j] = true })
	return nil
}

// ScheduleEdgeRecovery clears a failure at tMs. Must be called before Run.
func (s *Simulator) ScheduleEdgeRecovery(tMs float64, j int) error {
	if j < 0 || j >= len(s.cfg.ServiceRate) {
		return fmt.Errorf("cluster: recovery on invalid edge %d", j)
	}
	s.engine.Schedule(tMs, func(*sim.Engine) { s.failed[j] = false })
	return nil
}

// ScheduleDeviceChurn toggles device i's activity at tMs (join = true
// resumes arrivals, false silences the device). Must be called before Run.
func (s *Simulator) ScheduleDeviceChurn(tMs float64, i int, join bool) error {
	if i < 0 || i >= len(s.cfg.Devices) {
		return fmt.Errorf("cluster: churn on invalid device %d", i)
	}
	s.engine.Schedule(tMs, func(e *sim.Engine) {
		if join {
			s.activateDevice(e, i)
		} else {
			s.deactivateDevice(e, i)
		}
	})
	return nil
}

// scheduleNextArrival arms device i's next arrival and tracks the event so
// deactivation can cancel it (preventing duplicated streams on resume).
func (s *Simulator) scheduleNextArrival(e *sim.Engine, i int) {
	s.nextArrive[i] = e.After(s.arrival[i].NextGapMs(), func(e *sim.Engine) { s.arrive(e, i) })
}

// deactivateDevice silences device i and cancels its pending arrival.
func (s *Simulator) deactivateDevice(e *sim.Engine, i int) {
	s.active[i] = false
	if ev := s.nextArrive[i]; ev != nil {
		e.Cancel(ev)
		s.nextArrive[i] = nil
	}
}

// activateDevice resumes device i's arrival stream if it was silent.
func (s *Simulator) activateDevice(e *sim.Engine, i int) {
	if s.active[i] {
		return
	}
	s.active[i] = true
	s.scheduleNextArrival(e, i)
}

// arrive handles one request arrival from device i and schedules the next.
func (s *Simulator) arrive(e *sim.Engine, i int) {
	s.nextArrive[i] = nil
	if !s.active[i] {
		return // deactivated after this event was armed: stream stops
	}
	now := e.Now()
	j := s.assignment[i]
	measured := now >= s.cfg.WarmupMs
	s.met.sent.Add(1)

	if s.failed[j] {
		if measured {
			s.result.Dropped++
		}
		s.met.dropped.Add(1)
		s.cfg.SLO.ObserveDrop(now)
		s.record(RequestRecord{Device: i, Edge: j, SentAtMs: now, DoneAtMs: now, Outcome: OutcomeDropped})
	} else {
		uplink := s.uplink[i][j]
		if math.IsInf(uplink, 1) {
			if measured {
				s.result.Dropped++
			}
			s.met.dropped.Add(1)
			s.cfg.SLO.ObserveDrop(now)
			s.record(RequestRecord{Device: i, Edge: j, SentAtMs: now, DoneAtMs: now, Outcome: OutcomeDropped})
		} else {
			arriveAtEdge := now + s.jitter(uplink)
			tid := s.sampleTrace()
			e.Schedule(arriveAtEdge, func(e *sim.Engine) { s.serve(e, i, j, now, tid) })
		}
	}
	s.scheduleNextArrival(e, i)
}

// serve enqueues the request at edge j under the configured discipline.
func (s *Simulator) serve(e *sim.Engine, i, j int, sentAt float64, tid obs.TraceID) {
	if s.failed[j] {
		if sentAt >= s.cfg.WarmupMs {
			s.result.Dropped++
		}
		s.met.dropped.Add(1)
		s.cfg.SLO.ObserveDrop(e.Now())
		s.emitDropTrace(tid, i, j, sentAt, e.Now())
		s.record(RequestRecord{Device: i, Edge: j, SentAtMs: sentAt, DoneAtMs: e.Now(), Outcome: OutcomeDropped})
		return
	}
	if s.cfg.MaxQueue > 0 && s.inFlight[j] >= s.cfg.MaxQueue {
		if sentAt >= s.cfg.WarmupMs {
			s.result.Dropped++
		}
		s.met.dropped.Add(1)
		s.cfg.SLO.ObserveDrop(e.Now())
		s.emitDropTrace(tid, i, j, sentAt, e.Now())
		s.record(RequestRecord{Device: i, Edge: j, SentAtMs: sentAt, DoneAtMs: e.Now(), Outcome: OutcomeDropped})
		return
	}
	if s.cfg.Discipline == DisciplinePS {
		s.servePS(e, i, j, sentAt, tid)
		return
	}
	now := e.Now()
	edgeAt := now // uplink ends here; queue wait starts
	d := s.cfg.Devices[i]
	serviceMs := d.ComputeUnits / s.cfg.ServiceRate[j] * 1000
	// FIFO with c parallel servers: the request takes the server that
	// frees up first.
	srv := 0
	for k := 1; k < len(s.busyUntil[j]); k++ {
		if s.busyUntil[j][k] < s.busyUntil[j][srv] {
			srv = k
		}
	}
	start := now
	if s.busyUntil[j][srv] > start {
		start = s.busyUntil[j][srv]
	}
	finish := start + serviceMs
	s.busyUntil[j][srv] = finish
	s.inFlight[j]++
	s.met.queueDepth[j].Set(float64(s.inFlight[j]))
	if s.inFlight[j] > s.result.PeakQueue[j] {
		s.result.PeakQueue[j] = s.inFlight[j]
	}
	if sentAt >= s.cfg.WarmupMs {
		s.result.EdgeBusyMs[j] += serviceMs
	}
	e.Schedule(finish, func(e *sim.Engine) {
		s.inFlight[j]--
		s.met.queueDepth[j].Set(float64(s.inFlight[j]))
		down := s.downlinkDelay(i, j)
		latency := e.Now() + down - sentAt
		outcome := OutcomeOK
		if d.DeadlineMs > 0 && latency > d.DeadlineMs {
			outcome = OutcomeMissed
		}
		if sentAt >= s.cfg.WarmupMs {
			s.result.Completed++
			s.result.Latency.Add(latency)
			if outcome == OutcomeMissed {
				s.result.DeadlineMisses++
			}
		}
		s.met.observeDone(latency, outcome)
		s.met.observePhases(edgeAt-sentAt, start-edgeAt, serviceMs, down)
		s.cfg.SLO.ObserveRequest(e.Now(), edgeAt-sentAt, start-edgeAt, serviceMs, down, latency, outcome == OutcomeMissed)
		s.emitTrace(tid, i, j, sentAt, edgeAt, start, finish, down, outcome)
		s.record(RequestRecord{Device: i, Edge: j, SentAtMs: sentAt, DoneAtMs: sentAt + latency, LatencyMs: latency, Outcome: outcome})
	})
}

// servePS admits the request into the edge's processor-sharing pool and
// (re)schedules the next completion.
func (s *Simulator) servePS(e *sim.Engine, i, j int, sentAt float64, tid obs.TraceID) {
	p := s.ps[j]
	now := e.Now()
	p.advance(now)
	id := p.nextID
	p.nextID++
	p.jobs[id] = &psJob{remaining: s.cfg.Devices[i].ComputeUnits, devIdx: i, sentAt: sentAt, arriveAt: now, trace: tid}
	s.inFlight[j]++
	s.met.queueDepth[j].Set(float64(s.inFlight[j]))
	if s.inFlight[j] > s.result.PeakQueue[j] {
		s.result.PeakQueue[j] = s.inFlight[j]
	}
	if sentAt >= s.cfg.WarmupMs {
		// A PS server is busy whenever any job is present; attribute
		// per-request service demand as busy time (equivalent in
		// total to FIFO accounting).
		s.result.EdgeBusyMs[j] += s.cfg.Devices[i].ComputeUnits / s.cfg.ServiceRate[j] * 1000
	}
	s.reschedulePS(e, j)
}

// reschedulePS cancels and re-arms edge j's completion wake-up.
func (s *Simulator) reschedulePS(e *sim.Engine, j int) {
	p := s.ps[j]
	if p.wake != nil {
		e.Cancel(p.wake)
		p.wake = nil
	}
	id, at := p.nextCompletion(e.Now())
	if id < 0 {
		return
	}
	p.wake = e.Schedule(at, func(e *sim.Engine) { s.completePS(e, j) })
}

// completePS finishes every job whose remaining work has drained. Jobs
// drain in admission (id) order, not map order, so record, metric and
// span streams are deterministic even when several jobs tie.
func (s *Simulator) completePS(e *sim.Engine, j int) {
	p := s.ps[j]
	now := e.Now()
	p.wake = nil
	p.advance(now)
	const drained = 1e-9
	var done []int64
	for id, job := range p.jobs {
		if job.remaining <= drained {
			done = append(done, id)
		}
	}
	sort.Slice(done, func(a, b int) bool { return done[a] < done[b] })
	for _, id := range done {
		job := p.jobs[id]
		delete(p.jobs, id)
		s.inFlight[j]--
		s.met.queueDepth[j].Set(float64(s.inFlight[j]))
		down := s.downlinkDelay(job.devIdx, j)
		latency := now + down - job.sentAt
		outcome := OutcomeOK
		if dl := s.cfg.Devices[job.devIdx].DeadlineMs; dl > 0 && latency > dl {
			outcome = OutcomeMissed
		}
		if job.sentAt >= s.cfg.WarmupMs {
			s.result.Completed++
			s.result.Latency.Add(latency)
			if outcome == OutcomeMissed {
				s.result.DeadlineMisses++
			}
		}
		s.met.observeDone(latency, outcome)
		// Under PS a job is in service from arrival, so its queue-wait
		// phase is empty and service absorbs the sharing slowdown.
		s.met.observePhases(job.arriveAt-job.sentAt, 0, now-job.arriveAt, down)
		s.cfg.SLO.ObserveRequest(now, job.arriveAt-job.sentAt, 0, now-job.arriveAt, down, latency, outcome == OutcomeMissed)
		s.emitTrace(job.trace, job.devIdx, j, job.sentAt, job.arriveAt, job.arriveAt, now, down, outcome)
		s.record(RequestRecord{Device: job.devIdx, Edge: j, SentAtMs: job.sentAt, DoneAtMs: job.sentAt + latency, LatencyMs: latency, Outcome: outcome})
	}
	s.reschedulePS(e, j)
}

// Run executes the simulation for durationMs of virtual time and returns
// the collected result. Run may be called only once.
func (s *Simulator) Run(durationMs float64) (*Result, error) {
	if s.ran {
		return nil, errors.New("cluster: Run called twice")
	}
	if durationMs <= s.cfg.WarmupMs {
		return nil, fmt.Errorf("cluster: duration %v must exceed warmup %v", durationMs, s.cfg.WarmupMs)
	}
	s.ran = true
	s.horizon = durationMs
	for i := range s.cfg.Devices {
		s.scheduleNextArrival(&s.engine, i)
	}
	s.engine.Run(durationMs)
	s.cfg.SLO.Finish(durationMs)
	s.result.DurationMs = durationMs - s.cfg.WarmupMs
	return &s.result, nil
}
