package cluster

import (
	"math"
	"testing"
)

func TestScheduleUplinkUpdateTakesEffect(t *testing.T) {
	cfg := simpleConfig()
	cfg.Devices[0].RateHz = 2
	cfg.Devices[1].RateHz = 2
	cfg.WarmupMs = 10_000 // measure after the swap
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// At t=5 s the network "moves": both devices now see 100 ms uplinks.
	slow := [][]float64{{100, 100}, {100, 100}}
	if err := s.ScheduleUplinkUpdate(5_000, slow, slow); err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(40_000)
	if err != nil {
		t.Fatal(err)
	}
	// Post-swap latency ~ 100 + 1 + 100 = 201.
	if med := res.Latency.Median(); math.Abs(med-201) > 2 {
		t.Fatalf("median after uplink update = %v, want ~201", med)
	}
}

func TestScheduleUplinkUpdateValidation(t *testing.T) {
	s, err := New(simpleConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.ScheduleUplinkUpdate(1, [][]float64{{1, 1}}, nil); err == nil {
		t.Error("short uplink accepted")
	}
	if err := s.ScheduleUplinkUpdate(1, [][]float64{{1}, {1}}, nil); err == nil {
		t.Error("narrow uplink accepted")
	}
	ok := [][]float64{{1, 1}, {1, 1}}
	if err := s.ScheduleUplinkUpdate(1, ok, [][]float64{{1}, {1}}); err == nil {
		t.Error("narrow downlink accepted")
	}
	if err := s.ScheduleUplinkUpdate(1, ok, nil); err != nil {
		t.Fatal(err)
	}
}

func TestReconfigureWithPauseSilencesMigrants(t *testing.T) {
	cfg := simpleConfig() // both devices at 10 Hz
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Swap both devices at t=10 s with a 5 s migration pause: each loses
	// ~50 requests.
	if err := s.ScheduleReconfigureWithPause(10_000, []int{1, 0}, 5_000); err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(30_000)
	if err != nil {
		t.Fatal(err)
	}
	// Without pause: ~600 requests. With two 5 s pauses: ~500.
	if res.Completed > 560 || res.Completed < 420 {
		t.Fatalf("Completed = %d, want ~500 with migration pauses", res.Completed)
	}
	// After resume, latency reflects the swapped (worse) mapping.
	if res.Latency.P95() < 100 {
		t.Fatalf("p95 = %v; expected the 50 ms uplinks post-swap to dominate", res.Latency.P95())
	}
}

func TestReconfigureWithPauseZeroPause(t *testing.T) {
	cfg := simpleConfig()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.ScheduleReconfigureWithPause(5_000, []int{1, 0}, 0); err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(20_000)
	if err != nil {
		t.Fatal(err)
	}
	// Zero pause: throughput unaffected (~400).
	if res.Completed < 340 {
		t.Fatalf("Completed = %d; zero-pause migration should not lose traffic", res.Completed)
	}
}

func TestReconfigureWithPauseValidation(t *testing.T) {
	s, err := New(simpleConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.ScheduleReconfigureWithPause(1, []int{0}, 10); err == nil {
		t.Error("short assignment accepted")
	}
	if err := s.ScheduleReconfigureWithPause(1, []int{0, 9}, 10); err == nil {
		t.Error("bad edge accepted")
	}
	if err := s.ScheduleReconfigureWithPause(1, []int{0, 1}, -1); err == nil {
		t.Error("negative pause accepted")
	}
}
