package sim

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestEventsRunInTimeOrder(t *testing.T) {
	var e Engine
	var order []float64
	for _, tm := range []float64{5, 1, 3, 2, 4} {
		tm := tm
		e.Schedule(tm, func(*Engine) { order = append(order, tm) })
	}
	e.RunAll()
	if !sort.Float64sAreSorted(order) {
		t.Fatalf("events ran out of order: %v", order)
	}
	if len(order) != 5 {
		t.Fatalf("ran %d events, want 5", len(order))
	}
}

func TestEqualTimesRunInScheduleOrder(t *testing.T) {
	var e Engine
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(1, func(*Engine) { order = append(order, i) })
	}
	e.RunAll()
	for i, v := range order {
		if v != i {
			t.Fatalf("equal-time events out of schedule order: %v", order)
		}
	}
}

func TestClockAdvances(t *testing.T) {
	var e Engine
	e.Schedule(10, func(en *Engine) {
		if en.Now() != 10 {
			t.Errorf("Now() inside event = %v, want 10", en.Now())
		}
		en.After(5, func(en *Engine) {
			if en.Now() != 15 {
				t.Errorf("chained Now() = %v, want 15", en.Now())
			}
		})
	})
	e.RunAll()
	if e.Now() != 15 {
		t.Fatalf("final Now() = %v, want 15", e.Now())
	}
	if e.Processed() != 2 {
		t.Fatalf("Processed = %d, want 2", e.Processed())
	}
}

func TestSchedulePastPanics(t *testing.T) {
	var e Engine
	e.Schedule(10, func(*Engine) {})
	e.RunAll()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	e.Schedule(5, func(*Engine) {})
}

func TestAfterNegativePanics(t *testing.T) {
	var e Engine
	defer func() {
		if recover() == nil {
			t.Fatal("negative After did not panic")
		}
	}()
	e.After(-1, func(*Engine) {})
}

func TestCancel(t *testing.T) {
	var e Engine
	ran := false
	ev := e.Schedule(1, func(*Engine) { ran = true })
	e.Cancel(ev)
	e.RunAll()
	if ran {
		t.Fatal("cancelled event ran")
	}
	e.Cancel(ev) // double-cancel is a no-op
	e.Cancel(nil)
}

func TestCancelFromEarlierEvent(t *testing.T) {
	var e Engine
	ran := false
	later := e.Schedule(10, func(*Engine) { ran = true })
	e.Schedule(5, func(en *Engine) { en.Cancel(later) })
	e.RunAll()
	if ran {
		t.Fatal("event cancelled mid-run still ran")
	}
}

func TestRunHorizon(t *testing.T) {
	var e Engine
	var ran []float64
	for _, tm := range []float64{1, 2, 3, 10, 20} {
		tm := tm
		e.Schedule(tm, func(*Engine) { ran = append(ran, tm) })
	}
	n := e.Run(10)
	if n != 3 {
		t.Fatalf("Run(10) executed %d events, want 3 (exclusive horizon)", n)
	}
	if e.Now() != 10 {
		t.Fatalf("clock after horizon = %v, want 10", e.Now())
	}
	// Remaining events still runnable.
	e.RunAll()
	if len(ran) != 5 {
		t.Fatalf("total ran %d, want 5", len(ran))
	}
}

func TestStop(t *testing.T) {
	var e Engine
	count := 0
	for i := 1; i <= 10; i++ {
		e.Schedule(float64(i), func(en *Engine) {
			count++
			if count == 3 {
				en.Stop()
			}
		})
	}
	e.RunAll()
	if count != 3 {
		t.Fatalf("Stop did not halt the run: executed %d", count)
	}
	// A subsequent run resumes.
	e.RunAll()
	if count != 10 {
		t.Fatalf("resume executed %d total, want 10", count)
	}
}

func TestPending(t *testing.T) {
	var e Engine
	a := e.Schedule(1, func(*Engine) {})
	e.Schedule(2, func(*Engine) {})
	if e.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2", e.Pending())
	}
	e.Cancel(a)
	if e.Pending() != 1 {
		t.Fatalf("Pending after cancel = %d, want 1", e.Pending())
	}
}

func TestEventCascade(t *testing.T) {
	// A self-perpetuating process: each event schedules the next until a
	// horizon; verifies heap behavior under interleaved push/pop.
	var e Engine
	ticks := 0
	var tick func(*Engine)
	tick = func(en *Engine) {
		ticks++
		if ticks < 1000 {
			en.After(1, tick)
		}
	}
	e.After(0, tick)
	e.RunAll()
	if ticks != 1000 {
		t.Fatalf("ticks = %d, want 1000", ticks)
	}
	if e.Now() != 999 {
		t.Fatalf("Now = %v, want 999", e.Now())
	}
}

// Property: for arbitrary event time sets, execution order is the sorted
// order and the final clock equals the max time.
func TestOrderingQuick(t *testing.T) {
	f := func(raw []uint16) bool {
		var e Engine
		var times []float64
		var ran []float64
		for _, r := range raw {
			tm := float64(r)
			times = append(times, tm)
			e.Schedule(tm, func(*Engine) { ran = append(ran, tm) })
		}
		e.RunAll()
		if len(ran) != len(times) {
			return false
		}
		sort.Float64s(times)
		for i := range ran {
			if ran[i] != times[i] {
				return false
			}
		}
		if len(times) > 0 && e.Now() != times[len(times)-1] {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestScheduleNaNPanics(t *testing.T) {
	var e Engine
	defer func() {
		if recover() == nil {
			t.Fatal("NaN schedule did not panic")
		}
	}()
	e.Schedule(math.NaN(), func(*Engine) {})
}
