// Package sim is a minimal discrete-event simulation engine: a virtual
// clock plus a time-ordered event queue. The cluster simulator in
// internal/cluster drives all request lifecycles through it, so simulated
// results are fully deterministic and independent of wall-clock speed.
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Event is a callback scheduled at a virtual time.
type Event struct {
	// Time is the virtual timestamp (milliseconds) at which Fn runs.
	Time float64
	// Fn is invoked with the engine so handlers can schedule follow-ups.
	Fn func(*Engine)

	seq   int64 // tie-break so equal-time events run in schedule order
	index int   // heap bookkeeping
	dead  bool  // cancelled
}

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].Time != h[j].Time {
		return h[i].Time < h[j].Time
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x interface{}) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Engine owns the clock and the pending-event queue. The zero value is
// ready to use.
type Engine struct {
	now     float64
	queue   eventHeap
	nextSeq int64
	stopped bool
	// processed counts executed events, exposed for tests and progress
	// reporting.
	processed int64
}

// Now returns the current virtual time in milliseconds.
func (e *Engine) Now() float64 { return e.now }

// Processed returns the number of events executed so far.
func (e *Engine) Processed() int64 { return e.processed }

// Pending returns the number of events still queued (including cancelled
// ones not yet drained).
func (e *Engine) Pending() int {
	n := 0
	for _, ev := range e.queue {
		if !ev.dead {
			n++
		}
	}
	return n
}

// Schedule queues fn to run at absolute virtual time t and returns a handle
// that can cancel it. Scheduling in the past (t < Now) panics: that is
// always a logic error in the caller.
func (e *Engine) Schedule(t float64, fn func(*Engine)) *Event {
	if math.IsNaN(t) || t < e.now {
		panic(fmt.Sprintf("sim: scheduling at %v before now %v", t, e.now))
	}
	ev := &Event{Time: t, Fn: fn, seq: e.nextSeq}
	e.nextSeq++
	heap.Push(&e.queue, ev)
	return ev
}

// After queues fn to run delay milliseconds from now.
func (e *Engine) After(delay float64, fn func(*Engine)) *Event {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	return e.Schedule(e.now+delay, fn)
}

// Cancel marks ev so it will not run. Cancelling an already-run or
// already-cancelled event is a no-op.
func (e *Engine) Cancel(ev *Event) {
	if ev != nil {
		ev.dead = true
	}
}

// Stop makes Run return after the current event completes.
func (e *Engine) Stop() { e.stopped = true }

// Step executes the next pending event, advancing the clock to its time.
// It reports whether an event was executed.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		ev := heap.Pop(&e.queue).(*Event)
		if ev.dead {
			continue
		}
		e.now = ev.Time
		e.processed++
		ev.Fn(e)
		return true
	}
	return false
}

// Run executes events until the queue drains, Stop is called, or the clock
// passes until (exclusive). Events scheduled exactly at until do not run;
// the clock is left at until if the horizon was hit, otherwise at the last
// executed event. It returns the number of events executed.
func (e *Engine) Run(until float64) int64 {
	e.stopped = false
	start := e.processed
	for !e.stopped {
		// Peek for horizon check.
		var next *Event
		for len(e.queue) > 0 {
			if e.queue[0].dead {
				heap.Pop(&e.queue)
				continue
			}
			next = e.queue[0]
			break
		}
		if next == nil {
			break
		}
		if next.Time >= until {
			e.now = until
			break
		}
		e.Step()
	}
	return e.processed - start
}

// RunAll executes events until the queue drains or Stop is called.
func (e *Engine) RunAll() int64 {
	return e.Run(math.Inf(1))
}
