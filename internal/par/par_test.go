package par

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkersNormalization(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-3) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	for _, n := range []int{1, 2, 64} {
		if got := Workers(n); got != n {
			t.Fatalf("Workers(%d) = %d", n, got)
		}
	}
}

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 100} {
		for _, n := range []int{0, 1, 7, 1000} {
			counts := make([]int32, n)
			For(workers, n, func(i int) { atomic.AddInt32(&counts[i], 1) })
			for i, c := range counts {
				if c != 1 {
					t.Fatalf("workers=%d n=%d: index %d ran %d times", workers, n, i, c)
				}
			}
		}
	}
}

func TestForSequentialOrder(t *testing.T) {
	var order []int
	For(1, 5, func(i int) { order = append(order, i) })
	for i, got := range order {
		if got != i {
			t.Fatalf("workers=1 ran out of order: %v", order)
		}
	}
}

func TestForErrReturnsLowestIndexError(t *testing.T) {
	e3 := errors.New("cell 3")
	e7 := errors.New("cell 7")
	for _, workers := range []int{1, 8} {
		ran := make([]bool, 10)
		err := ForErr(workers, 10, func(i int) error {
			ran[i] = true
			switch i {
			case 7:
				return e7
			case 3:
				return e3
			}
			return nil
		})
		if !errors.Is(err, e3) {
			t.Fatalf("workers=%d: got %v, want lowest-index error %v", workers, err, e3)
		}
		for i, r := range ran {
			if !r {
				t.Fatalf("workers=%d: cell %d skipped after unrelated failure", workers, i)
			}
		}
	}
	if err := ForErr(4, 6, func(int) error { return nil }); err != nil {
		t.Fatalf("all-ok ForErr returned %v", err)
	}
}

func TestMapDeterministic(t *testing.T) {
	want := Map(1, 100, func(i int) int { return i * i })
	got := Map(8, 100, func(i int) int { return i * i })
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("Map workers=8 diverged at %d: %d vs %d", i, got[i], want[i])
		}
	}
	if Map(4, 0, func(i int) int { return i }) != nil {
		t.Fatal("Map with n=0 should return nil")
	}
}

func TestMapErrPartialResults(t *testing.T) {
	out, err := MapErr(4, 5, func(i int) (string, error) {
		if i == 2 {
			return "", fmt.Errorf("boom %d", i)
		}
		return fmt.Sprintf("v%d", i), nil
	})
	if err == nil || err.Error() != "boom 2" {
		t.Fatalf("err = %v", err)
	}
	if out[4] != "v4" || out[0] != "v0" {
		t.Fatalf("healthy cells missing from partial results: %v", out)
	}
}
