package par

import (
	"sync/atomic"
	"testing"
)

func TestForShardsNilClockIsExactlyFor(t *testing.T) {
	var calls atomic.Int64
	shards := ForShards(4, 100, nil, func(i int) { calls.Add(1) })
	if shards != nil {
		t.Fatalf("nil clock must return nil shards, got %v", shards)
	}
	if calls.Load() != 100 {
		t.Fatalf("ran %d cells, want 100", calls.Load())
	}
}

func TestForShardsNilClockAddsNoAllocations(t *testing.T) {
	fn := func(i int) {}
	allocs := testing.AllocsPerRun(50, func() { ForShards(1, 4, nil, fn) })
	if allocs != 0 {
		t.Fatalf("ForShards with nil clock allocated %.0f times per op, want 0", allocs)
	}
}

// fakeClock is a strictly increasing deterministic clock safe for
// concurrent use.
func fakeClock() func() float64 {
	var t atomic.Int64
	return func() float64 { return float64(t.Add(1)) }
}

func TestForShardsSequential(t *testing.T) {
	out := make([]int, 10)
	shards := ForShards(1, 10, fakeClock(), func(i int) { out[i] = i + 1 })
	if len(shards) != 1 {
		t.Fatalf("sequential run produced %d shards, want 1", len(shards))
	}
	sh := shards[0]
	if sh.Worker != 0 || sh.Items != 10 {
		t.Fatalf("shard = %+v", sh)
	}
	if sh.EndMs <= sh.StartMs || sh.BusyMs <= 0 || sh.BusyMs > sh.EndMs-sh.StartMs {
		t.Fatalf("shard timing inconsistent: %+v", sh)
	}
	for i, v := range out {
		if v != i+1 {
			t.Fatalf("cell %d not run", i)
		}
	}
}

func TestForShardsParallel(t *testing.T) {
	const n, workers = 200, 4
	out := make([]int, n)
	shards := ForShards(workers, n, fakeClock(), func(i int) { out[i] = 1 })
	if len(shards) != workers {
		t.Fatalf("got %d shards, want %d", len(shards), workers)
	}
	items := 0
	for w, sh := range shards {
		if sh.Worker != w {
			t.Fatalf("shard %d has worker id %d", w, sh.Worker)
		}
		if sh.EndMs < sh.StartMs || sh.BusyMs < 0 || sh.BusyMs > sh.EndMs-sh.StartMs {
			t.Fatalf("shard %d timing inconsistent: %+v", w, sh)
		}
		items += sh.Items
	}
	if items != n {
		t.Fatalf("shards account for %d items, want %d", items, n)
	}
	for i, v := range out {
		if v != 1 {
			t.Fatalf("cell %d not run", i)
		}
	}
}

func TestForShardsWorkerCapAndEmpty(t *testing.T) {
	if shards := ForShards(8, 0, fakeClock(), func(int) {}); shards != nil {
		t.Fatalf("n=0 must return nil, got %v", shards)
	}
	shards := ForShards(8, 3, fakeClock(), func(int) {})
	if len(shards) != 3 {
		t.Fatalf("workers must cap at n: got %d shards, want 3", len(shards))
	}
}
