// Package par is the repository's shared worker-pool utility: a bounded
// parallel-for over an index space, built for deterministic fan-out.
//
// Every concurrent hot path in this codebase (experiment replication cells,
// Dijkstra sources in the topology kernels, portfolio members) follows the
// same discipline: the work is split into independent index-addressed cells,
// each worker writes only to the cell it owns (a pre-sized slice element),
// and all aggregation happens sequentially after the pool drains. Under that
// discipline parallelism changes wall-clock time only, never output, so a
// run at workers=N is bit-identical to workers=1.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers normalizes a worker-count knob: any value <= 0 means "use every
// core" (runtime.GOMAXPROCS(0)); positive values pass through. 1 requests
// fully sequential execution.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// For runs fn(i) for every i in [0, n) on at most workers goroutines and
// returns when all calls have completed. workers <= 1 (or n <= 1) executes
// sequentially on the calling goroutine with no synchronization overhead.
//
// Determinism contract: fn must write only to state owned by index i
// (e.g. out[i]); it must not append to shared slices, fold into shared
// accumulators, or depend on the order other indices run in.
func For(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 || n == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// Shard is one worker's measured share of a ForShards run: which cells
// it processed and how its wall-clock time was spent. StartMs/EndMs
// bound the worker's activity (first entry to last exit), BusyMs is the
// time actually inside fn; the difference is pull-loop overhead plus,
// for the pool as a whole, tail idleness while other workers finish.
type Shard struct {
	Worker  int
	Items   int
	StartMs float64
	EndMs   float64
	BusyMs  float64
}

// ForShards is For with per-worker timing: now is a monotonic
// millisecond clock (obs.Clock.NowMs; par itself never reads the wall
// clock), and the returned slice holds one Shard per worker that ran,
// indexed by worker ID. Timing is observational only — the work
// distribution, the determinism contract on fn and the results are
// exactly those of For.
//
// A nil now is the off switch: the call degrades to precisely For and
// returns nil, with no clock reads and no allocation, so instrumented
// call sites thread a possibly-nil clock unconditionally.
func ForShards(workers, n int, now func() float64, fn func(i int)) []Shard {
	if now == nil {
		For(workers, n, fn)
		return nil
	}
	if n <= 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 || n == 1 {
		start := now()
		busy := 0.0
		for i := 0; i < n; i++ {
			t0 := now()
			fn(i)
			busy += now() - t0
		}
		return []Shard{{Worker: 0, Items: n, StartMs: start, EndMs: now(), BusyMs: busy}}
	}
	shards := make([]Shard, workers)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			sh := &shards[w]
			sh.Worker = w
			sh.StartMs = now()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					break
				}
				t0 := now()
				fn(i)
				sh.BusyMs += now() - t0
				sh.Items++
			}
			sh.EndMs = now()
		}(w)
	}
	wg.Wait()
	return shards
}

// ForErr is For over a fallible body. Every cell runs regardless of other
// cells' failures (no cancellation, so partial results land in their slots),
// and the returned error is the one from the lowest failing index — the same
// error a sequential loop that collected all failures would report — keeping
// error output independent of goroutine scheduling.
func ForErr(workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	errs := make([]error, n)
	For(workers, n, func(i int) { errs[i] = fn(i) })
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Map applies fn to every index in [0, n) on at most workers goroutines and
// returns the results in index order. It is For with the pre-sized output
// slice managed for the caller.
func Map[T any](workers, n int, fn func(i int) T) []T {
	if n <= 0 {
		return nil
	}
	out := make([]T, n)
	For(workers, n, func(i int) { out[i] = fn(i) })
	return out
}

// MapErr is Map over a fallible body, with ForErr's lowest-index error
// semantics. The result slice is returned even on error; slots whose cells
// failed hold the zero value (or whatever fn returned alongside its error).
func MapErr[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	out := make([]T, n)
	err := ForErr(workers, n, func(i int) error {
		v, err := fn(i)
		out[i] = v
		return err
	})
	return out, err
}
