// Package par is the repository's shared worker-pool utility: a bounded
// parallel-for over an index space, built for deterministic fan-out.
//
// Every concurrent hot path in this codebase (experiment replication cells,
// Dijkstra sources in the topology kernels, portfolio members) follows the
// same discipline: the work is split into independent index-addressed cells,
// each worker writes only to the cell it owns (a pre-sized slice element),
// and all aggregation happens sequentially after the pool drains. Under that
// discipline parallelism changes wall-clock time only, never output, so a
// run at workers=N is bit-identical to workers=1.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers normalizes a worker-count knob: any value <= 0 means "use every
// core" (runtime.GOMAXPROCS(0)); positive values pass through. 1 requests
// fully sequential execution.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// For runs fn(i) for every i in [0, n) on at most workers goroutines and
// returns when all calls have completed. workers <= 1 (or n <= 1) executes
// sequentially on the calling goroutine with no synchronization overhead.
//
// Determinism contract: fn must write only to state owned by index i
// (e.g. out[i]); it must not append to shared slices, fold into shared
// accumulators, or depend on the order other indices run in.
func For(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 || n == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// ForErr is For over a fallible body. Every cell runs regardless of other
// cells' failures (no cancellation, so partial results land in their slots),
// and the returned error is the one from the lowest failing index — the same
// error a sequential loop that collected all failures would report — keeping
// error output independent of goroutine scheduling.
func ForErr(workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	errs := make([]error, n)
	For(workers, n, func(i int) { errs[i] = fn(i) })
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Map applies fn to every index in [0, n) on at most workers goroutines and
// returns the results in index order. It is For with the pre-sized output
// slice managed for the caller.
func Map[T any](workers, n int, fn func(i int) T) []T {
	if n <= 0 {
		return nil
	}
	out := make([]T, n)
	For(workers, n, func(i int) { out[i] = fn(i) })
	return out
}

// MapErr is Map over a fallible body, with ForErr's lowest-index error
// semantics. The result slice is returned even on error; slots whose cells
// failed hold the zero value (or whatever fn returned alongside its error).
func MapErr[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	out := make([]T, n)
	err := ForErr(workers, n, func(i int) error {
		v, err := fn(i)
		out[i] = v
		return err
	})
	return out, err
}
