package obs

import "strings"

// Span is one timed phase of a traced operation, in simulated or wall
// time (the emitter decides; this repository's cluster simulator uses
// virtual milliseconds). A trace is a root span (Parent == 0) plus child
// spans sharing its Trace ID — the cluster simulator emits one trace per
// sampled request with children for uplink, queue wait, service and
// downlink, so every request's latency is attributable phase by phase.
type Span struct {
	// Trace groups the spans of one traced operation.
	Trace TraceID
	// ID identifies this span within its trace.
	ID SpanID
	// Parent is the enclosing span's ID; 0 marks the root span.
	Parent SpanID
	// Name labels the phase ("request", "uplink", "queue", ...).
	Name string
	// StartMs and EndMs bound the span (EndMs >= StartMs).
	StartMs float64
	EndMs   float64
	// Attrs carries typed span attributes; values must be
	// JSON-serializable (strings, bools, finite numbers).
	Attrs map[string]interface{}
}

// TraceID identifies one trace (one traced request).
type TraceID uint64

// SpanID identifies a span within a trace.
type SpanID uint64

// DurationMs returns the span's length.
func (sp Span) DurationMs() float64 { return sp.EndMs - sp.StartMs }

// Event renders the span as a Sink event of kind "span": trace, span,
// parent (omitted for roots), name, start_ms/end_ms/dur_ms, and each
// attribute under an "attr."-prefixed key. The field set is fixed and
// JSONL encoding sorts keys, so a deterministic span sequence serializes
// byte-identically.
func (sp Span) Event() Event {
	fields := make(map[string]interface{}, 6+len(sp.Attrs))
	fields["trace"] = uint64(sp.Trace)
	fields["span"] = uint64(sp.ID)
	fields["name"] = sp.Name
	fields["start_ms"] = sp.StartMs
	fields["end_ms"] = sp.EndMs
	fields["dur_ms"] = sp.EndMs - sp.StartMs
	if sp.Parent != 0 {
		fields["parent"] = uint64(sp.Parent)
	}
	for k, v := range sp.Attrs {
		fields["attr."+k] = v
	}
	return Event{Kind: "span", Fields: fields}
}

// EmitSpan sends sp into s, tolerating a nil sink.
func EmitSpan(s Sink, sp Span) {
	if s == nil {
		return
	}
	s.Emit(sp.Event())
}

// SpanFromEvent inverts Span.Event: it decodes a "span" event (live or
// read back from a JSONL stream) into a Span. ok is false for any other
// kind or when a required field is missing/mistyped. Attribute values
// keep their decoded representation (json.Number from streams); read
// them through AttrNum/AttrStr.
func SpanFromEvent(e Event) (Span, bool) {
	if e.Kind != "span" {
		return Span{}, false
	}
	tr, ok := e.Int("trace")
	if !ok {
		return Span{}, false
	}
	id, ok := e.Int("span")
	if !ok {
		return Span{}, false
	}
	name, ok := e.Str("name")
	if !ok {
		return Span{}, false
	}
	start, ok := e.Num("start_ms")
	if !ok {
		return Span{}, false
	}
	end, ok := e.Num("end_ms")
	if !ok {
		return Span{}, false
	}
	sp := Span{Trace: TraceID(tr), ID: SpanID(id), Name: name, StartMs: start, EndMs: end}
	if p, ok := e.Int("parent"); ok {
		sp.Parent = SpanID(p)
	}
	for k, v := range e.Fields {
		if strings.HasPrefix(k, "attr.") {
			if sp.Attrs == nil {
				sp.Attrs = make(map[string]interface{}, 4)
			}
			sp.Attrs[strings.TrimPrefix(k, "attr.")] = v
		}
	}
	return sp, true
}

// SpansFromEvents extracts every decodable span from an event stream,
// in stream order.
func SpansFromEvents(events []Event) []Span {
	var out []Span
	for _, e := range events {
		if sp, ok := SpanFromEvent(e); ok {
			out = append(out, sp)
		}
	}
	return out
}

// AttrNum returns a span attribute as a float64 (coercing json.Number
// from decoded streams and native numerics from live spans).
func (sp Span) AttrNum(key string) (float64, bool) { return numValue(sp.Attrs[key]) }

// AttrStr returns a span attribute as a string.
func (sp Span) AttrStr(key string) (string, bool) {
	v, ok := sp.Attrs[key].(string)
	return v, ok
}
