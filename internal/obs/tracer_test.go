package obs

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

func TestWallClockMonotonic(t *testing.T) {
	c := WallClock()
	prev := c.NowMs()
	for i := 0; i < 100; i++ {
		now := c.NowMs()
		if now < prev {
			t.Fatalf("wall clock went backwards: %v -> %v", prev, now)
		}
		prev = now
	}
}

func TestManualClock(t *testing.T) {
	c := NewManualClock(10)
	if got := c.NowMs(); got != 10 {
		t.Fatalf("NowMs = %v, want 10", got)
	}
	c.Advance(5.5)
	if got := c.NowMs(); got != 15.5 {
		t.Fatalf("NowMs = %v, want 15.5", got)
	}
	c.Set(100)
	if got := c.NowMs(); got != 100 {
		t.Fatalf("NowMs = %v, want 100", got)
	}
}

func TestTracerPhasesNestAndMeasure(t *testing.T) {
	clock := NewManualClock(0)
	var col SpanCollector
	tr := NewTracer(&col, clock)

	root := tr.Root("run")
	clock.Advance(1)
	build := root.Child("build")
	clock.Advance(7)
	build.SetAttr("edges", 6)
	build.End()
	solve := root.Child("solve")
	clock.Advance(2)
	solve.End()
	clock.Advance(0.5)
	root.End()

	spans := col.Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	// Children end before the root, so the root span arrives last.
	byName := map[string]Span{}
	for _, sp := range spans {
		byName[sp.Name] = sp
	}
	rootSp := byName["run"]
	if rootSp.Parent != 0 || rootSp.StartMs != 0 || rootSp.EndMs != 10.5 {
		t.Fatalf("root span wrong: %+v", rootSp)
	}
	b := byName["build"]
	if b.Parent != rootSp.ID || b.StartMs != 1 || b.EndMs != 8 {
		t.Fatalf("build span wrong: %+v", b)
	}
	if v, ok := b.AttrNum("edges"); !ok || v != 6 {
		t.Fatalf("build attr edges = %v %v, want 6", v, ok)
	}
	s := byName["solve"]
	if s.Parent != rootSp.ID || s.StartMs != 8 || s.EndMs != 10 {
		t.Fatalf("solve span wrong: %+v", s)
	}
	if rootSp.Trace != PipelineTrace || b.Trace != PipelineTrace {
		t.Fatalf("pipeline spans must share trace %d", PipelineTrace)
	}
}

func TestPhaseEndIdempotentAndLateAttrsDropped(t *testing.T) {
	clock := NewManualClock(0)
	var col SpanCollector
	tr := NewTracer(&col, clock)
	p := tr.Root("x")
	p.End()
	p.SetAttr("late", true)
	p.End()
	spans := col.Spans()
	if len(spans) != 1 {
		t.Fatalf("End not idempotent: %d spans", len(spans))
	}
	if _, ok := spans[0].Attrs["late"]; ok {
		t.Fatal("attr set after End leaked into span")
	}
}

func TestNilTracerAndPhaseAreInert(t *testing.T) {
	var tr *Tracer
	if tr.NowMs() != 0 {
		t.Fatal("nil tracer NowMs != 0")
	}
	p := tr.Root("x")
	if p != nil {
		t.Fatal("nil tracer handed out a non-nil phase")
	}
	// All of these must be safe no-ops.
	c := p.Child("y")
	if c != nil {
		t.Fatal("nil phase handed out a non-nil child")
	}
	p.SetAttr("k", 1)
	p.Span("shard", 0, 1, nil)
	p.End()
	if p.Tracer() != nil || p.NowMs() != 0 {
		t.Fatal("nil phase must report a nil tracer and zero clock")
	}
	if NewTracer(nil, nil) != nil {
		t.Fatal("NewTracer(nil sink) must return nil (tracing off)")
	}
}

func TestNilTracingAddsZeroAllocations(t *testing.T) {
	var root *Phase
	allocs := testing.AllocsPerRun(100, func() {
		ph := root.Child("phase")
		ph.SetAttr("k", "v")
		ph.Span("shard", 0, 1, nil)
		ph.End()
	})
	if allocs != 0 {
		t.Fatalf("nil-phase tracing allocated %.0f times per op, want 0", allocs)
	}
}

func TestConcurrentChildren(t *testing.T) {
	var col SpanCollector
	tr := NewTracer(&col, WallClock())
	root := tr.Root("run")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				ph := root.Child("work")
				ph.SetAttr("worker", w)
				ph.End()
			}
		}(w)
	}
	wg.Wait()
	root.End()
	spans := col.Spans()
	if len(spans) != 8*50+1 {
		t.Fatalf("got %d spans, want %d", len(spans), 8*50+1)
	}
	seen := map[SpanID]bool{}
	for _, sp := range spans {
		if seen[sp.ID] {
			t.Fatalf("duplicate span ID %d", sp.ID)
		}
		seen[sp.ID] = true
	}
}

func TestSpanEventRoundTripThroughJSONL(t *testing.T) {
	in := Span{
		Trace: PipelineTrace, ID: 7, Parent: 3, Name: "delay-matrix",
		StartMs: 1.25, EndMs: 9.75,
		Attrs: map[string]interface{}{"worker": 2, "items": 120, "busy_ms": 8.5, "mode": "dijkstra"},
	}
	var buf bytes.Buffer
	sink := NewJSONL(&buf)
	EmitSpan(sink, in)
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	events, err := ReadEventStream(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 {
		t.Fatalf("got %d events", len(events))
	}
	out, ok := SpanFromEvent(events[0])
	if !ok {
		t.Fatal("SpanFromEvent failed on a span event")
	}
	if out.Trace != in.Trace || out.ID != in.ID || out.Parent != in.Parent ||
		out.Name != in.Name || out.StartMs != in.StartMs || out.EndMs != in.EndMs {
		t.Fatalf("round trip mismatch: %+v", out)
	}
	if v, ok := out.AttrNum("worker"); !ok || v != 2 {
		t.Fatalf("attr worker = %v %v", v, ok)
	}
	if v, ok := out.AttrNum("busy_ms"); !ok || v != 8.5 {
		t.Fatalf("attr busy_ms = %v %v", v, ok)
	}
	if v, ok := out.AttrStr("mode"); !ok || v != "dijkstra" {
		t.Fatalf("attr mode = %v %v", v, ok)
	}
	if _, ok := SpanFromEvent(Event{Kind: "iter"}); ok {
		t.Fatal("SpanFromEvent accepted a non-span event")
	}
	if got := SpansFromEvents(events); len(got) != 1 || got[0].Name != "delay-matrix" {
		t.Fatalf("SpansFromEvents = %+v", got)
	}
}

func TestRetroactiveChildSpans(t *testing.T) {
	clock := NewManualClock(0)
	var col SpanCollector
	tr := NewTracer(&col, clock)
	root := tr.Root("delay-matrix")
	for w := 0; w < 3; w++ {
		root.Span("shard", float64(w), float64(w)+2, map[string]interface{}{"worker": w, "items": 10 * (w + 1)})
	}
	clock.Advance(5)
	root.End()
	spans := col.Spans()
	if len(spans) != 4 {
		t.Fatalf("got %d spans", len(spans))
	}
	for i := 0; i < 3; i++ {
		sp := spans[i]
		if sp.Name != "shard" || sp.Parent == 0 {
			t.Fatalf("shard span %d wrong: %+v", i, sp)
		}
		if sp.StartMs != float64(i) || sp.EndMs != float64(i)+2 {
			t.Fatalf("shard span %d timing wrong: %+v", i, sp)
		}
	}
	ids := map[SpanID]bool{}
	for _, sp := range spans {
		if ids[sp.ID] {
			t.Fatal(fmt.Sprintf("duplicate span id %d", sp.ID))
		}
		ids[sp.ID] = true
	}
}
