package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"

	"taccc/internal/par"
)

func TestCounterGaugeNilSafety(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter should read 0")
	}
	var g *Gauge
	g.Set(3)
	g.Add(1)
	if g.Value() != 0 {
		t.Fatal("nil gauge should read 0")
	}
	var h *Histogram
	h.Observe(1)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil histogram should read 0")
	}
	var r *Registry
	r.Counter("x").Inc()
	r.Gauge("y").Set(1)
	r.Histogram("z", nil).Observe(1)
	if s := r.Snapshot(); s.Counters != nil || s.Gauges != nil || s.Histograms != nil {
		t.Fatalf("nil registry snapshot not empty: %+v", s)
	}
}

func TestRegistryConcurrentUnderPar(t *testing.T) {
	r := NewRegistry()
	const n = 1000
	par.For(8, n, func(i int) {
		r.Counter("hits").Inc()
		r.Gauge("depth").Add(1)
		r.Histogram("lat", DefaultLatencyBucketsMs()).Observe(float64(i % 300))
	})
	if got := r.Counter("hits").Value(); got != n {
		t.Fatalf("counter = %d, want %d", got, n)
	}
	if got := r.Gauge("depth").Value(); got != n {
		t.Fatalf("gauge = %v, want %d", got, n)
	}
	h := r.Histogram("lat", nil)
	if h.Count() != n {
		t.Fatalf("histogram count = %d, want %d", h.Count(), n)
	}
}

func TestHistogramBucketsAndQuantile(t *testing.T) {
	h := NewHistogram([]float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 50, 500} {
		h.Observe(v)
	}
	s := h.snapshot()
	want := []int64{2, 1, 1, 1} // <=1: {0.5, 1}; <=10: {5}; <=100: {50}; overflow: {500}
	for i, c := range want {
		if s.Counts[i] != c {
			t.Fatalf("bucket %d = %d, want %d (%+v)", i, s.Counts[i], c, s)
		}
	}
	if s.Count != 5 || s.Sum != 556.5 {
		t.Fatalf("count/sum = %d/%v", s.Count, s.Sum)
	}
	if q := s.Quantile(0.5); q != 10 {
		t.Fatalf("p50 = %v, want 10", q)
	}
	if q := s.Quantile(1); !math.IsInf(q, 1) {
		t.Fatalf("p100 = %v, want +Inf (overflow bucket)", q)
	}
	if q := (HistogramSnapshot{}).Quantile(0.5); q != 0 {
		t.Fatalf("empty quantile = %v, want 0", q)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("requests.sent").Add(7)
	r.Gauge("edge_0_queue_depth").Set(3)
	r.Histogram("latency_ms", []float64{10, 100}).Observe(42)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var s Snapshot
	if err := json.Unmarshal(buf.Bytes(), &s); err != nil {
		t.Fatalf("snapshot not parseable: %v\n%s", err, buf.String())
	}
	if s.Counters["requests.sent"] != 7 {
		t.Fatalf("counter lost: %+v", s)
	}
	if s.Gauges["edge_0_queue_depth"] != 3 {
		t.Fatalf("gauge lost: %+v", s)
	}
	h := s.Histograms["latency_ms"]
	if h.Count != 1 || h.Sum != 42 || h.Mean != 42 {
		t.Fatalf("histogram lost: %+v", h)
	}
}

func TestJSONLSinkConcurrent(t *testing.T) {
	var buf bytes.Buffer
	s := NewJSONL(&buf)
	const n = 200
	par.For(8, n, func(i int) {
		Emit(s, "iter", map[string]interface{}{"iter": i, "algo": "qlearning"})
	})
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != n || s.N() != n {
		t.Fatalf("got %d lines / N=%d, want %d", len(lines), s.N(), n)
	}
	seen := make(map[float64]bool)
	for _, line := range lines {
		var m map[string]interface{}
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("unparseable line %q: %v", line, err)
		}
		if m["kind"] != "iter" || m["algo"] != "qlearning" {
			t.Fatalf("bad line: %q", line)
		}
		seen[m["iter"].(float64)] = true
	}
	if len(seen) != n {
		t.Fatalf("expected %d distinct iters, got %d", n, len(seen))
	}
}

func TestNilSinksAreNoOps(t *testing.T) {
	Emit(nil, "x", nil) // must not panic
	EmitIter(nil, "a", 0, 1, true)
	if MultiSink() != nil || MultiSink(nil, nil) != nil {
		t.Fatal("empty MultiSink should be nil")
	}
	if MultiProgress() != nil || MultiProgress(nil) != nil {
		t.Fatal("empty MultiProgress should be nil")
	}
	if EventProgress(nil) != nil || MetricsProgress(nil) != nil {
		t.Fatal("adapters over nil should be nil")
	}
}

func TestEventProgressSkipsInfiniteCost(t *testing.T) {
	var events []Event
	var mu sync.Mutex
	sink := SinkFunc(func(e Event) {
		mu.Lock()
		events = append(events, e)
		mu.Unlock()
	})
	p := EventProgress(sink)
	EmitIter(p, "qlearning", 0, math.Inf(1), false)
	EmitIter(p, "qlearning", 1, 42.5, true)
	if len(events) != 2 {
		t.Fatalf("got %d events", len(events))
	}
	if _, ok := events[0].Fields["best_cost_ms"]; ok {
		t.Fatal("infeasible event should omit best_cost_ms")
	}
	if events[1].Fields["best_cost_ms"] != 42.5 {
		t.Fatalf("best_cost_ms lost: %+v", events[1])
	}
	// The JSONL encoding of both events must succeed (no Inf leaks).
	var buf bytes.Buffer
	j := NewJSONL(&buf)
	for _, e := range events {
		j.Emit(e)
	}
	if err := j.Flush(); err != nil {
		t.Fatal(err)
	}
}

func TestCountEvents(t *testing.T) {
	r := NewRegistry()
	var forwarded int
	s := CountEvents(r, SinkFunc(func(Event) { forwarded++ }))
	s.Emit(Event{Kind: "cell"})
	s.Emit(Event{Kind: "cell"})
	s.Emit(Event{Kind: "spec-done"})
	if got := r.Counter("events.cell").Value(); got != 2 {
		t.Fatalf("events.cell = %d", got)
	}
	if got := r.Counter("events.spec-done").Value(); got != 1 {
		t.Fatalf("events.spec-done = %d", got)
	}
	if forwarded != 3 {
		t.Fatalf("forwarded = %d", forwarded)
	}
}

func TestProgressWriterPrintsImprovementsOnly(t *testing.T) {
	var buf bytes.Buffer
	p := ProgressWriter(&buf)
	EmitIter(p, "tabu", 0, 100, true)
	EmitIter(p, "tabu", 1, 100, true) // no improvement: silent
	EmitIter(p, "tabu", 2, 90, true)
	out := buf.String()
	if strings.Count(out, "\n") != 2 {
		t.Fatalf("want 2 lines, got:\n%s", out)
	}
	if !strings.Contains(out, "iter 0") || !strings.Contains(out, "iter 2") {
		t.Fatalf("unexpected lines:\n%s", out)
	}
}

func TestProfileHelpers(t *testing.T) {
	dir := t.TempDir()
	stop, err := StartCPUProfile(dir + "/cpu.prof")
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	if err := WriteHeapProfile(dir + "/heap.prof"); err != nil {
		t.Fatal(err)
	}
}
