package obs

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestStreamReaderRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONL(&buf)
	sink.Emit(Event{Kind: "iter", Fields: map[string]interface{}{
		"algo": "tabu", "iter": 0, "feasible": false,
	}})
	sink.Emit(Event{Kind: "iter", Fields: map[string]interface{}{
		"algo": "tabu", "iter": 1, "feasible": true, "best_cost_ms": 12.5,
	}})
	sink.Emit(Event{Kind: "cell", Fields: map[string]interface{}{
		"algo": "greedy", "rep": 3, "runtime_ms": 0.25, "feasible": true,
	}})
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	stored := buf.Bytes()

	events, err := ReadEventStream(bytes.NewReader(stored))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 3 {
		t.Fatalf("decoded %d events, want 3", len(events))
	}
	if events[0].Kind != "iter" || events[2].Kind != "cell" {
		t.Fatalf("kinds = %q, %q", events[0].Kind, events[2].Kind)
	}

	// Typed accessors.
	if algo, ok := events[1].Str("algo"); !ok || algo != "tabu" {
		t.Fatalf("Str(algo) = %q, %v", algo, ok)
	}
	if c, ok := events[1].Num("best_cost_ms"); !ok || c != 12.5 {
		t.Fatalf("Num(best_cost_ms) = %v, %v", c, ok)
	}
	if r, ok := events[2].Int("rep"); !ok || r != 3 {
		t.Fatalf("Int(rep) = %v, %v", r, ok)
	}
	if f, ok := events[2].Bool("feasible"); !ok || !f {
		t.Fatalf("Bool(feasible) = %v, %v", f, ok)
	}

	// Re-encoding a decoded stream must reproduce the stored bytes: this
	// is what lets run archives be rewritten byte-identically.
	var rewrite bytes.Buffer
	for _, e := range events {
		line, err := EncodeEventLine(e)
		if err != nil {
			t.Fatal(err)
		}
		rewrite.Write(line)
	}
	if !bytes.Equal(stored, rewrite.Bytes()) {
		t.Fatalf("re-encoded stream differs:\nstored:  %q\nrewrite: %q", stored, rewrite.Bytes())
	}
}

func TestStreamReaderTypedIter(t *testing.T) {
	stream := `{"algo":"qlearning","feasible":false,"iter":0,"kind":"iter"}
{"algo":"qlearning","best_cost_ms":41.25,"feasible":true,"iter":1,"kind":"iter"}
{"kind":"cell","algo":"greedy"}
`
	events, err := ReadEventStream(strings.NewReader(stream))
	if err != nil {
		t.Fatal(err)
	}
	it, ok := events[0].Iter()
	if !ok || it.Algo != "qlearning" || it.Iter != 0 || it.Feasible {
		t.Fatalf("Iter() = %+v, %v", it, ok)
	}
	if !math.IsInf(it.BestCost, 1) {
		t.Fatalf("infeasible iter BestCost = %v, want +Inf", it.BestCost)
	}
	it, ok = events[1].Iter()
	if !ok || !it.Feasible || it.BestCost != 41.25 || it.Iter != 1 {
		t.Fatalf("Iter() = %+v, %v", it, ok)
	}
	if _, ok := events[2].Iter(); ok {
		t.Fatal("cell event decoded as iter")
	}
}

func TestStreamReaderLatchesFirstError(t *testing.T) {
	stream := `{"kind":"iter","iter":0}
{"kind":"iter","iter":1}
not json at all
{"kind":"iter","iter":3}
`
	sr := NewStreamReader(strings.NewReader(stream))
	n := 0
	for {
		_, ok := sr.Next()
		if !ok {
			break
		}
		n++
	}
	if n != 2 {
		t.Fatalf("decoded %d events before the bad record, want 2", n)
	}
	err := sr.Err()
	if err == nil {
		t.Fatal("malformed record did not latch an error")
	}
	if !strings.Contains(err.Error(), "record 3") {
		t.Fatalf("error does not locate the bad record: %v", err)
	}
	// The error stays latched: further Next calls keep failing without
	// resuming past the bad record.
	if _, ok := sr.Next(); ok {
		t.Fatal("Next succeeded after a latched error")
	}
}

func TestStreamReaderMissingKind(t *testing.T) {
	_, err := ReadEventStream(strings.NewReader(`{"algo":"tabu","iter":0}` + "\n"))
	if err == nil || !strings.Contains(err.Error(), "kind") {
		t.Fatalf("missing kind not reported: %v", err)
	}
}

func TestStreamReaderTruncatedRecord(t *testing.T) {
	stream := `{"kind":"iter","iter":0}
{"kind":"iter","it`
	events, err := ReadEventStream(strings.NewReader(stream))
	if len(events) != 1 {
		t.Fatalf("decoded %d events, want 1", len(events))
	}
	if err == nil {
		t.Fatal("truncated record did not error")
	}
}
