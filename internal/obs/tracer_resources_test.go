package obs

import "testing"

// fakeSource steps through a fixed snapshot script, one reading per
// ResourceSnapshot call, holding the last one once the script runs out.
type fakeSource struct {
	script []ResourceSnapshot
	calls  int
}

func (f *fakeSource) ResourceSnapshot() ResourceSnapshot {
	i := f.calls
	if i >= len(f.script) {
		i = len(f.script) - 1
	}
	f.calls++
	return f.script[i]
}

func TestPhaseResourceAttrs(t *testing.T) {
	clock := NewManualClock(0)
	var col SpanCollector
	tr := NewTracer(&col, clock)
	tr.SetResources(&fakeSource{script: []ResourceSnapshot{
		{HeapAllocBytes: 1000, Mallocs: 10, GCCycles: 1, GCPauseMs: 0.5},
		{HeapAllocBytes: 1800, Mallocs: 25, GCCycles: 3, GCPauseMs: 0.875},
	}})

	p := tr.Root("solve")
	clock.Advance(4)
	p.End()

	spans := col.Spans()
	if len(spans) != 1 {
		t.Fatalf("got %d spans, want 1", len(spans))
	}
	sp := spans[0]
	want := map[string]float64{
		"heap_begin_bytes": 1000,
		"heap_end_bytes":   1800,
		"heap_delta_bytes": 800,
		"allocs":           15,
		"gc_cycles":        2,
		"gc_pause_ms":      0.375,
	}
	for key, wv := range want {
		if got, ok := sp.AttrNum(key); !ok || got != wv {
			t.Errorf("attr %s = %v (ok=%v), want %v", key, got, ok, wv)
		}
	}
}

// Heap shrinkage must survive as a negative delta — the delta attr is
// signed even though the snapshots are unsigned.
func TestPhaseResourceAttrsNegativeDelta(t *testing.T) {
	clock := NewManualClock(0)
	var col SpanCollector
	tr := NewTracer(&col, clock)
	tr.SetResources(&fakeSource{script: []ResourceSnapshot{
		{HeapAllocBytes: 5000, Mallocs: 10},
		{HeapAllocBytes: 2000, Mallocs: 12},
	}})
	p := tr.Root("gc-heavy")
	p.End()
	sp := col.Spans()[0]
	if got, ok := sp.AttrNum("heap_delta_bytes"); !ok || got != -3000 {
		t.Fatalf("heap_delta_bytes = %v (ok=%v), want -3000", got, ok)
	}
}

func TestPhaseResourceAttrsOffByDefault(t *testing.T) {
	clock := NewManualClock(0)
	var col SpanCollector
	tr := NewTracer(&col, clock)

	p := tr.Root("solve")
	p.SetAttr("iot", 80)
	p.End()

	sp := col.Spans()[0]
	if _, ok := sp.AttrNum("heap_begin_bytes"); ok {
		t.Fatal("phase carries resource attrs without a ResourceSource")
	}
	if v, ok := sp.AttrNum("iot"); !ok || v != 80 {
		t.Fatalf("ordinary attrs lost: iot = %v (ok=%v)", v, ok)
	}
}

func TestSetResourcesNilSafe(t *testing.T) {
	var nilTr *Tracer
	nilTr.SetResources(&fakeSource{script: []ResourceSnapshot{{}}})

	clock := NewManualClock(0)
	var col SpanCollector
	tr := NewTracer(&col, clock)
	tr.SetResources(nil) // nil source leaves tracing untouched
	p := tr.Root("solve")
	p.End()
	if _, ok := col.Spans()[0].AttrNum("heap_begin_bytes"); ok {
		t.Fatal("nil ResourceSource still produced resource attrs")
	}
}

// Phases started before SetResources carry no resource attributes, as
// documented — attachment is not retroactive.
func TestSetResourcesNotRetroactive(t *testing.T) {
	clock := NewManualClock(0)
	var col SpanCollector
	tr := NewTracer(&col, clock)
	early := tr.Root("early")
	tr.SetResources(&fakeSource{script: []ResourceSnapshot{{HeapAllocBytes: 7}}})
	late := tr.Root("late")
	early.End()
	late.End()

	byName := map[string]Span{}
	for _, sp := range col.Spans() {
		byName[sp.Name] = sp
	}
	if _, ok := byName["early"].AttrNum("heap_begin_bytes"); ok {
		t.Fatal("pre-attachment phase gained resource attrs")
	}
	if _, ok := byName["late"].AttrNum("heap_begin_bytes"); !ok {
		t.Fatal("post-attachment phase missing resource attrs")
	}
}
