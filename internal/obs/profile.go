package obs

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartCPUProfile begins writing a CPU profile to path and returns a stop
// function that ends profiling and closes the file. Exactly one CPU
// profile can be active per process (a pprof constraint).
func StartCPUProfile(path string) (stop func() error, err error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("obs: cpu profile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("obs: cpu profile: %w", err)
	}
	return func() error {
		pprof.StopCPUProfile()
		if err := f.Close(); err != nil {
			return fmt.Errorf("obs: cpu profile: %w", err)
		}
		return nil
	}, nil
}

// WriteHeapProfile writes a heap profile to path, running the garbage
// collector first so the profile reflects live allocations.
func WriteHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: heap profile: %w", err)
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		return fmt.Errorf("obs: heap profile: %w", err)
	}
	return nil
}
