package obs

import "time"

// Clock is the sanctioned monotonic time source for wall-clock
// instrumentation. Deterministic packages (internal/assign, topology,
// experiment, ...) must not read the wall clock directly — taclint's
// detrand analyzer enforces that — but measuring how long a phase took
// is legitimately nondeterministic work, so this interface is the single
// doorway: timing flows through a Clock, lands in observational outputs
// (spans, elapsed fields) that are excluded from the byte-identical
// determinism set, and never feeds back into results.
//
// NowMs returns milliseconds elapsed on a monotonic clock from an
// arbitrary fixed epoch. Values from the same Clock are comparable;
// values from different Clocks are not.
type Clock interface {
	NowMs() float64
}

// processEpoch anchors WallClock readings so every consumer in the
// process shares one comparable timeline (spans from the CLI, the
// experiment suite and solver phases interleave correctly).
var processEpoch = time.Now() //lint:allow detrand obs.Clock is the sanctioned wall-clock entry point; this epoch never reaches deterministic outputs

type wallClock struct{}

func (wallClock) NowMs() float64 {
	return float64(time.Since(processEpoch)) / float64(time.Millisecond) //lint:allow detrand the one sanctioned wall-clock read behind obs.Clock
}

// WallClock returns the process-wide monotonic wall clock. All callers
// share one epoch, so readings are mutually comparable.
func WallClock() Clock { return wallClock{} }

// ManualClock is a hand-advanced Clock for tests: deterministic span
// timings without sleeping. The zero value starts at 0 ms. Not safe for
// concurrent use with Advance/Set; concurrent NowMs alone is fine only
// if the clock is no longer being advanced.
type ManualClock struct {
	ms float64
}

// NewManualClock returns a ManualClock reading startMs.
func NewManualClock(startMs float64) *ManualClock { return &ManualClock{ms: startMs} }

// NowMs implements Clock.
func (c *ManualClock) NowMs() float64 { return c.ms }

// Advance moves the clock forward by d milliseconds.
func (c *ManualClock) Advance(d float64) { c.ms += d }

// Set jumps the clock to t milliseconds.
func (c *ManualClock) Set(t float64) { c.ms = t }
