package obs

// ResourceSnapshot is a point-in-time reading of the process's runtime
// resource state: heap bytes, cumulative allocation and GC totals, and
// the live goroutine count. It is the unit of exchange between the
// sysmon sampler (internal/obs/sysmon, the one sanctioned reader of
// runtime memory statistics) and the tracing plane: a Tracer with a
// ResourceSource attached snapshots resources at every phase boundary,
// so spans carry begin/end resource attributes and tacreport can
// attribute heap growth, allocations and GC pauses per pipeline phase.
//
// Cumulative fields (TotalAllocBytes, Mallocs, GCCycles, GCPauseMs)
// only grow; deltas between two snapshots from the same process are
// meaningful. Instantaneous fields (HeapInuseBytes, HeapAllocBytes,
// Goroutines) are levels.
type ResourceSnapshot struct {
	// HeapInuseBytes is the heap memory in in-use spans.
	HeapInuseBytes uint64
	// HeapAllocBytes is the bytes of allocated (live + not yet swept)
	// heap objects.
	HeapAllocBytes uint64
	// TotalAllocBytes is the cumulative bytes allocated since process
	// start.
	TotalAllocBytes uint64
	// Mallocs is the cumulative count of heap objects allocated.
	Mallocs uint64
	// GCCycles is the number of completed GC cycles.
	GCCycles uint64
	// GCPauseMs is the cumulative stop-the-world pause time in
	// milliseconds.
	GCPauseMs float64
	// Goroutines is the live goroutine count.
	Goroutines int
}

// ResourceSource provides resource snapshots on demand. The sysmon
// sampler implements it; the interface lives here so the tracer can
// consume it without obs importing obs/sysmon. Implementations must be
// safe for concurrent use — phase boundaries fire from worker
// goroutines.
type ResourceSource interface {
	ResourceSnapshot() ResourceSnapshot
}
