package sysmon

import (
	"bytes"
	"encoding/json"
	"runtime"
	"strings"
	"testing"
	"time"

	"taccc/internal/obs"
)

func TestSampleEventRoundTrip(t *testing.T) {
	in := Sample{
		TMs: 12.5, UnixMs: 1700000000123,
		HeapInuseBytes: 1 << 20, HeapAllocBytes: 900 << 10,
		TotalAllocBytes: 5 << 20, Mallocs: 4321,
		AllocBytesPerS: 1024.5, GCCycles: 7, GCPauseMs: 0.25,
		Goroutines: 9, RSSBytes: 30 << 20,
	}
	out, ok := SampleFromEvent(in.Event())
	if !ok {
		t.Fatal("SampleFromEvent rejected its own Event")
	}
	if out != in {
		t.Fatalf("round trip changed the sample:\nin:  %+v\nout: %+v", in, out)
	}
	if _, ok := SampleFromEvent(obs.Event{Kind: "iter"}); ok {
		t.Fatal("SampleFromEvent accepted a non-res event")
	}
	if _, ok := SampleFromEvent(obs.Event{Kind: EventKind}); ok {
		t.Fatal("SampleFromEvent accepted an empty res event")
	}
}

// The JSONL plane decodes numbers as json.Number; the decoder must cope.
func TestSampleFromDecodedStream(t *testing.T) {
	var buf bytes.Buffer
	sink := obs.NewJSONL(&buf)
	in := Sample{TMs: 3, UnixMs: 99, HeapInuseBytes: 10, HeapAllocBytes: 8,
		TotalAllocBytes: 100, Mallocs: 5, AllocBytesPerS: 2.5, GCCycles: 1,
		GCPauseMs: 0.125, Goroutines: 4, RSSBytes: 0}
	sink.Emit(in.Event())
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	events, err := obs.ReadEventStream(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	samples := SamplesFromEvents(events)
	if len(samples) != 1 || samples[0] != in {
		t.Fatalf("decoded samples = %+v, want [%+v]", samples, in)
	}
}

func TestReadSnapshotIsLive(t *testing.T) {
	snap := ReadSnapshot()
	if snap.HeapAllocBytes == 0 || snap.TotalAllocBytes == 0 || snap.Mallocs == 0 {
		t.Fatalf("snapshot has zero heap figures: %+v", snap)
	}
	if snap.Goroutines < 1 {
		t.Fatalf("goroutines = %d, want >= 1", snap.Goroutines)
	}
}

func TestReadRSSOnLinux(t *testing.T) {
	if runtime.GOOS != "linux" {
		t.Skip("RSS read is /proc-based")
	}
	if rss := readRSS(); rss == 0 {
		t.Fatal("readRSS() = 0 on linux")
	}
}

func TestSamplePublishesRegistryAndSink(t *testing.T) {
	clock := obs.NewManualClock(1000)
	reg := obs.NewRegistry()
	var col Collector
	s := New(Options{Clock: clock, Registry: reg, Sink: &col})

	first := s.Sample()
	if first.TMs != 1000 {
		t.Fatalf("first sample TMs = %v, want the manual clock's 1000", first.TMs)
	}
	if first.AllocBytesPerS != 0 {
		t.Fatalf("first sample alloc rate = %v, want 0 (no previous sample)", first.AllocBytesPerS)
	}
	clock.Advance(500)
	second := s.Sample()
	if second.AllocBytesPerS <= 0 {
		t.Fatalf("second sample alloc rate = %v, want > 0", second.AllocBytesPerS)
	}

	snap := reg.Snapshot()
	if snap.Counters["sysmon.samples_total"] != 2 {
		t.Fatalf("samples_total = %d, want 2", snap.Counters["sysmon.samples_total"])
	}
	if snap.Gauges["go.heap_alloc_bytes"] <= 0 || snap.Gauges["go.goroutines"] < 1 {
		t.Fatalf("gauges not published: %+v", snap.Gauges)
	}
	// The counters accumulate cumulative-total deltas, so after two
	// samples they equal the second sample's runtime totals.
	if got := uint64(snap.Counters["go.allocs_total"]); got != second.Mallocs {
		t.Fatalf("go.allocs_total = %d, want %d", got, second.Mallocs)
	}
	if got := len(col.Samples()); got != 2 {
		t.Fatalf("collector holds %d samples, want 2", got)
	}
}

func TestStartStopTicker(t *testing.T) {
	reg := obs.NewRegistry()
	var col Collector
	s := New(Options{Registry: reg, Sink: &col})
	s.Start(time.Millisecond)
	deadline := time.Now().Add(5 * time.Second)
	for len(col.Samples()) < 3 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	s.Stop()
	n := len(col.Samples())
	if n < 3 {
		t.Fatalf("sampler took %d samples in 5s at 1ms interval", n)
	}
	if reg.Snapshot().Gauges["sysmon.interval_ms"] != 1 {
		t.Fatal("interval gauge not published")
	}
	// Stopped means stopped: no further samples arrive.
	time.Sleep(5 * time.Millisecond)
	if got := len(col.Samples()); got != n {
		t.Fatalf("samples kept arriving after Stop: %d -> %d", n, got)
	}
	s.Stop() // idempotent
}

func TestDetachSinkKeepsRegistryOnly(t *testing.T) {
	reg := obs.NewRegistry()
	var col Collector
	s := New(Options{Registry: reg, Sink: &col})
	s.Sample()
	s.DetachSink() // takes one final sample, then detaches
	n := len(col.Samples())
	if n != 2 {
		t.Fatalf("collector holds %d samples after detach, want 2", n)
	}
	s.Sample()
	if got := len(col.Samples()); got != n {
		t.Fatal("detached sink still receives samples")
	}
	if reg.Snapshot().Counters["sysmon.samples_total"] != 3 {
		t.Fatal("registry stopped updating after DetachSink")
	}
}

func TestNilSamplerNoOps(t *testing.T) {
	var s *Sampler
	s.Start(time.Millisecond)
	if got := s.Sample(); got != (Sample{}) {
		t.Fatalf("nil Sample() = %+v", got)
	}
	if got := s.ResourceSnapshot(); got != (obs.ResourceSnapshot{}) {
		t.Fatalf("nil ResourceSnapshot() = %+v", got)
	}
	s.DetachSink()
	s.Stop()
	var c *Collector
	c.Emit(obs.Event{Kind: EventKind})
	if c.Samples() != nil {
		t.Fatal("nil collector returned samples")
	}
}

// The off switch must cost nothing: driving a nil sampler through the
// whole method set allocates zero bytes.
func TestNilSamplerZeroAlloc(t *testing.T) {
	var s *Sampler
	allocs := testing.AllocsPerRun(100, func() {
		s.Sample()
		s.DetachSink()
		s.Stop()
	})
	if allocs != 0 {
		t.Fatalf("nil sampler allocates %.1f per run, want 0", allocs)
	}
}

func TestCounterSamples(t *testing.T) {
	samples := []Sample{
		{TMs: 1, HeapInuseBytes: 100, HeapAllocBytes: 80, Goroutines: 5, GCPauseMs: 0.5, RSSBytes: 0},
		{TMs: 2, HeapInuseBytes: 200, HeapAllocBytes: 160, Goroutines: 6, GCPauseMs: 0.75, RSSBytes: 1 << 20},
	}
	cs := CounterSamples(samples)
	// Three tracks for the RSS-less sample, four once RSS is known.
	if len(cs) != 7 {
		t.Fatalf("CounterSamples returned %d tracks, want 7", len(cs))
	}
	if cs[0].Name != "go.heap bytes" || cs[0].TsMs != 1 || cs[0].Values["inuse"] != 100 {
		t.Fatalf("heap track wrong: %+v", cs[0])
	}
	last := cs[len(cs)-1]
	if last.Name != "proc.rss bytes" || last.Values["rss"] != 1<<20 {
		t.Fatalf("rss track wrong: %+v", last)
	}
	for _, c := range cs {
		if _, err := json.Marshal(c.Values); err != nil {
			t.Fatalf("track %s values not serializable: %v", c.Name, err)
		}
	}
}

func TestWatchPeakSeesTransientHigh(t *testing.T) {
	stop := WatchPeak(time.Millisecond)
	// Hold a large allocation long enough for at least one tick.
	buf := make([]byte, 16<<20)
	time.Sleep(10 * time.Millisecond)
	for i := range buf {
		buf[i] = byte(i)
	}
	peak := stop()
	if peak < 16<<20 {
		t.Fatalf("watcher missed a 16 MB allocation: peak = %d", peak)
	}
	runtime.KeepAlive(buf)
}
