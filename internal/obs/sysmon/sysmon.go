// Package sysmon is the resource half of the observability layer: a
// nil-safe, off-by-default sampler over runtime/metrics and
// runtime.ReadMemStats that feeds every existing plane at once. Each
// sample carries heap in-use/allocated bytes, the cumulative allocation
// totals and derived alloc rate, GC cycle and pause totals, the live
// goroutine count and (on Linux) the process RSS. Samples land as
// go.*/proc.* gauges and counters in a metrics registry (served on the
// Prometheus /metrics endpoint and rendered by tactop), as "res" events
// on a Sink (persisted as resources.jsonl in run archives, alongside
// trace.jsonl and like it outside the byte-identical determinism set),
// and — via the Collector and CounterSamples — as Chrome trace counter
// ("C") events so Perfetto draws heap and goroutine curves under the
// pipeline phase spans.
//
// Timestamps come from an obs.Clock. Production wiring passes
// obs.WallClock, whose process-wide epoch is shared with the pipeline
// tracer, so resource samples and phase spans are mutually comparable —
// tacreport joins them by time window to compute per-phase peak heap.
// Tests drive the sampler with an obs.ManualClock and get fully
// deterministic tick sequences.
//
// This package is the one sanctioned consumer of runtime memory
// statistics: taclint's resmon analyzer forbids runtime.ReadMemStats,
// runtime.NumGoroutine and runtime/metrics everywhere else (the bench
// harness annotates its measurement reads in place). Everything here is
// nil-safe — a nil *Sampler no-ops, which is the "sysmon off" state —
// and the off path adds zero allocations, pinned by benchmark.
package sysmon

import (
	"os"
	"runtime"
	runtimemetrics "runtime/metrics"
	"strconv"
	"strings"
	"sync"
	"time"

	"taccc/internal/obs"
)

// DefaultInterval is the sampling period used when none is given — slow
// enough to be invisible in profiles, fast enough that tactop and
// Perfetto curves stay useful.
const DefaultInterval = 250 * time.Millisecond

// EventKind tags resource-sample events on the Sink plane.
const EventKind = "res"

// Sample is one resource reading. TMs is the obs.Clock timestamp
// (comparable with pipeline span times when both use WallClock); UnixMs
// is real time, kept so offline consumers and tactop's staleness check
// can age a sample without knowing the clock's epoch.
type Sample struct {
	TMs             float64
	UnixMs          int64
	HeapInuseBytes  uint64
	HeapAllocBytes  uint64
	TotalAllocBytes uint64
	Mallocs         uint64
	// AllocBytesPerS is the allocation rate since the previous sample
	// (0 on the first sample of a sampler).
	AllocBytesPerS float64
	GCCycles       uint64
	GCPauseMs      float64
	Goroutines     int
	// RSSBytes is the process resident set size, 0 where unavailable.
	RSSBytes uint64
}

// Event renders the sample as a Sink event of kind "res". The field set
// is fixed and JSONL encoding sorts keys, so streams are stable.
func (s Sample) Event() obs.Event {
	return obs.Event{Kind: EventKind, Fields: map[string]interface{}{
		"t_ms":              s.TMs,
		"unix_ms":           s.UnixMs,
		"heap_inuse_bytes":  s.HeapInuseBytes,
		"heap_alloc_bytes":  s.HeapAllocBytes,
		"total_alloc_bytes": s.TotalAllocBytes,
		"mallocs":           s.Mallocs,
		"alloc_bytes_per_s": s.AllocBytesPerS,
		"gc_cycles":         s.GCCycles,
		"gc_pause_ms":       s.GCPauseMs,
		"goroutines":        s.Goroutines,
		"rss_bytes":         s.RSSBytes,
	}}
}

// SampleFromEvent inverts Sample.Event: it decodes a "res" event (live
// or read back from resources.jsonl) into a Sample. ok is false for any
// other kind or when a required field is missing/mistyped.
func SampleFromEvent(e obs.Event) (Sample, bool) {
	if e.Kind != EventKind {
		return Sample{}, false
	}
	t, ok := e.Num("t_ms")
	if !ok {
		return Sample{}, false
	}
	unix, ok := e.Int("unix_ms")
	if !ok {
		return Sample{}, false
	}
	heapInuse, ok := e.Int("heap_inuse_bytes")
	if !ok {
		return Sample{}, false
	}
	heapAlloc, ok := e.Int("heap_alloc_bytes")
	if !ok {
		return Sample{}, false
	}
	total, ok := e.Int("total_alloc_bytes")
	if !ok {
		return Sample{}, false
	}
	mallocs, ok := e.Int("mallocs")
	if !ok {
		return Sample{}, false
	}
	rate, ok := e.Num("alloc_bytes_per_s")
	if !ok {
		return Sample{}, false
	}
	gc, ok := e.Int("gc_cycles")
	if !ok {
		return Sample{}, false
	}
	pause, ok := e.Num("gc_pause_ms")
	if !ok {
		return Sample{}, false
	}
	gor, ok := e.Int("goroutines")
	if !ok {
		return Sample{}, false
	}
	rss, ok := e.Int("rss_bytes")
	if !ok {
		return Sample{}, false
	}
	return Sample{
		TMs:             t,
		UnixMs:          unix,
		HeapInuseBytes:  uint64(heapInuse),
		HeapAllocBytes:  uint64(heapAlloc),
		TotalAllocBytes: uint64(total),
		Mallocs:         uint64(mallocs),
		AllocBytesPerS:  rate,
		GCCycles:        uint64(gc),
		GCPauseMs:       pause,
		Goroutines:      int(gor),
		RSSBytes:        uint64(rss),
	}, true
}

// SamplesFromEvents extracts every decodable sample from an event
// stream, in stream order.
func SamplesFromEvents(events []obs.Event) []Sample {
	var out []Sample
	for _, e := range events {
		if s, ok := SampleFromEvent(e); ok {
			out = append(out, s)
		}
	}
	return out
}

// ReadSnapshot reads the runtime's current resource state: MemStats for
// the heap/GC numbers, runtime/metrics for the goroutine count. This is
// the package's single doorway into the runtime's statistics.
func ReadSnapshot() obs.ResourceSnapshot {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return obs.ResourceSnapshot{
		HeapInuseBytes:  ms.HeapInuse,
		HeapAllocBytes:  ms.HeapAlloc,
		TotalAllocBytes: ms.TotalAlloc,
		Mallocs:         ms.Mallocs,
		GCCycles:        uint64(ms.NumGC),
		GCPauseMs:       float64(ms.PauseTotalNs) / 1e6,
		Goroutines:      goroutines(),
	}
}

// goroutines reads the live goroutine count through runtime/metrics,
// falling back to runtime.NumGoroutine should the metric ever change
// kind.
func goroutines() int {
	s := []runtimemetrics.Sample{{Name: "/sched/goroutines:goroutines"}}
	runtimemetrics.Read(s)
	if s[0].Value.Kind() == runtimemetrics.KindUint64 {
		return int(s[0].Value.Uint64())
	}
	return runtime.NumGoroutine()
}

// readRSS returns the process resident set size in bytes, 0 where the
// platform offers no /proc/self/statm (the second field is resident
// pages).
func readRSS() uint64 {
	data, err := os.ReadFile("/proc/self/statm")
	if err != nil {
		return 0
	}
	fields := strings.Fields(string(data))
	if len(fields) < 2 {
		return 0
	}
	pages, err := strconv.ParseUint(fields[1], 10, 64)
	if err != nil {
		return 0
	}
	return pages * uint64(os.Getpagesize())
}

// Options configures a Sampler. Every field is optional.
type Options struct {
	// Clock timestamps samples (WallClock when nil). Use the wall clock
	// in production so sample times align with pipeline spans; tests use
	// an obs.ManualClock.
	Clock obs.Clock
	// Registry receives the go.*/proc.*/sysmon.* metrics. Keep this a
	// *separate* registry from the tool's semantic metrics: archives
	// snapshot only the semantic registry, which is what keeps
	// metrics.json byte-identical with sysmon on or off. The telemetry
	// server merges the two at serve time.
	Registry *obs.Registry
	// Sink receives one "res" event per sample (resources.jsonl, the
	// in-memory Collector). May be nil.
	Sink obs.Sink
}

// Sampler takes resource samples, either one-shot (Sample) or on a
// background ticker (Start/Stop). The nil *Sampler is the off switch:
// every method no-ops without allocating, so call sites thread a
// possibly-nil sampler unconditionally. It also implements
// obs.ResourceSource, so a Tracer can snapshot resources at phase
// boundaries through it.
type Sampler struct {
	clock obs.Clock
	reg   *obs.Registry

	mu      sync.Mutex
	sink    obs.Sink
	prev    Sample
	hasPrev bool
	stop    chan struct{}
	done    chan struct{}
}

// New builds a sampler. The zero Options value gives a wall-clock
// sampler with no registry and no sink — still usable one-shot.
func New(opts Options) *Sampler {
	clock := opts.Clock
	if clock == nil {
		clock = obs.WallClock()
	}
	return &Sampler{clock: clock, reg: opts.Registry, sink: opts.Sink}
}

// ResourceSnapshot implements obs.ResourceSource with a fresh runtime
// read — phase boundaries get boundary-accurate values, not the last
// periodic sample. Nil-safe (zero snapshot).
func (s *Sampler) ResourceSnapshot() obs.ResourceSnapshot {
	if s == nil {
		return obs.ResourceSnapshot{}
	}
	return ReadSnapshot()
}

// Sample takes one resource sample: reads the runtime, derives the
// allocation rate from the previous sample, publishes to the registry
// and emits the "res" event. Safe for concurrent use; nil-safe (zero
// Sample).
func (s *Sampler) Sample() Sample {
	if s == nil {
		return Sample{}
	}
	snap := ReadSnapshot()
	smp := Sample{
		TMs:             s.clock.NowMs(),
		UnixMs:          time.Now().UnixMilli(),
		HeapInuseBytes:  snap.HeapInuseBytes,
		HeapAllocBytes:  snap.HeapAllocBytes,
		TotalAllocBytes: snap.TotalAllocBytes,
		Mallocs:         snap.Mallocs,
		GCCycles:        snap.GCCycles,
		GCPauseMs:       snap.GCPauseMs,
		Goroutines:      snap.Goroutines,
		RSSBytes:        readRSS(),
	}
	s.mu.Lock()
	prev, hasPrev := s.prev, s.hasPrev
	if hasPrev && smp.TMs > prev.TMs {
		smp.AllocBytesPerS = float64(smp.TotalAllocBytes-prev.TotalAllocBytes) / ((smp.TMs - prev.TMs) / 1000)
	}
	s.prev, s.hasPrev = smp, true
	sink := s.sink
	s.mu.Unlock()

	if s.reg != nil {
		s.reg.Gauge("go.heap_inuse_bytes").Set(float64(smp.HeapInuseBytes))
		s.reg.Gauge("go.heap_alloc_bytes").Set(float64(smp.HeapAllocBytes))
		s.reg.Gauge("go.goroutines").Set(float64(smp.Goroutines))
		s.reg.Gauge("go.alloc_bytes_per_s").Set(smp.AllocBytesPerS)
		s.reg.Gauge("go.gc_pause_ms_total").Set(smp.GCPauseMs)
		s.reg.Gauge("proc.rss_bytes").Set(float64(smp.RSSBytes))
		s.reg.Gauge("sysmon.last_sample_unix_ms").Set(float64(smp.UnixMs))
		// Cumulative runtime totals become counters by adding the delta
		// since the previous sample (the first sample contributes the
		// whole process-lifetime total).
		s.reg.Counter("go.alloc_bytes_total").Add(int64(smp.TotalAllocBytes - prevOr0(hasPrev, prev.TotalAllocBytes)))
		s.reg.Counter("go.allocs_total").Add(int64(smp.Mallocs - prevOr0(hasPrev, prev.Mallocs)))
		s.reg.Counter("go.gc_cycles_total").Add(int64(smp.GCCycles - prevOr0(hasPrev, prev.GCCycles)))
		s.reg.Counter("sysmon.samples_total").Inc()
	}
	if sink != nil {
		sink.Emit(smp.Event())
	}
	return smp
}

func prevOr0(has bool, v uint64) uint64 {
	if !has {
		return 0
	}
	return v
}

// Start takes an immediate sample and then keeps sampling every
// interval on a background goroutine until Stop (DefaultInterval when
// interval <= 0). Starting an already-started sampler is a no-op;
// nil-safe.
func (s *Sampler) Start(interval time.Duration) {
	if s == nil {
		return
	}
	if interval <= 0 {
		interval = DefaultInterval
	}
	s.mu.Lock()
	if s.stop != nil {
		s.mu.Unlock()
		return
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	s.stop, s.done = stop, done
	s.mu.Unlock()
	if s.reg != nil {
		s.reg.Gauge("sysmon.interval_ms").Set(float64(interval) / float64(time.Millisecond))
	}
	s.Sample()
	go func() {
		defer close(done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				s.Sample()
			}
		}
	}()
}

// DetachSink takes one final sample and then detaches the event sink:
// later samples update only the registry. Call before sealing the sinks
// (archive close, trace export) while keeping the sampler alive — e.g.
// through tacsim's -linger window, where tactop still wants fresh
// gauges. Nil-safe.
func (s *Sampler) DetachSink() {
	if s == nil {
		return
	}
	s.Sample()
	s.mu.Lock()
	s.sink = nil
	s.mu.Unlock()
}

// Stop halts the background sampling goroutine and waits for it to
// exit. Idempotent and nil-safe; one-shot Sample keeps working after
// Stop.
func (s *Sampler) Stop() {
	if s == nil {
		return
	}
	s.mu.Lock()
	stop, done := s.stop, s.done
	s.stop, s.done = nil, nil
	s.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}

// Collector is a Sink that retains every resource sample it sees,
// decoded back into Samples — the in-memory side of the -trace-out
// counter-track export. Non-"res" events are ignored. Safe for
// concurrent emit; nil-safe.
type Collector struct {
	mu      sync.Mutex
	samples []Sample
}

// Emit implements obs.Sink.
func (c *Collector) Emit(e obs.Event) {
	if c == nil {
		return
	}
	s, ok := SampleFromEvent(e)
	if !ok {
		return
	}
	c.mu.Lock()
	c.samples = append(c.samples, s)
	c.mu.Unlock()
}

// Samples returns the collected samples in emission order.
func (c *Collector) Samples() []Sample {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Sample, len(c.samples))
	copy(out, c.samples)
	return out
}

// CounterSamples converts resource samples into Chrome counter tracks:
// heap (in-use and allocated bytes), goroutine count, cumulative GC
// pause, and — where sampled — process RSS. Timestamps pass through
// unchanged, so with wall-clock sampling the curves line up under the
// pipeline phase spans in Perfetto.
func CounterSamples(samples []Sample) []obs.CounterSample {
	out := make([]obs.CounterSample, 0, 4*len(samples))
	for _, s := range samples {
		out = append(out,
			obs.CounterSample{Name: "go.heap bytes", TsMs: s.TMs, Values: map[string]float64{
				"inuse": float64(s.HeapInuseBytes),
				"alloc": float64(s.HeapAllocBytes),
			}},
			obs.CounterSample{Name: "go.goroutines", TsMs: s.TMs, Values: map[string]float64{
				"count": float64(s.Goroutines),
			}},
			obs.CounterSample{Name: "go.gc_pause_ms", TsMs: s.TMs, Values: map[string]float64{
				"total": s.GCPauseMs,
			}},
		)
		if s.RSSBytes > 0 {
			out = append(out, obs.CounterSample{Name: "proc.rss bytes", TsMs: s.TMs, Values: map[string]float64{
				"rss": float64(s.RSSBytes),
			}})
		}
	}
	return out
}

// WatchPeak samples HeapAlloc every interval on a background goroutine
// until the returned stop function is called, which reports the highest
// value seen (including one final read at stop). The bench harness uses
// it to measure peak heap during a solve without threading a full
// sampler through; the watcher lives here so benchmark code outside
// this package needs no direct runtime reads.
func WatchPeak(interval time.Duration) (stop func() uint64) {
	if interval <= 0 {
		interval = time.Millisecond
	}
	quit := make(chan struct{})
	done := make(chan struct{})
	var peak uint64
	go func() {
		defer close(done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-quit:
				return
			case <-t.C:
				var ms runtime.MemStats
				runtime.ReadMemStats(&ms)
				if ms.HeapAlloc > peak {
					peak = ms.HeapAlloc
				}
			}
		}
	}()
	return func() uint64 {
		close(quit)
		<-done
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		if ms.HeapAlloc > peak {
			peak = ms.HeapAlloc
		}
		return peak
	}
}
