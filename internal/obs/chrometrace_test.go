package obs

import (
	"bytes"
	"strings"
	"testing"
)

func pipelineSpans() []Span {
	return []Span{
		{Trace: PipelineTrace, ID: 1, Name: "run", StartMs: 0, EndMs: 20},
		{Trace: PipelineTrace, ID: 2, Parent: 1, Name: "delay-matrix", StartMs: 1, EndMs: 9},
		{Trace: PipelineTrace, ID: 3, Parent: 2, Name: "shard", StartMs: 1.5, EndMs: 8,
			Attrs: map[string]interface{}{"worker": 0, "items": 30, "busy_ms": 6.0}},
		{Trace: PipelineTrace, ID: 4, Parent: 2, Name: "shard", StartMs: 1.5, EndMs: 8.5,
			Attrs: map[string]interface{}{"worker": 1, "items": 34, "busy_ms": 6.5}},
		{Trace: PipelineTrace, ID: 5, Parent: 1, Name: "solve", StartMs: 9, EndMs: 20},
	}
}

func TestChromeTraceWriteReadRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, pipelineSpans()); err != nil {
		t.Fatal(err)
	}
	tr, err := ReadChromeTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("strict decode of our own export failed: %v", err)
	}
	var complete, meta int
	tids := map[int]bool{}
	threadNames := map[int]string{}
	for _, ev := range tr.TraceEvents {
		switch ev.Ph {
		case "X":
			complete++
			tids[ev.Tid] = true
			// ts/dur are microseconds.
			if ev.Name == "run" && (*ev.Dur != 20000 || ev.Ts != 0) {
				t.Fatalf("run event not in microseconds: %+v", ev)
			}
		case "M":
			meta++
			if ev.Name == "thread_name" {
				threadNames[ev.Tid], _ = ev.Args["name"].(string)
			}
		}
	}
	if complete != 5 {
		t.Fatalf("got %d complete events, want 5", complete)
	}
	// Pipeline thread + two worker threads.
	if !tids[chromePipelineTid] || !tids[chromeWorkerTid0] || !tids[chromeWorkerTid0+1] {
		t.Fatalf("tids = %v: workers must render as their own threads", tids)
	}
	if threadNames[chromeWorkerTid0] != "worker 0" || threadNames[chromeWorkerTid0+1] != "worker 1" {
		t.Fatalf("thread names = %v", threadNames)
	}
	if threadNames[chromePipelineTid] != "pipeline" {
		t.Fatalf("pipeline thread name = %q", threadNames[chromePipelineTid])
	}
}

func TestChromeTraceDeterministicBytes(t *testing.T) {
	spans := pipelineSpans()
	var a, b bytes.Buffer
	if err := WriteChromeTrace(&a, spans); err != nil {
		t.Fatal(err)
	}
	// Reversed emission order must still serialize identically.
	rev := make([]Span, len(spans))
	for i, sp := range spans {
		rev[len(spans)-1-i] = sp
	}
	if err := WriteChromeTrace(&b, rev); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("chrome export depends on span emission order")
	}
}

func TestReadChromeTraceRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"empty events":      `{"traceEvents":[]}`,
		"unknown field":     `{"traceEvents":[{"name":"x","ph":"X","ts":0,"dur":1,"pid":1,"tid":1,"bogus":1}]}`,
		"unknown top field": `{"traceEvents":[{"name":"x","ph":"X","ts":0,"dur":1,"pid":1,"tid":1}],"extra":true}`,
		"bad phase":         `{"traceEvents":[{"name":"x","ph":"B","ts":0,"pid":1,"tid":1}]}`,
		"missing dur":       `{"traceEvents":[{"name":"x","ph":"X","ts":0,"pid":1,"tid":1}]}`,
		"negative dur":      `{"traceEvents":[{"name":"x","ph":"X","ts":0,"dur":-1,"pid":1,"tid":1}]}`,
		"zero pid":          `{"traceEvents":[{"name":"x","ph":"X","ts":0,"dur":1,"pid":0,"tid":1}]}`,
		"empty name":        `{"traceEvents":[{"name":"","ph":"X","ts":0,"dur":1,"pid":1,"tid":1}]}`,
		"bad metadata":      `{"traceEvents":[{"name":"weird_meta","ph":"M","ts":0,"pid":1,"tid":1,"args":{"name":"x"}}]}`,
		"meta missing name": `{"traceEvents":[{"name":"thread_name","ph":"M","ts":0,"pid":1,"tid":1,"args":{}}]}`,
		"not json":          `nope`,
	}
	for label, in := range cases {
		if _, err := ReadChromeTrace(strings.NewReader(in)); err == nil {
			t.Errorf("%s: strict decoder accepted malformed input", label)
		}
	}
	ok := `{"traceEvents":[{"name":"x","ph":"X","ts":0,"dur":1,"pid":1,"tid":1}]}`
	if _, err := ReadChromeTrace(strings.NewReader(ok)); err != nil {
		t.Fatalf("minimal valid trace rejected: %v", err)
	}
}
