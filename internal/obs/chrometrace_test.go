package obs

import (
	"bytes"
	"strings"
	"testing"
)

func pipelineSpans() []Span {
	return []Span{
		{Trace: PipelineTrace, ID: 1, Name: "run", StartMs: 0, EndMs: 20},
		{Trace: PipelineTrace, ID: 2, Parent: 1, Name: "delay-matrix", StartMs: 1, EndMs: 9},
		{Trace: PipelineTrace, ID: 3, Parent: 2, Name: "shard", StartMs: 1.5, EndMs: 8,
			Attrs: map[string]interface{}{"worker": 0, "items": 30, "busy_ms": 6.0}},
		{Trace: PipelineTrace, ID: 4, Parent: 2, Name: "shard", StartMs: 1.5, EndMs: 8.5,
			Attrs: map[string]interface{}{"worker": 1, "items": 34, "busy_ms": 6.5}},
		{Trace: PipelineTrace, ID: 5, Parent: 1, Name: "solve", StartMs: 9, EndMs: 20},
	}
}

func TestChromeTraceWriteReadRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, pipelineSpans()); err != nil {
		t.Fatal(err)
	}
	tr, err := ReadChromeTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("strict decode of our own export failed: %v", err)
	}
	var complete, meta int
	tids := map[int]bool{}
	threadNames := map[int]string{}
	for _, ev := range tr.TraceEvents {
		switch ev.Ph {
		case "X":
			complete++
			tids[ev.Tid] = true
			// ts/dur are microseconds.
			if ev.Name == "run" && (*ev.Dur != 20000 || ev.Ts != 0) {
				t.Fatalf("run event not in microseconds: %+v", ev)
			}
		case "M":
			meta++
			if ev.Name == "thread_name" {
				threadNames[ev.Tid], _ = ev.Args["name"].(string)
			}
		}
	}
	if complete != 5 {
		t.Fatalf("got %d complete events, want 5", complete)
	}
	// Pipeline thread + two worker threads.
	if !tids[chromePipelineTid] || !tids[chromeWorkerTid0] || !tids[chromeWorkerTid0+1] {
		t.Fatalf("tids = %v: workers must render as their own threads", tids)
	}
	if threadNames[chromeWorkerTid0] != "worker 0" || threadNames[chromeWorkerTid0+1] != "worker 1" {
		t.Fatalf("thread names = %v", threadNames)
	}
	if threadNames[chromePipelineTid] != "pipeline" {
		t.Fatalf("pipeline thread name = %q", threadNames[chromePipelineTid])
	}
}

func TestChromeTraceDeterministicBytes(t *testing.T) {
	spans := pipelineSpans()
	var a, b bytes.Buffer
	if err := WriteChromeTrace(&a, spans); err != nil {
		t.Fatal(err)
	}
	// Reversed emission order must still serialize identically.
	rev := make([]Span, len(spans))
	for i, sp := range spans {
		rev[len(spans)-1-i] = sp
	}
	if err := WriteChromeTrace(&b, rev); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("chrome export depends on span emission order")
	}
}

func TestReadChromeTraceRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"empty events":      `{"traceEvents":[]}`,
		"unknown field":     `{"traceEvents":[{"name":"x","ph":"X","ts":0,"dur":1,"pid":1,"tid":1,"bogus":1}]}`,
		"unknown top field": `{"traceEvents":[{"name":"x","ph":"X","ts":0,"dur":1,"pid":1,"tid":1}],"extra":true}`,
		"bad phase":         `{"traceEvents":[{"name":"x","ph":"B","ts":0,"pid":1,"tid":1}]}`,
		"missing dur":       `{"traceEvents":[{"name":"x","ph":"X","ts":0,"pid":1,"tid":1}]}`,
		"negative dur":      `{"traceEvents":[{"name":"x","ph":"X","ts":0,"dur":-1,"pid":1,"tid":1}]}`,
		"zero pid":          `{"traceEvents":[{"name":"x","ph":"X","ts":0,"dur":1,"pid":0,"tid":1}]}`,
		"empty name":        `{"traceEvents":[{"name":"","ph":"X","ts":0,"dur":1,"pid":1,"tid":1}]}`,
		"bad metadata":      `{"traceEvents":[{"name":"weird_meta","ph":"M","ts":0,"pid":1,"tid":1,"args":{"name":"x"}}]}`,
		"meta missing name": `{"traceEvents":[{"name":"thread_name","ph":"M","ts":0,"pid":1,"tid":1,"args":{}}]}`,
		"not json":          `nope`,
	}
	for label, in := range cases {
		if _, err := ReadChromeTrace(strings.NewReader(in)); err == nil {
			t.Errorf("%s: strict decoder accepted malformed input", label)
		}
	}
	ok := `{"traceEvents":[{"name":"x","ph":"X","ts":0,"dur":1,"pid":1,"tid":1}]}`
	if _, err := ReadChromeTrace(strings.NewReader(ok)); err != nil {
		t.Fatalf("minimal valid trace rejected: %v", err)
	}
}

func TestChromeTraceCounterEvents(t *testing.T) {
	counters := []CounterSample{
		{Name: "go.heap bytes", TsMs: 2, Values: map[string]float64{"inuse": 1 << 20, "alloc": 900 << 10}},
		{Name: "go.goroutines", TsMs: 2, Values: map[string]float64{"count": 5}},
		{Name: "go.heap bytes", TsMs: 4, Values: map[string]float64{"inuse": 2 << 20, "alloc": 1 << 20}},
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, pipelineSpans(), counters...); err != nil {
		t.Fatal(err)
	}
	tr, err := ReadChromeTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("strict decode of counter export failed: %v", err)
	}
	var got []ChromeEvent
	for _, ev := range tr.TraceEvents {
		if ev.Ph == "C" {
			got = append(got, ev)
		}
	}
	if len(got) != 3 {
		t.Fatalf("got %d counter events, want 3", len(got))
	}
	// Same-timestamp events sort by name, so goroutines precedes heap.
	first := got[0]
	if first.Name != "go.goroutines" || first.Ts != 2000 { // ms in, µs out
		t.Fatalf("first counter = %+v, want go.goroutines at ts 2000", first)
	}
	if first.Pid != chromePid || first.Tid != chromePipelineTid {
		t.Fatalf("counter event off the pipeline row: %+v", first)
	}
	heap := got[1]
	if v, ok := heap.Args["inuse"].(float64); heap.Name != "go.heap bytes" || !ok || v != 1<<20 {
		t.Fatalf("counter series lost: %+v", heap)
	}
	// Counters interleave with spans by timestamp, so the heap samples
	// straddle the delay-matrix phase start in the sorted stream.
	if got[2].Ts != 4000 {
		t.Fatalf("counter events out of order: %+v", got)
	}
}

func TestChromeTraceCounterDeterministicBytes(t *testing.T) {
	counters := []CounterSample{
		{Name: "go.goroutines", TsMs: 1, Values: map[string]float64{"count": 4}},
		{Name: "go.heap bytes", TsMs: 1, Values: map[string]float64{"inuse": 10, "alloc": 8}},
	}
	var a, b bytes.Buffer
	if err := WriteChromeTrace(&a, pipelineSpans(), counters...); err != nil {
		t.Fatal(err)
	}
	rev := []CounterSample{counters[1], counters[0]}
	if err := WriteChromeTrace(&b, pipelineSpans(), rev...); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("chrome export depends on counter sample order")
	}
}

func TestReadChromeTraceRejectsMalformedCounters(t *testing.T) {
	cases := map[string]string{
		"no series":          `{"traceEvents":[{"name":"c","ph":"C","ts":0,"pid":1,"tid":1}]}`,
		"empty series":       `{"traceEvents":[{"name":"c","ph":"C","ts":0,"pid":1,"tid":1,"args":{}}]}`,
		"non-numeric series": `{"traceEvents":[{"name":"c","ph":"C","ts":0,"pid":1,"tid":1,"args":{"v":"high"}}]}`,
	}
	for label, in := range cases {
		if _, err := ReadChromeTrace(strings.NewReader(in)); err == nil {
			t.Errorf("%s: strict decoder accepted malformed counter", label)
		}
	}
	ok := `{"traceEvents":[{"name":"c","ph":"C","ts":0,"pid":1,"tid":1,"args":{"v":1.5}}]}`
	if _, err := ReadChromeTrace(strings.NewReader(ok)); err != nil {
		t.Fatalf("minimal valid counter rejected: %v", err)
	}
}
