package obs

import (
	"encoding/json"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing integer metric. The zero value is
// ready to use; all methods are safe for concurrent use and no-op on a nil
// receiver, so instrumented code never branches on "is observability on".
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (n must be >= 0; counters only go up).
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous float64 metric (queue depth, utilization).
// The zero value reads 0; methods are concurrency- and nil-safe.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add shifts the gauge by d (atomically, via CAS).
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Value returns the current value (0 on a nil receiver).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed buckets. Bounds are ascending
// upper bounds; an observation lands in the first bucket whose bound is
// >= the value, or the implicit overflow bucket past the last bound.
// Methods are concurrency- and nil-safe.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; last is the overflow bucket
	count  atomic.Int64
	sum    Gauge
}

// DefaultLatencyBucketsMs is the standard request-latency bucket layout
// (milliseconds), covering sub-millisecond LAN hops through multi-second
// queueing collapse.
func DefaultLatencyBucketsMs() []float64 {
	return []float64{0.5, 1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000, 10000}
}

// NewHistogram builds a histogram over the given ascending bounds. A nil
// or empty bounds slice yields a single overflow bucket (count+sum only).
func NewHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	idx := sort.SearchFloat64s(h.bounds, v)
	h.counts[idx].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations (0 on a nil receiver).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values (0 on a nil receiver).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum.Value()
}

// snapshot captures the histogram's state.
func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count:  h.count.Load(),
		Sum:    h.sum.Value(),
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]int64, len(h.counts)),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	if s.Count > 0 {
		s.Mean = s.Sum / float64(s.Count)
	}
	return s
}

// HistogramSnapshot is a point-in-time copy of a histogram. Counts has one
// more entry than Bounds; the last entry counts observations above every
// bound.
type HistogramSnapshot struct {
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
	Mean   float64   `json:"mean"`
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
}

// Quantile returns an upper-bound estimate of quantile q: the smallest
// bucket bound whose cumulative count covers q, or +Inf when only the
// overflow bucket does. The result is never NaN: an empty histogram
// reports 0 (there is nothing to attribute, and 0 renders sanely in
// dashboards where NaN poisons aggregation), and q is clamped into
// [0, 1] — q <= 0 (or NaN) means the first occupied bucket, q >= 1 the
// last.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if math.IsNaN(q) || q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	target := int64(math.Ceil(q * float64(s.Count)))
	if target < 1 {
		target = 1
	}
	cum := int64(0)
	for i, c := range s.Counts {
		cum += c
		if cum >= target {
			if i < len(s.Bounds) {
				return s.Bounds[i]
			}
			return math.Inf(1)
		}
	}
	return math.Inf(1)
}

// Registry is a name-indexed collection of metrics. Metrics are created on
// first use and shared thereafter; lookups on a nil registry return nil
// metrics whose methods no-op, so a registry pointer can be threaded
// through unconditionally.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bounds
// on first use (later calls reuse the original bounds).
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = NewHistogram(bounds)
		r.histograms[name] = h
	}
	return h
}

// Snapshot is a point-in-time copy of every metric in a registry, shaped
// for JSON serialization (map keys serialize sorted, so output is stable).
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot captures the registry's current state. A nil registry yields an
// empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	var s Snapshot
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.counters) > 0 {
		s.Counters = make(map[string]int64, len(r.counters))
		for name, c := range r.counters {
			s.Counters[name] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]float64, len(r.gauges))
		for name, g := range r.gauges {
			s.Gauges[name] = g.Value()
		}
	}
	if len(r.histograms) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(r.histograms))
		for name, h := range r.histograms {
			s.Histograms[name] = h.snapshot()
		}
	}
	return s
}

// MergeSnapshots overlays snapshots left to right into one: later
// snapshots win on name collisions. The telemetry server uses it to
// serve several registries — the tool's semantic metrics and sysmon's
// go.*/proc.* resource metrics — as a single exposition, while the
// registries themselves stay separate so resource noise never leaks
// into the deterministic archive snapshot.
func MergeSnapshots(snaps ...Snapshot) Snapshot {
	var out Snapshot
	for _, s := range snaps {
		if len(s.Counters) > 0 {
			if out.Counters == nil {
				out.Counters = make(map[string]int64, len(s.Counters))
			}
			for k, v := range s.Counters {
				out.Counters[k] = v
			}
		}
		if len(s.Gauges) > 0 {
			if out.Gauges == nil {
				out.Gauges = make(map[string]float64, len(s.Gauges))
			}
			for k, v := range s.Gauges {
				out.Gauges[k] = v
			}
		}
		if len(s.Histograms) > 0 {
			if out.Histograms == nil {
				out.Histograms = make(map[string]HistogramSnapshot, len(s.Histograms))
			}
			for k, v := range s.Histograms {
				out.Histograms[k] = v
			}
		}
	}
	return out
}

// WriteJSON writes an indented JSON snapshot of the registry to w.
func (r *Registry) WriteJSON(w io.Writer) error { //lint:allow nilrecv nil-safe via Snapshot, which guards the receiver
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}
