package httpserv

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"

	"taccc/internal/obs"
)

// Sample is one parsed exposition line: a metric name, its label set
// (empty when unlabelled) and the sample value.
type Sample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// ParseText parses the Prometheus text exposition format (version 0.0.4)
// as produced by WriteMetrics: `# TYPE`/`# HELP` comments, blank lines,
// and `name[{labels}] value` samples. It exists so tests and tactop can
// consume /metrics without a Prometheus dependency, and it is strict:
// any malformed line is an error, which is what makes it useful as a
// validity check in tests.
func ParseText(r io.Reader) ([]Sample, error) {
	var samples []Sample
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		samples = append(samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return samples, nil
}

func parseSample(line string) (Sample, error) {
	var s Sample
	rest := line
	if i := strings.IndexAny(rest, "{ \t"); i < 0 {
		return s, fmt.Errorf("no value in %q", line)
	} else {
		s.Name = rest[:i]
		rest = rest[i:]
	}
	if s.Name == "" {
		return s, fmt.Errorf("empty metric name in %q", line)
	}
	if strings.HasPrefix(rest, "{") {
		end := strings.Index(rest, "}")
		if end < 0 {
			return s, fmt.Errorf("unterminated label set in %q", line)
		}
		labels, err := parseLabels(rest[1:end])
		if err != nil {
			return s, fmt.Errorf("%v in %q", err, line)
		}
		s.Labels = labels
		rest = rest[end+1:]
	}
	rest = strings.TrimSpace(rest)
	// A timestamp may follow the value; WriteMetrics never emits one but
	// accepting it keeps the parser honest about the format.
	if i := strings.IndexAny(rest, " \t"); i >= 0 {
		rest = rest[:i]
	}
	v, err := strconv.ParseFloat(rest, 64)
	if err != nil {
		return s, fmt.Errorf("bad value %q", rest)
	}
	s.Value = v
	return s, nil
}

func parseLabels(body string) (map[string]string, error) {
	labels := make(map[string]string)
	for body != "" {
		eq := strings.Index(body, "=")
		if eq < 0 {
			return nil, fmt.Errorf("label without value: %q", body)
		}
		name := strings.TrimSpace(body[:eq])
		rest := body[eq+1:]
		if !strings.HasPrefix(rest, `"`) {
			return nil, fmt.Errorf("unquoted label value after %q", name)
		}
		val, tail, err := unquoteLabel(rest)
		if err != nil {
			return nil, err
		}
		labels[name] = val
		body = strings.TrimPrefix(strings.TrimSpace(tail), ",")
		body = strings.TrimSpace(body)
	}
	return labels, nil
}

func unquoteLabel(s string) (val, tail string, err error) {
	// s starts with the opening quote; find the closing one honouring \" escapes.
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
		case '"':
			v, err := strconv.Unquote(s[:i+1])
			if err != nil {
				return "", "", fmt.Errorf("bad label value %q", s[:i+1])
			}
			return v, s[i+1:], nil
		}
	}
	return "", "", fmt.Errorf("unterminated label value %q", s)
}

// HistogramFrom reassembles the histogram family name (its raw
// Prometheus name, e.g. "cluster_latency_ms") from parsed samples into an
// obs.HistogramSnapshot: per-bucket (non-cumulative) counts, bounds,
// sum, count and mean. The second return is false when the family is
// absent or incomplete.
func HistogramFrom(samples []Sample, name string) (obs.HistogramSnapshot, bool) {
	var snap obs.HistogramSnapshot
	type bucket struct {
		le  float64
		cum int64
	}
	var buckets []bucket
	haveSum, haveCount := false, false
	for _, s := range samples {
		switch s.Name {
		case name + "_bucket":
			le, err := strconv.ParseFloat(s.Labels["le"], 64)
			if err != nil {
				return snap, false
			}
			buckets = append(buckets, bucket{le: le, cum: int64(s.Value)})
		case name + "_sum":
			snap.Sum = s.Value
			haveSum = true
		case name + "_count":
			snap.Count = int64(s.Value)
			haveCount = true
		}
	}
	if len(buckets) == 0 || !haveSum || !haveCount {
		return obs.HistogramSnapshot{}, false
	}
	sort.Slice(buckets, func(i, j int) bool { return buckets[i].le < buckets[j].le })
	prev := int64(0)
	for _, b := range buckets {
		if !math.IsInf(b.le, 1) {
			snap.Bounds = append(snap.Bounds, b.le)
		}
		snap.Counts = append(snap.Counts, b.cum-prev)
		prev = b.cum
	}
	if snap.Count > 0 {
		snap.Mean = snap.Sum / float64(snap.Count)
	}
	return snap, true
}
