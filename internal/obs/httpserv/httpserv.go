// Package httpserv is the live half of the telemetry plane: an HTTP
// server exposing a metrics Registry as Prometheus text (/metrics), JSON
// (/snapshot), a liveness probe (/healthz) and the standard pprof
// endpoints (/debug/pprof). It has no dependencies beyond the standard
// library, stays entirely read-only with respect to the registry, and is
// safe to run alongside a simulation in flight — registry metrics are
// lock-free or briefly locked, so scraping never perturbs results.
package httpserv

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"

	"taccc/internal/obs"
)

// Handler returns the telemetry mux over one or more registries, merged
// at serve time (later registries win on name collisions) — the tool's
// semantic metrics and sysmon's go.*/proc.* resource metrics stay in
// separate registries but share one exposition. Registries may be nil
// (or absent entirely), in which case /metrics and /snapshot serve an
// empty but well-formed exposition.
func Handler(regs ...*obs.Registry) http.Handler {
	snapshot := func() obs.Snapshot {
		snaps := make([]obs.Snapshot, 0, len(regs))
		for _, reg := range regs {
			snaps = append(snaps, reg.Snapshot())
		}
		return obs.MergeSnapshots(snaps...)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = WriteMetrics(w, snapshot())
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/snapshot", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(snapshot())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is a running telemetry server.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Start listens on addr (e.g. ":9477" or "127.0.0.1:0") and serves the
// telemetry handler until Close. It returns once the listener is bound,
// so Addr() is immediately valid — callers that bind port 0 can discover
// the assigned port.
func Start(addr string, regs ...*obs.Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{ln: ln, srv: &http.Server{Handler: Handler(regs...)}}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the bound listen address (host:port).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server and releases the port.
func (s *Server) Close() error { return s.srv.Close() }
