package httpserv

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"

	"taccc/internal/obs"
)

// MetricName sanitizes a registry metric name into a legal Prometheus
// metric name: dots and any other character outside [a-zA-Z0-9_:] become
// underscores, and a leading digit gets an underscore prefix.
func MetricName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + 1)
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if r >= '0' && r <= '9' && i == 0 {
			b.WriteByte('_')
			b.WriteRune(r)
			continue
		}
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

func promFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteMetrics renders a registry snapshot in the Prometheus text
// exposition format (version 0.0.4). Counters become counters, gauges
// gauges, and histograms the standard cumulative-bucket form with
// `le`-labelled buckets, a terminal `+Inf` bucket, `_sum` and `_count`
// series. Metric families are emitted in sorted name order so the output
// is deterministic for a given snapshot.
func WriteMetrics(w io.Writer, snap obs.Snapshot) error {
	bw := bufio.NewWriter(w)

	counterNames := make([]string, 0, len(snap.Counters))
	for name := range snap.Counters {
		counterNames = append(counterNames, name)
	}
	sort.Strings(counterNames)
	for _, name := range counterNames {
		pn := MetricName(name)
		fmt.Fprintf(bw, "# TYPE %s counter\n", pn)
		fmt.Fprintf(bw, "%s %d\n", pn, snap.Counters[name])
	}

	gaugeNames := make([]string, 0, len(snap.Gauges))
	for name := range snap.Gauges {
		gaugeNames = append(gaugeNames, name)
	}
	sort.Strings(gaugeNames)
	for _, name := range gaugeNames {
		pn := MetricName(name)
		fmt.Fprintf(bw, "# TYPE %s gauge\n", pn)
		fmt.Fprintf(bw, "%s %s\n", pn, promFloat(snap.Gauges[name]))
	}

	histNames := make([]string, 0, len(snap.Histograms))
	for name := range snap.Histograms {
		histNames = append(histNames, name)
	}
	sort.Strings(histNames)
	for _, name := range histNames {
		h := snap.Histograms[name]
		pn := MetricName(name)
		fmt.Fprintf(bw, "# TYPE %s histogram\n", pn)
		cum := int64(0)
		for i, bound := range h.Bounds {
			cum += h.Counts[i]
			fmt.Fprintf(bw, "%s_bucket{le=%q} %d\n", pn, promFloat(bound), cum)
		}
		fmt.Fprintf(bw, "%s_bucket{le=\"+Inf\"} %d\n", pn, h.Count)
		fmt.Fprintf(bw, "%s_sum %s\n", pn, promFloat(h.Sum))
		fmt.Fprintf(bw, "%s_count %d\n", pn, h.Count)
	}

	return bw.Flush()
}
