package httpserv

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"taccc/internal/obs"
)

func demoRegistry() *obs.Registry {
	reg := obs.NewRegistry()
	reg.Counter("cluster.requests.sent").Add(100)
	reg.Counter("cluster.requests.completed").Add(97)
	reg.Gauge("cluster.edge.0.queue_depth").Set(3)
	h := reg.Histogram("cluster.latency_ms", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 5, 50, 500} {
		h.Observe(v)
	}
	return reg
}

func TestMetricName(t *testing.T) {
	cases := map[string]string{
		"cluster.latency_ms":     "cluster_latency_ms",
		"cluster.delay.queue_ms": "cluster_delay_queue_ms",
		"edge-0 depth":           "edge_0_depth",
		"0starts_with_digit":     "_0starts_with_digit",
		"already_fine:ok":        "already_fine:ok",
	}
	for in, want := range cases {
		if got := MetricName(in); got != want {
			t.Errorf("MetricName(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestWriteMetricsParses is the acceptance check that /metrics output is
// valid exposition text: write a snapshot, parse it back with the strict
// parser, and verify every family survives the round trip.
func TestWriteMetricsParses(t *testing.T) {
	reg := demoRegistry()
	var sb strings.Builder
	if err := WriteMetrics(&sb, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	samples, err := ParseText(strings.NewReader(text))
	if err != nil {
		t.Fatalf("exposition does not parse: %v\n%s", err, text)
	}
	byName := map[string]float64{}
	for _, s := range samples {
		if s.Labels == nil {
			byName[s.Name] = s.Value
		}
	}
	if byName["cluster_requests_sent"] != 100 || byName["cluster_requests_completed"] != 97 {
		t.Fatalf("counters lost:\n%s", text)
	}
	if byName["cluster_edge_0_queue_depth"] != 3 {
		t.Fatalf("gauge lost:\n%s", text)
	}
	if byName["cluster_latency_ms_sum"] != 555.5 || byName["cluster_latency_ms_count"] != 4 {
		t.Fatalf("histogram sum/count lost:\n%s", text)
	}

	// Buckets must be cumulative and end at +Inf == count.
	var inf float64 = -1
	cums := map[float64]float64{}
	for _, s := range samples {
		if s.Name != "cluster_latency_ms_bucket" {
			continue
		}
		le := s.Labels["le"]
		if le == "+Inf" {
			inf = s.Value
			continue
		}
		var b float64
		fmt.Sscanf(le, "%g", &b)
		cums[b] = s.Value
	}
	if inf != 4 {
		t.Fatalf("+Inf bucket = %v, want 4\n%s", inf, text)
	}
	if cums[1] != 1 || cums[10] != 2 || cums[100] != 3 {
		t.Fatalf("cumulative buckets wrong: %v\n%s", cums, text)
	}

	// Reassembly recovers the original snapshot.
	snap, ok := HistogramFrom(samples, "cluster_latency_ms")
	if !ok {
		t.Fatal("HistogramFrom failed")
	}
	orig := reg.Snapshot().Histograms["cluster.latency_ms"]
	if snap.Count != orig.Count || snap.Sum != orig.Sum {
		t.Fatalf("reassembled %+v vs original %+v", snap, orig)
	}
	for i, c := range orig.Counts {
		if snap.Counts[i] != c {
			t.Fatalf("bucket %d: reassembled %d, original %d", i, snap.Counts[i], c)
		}
	}
	if q := snap.Quantile(0.5); q != orig.Quantile(0.5) {
		t.Fatalf("p50 drifted through the round trip: %v vs %v", q, orig.Quantile(0.5))
	}
}

func TestWriteMetricsEmptyAndNil(t *testing.T) {
	var sb strings.Builder
	if err := WriteMetrics(&sb, (*obs.Registry)(nil).Snapshot()); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseText(strings.NewReader(sb.String())); err != nil {
		t.Fatalf("empty exposition does not parse: %v", err)
	}
}

func TestParseTextRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"no_value_here",
		"metric{le=\"unterminated value\n",
		"metric{le=unquoted} 1",
		"metric not_a_number",
	} {
		if _, err := ParseText(strings.NewReader(bad)); err == nil {
			t.Errorf("ParseText accepted %q", bad)
		}
	}
}

func TestHandlerEndpoints(t *testing.T) {
	reg := demoRegistry()
	srv := httptest.NewServer(Handler(reg))
	defer srv.Close()

	get := func(path string) (string, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s", path, resp.Status)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	body, ct := get("/metrics")
	if ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Fatalf("/metrics Content-Type = %q", ct)
	}
	if _, err := ParseText(strings.NewReader(body)); err != nil {
		t.Fatalf("/metrics does not parse: %v", err)
	}

	body, _ = get("/healthz")
	if body != "ok\n" {
		t.Fatalf("/healthz = %q", body)
	}

	body, ct = get("/snapshot")
	if ct != "application/json" {
		t.Fatalf("/snapshot Content-Type = %q", ct)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/snapshot not JSON: %v", err)
	}
	if snap.Counters["cluster.requests.sent"] != 100 {
		t.Fatalf("/snapshot lost counters: %+v", snap)
	}

	body, _ = get("/debug/pprof/cmdline")
	if body == "" {
		t.Fatal("/debug/pprof/cmdline empty")
	}
}

// TestHandlerMergesRegistries: the semantic and sysmon registries are
// kept separate (archives snapshot only the first) but serve as one
// exposition — both name sets appear on /metrics and /snapshot.
func TestHandlerMergesRegistries(t *testing.T) {
	semantic := demoRegistry()
	sys := obs.NewRegistry()
	sys.Gauge("go.heap_alloc_bytes").Set(12345)
	sys.Counter("sysmon.samples_total").Add(3)
	srv := httptest.NewServer(Handler(semantic, sys))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	fams, err := ParseText(resp.Body)
	if err != nil {
		t.Fatalf("merged /metrics does not parse: %v", err)
	}
	names := map[string]bool{}
	for _, f := range fams {
		names[f.Name] = true
	}
	for _, want := range []string{"cluster_requests_sent", "go_heap_alloc_bytes", "sysmon_samples_total"} {
		if !names[want] {
			t.Errorf("merged exposition missing %s (have %v)", want, names)
		}
	}

	resp, err = http.Get(srv.URL + "/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap obs.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["cluster.requests.sent"] != 100 || snap.Counters["sysmon.samples_total"] != 3 {
		t.Fatalf("merged /snapshot lost a registry: %+v", snap.Counters)
	}
	if snap.Gauges["go.heap_alloc_bytes"] != 12345 {
		t.Fatalf("merged /snapshot lost sysmon gauges: %+v", snap.Gauges)
	}
}

func TestStartServesAndCloses(t *testing.T) {
	reg := demoRegistry()
	s, err := Start("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + s.Addr() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %s", resp.Status)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get("http://" + s.Addr() + "/healthz"); err == nil {
		t.Fatal("server still reachable after Close")
	}
}

func TestPromFloatSpecials(t *testing.T) {
	if promFloat(math.Inf(1)) != "+Inf" || promFloat(math.Inf(-1)) != "-Inf" || promFloat(math.NaN()) != "NaN" {
		t.Fatal("special float rendering broken")
	}
	if promFloat(2.5) != "2.5" {
		t.Fatalf("promFloat(2.5) = %q", promFloat(2.5))
	}
}
