// Package runlog writes and reads self-contained run archives: one
// directory per run holding everything needed to analyze or diff the
// run offline, long after the process that produced it is gone.
//
// Layout (format version 1):
//
//	<dir>/manifest.json    — tool, version, seed, config, wall-clock
//	<dir>/events.jsonl     — the JSONL event/span stream (may be empty)
//	<dir>/metrics.json     — final metrics-registry snapshot
//	<dir>/summary.json     — named scalar results (latency quantiles, ...)
//	<dir>/trace.jsonl      — pipeline trace (only with tracing on)
//	<dir>/resources.jsonl  — sysmon resource samples (only with -sysmon)
//	<dir>/slo.jsonl        — SLO window/eval/alert stream (only with -slo)
//
// Every file is written canonically (sorted JSON object keys, fixed
// indentation), so loading an archive and rewriting it reproduces the
// original bytes exactly, and two runs of the same tool with the same
// seed and config produce byte-identical archives — except the
// manifest's wall-clock fields (start_unix_ms, elapsed_ms), which are
// the only nondeterministic bytes in an archive by design. cmd/tacreport
// consumes archives; tacsolve, tacsim and tacbench produce them behind
// the shared -archive flag (internal/cliutil).
package runlog

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"taccc/internal/obs"
)

// FormatVersion identifies the archive layout; Load rejects archives
// written by a future incompatible format.
const FormatVersion = 1

// File names inside an archive directory.
const (
	ManifestFile = "manifest.json"
	EventsFile   = "events.jsonl"
	MetricsFile  = "metrics.json"
	SummaryFile  = "summary.json"
	// TraceFile holds the wall-clock pipeline trace (span events), kept
	// apart from events.jsonl because its bytes are inherently
	// nondeterministic: like the manifest's wall-clock fields, it is
	// excluded from the byte-identical determinism contract. The file
	// exists only when the producing tool ran with tracing enabled;
	// archives without it load fine.
	TraceFile = "trace.jsonl"
	// ResourcesFile holds the sysmon resource-sample stream ("res"
	// events: heap, GC, goroutines, RSS over time). Wall-clock driven and
	// machine-dependent, so — exactly like TraceFile — it sits outside
	// the byte-identical determinism set and exists only when the
	// producing tool ran with -sysmon.
	ResourcesFile = "resources.jsonl"
	// SLOFile holds the SLO plane's stream (slo-window / slo-eval /
	// slo-alert / slo-objective events). Unlike TraceFile and
	// ResourcesFile it is sim-time driven and therefore INSIDE the
	// byte-identical determinism set: two runs of the same seed, config
	// and SLO spec produce identical slo.jsonl at any worker count. The
	// file exists only when the producing tool ran with -slo.
	SLOFile = "slo.jsonl"
)

// Manifest identifies a run: which tool produced it, at which version,
// from which seed and configuration, and when. Config holds the tool's
// semantic flag settings as strings (execution-only flags — parallelism,
// profiling, telemetry, output paths — are excluded by the cliutil
// helper so that re-runs of the same logical experiment archive
// identically). StartUnixMs and ElapsedMs are the archive's only
// nondeterministic fields.
type Manifest struct {
	Format      int               `json:"format"`
	Tool        string            `json:"tool"`
	Version     string            `json:"version"`
	Seed        int64             `json:"seed"`
	Config      map[string]string `json:"config,omitempty"`
	StartUnixMs int64             `json:"start_unix_ms"`
	ElapsedMs   float64           `json:"elapsed_ms"`
}

// Summary is a run's named scalar results (deterministic by contract:
// wall-clock readings belong in the manifest, not here).
type Summary map[string]float64

// Writer streams one run into an archive directory: events go to
// events.jsonl as they happen; manifest, metrics and summary are
// written by Close.
type Writer struct {
	dir       string
	man       Manifest
	file      *os.File
	sink      *obs.JSONL
	traceFile *os.File
	trace     *obs.JSONL
	resFile   *os.File
	res       *obs.JSONL
	sloFile   *os.File
	slo       *obs.JSONL
	start     time.Time
	closed    bool
}

// Create initializes an archive directory (making it if needed) and
// opens the event stream. The manifest's Format and StartUnixMs are
// stamped here; ElapsedMs at Close.
func Create(dir string, man Manifest) (*Writer, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("runlog: %w", err)
	}
	f, err := os.Create(filepath.Join(dir, EventsFile))
	if err != nil {
		return nil, fmt.Errorf("runlog: %w", err)
	}
	now := time.Now()
	man.Format = FormatVersion
	man.StartUnixMs = now.UnixMilli()
	return &Writer{dir: dir, man: man, file: f, sink: obs.NewJSONL(f), start: now}, nil
}

// Sink returns the archive's event sink (nil on a nil receiver, so it
// can feed MultiSink unconditionally).
func (w *Writer) Sink() *obs.JSONL {
	if w == nil {
		return nil
	}
	return w.sink
}

// StartTrace opens the archive's pipeline-trace stream (trace.jsonl)
// and returns its sink. Call at most once, before Close; the stream is
// flushed and closed by Close. Tools that never call StartTrace produce
// archives without a trace file — the tracing-off default.
func (w *Writer) StartTrace() (*obs.JSONL, error) {
	if w == nil {
		return nil, nil
	}
	if w.trace != nil {
		return w.trace, nil
	}
	f, err := os.Create(filepath.Join(w.dir, TraceFile))
	if err != nil {
		return nil, fmt.Errorf("runlog: %w", err)
	}
	w.traceFile = f
	w.trace = obs.NewJSONL(f)
	return w.trace, nil
}

// StartResources opens the archive's resource-sample stream
// (resources.jsonl) and returns its sink. Call at most once, before
// Close; the stream is flushed and closed by Close. Tools that never
// call StartResources produce archives without a resources file — the
// sysmon-off default.
func (w *Writer) StartResources() (*obs.JSONL, error) {
	if w == nil {
		return nil, nil
	}
	if w.res != nil {
		return w.res, nil
	}
	f, err := os.Create(filepath.Join(w.dir, ResourcesFile))
	if err != nil {
		return nil, fmt.Errorf("runlog: %w", err)
	}
	w.resFile = f
	w.res = obs.NewJSONL(f)
	return w.res, nil
}

// StartSLO opens the archive's SLO stream (slo.jsonl) and returns its
// sink. Call at most once, before Close; the stream is flushed and
// closed by Close. Tools that never call StartSLO produce archives
// without an SLO file — the -slo-off default.
func (w *Writer) StartSLO() (*obs.JSONL, error) {
	if w == nil {
		return nil, nil
	}
	if w.slo != nil {
		return w.slo, nil
	}
	f, err := os.Create(filepath.Join(w.dir, SLOFile))
	if err != nil {
		return nil, fmt.Errorf("runlog: %w", err)
	}
	w.sloFile = f
	w.slo = obs.NewJSONL(f)
	return w.slo, nil
}

// Close flushes the event stream and writes metrics.json, summary.json
// and manifest.json. It is idempotent; the first error anywhere in the
// archive's lifetime (including latched event-write errors) is
// returned — an archive that did not fully reach disk must fail the
// run loudly. A nil snapshot or summary writes as empty, keeping the
// archive self-contained either way.
func (w *Writer) Close(snap obs.Snapshot, summary Summary) error {
	if w == nil || w.closed {
		return nil
	}
	w.closed = true
	err := w.sink.Flush()
	if cerr := w.file.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("runlog: events: %w", err)
	}
	if w.traceFile != nil {
		err := w.trace.Flush()
		if cerr := w.traceFile.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("runlog: trace: %w", err)
		}
	}
	if w.resFile != nil {
		err := w.res.Flush()
		if cerr := w.resFile.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("runlog: resources: %w", err)
		}
	}
	if w.sloFile != nil {
		err := w.slo.Flush()
		if cerr := w.sloFile.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("runlog: slo: %w", err)
		}
	}
	if err := writeJSONFile(filepath.Join(w.dir, MetricsFile), snap); err != nil {
		return err
	}
	if summary == nil {
		summary = Summary{}
	}
	if err := writeJSONFile(filepath.Join(w.dir, SummaryFile), summary); err != nil {
		return err
	}
	w.man.ElapsedMs = float64(time.Since(w.start).Nanoseconds()) / 1e6
	return writeJSONFile(filepath.Join(w.dir, ManifestFile), w.man)
}

// Dir returns the archive directory ("" on a nil receiver).
func (w *Writer) Dir() string {
	if w == nil {
		return ""
	}
	return w.dir
}

// writeJSONFile writes v as canonical indented JSON (sorted keys via
// encoding/json's map ordering, two-space indent, trailing newline).
func writeJSONFile(path string, v interface{}) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("runlog: %w", err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	err = enc.Encode(v)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("runlog: %s: %w", filepath.Base(path), err)
	}
	return nil
}

// Archive is a fully loaded run archive.
type Archive struct {
	// Dir is where the archive was loaded from ("" for synthesized
	// archives).
	Dir      string
	Manifest Manifest
	Metrics  obs.Snapshot
	// Events is the decoded event stream in emission order. Numeric
	// fields are json.Number (use the obs.Event typed accessors), which
	// is what makes Write reproduce events.jsonl byte-for-byte.
	Events  []obs.Event
	Summary Summary
	// Trace is the decoded pipeline-trace stream (span events), nil when
	// the archive has no trace file — runs with tracing off, and every
	// archive written before the trace plane existed.
	Trace []obs.Event
	// Resources is the decoded sysmon sample stream ("res" events), nil
	// when the archive has no resources file — runs with -sysmon off,
	// and every archive written before the resource plane existed.
	Resources []obs.Event
	// SLO is the decoded SLO stream (slo-window / slo-eval / slo-alert /
	// slo-objective events), nil when the archive has no SLO file — runs
	// with -slo off, and every archive written before the SLO plane
	// existed. Unlike Trace and Resources this stream is deterministic
	// per seed/config/spec.
	SLO []obs.Event
}

// IsArchiveDir reports whether dir looks like a run archive (has a
// manifest file) without loading it.
func IsArchiveDir(dir string) bool {
	st, err := os.Stat(filepath.Join(dir, ManifestFile))
	return err == nil && st.Mode().IsRegular()
}

// Load reads and validates an archive. Errors are descriptive — they
// name the archive directory, the offending file and, for the event
// stream, the record index — and a truncated or corrupted file is
// reported rather than panicking downstream.
func Load(dir string) (*Archive, error) {
	a := &Archive{Dir: dir}
	if err := loadJSONFile(dir, ManifestFile, &a.Manifest); err != nil {
		return nil, err
	}
	if a.Manifest.Format != FormatVersion {
		return nil, fmt.Errorf("runlog: %s: unsupported archive format %d (this build reads format %d)",
			dir, a.Manifest.Format, FormatVersion)
	}
	if a.Manifest.Tool == "" {
		return nil, fmt.Errorf("runlog: %s: manifest has no tool name", dir)
	}
	if err := loadJSONFile(dir, MetricsFile, &a.Metrics); err != nil {
		return nil, err
	}
	if err := loadJSONFile(dir, SummaryFile, &a.Summary); err != nil {
		return nil, err
	}
	f, err := os.Open(filepath.Join(dir, EventsFile))
	if err != nil {
		return nil, fmt.Errorf("runlog: %s: %w", dir, err)
	}
	events, err := obs.ReadEventStream(f)
	f.Close()
	if err != nil {
		return nil, fmt.Errorf("runlog: %s: %s: %w", dir, EventsFile, err)
	}
	a.Events = events
	if tf, err := os.Open(filepath.Join(dir, TraceFile)); err == nil {
		trace, terr := obs.ReadEventStream(tf)
		tf.Close()
		if terr != nil {
			return nil, fmt.Errorf("runlog: %s: %s: %w", dir, TraceFile, terr)
		}
		a.Trace = trace
	} else if !os.IsNotExist(err) {
		return nil, fmt.Errorf("runlog: %s: %w", dir, err)
	}
	if rf, err := os.Open(filepath.Join(dir, ResourcesFile)); err == nil {
		res, rerr := obs.ReadEventStream(rf)
		rf.Close()
		if rerr != nil {
			return nil, fmt.Errorf("runlog: %s: %s: %w", dir, ResourcesFile, rerr)
		}
		a.Resources = res
	} else if !os.IsNotExist(err) {
		return nil, fmt.Errorf("runlog: %s: %w", dir, err)
	}
	if sf, err := os.Open(filepath.Join(dir, SLOFile)); err == nil {
		sloEvents, serr := obs.ReadEventStream(sf)
		sf.Close()
		if serr != nil {
			return nil, fmt.Errorf("runlog: %s: %s: %w", dir, SLOFile, serr)
		}
		a.SLO = sloEvents
	} else if !os.IsNotExist(err) {
		return nil, fmt.Errorf("runlog: %s: %w", dir, err)
	}
	return a, nil
}

func loadJSONFile(dir, name string, v interface{}) error {
	data, err := os.ReadFile(filepath.Join(dir, name))
	if err != nil {
		return fmt.Errorf("runlog: %s: %w", dir, err)
	}
	if err := json.Unmarshal(data, v); err != nil {
		return fmt.Errorf("runlog: %s: %s: invalid or truncated JSON: %w", dir, name, err)
	}
	return nil
}

// Write re-serializes the archive into dir using the same canonical
// encodings as the Writer, so Load(dir₁) → Write(dir₂) reproduces every
// file byte-for-byte. Useful for filtering or migrating archives.
func (a *Archive) Write(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("runlog: %w", err)
	}
	f, err := os.Create(filepath.Join(dir, EventsFile))
	if err != nil {
		return fmt.Errorf("runlog: %w", err)
	}
	werr := func() error {
		for i, e := range a.Events {
			line, err := obs.EncodeEventLine(e)
			if err != nil {
				return fmt.Errorf("runlog: %s: record %d: %w", EventsFile, i+1, err)
			}
			if _, err := f.Write(line); err != nil {
				return fmt.Errorf("runlog: %s: %w", EventsFile, err)
			}
		}
		return nil
	}()
	if cerr := f.Close(); werr == nil && cerr != nil {
		werr = fmt.Errorf("runlog: %s: %w", EventsFile, cerr)
	}
	if werr != nil {
		return werr
	}
	if err := writeJSONFile(filepath.Join(dir, MetricsFile), a.Metrics); err != nil {
		return err
	}
	summary := a.Summary
	if summary == nil {
		summary = Summary{}
	}
	if err := writeJSONFile(filepath.Join(dir, SummaryFile), summary); err != nil {
		return err
	}
	if a.Trace != nil {
		if err := writeEventFile(filepath.Join(dir, TraceFile), a.Trace); err != nil {
			return err
		}
	}
	if a.Resources != nil {
		if err := writeEventFile(filepath.Join(dir, ResourcesFile), a.Resources); err != nil {
			return err
		}
	}
	if a.SLO != nil {
		if err := writeEventFile(filepath.Join(dir, SLOFile), a.SLO); err != nil {
			return err
		}
	}
	return writeJSONFile(filepath.Join(dir, ManifestFile), a.Manifest)
}

// writeEventFile writes a decoded event stream back out through the
// canonical encoder (byte-identical to what the JSONL sink produced).
func writeEventFile(path string, events []obs.Event) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("runlog: %w", err)
	}
	werr := func() error {
		for i, e := range events {
			line, err := obs.EncodeEventLine(e)
			if err != nil {
				return fmt.Errorf("runlog: %s: record %d: %w", filepath.Base(path), i+1, err)
			}
			if _, err := f.Write(line); err != nil {
				return fmt.Errorf("runlog: %s: %w", filepath.Base(path), err)
			}
		}
		return nil
	}()
	if cerr := f.Close(); werr == nil && cerr != nil {
		werr = fmt.Errorf("runlog: %s: %w", filepath.Base(path), cerr)
	}
	return werr
}

// Spans decodes the archive's pipeline trace into spans, in emission
// order (nil when the archive has no trace).
func (a *Archive) Spans() []obs.Span {
	return obs.SpansFromEvents(a.Trace)
}

// IterEvents decodes the archive's solver-convergence stream: every
// kind "iter" event, in emission order.
func (a *Archive) IterEvents() []obs.IterEvent {
	var out []obs.IterEvent
	for _, e := range a.Events {
		if it, ok := e.Iter(); ok {
			out = append(out, it)
		}
	}
	return out
}
