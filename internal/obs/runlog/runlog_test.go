package runlog

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"taccc/internal/obs"
	"taccc/internal/obs/sysmon"
)

// writeSample produces a representative archive: iter events, a span
// event, counters, gauges, a histogram and a summary.
func writeSample(t *testing.T, dir string) {
	t.Helper()
	w, err := Create(dir, Manifest{
		Tool: "tactest", Version: "v1.2.3", Seed: 42,
		Config: map[string]string{"algo": "tabu", "iot": "20"},
	})
	if err != nil {
		t.Fatal(err)
	}
	sink := w.Sink()
	obs.Emit(sink, "iter", map[string]interface{}{"algo": "tabu", "iter": 0, "feasible": false})
	obs.Emit(sink, "iter", map[string]interface{}{"algo": "tabu", "iter": 1, "feasible": true, "best_cost_ms": 18.75})
	obs.EmitSpan(sink, obs.Span{Trace: 7, ID: 1, Name: "request", StartMs: 0, EndMs: 3.5})

	reg := obs.NewRegistry()
	reg.Counter("cluster.requests_ok").Add(10)
	reg.Gauge("cluster.edge_0.queue_depth").Set(2)
	reg.Histogram("cluster.latency_ms", obs.DefaultLatencyBucketsMs()).Observe(3.1)
	if err := w.Close(reg.Snapshot(), Summary{"latency_p50_ms": 3.1, "miss_rate": 0}); err != nil {
		t.Fatal(err)
	}
}

func readArchiveFiles(t *testing.T, dir string) map[string][]byte {
	t.Helper()
	out := map[string][]byte{}
	for _, name := range []string{ManifestFile, EventsFile, MetricsFile, SummaryFile} {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		out[name] = data
	}
	return out
}

// TestRoundTripByteIdentical is the archive acceptance criterion:
// write → load → re-write reproduces every file byte for byte.
func TestRoundTripByteIdentical(t *testing.T) {
	src := filepath.Join(t.TempDir(), "run")
	writeSample(t, src)
	a, err := Load(src)
	if err != nil {
		t.Fatal(err)
	}
	dst := filepath.Join(t.TempDir(), "rewrite")
	if err := a.Write(dst); err != nil {
		t.Fatal(err)
	}
	want, got := readArchiveFiles(t, src), readArchiveFiles(t, dst)
	for name := range want {
		if !bytes.Equal(want[name], got[name]) {
			t.Errorf("%s differs after round trip:\noriginal: %s\nrewrite:  %s", name, want[name], got[name])
		}
	}
}

func TestLoadedArchiveContents(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "run")
	writeSample(t, dir)
	a, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	m := a.Manifest
	if m.Tool != "tactest" || m.Version != "v1.2.3" || m.Seed != 42 || m.Format != FormatVersion {
		t.Fatalf("manifest = %+v", m)
	}
	if m.Config["algo"] != "tabu" {
		t.Fatalf("config = %v", m.Config)
	}
	if m.StartUnixMs == 0 {
		t.Fatal("manifest has no start timestamp")
	}
	if len(a.Events) != 3 {
		t.Fatalf("decoded %d events, want 3", len(a.Events))
	}
	iters := a.IterEvents()
	if len(iters) != 2 || iters[1].BestCost != 18.75 || !iters[1].Feasible {
		t.Fatalf("iter events = %+v", iters)
	}
	if a.Metrics.Counters["cluster.requests_ok"] != 10 {
		t.Fatalf("metrics counters = %v", a.Metrics.Counters)
	}
	if h, ok := a.Metrics.Histograms["cluster.latency_ms"]; !ok || h.Count != 1 {
		t.Fatalf("latency histogram = %+v (ok=%v)", h, ok)
	}
	if a.Summary["latency_p50_ms"] != 3.1 {
		t.Fatalf("summary = %v", a.Summary)
	}
	if !IsArchiveDir(dir) {
		t.Fatal("IsArchiveDir = false for a real archive")
	}
	if IsArchiveDir(t.TempDir()) {
		t.Fatal("IsArchiveDir = true for an empty dir")
	}
}

// TestLoadCorruptionErrors covers every corruption class: the error
// must be descriptive (naming the archive and the offending file), not
// a panic and not a silent partial load.
func TestLoadCorruptionErrors(t *testing.T) {
	newSample := func() string {
		dir := filepath.Join(t.TempDir(), "run")
		writeSample(t, dir)
		return dir
	}
	cases := []struct {
		name    string
		corrupt func(t *testing.T, dir string)
		want    []string
	}{
		{
			name:    "missing archive",
			corrupt: func(t *testing.T, dir string) { os.RemoveAll(dir) },
			want:    []string{"manifest.json"},
		},
		{
			name: "truncated manifest",
			corrupt: func(t *testing.T, dir string) {
				truncateFile(t, filepath.Join(dir, ManifestFile), 10)
			},
			want: []string{ManifestFile, "truncated"},
		},
		{
			name: "corrupted events stream",
			corrupt: func(t *testing.T, dir string) {
				appendFile(t, filepath.Join(dir, EventsFile), "{\"kind\": \"iter\", ga")
			},
			want: []string{EventsFile, "record 4"},
		},
		{
			name: "event record without kind",
			corrupt: func(t *testing.T, dir string) {
				appendFile(t, filepath.Join(dir, EventsFile), "{\"iter\":9}\n")
			},
			want: []string{EventsFile, "kind"},
		},
		{
			name: "future format version",
			corrupt: func(t *testing.T, dir string) {
				data, err := os.ReadFile(filepath.Join(dir, ManifestFile))
				if err != nil {
					t.Fatal(err)
				}
				data = bytes.Replace(data, []byte(`"format": 1`), []byte(`"format": 99`), 1)
				if err := os.WriteFile(filepath.Join(dir, ManifestFile), data, 0o644); err != nil {
					t.Fatal(err)
				}
			},
			want: []string{"unsupported archive format 99"},
		},
		{
			name: "missing metrics",
			corrupt: func(t *testing.T, dir string) {
				if err := os.Remove(filepath.Join(dir, MetricsFile)); err != nil {
					t.Fatal(err)
				}
			},
			want: []string{MetricsFile},
		},
		{
			name: "truncated summary",
			corrupt: func(t *testing.T, dir string) {
				truncateFile(t, filepath.Join(dir, SummaryFile), 5)
			},
			want: []string{SummaryFile},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := newSample()
			tc.corrupt(t, dir)
			_, err := Load(dir)
			if err == nil {
				t.Fatal("Load succeeded on a corrupted archive")
			}
			for _, want := range tc.want {
				if !strings.Contains(err.Error(), want) {
					t.Errorf("error %q does not mention %q", err, want)
				}
			}
			if !strings.Contains(err.Error(), dir) && tc.name != "missing archive" {
				t.Errorf("error %q does not name the archive directory", err)
			}
		})
	}
}

// TestEmptyEventStream: a run that emitted nothing still archives and
// loads cleanly (events.jsonl exists but is empty).
func TestEmptyEventStream(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "run")
	w, err := Create(dir, Manifest{Tool: "tactest", Version: "devel", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(obs.Snapshot{}, nil); err != nil {
		t.Fatal(err)
	}
	a, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Events) != 0 || len(a.Summary) != 0 {
		t.Fatalf("empty run loaded as %d events, summary %v", len(a.Events), a.Summary)
	}
}

// TestCloseIdempotentAndNilSafe: a nil writer no-ops everywhere so CLI
// code can defer Close unconditionally.
func TestCloseIdempotentAndNilSafe(t *testing.T) {
	var w *Writer
	if w.Sink() != nil {
		t.Fatal("nil writer returned a sink")
	}
	if err := w.Close(obs.Snapshot{}, nil); err != nil {
		t.Fatal(err)
	}
	if w.Dir() != "" {
		t.Fatal("nil writer has a dir")
	}
	dir := filepath.Join(t.TempDir(), "run")
	writeSample(t, dir)
}

// writeTracedSample is writeSample plus a pipeline trace stream.
func writeTracedSample(t *testing.T, dir string) {
	t.Helper()
	w, err := Create(dir, Manifest{Tool: "tactest", Version: "v1.2.3", Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	obs.Emit(w.Sink(), "iter", map[string]interface{}{"algo": "tabu", "iter": 0, "feasible": true})
	trace, err := w.StartTrace()
	if err != nil {
		t.Fatal(err)
	}
	clock := obs.NewManualClock(0)
	tr := obs.NewTracer(trace, clock)
	root := tr.Root("pipeline")
	clock.Advance(2)
	ph := root.Child("delay-matrix")
	clock.Advance(5)
	ph.Span("shard", 2, 6, map[string]interface{}{"worker": 0, "items": 9, "busy_ms": 3.5})
	ph.End()
	clock.Advance(1)
	root.End()
	if err := w.Close(obs.Snapshot{}, Summary{"total_ms": 8}); err != nil {
		t.Fatal(err)
	}
}

// TestTraceRoundTrip: trace.jsonl loads into Archive.Trace, decodes to
// spans, and Write reproduces it byte for byte alongside the rest.
func TestTraceRoundTrip(t *testing.T) {
	src := filepath.Join(t.TempDir(), "run")
	writeTracedSample(t, src)
	a, err := Load(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Trace) != 3 {
		t.Fatalf("loaded %d trace events, want 3", len(a.Trace))
	}
	spans := a.Spans()
	if len(spans) != 3 {
		t.Fatalf("decoded %d spans, want 3", len(spans))
	}
	byName := map[string]obs.Span{}
	for _, sp := range spans {
		byName[sp.Name] = sp
	}
	root, ok := byName["pipeline"]
	if !ok || root.EndMs != 8 {
		t.Fatalf("pipeline root = %+v (ok=%v)", root, ok)
	}
	if sh := byName["shard"]; sh.Parent == 0 {
		t.Fatalf("shard span unparented: %+v", sh)
	}
	if w, ok := byName["shard"].AttrNum("worker"); !ok || w != 0 {
		t.Fatalf("shard worker attr = %v (ok=%v)", w, ok)
	}

	dst := filepath.Join(t.TempDir(), "rewrite")
	if err := a.Write(dst); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{ManifestFile, EventsFile, MetricsFile, SummaryFile, TraceFile} {
		want, err := os.ReadFile(filepath.Join(src, name))
		if err != nil {
			t.Fatal(err)
		}
		got, err := os.ReadFile(filepath.Join(dst, name))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want, got) {
			t.Errorf("%s differs after round trip:\noriginal: %s\nrewrite:  %s", name, want, got)
		}
	}
}

// TestTraceAbsentIsFine: archives without trace.jsonl (tracing off, and
// every pre-trace archive) load with a nil Trace, and Write does not
// invent the file.
func TestTraceAbsentIsFine(t *testing.T) {
	src := filepath.Join(t.TempDir(), "run")
	writeSample(t, src)
	a, err := Load(src)
	if err != nil {
		t.Fatal(err)
	}
	if a.Trace != nil || a.Spans() != nil {
		t.Fatalf("untraced archive loaded trace %v", a.Trace)
	}
	dst := filepath.Join(t.TempDir(), "rewrite")
	if err := a.Write(dst); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dst, TraceFile)); !os.IsNotExist(err) {
		t.Fatalf("rewrite of an untraced archive grew a %s (err=%v)", TraceFile, err)
	}
}

// TestStartTraceNilAndCorrupt: nil-writer StartTrace no-ops; a corrupted
// trace stream fails Load with a descriptive error.
func TestStartTraceNilAndCorrupt(t *testing.T) {
	var w *Writer
	sink, err := w.StartTrace()
	if sink != nil || err != nil {
		t.Fatalf("nil writer StartTrace = %v, %v", sink, err)
	}
	dir := filepath.Join(t.TempDir(), "run")
	writeTracedSample(t, dir)
	appendFile(t, filepath.Join(dir, TraceFile), "{\"kind\": \"span\", ga")
	_, err = Load(dir)
	if err == nil || !strings.Contains(err.Error(), TraceFile) {
		t.Fatalf("corrupt trace load error = %v", err)
	}
}

// writeResourcedSample is writeSample plus a sysmon resource stream.
func writeResourcedSample(t *testing.T, dir string) {
	t.Helper()
	w, err := Create(dir, Manifest{Tool: "tactest", Version: "v1.2.3", Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	obs.Emit(w.Sink(), "iter", map[string]interface{}{"algo": "tabu", "iter": 0, "feasible": true})
	res, err := w.StartResources()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		res.Emit(sysmon.Sample{
			TMs: float64(i * 10), UnixMs: int64(1700000000000 + i*10),
			HeapInuseBytes: uint64(1000 + i), HeapAllocBytes: uint64(900 + i),
			TotalAllocBytes: uint64(5000 * (i + 1)), Mallocs: uint64(10 * (i + 1)),
			AllocBytesPerS: float64(i) * 500, GCCycles: uint64(i), GCPauseMs: float64(i) * 0.25,
			Goroutines: 4 + i, RSSBytes: 1 << 20,
		}.Event())
	}
	if err := w.Close(obs.Snapshot{}, Summary{"total_ms": 8}); err != nil {
		t.Fatal(err)
	}
}

// TestResourcesRoundTrip: resources.jsonl loads into Archive.Resources,
// decodes back to samples, and Write reproduces it byte for byte.
func TestResourcesRoundTrip(t *testing.T) {
	src := filepath.Join(t.TempDir(), "run")
	writeResourcedSample(t, src)
	a, err := Load(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Resources) != 3 {
		t.Fatalf("loaded %d resource events, want 3", len(a.Resources))
	}
	samples := sysmon.SamplesFromEvents(a.Resources)
	if len(samples) != 3 {
		t.Fatalf("decoded %d samples, want 3", len(samples))
	}
	if samples[2].TMs != 20 || samples[2].Goroutines != 6 || samples[2].GCPauseMs != 0.5 {
		t.Fatalf("last sample = %+v", samples[2])
	}

	dst := filepath.Join(t.TempDir(), "rewrite")
	if err := a.Write(dst); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{ManifestFile, EventsFile, MetricsFile, SummaryFile, ResourcesFile} {
		want, err := os.ReadFile(filepath.Join(src, name))
		if err != nil {
			t.Fatal(err)
		}
		got, err := os.ReadFile(filepath.Join(dst, name))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want, got) {
			t.Errorf("%s differs after round trip:\noriginal: %s\nrewrite:  %s", name, want, got)
		}
	}
}

// TestResourcesAbsentIsFine: archives without resources.jsonl (sysmon
// off, and every pre-sysmon archive) load with nil Resources, and Write
// does not invent the file.
func TestResourcesAbsentIsFine(t *testing.T) {
	src := filepath.Join(t.TempDir(), "run")
	writeSample(t, src)
	a, err := Load(src)
	if err != nil {
		t.Fatal(err)
	}
	if a.Resources != nil {
		t.Fatalf("unsampled archive loaded resources %v", a.Resources)
	}
	dst := filepath.Join(t.TempDir(), "rewrite")
	if err := a.Write(dst); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dst, ResourcesFile)); !os.IsNotExist(err) {
		t.Fatalf("rewrite of an unsampled archive grew a %s (err=%v)", ResourcesFile, err)
	}
}

// TestStartResourcesNilAndCorrupt: nil-writer StartResources no-ops; a
// corrupted resource stream fails Load with a descriptive error.
func TestStartResourcesNilAndCorrupt(t *testing.T) {
	var w *Writer
	sink, err := w.StartResources()
	if sink != nil || err != nil {
		t.Fatalf("nil writer StartResources = %v, %v", sink, err)
	}
	dir := filepath.Join(t.TempDir(), "run")
	writeResourcedSample(t, dir)
	appendFile(t, filepath.Join(dir, ResourcesFile), "{\"kind\": \"res\", ga")
	_, err = Load(dir)
	if err == nil || !strings.Contains(err.Error(), ResourcesFile) {
		t.Fatalf("corrupt resources load error = %v", err)
	}
}

func truncateFile(t *testing.T, path string, n int64) {
	t.Helper()
	if err := os.Truncate(path, n); err != nil {
		t.Fatal(err)
	}
}

func appendFile(t *testing.T, path, s string) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.WriteString(s); err != nil {
		t.Fatal(err)
	}
}
