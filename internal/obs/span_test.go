package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync/atomic"
	"testing"

	"taccc/internal/par"
)

func TestSpanEventFields(t *testing.T) {
	sp := Span{
		Trace: 7, ID: 3, Parent: 1, Name: "service",
		StartMs: 10, EndMs: 14.5,
		Attrs: map[string]interface{}{"edge": 2, "outcome": "ok"},
	}
	e := sp.Event()
	if e.Kind != "span" {
		t.Fatalf("kind = %q", e.Kind)
	}
	if e.Fields["trace"] != uint64(7) || e.Fields["span"] != uint64(3) || e.Fields["parent"] != uint64(1) {
		t.Fatalf("ids lost: %+v", e.Fields)
	}
	if e.Fields["dur_ms"] != 4.5 || e.Fields["name"] != "service" {
		t.Fatalf("timing lost: %+v", e.Fields)
	}
	if e.Fields["attr.edge"] != 2 || e.Fields["attr.outcome"] != "ok" {
		t.Fatalf("attrs lost: %+v", e.Fields)
	}
	if sp.DurationMs() != 4.5 {
		t.Fatalf("DurationMs = %v", sp.DurationMs())
	}

	root := Span{Trace: 7, ID: 1, Name: "request", StartMs: 0, EndMs: 20}
	if _, hasParent := root.Event().Fields["parent"]; hasParent {
		t.Fatal("root span must omit the parent field")
	}
}

func TestEmitSpanThroughJSONL(t *testing.T) {
	var buf bytes.Buffer
	s := NewJSONL(&buf)
	EmitSpan(nil, Span{Trace: 1, ID: 1, Name: "request"}) // nil sink: no-op
	EmitSpan(s, Span{Trace: 1, ID: 2, Parent: 1, Name: "uplink", StartMs: 0, EndMs: 3})
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	var m map[string]interface{}
	if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
		t.Fatalf("span line not JSON: %v\n%s", err, buf.String())
	}
	if m["kind"] != "span" || m["name"] != "uplink" || m["dur_ms"] != 3.0 {
		t.Fatalf("bad span line: %q", buf.String())
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	one := NewHistogram([]float64{10}) // one bound, one overflow bucket
	one.Observe(5)
	oneSnap := one.snapshot()

	multi := NewHistogram([]float64{1, 10, 100})
	for _, v := range []float64{0.5, 5, 50, 500} {
		multi.Observe(v)
	}
	multiSnap := multi.snapshot()

	cases := []struct {
		name string
		snap HistogramSnapshot
		q    float64
		want float64
	}{
		{"empty p50", HistogramSnapshot{}, 0.5, 0},
		{"empty p0", HistogramSnapshot{}, 0, 0},
		{"empty q>1", HistogramSnapshot{}, 2, 0},
		{"one-bucket p50", oneSnap, 0.5, 10},
		{"one-bucket p100", oneSnap, 1, 10},
		{"q below 0 clamps", multiSnap, -3, 1},
		{"q above 1 clamps", multiSnap, 7, math.Inf(1)},
		{"NaN q clamps to 0", multiSnap, math.NaN(), 1},
		{"p25", multiSnap, 0.25, 1},
		{"p75", multiSnap, 0.75, 100},
	}
	for _, tc := range cases {
		got := tc.snap.Quantile(tc.q)
		if math.IsNaN(got) {
			t.Errorf("%s: Quantile returned NaN", tc.name)
			continue
		}
		if got != tc.want && !(math.IsInf(tc.want, 1) && math.IsInf(got, 1)) {
			t.Errorf("%s: Quantile(%v) = %v, want %v", tc.name, tc.q, got, tc.want)
		}
	}
}

// TestMultiSinkCountEventsConcurrent hammers one fan-out pipeline from many
// goroutines under -race: CountEvents in front of a MultiSink over a JSONL
// sink plus a plain functional sink.
func TestMultiSinkCountEventsConcurrent(t *testing.T) {
	const n = 4000
	reg := NewRegistry()
	var buf bytes.Buffer
	jsonl := NewJSONL(&buf)
	var forwarded atomic.Int64
	sink := CountEvents(reg, MultiSink(jsonl, SinkFunc(func(Event) { forwarded.Add(1) }), NullSink{}))
	kinds := []string{"span", "iter", "cell"}
	par.For(16, n, func(i int) {
		Emit(sink, kinds[i%len(kinds)], map[string]interface{}{"i": i})
	})
	if err := jsonl.Flush(); err != nil {
		t.Fatal(err)
	}
	var counted int64
	for _, k := range kinds {
		c := reg.Counter("events." + k).Value()
		if c == 0 {
			t.Errorf("no events.%s counted", k)
		}
		counted += c
	}
	if counted != n {
		t.Fatalf("counted %d events, want %d", counted, n)
	}
	if forwarded.Load() != n {
		t.Fatalf("forwarded %d events, want %d", forwarded.Load(), n)
	}
	if got := len(strings.Split(strings.TrimSpace(buf.String()), "\n")); got != n {
		t.Fatalf("JSONL wrote %d lines, want %d", got, n)
	}
}
