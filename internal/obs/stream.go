package obs

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
)

// encodeLine renders one event as its canonical JSONL line (trailing
// newline included): the event's fields plus the kind under "kind",
// marshaled as a JSON object. encoding/json sorts object keys, so the
// encoding is deterministic per event — the JSONL sink writes through
// this function and the runlog archive rewriter reproduces stored
// streams byte-for-byte with it.
func encodeLine(e Event) ([]byte, error) {
	line := make(map[string]interface{}, len(e.Fields)+1)
	for k, v := range e.Fields {
		line[k] = v
	}
	line["kind"] = e.Kind
	buf, err := json.Marshal(line)
	if err != nil {
		return nil, err
	}
	return append(buf, '\n'), nil
}

// EncodeEventLine is the exported form of the canonical JSONL encoding;
// consumers that re-serialize decoded streams (run archives, filters)
// use it to stay byte-compatible with the JSONL sink.
func EncodeEventLine(e Event) ([]byte, error) { return encodeLine(e) }

// StreamReader decodes a JSONL event stream as written by the JSONL
// sink: one JSON object per line with the event kind under "kind" and
// every other member as a field. It is the one event-stream ingestion
// path in the repository — runlog archives, tacreport and the CLI tests
// all read through it instead of hand-rolling json.Decoder loops.
//
// Numbers decode as json.Number so that re-encoding a stream reproduces
// the stored bytes exactly; use Event.Num/Event.Int for arithmetic.
// The first malformed record latches an error (with its 1-based record
// index) and stops the stream; Err reports it after Next returns false.
type StreamReader struct {
	dec *json.Decoder
	err error
	n   int
}

// NewStreamReader wraps r in a streaming event decoder.
func NewStreamReader(r io.Reader) *StreamReader {
	dec := json.NewDecoder(r)
	dec.UseNumber()
	return &StreamReader{dec: dec}
}

// Next decodes the next event. It returns false at end of stream or on
// the first malformed record; check Err to distinguish the two.
func (s *StreamReader) Next() (Event, bool) {
	if s.err != nil {
		return Event{}, false
	}
	var line map[string]interface{}
	if err := s.dec.Decode(&line); err != nil {
		if !errors.Is(err, io.EOF) {
			s.err = fmt.Errorf("event stream: record %d: %w", s.n+1, err)
		}
		return Event{}, false
	}
	s.n++
	kind, ok := line["kind"].(string)
	if !ok {
		s.err = fmt.Errorf("event stream: record %d: missing or non-string \"kind\"", s.n)
		return Event{}, false
	}
	delete(line, "kind")
	return Event{Kind: kind, Fields: line}, true
}

// Err returns the latched first error (nil after a clean end of stream).
func (s *StreamReader) Err() error { return s.err }

// N returns the number of events decoded so far.
func (s *StreamReader) N() int { return s.n }

// ReadEventStream decodes an entire JSONL event stream, returning every
// event plus the first decode error (the events before it are returned
// either way).
func ReadEventStream(r io.Reader) ([]Event, error) {
	sr := NewStreamReader(r)
	var out []Event
	for {
		e, ok := sr.Next()
		if !ok {
			return out, sr.Err()
		}
		out = append(out, e)
	}
}

// Str returns the named field as a string.
func (e Event) Str(key string) (string, bool) {
	v, ok := e.Fields[key].(string)
	return v, ok
}

// Num returns the named field as a float64, converting json.Number
// (decoded streams) and every native numeric type (live events).
func (e Event) Num(key string) (float64, bool) { return numValue(e.Fields[key]) }

// numValue coerces any field/attribute value this package round-trips —
// native numerics from live events, json.Number from decoded streams —
// to float64. Shared by Event.Num and Span.AttrNum.
func numValue(v interface{}) (float64, bool) {
	switch v := v.(type) {
	case float64:
		return v, true
	case json.Number:
		f, err := v.Float64()
		return f, err == nil
	case int:
		return float64(v), true
	case int64:
		return float64(v), true
	case uint64:
		return float64(v), true
	case float32:
		return float64(v), true
	}
	return 0, false
}

// Int returns the named field as an int64 (truncating a float field
// only when it is integral).
func (e Event) Int(key string) (int64, bool) {
	switch v := e.Fields[key].(type) {
	case int:
		return int64(v), true
	case int64:
		return v, true
	case uint64:
		return int64(v), true
	case json.Number:
		if i, err := v.Int64(); err == nil {
			return i, true
		}
		return 0, false
	case float64:
		if v == math.Trunc(v) {
			return int64(v), true
		}
	}
	return 0, false
}

// Bool returns the named field as a bool.
func (e Event) Bool(key string) (bool, bool) {
	v, ok := e.Fields[key].(bool)
	return v, ok
}

// Iter decodes an event of kind "iter" (as written by EventProgress)
// back into an IterEvent; ok is false for any other kind. A missing
// best_cost_ms field means no feasible incumbent existed yet, mirrored
// as +Inf exactly as the emitter saw it.
func (e Event) Iter() (IterEvent, bool) {
	if e.Kind != "iter" {
		return IterEvent{}, false
	}
	var ev IterEvent
	ev.Algo, _ = e.Str("algo")
	if i, ok := e.Int("iter"); ok {
		ev.Iter = int(i)
	}
	ev.Feasible, _ = e.Bool("feasible")
	if c, ok := e.Num("best_cost_ms"); ok {
		ev.BestCost = c
	} else {
		ev.BestCost = math.Inf(1)
	}
	return ev, true
}
