package obs

import (
	"fmt"
	"io"
	"math"
	"sync"
)

// IterEvent is one iteration of an iterative solver: Q-learning episodes,
// tabu/LNS/genetic iterations, portfolio arms. BestCost is the incumbent
// (best feasible) total cost after the iteration; Feasible reports whether
// an incumbent exists at all (BestCost is +Inf until one does).
type IterEvent struct {
	// Algo names the emitting algorithm ("qlearning", "tabu", ...; a
	// portfolio reports each member arm under the member's name).
	Algo string
	// Iter is the zero-based iteration index (episode, move, generation
	// or arm index).
	Iter int
	// BestCost is the incumbent total cost in ms (+Inf when none).
	BestCost float64
	// Feasible reports whether a feasible incumbent exists.
	Feasible bool
}

// ProgressSink consumes solver iteration events. Implementations must be
// safe for concurrent use when attached to solvers that may run on
// worker-pool goroutines; OnIter must not block for long — it sits on the
// solver's iteration path.
type ProgressSink interface {
	OnIter(IterEvent)
}

// EmitIter sends an iteration event into s, tolerating a nil sink — the
// one-liner solvers call so instrumentation stays invisible when off.
func EmitIter(s ProgressSink, algo string, iter int, bestCost float64, feasible bool) {
	if s == nil {
		return
	}
	s.OnIter(IterEvent{Algo: algo, Iter: iter, BestCost: bestCost, Feasible: feasible})
}

// ProgressFunc adapts a function to the ProgressSink interface.
type ProgressFunc func(IterEvent)

// OnIter implements ProgressSink.
func (f ProgressFunc) OnIter(ev IterEvent) { f(ev) }

// MultiProgress fans each iteration event out to every non-nil sink.
func MultiProgress(sinks ...ProgressSink) ProgressSink {
	kept := make([]ProgressSink, 0, len(sinks))
	for _, s := range sinks {
		if s != nil {
			kept = append(kept, s)
		}
	}
	switch len(kept) {
	case 0:
		return nil
	case 1:
		return kept[0]
	}
	return ProgressFunc(func(ev IterEvent) {
		for _, s := range kept {
			s.OnIter(ev)
		}
	})
}

// EventProgress adapts an event Sink into a ProgressSink: every iteration
// becomes an Event of kind "iter" with fields algo, iter, feasible and —
// only once an incumbent exists, since +Inf is not JSON-serializable —
// best_cost_ms.
func EventProgress(s Sink) ProgressSink {
	if s == nil {
		return nil
	}
	return ProgressFunc(func(ev IterEvent) {
		fields := map[string]interface{}{
			"algo":     ev.Algo,
			"iter":     ev.Iter,
			"feasible": ev.Feasible,
		}
		if ev.Feasible && !math.IsInf(ev.BestCost, 0) && !math.IsNaN(ev.BestCost) {
			fields["best_cost_ms"] = ev.BestCost
		}
		s.Emit(Event{Kind: "iter", Fields: fields})
	})
}

// MetricsProgress mirrors iteration events into a registry: counter
// "solver.<algo>.iters" counts iterations, gauge "solver.<algo>.best_cost_ms"
// tracks the incumbent (left untouched until one exists).
func MetricsProgress(r *Registry) ProgressSink {
	if r == nil {
		return nil
	}
	return ProgressFunc(func(ev IterEvent) {
		r.Counter("solver." + ev.Algo + ".iters").Inc()
		if ev.Feasible && !math.IsInf(ev.BestCost, 0) && !math.IsNaN(ev.BestCost) {
			r.Gauge("solver." + ev.Algo + ".best_cost_ms").Set(ev.BestCost)
		}
	})
}

// ProgressWriter returns a ProgressSink that prints one human-readable
// line to w every time an algorithm's incumbent improves (and on the first
// iteration), keeping terminal progress output proportional to learning
// progress rather than iteration count. Safe for concurrent use.
func ProgressWriter(w io.Writer) ProgressSink {
	var mu sync.Mutex
	best := make(map[string]float64)
	return ProgressFunc(func(ev IterEvent) {
		mu.Lock()
		defer mu.Unlock()
		prev, seen := best[ev.Algo]
		improved := ev.Feasible && (!seen || ev.BestCost < prev-1e-12)
		if improved {
			best[ev.Algo] = ev.BestCost
		}
		if !improved && seen {
			return
		}
		if !seen && !ev.Feasible {
			best[ev.Algo] = math.Inf(1)
			fmt.Fprintf(w, "%s iter %d: no feasible incumbent yet\n", ev.Algo, ev.Iter)
			return
		}
		fmt.Fprintf(w, "%s iter %d: best %.3f ms\n", ev.Algo, ev.Iter, ev.BestCost)
	})
}
