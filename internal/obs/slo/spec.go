package slo

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseObjectives parses the -slo flag's objective spec: a
// comma-separated list of
//
//	[series.]stat<=threshold[@target]
//
// where series is one of e2e (default), uplink, queue, service,
// downlink; stat is pNN (p95, p99.9), mean, or miss; threshold is
// milliseconds for delay stats and a fraction in [0,1] for miss; and
// target is the compliance percentage of windows (default 99).
//
//	p95<=20@99          p95 e2e delay ≤ 20 ms in 99% of windows
//	uplink.p99<=5       p99 uplink delay ≤ 5 ms in 99% of windows
//	miss<=0.01@95       miss+drop rate ≤ 1% in 95% of windows
//
// Objectives keep spec order; names are derived ("e2e_p95") and
// deduplicated by New.
func ParseObjectives(spec string) ([]Objective, error) {
	var out []Objective
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		o, err := parseObjective(part)
		if err != nil {
			return nil, err
		}
		out = append(out, o)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("slo: empty objective spec")
	}
	return out, nil
}

func parseObjective(part string) (Objective, error) {
	o := Objective{Series: SeriesE2E, Target: 0.99, FireAfter: 1, ResolveAfter: 1}
	lhs, rest, ok := strings.Cut(part, "<=")
	if !ok {
		return o, fmt.Errorf("slo: objective %q: want [series.]stat<=threshold[@target]", part)
	}
	lhs = strings.TrimSpace(lhs)
	if series, stat, hasSeries := strings.Cut(lhs, "."); hasSeries {
		// "p99.9" has a dot but no valid series prefix; only split when
		// the prefix names a series.
		if s, found := SeriesByName(strings.TrimSpace(series)); found {
			o.Series = s
			lhs = strings.TrimSpace(stat)
		}
	}
	st, err := parseStat(lhs)
	if err != nil {
		return o, fmt.Errorf("slo: objective %q: %v", part, err)
	}
	o.Stat = st
	thresh, target, hasTarget := strings.Cut(rest, "@")
	o.Threshold, err = strconv.ParseFloat(strings.TrimSpace(thresh), 64)
	if err != nil {
		return o, fmt.Errorf("slo: objective %q: bad threshold %q", part, strings.TrimSpace(thresh))
	}
	if hasTarget {
		pct, err := strconv.ParseFloat(strings.TrimSpace(target), 64)
		if err != nil || !(pct > 0 && pct <= 100) {
			return o, fmt.Errorf("slo: objective %q: compliance target %q must be a percentage in (0,100]", part, strings.TrimSpace(target))
		}
		o.Target = pct / 100
	}
	if err := o.validate(); err != nil {
		return o, fmt.Errorf("slo: objective %q: %v", part, err)
	}
	return o, nil
}

func parseStat(s string) (Stat, error) {
	switch s {
	case "mean":
		return StatMean, nil
	case "miss":
		return StatMiss, nil
	}
	if strings.HasPrefix(s, "p") {
		pct, err := strconv.ParseFloat(s[1:], 64)
		if err == nil && pct > 0 && pct < 100 {
			return StatQuantile(pct / 100), nil
		}
	}
	return Stat{}, fmt.Errorf("unknown stat %q (want pNN, mean, or miss)", s)
}
