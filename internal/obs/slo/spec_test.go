package slo

import (
	"strings"
	"testing"
)

func TestParseObjectives(t *testing.T) {
	objs, err := ParseObjectives("p95<=20@99, uplink.p99<=5, miss<=0.01@95, service.mean<=2.5")
	if err != nil {
		t.Fatalf("ParseObjectives: %v", err)
	}
	if len(objs) != 4 {
		t.Fatalf("parsed %d objectives, want 4", len(objs))
	}
	want := []Objective{
		{Series: SeriesE2E, Stat: StatQuantile(0.95), Threshold: 20, Target: 0.99},
		{Series: SeriesUplink, Stat: StatQuantile(0.99), Threshold: 5, Target: 0.99},
		{Series: SeriesE2E, Stat: StatMiss, Threshold: 0.01, Target: 0.95},
		{Series: SeriesService, Stat: StatMean, Threshold: 2.5, Target: 0.99},
	}
	for i, w := range want {
		got := objs[i]
		if got.Series != w.Series || got.Stat != w.Stat || got.Threshold != w.Threshold ||
			abs(got.Target-w.Target) > 1e-12 {
			t.Errorf("objective %d = %+v, want %+v", i, got, w)
		}
		if got.FireAfter != 1 || got.ResolveAfter != 1 {
			t.Errorf("objective %d hysteresis = %d/%d, want 1/1", i, got.FireAfter, got.ResolveAfter)
		}
	}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// TestParseFractionalQuantile pins that "p99.9" parses as a quantile
// with a fractional percentage, not as series "p99" + stat "9".
func TestParseFractionalQuantile(t *testing.T) {
	objs, err := ParseObjectives("p99.9<=100")
	if err != nil {
		t.Fatalf("ParseObjectives: %v", err)
	}
	if objs[0].Series != SeriesE2E || objs[0].Stat.Kind != "quantile" || abs(objs[0].Stat.Q-0.999) > 1e-12 {
		t.Fatalf("p99.9 parsed as %+v", objs[0])
	}
	if objs[0].Stat.String() != "p99.9" {
		t.Fatalf("stat renders as %q, want p99.9", objs[0].Stat.String())
	}
}

func TestParseObjectivesErrors(t *testing.T) {
	cases := []struct {
		spec, wantErr string
	}{
		{"", "empty"},
		{" , ", "empty"},
		{"p95", "want [series.]stat<=threshold"},
		{"p95<=abc", "bad threshold"},
		{"p95<=20@0", "must be a percentage"},
		{"p95<=20@101", "must be a percentage"},
		{"p0<=20", "unknown stat"},
		{"p100<=20", "unknown stat"},
		{"median<=20", "unknown stat"},
		{"bogus.p95<=20", "unknown stat"}, // unknown series leaves "bogus.p95" as the stat
		{"uplink.miss<=0.1", "only defined on the e2e series"},
		{"miss<=1.5", "outside [0,1]"},
		{"p95<=-3", "invalid threshold"},
	}
	for _, tc := range cases {
		_, err := ParseObjectives(tc.spec)
		if err == nil {
			t.Errorf("spec %q: no error, want %q", tc.spec, tc.wantErr)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("spec %q: error %q does not contain %q", tc.spec, err, tc.wantErr)
		}
	}
}

// TestSpecRoundTrip checks Objective.Spec re-parses to the same
// objective.
func TestSpecRoundTrip(t *testing.T) {
	objs, err := ParseObjectives("queue.p95<=7.5@99.5")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	back, err := ParseObjectives(objs[0].Spec())
	if err != nil {
		t.Fatalf("re-parse %q: %v", objs[0].Spec(), err)
	}
	if back[0].Series != objs[0].Series || back[0].Stat != objs[0].Stat ||
		back[0].Threshold != objs[0].Threshold || abs(back[0].Target-objs[0].Target) > 1e-12 {
		t.Fatalf("round trip %q → %+v, want %+v", objs[0].Spec(), back[0], objs[0])
	}
}
