package slo

import (
	"math"
	"sort"
	"testing"

	"taccc/internal/obs"
)

// collect is an obs.Sink that retains every event.
type collect struct{ events []obs.Event }

func (c *collect) Emit(e obs.Event) { c.events = append(c.events, e) }

func (c *collect) kind(k string) []obs.Event {
	var out []obs.Event
	for _, e := range c.events {
		if e.Kind == k {
			out = append(out, e)
		}
	}
	return out
}

func mustNew(t *testing.T, cfg Config) *Tracker {
	t.Helper()
	tr, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return tr
}

func TestWindowRotation(t *testing.T) {
	sink := &collect{}
	tr := mustNew(t, Config{
		WindowMs:   100,
		Objectives: []Objective{{Series: SeriesE2E, Stat: StatQuantile(0.95), Threshold: 1e9, Target: 0.99}},
		Sink:       sink,
	})
	// Window 0: two observations. Window 1 empty. Window 3: one
	// observation; windows close lazily as time advances.
	tr.Observe(10, 5, false)
	tr.Observe(90, 7, false)
	if got := len(sink.kind("slo-window")); got != 0 {
		t.Fatalf("window closed early: %d events", got)
	}
	tr.Observe(310, 9, false) // advances past windows 0,1,2
	wins := sink.kind("slo-window")
	if len(wins) != 1 {
		t.Fatalf("want 1 closed window (empty windows skipped), got %d", len(wins))
	}
	if idx, _ := wins[0].Int("window"); idx != 0 {
		t.Fatalf("window index = %d, want 0", idx)
	}
	if n, _ := wins[0].Int("count"); n != 2 {
		t.Fatalf("window count = %d, want 2", n)
	}
	if start, _ := wins[0].Num("start_ms"); start != 0 {
		t.Fatalf("start_ms = %v, want 0", start)
	}
	if end, _ := wins[0].Num("end_ms"); end != 100 {
		t.Fatalf("end_ms = %v, want 100", end)
	}
	tr.Finish(400)
	wins = sink.kind("slo-window")
	if len(wins) != 2 {
		t.Fatalf("after Finish want 2 closed windows, got %d", len(wins))
	}
	if idx, _ := wins[1].Int("window"); idx != 3 {
		t.Fatalf("second window index = %d, want 3", idx)
	}
	if end, _ := wins[1].Num("end_ms"); end != 400 {
		t.Fatalf("final partial window end_ms = %v, want 400 (Finish time)", end)
	}
}

// TestWindowQuantilesVsBruteForce checks the windowed quantile against a
// brute-force sort of the same samples, allowing the histogram's
// bucket-upper-bound semantics: the estimate must be the smallest bucket
// bound at or above the exact order statistic.
func TestWindowQuantilesVsBruteForce(t *testing.T) {
	sink := &collect{}
	tr := mustNew(t, Config{
		WindowMs:   1000,
		Objectives: []Objective{{Series: SeriesE2E, Stat: StatQuantile(0.95), Threshold: 1e9, Target: 0.99}},
		Sink:       sink,
	})
	// Deterministic LCG so the test needs no rand import.
	state := uint64(42)
	next := func() float64 {
		state = state*6364136223846793005 + 1442695040888963407
		return float64(state>>40) / float64(1<<24) // [0,1)
	}
	var samples []float64
	for i := 0; i < 500; i++ {
		v := math.Pow(2000, next()) // log-uniform over [1, 2000) ms
		samples = append(samples, v)
		tr.Observe(float64(i), v, false)
	}
	tr.Finish(1000)
	wins := sink.kind("slo-window")
	if len(wins) != 1 {
		t.Fatalf("want 1 window, got %d", len(wins))
	}
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	bounds := obs.DefaultLatencyBucketsMs()
	for _, q := range []struct {
		field string
		q     float64
	}{{"p50_ms", 0.50}, {"p95_ms", 0.95}, {"p99_ms", 0.99}} {
		got, ok := wins[0].Num(q.field)
		if !ok {
			t.Fatalf("window event missing %s", q.field)
		}
		exact := sorted[int(math.Ceil(q.q*float64(len(sorted))))-1]
		// Smallest bound >= exact is the histogram's answer.
		want := math.Inf(1)
		for _, b := range bounds {
			if b >= exact {
				want = b
				break
			}
		}
		if math.IsInf(want, 1) {
			want = 2 * bounds[len(bounds)-1]
		}
		if got != want {
			t.Errorf("%s = %v, want bucket bound %v (exact %v)", q.field, got, want, exact)
		}
		if got < exact && got != want {
			t.Errorf("%s = %v underestimates exact order statistic %v", q.field, got, exact)
		}
	}
	mean, _ := wins[0].Num("mean_ms")
	sum := 0.0
	for _, v := range samples {
		sum += v
	}
	if math.Abs(mean-sum/float64(len(samples))) > 1e-9 {
		t.Errorf("mean_ms = %v, want exact %v", mean, sum/float64(len(samples)))
	}
}

func TestBudgetBurnMath(t *testing.T) {
	sink := &collect{}
	tr := mustNew(t, Config{
		WindowMs: 10,
		Objectives: []Objective{{
			Name: "lat", Series: SeriesE2E, Stat: StatQuantile(0.95),
			Threshold: 50, Target: 0.90, FireAfter: 100, ResolveAfter: 1,
		}},
		Sink:         sink,
		BurnLookback: 4,
	})
	// 10 windows: windows 2 and 7 violate (latency 500 > 50), others
	// comply (latency 1).
	for w := 0; w < 10; w++ {
		v := 1.0
		if w == 2 || w == 7 {
			v = 500
		}
		tr.Observe(float64(w*10)+5, v, false)
	}
	tr.Finish(100)
	res := tr.Results()
	if len(res) != 1 {
		t.Fatalf("want 1 result, got %d", len(res))
	}
	r := res[0]
	if r.Windows != 10 || r.Violations != 2 {
		t.Fatalf("windows/violations = %d/%d, want 10/2", r.Windows, r.Violations)
	}
	if r.CompliancePct != 80 {
		t.Fatalf("compliance = %v, want 80", r.CompliancePct)
	}
	// Budget: (1-0.90)*10 = 1 window allowed, 2 spent → remaining -1.
	if math.Abs(r.BudgetTotal-1) > 1e-9 || math.Abs(r.BudgetRemaining-(-1)) > 1e-9 {
		t.Fatalf("budget total/remaining = %v/%v, want 1/-1", r.BudgetTotal, r.BudgetRemaining)
	}
	if r.Met {
		t.Fatalf("objective reported met at 80%% compliance vs 90%% target")
	}
	// Burn at the last window: lookback 4 covers windows 6..9, one bad
	// (window 7) → rate 0.25 / allowed 0.10 = 2.5.
	if math.Abs(r.BurnRate-2.5) > 1e-9 {
		t.Fatalf("burn rate = %v, want 2.5", r.BurnRate)
	}
	// Spot-check the per-window eval stream: window 2's eval must carry
	// burn 1/3 / 0.1 (lookback holds 3 windows, one bad).
	evals := sink.kind("slo-eval")
	if len(evals) != 10 {
		t.Fatalf("want 10 eval events, got %d", len(evals))
	}
	burn2, _ := evals[2].Num("burn_rate")
	if math.Abs(burn2-(1.0/3.0)/0.10) > 1e-9 {
		t.Fatalf("window 2 burn = %v, want %v", burn2, (1.0/3.0)/0.10)
	}
	if v, _ := evals[2].Bool("violated"); !v {
		t.Fatalf("window 2 eval not marked violated")
	}
	if rem, _ := evals[9].Num("budget_remaining"); math.Abs(rem-(-1)) > 1e-9 {
		t.Fatalf("final eval budget_remaining = %v, want -1", rem)
	}
}

func TestAlertHysteresis(t *testing.T) {
	sink := &collect{}
	tr := mustNew(t, Config{
		WindowMs: 10,
		Objectives: []Objective{{
			Name: "lat", Series: SeriesE2E, Stat: StatMean,
			Threshold: 50, Target: 0.5, FireAfter: 2, ResolveAfter: 3,
		}},
		Sink: sink,
	})
	// Pattern: bad, good, bad, bad(fire), bad, good, good, bad(reset
	// resolve count), good, good, good(resolve).
	vals := []float64{500, 1, 500, 500, 500, 1, 1, 500, 1, 1, 1}
	for w, v := range vals {
		tr.Observe(float64(w*10)+5, v, false)
	}
	tr.Finish(float64(len(vals) * 10))
	alerts := sink.kind("slo-alert")
	if len(alerts) != 2 {
		t.Fatalf("want exactly 2 alert transitions (fire, resolve), got %d: %v", len(alerts), alerts)
	}
	if s, _ := alerts[0].Str("state"); s != "firing" {
		t.Fatalf("first transition state = %q, want firing", s)
	}
	if w, _ := alerts[0].Int("window"); w != 3 {
		t.Fatalf("fired at window %d, want 3 (second consecutive violation)", w)
	}
	if s, _ := alerts[1].Str("state"); s != "resolved" {
		t.Fatalf("second transition state = %q, want resolved", s)
	}
	if w, _ := alerts[1].Int("window"); w != 10 {
		t.Fatalf("resolved at window %d, want 10 (third consecutive good)", w)
	}
	if reason, _ := alerts[1].Str("reason"); reason != "recovered" {
		t.Fatalf("resolve reason = %q, want recovered", reason)
	}
	res := tr.Results()[0]
	if res.Alerts != 1 || res.Firing {
		t.Fatalf("alerts/firing = %d/%v, want 1/false", res.Alerts, res.Firing)
	}
}

func TestFinishForceResolves(t *testing.T) {
	sink := &collect{}
	tr := mustNew(t, Config{
		WindowMs: 10,
		Objectives: []Objective{{
			Name: "lat", Series: SeriesE2E, Stat: StatMean, Threshold: 50, Target: 0.99,
		}},
		Sink: sink,
	})
	tr.Observe(5, 500, false)
	tr.Observe(15, 500, false)
	tr.Finish(20)
	alerts := sink.kind("slo-alert")
	if len(alerts) != 2 {
		t.Fatalf("want fire + end-of-run resolve, got %d transitions", len(alerts))
	}
	if reason, _ := alerts[1].Str("reason"); reason != "end-of-run" {
		t.Fatalf("resolve reason = %q, want end-of-run", reason)
	}
	if tr.Results()[0].Firing {
		t.Fatalf("still firing after Finish")
	}
	objs := sink.kind("slo-objective")
	if len(objs) != 1 {
		t.Fatalf("want 1 slo-objective summary, got %d", len(objs))
	}
	if met, _ := objs[0].Bool("met"); met {
		t.Fatalf("objective reported met with 100%% violations")
	}
	if a, _ := objs[0].Int("alerts"); a != 1 {
		t.Fatalf("summary alerts = %d, want 1", a)
	}
}

func TestMissRateCountsDrops(t *testing.T) {
	sink := &collect{}
	tr := mustNew(t, Config{
		WindowMs: 100,
		Objectives: []Objective{{
			Name: "miss", Series: SeriesE2E, Stat: StatMiss, Threshold: 0.10, Target: 0.99,
		}},
		Sink: sink,
	})
	// 3 completions (1 missed deadline) + 1 drop → miss rate (1+1)/4.
	tr.Observe(10, 5, false)
	tr.Observe(20, 5, true)
	tr.Observe(30, 5, false)
	tr.ObserveDrop(40)
	tr.Finish(100)
	wins := sink.kind("slo-window")
	if len(wins) != 1 {
		t.Fatalf("want 1 window event, got %d", len(wins))
	}
	mr, ok := wins[0].Num("miss_rate")
	if !ok || math.Abs(mr-0.5) > 1e-9 {
		t.Fatalf("miss_rate = %v (ok=%v), want 0.5", mr, ok)
	}
	evals := sink.kind("slo-eval")
	if len(evals) != 1 {
		t.Fatalf("want 1 eval, got %d", len(evals))
	}
	if v, _ := evals[0].Bool("violated"); !v {
		t.Fatalf("miss objective not violated at rate 0.5 vs threshold 0.1")
	}
}

// TestDropOnlyWindowStillEvaluatesMiss pins that a window containing
// only drops (no completions) still closes and counts a 100% miss rate,
// while delay objectives skip it for lack of signal.
func TestDropOnlyWindowStillEvaluatesMiss(t *testing.T) {
	sink := &collect{}
	tr := mustNew(t, Config{
		WindowMs: 100,
		Objectives: []Objective{
			{Name: "miss", Series: SeriesE2E, Stat: StatMiss, Threshold: 0.10, Target: 0.99},
			{Name: "lat", Series: SeriesE2E, Stat: StatQuantile(0.95), Threshold: 50, Target: 0.99},
		},
		Sink: sink,
	})
	tr.ObserveDrop(10)
	tr.ObserveDrop(20)
	tr.Finish(100)
	if wins := sink.kind("slo-window"); len(wins) != 0 {
		t.Fatalf("drop-only window emitted %d per-series events, want 0", len(wins))
	}
	evals := sink.kind("slo-eval")
	if len(evals) != 1 {
		t.Fatalf("want 1 eval (miss only), got %d", len(evals))
	}
	if name, _ := evals[0].Str("objective"); name != "miss" {
		t.Fatalf("evaluated objective %q, want miss", name)
	}
	if observed, _ := evals[0].Num("observed"); observed != 1 {
		t.Fatalf("drop-only miss rate = %v, want 1", observed)
	}
	res := tr.Results()
	if res[1].Windows != 0 {
		t.Fatalf("latency objective evaluated %d windows, want 0 (no delay signal)", res[1].Windows)
	}
	if !res[1].Met {
		t.Fatalf("latency objective with no signal should trivially be met")
	}
}

func TestPerPhaseSeries(t *testing.T) {
	sink := &collect{}
	tr := mustNew(t, Config{
		WindowMs: 100,
		Objectives: []Objective{{
			Name: "up", Series: SeriesUplink, Stat: StatQuantile(0.99), Threshold: 3, Target: 0.99,
		}},
		Sink: sink,
	})
	tr.ObserveRequest(10, 4, 1, 2, 1, 8, false)
	tr.Finish(100)
	wins := sink.kind("slo-window")
	if len(wins) != int(numSeries) {
		t.Fatalf("want %d per-series window events, got %d", numSeries, len(wins))
	}
	bySeries := map[string]obs.Event{}
	for _, e := range wins {
		s, _ := e.Str("series")
		bySeries[s] = e
	}
	for _, want := range []struct {
		series string
		mean   float64
	}{{"e2e", 8}, {"uplink", 4}, {"queue", 1}, {"service", 2}, {"downlink", 1}} {
		e, ok := bySeries[want.series]
		if !ok {
			t.Fatalf("missing series %s", want.series)
		}
		if m, _ := e.Num("mean_ms"); m != want.mean {
			t.Errorf("series %s mean = %v, want %v", want.series, m, want.mean)
		}
	}
	evals := sink.kind("slo-eval")
	if len(evals) != 1 {
		t.Fatalf("want 1 eval, got %d", len(evals))
	}
	if v, _ := evals[0].Bool("violated"); !v {
		t.Fatalf("uplink p99=5>3 not flagged (uplink sample 4ms → bucket bound 5)")
	}
}

func TestNilTrackerSafeAndZeroAlloc(t *testing.T) {
	var tr *Tracker
	allocs := testing.AllocsPerRun(100, func() {
		tr.Observe(1, 2, false)
		tr.ObserveRequest(1, 1, 1, 1, 1, 4, false)
		tr.ObserveDrop(1)
		tr.Finish(10)
		_ = tr.Results()
		_ = tr.WindowMs()
		_ = tr.Objectives()
	})
	if allocs != 0 {
		t.Fatalf("nil tracker allocated %v per run, want 0", allocs)
	}
}

// TestSteadyStateObserveZeroAlloc pins that feeding a configured tracker
// is allocation-free once windows exist (ring slots are reset in place;
// events only allocate at window close, excluded here by a huge window).
func TestSteadyStateObserveZeroAlloc(t *testing.T) {
	tr := mustNew(t, Config{
		WindowMs:   1e12,
		Objectives: []Objective{{Series: SeriesE2E, Stat: StatQuantile(0.95), Threshold: 10, Target: 0.99}},
	})
	tr.ObserveRequest(0, 1, 1, 1, 1, 4, false)
	now := 1.0
	allocs := testing.AllocsPerRun(1000, func() {
		tr.ObserveRequest(now, 1, 1, 1, 1, 4, false)
		now++
	})
	if allocs != 0 {
		t.Fatalf("steady-state ObserveRequest allocated %v per run, want 0", allocs)
	}
}

func TestRegistryGauges(t *testing.T) {
	reg := obs.NewRegistry()
	tr := mustNew(t, Config{
		WindowMs: 10,
		Objectives: []Objective{{
			Name: "lat", Series: SeriesE2E, Stat: StatMean, Threshold: 50, Target: 0.9,
		}},
		Metrics: reg,
	})
	tr.Observe(5, 500, false)
	tr.Observe(15, 1, false) // closes window 0 (violating)
	snap := obs.MergeSnapshots(reg.Snapshot())
	if v, ok := snap.Gauges["slo.obj.lat.firing"]; !ok || v != 1 {
		t.Fatalf("slo.obj.lat.firing = %v (ok=%v), want 1", v, ok)
	}
	if v := snap.Gauges["slo.window.e2e.mean_ms"]; v != 500 {
		t.Fatalf("slo.window.e2e.mean_ms = %v, want 500", v)
	}
	if v := snap.Gauges["slo.obj.lat.compliance_pct"]; v != 0 {
		t.Fatalf("compliance gauge = %v, want 0 after one violating window", v)
	}
	if v := snap.Gauges["slo.window_ms"]; v != 10 {
		t.Fatalf("slo.window_ms gauge = %v, want 10", v)
	}
	tr.Finish(20)
	snap = obs.MergeSnapshots(reg.Snapshot())
	if v := snap.Gauges["slo.obj.lat.firing"]; v != 0 {
		t.Fatalf("firing gauge = %v after Finish, want 0", v)
	}
	if v := snap.Gauges["slo.obj.lat.compliance_pct"]; v != 50 {
		t.Fatalf("final compliance gauge = %v, want 50", v)
	}
}

func TestNewValidation(t *testing.T) {
	valid := []Objective{{Series: SeriesE2E, Stat: StatMean, Threshold: 1, Target: 0.99}}
	cases := []struct {
		name string
		cfg  Config
	}{
		{"zero window", Config{WindowMs: 0, Objectives: valid}},
		{"negative window", Config{WindowMs: -5, Objectives: valid}},
		{"no objectives", Config{WindowMs: 10}},
		{"bad quantile", Config{WindowMs: 10, Objectives: []Objective{{Stat: StatQuantile(1.5), Threshold: 1, Target: 0.99}}}},
		{"bad target", Config{WindowMs: 10, Objectives: []Objective{{Stat: StatMean, Threshold: 1, Target: 1.5}}}},
		{"miss on phase series", Config{WindowMs: 10, Objectives: []Objective{{Series: SeriesUplink, Stat: StatMiss, Threshold: 0.1, Target: 0.99}}}},
		{"negative threshold", Config{WindowMs: 10, Objectives: []Objective{{Stat: StatMean, Threshold: -1, Target: 0.99}}}},
	}
	for _, tc := range cases {
		if _, err := New(tc.cfg); err == nil {
			t.Errorf("%s: New accepted invalid config", tc.name)
		}
	}
}

func TestNameDerivationAndDedup(t *testing.T) {
	tr := mustNew(t, Config{
		WindowMs: 10,
		Objectives: []Objective{
			{Series: SeriesE2E, Stat: StatQuantile(0.95), Threshold: 10, Target: 0.99},
			{Series: SeriesE2E, Stat: StatQuantile(0.95), Threshold: 20, Target: 0.99},
			{Series: SeriesUplink, Stat: StatMean, Threshold: 5, Target: 0.9},
		},
	})
	got := []string{}
	for _, o := range tr.Objectives() {
		got = append(got, o.Name)
	}
	want := []string{"e2e_p95", "e2e_p95_2", "uplink_mean"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("names = %v, want %v", got, want)
		}
	}
}
