// Package slo is the streaming service-level-objective plane: rolling
// fixed-width windows over the cluster simulator's end-to-end and
// per-phase delay observations, evaluated against declared objectives
// ("p95 e2e delay ≤ 20 ms for 99% of windows") with error-budget
// accounting, burn-rate computation, and typed fire/resolve alert
// events.
//
// Windows advance on *simulated* time: every observation carries its
// sim-time timestamp and the tracker never reads a clock, so the entire
// SLO stream — windowed quantiles, budget arithmetic, alert timeline —
// is a pure function of (seed, configuration) and stays byte-identical
// at any -workers setting. taclint's detrand analyzer enforces the
// no-wall-clock contract over this package.
//
// Like every obs plane, the tracker is optional, nil-safe and free when
// off: a nil *Tracker no-ops every method without allocating, so the
// simulator threads it through unconditionally.
package slo

import (
	"fmt"
	"math"

	"taccc/internal/obs"
)

// Series identifies one tracked delay distribution: the end-to-end
// latency or one of the simulator's per-phase components.
type Series int

// Tracked series, in emission order. The four phase series mirror the
// cluster.delay.* histograms; SeriesE2E mirrors cluster.latency_ms.
const (
	SeriesE2E Series = iota
	SeriesUplink
	SeriesQueue
	SeriesService
	SeriesDownlink
	numSeries
)

var seriesNames = [numSeries]string{"e2e", "uplink", "queue", "service", "downlink"}

// String returns the series' wire name ("e2e", "uplink", ...).
func (s Series) String() string {
	if s < 0 || s >= numSeries {
		return fmt.Sprintf("series(%d)", int(s))
	}
	return seriesNames[s]
}

// SeriesByName resolves a wire name back to its Series.
func SeriesByName(name string) (Series, bool) {
	for i, n := range seriesNames {
		if n == name {
			return Series(i), true
		}
	}
	return 0, false
}

// Stat selects which windowed statistic an objective thresholds.
type Stat struct {
	// Kind is "quantile", "mean" or "miss".
	Kind string
	// Q is the quantile in (0, 1) when Kind is "quantile".
	Q float64
}

// Stat constructors / well-known stats.
var (
	StatMean = Stat{Kind: "mean"}
	// StatMiss is the window's miss rate: (deadline misses + drops) /
	// (completions + drops). It only applies to SeriesE2E.
	StatMiss = Stat{Kind: "miss"}
)

// StatQuantile returns the quantile statistic for q in (0, 1).
func StatQuantile(q float64) Stat { return Stat{Kind: "quantile", Q: q} }

// String renders the stat in spec syntax ("p95", "mean", "miss").
func (s Stat) String() string {
	if s.Kind == "quantile" {
		return "p" + trimFloat(s.Q*100)
	}
	return s.Kind
}

// trimFloat formats v without trailing zeros (95, 99.9).
func trimFloat(v float64) string {
	out := fmt.Sprintf("%g", v)
	return out
}

// Objective is one service-level objective: a thresholded windowed
// statistic plus the fraction of windows that must comply.
type Objective struct {
	// Name identifies the objective in events, metrics and reports. It
	// must be metric-name safe ([a-z0-9_]); New derives "<series>_<stat>"
	// when empty, deduplicating with numeric suffixes.
	Name string
	// Series and Stat pick the windowed statistic ("p95 of e2e").
	Series Series
	Stat   Stat
	// Threshold is the compliance bound: a window complies when the
	// statistic is <= Threshold (milliseconds for delay stats, a
	// fraction in [0,1] for StatMiss).
	Threshold float64
	// Target is the compliance objective: the fraction of (non-empty)
	// windows that must comply, in (0, 1]. The error budget allows
	// (1-Target) of windows to violate.
	Target float64
	// FireAfter is the number of consecutive violating windows before an
	// alert fires; ResolveAfter the number of consecutive compliant
	// windows before a firing alert resolves. Both default to 1.
	FireAfter    int
	ResolveAfter int
}

// validate checks one objective (after defaulting).
func (o Objective) validate() error {
	switch o.Stat.Kind {
	case "quantile":
		if !(o.Stat.Q > 0 && o.Stat.Q < 1) {
			return fmt.Errorf("slo: objective %s: quantile %v outside (0,1)", o.Name, o.Stat.Q)
		}
	case "mean":
	case "miss":
		if o.Series != SeriesE2E {
			return fmt.Errorf("slo: objective %s: miss rate is only defined on the e2e series", o.Name)
		}
		if o.Threshold < 0 || o.Threshold > 1 {
			return fmt.Errorf("slo: objective %s: miss threshold %v outside [0,1]", o.Name, o.Threshold)
		}
	default:
		return fmt.Errorf("slo: objective %s: unknown stat kind %q", o.Name, o.Stat.Kind)
	}
	if o.Series < 0 || o.Series >= numSeries {
		return fmt.Errorf("slo: objective %s: unknown series %d", o.Name, int(o.Series))
	}
	if math.IsNaN(o.Threshold) || math.IsInf(o.Threshold, 0) || (o.Stat.Kind != "miss" && o.Threshold < 0) {
		return fmt.Errorf("slo: objective %s: invalid threshold %v", o.Name, o.Threshold)
	}
	if !(o.Target > 0 && o.Target <= 1) {
		return fmt.Errorf("slo: objective %s: compliance target %v outside (0,1]", o.Name, o.Target)
	}
	if o.FireAfter < 1 || o.ResolveAfter < 1 {
		return fmt.Errorf("slo: objective %s: hysteresis counts must be >= 1", o.Name)
	}
	return nil
}

// Spec renders the objective in the -slo flag's spec syntax.
func (o Objective) Spec() string {
	return fmt.Sprintf("%s.%s<=%g@%g", o.Series, o.Stat, o.Threshold, o.Target*100)
}

// Config configures a Tracker. Sink and Metrics are optional; both keep
// the SLO stream out of the simulator's own registry and event stream so
// archived events.jsonl/metrics.json stay byte-identical with the plane
// on or off.
type Config struct {
	// WindowMs is the fixed window width in simulated milliseconds
	// (required, > 0).
	WindowMs float64
	// Objectives are evaluated against every closed non-empty window.
	Objectives []Objective
	// Sink receives the SLO event stream ("slo-window", "slo-eval",
	// "slo-alert", "slo-objective" events); runs archive it as slo.jsonl.
	Sink obs.Sink
	// Metrics receives live gauges (current-window quantiles, budget,
	// burn, firing flags) for the telemetry server / tactop. Use a
	// dedicated registry, merged at serve time like sysmon's.
	Metrics *obs.Registry
	// BurnLookback is the number of recent windows the burn rate is
	// computed over (default 10).
	BurnLookback int
}

// DefaultBurnLookback is the burn-rate lookback when Config leaves it 0.
const DefaultBurnLookback = 10

// windowHist is one series' histogram for the current window. Bounds are
// shared across series and windows; counts are reset in place on
// rotation, so steady-state observation is allocation-free.
type windowHist struct {
	counts []int64
	count  int64
	sum    float64
}

func (w *windowHist) observe(bounds []float64, v float64) {
	w.counts[searchFloat64s(bounds, v)]++
	w.count++
	w.sum += v
}

func (w *windowHist) reset() {
	for i := range w.counts {
		w.counts[i] = 0
	}
	w.count = 0
	w.sum = 0
}

// searchFloat64s is sort.SearchFloat64s without the package dependency
// dance: smallest index i with bounds[i] >= v, len(bounds) when none.
func searchFloat64s(bounds []float64, v float64) int {
	lo, hi := 0, len(bounds)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// snapshot views the window as an obs.HistogramSnapshot without copying
// (callers must not retain it past the next reset).
func (w *windowHist) snapshot(bounds []float64) obs.HistogramSnapshot {
	s := obs.HistogramSnapshot{Count: w.count, Sum: w.sum, Bounds: bounds, Counts: w.counts}
	if s.Count > 0 {
		s.Mean = s.Sum / float64(s.Count)
	}
	return s
}

// objState is one objective's accounting across closed windows.
type objState struct {
	windows    int // non-empty windows with signal for this objective
	violations int
	consecBad  int
	consecGood int
	firing     bool
	alerts     int // fire transitions
	recent     []bool
	recentN    int
	recentIdx  int
	recentBad  int
	// last evaluated values, for Results and final gauges.
	lastObserved float64
	lastBurn     float64
}

// ObjectiveResult is one objective's final (or current) accounting.
type ObjectiveResult struct {
	Objective
	// Windows is the number of evaluated (non-empty) windows; Violations
	// how many of them breached the threshold.
	Windows    int
	Violations int
	// CompliancePct is 100 * (1 - Violations/Windows); 100 when no
	// window carried signal.
	CompliancePct float64
	// BudgetTotal is the violation allowance (1-Target)*Windows in
	// window units; BudgetRemaining = BudgetTotal - Violations (negative
	// when the budget is blown).
	BudgetTotal     float64
	BudgetRemaining float64
	// BurnRate is the violation rate over the lookback divided by the
	// allowed rate (1 = burning exactly the budget).
	BurnRate float64
	// Alerts counts fire transitions; Firing reports an unresolved alert
	// (always false after Finish, which force-resolves).
	Alerts int
	Firing bool
	// Met reports CompliancePct >= 100*Target.
	Met bool
}

// Tracker aggregates observations into rolling windows and evaluates
// the configured objectives as windows close. Not safe for concurrent
// use: it is driven from the simulator's (single-threaded) event loop in
// nondecreasing sim-time order. All methods no-op on a nil receiver.
type Tracker struct {
	cfg    Config
	bounds []float64

	cur     int64 // current window index, -1 before the first observation
	started bool
	win     [numSeries]windowHist
	missed  int64 // deadline misses in the current window
	dropped int64 // drops in the current window

	objs     []objState
	closed   int64 // non-empty windows closed
	finished bool

	met trackerMetrics
}

// trackerMetrics pre-resolves the tracker's live gauges (all nil when
// Config.Metrics is nil — every update is then a nil-receiver no-op).
type trackerMetrics struct {
	windowIdx, windowStart    *obs.Gauge
	seriesP50, seriesP95      [numSeries]*obs.Gauge
	seriesP99, seriesMean     [numSeries]*obs.Gauge
	seriesCount               [numSeries]*obs.Gauge
	missRate                  *obs.Gauge
	windowsTotal, alertsTotal *obs.Counter
	objCompliance, objBudget  []*obs.Gauge
	objBurn, objFiring        []*obs.Gauge
	objThreshold, objTarget   []*obs.Gauge
	objWindows, objViolations []*obs.Gauge
}

// New validates cfg, defaults objective names and hysteresis, and builds
// a tracker.
func New(cfg Config) (*Tracker, error) {
	if !(cfg.WindowMs > 0) || math.IsInf(cfg.WindowMs, 0) {
		return nil, fmt.Errorf("slo: window width %v must be > 0", cfg.WindowMs)
	}
	if len(cfg.Objectives) == 0 {
		return nil, fmt.Errorf("slo: no objectives configured")
	}
	if cfg.BurnLookback <= 0 {
		cfg.BurnLookback = DefaultBurnLookback
	}
	objs := make([]Objective, len(cfg.Objectives))
	copy(objs, cfg.Objectives)
	used := map[string]bool{}
	for i := range objs {
		if objs[i].FireAfter == 0 {
			objs[i].FireAfter = 1
		}
		if objs[i].ResolveAfter == 0 {
			objs[i].ResolveAfter = 1
		}
		if objs[i].Name == "" {
			objs[i].Name = fmt.Sprintf("%s_%s", objs[i].Series, objs[i].Stat)
		}
		for n := 2; used[objs[i].Name]; n++ {
			objs[i].Name = fmt.Sprintf("%s_%s_%d", objs[i].Series, objs[i].Stat, n)
		}
		used[objs[i].Name] = true
		if err := objs[i].validate(); err != nil {
			return nil, err
		}
	}
	cfg.Objectives = objs
	t := &Tracker{cfg: cfg, bounds: obs.DefaultLatencyBucketsMs(), cur: -1}
	for i := range t.win {
		t.win[i].counts = make([]int64, len(t.bounds)+1)
	}
	t.objs = make([]objState, len(objs))
	for i := range t.objs {
		t.objs[i].recent = make([]bool, cfg.BurnLookback)
	}
	t.initMetrics()
	return t, nil
}

// initMetrics resolves every gauge once; with a nil registry all handles
// are nil and updates are free.
func (t *Tracker) initMetrics() {
	r := t.cfg.Metrics
	t.met.windowIdx = r.Gauge("slo.window.index")
	t.met.windowStart = r.Gauge("slo.window.start_ms")
	r.Gauge("slo.window_ms").Set(t.cfg.WindowMs)
	for s := Series(0); s < numSeries; s++ {
		p := "slo.window." + s.String() + "."
		t.met.seriesP50[s] = r.Gauge(p + "p50_ms")
		t.met.seriesP95[s] = r.Gauge(p + "p95_ms")
		t.met.seriesP99[s] = r.Gauge(p + "p99_ms")
		t.met.seriesMean[s] = r.Gauge(p + "mean_ms")
		t.met.seriesCount[s] = r.Gauge(p + "count")
	}
	t.met.missRate = r.Gauge("slo.window.e2e.miss_rate")
	t.met.windowsTotal = r.Counter("slo.windows_total")
	t.met.alertsTotal = r.Counter("slo.alerts_total")
	for _, o := range t.cfg.Objectives {
		p := "slo.obj." + o.Name + "."
		t.met.objCompliance = append(t.met.objCompliance, r.Gauge(p+"compliance_pct"))
		t.met.objBudget = append(t.met.objBudget, r.Gauge(p+"budget_remaining"))
		t.met.objBurn = append(t.met.objBurn, r.Gauge(p+"burn_rate"))
		t.met.objFiring = append(t.met.objFiring, r.Gauge(p+"firing"))
		t.met.objThreshold = append(t.met.objThreshold, r.Gauge(p+"threshold"))
		t.met.objTarget = append(t.met.objTarget, r.Gauge(p+"target_pct"))
		t.met.objWindows = append(t.met.objWindows, r.Gauge(p+"windows"))
		t.met.objViolations = append(t.met.objViolations, r.Gauge(p+"violations"))
		t.met.objThreshold[len(t.met.objThreshold)-1].Set(o.Threshold)
		t.met.objTarget[len(t.met.objTarget)-1].Set(100 * o.Target)
		t.met.objCompliance[len(t.met.objCompliance)-1].Set(100)
	}
}

// WindowMs returns the configured window width (0 on a nil receiver).
func (t *Tracker) WindowMs() float64 {
	if t == nil {
		return 0
	}
	return t.cfg.WindowMs
}

// Objectives returns the normalized objectives (nil on a nil receiver).
func (t *Tracker) Objectives() []Objective {
	if t == nil {
		return nil
	}
	return t.cfg.Objectives
}

// Observe records one end-to-end observation at sim time nowMs (used by
// static placement checks; the simulator uses ObserveRequest to feed the
// phase series too). Timestamps must be nondecreasing.
func (t *Tracker) Observe(nowMs, latencyMs float64, missed bool) {
	if t == nil || t.finished {
		return
	}
	t.advance(nowMs)
	t.win[SeriesE2E].observe(t.bounds, latencyMs)
	if missed {
		t.missed++
	}
}

// ObserveRequest records one completed request: its end-to-end latency
// plus the per-phase breakdown (uplink+queue+service+downlink ==
// latency). nowMs is the completion sim time; timestamps must be
// nondecreasing.
func (t *Tracker) ObserveRequest(nowMs, uplinkMs, queueMs, serviceMs, downlinkMs, latencyMs float64, missed bool) {
	if t == nil || t.finished {
		return
	}
	t.advance(nowMs)
	t.win[SeriesE2E].observe(t.bounds, latencyMs)
	t.win[SeriesUplink].observe(t.bounds, uplinkMs)
	t.win[SeriesQueue].observe(t.bounds, queueMs)
	t.win[SeriesService].observe(t.bounds, serviceMs)
	t.win[SeriesDownlink].observe(t.bounds, downlinkMs)
	if missed {
		t.missed++
	}
}

// ObserveDrop records one dropped request at sim time nowMs; drops count
// against miss-rate objectives but contribute no delay samples.
func (t *Tracker) ObserveDrop(nowMs float64) {
	if t == nil || t.finished {
		return
	}
	t.advance(nowMs)
	t.dropped++
}

// Finish closes the final (partial) window, force-resolves firing alerts
// with reason "end-of-run", and emits one "slo-objective" summary event
// per objective. Further observations are ignored.
func (t *Tracker) Finish(endMs float64) {
	if t == nil || t.finished {
		return
	}
	t.finished = true
	if t.started {
		t.closeWindow(endMs)
	}
	for i := range t.cfg.Objectives {
		o := &t.cfg.Objectives[i]
		st := &t.objs[i]
		if st.firing {
			st.firing = false
			t.met.objFiring[i].Set(0)
			t.emitAlert(o, st, t.cur, endMs, "resolved", "end-of-run")
		}
	}
	for i := range t.cfg.Objectives {
		t.emitObjective(i)
	}
}

// Results returns every objective's accounting so far (call after
// Finish for final numbers). Nil-safe.
func (t *Tracker) Results() []ObjectiveResult {
	if t == nil {
		return nil
	}
	out := make([]ObjectiveResult, len(t.cfg.Objectives))
	for i, o := range t.cfg.Objectives {
		out[i] = t.result(o, &t.objs[i])
	}
	return out
}

func (t *Tracker) result(o Objective, st *objState) ObjectiveResult {
	r := ObjectiveResult{
		Objective:  o,
		Windows:    st.windows,
		Violations: st.violations,
		Alerts:     st.alerts,
		Firing:     st.firing,
		BurnRate:   st.lastBurn,
	}
	r.CompliancePct = 100.0
	if st.windows > 0 {
		r.CompliancePct = 100 * (1 - float64(st.violations)/float64(st.windows))
	}
	r.BudgetTotal = (1 - o.Target) * float64(st.windows)
	r.BudgetRemaining = r.BudgetTotal - float64(st.violations)
	r.Met = r.CompliancePct >= 100*o.Target-1e-9
	return r
}

// advance rotates the ring forward to the window containing nowMs,
// closing every elapsed window in order (empty windows are skipped: no
// traffic carries no SLO signal).
func (t *Tracker) advance(nowMs float64) {
	idx := int64(math.Floor(nowMs / t.cfg.WindowMs))
	if idx < 0 {
		idx = 0
	}
	if !t.started {
		t.started = true
		t.cur = idx
		return
	}
	for t.cur < idx {
		t.closeWindow((float64(t.cur) + 1) * t.cfg.WindowMs)
		t.cur++
	}
}

// finiteQuantile is HistogramSnapshot.Quantile with the +Inf overflow
// answer ("beyond the last bucket") mapped to twice the last bound, so
// windowed quantiles stay JSON-encodable and comparable.
func finiteQuantile(s obs.HistogramSnapshot, q float64) float64 {
	v := s.Quantile(q)
	if math.IsInf(v, 1) {
		return 2 * s.Bounds[len(s.Bounds)-1]
	}
	return v
}

// closeWindow seals the current window at endMs: emits its per-series
// quantile events, evaluates every objective (emitting "slo-eval" and
// alert transitions), updates the live gauges, and resets the ring slot.
// Empty windows (no completions and no drops) are skipped entirely.
func (t *Tracker) closeWindow(endMs float64) {
	completions := t.win[SeriesE2E].count
	if completions == 0 && t.dropped == 0 {
		return
	}
	startMs := float64(t.cur) * t.cfg.WindowMs
	t.closed++
	t.met.windowsTotal.Inc()
	t.met.windowIdx.Set(float64(t.cur))
	t.met.windowStart.Set(startMs)

	missRate := 0.0
	if n := completions + t.dropped; n > 0 {
		missRate = float64(t.missed+t.dropped) / float64(n)
	}

	snaps := [numSeries]obs.HistogramSnapshot{}
	for s := Series(0); s < numSeries; s++ {
		snaps[s] = t.win[s].snapshot(t.bounds)
		if snaps[s].Count == 0 {
			continue
		}
		p50 := finiteQuantile(snaps[s], 0.50)
		p95 := finiteQuantile(snaps[s], 0.95)
		p99 := finiteQuantile(snaps[s], 0.99)
		t.met.seriesP50[s].Set(p50)
		t.met.seriesP95[s].Set(p95)
		t.met.seriesP99[s].Set(p99)
		t.met.seriesMean[s].Set(snaps[s].Mean)
		t.met.seriesCount[s].Set(float64(snaps[s].Count))
		fields := map[string]interface{}{
			"window":   t.cur,
			"start_ms": startMs,
			"end_ms":   endMs,
			"series":   s.String(),
			"count":    snaps[s].Count,
			"mean_ms":  snaps[s].Mean,
			"p50_ms":   p50,
			"p95_ms":   p95,
			"p99_ms":   p99,
		}
		if s == SeriesE2E {
			fields["missed"] = t.missed
			fields["dropped"] = t.dropped
			fields["miss_rate"] = missRate
		}
		obs.Emit(t.cfg.Sink, "slo-window", fields)
	}
	t.met.missRate.Set(missRate)

	for i := range t.cfg.Objectives {
		t.evaluate(i, &snaps, missRate, endMs)
	}

	for s := range t.win {
		t.win[s].reset()
	}
	t.missed, t.dropped = 0, 0
}

// evaluate applies objective i to the closed window's snapshots.
func (t *Tracker) evaluate(i int, snaps *[numSeries]obs.HistogramSnapshot, missRate, endMs float64) {
	o := &t.cfg.Objectives[i]
	st := &t.objs[i]
	var observed float64
	switch o.Stat.Kind {
	case "miss":
		observed = missRate
	case "mean":
		if snaps[o.Series].Count == 0 {
			return // no signal for this objective in this window
		}
		observed = snaps[o.Series].Mean
	default: // quantile
		if snaps[o.Series].Count == 0 {
			return
		}
		observed = finiteQuantile(snaps[o.Series], o.Stat.Q)
	}
	violated := observed > o.Threshold
	st.windows++
	st.lastObserved = observed
	if violated {
		st.violations++
		st.consecBad++
		st.consecGood = 0
	} else {
		st.consecGood++
		st.consecBad = 0
	}
	// Burn-rate ring over the lookback.
	if st.recentN == len(st.recent) {
		if st.recent[st.recentIdx] {
			st.recentBad--
		}
	} else {
		st.recentN++
	}
	st.recent[st.recentIdx] = violated
	if violated {
		st.recentBad++
	}
	st.recentIdx = (st.recentIdx + 1) % len(st.recent)
	allowedRate := 1 - o.Target
	if allowedRate < 1e-9 {
		allowedRate = 1e-9
	}
	st.lastBurn = float64(st.recentBad) / float64(st.recentN) / allowedRate
	if st.lastBurn > 1e6 {
		st.lastBurn = 1e6
	}

	res := t.result(*o, st)
	obs.Emit(t.cfg.Sink, "slo-eval", map[string]interface{}{
		"objective":        o.Name,
		"window":           t.cur,
		"end_ms":           endMs,
		"observed":         observed,
		"threshold":        o.Threshold,
		"violated":         violated,
		"budget_remaining": res.BudgetRemaining,
		"burn_rate":        st.lastBurn,
	})
	t.met.objCompliance[i].Set(res.CompliancePct)
	t.met.objBudget[i].Set(res.BudgetRemaining)
	t.met.objBurn[i].Set(st.lastBurn)
	t.met.objWindows[i].Set(float64(st.windows))
	t.met.objViolations[i].Set(float64(st.violations))

	if !st.firing && st.consecBad >= o.FireAfter {
		st.firing = true
		st.alerts++
		t.met.alertsTotal.Inc()
		t.met.objFiring[i].Set(1)
		t.emitAlert(o, st, t.cur, endMs, "firing", "")
	} else if st.firing && st.consecGood >= o.ResolveAfter {
		st.firing = false
		t.met.objFiring[i].Set(0)
		t.emitAlert(o, st, t.cur, endMs, "resolved", "recovered")
	}
}

// emitAlert writes one "slo-alert" transition event.
func (t *Tracker) emitAlert(o *Objective, st *objState, window int64, atMs float64, state, reason string) {
	res := t.result(*o, st)
	fields := map[string]interface{}{
		"objective":        o.Name,
		"state":            state,
		"window":           window,
		"at_ms":            atMs,
		"observed":         st.lastObserved,
		"threshold":        o.Threshold,
		"budget_remaining": res.BudgetRemaining,
		"burn_rate":        st.lastBurn,
	}
	if reason != "" {
		fields["reason"] = reason
	}
	obs.Emit(t.cfg.Sink, "slo-alert", fields)
}

// emitObjective writes objective i's final "slo-objective" summary event
// and refreshes its gauges.
func (t *Tracker) emitObjective(i int) {
	o := t.cfg.Objectives[i]
	st := &t.objs[i]
	res := t.result(o, st)
	obs.Emit(t.cfg.Sink, "slo-objective", map[string]interface{}{
		"objective":        o.Name,
		"series":           o.Series.String(),
		"stat":             o.Stat.String(),
		"threshold":        o.Threshold,
		"target_pct":       100 * o.Target,
		"windows":          res.Windows,
		"violations":       res.Violations,
		"compliance_pct":   res.CompliancePct,
		"budget_total":     res.BudgetTotal,
		"budget_remaining": res.BudgetRemaining,
		"alerts":           res.Alerts,
		"met":              res.Met,
	})
	t.met.objCompliance[i].Set(res.CompliancePct)
	t.met.objBudget[i].Set(res.BudgetRemaining)
	t.met.objWindows[i].Set(float64(res.Windows))
	t.met.objViolations[i].Set(float64(res.Violations))
}
