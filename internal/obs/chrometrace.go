package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
)

// Chrome trace-event export: renders pipeline spans in the JSON Object
// Format understood by Perfetto and chrome://tracing. Every span becomes
// one "X" (complete) event with microsecond timestamps; spans carrying a
// "worker" attribute land on their own thread row (tid 2+worker, named
// "worker N") so parallel shards render as a per-worker timeline, while
// ordinary phases share the "pipeline" thread. Resource samples become
// "C" (counter) events, which Perfetto renders as per-name counter
// tracks — heap and goroutine curves lined up under the phase spans.
// Metadata ("M") events name the process and threads.

// ChromeEvent is one trace-event record. Only the members this exporter
// writes are modeled; ReadChromeTrace rejects anything else.
type ChromeEvent struct {
	Name string                 `json:"name"`
	Ph   string                 `json:"ph"`
	Ts   float64                `json:"ts"`
	Dur  *float64               `json:"dur,omitempty"`
	Pid  int                    `json:"pid"`
	Tid  int                    `json:"tid"`
	Args map[string]interface{} `json:"args,omitempty"`
}

// ChromeTrace is the top-level trace-event JSON object.
type ChromeTrace struct {
	TraceEvents     []ChromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit,omitempty"`
}

const (
	chromePid         = 1
	chromePipelineTid = 1
	chromeWorkerTid0  = 2
)

// chromeTid maps a span to its thread row: worker-shard spans get a
// per-worker tid, everything else shares the pipeline row.
func chromeTid(sp Span) int {
	if w, ok := sp.AttrNum("worker"); ok && w == math.Trunc(w) && w >= 0 {
		return chromeWorkerTid0 + int(w)
	}
	return chromePipelineTid
}

// CounterSample is one reading of a counter track: the values of every
// series of the named track at one instant. The sysmon sampler converts
// resource samples into these (one track per resource family — heap,
// goroutines, RSS); the exporter turns each into a Chrome "C" event so
// Perfetto draws the curves under the phase spans. TsMs must come from
// the same Clock as the spans it accompanies, or the curves will not
// line up.
type CounterSample struct {
	Name   string
	TsMs   float64
	Values map[string]float64
}

// ChromeTraceFromSpans builds the exportable trace object from spans
// plus optional counter samples. Events are sorted by (ts, tid, name) so
// the output is stable regardless of span emission order (children end
// before parents; shards end in worker-pool order).
func ChromeTraceFromSpans(spans []Span, counters ...CounterSample) ChromeTrace {
	events := make([]ChromeEvent, 0, len(spans)+len(counters)+4)
	tids := map[int]bool{}
	for _, sp := range spans {
		tid := chromeTid(sp)
		tids[tid] = true
		args := map[string]interface{}{
			"trace": uint64(sp.Trace),
			"span":  uint64(sp.ID),
		}
		if sp.Parent != 0 {
			args["parent"] = uint64(sp.Parent)
		}
		for k, v := range sp.Attrs {
			args[k] = v
		}
		dur := sp.DurationMs() * 1000
		events = append(events, ChromeEvent{
			Name: sp.Name,
			Ph:   "X",
			Ts:   sp.StartMs * 1000,
			Dur:  &dur,
			Pid:  chromePid,
			Tid:  tid,
			Args: args,
		})
	}
	for _, c := range counters {
		args := make(map[string]interface{}, len(c.Values))
		for k, v := range c.Values {
			args[k] = v
		}
		events = append(events, ChromeEvent{
			Name: c.Name,
			Ph:   "C",
			Ts:   c.TsMs * 1000,
			Pid:  chromePid,
			Tid:  chromePipelineTid,
			Args: args,
		})
	}
	sort.SliceStable(events, func(i, j int) bool {
		if events[i].Ts != events[j].Ts {
			return events[i].Ts < events[j].Ts
		}
		if events[i].Tid != events[j].Tid {
			return events[i].Tid < events[j].Tid
		}
		return events[i].Name < events[j].Name
	})

	meta := []ChromeEvent{{
		Name: "process_name", Ph: "M", Pid: chromePid, Tid: chromePipelineTid,
		Args: map[string]interface{}{"name": "taccc"},
	}}
	sortedTids := make([]int, 0, len(tids))
	for tid := range tids {
		sortedTids = append(sortedTids, tid)
	}
	sort.Ints(sortedTids)
	for _, tid := range sortedTids {
		name := "pipeline"
		if tid >= chromeWorkerTid0 {
			name = fmt.Sprintf("worker %d", tid-chromeWorkerTid0)
		}
		meta = append(meta, ChromeEvent{
			Name: "thread_name", Ph: "M", Pid: chromePid, Tid: tid,
			Args: map[string]interface{}{"name": name},
		})
	}
	return ChromeTrace{TraceEvents: append(meta, events...), DisplayTimeUnit: "ms"}
}

// WriteChromeTrace exports spans (plus optional resource counter
// samples) as Chrome trace-event JSON, directly loadable in Perfetto or
// chrome://tracing.
func WriteChromeTrace(w io.Writer, spans []Span, counters ...CounterSample) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(ChromeTraceFromSpans(spans, counters...))
}

// ReadChromeTrace is the strict decoder for files written by
// WriteChromeTrace (the CI trace-smoke gate validates exports through
// it). Unknown JSON members, unsupported phase types and malformed
// events are all errors, with the offending event index in the message.
func ReadChromeTrace(r io.Reader) (ChromeTrace, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var tr ChromeTrace
	if err := dec.Decode(&tr); err != nil {
		return ChromeTrace{}, fmt.Errorf("chrome trace: %w", err)
	}
	if len(tr.TraceEvents) == 0 {
		return ChromeTrace{}, fmt.Errorf("chrome trace: empty traceEvents array")
	}
	for i, ev := range tr.TraceEvents {
		if ev.Name == "" {
			return ChromeTrace{}, fmt.Errorf("chrome trace: event %d: empty name", i)
		}
		if ev.Pid <= 0 || ev.Tid <= 0 {
			return ChromeTrace{}, fmt.Errorf("chrome trace: event %d (%s): pid/tid must be positive", i, ev.Name)
		}
		switch ev.Ph {
		case "X":
			if ev.Dur == nil {
				return ChromeTrace{}, fmt.Errorf("chrome trace: event %d (%s): complete event missing dur", i, ev.Name)
			}
			if *ev.Dur < 0 || math.IsNaN(*ev.Dur) || math.IsInf(*ev.Dur, 0) {
				return ChromeTrace{}, fmt.Errorf("chrome trace: event %d (%s): invalid dur %v", i, ev.Name, *ev.Dur)
			}
			if math.IsNaN(ev.Ts) || math.IsInf(ev.Ts, 0) {
				return ChromeTrace{}, fmt.Errorf("chrome trace: event %d (%s): invalid ts %v", i, ev.Name, ev.Ts)
			}
		case "C":
			if math.IsNaN(ev.Ts) || math.IsInf(ev.Ts, 0) {
				return ChromeTrace{}, fmt.Errorf("chrome trace: event %d (%s): invalid ts %v", i, ev.Name, ev.Ts)
			}
			if len(ev.Args) == 0 {
				return ChromeTrace{}, fmt.Errorf("chrome trace: event %d (%s): counter event has no series", i, ev.Name)
			}
			keys := make([]string, 0, len(ev.Args))
			for k := range ev.Args {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				v, ok := ev.Args[k].(float64)
				if !ok || math.IsNaN(v) || math.IsInf(v, 0) {
					return ChromeTrace{}, fmt.Errorf("chrome trace: event %d (%s): counter series %q is not a finite number", i, ev.Name, k)
				}
			}
		case "M":
			if ev.Name != "process_name" && ev.Name != "thread_name" {
				return ChromeTrace{}, fmt.Errorf("chrome trace: event %d: unsupported metadata %q", i, ev.Name)
			}
			if _, ok := ev.Args["name"].(string); !ok {
				return ChromeTrace{}, fmt.Errorf("chrome trace: event %d (%s): metadata missing args.name", i, ev.Name)
			}
		default:
			return ChromeTrace{}, fmt.Errorf("chrome trace: event %d (%s): unsupported phase %q", i, ev.Name, ev.Ph)
		}
	}
	return tr, nil
}
